(* Coverage workflow: run two different workloads on the same core, each
   with its own collector (the gsim engine's change-event fast path), then
   merge the two databases and report what the combined runs covered.

     dune exec examples/coverage_workflow.exe                             *)

module Sim = Gsim_engine.Sim
module Gsim = Gsim_core.Gsim
module Designs = Gsim_designs.Designs
module Stu_core = Gsim_designs.Stu_core
module Programs = Gsim_designs.Programs
module Db = Gsim_coverage.Db
module Collect = Gsim_coverage.Collect
module Report = Gsim_coverage.Report

(* One independent run: fresh core, fresh collector, one workload. *)
let covered_run prog cycles =
  let core = Stu_core.build () in
  let compiled = Gsim.instantiate Gsim.gsim core.Stu_core.circuit in
  let cov, sim =
    match compiled.Gsim.activity with
    | Some engine -> Collect.of_activity engine
    | None -> Collect.create compiled.Gsim.sim
  in
  Designs.load_program sim core.Stu_core.h prog;
  (try ignore (Designs.run_program ~max_cycles:cycles sim core.Stu_core.h)
   with Failure _ -> ());
  let db = Collect.db cov in
  compiled.Gsim.destroy ();
  db

let () =
  let a = covered_run (Programs.quick ()) 2_000 in
  let b = covered_run (Programs.coremark ()) 30_000 in
  Printf.printf "run A (quick):    %.1f%% over %d cycles\n"
    (Db.total_percent (Db.summary a)) a.Db.total_cycles;
  Printf.printf "run B (coremark): %.1f%% over %d cycles\n"
    (Db.total_percent (Db.summary b)) b.Db.total_cycles;

  (* Merge is pure and order-independent: independent runs accumulate. *)
  let merged = Db.merge a b in
  assert (Db.equal merged (Db.merge b a));
  Printf.printf "merged:           %.1f%% over %d cycles in %d runs\n\n"
    (Db.total_percent (Db.summary merged))
    merged.Db.total_cycles merged.Db.runs;

  (* Databases round-trip through the text format, so runs on different
     machines can be saved and merged later. *)
  let path = Filename.temp_file "coverage_workflow" ".cov" in
  Db.save path merged;
  let reloaded = Db.load path in
  Sys.remove path;
  assert (Db.equal merged reloaded);

  print_string (Report.to_string ~uncovered:5 reloaded)
