lib/partition/partition.ml: Array Circuit Format Gsim_ir Hashtbl List Printf Queue Set Stack String
