lib/partition/partition.mli: Circuit Format Gsim_ir
