open Gsim_ir

type t = { supernodes : int array array; of_node : int array }

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)
(* ------------------------------------------------------------------ *)

(* Evaluated nodes in topological order, their rank, and the dependency
   edges that stay between evaluated nodes. *)
type graph = {
  order : int array;           (* topo order of evaluated node ids *)
  rank : int array;            (* node id -> position in [order], -1 otherwise *)
  edges : (int * int) list;    (* (u, v): v depends on u, both evaluated *)
}

let build_graph c =
  let order = Circuit.eval_order c in
  let rank = Array.make (Circuit.max_id c) (-1) in
  Array.iteri (fun i id -> rank.(id) <- i) order;
  let edges = ref [] in
  Array.iter
    (fun v ->
      List.iter
        (fun u -> if rank.(u) >= 0 then edges := (u, v) :: !edges)
        (List.sort_uniq compare (Circuit.dependencies c v)))
    order;
  { order; rank; edges = !edges }

(* Assemble the result from groups of node ids.  Groups are topologically
   ordered by Kahn's algorithm on the group condensation (our construction
   algorithms always produce an acyclic condensation; any leftover is
   appended by minimum rank as a safety net, the engines tolerate it). *)
let of_groups c g groups =
  let ngroups = Array.length groups in
  let of_node = Array.make (Circuit.max_id c) (-1) in
  Array.iteri (fun k members -> List.iter (fun id -> of_node.(id) <- k) members) groups;
  let succs = Array.make ngroups [] and indeg = Array.make ngroups 0 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (u, v) ->
      let gu = of_node.(u) and gv = of_node.(v) in
      if gu <> gv && not (Hashtbl.mem seen (gu, gv)) then begin
        Hashtbl.add seen (gu, gv) ();
        succs.(gu) <- gv :: succs.(gu);
        indeg.(gv) <- indeg.(gv) + 1
      end)
    g.edges;
  let queue = Queue.create () in
  Array.iteri (fun k d -> if d = 0 then Queue.add k queue) indeg;
  let topo = ref [] and count = ref 0 in
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    topo := k :: !topo;
    incr count;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succs.(k)
  done;
  let sequence =
    if !count = ngroups then Array.of_list (List.rev !topo)
    else begin
      (* Cycle in the condensation: fall back to min-rank order. *)
      let keyed =
        Array.mapi
          (fun k members ->
            (List.fold_left (fun acc id -> min acc g.rank.(id)) max_int members, k))
          groups
      in
      Array.sort compare keyed;
      Array.map snd keyed
    end
  in
  let supernodes =
    Array.map
      (fun k ->
        let members = Array.of_list groups.(k) in
        Array.sort (fun a b -> compare g.rank.(a) g.rank.(b)) members;
        members)
      sequence
  in
  Array.iteri
    (fun k members -> Array.iter (fun id -> of_node.(id) <- k) members)
    supernodes;
  { supernodes; of_node }

let singleton c =
  let g = build_graph c in
  of_groups c g (Array.map (fun id -> [ id ]) g.order)

let monolithic c =
  let g = build_graph c in
  if Array.length g.order = 0 then { supernodes = [||]; of_node = Array.make (Circuit.max_id c) (-1) }
  else of_groups c g [| Array.to_list g.order |]

(* ------------------------------------------------------------------ *)
(* Kernighan's optimal sequential partition (DP)                       *)
(* ------------------------------------------------------------------ *)

(* Clusters form a sequence with forward-only edges.  Choose cut points
   minimizing the number of edges crossing a cut, subject to each segment's
   total node count being at most [max_size] (a cluster larger than the
   bound gets a segment of its own).  Returns the segments as lists of
   cluster indices. *)
let sequential_dp ~cluster_sizes ~cluster_edges ~max_size =
  let m = Array.length cluster_sizes in
  if m = 0 then []
  else begin
    (* crossing.(b) = number of edges over the boundary before cluster b. *)
    let diff = Array.make (m + 2) 0 in
    List.iter
      (fun (cu, cv) ->
        if cu < cv then begin
          diff.(cu + 1) <- diff.(cu + 1) + 1;
          diff.(cv + 1) <- diff.(cv + 1) - 1
        end)
      cluster_edges;
    let crossing = Array.make (m + 1) 0 in
    for b = 1 to m do
      crossing.(b) <- crossing.(b - 1) + diff.(b)
    done;
    let prefix_w = Array.make (m + 1) 0 in
    for i = 0 to m - 1 do
      prefix_w.(i + 1) <- prefix_w.(i) + cluster_sizes.(i)
    done;
    let inf = max_int / 2 in
    let f = Array.make (m + 1) inf in
    let back = Array.make (m + 1) (-1) in
    f.(0) <- 0;
    for i = 1 to m do
      let j = ref (i - 1) in
      let continue = ref true in
      while !continue && !j >= 0 do
        let weight = prefix_w.(i) - prefix_w.(!j) in
        if weight > max_size && !j < i - 1 then continue := false
        else begin
          let cost = f.(!j) + (if !j = 0 then 0 else crossing.(!j)) in
          if cost < f.(i) then begin
            f.(i) <- cost;
            back.(i) <- !j
          end;
          decr j
        end
      done
    done;
    let rec cuts i acc = if i = 0 then acc else cuts back.(i) (back.(i) :: acc) in
    let boundaries = cuts m [ m ] in
    (* boundaries = [0; b1; ...; m]; segments are consecutive pairs. *)
    let rec segments = function
      | b0 :: (b1 :: _ as rest) -> List.init (b1 - b0) (fun k -> b0 + k) :: segments rest
      | [ _ ] | [] -> []
    in
    segments boundaries
  end

(* Run the DP over a topologically ordered cluster sequence and produce
   final groups of node ids. *)
let dp_partition c g ~clusters ~max_size =
  (* [clusters]: array of node-id lists, already in a sequence with
     forward-only inter-cluster edges. *)
  let cluster_of = Array.make (Circuit.max_id c) (-1) in
  Array.iteri (fun k members -> List.iter (fun id -> cluster_of.(id) <- k) members) clusters;
  let cluster_edges =
    List.filter_map
      (fun (u, v) ->
        let cu = cluster_of.(u) and cv = cluster_of.(v) in
        if cu <> cv then Some (cu, cv) else None)
      g.edges
  in
  let cluster_sizes = Array.map List.length clusters in
  let segments = sequential_dp ~cluster_sizes ~cluster_edges ~max_size in
  let groups =
    List.map (fun ks -> List.concat_map (fun k -> clusters.(k)) ks) segments
  in
  of_groups c g (Array.of_list groups)

(* Topologically sequence clusters (Kahn over the cluster condensation,
   min-rank fallback on a cycle) so the sequential DP sees forward-only
   edges. *)
let order_clusters c g clusters =
  let n = Array.length clusters in
  let cluster_of = Array.make (Circuit.max_id c) (-1) in
  Array.iteri (fun k ms -> List.iter (fun id -> cluster_of.(id) <- k) ms) clusters;
  let succs = Array.make n [] and indeg = Array.make n 0 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (u, v) ->
      let cu = cluster_of.(u) and cv = cluster_of.(v) in
      if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
        Hashtbl.add seen (cu, cv) ();
        succs.(cu) <- cv :: succs.(cu);
        indeg.(cv) <- indeg.(cv) + 1
      end)
    g.edges;
  (* Prefer low-rank clusters first for locality of the DP's cut costs. *)
  let key k =
    List.fold_left (fun acc id -> min acc g.rank.(id)) max_int clusters.(k)
  in
  let module Pq = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let ready = ref Pq.empty in
  for k = 0 to n - 1 do
    if indeg.(k) = 0 then ready := Pq.add (key k, k) !ready
  done;
  let out = ref [] and count = ref 0 in
  while not (Pq.is_empty !ready) do
    let ((_, k) as elt) = Pq.min_elt !ready in
    ready := Pq.remove elt !ready;
    out := k :: !out;
    incr count;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := Pq.add (key s, s) !ready)
      succs.(k)
  done;
  if !count = n then Array.of_list (List.rev_map (fun k -> clusters.(k)) !out)
  else begin
    (* Cycle: order by minimum rank; the engine's re-sweep keeps this
       correct, only performance could suffer. *)
    let keyed = Array.init n (fun k -> (key k, k)) in
    Array.sort compare keyed;
    Array.map (fun (_, k) -> clusters.(k)) keyed
  end

let kernighan c ~max_size =
  let g = build_graph c in
  dp_partition c g ~clusters:(Array.map (fun id -> [ id ]) g.order) ~max_size

(* ------------------------------------------------------------------ *)
(* GSIM's enhanced algorithm: correlation pre-merge + sequential DP    *)
(* ------------------------------------------------------------------ *)

module Union_find = struct
  type t = { parent : int array; size : int array }

  let create n = { parent = Array.init n (fun i -> i); size = Array.make n 1 }

  let rec find u i = if u.parent.(i) = i then i else begin
      u.parent.(i) <- find u u.parent.(i);
      u.parent.(i)
    end

  (* Merge refusing to grow past [cap]; returns whether merged. *)
  let union ~cap u a b =
    let ra = find u a and rb = find u b in
    if ra = rb then true
    else if u.size.(ra) + u.size.(rb) > cap then false
    else begin
      let big, small = if u.size.(ra) >= u.size.(rb) then (ra, rb) else (rb, ra) in
      u.parent.(small) <- big;
      u.size.(big) <- u.size.(big) + u.size.(small);
      true
    end
end

(* Tarjan SCC over a small adjacency list graph; returns the component id
   per vertex, components numbered in reverse topological order. *)
let scc nvertices succs =
  let index = Array.make nvertices (-1) in
  let lowlink = Array.make nvertices 0 in
  let on_stack = Array.make nvertices false in
  let comp = Array.make nvertices (-1) in
  let stack = ref [] in
  let next_index = ref 0 and next_comp = ref 0 in
  (* Iterative Tarjan to avoid stack overflow on big graphs. *)
  let strongconnect v =
    let work = Stack.create () in
    Stack.push (v, ref succs.(v)) work;
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    while not (Stack.is_empty work) do
      let u, rest = Stack.top work in
      match !rest with
      | w :: tl ->
        rest := tl;
        if index.(w) < 0 then begin
          index.(w) <- !next_index;
          lowlink.(w) <- !next_index;
          incr next_index;
          stack := w :: !stack;
          on_stack.(w) <- true;
          Stack.push (w, ref succs.(w)) work
        end
        else if on_stack.(w) then lowlink.(u) <- min lowlink.(u) index.(w)
      | [] ->
        ignore (Stack.pop work);
        if lowlink.(u) = index.(u) then begin
          let rec pop () =
            match !stack with
            | w :: tl ->
              stack := tl;
              on_stack.(w) <- false;
              comp.(w) <- !next_comp;
              if w <> u then pop ()
            | [] -> assert false
          in
          pop ();
          incr next_comp
        end;
        (match Stack.top_opt work with
         | Some (parent, _) -> lowlink.(parent) <- min lowlink.(parent) lowlink.(u)
         | None -> ())
    done
  in
  for v = 0 to nvertices - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  (comp, !next_comp)

let gsim c ~max_size =
  let g = build_graph c in
  let n = Circuit.max_id c in
  let uf = Union_find.create n in
  (* Successor/dependency counts restricted to evaluated nodes. *)
  let succ_list = Array.make n [] and dep_list = Array.make n [] in
  List.iter
    (fun (u, v) ->
      succ_list.(u) <- v :: succ_list.(u);
      dep_list.(v) <- u :: dep_list.(v))
    g.edges;
  let cap = max_size in
  (* Rule 1: out-degree 1 — a node is activated along with its only
     successor. *)
  Array.iter
    (fun u ->
      match succ_list.(u) with
      | [ s ] -> ignore (Union_find.union ~cap uf u s)
      | [] | _ :: _ -> ())
    g.order;
  (* Rule 2: in-degree 1 — activated when its only predecessor is. *)
  Array.iter
    (fun v ->
      match dep_list.(v) with
      | [ p ] -> ignore (Union_find.union ~cap uf v p)
      | [] | _ :: _ -> ())
    g.order;
  (* Rule 3: siblings sharing the same predecessor set activate together.
     Buckets are keyed by the sorted dependency list; oversized buckets are
     merged greedily until the cap refuses. *)
  let buckets = Hashtbl.create 256 in
  Array.iter
    (fun v ->
      let deps = List.sort_uniq compare dep_list.(v) in
      if deps <> [] then begin
        let key = String.concat "," (List.map string_of_int deps) in
        Hashtbl.replace buckets key
          (v :: (try Hashtbl.find buckets key with Not_found -> []))
      end)
    g.order;
  Hashtbl.iter
    (fun _ members ->
      match members with
      | first :: rest -> List.iter (fun v -> ignore (Union_find.union ~cap uf first v)) rest
      | [] -> ())
    buckets;
  (* Collect clusters; merge strongly connected clusters so that the
     condensation is a DAG the sequential DP can order. *)
  let root_ids = Hashtbl.create 256 in
  let nclusters = ref 0 in
  Array.iter
    (fun id ->
      let r = Union_find.find uf id in
      if not (Hashtbl.mem root_ids r) then begin
        Hashtbl.add root_ids r !nclusters;
        incr nclusters
      end)
    g.order;
  let cluster_of id = Hashtbl.find root_ids (Union_find.find uf id) in
  let csuccs = Array.make !nclusters [] in
  List.iter
    (fun (u, v) ->
      let cu = cluster_of u and cv = cluster_of v in
      if cu <> cv then csuccs.(cu) <- cv :: csuccs.(cu))
    g.edges;
  let comp, ncomp = scc !nclusters csuccs in
  (* A cyclic cluster condensation cannot be sequenced.  Clusters caught in
     a multi-cluster strongly connected component lose their protection and
     dissolve back into singleton nodes — a refinement never creates new
     cycles, so one pass restores a DAG while keeping the correlation
     clusters everywhere else. *)
  let comp_cluster_count = Array.make ncomp 0 in
  Array.iter (fun k -> comp_cluster_count.(k) <- comp_cluster_count.(k) + 1) comp;
  let keep id = comp_cluster_count.(comp.(cluster_of id)) = 1 in
  let members = Hashtbl.create 256 in
  let singles = ref [] in
  (* Reverse iteration keeps each member list in topological order. *)
  for i = Array.length g.order - 1 downto 0 do
    let id = g.order.(i) in
    if keep id then begin
      let k = cluster_of id in
      Hashtbl.replace members k (id :: (try Hashtbl.find members k with Not_found -> []))
    end
    else singles := [ id ] :: !singles
  done;
  let clusters =
    Array.of_list
      (Hashtbl.fold (fun _ ms acc -> ms :: acc) members [] @ !singles)
  in
  let clusters = order_clusters c g clusters in
  dp_partition c g ~clusters ~max_size

(* ------------------------------------------------------------------ *)
(* MFFC-based partitioning (ESSENT)                                    *)
(* ------------------------------------------------------------------ *)

let mffc c ~max_size =
  let g = build_graph c in
  let n = Circuit.max_id c in
  let succ_count = Array.make n 0 in
  let dep_list = Array.make n [] in
  List.iter
    (fun (u, v) ->
      succ_count.(u) <- succ_count.(u) + 1;
      dep_list.(v) <- u :: dep_list.(v))
    g.edges;
  let assigned = Array.make n false in
  let groups = ref [] in
  (* Seeds are taken in reverse topological order; a predecessor joins the
     cone when every one of its successors is already inside. *)
  let in_cone = Array.make n 0 in
  (* in_cone.(u) counts u's successors currently inside the growing cone. *)
  for i = Array.length g.order - 1 downto 0 do
    let seed = g.order.(i) in
    if not assigned.(seed) then begin
      let cone = ref [ seed ] in
      let size = ref 1 in
      assigned.(seed) <- true;
      let frontier = Queue.create () in
      let consider u =
        if g.rank.(u) >= 0 && not assigned.(u) then begin
          in_cone.(u) <- in_cone.(u) + 1;
          if in_cone.(u) = succ_count.(u) then Queue.add u frontier
        end
      in
      List.iter consider dep_list.(seed);
      while not (Queue.is_empty frontier) && !size < max_size do
        let u = Queue.pop frontier in
        if not assigned.(u) then begin
          assigned.(u) <- true;
          cone := u :: !cone;
          incr size;
          List.iter consider dep_list.(u)
        end
      done;
      (* Reset counters touched while growing this cone. *)
      let reset_from ids =
        List.iter
          (fun v ->
            List.iter
              (fun u -> if in_cone.(u) > 0 then in_cone.(u) <- 0)
              dep_list.(v))
          ids
      in
      reset_from !cone;
      Queue.iter (fun u -> in_cone.(u) <- 0) frontier;
      groups := !cone :: !groups
    end
  done;
  of_groups c g (Array.of_list !groups)

let algorithm_of_string = function
  | "none" -> Some (fun c ~max_size:_ -> singleton c)
  | "kernighan" -> Some kernighan
  | "mffc" -> Some mffc
  | "gsim" -> Some gsim
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Validation and quality metrics                                      *)
(* ------------------------------------------------------------------ *)

let validate c t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let g = build_graph c in
  let seen = Array.make (Circuit.max_id c) false in
  Array.iteri
    (fun k members ->
      let last_rank = ref (-1) in
      Array.iter
        (fun id ->
          if g.rank.(id) < 0 then fail "supernode %d contains non-evaluated node %d" k id;
          if seen.(id) then fail "node %d in two supernodes" id;
          seen.(id) <- true;
          if t.of_node.(id) <> k then fail "of_node inconsistent for %d" id;
          if g.rank.(id) <= !last_rank then fail "supernode %d members out of order" k;
          last_rank := g.rank.(id))
        members)
    t.supernodes;
  Array.iter
    (fun id -> if not seen.(id) then fail "evaluated node %d not covered" id)
    g.order;
  List.iter
    (fun (u, v) ->
      if t.of_node.(u) > t.of_node.(v) then
        fail "edge %d -> %d goes backwards (supernode %d -> %d)" u v t.of_node.(u)
          t.of_node.(v))
    g.edges

type quality = {
  supernode_count : int;
  cut_edges : int;
  max_size : int;
  mean_size : float;
}

let quality c t =
  let g = build_graph c in
  let cut =
    List.fold_left
      (fun acc (u, v) -> if t.of_node.(u) <> t.of_node.(v) then acc + 1 else acc)
      0 g.edges
  in
  let sizes = Array.map Array.length t.supernodes in
  let total = Array.fold_left ( + ) 0 sizes in
  {
    supernode_count = Array.length t.supernodes;
    cut_edges = cut;
    max_size = Array.fold_left max 0 sizes;
    mean_size =
      (if Array.length sizes = 0 then 0.
       else float_of_int total /. float_of_int (Array.length sizes));
  }

let pp_quality fmt q =
  Format.fprintf fmt "supernodes=%d cut_edges=%d max=%d mean=%.1f" q.supernode_count
    q.cut_edges q.max_size q.mean_size
