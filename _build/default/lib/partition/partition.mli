(** Supernode construction.

    A partition groups the circuit's evaluated nodes (logic, register-next,
    memory-read) into supernodes.  Each supernode carries one active bit in
    the activity-driven engines; activating any member evaluates the whole
    supernode, so grouping trades examination overhead ([A_exam]) against
    activity factor ([af]).

    All partitions produced here are {e schedulable}: supernodes are
    numbered so that every combinational dependency between two supernodes
    goes from a lower to a higher index, and members are listed in
    evaluation order.  A single left-to-right sweep per cycle therefore
    suffices.

    Three algorithms are provided, matching the paper's Table III:

    - {!kernighan}: Kernighan's optimal sequential partition — a dynamic
      program over the topological order that minimizes the number of cut
      edges under a segment-size bound.
    - {!mffc}: maximal fanout-free cones, ESSENT's approach.
    - {!gsim}: the paper's enhanced algorithm — nodes with strong activation
      correlation (out-degree 1 with its successor, in-degree 1 with its
      predecessor, same-predecessor siblings) are pre-merged into clusters
      protected from being split, and the Kernighan dynamic program then
      runs over the cluster sequence. *)

open Gsim_ir

type t = {
  supernodes : int array array;
      (** [supernodes.(k)] lists member node ids in evaluation order. *)
  of_node : int array;
      (** node id -> supernode index; -1 for nodes not evaluated
          (inputs, register reads, deleted ids). *)
}

val singleton : Circuit.t -> t
(** One node per supernode (the "None" row of Table III: no grouping). *)

val monolithic : Circuit.t -> t
(** All nodes in one supernode (degenerate; for tests). *)

val kernighan : Circuit.t -> max_size:int -> t

val mffc : Circuit.t -> max_size:int -> t

val gsim : Circuit.t -> max_size:int -> t

val algorithm_of_string : string -> (Circuit.t -> max_size:int -> t) option
(** ["none" | "kernighan" | "mffc" | "gsim"]. *)

val validate : Circuit.t -> t -> unit
(** Checks coverage (every evaluated node in exactly one supernode, others
    in none), member evaluation order, and schedulability.  Raises
    [Failure] with a description otherwise. *)

type quality = {
  supernode_count : int;
  cut_edges : int;          (** dependency edges crossing supernodes *)
  max_size : int;
  mean_size : float;
}

val quality : Circuit.t -> t -> quality

val pp_quality : Format.formatter -> quality -> unit
