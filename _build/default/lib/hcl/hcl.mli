(** A small Chisel-like hardware construction DSL.

    Circuits are built by calling combinators against a mutable builder;
    {!finalize} resolves pending register updates and returns the
    validated {!Gsim_ir.Circuit.t}.  Signals are expression values; use
    {!wire} to materialize (and name) intermediate nodes — materialized
    nodes are the unit of activity tracking in the engines, so designs
    materialize at block boundaries.

    All processor models in [gsim_designs] are written in this DSL — it is
    this repository's substitute for Chisel. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

type signal

type reg

type mem

val create : ?name:string -> unit -> t

val finalize : t -> Circuit.t
(** Installs every register's accumulated next-value, validates, and
    freezes the builder (later mutations raise). *)

val circuit : t -> Circuit.t
(** The underlying circuit (also available before [finalize]). *)

(** {1 Scoping} *)

val in_scope : t -> string -> (unit -> 'a) -> 'a
(** Names created inside get ["scope."] prefixes. *)

(** {1 Ports, constants, wires} *)

val input : t -> string -> int -> signal

val output : t -> string -> signal -> signal
(** Materializes the signal as a named, observable node. *)

val const : t -> width:int -> int -> signal

val const_bits : t -> Bits.t -> signal

val wire : t -> string -> signal -> signal

val width : signal -> int

val node_of : signal -> int
(** The backing node id.  Raises [Invalid_argument] if the signal is a
    bare expression; [wire] it first. *)

val signal_of_node : t -> int -> signal
(** View an existing node (e.g. from another component's handles) as a
    signal. *)

val expr_of : signal -> Gsim_ir.Expr.t
(** Escape hatch to the IR expression. *)

val of_expr : Gsim_ir.Expr.t -> signal

(** {1 Registers} *)

val reg : t -> ?init:Bits.t -> ?reset:signal * Bits.t -> string -> int -> reg

val q : reg -> signal
(** The register's current value. *)

val set : reg -> signal -> unit
(** Unconditional next value (last set wins). *)

val set_when : reg -> guard:signal -> signal -> unit
(** Guarded next value; priority to later calls, holds otherwise. *)

val reg_node : reg -> int
(** Node id of the read port. *)

(** {1 Memories} *)

val memory : t -> string -> width:int -> depth:int -> mem

val read : mem -> ?en:signal -> signal -> signal
(** Combinational read port. *)

val write : mem -> addr:signal -> data:signal -> en:signal -> unit

val mem_index : mem -> int
(** Index for [Sim.load_mem]. *)

(** {1 Operators}

    Unless noted, arithmetic is unsigned and truncating to the wider
    operand's width (the convenient form for datapaths); [_w]-suffixed
    variants follow the widening FIRRTL rules. *)

val ( +: ) : signal -> signal -> signal
val ( -: ) : signal -> signal -> signal
val ( *: ) : signal -> signal -> signal
val add_w : signal -> signal -> signal
val mul_w : signal -> signal -> signal
val udiv : signal -> signal -> signal
val urem : signal -> signal -> signal
val ( &: ) : signal -> signal -> signal
val ( |: ) : signal -> signal -> signal
val ( ^: ) : signal -> signal -> signal
val lnot : signal -> signal
val sll : signal -> signal -> signal
(** Dynamic shift left, keeps width; [srl]/[sra] are the logical and
    arithmetic right shifts. *)

val srl : signal -> signal -> signal
val sra : signal -> signal -> signal

val shl_const : signal -> int -> signal
(** Widening static shifts. *)

val shr_const : signal -> int -> signal
val eq : signal -> signal -> signal
val neq : signal -> signal -> signal
val ult : signal -> signal -> signal
val ule : signal -> signal -> signal

val slt : signal -> signal -> signal
(** Signed compares. *)

val sle : signal -> signal -> signal
val mux2 : signal -> signal -> signal -> signal
(** [mux2 sel a b]; branches are resized to the wider. *)

val select : (signal * signal) list -> default:signal -> signal
(** Priority selector: first matching guard wins. *)

val bits : signal -> hi:int -> lo:int -> signal
val bit : signal -> int -> signal
val cat : signal list -> signal
(** Head is most significant. *)

val resize : signal -> int -> signal
(** Zero-extend or truncate. *)

val sext : signal -> int -> signal
(** Sign-extend (or truncate). *)

val reduce_or : signal -> signal
val reduce_and : signal -> signal
val reduce_xor : signal -> signal

val is_zero : signal -> signal
val non_zero : signal -> signal
