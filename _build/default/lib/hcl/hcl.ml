module Bits = Gsim_bits.Bits
open Gsim_ir

type signal = Expr.t

type pending = { guard : signal option; rhs : signal }

type reg_state = {
  register : Circuit.register;
  mutable pending : pending list;  (* newest first *)
}

type t = {
  c : Circuit.t;
  mutable scopes : string list;    (* innermost first *)
  mutable regs : reg_state list;
  mutable frozen : bool;
}

type reg = t * reg_state

type mem = t * int

let create ?(name = "hcl") () =
  { c = Circuit.create ~name (); scopes = []; regs = []; frozen = false }

let circuit t = t.c

let check_live t = if t.frozen then invalid_arg "Hcl: builder already finalized"

let scoped t name = String.concat "." (List.rev (name :: t.scopes))

let in_scope t name f =
  t.scopes <- name :: t.scopes;
  Fun.protect ~finally:(fun () ->
      match t.scopes with _ :: tl -> t.scopes <- tl | [] -> ())
    f

let width = Expr.width

let input t name w =
  check_live t;
  let n = Circuit.add_input t.c ~name:(scoped t name) ~width:w in
  Expr.var ~width:w n.Circuit.id

let const t ~width n =
  ignore t;
  Expr.of_int ~width n

let const_bits t b =
  ignore t;
  Expr.const b

let wire t name s =
  check_live t;
  match s.Expr.desc with
  | Expr.Var _ -> s  (* already a node; renaming adds nothing *)
  | _ ->
    let n = Circuit.add_logic t.c ~name:(scoped t name) s in
    Expr.var ~width:(Expr.width s) n.Circuit.id

let signal_of_node t id =
  let n = Circuit.node t.c id in
  Expr.var ~width:n.Circuit.width n.Circuit.id

let expr_of s = s

let of_expr e = e

let node_of s =
  match s.Expr.desc with
  | Expr.Var id -> id
  | _ -> invalid_arg "Hcl.node_of: signal is not materialized; wire it first"

let output t name s =
  check_live t;
  let s =
    match s.Expr.desc with
    | Expr.Var _ ->
      (* Outputs must be distinct observable nodes. *)
      let n = Circuit.add_logic t.c ~name:(scoped t name) s in
      Expr.var ~width:(Expr.width s) n.Circuit.id
    | _ -> wire t name s
  in
  Circuit.mark_output t.c (node_of s);
  s

(* --- Registers -------------------------------------------------------- *)

let reg t ?init ?reset name w =
  check_live t;
  let init = match init with Some i -> i | None -> Bits.zero w in
  let reset =
    Option.map (fun (sig_s, value) -> ((Circuit.add_logic t.c ~name:(scoped t (name ^ "$rst")) sig_s).Circuit.id, value)) (
      match reset with
      | Some (sig_s, value) -> Some (sig_s, value)
      | None -> None)
  in
  let register = Circuit.add_register t.c ~name:(scoped t name) ~width:w ~init ?reset () in
  let rs = { register; pending = [] } in
  t.regs <- rs :: t.regs;
  (t, rs)

let q ((t, rs) : reg) =
  let node = Circuit.node t.c rs.register.Circuit.read in
  Expr.var ~width:node.Circuit.width node.Circuit.id

let set ((t, rs) : reg) s =
  check_live t;
  rs.pending <- { guard = None; rhs = s } :: rs.pending

let set_when ((t, rs) : reg) ~guard s =
  check_live t;
  rs.pending <- { guard = Some guard; rhs = s } :: rs.pending

let reg_node ((_, rs) : reg) = rs.register.Circuit.read

let resize_expr s w =
  if Expr.width s = w then s
  else if Expr.width s > w then Expr.unop (Expr.Extract (w - 1, 0)) s
  else Expr.unop (Expr.Pad_unsigned w) s

let finalize t =
  check_live t;
  List.iter
    (fun rs ->
      let w = (Circuit.node t.c rs.register.Circuit.read).Circuit.width in
      let default = Expr.var ~width:w rs.register.Circuit.read in
      let next =
        List.fold_left
          (fun acc p ->
            let rhs = resize_expr p.rhs w in
            match p.guard with None -> rhs | Some g -> Expr.mux g rhs acc)
          default (List.rev rs.pending)
      in
      Circuit.set_next t.c rs.register next)
    t.regs;
  t.frozen <- true;
  Circuit.validate t.c;
  t.c

(* --- Memories ---------------------------------------------------------- *)

let memory t name ~width ~depth =
  check_live t;
  (t, Circuit.add_memory t.c ~name:(scoped t name) ~width ~depth)

let materialize t name s =
  match s.Expr.desc with
  | Expr.Var id -> id
  | _ -> (Circuit.add_logic t.c ~name:(Circuit.fresh_name t.c (scoped t name))) s |> fun n -> n.Circuit.id

let read ((t, mi) : mem) ?en addr =
  check_live t;
  let addr = materialize t "raddr" addr in
  let en = Option.map (fun e -> materialize t "ren" e) en in
  let n = Circuit.add_read_port t.c ~mem:mi ~name:(Circuit.fresh_name t.c "rdata") ~addr ?en () in
  Expr.var ~width:n.Circuit.width n.Circuit.id

let write ((t, mi) : mem) ~addr ~data ~en =
  check_live t;
  let addr = materialize t "waddr" addr in
  let data = materialize t "wdata" data in
  let en = materialize t "wen" en in
  Circuit.add_write_port t.c ~mem:mi ~addr ~data ~en

let mem_index ((_, mi) : mem) = mi

(* --- Operators --------------------------------------------------------- *)

let common2 a b =
  let w = max (Expr.width a) (Expr.width b) in
  (resize_expr a w, resize_expr b w, w)

let ( +: ) a b =
  let a, b, w = common2 a b in
  Expr.unop (Expr.Extract (w - 1, 0)) (Expr.binop Expr.Add a b)

let ( -: ) a b =
  let a, b, w = common2 a b in
  Expr.unop (Expr.Extract (w - 1, 0)) (Expr.binop Expr.Sub a b)

let ( *: ) a b =
  let a, b, w = common2 a b in
  Expr.unop (Expr.Extract (w - 1, 0)) (Expr.binop Expr.Mul a b)

let add_w a b = Expr.binop Expr.Add a b

let mul_w a b = Expr.binop Expr.Mul a b

let udiv a b = Expr.binop Expr.Div a b

let urem a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.Rem a b

let ( &: ) a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.And a b

let ( |: ) a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.Or a b

let ( ^: ) a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.Xor a b

let lnot a = Expr.unop Expr.Not a

let sll a b = Expr.binop Expr.Dshl a b

let srl a b = Expr.binop Expr.Dshr a b

let sra a b = Expr.binop Expr.Dshr_signed a b

let shl_const a n = Expr.unop (Expr.Shl_const n) a

let shr_const a n = Expr.unop (Expr.Shr_const n) a

let eq a b = Expr.binop Expr.Eq a b

let neq a b = Expr.binop Expr.Neq a b

let ult a b = Expr.binop Expr.Lt a b

let ule a b = Expr.binop Expr.Leq a b

let slt a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.Lt_signed a b

let sle a b =
  let a, b, _ = common2 a b in
  Expr.binop Expr.Leq_signed a b

let mux2 sel a b =
  let a, b, _ = common2 a b in
  Expr.mux sel a b

let select cases ~default =
  List.fold_right (fun (guard, value) acc -> mux2 guard value acc) cases default

let bits s ~hi ~lo = Expr.unop (Expr.Extract (hi, lo)) s

let bit s i = Expr.unop (Expr.Extract (i, i)) s

let cat = function
  | [] -> invalid_arg "Hcl.cat: empty"
  | s :: rest -> List.fold_left (fun acc x -> Expr.binop Expr.Cat acc x) s rest

let resize s w = resize_expr s w

let sext s w =
  if Expr.width s = w then s
  else if Expr.width s > w then Expr.unop (Expr.Extract (w - 1, 0)) s
  else Expr.unop (Expr.Pad_signed w) s

let reduce_or s = Expr.unop Expr.Reduce_or s

let reduce_and s = Expr.unop Expr.Reduce_and s

let reduce_xor s = Expr.unop Expr.Reduce_xor s

let is_zero s = Expr.unop Expr.Not (Expr.unop Expr.Reduce_or s)

let non_zero s = Expr.unop Expr.Reduce_or s
