lib/hcl/hcl.ml: Circuit Expr Fun Gsim_bits Gsim_ir List Option String
