lib/hcl/hcl.mli: Circuit Gsim_bits Gsim_ir
