(** C++ code emission.

    Mirrors the paper's backend: the optimized graph is emitted as a
    self-contained C++ translation unit.  Values up to 64 bits are plain
    [uint64_t]; wider signals use the [Wide<N>] limb template from the
    embedded runtime preamble.  Three emission modes reproduce the
    simulator families compared in Table IV:

    - {!Full_cycle_mode} (Verilator/Arcilator shape): one [eval()] that
      computes every node in topological order;
    - {!Essent_mode}: per-partition functions guarded by active flags;
    - {!Gsim_mode}: supernode functions with word-packed active bits and
      slow-path reset handling.

    The emitted source is an artifact (written by the CLI, measured by the
    resource bench); this repository's engines execute the same graph via
    closure compilation instead of a C++ toolchain. *)

open Gsim_ir

type mode = Full_cycle_mode | Essent_mode | Gsim_mode

type result = {
  source : string;
  emission_seconds : float;
  code_bytes : int;   (** bytes of generated code (the .text proxy) *)
  data_bytes : int;   (** bytes of simulation state, memories excluded *)
  mem_bytes : int;
}

val emit : ?mode:mode -> ?partition:Gsim_partition.Partition.t -> Circuit.t -> result
(** [Essent_mode]/[Gsim_mode] require a partition (defaults to
    {!Gsim_partition.Partition.gsim} with max size 32). *)

val mode_of_string : string -> mode option
