lib/emit/emit.ml: Array Buffer Circuit Expr Format Gsim_bits Gsim_ir Gsim_partition Hashtbl Int64 List Printf String Sys
