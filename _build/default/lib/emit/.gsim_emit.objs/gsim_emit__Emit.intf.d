lib/emit/emit.mli: Circuit Gsim_ir Gsim_partition
