(** Facade: parse and elaborate FIRRTL into the graph IR. *)

type loaded = {
  circuit : Gsim_ir.Circuit.t;
  halt : int option;
      (** Synthesized ["$halt"] output when the design uses [stop]. *)
}

exception Error of string

val load_string : string -> loaded
(** Raises [Error] with a located message on any lexical, syntactic or
    elaboration problem. *)

val load_file : string -> loaded
