(** Recursive-descent parser for the supported FIRRTL subset. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse_string : string -> Ast.circuit

val parse_file : string -> Ast.circuit
