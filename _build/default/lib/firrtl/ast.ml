type ty = Uint of int | Sint of int | Clock_ty | Reset_ty

type direction = Input | Output

type port = { port_name : string; port_dir : direction; port_ty : ty }

type ref_path = string list

type expr =
  | Literal of ty * Gsim_bits.Bits.t
  | Ref of ref_path
  | Mux of expr * expr * expr
  | Validif of expr * expr
  | Primop of string * expr list * int list

type mem_def = {
  mem_def_name : string;
  data_type : ty;
  mem_depth : int;
  read_latency : int;
  write_latency : int;
  readers : string list;
  writers : string list;
}

type stmt =
  | Wire of string * ty
  | Node of string * expr
  | Reg of { reg_def_name : string; reg_ty : ty; reset : (expr * expr) option }
  | Inst of string * string
  | Mem of mem_def
  | Connect of ref_path * expr
  | Invalidate of ref_path
  | When of expr * stmt list * stmt list
  | Skip
  | Stop of expr * int
  | Printf_stmt

type module_def = { module_name : string; ports : port list; body : stmt list }

type circuit = { circuit_top : string; modules : module_def list }

let ty_width = function
  | Uint w | Sint w -> w
  | Reset_ty -> 1
  | Clock_ty -> failwith "Ast.ty_width: Clock has no width"

let ty_signed = function Sint _ -> true | Uint _ | Clock_ty | Reset_ty -> false
