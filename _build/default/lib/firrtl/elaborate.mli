(** Elaboration of a parsed FIRRTL circuit into the graph IR.

    Module instances are flattened (names prefixed with the instance
    path), [when] blocks are lowered to muxes with last-connect-wins
    semantics, registers get their accumulated next-value expression
    (reset muxes are emitted in the canonical shape the reset-optimization
    pass recognizes), memories become IR memories with combinational read
    ports (read latency 1 adds an output register), and [stop] statements
    are ORed into a synthesized 1-bit output named ["$halt"].

    [is invalid] and unconnected signals read as zero: the simulator is
    x-propagation free, matching two-state simulation. *)

open Gsim_ir

exception Elab_error of string

type result = {
  circuit : Circuit.t;
  halt : int option;
      (** Node id of the synthesized ["$halt"] output, present when the
          design contains [stop] statements. *)
}

val elaborate : Ast.circuit -> result
