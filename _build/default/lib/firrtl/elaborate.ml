module Bits = Gsim_bits.Bits
open Gsim_ir

exception Elab_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

type result = { circuit : Circuit.t; halt : int option }

(* A value during elaboration: an IR expression plus its FIRRTL
   signedness. *)
type value = { e : Expr.t; signed : bool }

let uint e = { e; signed = false }

(* Resize [v] to [w] bits respecting its signedness. *)
let resize v ~w =
  let cur = Expr.width v.e in
  if cur = w then v
  else if w < cur then { v with e = Expr.unop (Expr.Extract (w - 1, 0)) v.e }
  else if v.signed then { v with e = Expr.unop (Expr.Pad_signed w) v.e }
  else { v with e = Expr.unop (Expr.Pad_unsigned w) v.e }

(* A connect accumulated under the active when-conditions; newest first. *)
type pending = { guard : Expr.t option; rhs : value }

(* Last-connect-wins with guards: apply connects oldest-to-newest, a
   guarded connect through a mux over the accumulated value. *)
let fold_connects ~width ~default pending =
  List.fold_left
    (fun acc p ->
      let rhs = (resize p.rhs ~w:width).e in
      match p.guard with None -> rhs | Some g -> Expr.mux g rhs acc)
    default (List.rev pending)

type wire_state = {
  w_node : Circuit.node;
  w_signed : bool;
  mutable w_pending : pending list;
}

type reg_reset = R_none | R_const | R_expr of Expr.t * Expr.t

type reg_state = {
  r_reg : Circuit.register;
  r_signed : bool;
  r_reset : reg_reset;
  mutable r_pending : pending list;
}

type mem_port_state = {
  p_addr : wire_state;
  p_en : wire_state;
  p_data : value;                   (* readable data (readers) *)
  p_wdata : wire_state option;      (* writers *)
  p_mask : wire_state option;
}

type mem_state = {
  m_index : int;
  m_ports : (string * mem_port_state) list;
}

type binding =
  | Bval of value
  | Bwire of wire_state
  | Breg of reg_state
  | Bmem of mem_state
  | Binst of (string * binding) list
  | Bclock

(* ------------------------------------------------------------------ *)
(* Primops                                                             *)
(* ------------------------------------------------------------------ *)

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  max 1 (go 0 1)

let truncate_expr e ~w =
  if Expr.width e = w then e else Expr.unop (Expr.Extract (w - 1, 0)) e

(* Signed-aware extension of both operands to the result width, then a
   modular operation truncated back to it. *)
let arith2 op a b ~result_w =
  let signed = a.signed || b.signed in
  let ext v =
    if Expr.width v.e >= result_w then v.e
    else if signed then Expr.unop (Expr.Pad_signed result_w) v.e
    else Expr.unop (Expr.Pad_unsigned result_w) v.e
  in
  { e = truncate_expr (Expr.binop op (ext a) (ext b)) ~w:result_w; signed }

let primop name args ints =
  let arg i = try List.nth args i with _ -> err "primop %s: missing argument %d" name i in
  let static i =
    try List.nth ints i with _ -> err "primop %s: missing static argument %d" name i
  in
  let w0 () = Expr.width (arg 0).e in
  match (name, List.length args, List.length ints) with
  | "add", 2, 0 ->
    arith2 Expr.Add (arg 0) (arg 1) ~result_w:(max (w0 ()) (Expr.width (arg 1).e) + 1)
  | "sub", 2, 0 ->
    arith2 Expr.Sub (arg 0) (arg 1) ~result_w:(max (w0 ()) (Expr.width (arg 1).e) + 1)
  | "mul", 2, 0 ->
    let a = arg 0 and b = arg 1 in
    let w = Expr.width a.e + Expr.width b.e in
    if a.signed || b.signed then arith2 Expr.Mul a b ~result_w:w
    else { e = Expr.binop Expr.Mul a.e b.e; signed = false }
  | "div", 2, 0 ->
    let a = arg 0 and b = arg 1 in
    if a.signed || b.signed then { e = Expr.binop Expr.Div_signed a.e b.e; signed = true }
    else { e = Expr.binop Expr.Div a.e b.e; signed = false }
  | "rem", 2, 0 ->
    let a = arg 0 and b = arg 1 in
    if a.signed || b.signed then { e = Expr.binop Expr.Rem_signed a.e b.e; signed = true }
    else { e = Expr.binop Expr.Rem a.e b.e; signed = false }
  | ("lt" | "leq" | "gt" | "geq" | "eq" | "neq"), 2, 0 ->
    let a = arg 0 and b = arg 1 in
    let signed = a.signed || b.signed in
    let a, b =
      if signed then begin
        (* Compare on a common sign-extended width; the unsigned compare
           ops then need the signed variants below. *)
        let w = max (Expr.width a.e) (Expr.width b.e) in
        (resize a ~w, resize b ~w)
      end
      else (a, b)
    in
    let op =
      match (name, signed) with
      | "lt", false -> Expr.Lt
      | "lt", true -> Expr.Lt_signed
      | "leq", false -> Expr.Leq
      | "leq", true -> Expr.Leq_signed
      | "gt", false -> Expr.Gt
      | "gt", true -> Expr.Gt_signed
      | "geq", false -> Expr.Geq
      | "geq", true -> Expr.Geq_signed
      | ("eq" | "neq"), _ -> if name = "eq" then Expr.Eq else Expr.Neq
      | _ -> assert false
    in
    uint (Expr.binop op a.e b.e)
  | "pad", 1, 1 -> resize (arg 0) ~w:(max (w0 ()) (static 0))
  | "asUInt", 1, 0 -> { (arg 0) with signed = false }
  | "asSInt", 1, 0 -> { (arg 0) with signed = true }
  | ("asClock" | "asAsyncReset"), 1, 0 -> arg 0
  | "cvt", 1, 0 ->
    let a = arg 0 in
    if a.signed then a
    else { e = Expr.unop (Expr.Pad_unsigned (w0 () + 1)) a.e; signed = true }
  | "neg", 1, 0 ->
    let a = arg 0 in
    let w = w0 () + 1 in
    if a.signed then
      {
        e =
          truncate_expr
            (Expr.binop Expr.Sub (Expr.const (Bits.zero w)) (Expr.unop (Expr.Pad_signed w) a.e))
            ~w;
        signed = true;
      }
    else { e = Expr.unop Expr.Neg a.e; signed = true }
  | "not", 1, 0 -> uint (Expr.unop Expr.Not (arg 0).e)
  | ("and" | "or" | "xor"), 2, 0 ->
    let a = arg 0 and b = arg 1 in
    let w = max (Expr.width a.e) (Expr.width b.e) in
    let op = match name with "and" -> Expr.And | "or" -> Expr.Or | _ -> Expr.Xor in
    uint (Expr.binop op (resize a ~w).e (resize b ~w).e)
  | "andr", 1, 0 -> uint (Expr.unop Expr.Reduce_and (arg 0).e)
  | "orr", 1, 0 -> uint (Expr.unop Expr.Reduce_or (arg 0).e)
  | "xorr", 1, 0 -> uint (Expr.unop Expr.Reduce_xor (arg 0).e)
  | "cat", 2, 0 -> uint (Expr.binop Expr.Cat (arg 0).e (arg 1).e)
  | "bits", 1, 2 -> uint (Expr.unop (Expr.Extract (static 0, static 1)) (arg 0).e)
  | "head", 1, 1 ->
    let w = w0 () in
    uint (Expr.unop (Expr.Extract (w - 1, w - static 0)) (arg 0).e)
  | "tail", 1, 1 -> uint (Expr.unop (Expr.Extract (w0 () - 1 - static 0, 0)) (arg 0).e)
  | "shl", 1, 1 -> { e = Expr.unop (Expr.Shl_const (static 0)) (arg 0).e; signed = (arg 0).signed }
  | "shr", 1, 1 ->
    let a = arg 0 in
    let n = static 0 and w = w0 () in
    if a.signed then
      let lo = min n (w - 1) in
      { e = Expr.unop (Expr.Extract (w - 1, lo)) a.e; signed = true }
    else { e = Expr.unop (Expr.Shr_const n) a.e; signed = false }
  | "dshl", 2, 0 ->
    let a = arg 0 and b = arg 1 in
    let wa = Expr.width a.e and wb = Expr.width b.e in
    if wb > 16 then err "dshl: shift-amount width %d would explode the result width" wb;
    let w = wa + (1 lsl wb) - 1 in
    if w > 1 lsl 16 then err "dshl: result width %d too large" w;
    { e = Expr.binop Expr.Dshl (resize a ~w).e b.e; signed = a.signed }
  | "dshr", 2, 0 ->
    let a = arg 0 and b = arg 1 in
    if a.signed then { e = Expr.binop Expr.Dshr_signed a.e b.e; signed = true }
    else { e = Expr.binop Expr.Dshr a.e b.e; signed = false }
  | _ -> err "unsupported primop %s/%d/%d" name (List.length args) (List.length ints)

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)
(* ------------------------------------------------------------------ *)

type ctx = {
  c : Circuit.t;
  modules : (string, Ast.module_def) Hashtbl.t;
  mutable halts : Expr.t list;
  mutable finalizers : (unit -> unit) list;
      (* Run once after the whole hierarchy is walked: a parent connects to
         its children's input ports after the child was elaborated, so no
         wire may be finalized before every module body has been seen. *)
}

let make_wire ctx ~name ~width ~signed =
  let node = Circuit.add_logic ctx.c ~name (Expr.const (Bits.zero width)) in
  { w_node = node; w_signed = signed; w_pending = [] }

let wire_value ws =
  { e = Expr.var ~width:ws.w_node.Circuit.width ws.w_node.Circuit.id; signed = ws.w_signed }

let finalize_wire ctx ws =
  let width = ws.w_node.Circuit.width in
  let e = fold_connects ~width ~default:(Expr.const (Bits.zero width)) ws.w_pending in
  Circuit.set_expr ctx.c ws.w_node.Circuit.id e

let reg_read_value ctx rs =
  let node = Circuit.node ctx.c rs.r_reg.Circuit.read in
  { e = Expr.var ~width:node.Circuit.width node.Circuit.id; signed = rs.r_signed }

let finalize_reg ctx rs =
  let read = Circuit.node ctx.c rs.r_reg.Circuit.read in
  let width = read.Circuit.width in
  let default = Expr.var ~width read.Circuit.id in
  let next = fold_connects ~width ~default rs.r_pending in
  let next =
    match rs.r_reset with
    | R_none | R_const -> next  (* R_const: set_next adds the canonical mux *)
    | R_expr (sig_e, val_e) -> Expr.mux sig_e (truncate_expr (Expr.unop (Expr.Pad_unsigned width) val_e) ~w:width) next
  in
  Circuit.set_next ctx.c rs.r_reg next

let rec lookup ctx env path =
  match path with
  | [] -> err "empty reference"
  | [ x ] -> (
      match List.assoc_opt x !env with
      | Some b -> b
      | None -> err "unknown identifier %S" x)
  | x :: rest -> (
      match List.assoc_opt x !env with
      | Some (Binst ports) ->
        let r = ref ports in
        lookup ctx r rest
      | Some (Bmem ms) -> lookup_mem ms rest
      | Some (Bval _ | Bwire _ | Breg _ | Bclock) | None ->
        err "%S is not an instance or memory" x)

and lookup_mem ms rest =
  match rest with
  | [ port; field ] -> (
      let ps =
        match List.assoc_opt port ms.m_ports with
        | Some ps -> ps
        | None -> err "memory has no port %S" port
      in
      match field with
      | "addr" -> Bwire ps.p_addr
      | "en" -> Bwire ps.p_en
      | "clk" -> Bclock
      | "data" -> (
          match ps.p_wdata with Some wd -> Bwire wd | None -> Bval ps.p_data)
      | "mask" -> (
          match ps.p_mask with Some m -> Bwire m | None -> err "port %S has no mask" port)
      | f -> err "unknown memory port field %S" f)
  | _ -> err "malformed memory reference"

let rec eval_expr ctx env (e : Ast.expr) : value =
  match e with
  | Ast.Literal (ty, v) -> { e = Expr.const v; signed = Ast.ty_signed ty }
  | Ast.Ref path -> (
      match lookup ctx env path with
      | Bval v -> v
      | Bwire ws -> wire_value ws
      | Breg rs -> reg_read_value ctx rs
      | Bclock -> err "clock used in an expression"
      | Bmem _ | Binst _ -> err "reference does not denote a value")
  | Ast.Mux (c, a, b) ->
    let vc = eval_expr ctx env c in
    let va = eval_expr ctx env a and vb = eval_expr ctx env b in
    let w = max (Expr.width va.e) (Expr.width vb.e) in
    {
      e = Expr.mux vc.e (resize va ~w).e (resize vb ~w).e;
      signed = va.signed && vb.signed;
    }
  | Ast.Validif (_, a) -> eval_expr ctx env a
  | Ast.Primop (name, args, ints) ->
    primop name (List.map (eval_expr ctx env) args) ints

(* A value as a plain node id (for reset signals and port operands). *)
let materialize ctx ~name v =
  match v.e.Expr.desc with
  | Expr.Var id -> id
  | _ -> (Circuit.add_logic ctx.c ~name v.e).Circuit.id

(* Constant-fold an elaborated expression if it is a literal. *)
let const_of v = match v.e.Expr.desc with Expr.Const b -> Some b | _ -> None

let conj guard cond =
  match guard with None -> Some cond | Some g -> Some (Expr.binop Expr.And g cond)

let conj_not guard cond = conj guard (Expr.unop Expr.Not cond)

let rec elaborate_module ctx ~prefix ~top (m : Ast.module_def) :
    (string * binding) list =
  let pfx name = if prefix = "" then name else prefix ^ "." ^ name in
  let env : (string * binding) list ref = ref [] in
  let bind name b = env := (name, b) :: !env in
  let defer f = ctx.finalizers <- f :: ctx.finalizers in
  (* Ports. *)
  let port_bindings = ref [] in
  List.iter
    (fun (p : Ast.port) ->
      match (p.Ast.port_ty, p.Ast.port_dir) with
      | Ast.Clock_ty, _ -> bind p.Ast.port_name Bclock
      | ty, Ast.Input ->
        let width = Ast.ty_width ty and signed = Ast.ty_signed ty in
        if top then begin
          let node = Circuit.add_input ctx.c ~name:(pfx p.Ast.port_name) ~width in
          bind p.Ast.port_name
            (Bval { e = Expr.var ~width node.Circuit.id; signed })
        end
        else begin
          (* The parent drives this port: it is a wire from inside. *)
          let ws = make_wire ctx ~name:(pfx p.Ast.port_name) ~width ~signed in
          defer (fun () -> finalize_wire ctx ws);
          bind p.Ast.port_name (Bwire ws);
          port_bindings := (p.Ast.port_name, Bwire ws) :: !port_bindings
        end
      | ty, Ast.Output ->
        let width = Ast.ty_width ty and signed = Ast.ty_signed ty in
        let ws = make_wire ctx ~name:(pfx p.Ast.port_name) ~width ~signed in
        defer (fun () -> finalize_wire ctx ws);
        bind p.Ast.port_name (Bwire ws);
        if top then Circuit.mark_output ctx.c ws.w_node.Circuit.id
        else
          (* The parent reads this port as a plain value. *)
          port_bindings := (p.Ast.port_name, Bval (wire_value ws)) :: !port_bindings)
    m.Ast.ports;
  (* Body. *)
  let rec walk guard stmts = List.iter (stmt guard) stmts
  and stmt guard (s : Ast.stmt) =
    match s with
    | Ast.Wire (name, ty) ->
      let ws =
        make_wire ctx ~name:(pfx name) ~width:(Ast.ty_width ty) ~signed:(Ast.ty_signed ty)
      in
      defer (fun () -> finalize_wire ctx ws);
      bind name (Bwire ws)
    | Ast.Node (name, e) ->
      let v = eval_expr ctx env e in
      let node = Circuit.add_logic ctx.c ~name:(pfx name) v.e in
      bind name
        (Bval { e = Expr.var ~width:node.Circuit.width node.Circuit.id; signed = v.signed })
    | Ast.Reg { reg_def_name = name; reg_ty; reset } ->
      let width = Ast.ty_width reg_ty and signed = Ast.ty_signed reg_ty in
      let reset_info, circuit_reset =
        match reset with
        | None -> (R_none, None)
        | Some (sig_e, val_e) -> (
            let vs = eval_expr ctx env sig_e in
            let vv = eval_expr ctx env val_e in
            let vv = resize vv ~w:width in
            match const_of vv with
            | Some bits ->
              let sig_id = materialize ctx ~name:(pfx (name ^ "$rst")) vs in
              (R_const, Some (sig_id, bits))
            | None -> (R_expr (vs.e, vv.e), None))
      in
      let r =
        Circuit.add_register ctx.c ~name:(pfx name) ~width ~init:(Bits.zero width)
          ?reset:circuit_reset ()
      in
      let rs = { r_reg = r; r_signed = signed; r_reset = reset_info; r_pending = [] } in
      defer (fun () -> finalize_reg ctx rs);
      bind name (Breg rs)
    | Ast.Inst (name, module_name) -> (
        match Hashtbl.find_opt ctx.modules module_name with
        | Some sub ->
          let ports = elaborate_module ctx ~prefix:(pfx name) ~top:false sub in
          bind name (Binst ports)
        | None -> err "unknown module %S" module_name)
    | Ast.Mem md -> bind md.Ast.mem_def_name (elaborate_mem ctx ~pfx ~defer md)
    | Ast.Connect (path, rhs_e) -> (
        match lookup ctx env path with
        | Bclock -> ()  (* clock wiring: single global clock *)
        | Bwire ws ->
          ws.w_pending <- { guard; rhs = eval_expr ctx env rhs_e } :: ws.w_pending
        | Breg rs ->
          rs.r_pending <- { guard; rhs = eval_expr ctx env rhs_e } :: rs.r_pending
        | Bval _ -> err "cannot connect to node %s" (String.concat "." path)
        | Bmem _ | Binst _ -> err "cannot connect to %s" (String.concat "." path))
    | Ast.Invalidate _ -> ()  (* unconnected reads as zero already *)
    | Ast.When (cond_e, then_b, else_b) ->
      let cond = (eval_expr ctx env cond_e).e in
      walk (conj guard cond) then_b;
      if else_b <> [] then walk (conj_not guard cond) else_b
    | Ast.Skip | Ast.Printf_stmt -> ()
    | Ast.Stop (cond_e, _code) ->
      let cond = (eval_expr ctx env cond_e).e in
      let full = match guard with None -> cond | Some g -> Expr.binop Expr.And g cond in
      ctx.halts <- full :: ctx.halts
  in
  walk None m.Ast.body;
  !port_bindings

and elaborate_mem ctx ~pfx ~defer (md : Ast.mem_def) =
  if md.Ast.write_latency <> 1 then err "memory %S: write latency must be 1" md.Ast.mem_def_name;
  if md.Ast.read_latency > 1 then err "memory %S: read latency must be 0 or 1" md.Ast.mem_def_name;
  let width = Ast.ty_width md.Ast.data_type in
  let signed = Ast.ty_signed md.Ast.data_type in
  let mem =
    Circuit.add_memory ctx.c ~name:(pfx md.Ast.mem_def_name) ~width ~depth:md.Ast.mem_depth
  in
  let addr_width = clog2 md.Ast.mem_depth in
  let port_name p f = pfx (Printf.sprintf "%s.%s.%s" md.Ast.mem_def_name p f) in
  let readers =
    List.map
      (fun rname ->
        let p_addr = make_wire ctx ~name:(port_name rname "addr") ~width:addr_width ~signed:false in
        let p_en = make_wire ctx ~name:(port_name rname "en") ~width:1 ~signed:false in
        defer (fun () -> finalize_wire ctx p_addr);
        defer (fun () -> finalize_wire ctx p_en);
        let port =
          Circuit.add_read_port ctx.c ~mem ~name:(port_name rname "data")
            ~addr:p_addr.w_node.Circuit.id ~en:p_en.w_node.Circuit.id ()
        in
        let data_value =
          if md.Ast.read_latency = 0 then
            { e = Expr.var ~width port.Circuit.id; signed }
          else begin
            (* Latency 1: an output register that holds when disabled. *)
            let r =
              Circuit.add_register ctx.c ~name:(port_name rname "data$reg") ~width
                ~init:(Bits.zero width) ()
            in
            Circuit.set_next ctx.c r
              (Expr.mux
                 (Expr.var ~width:1 p_en.w_node.Circuit.id)
                 (Expr.var ~width port.Circuit.id)
                 (Expr.var ~width r.Circuit.read));
            { e = Expr.var ~width r.Circuit.read; signed }
          end
        in
        (rname, { p_addr; p_en; p_data = data_value; p_wdata = None; p_mask = None }))
      md.Ast.readers
  in
  let writers =
    List.map
      (fun wname ->
        let p_addr = make_wire ctx ~name:(port_name wname "addr") ~width:addr_width ~signed:false in
        let p_en = make_wire ctx ~name:(port_name wname "en") ~width:1 ~signed:false in
        let p_data = make_wire ctx ~name:(port_name wname "data") ~width ~signed in
        let p_mask = make_wire ctx ~name:(port_name wname "mask") ~width:1 ~signed:false in
        defer (fun () -> finalize_wire ctx p_addr);
        defer (fun () -> finalize_wire ctx p_en);
        defer (fun () -> finalize_wire ctx p_data);
        defer (fun () ->
            (* Mask defaults to enabled when never connected. *)
            if p_mask.w_pending = [] then
              p_mask.w_pending <- [ { guard = None; rhs = uint (Expr.of_int ~width:1 1) } ];
            finalize_wire ctx p_mask);
        defer (fun () ->
            let en_and_mask =
              Circuit.add_logic ctx.c ~name:(port_name wname "wen")
                (Expr.binop Expr.And
                   (Expr.var ~width:1 p_en.w_node.Circuit.id)
                   (Expr.var ~width:1 p_mask.w_node.Circuit.id))
            in
            Circuit.add_write_port ctx.c ~mem ~addr:p_addr.w_node.Circuit.id
              ~data:p_data.w_node.Circuit.id ~en:en_and_mask.Circuit.id);
        ( wname,
          {
            p_addr;
            p_en;
            p_data = uint (Expr.const (Bits.zero width));
            p_wdata = Some p_data;
            p_mask = Some p_mask;
          } ))
      md.Ast.writers
  in
  Bmem { m_index = mem; m_ports = readers @ writers }

let elaborate (ast : Ast.circuit) =
  let modules = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace modules m.Ast.module_name m) ast.Ast.modules;
  let top =
    match Hashtbl.find_opt modules ast.Ast.circuit_top with
    | Some m -> m
    | None -> err "top module %S not found" ast.Ast.circuit_top
  in
  let c = Circuit.create ~name:ast.Ast.circuit_top () in
  let ctx = { c; modules; halts = []; finalizers = [] } in
  ignore (elaborate_module ctx ~prefix:"" ~top:true top);
  List.iter (fun f -> f ()) (List.rev ctx.finalizers);
  let halt =
    match ctx.halts with
    | [] -> None
    | conds ->
      let ored =
        List.fold_left
          (fun acc e -> Expr.binop Expr.Or acc (Expr.unop Expr.Reduce_or e))
          (Expr.const (Bits.zero 1))
          conds
      in
      let node = Circuit.add_logic c ~name:"$halt" ored in
      Circuit.mark_output c node.Circuit.id;
      Some node.Circuit.id
  in
  Circuit.validate c;
  { circuit = c; halt }
