lib/firrtl/parser.ml: Array Ast Format Gsim_bits Lexer List Printf String
