lib/firrtl/parser.mli: Ast
