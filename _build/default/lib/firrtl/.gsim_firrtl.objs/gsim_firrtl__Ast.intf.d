lib/firrtl/ast.mli: Gsim_bits
