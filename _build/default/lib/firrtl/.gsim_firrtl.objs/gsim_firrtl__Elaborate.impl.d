lib/firrtl/elaborate.ml: Ast Circuit Expr Gsim_bits Gsim_ir Hashtbl List Printf String
