lib/firrtl/firrtl_emit.mli: Circuit Gsim_ir
