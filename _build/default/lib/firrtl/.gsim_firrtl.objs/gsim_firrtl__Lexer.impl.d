lib/firrtl/lexer.ml: Array Buffer Format List Printf String
