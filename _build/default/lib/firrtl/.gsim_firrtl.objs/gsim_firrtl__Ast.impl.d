lib/firrtl/ast.ml: Gsim_bits
