lib/firrtl/elaborate.mli: Ast Circuit Gsim_ir
