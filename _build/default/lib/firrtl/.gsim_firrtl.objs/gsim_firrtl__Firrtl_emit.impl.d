lib/firrtl/firrtl_emit.ml: Array Buffer Circuit Expr Gsim_bits Gsim_ir Hashtbl List Option Printf String
