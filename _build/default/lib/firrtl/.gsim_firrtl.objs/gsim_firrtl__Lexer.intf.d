lib/firrtl/lexer.mli: Format
