lib/firrtl/firrtl.mli: Gsim_ir
