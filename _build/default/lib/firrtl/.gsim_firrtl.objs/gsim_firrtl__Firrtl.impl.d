lib/firrtl/firrtl.ml: Elaborate Gsim_ir Parser Printf
