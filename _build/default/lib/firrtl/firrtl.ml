type loaded = { circuit : Gsim_ir.Circuit.t; halt : int option }

exception Error of string

let of_ast ast =
  match Elaborate.elaborate ast with
  | { Elaborate.circuit; halt } -> { circuit; halt }
  | exception Elaborate.Elab_error msg -> raise (Error ("elaboration: " ^ msg))

let load_string src =
  match Parser.parse_string src with
  | ast -> of_ast ast
  | exception Parser.Parse_error (line, msg) ->
    raise (Error (Printf.sprintf "line %d: %s" line msg))

let load_file path =
  match Parser.parse_file path with
  | ast -> of_ast ast
  | exception Parser.Parse_error (line, msg) ->
    raise (Error (Printf.sprintf "%s:%d: %s" path line msg))
  | exception Sys_error msg -> raise (Error msg)
