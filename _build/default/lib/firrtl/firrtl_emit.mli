(** FIRRTL text emission.

    Serializes a graph IR circuit back to the FIRRTL subset this library
    parses, as one flat module.  Node names are sanitized (dots and
    dollars become underscores, clashes get numeric suffixes); the
    returned table maps node ids to emitted names so testbenches can find
    their signals after a round trip.

    Caveat: FIRRTL cannot express a nonzero power-on value without a
    reset, so registers with [init <> 0] and no reset port lose their
    initial value (a diagnostic lists them). *)

open Gsim_ir

type result = {
  text : string;
  names : (int * string) list;   (** live node id -> emitted name *)
  lossy_inits : string list;     (** registers whose nonzero init was dropped *)
}

val emit : Circuit.t -> result
