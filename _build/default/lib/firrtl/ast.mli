(** Abstract syntax of the supported FIRRTL subset.

    The subset is LoFIRRTL-flavoured: ground types only ([UInt]/[SInt]
    with explicit widths, [Clock], [Reset]), wires, nodes, registers with
    optional synchronous reset, module instances, memories with
    zero-latency readers and unit-latency writers, [when]/[else] blocks
    and last-connect-wins semantics.  Aggregate types must have been
    lowered by the producing compiler, which is what ESSENT consumes as
    well. *)

type ty =
  | Uint of int
  | Sint of int
  | Clock_ty
  | Reset_ty
      (** 1-bit, treated as [Uint 1]. *)

type direction = Input | Output

type port = { port_name : string; port_dir : direction; port_ty : ty }

(** References: plain identifiers, or [inst.port] / [mem.port.field]
    paths. *)
type ref_path = string list

type expr =
  | Literal of ty * Gsim_bits.Bits.t
  | Ref of ref_path
  | Mux of expr * expr * expr
  | Validif of expr * expr
  | Primop of string * expr list * int list
      (** name, expression arguments, integer (static) arguments *)

type mem_def = {
  mem_def_name : string;
  data_type : ty;
  mem_depth : int;
  read_latency : int;
  write_latency : int;
  readers : string list;
  writers : string list;
}

type stmt =
  | Wire of string * ty
  | Node of string * expr
  | Reg of { reg_def_name : string; reg_ty : ty; reset : (expr * expr) option }
  | Inst of string * string  (** instance name, module name *)
  | Mem of mem_def
  | Connect of ref_path * expr
  | Invalidate of ref_path
  | When of expr * stmt list * stmt list
  | Skip
  | Stop of expr * int       (** halt assertion: guard, exit code *)
  | Printf_stmt              (** parsed and ignored *)

type module_def = {
  module_name : string;
  ports : port list;
  body : stmt list;
}

type circuit = { circuit_top : string; modules : module_def list }

val ty_width : ty -> int
(** Raises [Failure] on [Clock_ty]. *)

val ty_signed : ty -> bool
