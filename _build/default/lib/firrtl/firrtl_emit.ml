module Bits = Gsim_bits.Bits
open Gsim_ir

type result = {
  text : string;
  names : (int * string) list;
  lossy_inits : string list;
}

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b ch
      | _ -> Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if s = "" || (s.[0] >= '0' && s.[0] <= '9') then "n_" ^ s else s

(* Assign unique sanitized names to all live nodes.  "clock" is reserved
   for the implicit clock port. *)
let name_table c =
  let used = Hashtbl.create 256 in
  Hashtbl.replace used "clock" ();
  List.iter (fun kw -> Hashtbl.replace used kw ())
    [ "reg"; "wire"; "node"; "mem"; "when"; "else"; "skip"; "mux"; "stop"; "printf";
      "input"; "output"; "module"; "circuit"; "inst"; "of"; "is"; "invalid"; "with" ];
  let names = Hashtbl.create 256 in
  let fresh base =
    let rec pick k =
      let candidate = if k = 0 then base else Printf.sprintf "%s_%d" base k in
      if Hashtbl.mem used candidate then pick (k + 1) else candidate
    in
    let name = pick 0 in
    Hashtbl.replace used name ();
    name
  in
  Circuit.iter_nodes c (fun n ->
      Hashtbl.replace names n.Circuit.id (fresh (sanitize n.Circuit.name)));
  (names, fresh)

let lit b = Printf.sprintf "UInt<%d>(\"h%s\")" (Bits.width b) (Bits.to_hex_string b)

(* Expression to FIRRTL text.  Signed IR operators are expressed through
   asSInt/asUInt conversions; [Dshl] (width-preserving) re-truncates the
   widening FIRRTL dshl. *)
let rec expr_text names (e : Expr.t) : string =
  let sub = expr_text names in
  match e.Expr.desc with
  | Expr.Const b -> lit b
  | Expr.Var id -> (
      match Hashtbl.find_opt names id with
      | Some n -> n
      | None -> failwith (Printf.sprintf "Firrtl_emit: dangling node %d" id))
  | Expr.Mux (s, a, b) ->
    let sel = if Expr.width s = 1 then sub s else Printf.sprintf "orr(%s)" (sub s) in
    Printf.sprintf "mux(%s, %s, %s)" sel (sub a) (sub b)
  | Expr.Unop (op, a) -> (
      let wa = Expr.width a in
      let sa = sub a in
      match op with
      | Expr.Not -> Printf.sprintf "not(%s)" sa
      | Expr.Neg -> Printf.sprintf "sub(UInt<1>(\"h0\"), %s)" sa
      | Expr.Reduce_and -> Printf.sprintf "andr(%s)" sa
      | Expr.Reduce_or -> Printf.sprintf "orr(%s)" sa
      | Expr.Reduce_xor -> Printf.sprintf "xorr(%s)" sa
      | Expr.Shl_const n -> Printf.sprintf "shl(%s, %d)" sa n
      | Expr.Shr_const n -> Printf.sprintf "shr(%s, %d)" sa n
      | Expr.Extract (hi, lo) -> Printf.sprintf "bits(%s, %d, %d)" sa hi lo
      | Expr.Pad_unsigned n ->
        if n >= wa then Printf.sprintf "pad(%s, %d)" sa n
        else Printf.sprintf "bits(%s, %d, 0)" sa (n - 1)
      | Expr.Pad_signed n ->
        if n >= wa then Printf.sprintf "asUInt(pad(asSInt(%s), %d))" sa n
        else Printf.sprintf "bits(%s, %d, 0)" sa (n - 1))
  | Expr.Binop (op, a, b) -> (
      let wa = Expr.width a in
      let sa = sub a and sb = sub b in
      let signed2 name = Printf.sprintf "asUInt(%s(asSInt(%s), asSInt(%s)))" name sa sb in
      let signed_cmp name = Printf.sprintf "%s(asSInt(%s), asSInt(%s))" name sa sb in
      match op with
      | Expr.Add -> Printf.sprintf "add(%s, %s)" sa sb
      | Expr.Sub -> Printf.sprintf "asUInt(sub(%s, %s))" sa sb
      | Expr.Mul -> Printf.sprintf "mul(%s, %s)" sa sb
      | Expr.Div -> Printf.sprintf "div(%s, %s)" sa sb
      | Expr.Rem -> Printf.sprintf "rem(%s, %s)" sa sb
      | Expr.Div_signed -> signed2 "div"
      | Expr.Rem_signed -> signed2 "rem"
      | Expr.And -> Printf.sprintf "and(%s, %s)" sa sb
      | Expr.Or -> Printf.sprintf "or(%s, %s)" sa sb
      | Expr.Xor -> Printf.sprintf "xor(%s, %s)" sa sb
      | Expr.Cat -> Printf.sprintf "cat(%s, %s)" sa sb
      | Expr.Eq -> Printf.sprintf "eq(%s, %s)" sa sb
      | Expr.Neq -> Printf.sprintf "neq(%s, %s)" sa sb
      | Expr.Lt -> Printf.sprintf "lt(%s, %s)" sa sb
      | Expr.Leq -> Printf.sprintf "leq(%s, %s)" sa sb
      | Expr.Gt -> Printf.sprintf "gt(%s, %s)" sa sb
      | Expr.Geq -> Printf.sprintf "geq(%s, %s)" sa sb
      | Expr.Lt_signed -> signed_cmp "lt"
      | Expr.Leq_signed -> signed_cmp "leq"
      | Expr.Gt_signed -> signed_cmp "gt"
      | Expr.Geq_signed -> signed_cmp "geq"
      | Expr.Dshl ->
        (* The IR form keeps the operand width.  A wide shift amount would
           explode FIRRTL's dshl result width, so it is clamped: amounts
           of [wa] or more produce zero anyway. *)
        let wb = Expr.width b in
        if wb <= 10 then Printf.sprintf "bits(dshl(%s, %s), %d, 0)" sa sb (wa - 1)
        else begin
          let rec clog2 acc v = if v >= wa + 1 then acc else clog2 (acc + 1) (v * 2) in
          let k = max 1 (clog2 0 1) in
          Printf.sprintf
            "mux(geq(%s, UInt<%d>(%d)), UInt<%d>(\"h0\"), bits(dshl(%s, bits(%s, %d, 0)), %d, 0))"
            sb wb wa wa sa sb (k - 1) (wa - 1)
        end
      | Expr.Dshr -> Printf.sprintf "dshr(%s, %s)" sa sb
      | Expr.Dshr_signed -> Printf.sprintf "asUInt(dshr(asSInt(%s), %s))" sa sb)

let emit c =
  let names, fresh = name_table c in
  (* FIRRTL has no name for a register's next value; an expression that
     reads one cannot be serialized. *)
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with
      | Some e ->
        Expr.iter_vars
          (fun v ->
            match (Circuit.node c v).Circuit.kind with
            | Circuit.Reg_next _ ->
              failwith "Firrtl_emit: expression reads a register's next value"
            | _ -> ())
          e
      | None -> ());
  let name id = Hashtbl.find names id in
  let buf = Buffer.create (64 * 1024) in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let module_name = sanitize (Circuit.name c) in
  let lossy = ref [] in
  add "circuit %s :\n  module %s :\n" module_name module_name;
  add "    input clock : Clock\n";
  (* Ports. *)
  List.iter
    (fun (n : Circuit.node) -> add "    input %s : UInt<%d>\n" (name n.Circuit.id) n.Circuit.width)
    (Circuit.inputs c);
  let outputs = Circuit.outputs c in
  let out_port = Hashtbl.create 16 in
  List.iter
    (fun (n : Circuit.node) ->
      let pname = fresh (name n.Circuit.id ^ "_out") in
      Hashtbl.replace out_port n.Circuit.id pname;
      add "    output %s : UInt<%d>\n" pname n.Circuit.width)
    outputs;
  add "\n";
  (* Memory read-port data values are wires so that textual order does not
     constrain the node emission below. *)
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.kind with
      | Circuit.Mem_read _ -> add "    wire %s : UInt<%d>\n" (name n.Circuit.id) n.Circuit.width
      | _ -> ());
  (* Registers: declared before use. *)
  List.iter
    (fun (r : Circuit.register) ->
      let rname = name r.Circuit.read in
      let width = (Circuit.node c r.Circuit.read).Circuit.width in
      (match r.Circuit.reset with
       | Some rst ->
         add "    reg %s : UInt<%d>, clock with : (reset => (%s, %s))\n" rname width
           (expr_text names (Expr.var ~width:1 rst.Circuit.reset_signal))
           (lit rst.Circuit.reset_value)
       | None -> add "    reg %s : UInt<%d>, clock\n" rname width);
      if not (Bits.is_zero r.Circuit.init) then lossy := rname :: !lossy)
    (Circuit.registers c);
  (* Memories. *)
  Array.iteri
    (fun mi (m : Circuit.memory) ->
      let mem_name = Printf.sprintf "%s_%d" (sanitize m.Circuit.mem_name) mi in
      add "    mem %s :\n" mem_name;
      add "      data-type => UInt<%d>\n" m.Circuit.mem_width;
      add "      depth => %d\n" m.Circuit.depth;
      add "      read-latency => 0\n      write-latency => 1\n";
      List.iteri (fun i _ -> add "      reader => r%d\n" i) m.Circuit.read_port_ids;
      List.iteri (fun i _ -> add "      writer => w%d\n" i) m.Circuit.write_ports)
    (Circuit.memories c);
  add "\n";
  (* Combinational nodes in evaluation order.  Register-next values and
     port hookups are emitted as connects after all nodes exist. *)
  let order = Circuit.eval_order c in
  Array.iter
    (fun id ->
      let n = Circuit.node c id in
      match n.Circuit.kind with
      | Circuit.Logic ->
        add "    node %s = %s\n" (name id) (expr_text names (Option.get n.Circuit.expr))
      | Circuit.Mem_read _ | Circuit.Reg_next _ | Circuit.Input | Circuit.Reg_read _ -> ())
    order;
  add "\n";
  (* Register next-values. *)
  List.iter
    (fun (r : Circuit.register) ->
      let next = Circuit.node c r.Circuit.next in
      add "    %s <= %s\n" (name r.Circuit.read) (expr_text names (Option.get next.Circuit.expr)))
    (Circuit.registers c);
  (* Memory port hookups; read-port data nodes become node aliases. *)
  Array.iteri
    (fun mi (m : Circuit.memory) ->
      let mem_name = Printf.sprintf "%s_%d" (sanitize m.Circuit.mem_name) mi in
      List.iteri
        (fun i data_id ->
          match (Circuit.node c data_id).Circuit.kind with
          | Circuit.Mem_read pi ->
            let p = Circuit.read_port c pi in
            let addr_node = Circuit.node c p.Circuit.r_addr in
            let aw =
              let rec clog2 acc v = if v >= m.Circuit.depth then acc else clog2 (acc + 1) (v * 2) in
              max 1 (clog2 0 1)
            in
            add "    %s.r%d.addr <= bits(pad(%s, %d), %d, 0)\n" mem_name i
              (name p.Circuit.r_addr)
              (max aw addr_node.Circuit.width) (aw - 1);
            (match p.Circuit.r_en with
             | Some en -> add "    %s.r%d.en <= %s\n" mem_name i (name en)
             | None -> add "    %s.r%d.en <= UInt<1>(\"h1\")\n" mem_name i);
            add "    %s.r%d.clk <= clock\n" mem_name i;
            add "    %s <= %s.r%d.data\n" (name data_id) mem_name i
          | _ -> ())
        m.Circuit.read_port_ids;
      List.iteri
        (fun i (w : Circuit.write_port) ->
          let aw =
            let rec clog2 acc v = if v >= m.Circuit.depth then acc else clog2 (acc + 1) (v * 2) in
            max 1 (clog2 0 1)
          in
          let addr_node = Circuit.node c w.Circuit.w_addr in
          add "    %s.w%d.addr <= bits(pad(%s, %d), %d, 0)\n" mem_name i
            (name w.Circuit.w_addr)
            (max aw addr_node.Circuit.width) (aw - 1);
          add "    %s.w%d.data <= %s\n" mem_name i (name w.Circuit.w_data);
          add "    %s.w%d.en <= %s\n" mem_name i (name w.Circuit.w_en);
          add "    %s.w%d.mask <= UInt<1>(\"h1\")\n" mem_name i;
          add "    %s.w%d.clk <= clock\n" mem_name i)
        m.Circuit.write_ports)
    (Circuit.memories c);
  (* Output hookups. *)
  List.iter
    (fun (n : Circuit.node) ->
      add "    %s <= %s\n" (Hashtbl.find out_port n.Circuit.id) (name n.Circuit.id))
    outputs;
  let pairs = Hashtbl.fold (fun id nm acc -> (id, nm) :: acc) names [] in
  { text = Buffer.contents buf; names = pairs; lossy_inits = !lossy }
