(** Indentation-aware FIRRTL lexer. *)

type token =
  | Id of string
  | Int of int
  | Str of string
  | Punct of string
  | Newline
  | Indent
  | Dedent
  | Eof

exception Lex_error of int * string
(** Line number and message. *)

val tokenize : string -> (token * int) array
(** Token stream with line numbers.  Comments ([;] to end of line), file
    info ([@[...]]) and blank lines are dropped; INDENT/DEDENT tokens are
    synthesized from leading whitespace. *)

val pp_token : Format.formatter -> token -> unit
