(** Facade over the evaluated designs and workloads.

    The four designs mirror the paper's Table I: the runnable [stu_core]
    and three scaled synthetic processors.  {!run_program} drives any
    {!Gsim_engine.Sim.t} until the core halts, returning cycle counts —
    the building block of every benchmark. *)

open Gsim_ir

type design = {
  design_name : string;
  description : string;
  build : unit -> Stu_core.core;
}

val stu_core : design
val rocket_like : design
val boom_like : design
val xiangshan_like : design

val all : design list

val by_name : string -> design option

val load_program : Gsim_engine.Sim.t -> Stu_core.handles -> Isa.program -> unit

val run_program :
  ?max_cycles:int -> Gsim_engine.Sim.t -> Stu_core.handles -> int
(** Steps until the halt output asserts; returns cycles executed.  Raises
    [Failure] if [max_cycles] (default 2_000_000) is exceeded. *)

val run_cycles : Gsim_engine.Sim.t -> int -> unit

val check_against_golden :
  Gsim_engine.Sim.t -> Stu_core.handles -> Isa.program -> dmem_size:int -> unit
(** Runs the program on the simulator and compares the final register file
    and retired-instruction count against {!Isa.reference_execute}.
    Raises [Failure] on mismatch. *)

val optimize_design :
  ?level:Gsim_passes.Pipeline.level -> Stu_core.core -> Stu_core.core
(** Applies the pass pipeline and compacts; handles are relocated. *)

val stats_line : Circuit.t -> string
