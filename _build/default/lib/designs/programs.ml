module Bits = Gsim_bits.Bits
open Isa

(* Register conventions: x1..x7,x9 temporaries, x8 outer-loop counter,
   x10..x12 constants, x13/x14 scratch, x15 running checksum. *)

let fresh_label =
  let n = ref 0 in
  fun prefix ->
    incr n;
    Printf.sprintf "%s_%d" prefix !n

let word n = Bits.of_int ~width:32 n

let data_image cells =
  let size = List.fold_left (fun acc (a, _) -> max acc (a + 1)) 0 cells in
  let img = Array.make size (word 0) in
  List.iter (fun (a, v) -> img.(a) <- word v) cells;
  img

(* ------------------------------------------------------------------ *)
(* quick: every instruction class once                                  *)
(* ------------------------------------------------------------------ *)

let quick () =
  let l1 = fresh_label "q_loop" and l2 = fresh_label "q_done" and f = fresh_label "q_fn" in
  let code =
    [
      Alui (Add, 1, 0, 10);
      Alui (Add, 2, 0, 3);
      Label l1;
      Alu (Add, 15, 15, 1);
      Alu (Mul, 3, 1, 2);
      Alu (Xor, 15, 15, 3);
      Alui (Sub, 1, 1, 1);
      Br (Bne, 1, 0, l1);
      Lui (4, 5);
      Alu (Srl, 4, 4, 2);
      Alu (Sltu, 5, 2, 4);
      Store (0, 15, 64);
      Load (6, 0, 64);
      Alu (Sub, 15, 15, 6);
      Jal (7, f);
      Label l2;
      Halt;
      Label f;
      Alui (Or, 15, 15, 1);
      Jalr (0, 7, 0);
    ]
  in
  { prog_name = "quick"; code = assemble code; data = [||] }

(* ------------------------------------------------------------------ *)
(* coremark: hot loop of list walk + matmul + crc                       *)
(* ------------------------------------------------------------------ *)

let list_base = 64
let list_nodes = 48
let mat_a = 512
let mat_b = 528
let mat_c = 544

let coremark_data () =
  (* A scrambled singly-linked list: node i lives at [list_base + i] and
     stores the absolute address of its successor; 0 terminates. *)
  let perm = Array.init list_nodes (fun i -> i) in
  let st = Random.State.make [| 0xC0DE |] in
  for i = list_nodes - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let cells = ref [] in
  for i = 0 to list_nodes - 2 do
    cells := (list_base + perm.(i), list_base + perm.(i + 1)) :: !cells
  done;
  cells := (list_base + perm.(list_nodes - 1), 0) :: !cells;
  (* 4x4 operand matrices. *)
  for i = 0 to 15 do
    cells := (mat_a + i, (i * 7 mod 13) + 1) :: !cells;
    cells := (mat_b + i, (i * 11 mod 17) + 1) :: !cells
  done;
  (data_image !cells, list_base + perm.(0))

let coremark ?(iters = 20) () =
  let data, list_head = coremark_data () in
  let outer = fresh_label "cm_outer" in
  let walk = fresh_label "cm_walk" in
  let loop_i = fresh_label "cm_i" and loop_j = fresh_label "cm_j" and loop_k = fresh_label "cm_k" in
  let crc_loop = fresh_label "cm_crc" and crc_skip = fresh_label "cm_skip" in
  let code =
    [
      Alui (Add, 8, 0, iters);
      Alui (Add, 10, 0, 4);            (* x10 = 4 *)
      Lui (11, 0xEDB88);               (* x11 = CRC polynomial-ish *)
      Alui (Or, 11, 11, 0x320);
      Label outer;
      (* --- phase 1: pointer-chasing list walk --- *)
      Alui (Add, 1, 0, list_head);
      Label walk;
      Alu (Add, 15, 15, 1);
      Load (1, 1, 0);
      Br (Bne, 1, 0, walk);
      (* --- phase 2: 4x4 integer matrix multiply --- *)
      Alui (Add, 2, 0, 0);
      Label loop_i;
      Alui (Add, 3, 0, 0);
      Label loop_j;
      Alui (Add, 4, 0, 0);
      Alui (Add, 5, 0, 0);
      Label loop_k;
      Alui (Sll, 6, 2, 2);
      Alu (Add, 6, 6, 4);
      Load (7, 6, mat_a);
      Alui (Sll, 6, 4, 2);
      Alu (Add, 6, 6, 3);
      Load (9, 6, mat_b);
      Alu (Mul, 7, 7, 9);
      Alu (Add, 5, 5, 7);
      Alui (Add, 4, 4, 1);
      Br (Bltu, 4, 10, loop_k);
      Alui (Sll, 6, 2, 2);
      Alu (Add, 6, 6, 3);
      Store (6, 5, mat_c);
      Alu (Xor, 15, 15, 5);
      Alui (Add, 3, 3, 1);
      Br (Bltu, 3, 10, loop_j);
      Alui (Add, 2, 2, 1);
      Br (Bltu, 2, 10, loop_i);
      (* --- phase 3: CRC-flavoured shift/xor kernel --- *)
      Alui (Xor, 6, 15, 0x5A5);
      Alui (Add, 12, 0, 16);
      Label crc_loop;
      Alui (And, 7, 6, 1);
      Alui (Srl, 6, 6, 1);
      Br (Beq, 7, 0, crc_skip);
      Alu (Xor, 6, 6, 11);
      Label crc_skip;
      Alui (Sub, 12, 12, 1);
      Br (Bne, 12, 0, crc_loop);
      Alu (Xor, 15, 15, 6);
      (* --- iterate --- *)
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, outer);
      Store (0, 15, 0);
      Halt;
    ]
  in
  { prog_name = "coremark"; code = assemble code; data }

(* ------------------------------------------------------------------ *)
(* linux_boot: many distinct phases, flat profile                       *)
(* ------------------------------------------------------------------ *)

let linux_boot ?(phases = 12) () =
  let blocks = ref [] in
  let add block = blocks := block :: !blocks in
  (* Shared "memcpy" routine reached through Jal; x13 = src, x14 = dst,
     x12 = words, returns through x7. *)
  let memcpy = fresh_label "lb_memcpy" in
  let memcpy_loop = fresh_label "lb_memcpy_loop" in
  for p = 0 to phases - 1 do
    let base = 256 + (p * 96 mod 1536) in
    match p mod 5 with
    | 0 ->
      (* Zero a region. *)
      let l = fresh_label "lb_zero" in
      add
        [
          Alui (Add, 1, 0, base);
          Alui (Add, 2, 0, 48);
          Label l;
          Store (1, 0, 0);
          Alui (Add, 1, 1, 1);
          Alui (Sub, 2, 2, 1);
          Br (Bne, 2, 0, l);
        ]
    | 1 ->
      (* Copy a region through the shared routine. *)
      add
        [
          Alui (Add, 13, 0, base);
          Alui (Add, 14, 0, base + 48);
          Alui (Add, 12, 0, 32);
          Jal (7, memcpy);
        ]
    | 2 ->
      (* Checksum a region. *)
      let l = fresh_label "lb_sum" in
      add
        [
          Alui (Add, 1, 0, base);
          Alui (Add, 2, 0, 40);
          Label l;
          Load (3, 1, 0);
          Alu (Add, 15, 15, 3);
          Alui (Add, 1, 1, 1);
          Alui (Sub, 2, 2, 1);
          Br (Bne, 2, 0, l);
        ]
    | 3 ->
      (* Device-poll: a countdown busy loop (near-zero datapath activity,
         the "waiting for hardware" shape of a boot). *)
      let l = fresh_label "lb_poll" in
      add
        [
          Alui (Add, 5, 0, 120 + (p * 13 mod 800));
          Label l;
          Alui (Sub, 5, 5, 1);
          Br (Bne, 5, 0, l);
        ]
    | _ ->
      (* Compute burst: mixed ALU with a few multiplies. *)
      let l = fresh_label "lb_calc" in
      add
        [
          Alui (Add, 1, 0, p + 3);
          Alui (Add, 2, 0, 24);
          Label l;
          Alu (Mul, 3, 1, 2);
          Alu (Xor, 15, 15, 3);
          Alui (Add, 1, 1, 7);
          Alui (Sub, 2, 2, 1);
          Br (Bne, 2, 0, l);
        ]
  done;
  let tail = fresh_label "lb_end" in
  let code =
    List.concat (List.rev !blocks)
    @ [
        Store (0, 15, 1);
        Jal (0, tail);
        (* memcpy routine *)
        Label memcpy;
        Label memcpy_loop;
        Load (3, 13, 0);
        Store (14, 3, 0);
        Alui (Add, 13, 13, 1);
        Alui (Add, 14, 14, 1);
        Alui (Sub, 12, 12, 1);
        Br (Bne, 12, 0, memcpy_loop);
        Jalr (0, 7, 0);
        Label tail;
        Halt;
      ]
  in
  let data = data_image (List.init 1024 (fun i -> (256 + i, (i * 2654435761) land 0xFFFF))) in
  { prog_name = "linux_boot"; code = assemble code; data }

(* ------------------------------------------------------------------ *)
(* SPEC-like checkpoint profiles                                        *)
(* ------------------------------------------------------------------ *)

let spec_streaming ?(scale = 4) () =
  let l = fresh_label "st_outer" and inner = fresh_label "st_inner" in
  let code =
    [
      Alui (Add, 8, 0, scale);
      Label l;
      Alui (Add, 1, 0, 512);   (* src *)
      Alui (Add, 2, 0, 1536);  (* dst *)
      Alui (Add, 3, 0, 512);   (* words *)
      Label inner;
      Load (4, 1, 0);
      Alui (Add, 4, 4, 3);
      Store (2, 4, 0);
      Alu (Add, 15, 15, 4);
      Alui (Add, 1, 1, 1);
      Alui (Add, 2, 2, 1);
      Alui (Sub, 3, 3, 1);
      Br (Bne, 3, 0, inner);
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, l);
      Halt;
    ]
  in
  let data = data_image (List.init 512 (fun i -> (512 + i, (i * 37) land 0xFFFF))) in
  { prog_name = "spec.streaming"; code = assemble code; data }

let spec_pointer_chase ?(scale = 4) () =
  (* A long scrambled cycle through memory; each load depends on the
     previous one. *)
  let nodes = 768 in
  let perm = Array.init nodes (fun i -> i) in
  let st = Random.State.make [| 0xCAFE |] in
  for i = nodes - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- t
  done;
  let base = 1024 in
  let cells =
    List.init nodes (fun i ->
        (base + perm.(i), base + perm.((i + 1) mod nodes)))
  in
  let l = fresh_label "pc_outer" and inner = fresh_label "pc_inner" in
  let code =
    [
      Alui (Add, 8, 0, scale);
      Label l;
      Alui (Add, 1, 0, base + perm.(0));
      Lui (2, 1);                      (* x2 = 4096 steps *)
      Alui (Srl, 2, 2, 2);             (* 1024 steps *)
      Label inner;
      Load (1, 1, 0);
      Alu (Add, 15, 15, 1);
      Alui (Sub, 2, 2, 1);
      Br (Bne, 2, 0, inner);
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, l);
      Halt;
    ]
  in
  { prog_name = "spec.pointer_chase"; code = assemble code; data = data_image cells }

let spec_int_compute ?(scale = 4) () =
  let l = fresh_label "ic_outer" and inner = fresh_label "ic_inner" in
  let code =
    [
      Alui (Add, 8, 0, scale * 4);
      Label l;
      Alui (Add, 1, 0, 0x3F5);
      Alui (Add, 2, 0, 0x2A7);
      Alui (Add, 3, 0, 200);
      Label inner;
      Alu (Add, 4, 1, 2);
      Alu (Xor, 5, 4, 1);
      Alu (Sll, 6, 5, 2);
      Alu (Sub, 1, 6, 4);
      Alu (Or, 2, 5, 2);
      Alu (Srl, 2, 2, 4);
      Alu (Add, 15, 15, 1);
      Alui (Sub, 3, 3, 1);
      Br (Bne, 3, 0, inner);
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, l);
      Halt;
    ]
  in
  { prog_name = "spec.int_compute"; code = assemble code; data = [||] }

let spec_mul_heavy ?(scale = 4) () =
  let l = fresh_label "mh_outer" and inner = fresh_label "mh_inner" in
  let code =
    [
      Alui (Add, 8, 0, scale * 2);
      Label l;
      Alui (Add, 1, 0, 0x35);
      Alui (Add, 2, 0, 0x17);
      Alui (Add, 3, 0, 150);
      Label inner;
      Alu (Mul, 4, 1, 2);
      Alu (Mul, 5, 4, 1);
      Alu (Divu, 6, 5, 2);
      Alu (Remu, 1, 5, 1);
      Alui (Add, 1, 1, 3);
      Alu (Xor, 15, 15, 6);
      Alui (Sub, 3, 3, 1);
      Br (Bne, 3, 0, inner);
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, l);
      Halt;
    ]
  in
  { prog_name = "spec.mul_heavy"; code = assemble code; data = [||] }

let spec_branch_heavy ?(scale = 4) () =
  (* Branches decided by a pseudo-random table: the pattern defeats simple
     history, like the branch-intensive SPEC components. *)
  let table = 512 in
  let cells =
    List.init table (fun i -> (1024 + i, (i * 2654435761) lsr 7 land 1))
  in
  let l = fresh_label "bh_outer" and inner = fresh_label "bh_inner" in
  let odd = fresh_label "bh_odd" and join = fresh_label "bh_join" in
  let code =
    [
      Alui (Add, 8, 0, scale * 2);
      Label l;
      Alui (Add, 1, 0, 1024);
      Alui (Add, 2, 0, table);
      Label inner;
      Load (3, 1, 0);
      Br (Bne, 3, 0, odd);
      Alui (Add, 15, 15, 3);
      Alui (Xor, 15, 15, 0x55);
      Jal (0, join);
      Label odd;
      Alui (Sub, 15, 15, 1);
      Alui (Xor, 15, 15, 0xAA);
      Label join;
      Alui (Add, 1, 1, 1);
      Alui (Sub, 2, 2, 1);
      Br (Bne, 2, 0, inner);
      Alui (Sub, 8, 8, 1);
      Br (Bne, 8, 0, l);
      Halt;
    ]
  in
  { prog_name = "spec.branch_heavy"; code = assemble code; data = data_image cells }

let spec_icache ?(scale = 4) () =
  (* A large straight-line block (wide instruction footprint) executed a
     few times. *)
  let l = fresh_label "ica_outer" in
  let body =
    List.concat
      (List.init 300 (fun i ->
           let k = (i * 7 mod 11) + 1 in
           [
             Alui (Add, 1, 1, k);
             Alu (Xor, 15, 15, 1);
             Alui ((if i mod 3 = 0 then Sll else Srl), 2, 1, (i mod 5) + 1);
             Alu (Add, 15, 15, 2);
           ]))
  in
  let code =
    [ Alui (Add, 8, 0, scale); Label l ]
    @ body
    @ [ Alui (Sub, 8, 8, 1); Br (Bne, 8, 0, l); Halt ]
  in
  { prog_name = "spec.icache"; code = assemble code; data = [||] }

let spec_checkpoints ?(scale = 4) () =
  [
    spec_streaming ~scale ();
    spec_pointer_chase ~scale ();
    spec_int_compute ~scale ();
    spec_mul_heavy ~scale ();
    spec_branch_heavy ~scale ();
    spec_icache ~scale ();
  ]

let names =
  [
    "quick"; "coremark"; "linux_boot"; "spec.streaming"; "spec.pointer_chase";
    "spec.int_compute"; "spec.mul_heavy"; "spec.branch_heavy"; "spec.icache";
  ]

let by_name = function
  | "quick" -> Some quick
  | "coremark" -> Some (fun () -> coremark ())
  | "linux_boot" -> Some (fun () -> linux_boot ())
  | "spec.streaming" -> Some (fun () -> spec_streaming ())
  | "spec.pointer_chase" -> Some (fun () -> spec_pointer_chase ())
  | "spec.int_compute" -> Some (fun () -> spec_int_compute ())
  | "spec.mul_heavy" -> Some (fun () -> spec_mul_heavy ())
  | "spec.branch_heavy" -> Some (fun () -> spec_branch_heavy ())
  | "spec.icache" -> Some (fun () -> spec_icache ())
  | _ -> None
