(** The runnable in-order single-issue core ("stuCore").

    A single-cycle implementation of {!Isa}: fetch, decode, register read,
    execute, memory and writeback all in one clock.  Executing [Halt]
    freezes the core (the PC and all architectural state hold), which
    drops the activity factor to zero — the testbench polls the [halt]
    output.

    The core can be built standalone or added to an existing {!Hcl}
    builder (the scaled synthetic processors wrap it). *)

open Gsim_ir

type handles = {
  halt : int;            (** output node: 1 once [Halt] retired *)
  imem : int;            (** memory index for the code image *)
  dmem : int;            (** memory index for the data image *)
  pc : int;              (** register read node *)
  instret : int;         (** register read node: instructions retired *)
  reg_nodes : int array; (** architectural registers r0..r15 (r0 = -1) *)
  instr_node : int;      (** fetched instruction word (for plug-ins) *)
  running_node : int;    (** 1-bit: not halted *)
}

type config = { imem_depth : int; dmem_depth : int }

val default_config : config

val add_to : Gsim_hcl.Hcl.t -> config -> handles
(** Instantiate the core inside an existing builder (under the current
    scope). *)

type core = { circuit : Circuit.t; h : handles }

val build : ?config:config -> unit -> core
(** Standalone: builds and finalizes a fresh circuit. *)

val relocate : handles -> int array -> handles
(** Remap node ids through a {!Circuit.compact} map. *)
