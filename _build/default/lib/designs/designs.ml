module Bits = Gsim_bits.Bits
module Sim = Gsim_engine.Sim
open Gsim_ir

type design = {
  design_name : string;
  description : string;
  build : unit -> Stu_core.core;
}

let stu_core =
  {
    design_name = "stuCore";
    description = "in-order single-issue, runnable mini-RISC core";
    build = (fun () -> Stu_core.build ());
  }

let rocket_like =
  {
    design_name = "Rocket";
    description = "in-order single-issue with caches, predictor, small ROB";
    build = (fun () -> Synth_core.build Synth_core.rocket_like);
  }

let boom_like =
  {
    design_name = "BOOM";
    description = "out-of-order triple-issue class: wider clusters, deep pipes";
    build = (fun () -> Synth_core.build Synth_core.boom_like);
  }

let xiangshan_like =
  {
    design_name = "XiangShan";
    description = "out-of-order six-issue class: widest configuration";
    build = (fun () -> Synth_core.build Synth_core.xiangshan_like);
  }

let all = [ stu_core; rocket_like; boom_like; xiangshan_like ]

let by_name name =
  List.find_opt (fun d -> String.lowercase_ascii d.design_name = String.lowercase_ascii name) all

let load_program sim (h : Stu_core.handles) (p : Isa.program) =
  sim.Sim.load_mem h.Stu_core.imem p.Isa.code;
  if Array.length p.Isa.data > 0 then sim.Sim.load_mem h.Stu_core.dmem p.Isa.data

let run_program ?(max_cycles = 2_000_000) sim (h : Stu_core.handles) =
  let rec go n =
    if n >= max_cycles then failwith "Designs.run_program: no halt"
    else begin
      sim.Sim.step ();
      if Bits.is_zero (sim.Sim.peek h.Stu_core.halt) then go (n + 1) else n + 1
    end
  in
  go 0

let run_cycles sim n =
  for _ = 1 to n do
    sim.Sim.step ()
  done

let check_against_golden sim (h : Stu_core.handles) (p : Isa.program) ~dmem_size =
  let golden_regs, _, golden_retired =
    Isa.reference_execute ~code:p.Isa.code ~data:p.Isa.data ~dmem_size ()
  in
  load_program sim h p;
  ignore (run_program sim h);
  let retired = Bits.to_int_trunc (sim.Sim.peek h.Stu_core.instret) in
  if retired <> golden_retired then
    failwith
      (Printf.sprintf "%s: retired %d, golden %d" p.Isa.prog_name retired golden_retired);
  Array.iteri
    (fun k id ->
      if id >= 0 then begin
        let got = Bits.to_int_trunc (sim.Sim.peek id) in
        if got <> golden_regs.(k) then
          failwith
            (Printf.sprintf "%s: x%d = %d, golden %d" p.Isa.prog_name k got golden_regs.(k))
      end)
    h.Stu_core.reg_nodes

let optimize_design ?level (core : Stu_core.core) =
  ignore (Gsim_passes.Pipeline.optimize ?level core.Stu_core.circuit);
  let map = Circuit.compact core.Stu_core.circuit in
  Circuit.validate core.Stu_core.circuit;
  { core with Stu_core.h = Stu_core.relocate core.Stu_core.h map }

let stats_line c =
  let s = Circuit.stats c in
  Printf.sprintf "%-10s nodes=%-8d edges=%-8d regs=%-6d mems=%d" (Circuit.name c)
    s.Circuit.ir_nodes s.Circuit.ir_edges s.Circuit.registers_count s.Circuit.memories_count
