lib/designs/designs.ml: Array Circuit Gsim_bits Gsim_engine Gsim_ir Gsim_passes Isa List Printf String Stu_core Synth_core
