lib/designs/synth_core.ml: Gsim_bits Gsim_hcl List Printf Stu_core
