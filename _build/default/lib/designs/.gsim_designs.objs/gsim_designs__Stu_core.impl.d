lib/designs/stu_core.ml: Array Circuit Gsim_bits Gsim_hcl Gsim_ir List Printf
