lib/designs/isa.ml: Array Gsim_bits Hashtbl List Printf
