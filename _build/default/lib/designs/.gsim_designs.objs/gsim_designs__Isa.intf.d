lib/designs/isa.mli: Gsim_bits
