lib/designs/designs.mli: Circuit Gsim_engine Gsim_ir Gsim_passes Isa Stu_core
