lib/designs/stu_core.mli: Circuit Gsim_hcl Gsim_ir
