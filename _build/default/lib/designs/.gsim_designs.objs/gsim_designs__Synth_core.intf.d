lib/designs/synth_core.mli: Stu_core
