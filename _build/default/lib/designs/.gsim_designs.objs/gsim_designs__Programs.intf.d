lib/designs/programs.mli: Isa
