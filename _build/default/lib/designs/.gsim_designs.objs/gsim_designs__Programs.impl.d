lib/designs/programs.ml: Array Gsim_bits Isa List Printf Random
