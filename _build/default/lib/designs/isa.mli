(** The mini ISA executed by the processor models.

    32-bit fixed-width instructions, sixteen 32-bit registers (r0 reads as
    zero), word-addressed data memory, separate instruction memory indexed
    by instruction (the PC counts instructions).

    Encoding (bit ranges inclusive):

    {v
    [31:28] opcode   0=ALU 1=ALUI 2=LOAD 3=STORE 4=BR 5=JAL 6=JALR
                     7=LUI 8=HALT 9=NOP
    [27:24] funct / branch condition
    [23:20] rd
    [19:16] rs1
    [15:12] rs2
    [11:0]  imm12 (sign-extended)     ALUI/LOAD/STORE/BR/JALR
    [19:0]  imm20                     JAL (absolute), LUI (<< 12)
    v} *)

type funct =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Divu | Remu

type cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type instr =
  | Alu of funct * int * int * int          (** funct, rd, rs1, rs2 *)
  | Alui of funct * int * int * int         (** funct, rd, rs1, imm12 *)
  | Load of int * int * int                 (** rd, rs1, imm12 *)
  | Store of int * int * int                (** rs1 (base), rs2 (src), imm12 *)
  | Br of cond * int * int * string         (** cond, rs1, rs2, label *)
  | Jal of int * string                     (** rd, label (absolute) *)
  | Jalr of int * int * int                 (** rd, rs1, imm12 *)
  | Lui of int * int                        (** rd, imm20 *)
  | Halt
  | Nop
  | Label of string

val funct_code : funct -> int
val cond_code : cond -> int

exception Asm_error of string

val assemble : instr list -> Gsim_bits.Bits.t array
(** Resolves labels ([Br] targets are PC-relative in instructions, [Jal]
    targets absolute) and encodes.  Raises {!Asm_error} on duplicate or
    unknown labels, register/immediate range violations. *)

val length : instr list -> int
(** Number of encoded instructions (labels excluded). *)

type program = {
  prog_name : string;
  code : Gsim_bits.Bits.t array;
  data : Gsim_bits.Bits.t array;  (** initial data-memory image *)
}

val reference_execute :
  ?max_cycles:int -> code:Gsim_bits.Bits.t array -> data:Gsim_bits.Bits.t array ->
  dmem_size:int -> unit -> int array * Gsim_bits.Bits.t array * int
(** Software golden model: executes the program and returns (final register
    file, final data memory, instructions retired).  Used to validate the
    cores.  [dmem_size] must be a power of two; data addresses wrap modulo
    it, matching the hardware's truncated address bus. *)
