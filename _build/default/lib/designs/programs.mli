(** Software workloads for the processor models (the paper's CoreMark,
    Linux boot, and SPEC CPU2006 checkpoint substitutes).

    Every program ends in [Halt]; testbenches run until the core's halt
    output asserts.  Programs come with an initial data-memory image
    (list structures, matrices, branch-pattern tables) the way SimPoint
    checkpoints ship memory state. *)

val quick : unit -> Isa.program
(** A few dozen instructions touching every instruction class; used by the
    test suite. *)

val coremark : ?iters:int -> unit -> Isa.program
(** Hot-spot workload: iterations of linked-list walking, a small integer
    matrix multiply and a CRC-flavoured shift/xor kernel — the phase mix
    CoreMark advertises.  Default 20 iterations (~10k instructions). *)

val linux_boot : ?phases:int -> unit -> Isa.program
(** Flat-profile workload: a long sequence of distinct phases (zeroing,
    copying, checksumming, device-poll loops, a scheduler hopping across
    code blocks) with a wide code footprint and no dominant loop. *)

(** SPEC CPU2006-like checkpoint profiles (paper §IV-C): each exercises a
    different bottleneck, mirroring the benchmark classes the paper
    samples with SimPoint. *)

val spec_streaming : ?scale:int -> unit -> Isa.program
val spec_pointer_chase : ?scale:int -> unit -> Isa.program
val spec_int_compute : ?scale:int -> unit -> Isa.program
val spec_mul_heavy : ?scale:int -> unit -> Isa.program
val spec_branch_heavy : ?scale:int -> unit -> Isa.program
val spec_icache : ?scale:int -> unit -> Isa.program

val spec_checkpoints : ?scale:int -> unit -> Isa.program list
(** The six profiles above, in a stable order. *)

val by_name : string -> (unit -> Isa.program) option
(** ["quick" | "coremark" | "linux_boot" | "spec.<profile>"]. *)

val names : string list
