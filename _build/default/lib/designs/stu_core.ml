module Bits = Gsim_bits.Bits
module Hcl = Gsim_hcl.Hcl
open Gsim_ir

type handles = {
  halt : int;
  imem : int;
  dmem : int;
  pc : int;
  instret : int;
  reg_nodes : int array;
  instr_node : int;
  running_node : int;
}

type config = { imem_depth : int; dmem_depth : int }

let default_config = { imem_depth = 4096; dmem_depth = 4096 }

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  max 1 (go 0 1)

let add_to b cfg =
  let open Hcl in
  let c32 n = const b ~width:32 n in
  let pcw = clog2 cfg.imem_depth in
  let daw = clog2 cfg.dmem_depth in

  let halted = reg b "halted" 1 in
  let running = wire b "running" (lnot (q halted)) in
  let pc = reg b "pc" pcw in

  (* Fetch. *)
  let imem = memory b "imem" ~width:32 ~depth:cfg.imem_depth in
  let instr = wire b "instr" (read imem ~en:running (q pc)) in

  (* Decode. *)
  let op = wire b "op" (bits instr ~hi:31 ~lo:28) in
  let funct = wire b "funct" (bits instr ~hi:27 ~lo:24) in
  let rd = wire b "rd" (bits instr ~hi:23 ~lo:20) in
  let rs1 = wire b "rs1" (bits instr ~hi:19 ~lo:16) in
  let rs2 = wire b "rs2" (bits instr ~hi:15 ~lo:12) in
  let imm12 = wire b "imm12" (sext (bits instr ~hi:11 ~lo:0) 32) in
  let imm20 = wire b "imm20" (bits instr ~hi:19 ~lo:0) in
  let opc k = eq op (const b ~width:4 k) in
  let is_alu = wire b "is_alu" (opc 0) in
  let is_alui = wire b "is_alui" (opc 1) in
  let is_load = wire b "is_load" (opc 2) in
  let is_store = wire b "is_store" (opc 3) in
  let is_br = wire b "is_br" (opc 4) in
  let is_jal = wire b "is_jal" (opc 5) in
  let is_jalr = wire b "is_jalr" (opc 6) in
  let is_lui = wire b "is_lui" (opc 7) in
  let is_halt = wire b "is_halt" (opc 8) in

  (* Register file: sixteen 32-bit registers, r0 hardwired to zero. *)
  let regs =
    Array.init 16 (fun k ->
        if k = 0 then None else Some (reg b (Printf.sprintf "x%d" k) 32))
  in
  let read_reg sel =
    let cases =
      List.init 15 (fun i ->
          let k = i + 1 in
          match regs.(k) with
          | Some r -> (eq sel (const b ~width:4 k), q r)
          | None -> assert false)
    in
    select cases ~default:(c32 0)
  in
  let a = wire b "rs1_val" (read_reg rs1) in
  let bval = wire b "rs2_val" (read_reg rs2) in

  (* ALU. *)
  let alu_b = wire b "alu_b" (mux2 is_alui imm12 bval) in
  let shamt = bits alu_b ~hi:4 ~lo:0 in
  let fn k = eq funct (const b ~width:4 k) in
  let alu_out =
    wire b "alu_out"
      (select
         [
           (fn 0, a +: alu_b);
           (fn 1, a -: alu_b);
           (fn 2, a &: alu_b);
           (fn 3, a |: alu_b);
           (fn 4, a ^: alu_b);
           (fn 5, sll a (resize shamt 32));
           (fn 6, srl a (resize shamt 32));
           (fn 7, sra a (resize shamt 32));
           (fn 8, resize (slt a alu_b) 32);
           (fn 9, resize (ult a alu_b) 32);
           (fn 10, a *: alu_b);
           (fn 11, udiv a alu_b);
           (fn 12, urem a alu_b);
         ]
         ~default:(c32 0))
  in

  (* Data memory. *)
  let dmem = memory b "dmem" ~width:32 ~depth:cfg.dmem_depth in
  let addr = wire b "mem_addr" (bits (a +: imm12) ~hi:(daw - 1) ~lo:0) in
  let load_en = wire b "load_en" (is_load &: running) in
  let load_val = wire b "load_val" (read dmem ~en:load_en addr) in
  write dmem ~addr ~data:bval ~en:(wire b "store_en" (is_store &: running));

  (* Branches and jumps. *)
  let cond k = eq funct (const b ~width:4 k) in
  let br_taken =
    wire b "br_taken"
      (is_br
       &: select
            [
              (cond 0, eq a bval);
              (cond 1, neq a bval);
              (cond 2, slt a bval);
              (cond 3, lnot (slt a bval));
              (cond 4, ult a bval);
              (cond 5, lnot (ult a bval));
            ]
            ~default:(const b ~width:1 0))
  in
  let pc_plus1 = wire b "pc_plus1" (q pc +: const b ~width:pcw 1) in
  let br_target = wire b "br_target" (bits (resize (q pc) 32 +: imm12) ~hi:(pcw - 1) ~lo:0) in
  let next_pc =
    wire b "next_pc"
      (select
         [
           (br_taken, br_target);
           (is_jal, bits imm20 ~hi:(pcw - 1) ~lo:0);
           (is_jalr, bits (a +: imm12) ~hi:(pcw - 1) ~lo:0);
         ]
         ~default:pc_plus1)
  in
  set_when pc ~guard:running next_pc;

  (* Writeback. *)
  let wb_en =
    wire b "wb_en"
      (running &: (is_alu |: is_alui |: is_load |: is_jal |: is_jalr |: is_lui))
  in
  let wb_val =
    wire b "wb_val"
      (select
         [
           (is_load, load_val);
           (is_jal |: is_jalr, resize pc_plus1 32);
           (is_lui, shl_const imm20 12 |> fun s -> bits s ~hi:31 ~lo:0);
         ]
         ~default:alu_out)
  in
  Array.iteri
    (fun k r ->
      match r with
      | Some r ->
        set_when r ~guard:(wb_en &: eq rd (const b ~width:4 k)) wb_val
      | None -> ())
    regs;

  (* Retire and halt. *)
  let instret = reg b "instret" 32 in
  set_when instret ~guard:running (q instret +: c32 1);
  set_when halted ~guard:(is_halt &: running) (const b ~width:1 1);

  let halt_out = output b "halt" (q halted) in
  ignore (output b "pc_out" (q pc));
  ignore (output b "instret_out" (q instret));
  let reg_nodes =
    Array.map (function Some r -> reg_node r | None -> -1) regs
  in
  (* Architectural registers stay observable for checking against the
     golden model. *)
  Array.iter
    (fun id -> if id >= 0 then Circuit.mark_output (circuit b) id)
    reg_nodes;
  Circuit.mark_output (circuit b) (reg_node pc);
  Circuit.mark_output (circuit b) (reg_node instret);
  {
    halt = node_of halt_out;
    imem = mem_index imem;
    dmem = mem_index dmem;
    pc = reg_node pc;
    instret = reg_node instret;
    reg_nodes;
    instr_node = node_of instr;
    running_node = node_of running;
  }

type core = { circuit : Circuit.t; h : handles }

let build ?(config = default_config) () =
  let b = Gsim_hcl.Hcl.create ~name:"stu_core" () in
  let h = add_to b config in
  let circuit = Gsim_hcl.Hcl.finalize b in
  { circuit; h }

let relocate h map =
  let f id = if id >= 0 then map.(id) else id in
  {
    h with
    halt = f h.halt;
    pc = f h.pc;
    instret = f h.instret;
    reg_nodes = Array.map f h.reg_nodes;
    instr_node = f h.instr_node;
    running_node = f h.running_node;
  }
