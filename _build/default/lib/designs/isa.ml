module Bits = Gsim_bits.Bits

type funct =
  | Add | Sub | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Mul | Divu | Remu

type cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type instr =
  | Alu of funct * int * int * int
  | Alui of funct * int * int * int
  | Load of int * int * int
  | Store of int * int * int
  | Br of cond * int * int * string
  | Jal of int * string
  | Jalr of int * int * int
  | Lui of int * int
  | Halt
  | Nop
  | Label of string

let funct_code = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Or -> 3 | Xor -> 4 | Sll -> 5 | Srl -> 6
  | Sra -> 7 | Slt -> 8 | Sltu -> 9 | Mul -> 10 | Divu -> 11 | Remu -> 12

let cond_code = function Beq -> 0 | Bne -> 1 | Blt -> 2 | Bge -> 3 | Bltu -> 4 | Bgeu -> 5

exception Asm_error of string

let asm_err fmt = Printf.ksprintf (fun s -> raise (Asm_error s)) fmt

let check_reg r = if r < 0 || r > 15 then asm_err "register r%d out of range" r

let check_imm12 v = if v < -2048 || v > 2047 then asm_err "imm12 %d out of range" v

let check_imm20 v = if v < 0 || v >= 1 lsl 20 then asm_err "imm20 %d out of range" v

let length instrs =
  List.fold_left (fun n i -> match i with Label _ -> n | _ -> n + 1) 0 instrs

let encode_fields ~op ~f ~rd ~rs1 ~rs2 ~imm12 =
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  let imm = imm12 land 0xFFF in
  Bits.of_int ~width:32
    ((op lsl 28) lor (f lsl 24) lor (rd lsl 20) lor (rs1 lsl 16) lor (rs2 lsl 12) lor imm)

let assemble instrs =
  let labels = Hashtbl.create 64 in
  let pc = ref 0 in
  List.iter
    (fun i ->
      match i with
      | Label l ->
        if Hashtbl.mem labels l then asm_err "duplicate label %S" l;
        Hashtbl.replace labels l !pc
      | _ -> incr pc)
    instrs;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some p -> p
    | None -> asm_err "unknown label %S" l
  in
  let out = ref [] in
  let pc = ref 0 in
  List.iter
    (fun i ->
      let word =
        match i with
        | Label _ -> None
        | Alu (f, rd, rs1, rs2) ->
          Some (encode_fields ~op:0 ~f:(funct_code f) ~rd ~rs1 ~rs2 ~imm12:0)
        | Alui (f, rd, rs1, imm) ->
          check_imm12 imm;
          Some (encode_fields ~op:1 ~f:(funct_code f) ~rd ~rs1 ~rs2:0 ~imm12:imm)
        | Load (rd, rs1, imm) ->
          check_imm12 imm;
          Some (encode_fields ~op:2 ~f:0 ~rd ~rs1 ~rs2:0 ~imm12:imm)
        | Store (rs1, rs2, imm) ->
          check_imm12 imm;
          Some (encode_fields ~op:3 ~f:0 ~rd:0 ~rs1 ~rs2 ~imm12:imm)
        | Br (cond, rs1, rs2, l) ->
          let offset = resolve l - !pc in
          check_imm12 offset;
          Some (encode_fields ~op:4 ~f:(cond_code cond) ~rd:0 ~rs1 ~rs2 ~imm12:offset)
        | Jal (rd, l) ->
          let target = resolve l in
          check_imm20 target;
          check_reg rd;
          Some (Bits.of_int ~width:32 ((5 lsl 28) lor (rd lsl 20) lor target))
        | Jalr (rd, rs1, imm) ->
          check_imm12 imm;
          Some (encode_fields ~op:6 ~f:0 ~rd ~rs1 ~rs2:0 ~imm12:imm)
        | Lui (rd, imm) ->
          check_imm20 imm;
          check_reg rd;
          Some (Bits.of_int ~width:32 ((7 lsl 28) lor (rd lsl 20) lor imm))
        | Halt -> Some (Bits.of_int ~width:32 (8 lsl 28))
        | Nop -> Some (Bits.of_int ~width:32 (9 lsl 28))
      in
      match word with
      | Some w ->
        out := w :: !out;
        incr pc
      | None -> ())
    instrs;
  Array.of_list (List.rev !out)

type program = { prog_name : string; code : Bits.t array; data : Bits.t array }

(* ------------------------------------------------------------------ *)
(* Golden software model                                               *)
(* ------------------------------------------------------------------ *)

let mask32 = 0xFFFFFFFF

let sext32 v =
  let v = v land mask32 in
  if v land 0x80000000 <> 0 then v - (1 lsl 32) else v

let alu_exec f a b =
  let sa = sext32 a and sb = sext32 b in
  let shamt = b land 31 in
  (match f with
   | 0 -> a + b
   | 1 -> a - b
   | 2 -> a land b
   | 3 -> a lor b
   | 4 -> a lxor b
   | 5 -> a lsl shamt
   | 6 -> a lsr shamt
   | 7 -> sa asr shamt
   | 8 -> if sa < sb then 1 else 0
   | 9 -> if a < b then 1 else 0
   | 10 -> a * b
   | 11 -> if b = 0 then 0 else a / b
   | 12 -> if b = 0 then a else a mod b
   | _ -> 0)
  land mask32

let reference_execute ?(max_cycles = 1_000_000) ~code ~data ~dmem_size () =
  if dmem_size land (dmem_size - 1) <> 0 then
    invalid_arg "Isa.reference_execute: dmem_size must be a power of two";
  let addr_mask = dmem_size - 1 in
  let regs = Array.make 16 0 in
  let dmem = Array.make dmem_size 0 in
  Array.iteri (fun i v -> if i < dmem_size then dmem.(i) <- Bits.to_int_trunc v) data;
  let imem = Array.map Bits.to_int_trunc code in
  let pc = ref 0 and retired = ref 0 and halted = ref false in
  let cycles = ref 0 in
  while (not !halted) && !cycles < max_cycles do
    incr cycles;
    if !pc < 0 || !pc >= Array.length imem then halted := true
    else begin
      let w = imem.(!pc) in
      let op = (w lsr 28) land 0xF
      and f = (w lsr 24) land 0xF
      and rd = (w lsr 20) land 0xF
      and rs1 = (w lsr 16) land 0xF
      and rs2 = (w lsr 12) land 0xF in
      let imm12 =
        let v = w land 0xFFF in
        if v land 0x800 <> 0 then v - 4096 else v
      in
      let imm20 = w land 0xFFFFF in
      incr retired;
      let wb rd v = if rd <> 0 then regs.(rd) <- v land mask32 in
      let next_pc = ref (!pc + 1) in
      (match op with
       | 0 -> wb rd (alu_exec f regs.(rs1) regs.(rs2))
       | 1 -> wb rd (alu_exec f regs.(rs1) (imm12 land mask32))
       | 2 ->
         (* Addresses wrap modulo the data-memory size, matching the
            hardware's truncated address bus. *)
         let a = (regs.(rs1) + imm12) land addr_mask in
         wb rd dmem.(a)
       | 3 ->
         let a = (regs.(rs1) + imm12) land addr_mask in
         dmem.(a) <- regs.(rs2)
       | 4 ->
         let a = regs.(rs1) and b = regs.(rs2) in
         let sa = sext32 a and sb = sext32 b in
         let taken =
           match f with
           | 0 -> a = b
           | 1 -> a <> b
           | 2 -> sa < sb
           | 3 -> sa >= sb
           | 4 -> a < b
           | 5 -> a >= b
           | _ -> false
         in
         if taken then next_pc := !pc + imm12
       | 5 ->
         wb rd (!pc + 1);
         next_pc := imm20
       | 6 ->
         let target = (regs.(rs1) + imm12) land mask32 in
         wb rd (!pc + 1);
         next_pc := target
       | 7 -> wb rd (imm20 lsl 12)
       | 8 -> halted := true
       | _ -> ());
      if not !halted then pc := !next_pc
    end
  done;
  (regs, Array.map (Bits.of_int ~width:32) dmem, !retired)
