module Bits = Gsim_bits.Bits
module Hcl = Gsim_hcl.Hcl


type scale = {
  alu_clusters : int;
  lanes_per_cluster : int;
  pipe_depth : int;
  lane_width : int;
  bpred_entries : int;
  icache_sets : int;
  icache_ways : int;
  dcache_sets : int;
  dcache_ways : int;
  rob_entries : int;
  regfile_banks : int;
}

let rocket_like =
  {
    alu_clusters = 6;
    lanes_per_cluster = 8;
    pipe_depth = 8;
    lane_width = 64;
    bpred_entries = 256;
    icache_sets = 64;
    icache_ways = 2;
    dcache_sets = 64;
    dcache_ways = 2;
    rob_entries = 16;
    regfile_banks = 4;
  }

let boom_like =
  {
    alu_clusters = 12;
    lanes_per_cluster = 10;
    pipe_depth = 12;
    lane_width = 96;
    bpred_entries = 1024;
    icache_sets = 128;
    icache_ways = 4;
    dcache_sets = 128;
    dcache_ways = 4;
    rob_entries = 96;
    regfile_banks = 12;
  }

let xiangshan_like =
  {
    alu_clusters = 20;
    lanes_per_cluster = 14;
    pipe_depth = 16;
    lane_width = 128;
    bpred_entries = 4096;
    icache_sets = 512;
    icache_ways = 8;
    dcache_sets = 512;
    dcache_ways = 8;
    rob_entries = 256;
    regfile_banks = 48;
  }

let clog2 n =
  let rec go acc v = if v >= n then acc else go (acc + 1) (v * 2) in
  max 1 (go 0 1)

(* --- Core signals reconstructed from the embedded core's handles ------ *)

type feed = {
  instr : Hcl.signal;
  pc : Hcl.signal;
  running : Hcl.signal;
  op : Hcl.signal;
  funct : Hcl.signal;
  rs1 : Hcl.signal;
  rs2 : Hcl.signal;
  rd : Hcl.signal;
  is_br : Hcl.signal;
  is_mem : Hcl.signal;
  is_mul : Hcl.signal;
}

let make_feed b (h : Stu_core.handles) =
  let open Hcl in
  let var id = signal_of_node b id in
  let instr = var h.Stu_core.instr_node in
  let running = var h.Stu_core.running_node in
  let pc = var h.Stu_core.pc in
  let op = wire b "feed.op" (bits instr ~hi:31 ~lo:28) in
  let funct = wire b "feed.funct" (bits instr ~hi:27 ~lo:24) in
  let rd = wire b "feed.rd" (bits instr ~hi:23 ~lo:20) in
  let rs1 = wire b "feed.rs1" (bits instr ~hi:19 ~lo:16) in
  let rs2 = wire b "feed.rs2" (bits instr ~hi:15 ~lo:12) in
  let opc k = eq op (const b ~width:4 k) in
  let is_br = wire b "feed.is_br" (opc 4 &: running) in
  let is_mem = wire b "feed.is_mem" ((opc 2 |: opc 3) &: running) in
  let is_mul =
    wire b "feed.is_mul"
      ((opc 0 |: opc 1)
       &: (eq funct (const b ~width:4 10)
           |: eq funct (const b ~width:4 11)
           |: eq funct (const b ~width:4 12))
       &: running)
  in
  { instr; pc; running; op; funct; rs1; rs2; rd; is_br; is_mem; is_mul }

(* --- Execution cluster: lanes of deep, mostly-idle pipelines ---------- *)

let add_cluster b feed ~index ~lanes ~depth ~lane_width =
  let open Hcl in
  in_scope b (Printf.sprintf "cluster%d" index) (fun () ->
      (* Dispatch gating: the cluster accepts an instruction only when its
         rs1 tag selects it (cluster 0, the "main ALU", accepts every ALU
         instruction).  Lanes work from the latched copy, so an idle
         cluster contributes a constant handful of evaluations per cycle
         regardless of its size -- the physical reason big cores have low
         activity factors. *)
      let is_alu_op =
        eq feed.op (const b ~width:4 0) |: eq feed.op (const b ~width:4 1)
      in
      let accept =
        if index = 0 then wire b "accept" (feed.running &: is_alu_op)
        else
          wire b "accept"
            (feed.running &: is_alu_op
             &: eq feed.rs1 (const b ~width:4 (index mod 16)))
      in
      let d_instr = reg b "d_instr" 32 in
      set_when d_instr ~guard:accept feed.instr;
      let d_valid = reg b "d_valid" 1 in
      set d_valid accept;
      let d_funct = wire b "d_funct" (bits (q d_instr) ~hi:27 ~lo:24) in
      for lane = 0 to lanes - 1 do
        in_scope b (Printf.sprintf "lane%d" lane) (fun () ->
            let f_sel = (lane + (index * 3)) mod 13 in
            let fire =
              if index = 0 && lane = 0 then wire b "fire" (q d_valid)
              else wire b "fire" (q d_valid &: eq d_funct (const b ~width:4 f_sel))
            in
            let seed =
              wire b "seed"
                (resize (q d_instr) lane_width
                 ^: const b ~width:lane_width (0x51ED + (lane * 0x101) + (index * 7)))
            in
            let stage_data = ref seed in
            let stage_valid = ref fire in
            for d = 0 to depth - 1 do
              in_scope b (Printf.sprintf "s%d" d) (fun () ->
                  let data = reg b "data" lane_width in
                  let valid = reg b "valid" 1 in
                  set valid !stage_valid;
                  (* A handful of materialized operations per stage. *)
                  let x1 = wire b "x1" (!stage_data ^: q data) in
                  let rot =
                    wire b "rot"
                      (cat
                         [
                           bits x1 ~hi:(lane_width / 2 - 1) ~lo:0;
                           bits x1 ~hi:(lane_width - 1) ~lo:(lane_width / 2);
                         ])
                  in
                  let sum = wire b "sum" (rot +: const b ~width:lane_width (0x9E37 + d)) in
                  let gated = wire b "gated" (mux2 !stage_valid sum (q data)) in
                  set_when data ~guard:!stage_valid gated;
                  stage_data := wire b "out" (q data);
                  stage_valid := wire b "vout" (q valid))
            done;
            (* Lane result register: accumulates when the pipe drains. *)
            let result = reg b "result" lane_width in
            set_when result ~guard:!stage_valid (q result ^: !stage_data);
            ignore (output b "result_out" (q result)))
      done)

(* --- Branch predictor: counter table + BTB + global history ----------- *)

let add_branch_predictor b feed ~entries ~pcw =
  let open Hcl in
  in_scope b "bpred" (fun () ->
      let iw = clog2 entries in
      let idx = wire b "idx" (bits feed.pc ~hi:(min (iw - 1) (pcw - 1)) ~lo:0 |> fun s -> resize s iw) in
      let counters = memory b "pht" ~width:2 ~depth:entries in
      let btb = memory b "btb" ~width:pcw ~depth:entries in
      let ghr = reg b "ghr" 16 in
      let pred = wire b "pred" (read counters ~en:feed.running idx) in
      let target = wire b "target" (read btb ~en:feed.is_br idx) in
      (* Keep the BTB observable so dead-code elimination measures real
         structure, not a dangling table. *)
      ignore (output b "btb_check" (reduce_xor target));
      let taken_bit = wire b "taken" (bit feed.instr 0) in
      (* Saturating 2-bit counter update on branches. *)
      let inc =
        wire b "inc"
          (mux2 (eq pred (const b ~width:2 3)) pred (pred +: const b ~width:2 1))
      in
      let dec =
        wire b "dec"
          (mux2 (eq pred (const b ~width:2 0)) pred (pred -: const b ~width:2 1))
      in
      let updated = wire b "updated" (mux2 taken_bit inc dec) in
      write counters ~addr:idx ~data:updated ~en:feed.is_br;
      write btb ~addr:idx ~data:(resize feed.pc pcw) ~en:feed.is_br;
      set_when ghr ~guard:feed.is_br (cat [ bits (q ghr) ~hi:14 ~lo:0; taken_bit ]);
      ignore (output b "ghr_out" (q ghr)))

(* --- Set-associative cache model: tags, LRU, miss counter -------------- *)

let add_cache b feed name ~sets ~ways ~probe_addr ~probe_en =
  let open Hcl in
  in_scope b name (fun () ->
      let sw = clog2 sets in
      let set_idx = wire b "set" (resize probe_addr sw) in
      let tag = wire b "tag" (shr_const probe_addr sw |> fun s -> resize s 16) in
      let hits =
        List.init ways (fun w ->
            in_scope b (Printf.sprintf "way%d" w) (fun () ->
                let tags = memory b "tags" ~width:16 ~depth:sets in
                let valid = memory b "valid" ~width:1 ~depth:sets in
                let way_tag = wire b "way_tag" (read tags ~en:probe_en set_idx) in
                let way_valid = wire b "way_valid" (read valid ~en:probe_en set_idx) in
                let hit = wire b "hit" (probe_en &: way_valid &: eq way_tag tag) in
                (* Refill this way round-robin on miss. *)
                (tags, valid, hit)))
      in
      let any_hit =
        wire b "any_hit"
          (List.fold_left (fun acc (_, _, h) -> acc |: h) (const b ~width:1 0) hits)
      in
      let miss = wire b "miss" (probe_en &: lnot any_hit) in
      let victim = reg b "victim" (clog2 ways) in
      set_when victim ~guard:miss (q victim +: const b ~width:(clog2 ways) 1);
      List.iteri
        (fun w (tags, valid, _) ->
          let fill =
            wire b (Printf.sprintf "fill%d" w)
              (miss &: eq (q victim) (const b ~width:(clog2 ways) w))
          in
          write tags ~addr:set_idx ~data:tag ~en:fill;
          write valid ~addr:set_idx ~data:(const b ~width:1 1) ~en:fill)
        hits;
      (* Per-set LRU-ish bits: registers, one per set, touched on access. *)
      let touched = reg b "touched" sets in
      let onehot =
        wire b "onehot" (sll (resize (const b ~width:1 1) sets) (resize set_idx sets))
      in
      set_when touched ~guard:probe_en (q touched |: onehot);
      let misses = reg b "misses" 32 in
      set_when misses ~guard:miss (q misses +: const b ~width:32 1);
      ignore (output b "misses_out" (q misses));
      ignore feed)

(* --- Circular reorder buffer ------------------------------------------- *)

let add_rob b feed ~entries ~pcw =
  let open Hcl in
  in_scope b "rob" (fun () ->
      let iw = clog2 entries in
      let tail = reg b "tail" iw in
      set_when tail ~guard:feed.running (q tail +: const b ~width:iw 1);
      for k = 0 to entries - 1 do
        in_scope b (Printf.sprintf "e%d" k) (fun () ->
            let at_tail = wire b "at_tail" (feed.running &: eq (q tail) (const b ~width:iw k)) in
            let e_pc = reg b "pc" pcw in
            let e_op = reg b "op" 4 in
            let e_rd = reg b "rd" 4 in
            set_when e_pc ~guard:at_tail feed.pc;
            set_when e_op ~guard:at_tail feed.op;
            set_when e_rd ~guard:at_tail feed.rd)
      done;
      ignore (output b "tail_out" (q tail)))

(* --- Register-file shadow banks (rename/checkpoint model) -------------- *)

let add_regfile_banks b feed ~banks =
  let open Hcl in
  in_scope b "banks" (fun () ->
      let wb =
        wire b "wb"
          (feed.running
           &: (eq feed.op (const b ~width:4 0) |: eq feed.op (const b ~width:4 1)
               |: eq feed.op (const b ~width:4 2)))
      in
      let datum = wire b "datum" (resize feed.instr 32) in
      let bw = clog2 (max banks 2) in
      let bank_sel = wire b "bank_sel" (bits feed.pc ~hi:(bw - 1) ~lo:0) in
      for bank = 0 to banks - 1 do
        in_scope b (Printf.sprintf "bank%d" bank) (fun () ->
            let this_bank =
              wire b "this_bank"
                (wb &: eq bank_sel (const b ~width:bw (bank land ((1 lsl bw) - 1))))
            in
            for r = 1 to 15 do
              let sh = reg b (Printf.sprintf "x%d" r) 32 in
              let hit =
                wire b (Printf.sprintf "hit%d" r)
                  (this_bank &: eq feed.rd (const b ~width:4 r))
              in
              set_when sh ~guard:hit (q sh ^: datum)
            done)
      done)

let build ?(config = Stu_core.default_config) scale =
  let b = Hcl.create ~name:"synth_core" () in
  let h = Stu_core.add_to b config in
  let feed = make_feed b h in
  let pcw = clog2 config.Stu_core.imem_depth in
  for k = 0 to scale.alu_clusters - 1 do
    add_cluster b feed ~index:k ~lanes:scale.lanes_per_cluster ~depth:scale.pipe_depth
      ~lane_width:scale.lane_width
  done;
  add_branch_predictor b feed ~entries:scale.bpred_entries ~pcw;
  add_cache b feed "icache" ~sets:scale.icache_sets ~ways:scale.icache_ways
    ~probe_addr:(Hcl.resize feed.pc 20) ~probe_en:feed.running;
  add_cache b feed "dcache" ~sets:scale.dcache_sets ~ways:scale.dcache_ways
    ~probe_addr:(Hcl.resize feed.instr 20) ~probe_en:feed.is_mem;
  add_rob b feed ~entries:scale.rob_entries ~pcw;
  if scale.regfile_banks > 0 then add_regfile_banks b feed ~banks:scale.regfile_banks;
  let circuit = Hcl.finalize b in
  { Stu_core.circuit; h }
