(** Scaled synthetic processors (the Rocket/BOOM/XiangShan substitutes).

    Each design embeds the runnable {!Stu_core} and surrounds it with the
    structures that make large cores large: parallel execution clusters
    with deep pipelines, branch-predictor and BTB tables, set-associative
    instruction/data cache models, a circular reorder buffer, and
    register-file shadow banks.  Every structure is driven by the core's
    real instruction stream, so its activity follows the workload: an
    integer loop leaves the multiply lanes and most cache sets idle, a
    pointer-chase lights up the data cache, branches exercise the
    predictor — reproducing why big cores have low activity factors.

    The configurations are sized to reproduce the paper's Table I shape
    (each design roughly an order of magnitude above the previous one),
    not its absolute node counts. *)

type scale = {
  alu_clusters : int;
  lanes_per_cluster : int;
  pipe_depth : int;
  lane_width : int;          (** datapath width of the cluster lanes *)
  bpred_entries : int;
  icache_sets : int;
  icache_ways : int;
  dcache_sets : int;
  dcache_ways : int;
  rob_entries : int;
  regfile_banks : int;       (** shadow copies (rename/checkpoint model) *)
}

val rocket_like : scale
val boom_like : scale
val xiangshan_like : scale

val build : ?config:Stu_core.config -> scale -> Stu_core.core
(** The handles are the embedded core's handles: load programs and poll
    halt exactly as with {!Stu_core.build}. *)
