(** Elaboration of the Verilog subset into the graph IR.

    The design is flattened from the top module (the one no other module
    instantiates).  Clock inputs — any input that appears in a
    [posedge] sensitivity — carry no value; simulation is cycle-based, so
    each [step] is one clock edge.

    Semantics choices (the deterministic, x-free subset):
    - widths are explicit and truncating: binary operators work at the
      wider operand's width, shifts keep the left width, comparisons and
      logical operators produce one bit;
    - [always @*] blocks evaluate with blocking semantics (later reads in
      the block see earlier assignments); a path that assigns nothing
      leaves the default zero — no latch inference, by design;
    - one driver per signal: a [reg] may be written by exactly one
      [always] block, a [wire] by exactly one [assign];
    - the synchronous-reset idiom [if (rst) q <= CONST; else ...] at the
      top of a clocked block is recognized and recorded as a register
      reset, so the reset slow-path optimization applies to Verilog
      designs too. *)

open Gsim_ir

exception Elab_error of string

val elaborate : Vast.design -> Circuit.t
(** Raises {!Elab_error} on unsupported constructs or semantic errors
    (multiple drivers, unknown names, width-0 selects, clock used as
    data, ...). *)
