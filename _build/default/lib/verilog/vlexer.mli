(** Verilog lexer ([//] and [/* */] comments, sized literals). *)

type token =
  | Id of string
  | Number of int option * Gsim_bits.Bits.t  (** declared size (if sized), value *)
  | Punct of string
  | Eof

exception Lex_error of int * string

val tokenize : string -> (token * int) array

val pp_token : Format.formatter -> token -> unit
