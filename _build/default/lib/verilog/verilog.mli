(** Facade: parse and elaborate Verilog into the graph IR. *)

exception Error of string

val load_string : string -> Gsim_ir.Circuit.t
val load_file : string -> Gsim_ir.Circuit.t
