(** Recursive-descent parser for the supported Verilog subset (ANSI module
    headers). *)

exception Parse_error of int * string

val parse_string : string -> Vast.design

val parse_file : string -> Vast.design
