

type range = { msb : int; lsb : int }


type unop = V_not | V_neg | V_red_and | V_red_or | V_red_xor | V_log_not

type binop =
  | V_add | V_sub | V_mul | V_div | V_mod
  | V_and | V_or | V_xor
  | V_eq | V_neq | V_lt | V_le | V_gt | V_ge
  | V_log_and | V_log_or
  | V_shl | V_shr | V_ashr

type expr =
  | E_num of int option * Gsim_bits.Bits.t   
  | E_ref of string
  | E_index of string * expr                 
  | E_range of string * int * int            
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_ternary of expr * expr * expr
  | E_concat of expr list
  | E_repl of int * expr

type lvalue =
  | L_id of string
  | L_index of string * expr                 
  | L_range of string * int * int

type stmt =
  | S_nonblocking of lvalue * expr
  | S_blocking of lvalue * expr
  | S_if of expr * stmt list * stmt list
  | S_case of expr * (expr list * stmt list) list * stmt list
      

type edge = Posedge of string | Comb

type decl_kind = D_wire | D_reg

type port_dir = P_input | P_output

type item =
  | I_decl of decl_kind * range option * string * range option * expr option
      
  | I_assign of lvalue * expr
  | I_always of edge * stmt list
  | I_instance of string * string * (string * expr) list
      

type port = { p_dir : port_dir; p_range : range option; p_name : string }

type vmodule = { v_name : string; v_ports : port list; v_items : item list }

type design = vmodule list

let range_width = function
  | None -> 1
  | Some { msb; lsb } -> msb - lsb + 1
