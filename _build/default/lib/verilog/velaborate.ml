module Bits = Gsim_bits.Bits
open Gsim_ir
open Vast

exception Elab_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elab_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Width-explicit expression helpers                                   *)
(* ------------------------------------------------------------------ *)

let resize e ~w =
  let cur = Expr.width e in
  if cur = w then e
  else if cur > w then Expr.unop (Expr.Extract (w - 1, 0)) e
  else Expr.unop (Expr.Pad_unsigned w) e

let truncate e ~w = if Expr.width e = w then e else Expr.unop (Expr.Extract (w - 1, 0)) e

let bool_of e = if Expr.width e = 1 then e else Expr.unop Expr.Reduce_or e

(* ------------------------------------------------------------------ *)
(* Bindings                                                            *)
(* ------------------------------------------------------------------ *)

type wire_state = {
  w_node : Circuit.node;
  mutable w_driver : [ `None | `Assign | `Comb_always ];
  mutable w_pending : (Expr.t option * Expr.t) list;  (* (guard, rhs), newest first *)
}

type reg_state = {
  r_reg : Circuit.register option ref;  (* created at finalize (reset inference) *)
  r_read : Circuit.node;                (* placeholder holding the read value *)
  r_width : int;
  r_name : string;
  mutable r_pending : (Expr.t option * Expr.t) list;
  mutable r_driver : bool;              (* written by a clocked block *)
  mutable r_comb : bool;                (* written by an always @* block *)
}

type mem_state = { m_index : int; m_width : int; m_depth : int; m_clocked : bool ref }

type binding =
  | B_wire of wire_state          (* wire, or comb-always reg *)
  | B_reg of reg_state
  | B_mem of mem_state
  | B_val of Expr.t               (* input ports, instance outputs *)
  | B_clock

type ctx = {
  c : Circuit.t;
  modules : (string, vmodule) Hashtbl.t;
  mutable drivers : (unit -> unit) list;
      (* phase 1: evaluate assign/connection right-hand sides into pending
         lists, once the whole hierarchy is walked *)
  mutable finalizers : (unit -> unit) list;
      (* phase 2: fold pending lists into node expressions *)
  mutable instance_path : string list;  (* recursion guard *)
}

(* The register read placeholder is a Logic node that the finalizer turns
   into a real register; consumers already hold Var references to it.  We
   cannot retype a node, so instead the placeholder forwards the real
   register's value. *)

let clock_names m =
  List.filter_map
    (fun item -> match item with I_always (Posedge clk, _) -> Some clk | _ -> None)
    m.v_items
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

let rec eval_expr ctx env (e : Vast.expr) : Expr.t =
  match e with
  | E_num (_, v) -> Expr.const v
  | E_ref name -> (
      match lookup env name with
      | B_val v -> v
      | B_wire ws -> Expr.var ~width:ws.w_node.Circuit.width ws.w_node.Circuit.id
      | B_reg rs -> Expr.var ~width:rs.r_width rs.r_read.Circuit.id
      | B_mem _ -> err "memory %S read without an index" name
      | B_clock -> err "clock %S used as data" name)
  | E_index (name, idx) -> (
      match lookup env name with
      | B_mem ms ->
        let addr = eval_expr ctx env idx in
        let addr_id =
          (Circuit.add_logic ctx.c ~name:(Circuit.fresh_name ctx.c (name ^ "_raddr")) addr)
            .Circuit.id
        in
        let port =
          Circuit.add_read_port ctx.c ~mem:ms.m_index
            ~name:(Circuit.fresh_name ctx.c (name ^ "_rdata"))
            ~addr:addr_id ()
        in
        Expr.var ~width:ms.m_width port.Circuit.id
      | B_val _ | B_wire _ | B_reg _ ->
        (* Dynamic bit select. *)
        let v = eval_expr ctx env (E_ref name) in
        let idx = eval_expr ctx env idx in
        Expr.unop (Expr.Extract (0, 0)) (Expr.binop Expr.Dshr v (resize idx ~w:(Expr.width v)))
      | B_clock -> err "clock %S used as data" name)
  | E_range (name, msb, lsb) ->
    let v = eval_expr ctx env (E_ref name) in
    if msb >= Expr.width v then err "part-select [%d:%d] exceeds %S" msb lsb name;
    Expr.unop (Expr.Extract (msb, lsb)) v
  | E_unop (op, a) -> (
      let va = eval_expr ctx env a in
      match op with
      | V_not -> Expr.unop Expr.Not va
      | V_neg -> truncate (Expr.unop Expr.Neg va) ~w:(Expr.width va)
      | V_red_and -> Expr.unop Expr.Reduce_and va
      | V_red_or -> Expr.unop Expr.Reduce_or va
      | V_red_xor -> Expr.unop Expr.Reduce_xor va
      | V_log_not -> Expr.unop Expr.Not (bool_of va))
  | E_binop (op, a, b) -> (
      let va = eval_expr ctx env a and vb = eval_expr ctx env b in
      let w = max (Expr.width va) (Expr.width vb) in
      let ra = resize va ~w and rb = resize vb ~w in
      match op with
      | V_add -> truncate (Expr.binop Expr.Add ra rb) ~w
      | V_sub -> truncate (Expr.binop Expr.Sub ra rb) ~w
      | V_mul -> truncate (Expr.binop Expr.Mul ra rb) ~w
      | V_div -> Expr.binop Expr.Div ra rb
      | V_mod -> resize (Expr.binop Expr.Rem ra rb) ~w
      | V_and -> Expr.binop Expr.And ra rb
      | V_or -> Expr.binop Expr.Or ra rb
      | V_xor -> Expr.binop Expr.Xor ra rb
      | V_eq -> Expr.binop Expr.Eq ra rb
      | V_neq -> Expr.binop Expr.Neq ra rb
      | V_lt -> Expr.binop Expr.Lt ra rb
      | V_le -> Expr.binop Expr.Leq ra rb
      | V_gt -> Expr.binop Expr.Gt ra rb
      | V_ge -> Expr.binop Expr.Geq ra rb
      | V_log_and -> Expr.binop Expr.And (bool_of va) (bool_of vb)
      | V_log_or -> Expr.binop Expr.Or (bool_of va) (bool_of vb)
      | V_shl -> Expr.binop Expr.Dshl va (resize vb ~w:(Expr.width va))
      | V_shr -> Expr.binop Expr.Dshr va (resize vb ~w:(Expr.width va))
      | V_ashr -> Expr.binop Expr.Dshr_signed va (resize vb ~w:(Expr.width va)))
  | E_ternary (s, a, b) ->
    let va = eval_expr ctx env a and vb = eval_expr ctx env b in
    let w = max (Expr.width va) (Expr.width vb) in
    Expr.mux (bool_of (eval_expr ctx env s)) (resize va ~w) (resize vb ~w)
  | E_concat parts ->
    List.map (eval_expr ctx env) parts
    |> List.fold_left
         (fun acc p -> match acc with None -> Some p | Some a -> Some (Expr.binop Expr.Cat a p))
         None
    |> Option.get
  | E_repl (n, a) ->
    if n < 1 then err "replication count must be positive";
    let va = eval_expr ctx env a in
    let rec go k acc = if k = 1 then acc else go (k - 1) (Expr.binop Expr.Cat acc va) in
    go n va

and lookup env name =
  match List.assoc_opt name !env with
  | Some b -> b
  | None -> err "unknown identifier %S" name

(* ------------------------------------------------------------------ *)
(* Procedural blocks                                                   *)
(* ------------------------------------------------------------------ *)

(* Clocked block: fold non-blocking assignments into per-register pending
   lists; memory writes become write ports guarded by the accumulated
   condition. *)
let rec clocked_stmts ctx env guard stmts =
  List.iter (clocked_stmt ctx env guard) stmts

and clocked_stmt ctx env guard s =
  let conj cond = match guard with None -> Some cond | Some g -> Some (Expr.binop Expr.And g cond) in
  match s with
  | S_nonblocking (L_id name, rhs) -> (
      match lookup env name with
      | B_reg rs ->
        rs.r_driver <- true;
        rs.r_pending <- (guard, resize (eval_expr ctx env rhs) ~w:rs.r_width) :: rs.r_pending
      | B_wire _ -> err "%S is not a reg (wires take assign)" name
      | B_val _ | B_mem _ | B_clock -> err "cannot assign %S" name)
  | S_nonblocking (L_index (name, addr), rhs) -> (
      match lookup env name with
      | B_mem ms ->
        let addr_e = eval_expr ctx env addr in
        let data_e = resize (eval_expr ctx env rhs) ~w:ms.m_width in
        let en_e = match guard with None -> Expr.of_int ~width:1 1 | Some g -> bool_of g in
        let node label e =
          (Circuit.add_logic ctx.c ~name:(Circuit.fresh_name ctx.c (name ^ label)) e).Circuit.id
        in
        Circuit.add_write_port ctx.c ~mem:ms.m_index ~addr:(node "_waddr" addr_e)
          ~data:(node "_wdata" data_e) ~en:(node "_wen" en_e)
      | _ -> err "%S is not a memory" name)
  | S_nonblocking (L_range _, _) -> err "part-select assignment is not supported"
  | S_blocking _ -> err "blocking assignment inside a clocked block is not supported"
  | S_if (cond, then_b, else_b) ->
    let c = bool_of (eval_expr ctx env cond) in
    clocked_stmts ctx env (conj c) then_b;
    clocked_stmts ctx env (conj (Expr.unop Expr.Not c)) else_b
  | S_case (scrutinee, items, default) ->
    let sv = eval_expr ctx env scrutinee in
    let item_conds =
      List.map
        (fun (labels, body) ->
          let cond =
            List.map
              (fun l -> Expr.binop Expr.Eq sv (resize (eval_expr ctx env l) ~w:(Expr.width sv)))
              labels
            |> function
            | [] -> err "empty case labels"
            | x :: tl -> List.fold_left (fun a b -> Expr.binop Expr.Or a b) x tl
          in
          (cond, body))
        items
    in
    let rec walk prior = function
      | [] ->
        (* default fires when no label matched *)
        let none_matched =
          List.fold_left
            (fun acc (c, _) -> Expr.binop Expr.And acc (Expr.unop Expr.Not c))
            (Expr.of_int ~width:1 1) prior
        in
        clocked_stmts ctx env (conj none_matched) default
      | (cond, body) :: rest ->
        (* earlier labels take priority *)
        let effective =
          List.fold_left
            (fun acc (c, _) -> Expr.binop Expr.And acc (Expr.unop Expr.Not c))
            cond prior
        in
        clocked_stmts ctx env (conj effective) body;
        walk (prior @ [ (cond, body) ]) rest
    in
    walk [] item_conds

(* Combinational block with blocking semantics: a sequential overlay maps
   each assigned variable to its expression-so-far. *)
let comb_block ctx env stmts =
  let overlay : (string, Expr.t) Hashtbl.t = Hashtbl.create 8 in
  let eval e =
    (* Shadow the environment through a wrapper binding list: names in the
       overlay read their accumulated expression. *)
    let wrapped =
      ref
        (Hashtbl.fold (fun name expr acc -> (name, B_val expr) :: acc) overlay []
         @ !env)
    in
    eval_expr ctx wrapped e
  in
  let target_width name =
    match lookup env name with
    | B_wire ws -> ws.w_node.Circuit.width
    | B_reg rs -> rs.r_width
    | _ -> err "cannot assign %S" name
  in
  let current name w =
    match Hashtbl.find_opt overlay name with
    | Some e -> e
    | None -> Expr.const (Bits.zero w)
  in
  let rec walk guard stmts = List.iter (stmt guard) stmts
  and stmt guard s =
    match s with
    | S_blocking (L_id name, rhs) ->
      let w = target_width name in
      let rhs = resize (eval rhs) ~w in
      let value =
        match guard with None -> rhs | Some g -> Expr.mux g rhs (current name w)
      in
      Hashtbl.replace overlay name value;
      (match lookup env name with
       | B_wire ws ->
         if ws.w_driver = `Assign then err "%S driven by both assign and always @*" name;
         ws.w_driver <- `Comb_always
       | B_reg rs -> rs.r_comb <- true
       | _ -> ())
    | S_blocking _ -> err "only plain identifiers can be blocking-assigned"
    | S_nonblocking _ -> err "nonblocking assignment inside always @* is not supported"
    | S_if (cond, then_b, else_b) ->
      let cv = bool_of (eval cond) in
      let conj c = match guard with None -> Some c | Some g -> Some (Expr.binop Expr.And g c) in
      walk (conj cv) then_b;
      walk (conj (Expr.unop Expr.Not cv)) else_b
    | S_case (scrutinee, items, default) ->
      let sv = eval scrutinee in
      let conds =
        List.map
          (fun (labels, body) ->
            let cond =
              List.map (fun l -> Expr.binop Expr.Eq sv (resize (eval l) ~w:(Expr.width sv))) labels
              |> function
              | [] -> err "empty case labels"
              | x :: tl -> List.fold_left (fun a b -> Expr.binop Expr.Or a b) x tl
            in
            (cond, body))
          items
      in
      let conj c = match guard with None -> Some c | Some g -> Some (Expr.binop Expr.And g c) in
      let rec go prior = function
        | [] ->
          let none =
            List.fold_left
              (fun acc c -> Expr.binop Expr.And acc (Expr.unop Expr.Not c))
              (Expr.of_int ~width:1 1) prior
          in
          walk (conj none) default
        | (cond, body) :: rest ->
          let eff =
            List.fold_left
              (fun acc c -> Expr.binop Expr.And acc (Expr.unop Expr.Not c))
              cond prior
          in
          walk (conj eff) body;
          go (prior @ [ cond ]) rest
      in
      go [] conds
  in
  walk None stmts;
  (* Drive each assigned wire with its final overlay expression. *)
  Hashtbl.iter
    (fun name value ->
      match lookup env name with
      | B_wire ws -> ws.w_pending <- (None, value) :: ws.w_pending
      | B_reg rs -> rs.r_pending <- (None, value) :: rs.r_pending
      | _ -> ())
    overlay

(* ------------------------------------------------------------------ *)
(* Module elaboration                                                  *)
(* ------------------------------------------------------------------ *)

let rec elaborate_module ctx ~prefix ~top (m : vmodule) : (string * binding) list =
  let pfx name = if prefix = "" then name else prefix ^ "." ^ name in
  let env : (string * binding) list ref = ref [] in
  let bind name b = env := (name, b) :: !env in
  let drive f = ctx.drivers <- f :: ctx.drivers in
  let defer f = ctx.finalizers <- f :: ctx.finalizers in
  let clocks = clock_names m in
  (* Declarations from items: regs (and output regs) first so ports can
     resolve. *)
  let declared = Hashtbl.create 16 in
  List.iter
    (fun item ->
      match item with
      | I_decl (kind, range, name, mem_range, init) ->
        if Hashtbl.mem declared name then err "duplicate declaration of %S" name;
        Hashtbl.replace declared name ();
        let width = range_width range in
        (match (kind, mem_range) with
         | D_reg, Some r ->
           let depth = range_width (Some r) in
           let mem = Circuit.add_memory ctx.c ~name:(pfx name) ~width ~depth in
           bind name (B_mem { m_index = mem; m_width = width; m_depth = depth; m_clocked = ref false })
         | D_wire, Some _ -> err "wire arrays are not supported (%S)" name
         | D_reg, None ->
           (* The placeholder forwards the register's value; it carries a
              distinct name so lookups by name find the register itself. *)
           let read =
             Circuit.add_logic ctx.c ~name:(pfx name ^ "$fwd") (Expr.const (Bits.zero width))
           in
           bind name
             (B_reg
                {
                  r_reg = ref None;
                  r_read = read;
                  r_width = width;
                  r_name = pfx name;
                  r_pending = [];
                  r_driver = false;
                  r_comb = false;
                })
         | D_wire, None ->
           let node = Circuit.add_logic ctx.c ~name:(pfx name) (Expr.const (Bits.zero width)) in
           let ws = { w_node = node; w_driver = `None; w_pending = [] } in
           (match init with
            | Some e ->
              ws.w_driver <- `Assign;
              drive (fun () -> ws.w_pending <- (None, resize (eval_expr ctx env e) ~w:width) :: ws.w_pending)
            | None -> ());
           bind name (B_wire ws))
      | I_assign _ | I_always _ | I_instance _ -> ())
    m.v_items;
  (* Ports. *)
  let port_bindings = ref [] in
  List.iter
    (fun p ->
      let width = range_width p.p_range in
      match p.p_dir with
      | P_input ->
        if List.mem p.p_name clocks then begin
          bind p.p_name B_clock;
          port_bindings := (p.p_name, B_clock) :: !port_bindings
        end
        else if top then begin
          let n = Circuit.add_input ctx.c ~name:(pfx p.p_name) ~width in
          bind p.p_name (B_val (Expr.var ~width n.Circuit.id))
        end
        else begin
          let node = Circuit.add_logic ctx.c ~name:(pfx p.p_name) (Expr.const (Bits.zero width)) in
          let ws = { w_node = node; w_driver = `Assign; w_pending = [] } in
          bind p.p_name (B_wire ws);
          port_bindings := (p.p_name, B_wire ws) :: !port_bindings
        end
      | P_output -> (
          (* Output regs were declared above; plain outputs become wires. *)
          match List.assoc_opt p.p_name !env with
          | Some (B_reg rs) ->
            if top then Circuit.mark_output ctx.c rs.r_read.Circuit.id;
            port_bindings :=
              (p.p_name, B_val (Expr.var ~width:rs.r_width rs.r_read.Circuit.id))
              :: !port_bindings
          | Some _ -> err "output %S collides with a declaration" p.p_name
          | None ->
            let node = Circuit.add_logic ctx.c ~name:(pfx p.p_name) (Expr.const (Bits.zero width)) in
            let ws = { w_node = node; w_driver = `None; w_pending = [] } in
            bind p.p_name (B_wire ws);
            if top then Circuit.mark_output ctx.c node.Circuit.id;
            port_bindings :=
              (p.p_name, B_val (Expr.var ~width node.Circuit.id)) :: !port_bindings))
    m.v_ports;
  (* Items. *)
  List.iter
    (fun item ->
      match item with
      | I_decl _ -> ()
      | I_assign (L_id name, rhs) -> (
          match lookup env name with
          | B_wire ws ->
            if ws.w_driver <> `None then err "%S has multiple drivers" name;
            ws.w_driver <- `Assign;
            drive (fun () ->
                ws.w_pending <-
                  (None, resize (eval_expr ctx env rhs) ~w:ws.w_node.Circuit.width)
                  :: ws.w_pending)
          | _ -> err "assign target %S is not a wire" name)
      | I_assign _ -> err "assign supports plain identifiers only"
      | I_always (Posedge clk, stmts) ->
        if not (List.mem clk clocks) then err "unknown clock %S" clk;
        clocked_stmts ctx env None stmts
      | I_always (Comb, stmts) -> comb_block ctx env stmts
      | I_instance (module_name, inst_name, conns) -> (
          match Hashtbl.find_opt ctx.modules module_name with
          | None -> err "unknown module %S" module_name
          | Some sub ->
            if List.mem module_name ctx.instance_path then
              err "recursive instantiation of %S" module_name;
            ctx.instance_path <- module_name :: ctx.instance_path;
            let ports = elaborate_module ctx ~prefix:(pfx inst_name) ~top:false sub in
            (match ctx.instance_path with
             | _ :: tl -> ctx.instance_path <- tl
             | [] -> ());
            List.iter
              (fun (port, e) ->
                match List.assoc_opt port ports with
                | Some B_clock -> ()
                | Some (B_wire ws) ->
                  (* Instance input: driven by the parent's expression. *)
                  drive (fun () ->
                      ws.w_pending <-
                        (None, resize (eval_expr ctx env e) ~w:ws.w_node.Circuit.width)
                        :: ws.w_pending)
                | Some (B_val v) -> (
                    (* Instance output: connect outward to a parent wire. *)
                    match e with
                    | E_ref parent_name -> (
                        match lookup env parent_name with
                        | B_wire ws ->
                          if ws.w_driver <> `None then err "%S has multiple drivers" parent_name;
                          ws.w_driver <- `Assign;
                          ws.w_pending <-
                            (None, resize v ~w:ws.w_node.Circuit.width) :: ws.w_pending
                        | _ -> err "instance output must connect to a wire (%S)" parent_name)
                    | _ -> err "instance output connection must be a plain wire name")
                | Some (B_reg _ | B_mem _) -> err "bad port binding for %S" port
                | None -> err "module %S has no port %S" module_name port)
              conns)
    )
    m.v_items;
  (* Finalize this module's wires and registers once the whole hierarchy is
     walked (parents connect instance inputs late). *)
  List.iter
    (fun (name, b) ->
      match b with
      | B_wire ws ->
        defer (fun () ->
            let w = ws.w_node.Circuit.width in
            let value =
              List.fold_left
                (fun acc (guard, rhs) ->
                  match guard with None -> rhs | Some g -> Expr.mux g rhs acc)
                (Expr.const (Bits.zero w))
                (List.rev ws.w_pending)
            in
            Circuit.set_expr ctx.c ws.w_node.Circuit.id value)
      | B_reg rs when rs.r_comb ->
        defer (fun () ->
            if rs.r_driver then err "reg %S written by both clocked and @* blocks" name;
            (Circuit.node ctx.c rs.r_read.Circuit.id).Circuit.name <- rs.r_name;
            let value =
              List.fold_left
                (fun acc (guard, rhs) ->
                  match guard with None -> rhs | Some g -> Expr.mux g rhs acc)
                (Expr.const (Bits.zero rs.r_width))
                (List.rev rs.r_pending)
            in
            Circuit.set_expr ctx.c rs.r_read.Circuit.id value)
      | B_reg rs ->
        defer (fun () ->
            if not rs.r_driver then err "reg %S is never assigned" name;
            (* Reset inference: the [if (rst) q <= CONST; else ...] idiom.
               A pending guarded by a bare 1-bit signal with a constant
               value can be hoisted into a register reset when every other
               pending's guard has [!rst] as a conjunct (the else
               branches), making the branches exclusive. *)
            let rec excludes s (g : Expr.t) =
              match g.Expr.desc with
              | Expr.Unop (Expr.Not, { Expr.desc = Expr.Var s'; _ }) -> s' = s
              | Expr.Binop (Expr.And, a, b) -> excludes s a || excludes s b
              | _ -> false
            in
            let is_reset_pending (guard, rhs) =
              match (guard, rhs.Expr.desc) with
              | Some { Expr.desc = Expr.Var s; _ }, Expr.Const v
                when (Circuit.node ctx.c s).Circuit.width = 1 ->
                Some (s, v)
              | _ -> None
            in
            let reset, pendings =
              match List.rev rs.r_pending with
              | first :: rest -> (
                  match is_reset_pending first with
                  | Some (s, v)
                    when List.for_all
                           (fun (g, _) ->
                             match g with Some g -> excludes s g | None -> false)
                           rest ->
                    (Some (s, v), List.rev rest)
                  | _ -> (None, rs.r_pending))
              | [] -> (None, rs.r_pending)
            in
            let r =
              Circuit.add_register ctx.c ~name:rs.r_name ~width:rs.r_width
                ~init:(Bits.zero rs.r_width) ?reset ()
            in
            rs.r_reg := Some r;
            let read_var = Expr.var ~width:rs.r_width r.Circuit.read in
            let next =
              List.fold_left
                (fun acc (guard, rhs) ->
                  match guard with None -> rhs | Some g -> Expr.mux g rhs acc)
                read_var (List.rev pendings)
            in
            Circuit.set_next ctx.c r next;
            (* The placeholder forwards the register's value. *)
            Circuit.set_expr ctx.c rs.r_read.Circuit.id read_var)
      | B_val _ | B_mem _ | B_clock -> ())
    !env;
  !port_bindings

let elaborate (design : Vast.design) =
  let modules = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace modules m.v_name m) design;
  (* Top = a module nobody instantiates. *)
  let instantiated = Hashtbl.create 8 in
  List.iter
    (fun m ->
      List.iter
        (fun item ->
          match item with
          | I_instance (name, _, _) -> Hashtbl.replace instantiated name ()
          | _ -> ())
        m.v_items)
    design;
  let tops = List.filter (fun m -> not (Hashtbl.mem instantiated m.v_name)) design in
  let top =
    match tops with
    | [ t ] -> t
    | [] -> err "no top module (instantiation cycle?)"
    | ts -> err "multiple top candidates: %s" (String.concat ", " (List.map (fun m -> m.v_name) ts))
  in
  let c = Circuit.create ~name:top.v_name () in
  let ctx =
    { c; modules; drivers = []; finalizers = []; instance_path = [ top.v_name ] }
  in
  ignore (elaborate_module ctx ~prefix:"" ~top:true top);
  List.iter (fun f -> f ()) (List.rev ctx.drivers);
  List.iter (fun f -> f ()) (List.rev ctx.finalizers);
  Circuit.validate c;
  c
