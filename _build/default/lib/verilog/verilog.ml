exception Error of string

let of_ast design =
  try Velaborate.elaborate design
  with Velaborate.Elab_error msg -> raise (Error ("elaboration: " ^ msg))

let load_string src =
  match Vparser.parse_string src with
  | design -> of_ast design
  | exception Vparser.Parse_error (line, msg) ->
    raise (Error (Printf.sprintf "line %d: %s" line msg))

let load_file path =
  match Vparser.parse_file path with
  | design -> of_ast design
  | exception Vparser.Parse_error (line, msg) ->
    raise (Error (Printf.sprintf "%s:%d: %s" path line msg))
  | exception Sys_error msg -> raise (Error msg)
