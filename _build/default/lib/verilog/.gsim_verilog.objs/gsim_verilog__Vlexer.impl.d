lib/verilog/vlexer.ml: Array Char Format Gsim_bits List Printf String
