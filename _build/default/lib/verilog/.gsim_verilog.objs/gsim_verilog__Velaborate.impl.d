lib/verilog/velaborate.ml: Circuit Expr Gsim_bits Gsim_ir Hashtbl List Option Printf String Vast
