lib/verilog/velaborate.mli: Circuit Gsim_ir Vast
