lib/verilog/vast.mli: Gsim_bits
