lib/verilog/vlexer.mli: Format Gsim_bits
