lib/verilog/vparser.ml: Array Format Gsim_bits List Vast Vlexer
