lib/verilog/verilog.ml: Printf Velaborate Vparser
