lib/verilog/vast.ml: Gsim_bits
