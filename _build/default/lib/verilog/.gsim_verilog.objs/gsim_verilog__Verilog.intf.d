lib/verilog/verilog.mli: Gsim_ir
