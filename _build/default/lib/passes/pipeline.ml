open Gsim_ir

type level = O0 | O1 | O2 | O3

let level_of_string = function
  | "O0" | "o0" | "0" -> Some O0
  | "O1" | "o1" | "1" -> Some O1
  | "O2" | "o2" | "2" -> Some O2
  | "O3" | "o3" | "3" -> Some O3
  | _ -> None

let level_to_string = function O0 -> "O0" | O1 -> "O1" | O2 -> "O2" | O3 -> "O3"

let o1_passes = [ Simplify.pass; Alias.pass; Dce.pass ]

let o2_passes = [ Simplify.pass; Alias.pass; Dce.pass; Reset_opt.pass; Inline.extract_pass; Inline.inline_pass ]

let optimize ?(level = O3) c =
  let outcomes =
    match level with
    | O0 -> []
    | O1 -> Pass.run_fixpoint o1_passes c
    | O2 -> Pass.run_fixpoint o2_passes c
    | O3 ->
      let first = Pass.run_fixpoint o2_passes c in
      let split = Pass.apply Bitsplit.pass c in
      (* No inliner here: it would re-absorb the split parts.  Reset_opt
         restores the slow path on part registers created by the split. *)
      let cleanup =
        Pass.run_fixpoint ~max_rounds:4 (o1_passes @ [ Reset_opt.pass ]) c
      in
      first @ [ split ] @ cleanup
  in
  Circuit.validate c;
  outcomes

let optimize_and_compact ?level c =
  ignore (optimize ?level c);
  let map = Circuit.compact c in
  Circuit.validate c;
  map
