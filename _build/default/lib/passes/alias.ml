open Gsim_ir

(* Aliases are resolved in one batched sweep: chains are followed to their
   final target first, then every expression is rewritten once.  This keeps
   the pass linear even on elaboration output where alias chains are long. *)
let run c =
  let protected = Analysis.port_protected c in
  let nmax = Circuit.max_id c in
  (* target.(id) = Some replacement expression for nodes being dissolved. *)
  let target : Expr.t option array = Array.make nmax None in
  let is_alias = Array.make nmax false in
  Circuit.iter_nodes c (fun n ->
      if n.Circuit.kind = Circuit.Logic && not n.Circuit.is_output then begin
        match n.Circuit.expr with
        | Some ({ Expr.desc = Expr.Var _; _ } as e) ->
          target.(n.Circuit.id) <- Some e;
          is_alias.(n.Circuit.id) <- true
        | Some ({ Expr.desc = Expr.Const _; _ } as e) when not protected.(n.Circuit.id) ->
          target.(n.Circuit.id) <- Some e;
          is_alias.(n.Circuit.id) <- true
        | Some _ | None -> ()
      end);
  (* Follow alias chains with path compression. *)
  let rec resolve id =
    match target.(id) with
    | Some { Expr.desc = Expr.Var v; _ } when is_alias.(v) ->
      let final = resolve v in
      target.(id) <- Some final;
      final
    | Some e -> e
    | None -> Expr.var ~width:(Circuit.node c id).Circuit.width id
  in
  let changed = ref 0 in
  for id = 0 to nmax - 1 do
    if is_alias.(id) then begin
      ignore (resolve id);
      incr changed
    end
  done;
  if !changed > 0 then begin
    let subst ~width v =
      if v < nmax && is_alias.(v) then begin
        match target.(v) with
        | Some e ->
          assert (Expr.width e = width);
          e
        | None -> Expr.var ~width v
      end
      else Expr.var ~width v
    in
    Circuit.iter_nodes c (fun n ->
        match n.Circuit.expr with
        | Some e ->
          let e' = Expr.map_vars subst e in
          if not (e' == e) then n.Circuit.expr <- Some e'
        | None -> ());
    (* Port and reset references are plain ids; only Var targets apply
       (Const targets never reach here because port-protected constants
       were excluded above). *)
    let fix id =
      if id < nmax && is_alias.(id) then begin
        match target.(id) with
        | Some { Expr.desc = Expr.Var v; _ } -> v
        | Some _ | None -> id
      end
      else id
    in
    Array.iter
      (fun (m : Circuit.memory) ->
        m.Circuit.write_ports <-
          List.map
            (fun (w : Circuit.write_port) ->
              { Circuit.w_addr = fix w.w_addr; w_data = fix w.w_data; w_en = fix w.w_en })
            m.Circuit.write_ports;
        List.iter
          (fun data_id ->
            match (Circuit.node c data_id).Circuit.kind with
            | Circuit.Mem_read pi ->
              let p = Circuit.read_port c pi in
              let p' =
                { p with Circuit.r_addr = fix p.Circuit.r_addr; r_en = Option.map fix p.Circuit.r_en }
              in
              if p' <> p then
                (* Rewrite through a Var-only replace_uses would be O(N);
                   patch the port in place instead. *)
                Circuit.replace_read_port c pi p'
            | _ -> ())
          m.Circuit.read_port_ids)
      (Circuit.memories c);
    List.iter
      (fun (r : Circuit.register) ->
        match r.Circuit.reset with
        | Some rst ->
          let s = fix rst.Circuit.reset_signal in
          if s <> rst.Circuit.reset_signal then
            r.Circuit.reset <- Some { rst with Circuit.reset_signal = s }
        | None -> ())
      (Circuit.registers c);
    for id = 0 to nmax - 1 do
      if is_alias.(id) then Circuit.delete_node c id
    done
  end;
  !changed

let pass = { Pass.pass_name = "alias"; run }
