(** Alias-node elimination and constant forwarding (paper §III-B,
    "redundant node elimination" items 1 and 3 preparation).

    A logic node whose expression is exactly another node's value is an
    alias: all uses are redirected and the node deleted.  A logic node
    whose expression is a constant is forwarded into its users (ports and
    reset signals need a real node, so port-referenced constants are
    kept). *)

val pass : Pass.t
