(** Node inline and extraction (paper §III-B, Figure 3).

    Whether a logic node's computation should live in its own node
    (extraction — pay one node of overhead, compute once) or be inlined
    into each consumer (fewer nodes, repeated computation) is decided by
    the paper's cost model: extract when

      [cost f * refs > cost f + cost_node]

    and inline otherwise.  The pass works in both directions: existing
    multiply-referenced cheap nodes are dissolved into their consumers, and
    repeated subexpressions whose cost clears the bound are hoisted into
    fresh nodes (common-subexpression extraction). *)

val cost_node : int
(** The modeled overhead of one extra node: an activation, an examination
    and a store. *)

val inline_pass : Pass.t

val extract_pass : Pass.t

val should_extract : cost:int -> refs:int -> bool
(** The decision rule, exposed for tests and the ablation bench. *)
