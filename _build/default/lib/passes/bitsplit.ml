open Gsim_ir

(* A node qualifies when (a) its expression is a top-level concat whose
   parts are not already split out, and (b) at least one consumer extracts
   a range that lies entirely within one part — otherwise splitting only
   adds nodes without removing activations. *)

let part_widths (e : Expr.t) =
  match e.Expr.desc with
  | Expr.Binop (Expr.Cat, a, b) -> Some (a, b)
  | _ -> None

let run c =
  (* Collect split candidates: node id -> (hi part, lo part).  Logic nodes
     split in place; a register whose next value is a concatenation is
     shadowed by two part registers (r_hi latches the high expression,
     r_lo the low one) so consumers of one half stop waking on changes to
     the other — Fig. 4 with state involved. *)
  let nmax = Circuit.max_id c in
  let candidate : (Expr.t * Expr.t) option array = Array.make nmax None in
  let reg_candidate : (Circuit.register * Expr.t * Expr.t) option array =
    Array.make nmax None
  in
  Circuit.iter_nodes c (fun n ->
      if n.Circuit.kind = Circuit.Logic then
        match n.Circuit.expr with
        | Some e ->
          (match part_widths e with
           | Some (a, b) -> candidate.(n.Circuit.id) <- Some (a, b)
           | None -> ())
        | None -> ());
  List.iter
    (fun (r : Circuit.register) ->
      match (Circuit.node c r.Circuit.next).Circuit.expr with
      | Some e -> (
          match part_widths e with
          | Some (a, b) -> reg_candidate.(r.Circuit.read) <- Some (r, a, b)
          | None -> ())
      | None -> ())
    (Circuit.registers c);
  (* Does any consumer extract within a part? *)
  let beneficial = Array.make nmax false in
  let rec scan (e : Expr.t) =
    (match e.Expr.desc with
     | Expr.Unop (Expr.Extract (hi, lo), { Expr.desc = Expr.Var v; _ }) when v < nmax -> (
         (match candidate.(v) with
          | Some (_, b) ->
            let wb = Expr.width b in
            if hi < wb || lo >= wb then beneficial.(v) <- true
          | None -> ());
         match reg_candidate.(v) with
         | Some (_, _, b) ->
           let wb = Expr.width b in
           if hi < wb || lo >= wb then beneficial.(v) <- true
         | None -> ())
     | _ -> ());
    match e.Expr.desc with
    | Expr.Const _ | Expr.Var _ -> ()
    | Expr.Unop (_, a) -> scan a
    | Expr.Binop (_, a, b) -> scan a; scan b
    | Expr.Mux (s, a, b) -> scan s; scan a; scan b
  in
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with Some e -> scan e | None -> ());
  (* Materialize parts for the beneficial candidates. *)
  let parts = Hashtbl.create 16 in
  let changed = ref 0 in
  for id = 0 to nmax - 1 do
    if beneficial.(id) then begin
      match candidate.(id) with
      | Some (a, b) ->
        let n = Circuit.node c id in
        (* A part that is already another node needs no materialization:
           consumers retarget straight to it (Fig. 4's register case). *)
        let part_node suffix (e : Expr.t) =
          match e.Expr.desc with
          | Expr.Var v -> v
          | _ ->
            (Circuit.add_logic c ~name:(Circuit.fresh_name c (n.Circuit.name ^ suffix)) e)
              .Circuit.id
        in
        let hi_id = part_node "$hi" a and lo_id = part_node "$lo" b in
        Circuit.set_expr c id
          (Expr.binop Expr.Cat
             (Expr.var ~width:(Expr.width a) hi_id)
             (Expr.var ~width:(Expr.width b) lo_id));
        Hashtbl.replace parts id (hi_id, lo_id, Expr.width b);
        incr changed
      | None -> ()
    end
  done;
  (* Shadow part-registers. *)
  for id = 0 to nmax - 1 do
    if beneficial.(id) then begin
      match reg_candidate.(id) with
      | Some (r, a, b) ->
        let module B = Gsim_bits.Bits in
        let wa = Expr.width a and wb = Expr.width b in
        let mk suffix ~hi ~lo e w =
          let init = B.extract r.Circuit.init ~hi ~lo in
          let reset =
            Option.map
              (fun (rst : Circuit.reset) ->
                (rst.Circuit.reset_signal, B.extract rst.Circuit.reset_value ~hi ~lo))
              r.Circuit.reset
          in
          let part =
            Circuit.add_register c
              ~name:(Circuit.fresh_name c (r.Circuit.reg_name ^ suffix))
              ~width:w ~init ?reset ()
          in
          Circuit.set_next c part e;
          part
        in
        let r_hi = mk "$hi" ~hi:(wa + wb - 1) ~lo:wb a wa in
        let r_lo = mk "$lo" ~hi:(wb - 1) ~lo:0 b wb in
        Hashtbl.replace parts id (r_hi.Circuit.read, r_lo.Circuit.read, wb);
        incr changed
      | None -> ()
    end
  done;
  if !changed > 0 then begin
    (* Retarget in-part extracts to the part nodes. *)
    let rec retarget (e : Expr.t) : Expr.t =
      match e.Expr.desc with
      | Expr.Unop (Expr.Extract (hi, lo), ({ Expr.desc = Expr.Var v; _ } as whole))
        when Hashtbl.mem parts v -> begin
          let hi_id, lo_id, wb = Hashtbl.find parts v in
          let wa = Expr.width whole - wb in
          if hi < wb then Expr.unop (Expr.Extract (hi, lo)) (Expr.var ~width:wb lo_id)
          else if lo >= wb then
            Expr.unop (Expr.Extract (hi - wb, lo - wb)) (Expr.var ~width:wa hi_id)
          else
            Expr.binop Expr.Cat
              (Expr.unop (Expr.Extract (hi - wb, 0)) (Expr.var ~width:wa hi_id))
              (Expr.unop (Expr.Extract (wb - 1, lo)) (Expr.var ~width:wb lo_id))
        end
      | Expr.Const _ | Expr.Var _ -> e
      | Expr.Unop (op, a) ->
        let a' = retarget a in
        if a' == a then e else Expr.unop op a'
      | Expr.Binop (op, a, b) ->
        let a' = retarget a and b' = retarget b in
        if a' == a && b' == b then e else Expr.binop op a' b'
      | Expr.Mux (s, a, b) ->
        let s' = retarget s and a' = retarget a and b' = retarget b in
        if s' == s && a' == a && b' == b then e else Expr.mux s' a' b'
    in
    Circuit.iter_nodes c (fun n ->
        if not (Hashtbl.mem parts n.Circuit.id) then
          match n.Circuit.expr with
          | Some e ->
            let e' = retarget e in
            if not (e' == e) then n.Circuit.expr <- Some e'
          | None -> ())
  end;
  !changed

let pass = { Pass.pass_name = "bitsplit"; run }
