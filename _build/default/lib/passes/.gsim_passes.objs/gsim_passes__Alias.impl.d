lib/passes/alias.ml: Analysis Array Circuit Expr Gsim_ir List Option Pass
