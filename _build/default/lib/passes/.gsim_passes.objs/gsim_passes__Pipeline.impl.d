lib/passes/pipeline.ml: Alias Bitsplit Circuit Dce Gsim_ir Inline Pass Reset_opt Simplify
