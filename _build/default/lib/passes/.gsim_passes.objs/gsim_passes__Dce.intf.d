lib/passes/dce.mli: Pass
