lib/passes/analysis.mli: Circuit Gsim_ir
