lib/passes/bitsplit.ml: Array Circuit Expr Gsim_bits Gsim_ir Hashtbl List Option Pass
