lib/passes/inline.mli: Pass
