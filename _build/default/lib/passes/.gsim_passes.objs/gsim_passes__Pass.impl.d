lib/passes/pass.ml: Circuit Format Gsim_ir List
