lib/passes/simplify.ml: Circuit Expr Gsim_bits Gsim_ir Option Pass
