lib/passes/reset_opt.ml: Circuit Expr Gsim_bits Gsim_ir List Pass
