lib/passes/simplify.mli: Gsim_ir Pass
