lib/passes/dce.ml: Analysis Array Circuit Gsim_ir List Pass
