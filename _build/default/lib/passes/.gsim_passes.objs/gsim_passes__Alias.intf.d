lib/passes/alias.mli: Pass
