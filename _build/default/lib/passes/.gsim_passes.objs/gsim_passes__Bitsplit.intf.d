lib/passes/bitsplit.mli: Pass
