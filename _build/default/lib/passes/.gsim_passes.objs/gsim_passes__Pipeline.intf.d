lib/passes/pipeline.mli: Circuit Gsim_ir Pass
