lib/passes/pass.mli: Circuit Format Gsim_ir
