lib/passes/reset_opt.mli: Pass
