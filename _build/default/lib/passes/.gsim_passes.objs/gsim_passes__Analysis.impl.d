lib/passes/analysis.ml: Array Circuit Expr Gsim_ir List Queue
