lib/passes/inline.ml: Analysis Array Circuit Expr Format Gsim_ir Hashtbl List Pass
