open Gsim_ir

let cost_node = 3

let should_extract ~cost ~refs = cost * refs > cost + cost_node

(* Cap on the size of an expression produced by inlining; beyond this the
   node is worth its activation overhead regardless of the model. *)
let max_inlined_size = 64

(* ------------------------------------------------------------------ *)
(* Inline direction                                                    *)
(* ------------------------------------------------------------------ *)

let inline_run c =
  let counts = Analysis.use_counts c in
  let protected = Analysis.port_protected c in
  let nmax = Circuit.max_id c in
  (* Candidate bodies, substituted transitively in one sweep (an inlined
     body may itself mention inlinable nodes; resolve bodies first). *)
  let body : Expr.t option array = Array.make nmax None in
  Circuit.iter_nodes c (fun n ->
      if
        n.Circuit.kind = Circuit.Logic
        && (not n.Circuit.is_output)
        && (not protected.(n.Circuit.id))
        && counts.(n.Circuit.id) > 0
      then begin
        match n.Circuit.expr with
        | Some e
          when (not (should_extract ~cost:(Expr.cost e) ~refs:counts.(n.Circuit.id)))
               && Expr.size e <= max_inlined_size ->
          body.(n.Circuit.id) <- Some e
        | Some _ | None -> ()
      end);
  (* Resolve nested candidates bottom-up with memoization. *)
  let resolved = Array.make nmax false in
  let rec resolve id =
    if not resolved.(id) then begin
      resolved.(id) <- true;
      match body.(id) with
      | Some e ->
        let e' =
          Expr.map_vars
            (fun ~width v ->
              match resolve v with
              | Some b when Expr.size b + Expr.size e <= max_inlined_size -> b
              | Some _ | None -> Expr.var ~width v)
            e
        in
        body.(id) <- Some e'
      | None -> ()
    end;
    body.(id)
  in
  for id = 0 to nmax - 1 do
    ignore (resolve id)
  done;
  let changed = ref 0 in
  let subst ~width v =
    match if v < nmax then body.(v) else None with
    | Some b -> b
    | None -> Expr.var ~width v
  in
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with
      | Some e when body.(n.Circuit.id) = None ->
        (* Only rewrite nodes that survive; dissolved nodes are deleted. *)
        let has_candidate = List.exists (fun v -> v < nmax && body.(v) <> None) (Expr.vars e) in
        if has_candidate then begin
          let e' = Expr.map_vars subst e in
          if Expr.size e' <= max_inlined_size || Expr.size e' <= Expr.size e then begin
            n.Circuit.expr <- Some e';
            incr changed
          end
        end
      | Some _ | None -> ());
  (* Delete nodes that no longer have uses (their consumers absorbed the
     body); nodes that kept a use stay. *)
  let counts' = Analysis.use_counts c in
  for id = 0 to nmax - 1 do
    if body.(id) <> None && counts'.(id) = 0 then begin
      Circuit.delete_node c id;
      incr changed
    end
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* Extraction direction (cross-node CSE)                               *)
(* ------------------------------------------------------------------ *)

(* Canonical key of an expression for the occurrence table. *)
let key_of e = Format.asprintf "%a" Expr.pp e

let extract_run c =
  (* Count occurrences of nontrivial subexpressions across every node. *)
  let table : (string, int * Expr.t) Hashtbl.t = Hashtbl.create 1024 in
  let rec visit (e : Expr.t) =
    (match e.Expr.desc with
     | Expr.Const _ | Expr.Var _ -> ()
     | Expr.Unop (_, a) -> visit a
     | Expr.Binop (_, a, b) -> visit a; visit b
     | Expr.Mux (s, a, b) -> visit s; visit a; visit b);
    if Expr.size e >= 2 && Expr.size e <= 24 then begin
      let k = key_of e in
      match Hashtbl.find_opt table k with
      | Some (n, e0) -> Hashtbl.replace table k (n + 1, e0)
      | None -> Hashtbl.add table k (1, e)
    end
  in
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with Some e -> visit e | None -> ());
  (* Pick winners by the cost model; prefer bigger expressions first so
     nested candidates defer to their enclosing winner. *)
  let winners =
    Hashtbl.fold
      (fun k (refs, e) acc ->
        if refs >= 2 && should_extract ~cost:(Expr.cost e) ~refs then (k, e) :: acc else acc)
      table []
    |> List.sort (fun (_, e1) (_, e2) -> compare (Expr.size e2) (Expr.size e1))
  in
  let changed = ref 0 in
  let extracted : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k, e) ->
      (* Skip candidates nested inside an already-extracted expression to
         avoid churn; the next fixpoint round reconsiders them. *)
      if Hashtbl.length extracted < 64 && not (Hashtbl.mem extracted k) then begin
        let node = Circuit.add_logic c ~name:(Circuit.fresh_name c "cse") e in
        Hashtbl.add extracted k node.Circuit.id;
        incr changed
      end)
    (match winners with _ :: _ -> winners | [] -> []);
  if !changed > 0 then begin
    (* Rewrite every occurrence (outermost-first) to reference the new
       nodes. *)
    let rec rewrite (e : Expr.t) : Expr.t =
      match Hashtbl.find_opt extracted (key_of e) with
      | Some id when Expr.size e >= 2 -> Expr.var ~width:(Expr.width e) id
      | Some _ | None ->
        (match e.Expr.desc with
         | Expr.Const _ | Expr.Var _ -> e
         | Expr.Unop (op, a) ->
           let a' = rewrite a in
           if a' == a then e else Expr.unop op a'
         | Expr.Binop (op, a, b) ->
           let a' = rewrite a and b' = rewrite b in
           if a' == a && b' == b then e else Expr.binop op a' b'
         | Expr.Mux (s, a, b) ->
           let s' = rewrite s and a' = rewrite a and b' = rewrite b in
           if s' == s && a' == a && b' == b then e else Expr.mux s' a' b')
    in
    Circuit.iter_nodes c (fun n ->
        match n.Circuit.expr with
        | Some e ->
          (* The freshly created CSE nodes keep their body verbatim. *)
          if not (Hashtbl.mem extracted (key_of e) && Hashtbl.find extracted (key_of e) = n.Circuit.id)
          then begin
            let e' = rewrite e in
            if not (e' == e) then n.Circuit.expr <- Some e'
          end
        | None -> ())
  end;
  !changed

let inline_pass = { Pass.pass_name = "inline"; run = inline_run }
let extract_pass = { Pass.pass_name = "extract"; run = extract_run }
