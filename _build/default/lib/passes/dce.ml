open Gsim_ir

let run c =
  let live = Analysis.live c in
  let deleted = ref 0 in
  (* Dead registers first so their nodes are dropped in one sweep. *)
  List.iter
    (fun (r : Circuit.register) ->
      if not live.(r.Circuit.read) then begin
        Circuit.delete_register c r;
        deleted := !deleted + 2
      end)
    (Circuit.registers c);
  (* Memories without live read ports lose their write ports; the empty
     memory itself is inert. *)
  Array.iter
    (fun (m : Circuit.memory) ->
      let has_live_reader = List.exists (fun id -> live.(id)) m.Circuit.read_port_ids in
      if (not has_live_reader) && m.Circuit.write_ports <> [] then begin
        m.Circuit.write_ports <- [];
        incr deleted
      end)
    (Circuit.memories c);
  Circuit.iter_nodes c (fun n ->
      if not live.(n.Circuit.id) then begin
        match n.Circuit.kind with
        | Circuit.Logic | Circuit.Mem_read _ ->
          Circuit.delete_node c n.Circuit.id;
          incr deleted
        | Circuit.Input -> ()
        | Circuit.Reg_read _ | Circuit.Reg_next _ ->
          (* Removed together with their register above. *)
          ()
      end);
  (* Memory read-port lists may now mention deleted nodes. *)
  Array.iter
    (fun (m : Circuit.memory) ->
      m.Circuit.read_port_ids <-
        List.filter (fun id -> Circuit.node_opt c id <> None) m.Circuit.read_port_ids)
    (Circuit.memories c);
  !deleted

let pass = { Pass.pass_name = "dce"; run }
