open Gsim_ir

type t = { pass_name : string; run : Circuit.t -> int }

type outcome = {
  outcome_pass : string;
  rewrites : int;
  nodes_before : int;
  nodes_after : int;
}

let apply p c =
  let nodes_before = Circuit.node_count c in
  let rewrites = p.run c in
  { outcome_pass = p.pass_name; rewrites; nodes_before; nodes_after = Circuit.node_count c }

let run_pipeline passes c = List.map (fun p -> apply p c) passes

let run_fixpoint ?(max_rounds = 8) passes c =
  let rec go round acc =
    if round >= max_rounds then List.rev acc
    else begin
      let outcomes = run_pipeline passes c in
      Circuit.validate c;
      let changed = List.exists (fun o -> o.rewrites > 0) outcomes in
      let acc = List.rev_append outcomes acc in
      if changed then go (round + 1) acc else List.rev acc
    end
  in
  go 0 []

let pp_outcome fmt o =
  Format.fprintf fmt "%-16s rewrites=%-6d nodes %d -> %d" o.outcome_pass o.rewrites
    o.nodes_before o.nodes_after
