(** Redundant-node elimination: dead nodes, unused registers, and the
    ports of memories nobody reads (paper §III-B, "redundant node
    elimination" items 2 and 4; aliases and shorted nodes are handled by
    {!Alias} and {!Simplify}). *)

val pass : Pass.t
