open Gsim_ir

let use_counts c =
  let counts = Array.make (Circuit.max_id c) 0 in
  Circuit.iter_nodes c (fun n ->
      match n.Circuit.expr with
      | Some e -> Expr.iter_vars (fun v -> counts.(v) <- counts.(v) + 1) e
      | None -> ());
  counts

let port_protected c =
  let prot = Array.make (Circuit.max_id c) false in
  Array.iter
    (fun (m : Circuit.memory) ->
      List.iter
        (fun (w : Circuit.write_port) ->
          prot.(w.w_addr) <- true;
          prot.(w.w_data) <- true;
          prot.(w.w_en) <- true)
        m.write_ports;
      List.iter
        (fun data_id ->
          match (Circuit.node c data_id).Circuit.kind with
          | Circuit.Mem_read pi ->
            let p = Circuit.read_port c pi in
            prot.(p.Circuit.r_addr) <- true;
            (match p.Circuit.r_en with Some en -> prot.(en) <- true | None -> ())
          | _ -> ())
        m.read_port_ids)
    (Circuit.memories c);
  List.iter
    (fun (r : Circuit.register) ->
      match r.reset with
      | Some rst -> prot.(rst.Circuit.reset_signal) <- true
      | None -> ())
    (Circuit.registers c);
  prot

let live c =
  let live = Array.make (Circuit.max_id c) false in
  let mem_live = Array.make (Array.length (Circuit.memories c)) false in
  let queue = Queue.create () in
  let mark id =
    if not live.(id) then begin
      live.(id) <- true;
      Queue.add id queue
    end
  in
  Circuit.iter_nodes c (fun n ->
      if n.Circuit.is_output then mark n.Circuit.id;
      match n.Circuit.kind with Circuit.Input -> mark n.Circuit.id | _ -> ());
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let n = Circuit.node c id in
    List.iter mark (Circuit.dependencies c id);
    match n.Circuit.kind with
    | Circuit.Reg_read _ ->
      (match Circuit.register_of_node c id with
       | Some r ->
         mark r.Circuit.next;
         (match r.Circuit.reset with
          | Some rst -> mark rst.Circuit.reset_signal
          | None -> ())
       | None -> ())
    | Circuit.Mem_read pi ->
      let p = Circuit.read_port c pi in
      let mi = p.Circuit.r_mem in
      if not mem_live.(mi) then begin
        mem_live.(mi) <- true;
        List.iter
          (fun (w : Circuit.write_port) ->
            mark w.w_addr;
            mark w.w_data;
            mark w.w_en)
          (Circuit.memory c mi).Circuit.write_ports
      end
    | Circuit.Input | Circuit.Logic | Circuit.Reg_next _ -> ()
  done;
  live
