(** Bit-level node splitting (paper §III-C, Figure 4).

    A logic node whose expression is a concatenation carries bit ranges
    that change independently, yet a change in any range activates every
    consumer.  This pass materializes the concatenation's parts as
    separate nodes and retargets consumers that extract a sub-range to the
    part they actually read, so a change confined to the other part no
    longer activates them — reducing the activity factor.  Consumers of
    the whole value keep reading the original node, which becomes a plain
    concat of the two part nodes (and dead code if everyone was
    retargeted). *)

val pass : Pass.t
