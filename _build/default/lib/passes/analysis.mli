(** Shared dataflow analyses used by the optimization passes. *)

open Gsim_ir

val use_counts : Circuit.t -> int array
(** Number of [Var] occurrences of each node across all expressions
    (repetitions count; port and reset references are not included — see
    {!port_protected}). *)

val port_protected : Circuit.t -> bool array
(** Nodes referenced by memory ports or register reset signals.  These
    references are plain node ids, so such a node may only be replaced by
    another node, never by an arbitrary expression. *)

val live : Circuit.t -> bool array
(** Liveness from the observable roots: output-marked nodes keep their
    dependency cone alive; a live register read keeps its next-expression
    and reset signal alive; a live memory read port keeps the memory's
    write ports alive.  Inputs are always live (they are the circuit's
    interface).  Everything else is dead — including registers that only
    update themselves (the paper's "unused registers"). *)
