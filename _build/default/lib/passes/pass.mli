(** Pass framework.

    A pass mutates the circuit in place and reports how many rewrites it
    performed.  {!run_fixpoint} iterates a pipeline until nothing changes,
    and {!report} captures per-pass statistics for the ablation benches. *)

open Gsim_ir

type t = { pass_name : string; run : Circuit.t -> int }

type outcome = {
  outcome_pass : string;
  rewrites : int;
  nodes_before : int;
  nodes_after : int;
}

val apply : t -> Circuit.t -> outcome

val run_pipeline : t list -> Circuit.t -> outcome list
(** One application of each pass in order. *)

val run_fixpoint : ?max_rounds:int -> t list -> Circuit.t -> outcome list
(** Repeats the pipeline until a full round performs no rewrites (or the
    round bound is hit).  Validates the circuit after every round. *)

val pp_outcome : Format.formatter -> outcome -> unit
