(** Expression simplification (paper §III-B, "expression simplification"
    and "shorted nodes"): constant folding and propagation, algebraic
    identities, mux shorting, extract/concat restructuring, and the
    one-hot pattern [(1 << a) & k  ==>  (a == log2 k) << log2 k].

    Every rewrite preserves the expression's width exactly. *)

val rewrite : Gsim_ir.Expr.t -> Gsim_ir.Expr.t
(** Bottom-up simplification to a local fixpoint. *)

val pass : Pass.t
