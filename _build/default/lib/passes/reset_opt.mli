(** Reset-handling optimization (paper §III-B, Listings 5/6).

    A register lowered with a synchronous reset evaluates
    [mux(reset, init, next)] every cycle.  This pass strips the mux from
    the next-value expression and marks the register's reset as
    slow-path: the engines then check each distinct reset signal once per
    cycle instead of once per register evaluation, reducing reset checks
    from the number of registers to the number of reset signals. *)

val pass : Pass.t
