open Gsim_ir
module Bits = Gsim_bits.Bits

let run c =
  let changed = ref 0 in
  List.iter
    (fun (r : Circuit.register) ->
      match r.Circuit.reset with
      | Some rst when not rst.Circuit.slow_path ->
        let next = Circuit.node c r.Circuit.next in
        (match next.Circuit.expr with
         | Some
             {
               Expr.desc =
                 Expr.Mux ({ Expr.desc = Expr.Var s; _ }, { Expr.desc = Expr.Const v; _ }, e);
               _;
             }
           when s = rst.Circuit.reset_signal && Bits.equal v rst.Circuit.reset_value ->
           rst.Circuit.slow_path <- true;
           Circuit.set_expr c r.Circuit.next e;
           incr changed
         | Some _ | None -> ())
      | Some _ | None -> ())
    (Circuit.registers c);
  !changed

let pass = { Pass.pass_name = "reset"; run }
