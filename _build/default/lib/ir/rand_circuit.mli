(** Random circuit generation for property-based testing.

    Generated circuits are valid and acyclic by construction, contain
    inputs, logic with every operator class, registers (some with reset)
    and optionally a memory, and have several marked outputs.  Used by the
    engine-equivalence and pass-soundness qcheck suites. *)

type config = {
  logic_nodes : int;    (** number of random combinational nodes *)
  num_inputs : int;
  num_registers : int;
  max_width : int;      (** widths are drawn in [1, max_width] *)
  with_memory : bool;
  with_reset : bool;
  max_depth : int;      (** expression tree depth *)
}

val default_config : config

val generate : Random.State.t -> config -> Circuit.t

val random_stimulus :
  Random.State.t -> Circuit.t -> cycles:int -> (int * Gsim_bits.Bits.t) list array
(** [random_stimulus st c ~cycles] draws, for each cycle, a list of
    (input node id, value) pokes — the same stimulus can then be replayed
    against several simulators. *)
