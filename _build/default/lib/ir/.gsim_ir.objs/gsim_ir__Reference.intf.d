lib/ir/reference.mli: Circuit Gsim_bits
