lib/ir/circuit.mli: Expr Format Gsim_bits
