lib/ir/rand_circuit.mli: Circuit Gsim_bits Random
