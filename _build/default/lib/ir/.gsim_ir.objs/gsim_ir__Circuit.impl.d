lib/ir/circuit.ml: Array Expr Format Gsim_bits Hashtbl List Option Printf Queue
