lib/ir/expr.ml: Format Gsim_bits List Printf
