lib/ir/rand_circuit.ml: Array Circuit Expr Gsim_bits List Printf Random
