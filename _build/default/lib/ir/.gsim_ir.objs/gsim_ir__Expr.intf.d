lib/ir/expr.mli: Format Gsim_bits
