lib/ir/reference.ml: Array Circuit Expr Gsim_bits List Printf
