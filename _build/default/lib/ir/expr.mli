(** Expressions evaluated inside a single IR node.

    An expression is a tree whose leaves are constants and references to
    other nodes ([Var]).  Every expression carries a bit width fixed at
    construction time, following FIRRTL primop width rules.  All values are
    bit patterns; signed interpretation is explicit in the dedicated signed
    operators. *)

type unop =
  | Not                    (** bitwise complement, same width *)
  | Neg                    (** two's-complement negation, width + 1 *)
  | Reduce_and             (** 1-bit AND reduction *)
  | Reduce_or
  | Reduce_xor
  | Shl_const of int       (** static shift left, width + n *)
  | Shr_const of int       (** static logical shift right, width [max 1 (w - n)] *)
  | Extract of int * int   (** [Extract (hi, lo)], width hi - lo + 1 *)
  | Pad_unsigned of int    (** zero-extend/truncate to the given width *)
  | Pad_signed of int      (** sign-extend/truncate to the given width *)

type binop =
  | Add                    (** width max + 1, modular *)
  | Sub                    (** width max + 1, two's-complement wrap *)
  | Mul                    (** width w1 + w2 *)
  | Div                    (** unsigned, width w1; x/0 = 0 *)
  | Div_signed             (** width w1 + 1, truncating; x/0 = 0 *)
  | Rem                    (** unsigned, width min w1 w2; x%0 = x (truncated) *)
  | Rem_signed             (** width min w1 w2, sign of dividend *)
  | And                    (** width max, zero-extended operands *)
  | Or
  | Xor
  | Cat                    (** first operand in the high bits, width w1 + w2 *)
  | Eq | Neq | Lt | Leq | Gt | Geq            (** unsigned, 1-bit result *)
  | Lt_signed | Leq_signed | Gt_signed | Geq_signed
  | Dshl                   (** dynamic shift left, keeps operand width *)
  | Dshr                   (** dynamic logical shift right, keeps width *)
  | Dshr_signed            (** dynamic arithmetic shift right, keeps width *)

type t = private { desc : desc; width : int }

and desc =
  | Const of Gsim_bits.Bits.t
  | Var of int             (** reference to the value of another node *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t       (** selector (any width, nonzero = true), then, else *)

(** {1 Constructors} *)

val const : Gsim_bits.Bits.t -> t
val of_int : width:int -> int -> t
val var : width:int -> int -> t
val unop : unop -> t -> t
val binop : binop -> t -> t -> t
val mux : t -> t -> t -> t
(** [mux sel a b]; [a] and [b] must have equal widths.
    Raises [Invalid_argument] on width violations. *)

val width : t -> int

(** {1 Width rules} *)

val unop_width : unop -> int -> int
val binop_width : binop -> int -> int -> int

(** {1 Evaluation} *)

val eval : (int -> Gsim_bits.Bits.t) -> t -> Gsim_bits.Bits.t
(** [eval env e] evaluates [e], reading node values through [env].  This is
    the reference semantics; the engines must agree with it. *)

val eval_unop : unop -> Gsim_bits.Bits.t -> Gsim_bits.Bits.t
val eval_binop : binop -> Gsim_bits.Bits.t -> Gsim_bits.Bits.t -> Gsim_bits.Bits.t

(** {1 Analysis} *)

val vars : t -> int list
(** Distinct node references, ascending. *)

val iter_vars : (int -> unit) -> t -> unit
(** Visits every [Var] occurrence (with repetitions). *)

val map_vars : (width:int -> int -> t) -> t -> t
(** [map_vars f e] replaces each [Var v] of width [w] by [f ~width:w v].
    The replacement must have width [w]. *)

val size : t -> int
(** Number of operator applications (constants and vars are free). *)

val cost : t -> int
(** Estimated evaluation cost in abstract operator units (wide operations
    and division cost more), the currency of the paper's inline/extract and
    activation cost models. *)

val depends_on : t -> int -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_unop : Format.formatter -> unop -> unit
val pp_binop : Format.formatter -> binop -> unit
