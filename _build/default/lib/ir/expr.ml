module Bits = Gsim_bits.Bits

type unop =
  | Not
  | Neg
  | Reduce_and
  | Reduce_or
  | Reduce_xor
  | Shl_const of int
  | Shr_const of int
  | Extract of int * int
  | Pad_unsigned of int
  | Pad_signed of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Div_signed
  | Rem
  | Rem_signed
  | And
  | Or
  | Xor
  | Cat
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Lt_signed | Leq_signed | Gt_signed | Geq_signed
  | Dshl
  | Dshr
  | Dshr_signed

type t = { desc : desc; width : int }

and desc =
  | Const of Bits.t
  | Var of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Mux of t * t * t

let width e = e.width

let unop_width op w =
  match op with
  | Not -> w
  | Neg -> w + 1
  | Reduce_and | Reduce_or | Reduce_xor -> 1
  | Shl_const n -> w + n
  | Shr_const n -> max 1 (w - n)
  | Extract (hi, lo) -> hi - lo + 1
  | Pad_unsigned n | Pad_signed n -> n

let binop_width op w1 w2 =
  match op with
  | Add | Sub -> max w1 w2 + 1
  | Mul -> w1 + w2
  | Div -> w1
  | Div_signed -> w1 + 1
  | Rem | Rem_signed -> min w1 w2
  | And | Or | Xor -> max w1 w2
  | Cat -> w1 + w2
  | Eq | Neq | Lt | Leq | Gt | Geq
  | Lt_signed | Leq_signed | Gt_signed | Geq_signed -> 1
  | Dshl | Dshr | Dshr_signed -> w1

let const b = { desc = Const b; width = Bits.width b }

let of_int ~width n = const (Bits.of_int ~width n)

let var ~width id =
  if width < 1 then invalid_arg "Expr.var: width must be >= 1";
  { desc = Var id; width }

let unop op e =
  (match op with
   | Extract (hi, lo) ->
     if not (0 <= lo && lo <= hi && hi < e.width) then
       invalid_arg
         (Printf.sprintf "Expr.unop: extract [%d:%d] out of range for width %d" hi lo e.width)
   | Shl_const n | Shr_const n ->
     if n < 0 then invalid_arg "Expr.unop: negative shift"
   | Pad_unsigned n | Pad_signed n ->
     if n < 1 then invalid_arg "Expr.unop: pad to width < 1"
   | Not | Neg | Reduce_and | Reduce_or | Reduce_xor -> ());
  { desc = Unop (op, e); width = unop_width op e.width }

let binop op a b = { desc = Binop (op, a, b); width = binop_width op a.width b.width }

let mux sel a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Expr.mux: branch widths differ (%d vs %d)" a.width b.width);
  { desc = Mux (sel, a, b); width = a.width }

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let eval_unop op v =
  match op with
  | Not -> Bits.lognot v
  | Neg -> Bits.neg v
  | Reduce_and -> Bits.reduce_and v
  | Reduce_or -> Bits.reduce_or v
  | Reduce_xor -> Bits.reduce_xor v
  | Shl_const n -> Bits.shift_left v n
  | Shr_const n -> Bits.shift_right v n
  | Extract (hi, lo) -> Bits.extract v ~hi ~lo
  | Pad_unsigned n -> Bits.resize_unsigned v ~width:n
  | Pad_signed n -> Bits.resize_signed v ~width:n

let eval_binop op a b =
  let ext2 f =
    let w = max (Bits.width a) (Bits.width b) in
    f (Bits.resize_unsigned a ~width:w) (Bits.resize_unsigned b ~width:w)
  in
  match op with
  | Add -> Bits.add a b
  | Sub -> Bits.sub a b
  | Mul -> Bits.mul a b
  | Div -> Bits.div a b
  | Div_signed -> Bits.div_signed a b
  | Rem -> Bits.rem a b
  | Rem_signed -> Bits.rem_signed a b
  | And -> ext2 Bits.logand
  | Or -> ext2 Bits.logor
  | Xor -> ext2 Bits.logxor
  | Cat -> Bits.concat a b
  | Eq -> Bits.eq a b
  | Neq -> Bits.neq a b
  | Lt -> Bits.lt a b
  | Leq -> Bits.leq a b
  | Gt -> Bits.gt a b
  | Geq -> Bits.geq a b
  | Lt_signed -> Bits.lt_signed a b
  | Leq_signed -> Bits.leq_signed a b
  | Gt_signed -> Bits.gt_signed a b
  | Geq_signed -> Bits.geq_signed a b
  | Dshl -> Bits.dshl_keep a b
  | Dshr -> Bits.dshr a b
  | Dshr_signed -> Bits.dshr_signed a b

let rec eval env e =
  match e.desc with
  | Const b -> b
  | Var id ->
    let v = env id in
    assert (Bits.width v = e.width);
    v
  | Unop (op, a) -> eval_unop op (eval env a)
  | Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Mux (sel, a, b) -> if Bits.is_zero (eval env sel) then eval env b else eval env a

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let rec iter_vars f e =
  match e.desc with
  | Const _ -> ()
  | Var v -> f v
  | Unop (_, a) -> iter_vars f a
  | Binop (_, a, b) -> iter_vars f a; iter_vars f b
  | Mux (s, a, b) -> iter_vars f s; iter_vars f a; iter_vars f b

let vars e =
  let acc = ref [] in
  iter_vars (fun v -> if not (List.mem v !acc) then acc := v :: !acc) e;
  List.sort compare !acc

let rec map_vars f e =
  match e.desc with
  | Const _ -> e
  | Var v ->
    let e' = f ~width:e.width v in
    if e'.width <> e.width then
      invalid_arg
        (Printf.sprintf "Expr.map_vars: replacement width %d <> %d" e'.width e.width);
    e'
  | Unop (op, a) ->
    let a' = map_vars f a in
    if a' == a then e else unop op a'
  | Binop (op, a, b) ->
    let a' = map_vars f a and b' = map_vars f b in
    if a' == a && b' == b then e else binop op a' b'
  | Mux (s, a, b) ->
    let s' = map_vars f s and a' = map_vars f a and b' = map_vars f b in
    if s' == s && a' == a && b' == b then e else mux s' a' b'

let rec size e =
  match e.desc with
  | Const _ | Var _ -> 0
  | Unop (_, a) -> 1 + size a
  | Binop (_, a, b) -> 1 + size a + size b
  | Mux (s, a, b) -> 1 + size s + size a + size b

(* Cost in abstract operator units.  A native-word operation costs 1; an
   operation on values wider than a machine word costs one unit per limb;
   division costs a full long-division loop. *)
let op_cost ~width base =
  let words = max 1 ((width + 61) / 62) in
  base * words

let rec cost e =
  match e.desc with
  | Const _ | Var _ -> 0
  | Unop (op, a) ->
    let base = match op with Reduce_and | Reduce_or | Reduce_xor -> 1 | _ -> 1 in
    op_cost ~width:(max e.width a.width) base + cost a
  | Binop (op, a, b) ->
    let base =
      match op with
      | Div | Div_signed | Rem | Rem_signed -> 16
      | Mul -> 3
      | _ -> 1
    in
    op_cost ~width:(max e.width (max a.width b.width)) base + cost a + cost b
  | Mux (s, a, b) -> 1 + cost s + cost a + cost b

let rec depends_on e v =
  match e.desc with
  | Const _ -> false
  | Var v' -> v = v'
  | Unop (_, a) -> depends_on a v
  | Binop (_, a, b) -> depends_on a v || depends_on b v
  | Mux (s, a, b) -> depends_on s v || depends_on a v || depends_on b v

let rec equal a b =
  a.width = b.width
  &&
  match (a.desc, b.desc) with
  | Const x, Const y -> Bits.equal x y
  | Var x, Var y -> x = y
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && equal x y
  | Binop (o1, x1, y1), Binop (o2, x2, y2) -> o1 = o2 && equal x1 x2 && equal y1 y2
  | Mux (s1, x1, y1), Mux (s2, x2, y2) -> equal s1 s2 && equal x1 x2 && equal y1 y2
  | (Const _ | Var _ | Unop _ | Binop _ | Mux _), _ -> false

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_unop fmt op =
  match op with
  | Not -> Format.pp_print_string fmt "not"
  | Neg -> Format.pp_print_string fmt "neg"
  | Reduce_and -> Format.pp_print_string fmt "andr"
  | Reduce_or -> Format.pp_print_string fmt "orr"
  | Reduce_xor -> Format.pp_print_string fmt "xorr"
  | Shl_const n -> Format.fprintf fmt "shl[%d]" n
  | Shr_const n -> Format.fprintf fmt "shr[%d]" n
  | Extract (hi, lo) -> Format.fprintf fmt "bits[%d:%d]" hi lo
  | Pad_unsigned n -> Format.fprintf fmt "pad[%d]" n
  | Pad_signed n -> Format.fprintf fmt "pads[%d]" n

let pp_binop fmt op =
  let s =
    match op with
    | Add -> "add" | Sub -> "sub" | Mul -> "mul"
    | Div -> "div" | Div_signed -> "divs"
    | Rem -> "rem" | Rem_signed -> "rems"
    | And -> "and" | Or -> "or" | Xor -> "xor"
    | Cat -> "cat"
    | Eq -> "eq" | Neq -> "neq"
    | Lt -> "lt" | Leq -> "leq" | Gt -> "gt" | Geq -> "geq"
    | Lt_signed -> "lts" | Leq_signed -> "leqs"
    | Gt_signed -> "gts" | Geq_signed -> "geqs"
    | Dshl -> "dshl" | Dshr -> "dshr" | Dshr_signed -> "dshrs"
  in
  Format.pp_print_string fmt s

let rec pp fmt e =
  match e.desc with
  | Const b -> Bits.pp fmt b
  | Var v -> Format.fprintf fmt "n%d" v
  | Unop (op, a) -> Format.fprintf fmt "@[<hov 1>%a(%a)@]" pp_unop op pp a
  | Binop (op, a, b) -> Format.fprintf fmt "@[<hov 1>%a(%a,@ %a)@]" pp_binop op pp a pp b
  | Mux (s, a, b) -> Format.fprintf fmt "@[<hov 1>mux(%a,@ %a,@ %a)@]" pp s pp a pp b
