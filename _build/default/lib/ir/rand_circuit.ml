module Bits = Gsim_bits.Bits

type config = {
  logic_nodes : int;
  num_inputs : int;
  num_registers : int;
  max_width : int;
  with_memory : bool;
  with_reset : bool;
  max_depth : int;
}

let default_config =
  {
    logic_nodes = 40;
    num_inputs = 4;
    num_registers = 6;
    max_width = 70;
    with_memory = true;
    with_reset = true;
    max_depth = 3;
  }

let pick st arr = arr.(Random.State.int st (Array.length arr))

(* A random expression of exactly [width] bits over the node pool. *)
let rec rand_expr st cfg pool ~width ~depth =
  let leaf () =
    if Random.State.int st 4 = 0 || Array.length pool = 0 then
      Expr.const (Bits.random st ~width)
    else begin
      let id, w = pick st pool in
      let v = Expr.var ~width:w id in
      if w = width then v
      else if Random.State.bool st then Expr.unop (Expr.Pad_unsigned width) v
      else Expr.unop (Expr.Pad_signed width) v
    end
  in
  if depth <= 0 then leaf ()
  else begin
    let sub ~width = rand_expr st cfg pool ~width ~depth:(depth - 1) in
    let fit e =
      if Expr.width e = width then e
      else if Expr.width e > width then Expr.unop (Expr.Extract (width - 1, 0)) e
      else Expr.unop (Expr.Pad_unsigned width) e
    in
    let rand_w () = 1 + Random.State.int st cfg.max_width in
    match Random.State.int st 12 with
    | 0 -> leaf ()
    | 1 ->
      let op = pick st [| Expr.Not |] in
      fit (Expr.unop op (sub ~width))
    | 2 ->
      let w = rand_w () in
      let op = pick st [| Expr.Reduce_and; Expr.Reduce_or; Expr.Reduce_xor |] in
      fit (Expr.unop op (sub ~width:w))
    | 3 ->
      let w = rand_w () in
      let hi = Random.State.int st w and lo = Random.State.int st w in
      let hi, lo = (max hi lo, min hi lo) in
      fit (Expr.unop (Expr.Extract (hi, lo)) (sub ~width:w))
    | 4 ->
      let w = rand_w () in
      let op =
        pick st [| Expr.Add; Expr.Sub; Expr.And; Expr.Or; Expr.Xor; Expr.Cat |]
      in
      fit (Expr.binop op (sub ~width:w) (sub ~width:(rand_w ())))
    | 5 ->
      let w = min 16 (rand_w ()) in
      fit (Expr.binop Expr.Mul (sub ~width:w) (sub ~width:(min 16 (rand_w ()))))
    | 6 ->
      let w = rand_w () in
      let op = pick st [| Expr.Div; Expr.Rem; Expr.Div_signed; Expr.Rem_signed |] in
      fit (Expr.binop op (sub ~width:w) (sub ~width:(rand_w ())))
    | 7 ->
      let w = rand_w () in
      let op =
        pick st
          [|
            Expr.Eq; Expr.Neq; Expr.Lt; Expr.Leq; Expr.Gt; Expr.Geq;
            Expr.Lt_signed; Expr.Leq_signed; Expr.Gt_signed; Expr.Geq_signed;
          |]
      in
      fit (Expr.binop op (sub ~width:w) (sub ~width:(rand_w ())))
    | 8 ->
      let w = rand_w () in
      let op = pick st [| Expr.Dshl; Expr.Dshr; Expr.Dshr_signed |] in
      fit (Expr.binop op (sub ~width:w) (sub ~width:(1 + Random.State.int st 6)))
    | 9 ->
      let w = rand_w () in
      let n = Random.State.int st 8 in
      let op = if Random.State.bool st then Expr.Shl_const n else Expr.Shr_const n in
      fit (Expr.unop op (sub ~width:w))
    | 10 ->
      let w = rand_w () in
      fit (Expr.unop Expr.Neg (sub ~width:w))
    | _ -> Expr.mux (sub ~width:1) (sub ~width) (sub ~width)
  end

let generate st cfg =
  let c = Circuit.create ~name:"random" () in
  let pool = ref [] in
  let add_pool (n : Circuit.node) = pool := (n.id, n.width) :: !pool in
  let reset_input =
    if cfg.with_reset then begin
      let n = Circuit.add_input c ~name:"reset" ~width:1 in
      Some n.id
    end
    else None
  in
  for i = 0 to cfg.num_inputs - 1 do
    let width = 1 + Random.State.int st cfg.max_width in
    add_pool (Circuit.add_input c ~name:(Printf.sprintf "in%d" i) ~width)
  done;
  let regs =
    List.init cfg.num_registers (fun i ->
        let width = 1 + Random.State.int st cfg.max_width in
        let init = Bits.random st ~width in
        let reset =
          match reset_input with
          | Some rid when Random.State.bool st -> Some (rid, Bits.random st ~width)
          | Some _ | None -> None
        in
        let r =
          Circuit.add_register c ~name:(Printf.sprintf "r%d" i) ~width ~init ?reset ()
        in
        add_pool (Circuit.node c r.Circuit.read);
        r)
  in
  for i = 0 to cfg.logic_nodes - 1 do
    let width = 1 + Random.State.int st cfg.max_width in
    let depth = 1 + Random.State.int st cfg.max_depth in
    let e = rand_expr st cfg (Array.of_list !pool) ~width ~depth in
    add_pool (Circuit.add_logic c ~name:(Printf.sprintf "w%d" i) e)
  done;
  (* Optional memory exercising read and write ports. *)
  if cfg.with_memory then begin
    let depth = 16 in
    let width = 1 + Random.State.int st (min 62 cfg.max_width) in
    let mem = Circuit.add_memory c ~name:"m" ~width ~depth in
    let node_of_width target =
      let candidates = List.filter (fun (_, w) -> w = target) !pool in
      match candidates with
      | (id, _) :: _ -> id
      | [] ->
        let e =
          rand_expr st cfg (Array.of_list !pool) ~width:target ~depth:1
        in
        let n = Circuit.add_logic c ~name:(Circuit.fresh_name c "madj") e in
        add_pool n;
        n.id
    in
    let raddr = node_of_width 4 and waddr = node_of_width 4 in
    let wdata = node_of_width width and wen = node_of_width 1 in
    let rdata = Circuit.add_read_port c ~mem ~name:"m_r" ~addr:raddr () in
    add_pool rdata;
    Circuit.add_write_port c ~mem ~addr:waddr ~data:wdata ~en:wen
  end;
  (* Hook register next-values to random expressions. *)
  List.iter
    (fun (r : Circuit.register) ->
      let width = (Circuit.node c r.read).Circuit.width in
      let e = rand_expr st cfg (Array.of_list !pool) ~width ~depth:cfg.max_depth in
      Circuit.set_next c r e)
    regs;
  (* Mark several observables: a handful of logic nodes plus all register
     reads, so the trace comparison sees real state. *)
  let pool_arr = Array.of_list !pool in
  for _ = 1 to max 3 (Array.length pool_arr / 8) do
    let id, _ = pick st pool_arr in
    Circuit.mark_output c id
  done;
  List.iter (fun (r : Circuit.register) -> Circuit.mark_output c r.Circuit.read) regs;
  Circuit.validate c;
  c

let random_stimulus st c ~cycles =
  let ins = Circuit.inputs c in
  Array.init cycles (fun _ ->
      List.filter_map
        (fun (n : Circuit.node) ->
          if Random.State.int st 3 = 0 then None
          else begin
            (* Bias the reset input low so reset does not dominate. *)
            let v =
              if n.name = "reset" then
                Bits.of_int ~width:1 (if Random.State.int st 10 = 0 then 1 else 0)
              else Bits.random st ~width:n.width
            in
            Some (n.id, v)
          end)
        ins)
