(** Simulation checkpoints.

    Captures architectural state — inputs, registers, memory contents —
    from any simulator and restores it into any other, the
    SimPoint-checkpoint workflow the paper uses for its SPEC evaluation
    (run a fast simulator to the region of interest, snapshot, and resume
    anywhere).  Checkpoints can also be saved to and loaded from a simple
    self-describing text format.

    Restoring leaves combinational values stale by design; the wrapped
    engines re-derive them on the next [step] (activity engines are fully
    invalidated).  Both circuits must be the same elaboration (node ids
    are matched by register/input name, so differently-optimized variants
    of one design interoperate as long as the state-holding nodes
    survived). *)


type t

val capture : Sim.t -> t

val restore : Sim.t -> t -> unit
(** Raises [Failure] when a register or memory recorded in the checkpoint
    has no same-named counterpart in the target. *)

val to_string : t -> string

val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val save : string -> t -> unit

val load : string -> t

val cycle : t -> int
(** Cycle count recorded at capture time. *)

val equal : t -> t -> bool
(** Same architectural state (used by the determinism tests). *)
