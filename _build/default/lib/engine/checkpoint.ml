module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  ck_cycle : int;
  inputs : (string * Bits.t) list;
  registers : (string * Bits.t) list;
  memories : (string * Bits.t array) list;
}

let cycle t = t.ck_cycle

let capture (sim : Sim.t) =
  let c = sim.Sim.circuit in
  let inputs =
    List.map
      (fun (n : Circuit.node) -> (n.Circuit.name, sim.Sim.peek n.Circuit.id))
      (Circuit.inputs c)
  in
  let registers =
    List.map
      (fun (r : Circuit.register) -> (r.Circuit.reg_name, sim.Sim.peek r.Circuit.read))
      (Circuit.registers c)
  in
  let memories =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           (m.Circuit.mem_name, Array.init m.Circuit.depth (sim.Sim.read_mem mi)))
  in
  {
    ck_cycle = (sim.Sim.counters ()).Counters.cycles;
    inputs;
    registers;
    memories;
  }

let restore (sim : Sim.t) t =
  let c = sim.Sim.circuit in
  List.iter
    (fun (name, v) ->
      match Circuit.find_node c name with
      | Some n -> sim.Sim.poke n.Circuit.id v
      | None -> failwith (Printf.sprintf "Checkpoint.restore: no input %S" name))
    t.inputs;
  let reg_by_name = Hashtbl.create 64 in
  List.iter
    (fun (r : Circuit.register) -> Hashtbl.replace reg_by_name r.Circuit.reg_name r)
    (Circuit.registers c);
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt reg_by_name name with
      | Some r -> sim.Sim.write_reg r.Circuit.read v
      | None -> failwith (Printf.sprintf "Checkpoint.restore: no register %S" name))
    t.registers;
  let mems = Circuit.memories c in
  List.iter
    (fun (name, contents) ->
      let found = ref false in
      Array.iteri
        (fun mi (m : Circuit.memory) ->
          if m.Circuit.mem_name = name then begin
            found := true;
            sim.Sim.load_mem mi contents
          end)
        mems;
      if not !found then failwith (Printf.sprintf "Checkpoint.restore: no memory %S" name))
    t.memories;
  sim.Sim.invalidate ()

(* --- Text format -------------------------------------------------------
   ckpt 1
   cycle <n>
   input <name> <width>'h<hex>
   reg <name> <width>'h<hex>
   mem <name> <depth> <width>
   <hex> <hex> ...                (depth words, 16 per line)               *)

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "ckpt 1\n";
  Buffer.add_string buf (Printf.sprintf "cycle %d\n" t.ck_cycle);
  let value v = Format.asprintf "%a" Bits.pp v in
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "input %s %s\n" n (value v)))
    t.inputs;
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "reg %s %s\n" n (value v)))
    t.registers;
  List.iter
    (fun (n, contents) ->
      let width = if Array.length contents = 0 then 1 else Bits.width contents.(0) in
      Buffer.add_string buf
        (Printf.sprintf "mem %s %d %d\n" n (Array.length contents) width);
      Array.iteri
        (fun i v ->
          Buffer.add_string buf (Bits.to_hex_string v);
          Buffer.add_char buf (if (i + 1) mod 16 = 0 then '\n' else ' '))
        contents;
      if Array.length contents mod 16 <> 0 then Buffer.add_char buf '\n')
    t.memories;
  Buffer.contents buf

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | header :: rest when String.trim header = "ckpt 1" ->
    let cycle = ref 0 in
    let inputs = ref [] and registers = ref [] and memories = ref [] in
    let rec go = function
      | [] -> ()
      | line :: rest -> (
          match String.split_on_char ' ' (String.trim line) with
          | [ "cycle"; n ] ->
            cycle := int_of_string n;
            go rest
          | [ "input"; name; v ] ->
            inputs := (name, Bits.of_string v) :: !inputs;
            go rest
          | [ "reg"; name; v ] ->
            registers := (name, Bits.of_string v) :: !registers;
            go rest
          | [ "mem"; name; depth; width ] ->
            let depth = int_of_string depth and width = int_of_string width in
            let words = Array.make depth (Bits.zero width) in
            let filled = ref 0 in
            let rec take = function
              | rest when !filled >= depth -> rest
              | [] -> fail "checkpoint: memory %s truncated" name
              | line :: rest ->
                List.iter
                  (fun tok ->
                    if tok <> "" then begin
                      if !filled >= depth then fail "checkpoint: memory %s overflows" name;
                      words.(!filled) <- Bits.of_string (Printf.sprintf "%d'h%s" width tok);
                      incr filled
                    end)
                  (String.split_on_char ' ' (String.trim line));
                take rest
            in
            let rest = take rest in
            memories := (name, words) :: !memories;
            go rest
          | _ -> fail "checkpoint: bad line %S" line)
    in
    go rest;
    {
      ck_cycle = !cycle;
      inputs = List.rev !inputs;
      registers = List.rev !registers;
      memories = List.rev !memories;
    }
  | _ -> fail "checkpoint: missing header"

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s

let equal a b =
  a.inputs = b.inputs && a.registers = b.registers
  && List.length a.memories = List.length b.memories
  && List.for_all2
       (fun (n1, c1) (n2, c2) -> n1 = n2 && Array.for_all2 Bits.equal c1 c2)
       a.memories b.memories
