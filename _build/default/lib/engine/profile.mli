(** Activity profiling.

    Turns an activity engine's per-supernode evaluation counts into a
    hot-spot report: which parts of the design burn the simulation time,
    named by their member nodes — the "where does my activity factor come
    from" question.  One of the debugging affordances software simulation
    is used for. *)

open Gsim_ir

type entry = {
  supernode : int;
  hits : int;              (** evaluations of this supernode *)
  share : float;           (** fraction of all evaluation work *)
  size : int;              (** member count *)
  representative : string; (** name of the first member node *)
}

type report = {
  cycles : int;
  total_evals : int;
  entries : entry list;    (** hottest first *)
  idle_supernodes : int;   (** never evaluated after warmup *)
}

val analyze : ?top:int -> Circuit.t -> Gsim_partition.Partition.t -> Activity.t -> report

val pp : Format.formatter -> report -> unit
