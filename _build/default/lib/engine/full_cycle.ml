module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  rt : Runtime.t;
  evals : (unit -> bool) array;
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
  resets : ((unit -> bool) * (unit -> bool) array) array;
      (** (signal test, per-register appliers), grouped by reset signal *)
  counters : Counters.t;
}

(* Group slow-path resets by their signal so a design with one reset net
   performs one check per cycle regardless of register count. *)
let reset_groups c rt =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (r : Circuit.register) ->
      match r.reset with
      | Some rst when rst.Circuit.slow_path ->
        let sig_id = rst.Circuit.reset_signal in
        let existing = try Hashtbl.find groups sig_id with Not_found -> [] in
        Hashtbl.replace groups sig_id (Runtime.reset_applier rt r :: existing)
      | Some _ | None -> ())
    (Circuit.registers c);
  Hashtbl.fold
    (fun sig_id appliers acc ->
      (Runtime.signal_is_set rt sig_id, Array.of_list appliers) :: acc)
    groups []
  |> Array.of_list

let create c =
  let rt = Runtime.create c in
  let order = Circuit.eval_order c in
  let evals = Array.map (fun id -> Runtime.node_evaluator rt (Circuit.node c id)) order in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let reg_copies =
    Circuit.registers c |> List.map (Runtime.reg_copier rt) |> Array.of_list
  in
  { rt; evals; write_commits; reg_copies; resets = reset_groups c rt; counters = Counters.create () }

let poke t id v = ignore (Runtime.poke t.rt id v)

let peek t id = Runtime.peek t.rt id

let step t =
  let ctr = t.counters in
  let evals = t.evals in
  for i = 0 to Array.length evals - 1 do
    if evals.(i) () then ctr.Counters.changed <- ctr.Counters.changed + 1
  done;
  ctr.Counters.evals <- ctr.Counters.evals + Array.length evals;
  (* Memory writes first: they read register outputs of this cycle. *)
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1

let load_mem t mi contents = Runtime.load_mem t.rt mi contents

let counters t = t.counters

let runtime t = t.rt

let sim t =
  {
    Sim.sim_name = "full-cycle";
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
