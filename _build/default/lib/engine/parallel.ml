module Bits = Gsim_bits.Bits
open Gsim_ir

(* Sense-reversing centralized barrier.  Latecomers spin briefly and then
   block on a condition variable: pure spinning is catastrophic when the
   host has fewer cores than domains (each wait would burn a scheduling
   quantum). *)
module Barrier = struct
  type t = {
    count : int Atomic.t;
    sense : bool Atomic.t;
    total : int;
    lock : Mutex.t;
    cond : Condition.t;
  }

  let create total =
    {
      count = Atomic.make 0;
      sense = Atomic.make false;
      total;
      lock = Mutex.create ();
      cond = Condition.create ();
    }

  let spin_limit = 2000

  (* Each participant keeps its own sense flag, flipped per phase. *)
  let wait b local_sense =
    if Atomic.fetch_and_add b.count 1 = b.total - 1 then begin
      Atomic.set b.count 0;
      Mutex.lock b.lock;
      Atomic.set b.sense local_sense;
      Condition.broadcast b.cond;
      Mutex.unlock b.lock
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.sense <> local_sense && !spins < spin_limit do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.sense <> local_sense then begin
        Mutex.lock b.lock;
        while Atomic.get b.sense <> local_sense do
          Condition.wait b.cond b.lock
        done;
        Mutex.unlock b.lock
      end
    end
end

type t = {
  rt : Runtime.t;
  threads : int;
  (* slices.(level).(worker) = evaluator array *)
  slices : (unit -> bool) array array array;
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
  resets : ((unit -> bool) * (unit -> bool) array) array;
  counters : Counters.t;
  total_evals : int;
  barrier : Barrier.t;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable destroyed : bool;
  mutable coord_sense : bool;
}

(* Combinational level of each evaluated node: 1 + max level of evaluated
   dependencies. *)
let levels_of c =
  let order = Circuit.eval_order c in
  let level = Array.make (Circuit.max_id c) (-1) in
  Array.iter
    (fun id ->
      let deps = Circuit.dependencies c id in
      let l =
        List.fold_left (fun acc d -> max acc (if level.(d) >= 0 then level.(d) else -1)) (-1) deps
      in
      level.(id) <- l + 1)
    order;
  let nlevels = Array.fold_left (fun acc l -> max acc (l + 1)) 0 level in
  let buckets = Array.make (max nlevels 1) [] in
  (* Reverse iteration keeps each bucket in topological order. *)
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    buckets.(level.(id)) <- id :: buckets.(level.(id))
  done;
  buckets

let split_slice arr threads w =
  let n = Array.length arr in
  let base = n / threads and extra = n mod threads in
  let start = (w * base) + min w extra in
  let len = base + if w < extra then 1 else 0 in
  Array.sub arr start len

let create ~threads c =
  if threads < 1 then invalid_arg "Parallel.create: threads >= 1";
  let rt = Runtime.create c in
  let buckets = levels_of c in
  let total_evals = Array.fold_left (fun acc b -> acc + List.length b) 0 buckets in
  let slices =
    Array.map
      (fun bucket ->
        let evals =
          Array.of_list
            (List.map (fun id -> Runtime.node_evaluator rt (Circuit.node c id)) bucket)
        in
        Array.init threads (fun w -> split_slice evals threads w))
      buckets
  in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let reg_copies =
    Circuit.registers c |> List.map (Runtime.reg_copier rt) |> Array.of_list
  in
  let resets =
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (r : Circuit.register) ->
        match r.reset with
        | Some rst when rst.Circuit.slow_path ->
          let s = rst.Circuit.reset_signal in
          Hashtbl.replace groups s
            (Runtime.reset_applier rt r :: (try Hashtbl.find groups s with Not_found -> []))
        | Some _ | None -> ())
      (Circuit.registers c);
    Hashtbl.fold
      (fun s appliers acc -> (Runtime.signal_is_set rt s, Array.of_list appliers) :: acc)
      groups []
    |> Array.of_list
  in
  let t =
    {
      rt;
      threads;
      slices;
      write_commits;
      reg_copies;
      resets;
      counters = Counters.create ();
      total_evals;
      barrier = Barrier.create threads;
      stop = Atomic.make false;
      workers = [];
      destroyed = false;
      coord_sense = true;
    }
  in
  if threads > 1 then begin
    let worker w () =
      let sense = ref true in
      let next_sense () =
        let s = !sense in
        sense := not s;
        Barrier.wait t.barrier s
      in
      let running = ref true in
      while !running do
        next_sense ();
        (* cycle start *)
        if Atomic.get t.stop then running := false
        else begin
          Array.iter
            (fun level ->
              let slice = level.(w) in
              for i = 0 to Array.length slice - 1 do
                ignore (slice.(i) ())
              done;
              next_sense ())
            t.slices;
          next_sense () (* wait for the coordinator's commit *)
        end
      done
    in
    t.workers <- List.init (threads - 1) (fun i -> Domain.spawn (worker (i + 1)))
  end;
  t

(* The coordinator participates as worker 0 and performs the sequential
   commit between the last barrier of the sweep and the cycle-start
   barrier of the next cycle. *)
let coordinator_wait t =
  let s = t.coord_sense in
  t.coord_sense <- not s;
  Barrier.wait t.barrier s

let step t =
  let ctr = t.counters in
  if t.threads = 1 then
    Array.iter
      (fun level ->
        let slice = level.(0) in
        for i = 0 to Array.length slice - 1 do
          if slice.(i) () then ctr.Counters.changed <- ctr.Counters.changed + 1
        done)
      t.slices
  else begin
    let next_sense () = coordinator_wait t in
    next_sense ();
    (* release workers into the cycle *)
    Array.iter
      (fun level ->
        let slice = level.(0) in
        for i = 0 to Array.length slice - 1 do
          ignore (slice.(i) ())
        done;
        next_sense ())
      t.slices
  end;
  ctr.Counters.evals <- ctr.Counters.evals + t.total_evals;
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1;
  if t.threads > 1 then
    (* Let workers loop back to the cycle-start barrier. *)
    coordinator_wait t

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    if t.threads > 1 then begin
      Atomic.set t.stop true;
      coordinator_wait t;
      List.iter Domain.join t.workers;
      t.workers <- []
    end
  end

let poke t id v = ignore (Runtime.poke t.rt id v)
let peek t id = Runtime.peek t.rt id
let load_mem t mi contents = Runtime.load_mem t.rt mi contents
let counters t = t.counters
let level_count t = Array.length t.slices

let sim t =
  {
    Sim.sim_name = Printf.sprintf "full-cycle-%dT" t.threads;
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
