module Bits = Gsim_bits.Bits
open Gsim_ir

type signal = {
  node : int;
  ident : string;       (* VCD short identifier *)
  width : int;
  mutable last : Bits.t option;
}

type t = {
  out : string -> unit;
  sim : Sim.t;
  signals : signal array;
  mutable time : int;
  mutable header_done : bool;
}

(* VCD identifiers: printable ASCII 33..126, shortest-first. *)
let ident_of_index i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let default_observed c =
  Circuit.fold_nodes c ~init:[] ~f:(fun acc n ->
      match n.Circuit.kind with
      | Circuit.Input | Circuit.Reg_read _ -> n.Circuit.id :: acc
      | Circuit.Logic | Circuit.Reg_next _ | Circuit.Mem_read _ ->
        if n.Circuit.is_output then n.Circuit.id :: acc else acc)
  |> List.rev

(* Scope tree from dotted names. *)
type scope = { mutable children : (string * scope) list; mutable wires : (string * signal) list }

let new_scope () = { children = []; wires = [] }

let rec insert scope path signal =
  match path with
  | [] -> assert false
  | [ leaf ] -> scope.wires <- (leaf, signal) :: scope.wires
  | hd :: rest ->
    let child =
      match List.assoc_opt hd scope.children with
      | Some s -> s
      | None ->
        let s = new_scope () in
        scope.children <- (hd, s) :: scope.children;
        s
    in
    insert child rest signal

let write_header t ~date circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "$date\n  %s\n$end\n" date);
  Buffer.add_string buf "$version\n  gsim VCD dumper\n$end\n$timescale\n  1ns\n$end\n";
  let root = new_scope () in
  Array.iter
    (fun s ->
      let name = (Circuit.node circuit s.node).Circuit.name in
      let path = String.split_on_char '.' name in
      let path = List.concat_map (String.split_on_char '$') path in
      let path = List.filter (fun p -> p <> "") path in
      let path = if path = [] then [ Printf.sprintf "n%d" s.node ] else path in
      insert root path s)
    t.signals;
  let rec emit_scope name scope =
    if name <> "" then Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" name);
    List.iter
      (fun (wname, s) ->
        Buffer.add_string buf
          (Printf.sprintf "$var wire %d %s %s $end\n" s.width s.ident wname))
      (List.rev scope.wires);
    List.iter (fun (cname, child) -> emit_scope cname child) (List.rev scope.children);
    if name <> "" then Buffer.add_string buf "$upscope $end\n"
  in
  emit_scope "" root;
  Buffer.add_string buf "$enddefinitions $end\n";
  t.out (Buffer.contents buf)

let value_text s v =
  if s.width = 1 then (if Bits.is_zero v then "0" ^ s.ident else "1" ^ s.ident)
  else Printf.sprintf "b%s %s" (Bits.to_binary_string v) s.ident

let sample t =
  let buf = Buffer.create 256 in
  let changed = ref false in
  Array.iter
    (fun s ->
      let v = t.sim.Sim.peek s.node in
      let dump =
        match s.last with None -> true | Some prev -> not (Bits.equal prev v)
      in
      if dump then begin
        s.last <- Some v;
        changed := true;
        Buffer.add_string buf (value_text s v);
        Buffer.add_char buf '\n'
      end)
    t.signals;
  if !changed then begin
    t.out (Printf.sprintf "#%d\n" t.time);
    t.out (Buffer.contents buf)
  end

let flush t = sample t

let create ~out ?(date = "reproducible-build") ?observe sim =
  let circuit = sim.Sim.circuit in
  let observe = match observe with Some o -> o | None -> default_observed circuit in
  let signals =
    Array.of_list
      (List.mapi
         (fun i node ->
           {
             node;
             ident = ident_of_index i;
             width = (Circuit.node circuit node).Circuit.width;
             last = None;
           })
         observe)
  in
  let t = { out; sim; signals; time = 0; header_done = false } in
  write_header t ~date circuit;
  t.header_done <- true;
  (* Initial values at time 0. *)
  sample t;
  let wrapped =
    {
      sim with
      Sim.sim_name = sim.Sim.sim_name ^ "+vcd";
      step =
        (fun () ->
          sim.Sim.step ();
          t.time <- t.time + 1;
          sample t);
    }
  in
  (t, wrapped)

let to_file path ?observe sim =
  let oc = open_out path in
  let _, wrapped = create ~out:(output_string oc) ?observe sim in
  (wrapped, fun () -> close_out oc)
