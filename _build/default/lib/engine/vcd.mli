(** VCD (Value Change Dump) waveform output.

    Wraps any {!Sim.t} so that each [step] records the value changes of a
    chosen set of nodes in IEEE 1364 VCD format — the format every
    waveform viewer reads.  Signals are grouped into scopes by their
    hierarchical names (["core.alu.out"] becomes scope [core.alu], wire
    [out]).

    Only the observed nodes are sampled, and only changes are written, so
    tracing cost follows the activity factor like the simulation itself. *)

open Gsim_ir

type t

val create :
  out:(string -> unit) -> ?date:string -> ?observe:int list -> Sim.t -> t * Sim.t
(** [create ~out sim] returns the recorder and a wrapped simulator whose
    [step] additionally samples and dumps changes.  [observe] defaults to
    every named node of the circuit that is an input, output or register
    read.  [out] receives chunks of VCD text (e.g. [Buffer.add_string] or
    [output_string oc]).  [date] defaults to a fixed string so output is
    reproducible. *)

val flush : t -> unit
(** Write any buffered changes for the current time step. *)

val to_file : string -> ?observe:int list -> Sim.t -> Sim.t * (unit -> unit)
(** Convenience: dump to a file; returns the wrapped simulator and a
    close function. *)

val default_observed : Circuit.t -> int list
