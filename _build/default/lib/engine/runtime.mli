(** Shared engine runtime: value arenas and closure compilation.

    The "compiled simulation" backend.  Signals of width <= 62 bits live in
    a flat int arena and are evaluated by specialized native-int closures;
    wider signals live in a boxed {!Gsim_bits.Bits} arena.  Each node's
    expression is compiled once into a closure that evaluates it, stores
    the result and reports whether the value changed — the unit of work the
    engines schedule. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : Circuit.t -> t

val circuit : t -> Circuit.t

(** {1 Values} *)

val poke : t -> int -> Bits.t -> bool
(** Set an input; returns [true] when the stored value changed. *)

val peek : t -> int -> Bits.t

val load_mem : t -> int -> Bits.t array -> unit

val read_mem : t -> int -> int -> Bits.t

val poke_register : t -> int -> Bits.t -> unit
(** Overwrite a register's current value (by read-node id); checkpoint
    restore. *)

val data_size_bytes : t -> int
(** Bytes of mutable simulation state excluding memory contents (the
    paper's Table IV "data size" convention, which also excludes the main
    memory array). *)

val mem_size_bytes : t -> int

(** {1 Compiled evaluation} *)

val node_evaluator : t -> Circuit.node -> (unit -> bool)
(** Evaluate the node's expression (or memory read), store the value,
    report change.  Only for expression-carrying and [Mem_read] nodes. *)

val reg_copier : t -> Circuit.register -> (unit -> bool)
(** Latch: read-slot := next-slot; reports change. *)

val reset_applier : t -> Circuit.register -> (unit -> bool)
(** Slow-path reset: read-slot := reset value; reports change. *)

val signal_is_set : t -> int -> (unit -> bool)
(** Nonzero test of a node's current value (used for reset signals). *)

val write_committer : t -> int -> Circuit.write_port -> (unit -> bool)
(** [write_committer t mem port] commits the port if enabled; reports
    whether the memory contents changed. *)
