(** Replication-aided parallel simulation (RepCut's approach, the paper's
    "future work" direction).

    The circuit's sinks — register next-values, memory-port operands,
    outputs — are split into [threads] balanced groups; each worker domain
    evaluates the full combinational fan-in cone of its group every cycle,
    *replicating* nodes shared between cones instead of synchronizing on
    them.  One barrier ends evaluation (replicated writes store identical
    values, so the shared arena stays consistent), then the coordinator
    commits registers and memories sequentially.

    The cost of removing mid-cycle synchronization is redundant work,
    quantified by {!replication_factor} (RepCut reports the same metric).
    Workers block between cycles, so correctness holds on any host; actual
    speedups need as many cores as domains. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : threads:int -> Circuit.t -> t

val replication_factor : t -> float
(** (sum of per-thread cone sizes) / (evaluated nodes); 1.0 means no
    overlap. *)

val cone_sizes : t -> int array

val poke : t -> int -> Bits.t -> unit
val peek : t -> int -> Bits.t
val step : t -> unit
val load_mem : t -> int -> Bits.t array -> unit
val counters : t -> Counters.t
val destroy : t -> unit

val sim : t -> Sim.t
