lib/engine/runtime.mli: Circuit Gsim_bits Gsim_ir
