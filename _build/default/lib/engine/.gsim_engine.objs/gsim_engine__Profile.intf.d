lib/engine/profile.mli: Activity Circuit Format Gsim_ir Gsim_partition
