lib/engine/activity.mli: Circuit Counters Gsim_bits Gsim_ir Gsim_partition Partition Runtime Sim
