lib/engine/full_cycle.mli: Circuit Counters Gsim_bits Gsim_ir Runtime Sim
