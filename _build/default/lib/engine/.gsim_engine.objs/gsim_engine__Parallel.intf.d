lib/engine/parallel.mli: Circuit Counters Gsim_bits Gsim_ir Sim
