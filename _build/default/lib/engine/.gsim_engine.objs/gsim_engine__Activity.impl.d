lib/engine/activity.ml: Array Bool Circuit Counters Gsim_bits Gsim_ir Gsim_partition Hashtbl List Partition Runtime Sim
