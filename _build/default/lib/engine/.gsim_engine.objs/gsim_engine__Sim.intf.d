lib/engine/sim.mli: Circuit Counters Gsim_bits Gsim_ir Reference
