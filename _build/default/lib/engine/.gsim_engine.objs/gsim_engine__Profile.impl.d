lib/engine/profile.ml: Activity Array Circuit Counters Format Gsim_ir Gsim_partition List Partition
