lib/engine/repcut.mli: Circuit Counters Gsim_bits Gsim_ir Sim
