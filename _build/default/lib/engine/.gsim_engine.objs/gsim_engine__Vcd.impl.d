lib/engine/vcd.ml: Array Buffer Char Circuit Gsim_bits Gsim_ir List Printf Sim String
