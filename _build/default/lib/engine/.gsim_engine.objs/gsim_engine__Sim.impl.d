lib/engine/sim.ml: Array Circuit Counters Gsim_bits Gsim_ir List Reference
