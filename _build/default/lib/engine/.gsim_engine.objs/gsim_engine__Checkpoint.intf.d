lib/engine/checkpoint.mli: Sim
