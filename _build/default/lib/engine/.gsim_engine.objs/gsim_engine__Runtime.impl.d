lib/engine/runtime.ml: Array Circuit Expr Gsim_bits Gsim_ir List Printf
