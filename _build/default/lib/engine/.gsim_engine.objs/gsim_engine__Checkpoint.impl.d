lib/engine/checkpoint.ml: Array Buffer Circuit Counters Format Gsim_bits Gsim_ir Hashtbl List Printf Sim String
