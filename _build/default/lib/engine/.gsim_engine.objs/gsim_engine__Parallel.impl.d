lib/engine/parallel.ml: Array Atomic Circuit Condition Counters Domain Gsim_bits Gsim_ir Hashtbl List Mutex Printf Runtime Sim
