lib/engine/full_cycle.ml: Array Circuit Counters Gsim_bits Gsim_ir Hashtbl List Runtime Sim
