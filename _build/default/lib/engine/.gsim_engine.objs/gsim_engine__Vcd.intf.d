lib/engine/vcd.mli: Circuit Gsim_ir Sim
