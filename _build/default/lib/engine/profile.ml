open Gsim_ir
open Gsim_partition

type entry = {
  supernode : int;
  hits : int;
  share : float;
  size : int;
  representative : string;
}

type report = {
  cycles : int;
  total_evals : int;
  entries : entry list;
  idle_supernodes : int;
}

let analyze ?(top = 20) c (part : Partition.t) engine =
  let hits = Activity.supernode_hits engine in
  let work = Array.mapi (fun k h -> (h * Array.length part.Partition.supernodes.(k), k)) hits in
  let total_work = Array.fold_left (fun acc (w, _) -> acc + w) 0 work in
  Array.sort (fun a b -> compare (fst b) (fst a)) work;
  let entries =
    Array.to_list (Array.sub work 0 (min top (Array.length work)))
    |> List.filter (fun (w, _) -> w > 0)
    |> List.map (fun (w, k) ->
           let members = part.Partition.supernodes.(k) in
           {
             supernode = k;
             hits = hits.(k);
             share = (if total_work = 0 then 0. else float_of_int w /. float_of_int total_work);
             size = Array.length members;
             representative =
               (if Array.length members = 0 then "<empty>"
                else (Circuit.node c members.(0)).Circuit.name);
           })
  in
  let idle = Array.fold_left (fun acc h -> if h = 0 then acc + 1 else acc) 0 hits in
  {
    cycles = (Activity.counters engine).Counters.cycles;
    total_evals = (Activity.counters engine).Counters.evals;
    entries;
    idle_supernodes = idle;
  }

let pp fmt r =
  Format.fprintf fmt "activity profile over %d cycles (%d node evaluations)@." r.cycles
    r.total_evals;
  Format.fprintf fmt "idle supernodes: %d@." r.idle_supernodes;
  Format.fprintf fmt "%-6s %10s %8s %6s  %s@." "super" "evals" "share" "size"
    "representative member";
  List.iter
    (fun e ->
      Format.fprintf fmt "%-6d %10d %7.2f%% %6d  %s@." e.supernode e.hits (100. *. e.share)
        e.size e.representative)
    r.entries
