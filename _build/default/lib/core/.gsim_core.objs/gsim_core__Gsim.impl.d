lib/core/gsim.ml: Array Circuit Filename Gsim_emit Gsim_engine Gsim_firrtl Gsim_ir Gsim_partition Gsim_passes Gsim_verilog Option Printf
