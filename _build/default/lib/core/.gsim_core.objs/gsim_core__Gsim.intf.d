lib/core/gsim.mli: Circuit Gsim_emit Gsim_engine Gsim_ir Gsim_passes
