lib/bits/bits.ml: Array Char Format List Printf Random String
