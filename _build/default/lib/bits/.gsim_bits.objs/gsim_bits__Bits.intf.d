lib/bits/bits.mli: Format Random
