examples/verilog_soc.ml: Filename Format Gsim_bits Gsim_core Gsim_engine Gsim_ir Option Printf
