examples/counter_fir.ml: Array Gsim_bits Gsim_core Gsim_engine Gsim_ir List Option Printf
