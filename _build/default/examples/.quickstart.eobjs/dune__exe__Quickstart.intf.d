examples/quickstart.mli:
