examples/coremark_stucore.mli:
