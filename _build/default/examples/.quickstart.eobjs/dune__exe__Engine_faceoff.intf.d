examples/engine_faceoff.mli:
