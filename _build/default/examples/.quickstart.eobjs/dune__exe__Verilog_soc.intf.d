examples/verilog_soc.mli:
