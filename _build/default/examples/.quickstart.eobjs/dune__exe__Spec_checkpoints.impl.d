examples/spec_checkpoints.ml: Gsim_core Gsim_designs Gsim_engine Gsim_ir List Printf Unix
