examples/coremark_stucore.ml: Array Gsim_bits Gsim_core Gsim_designs Gsim_engine Gsim_ir Printf Unix
