examples/counter_fir.mli:
