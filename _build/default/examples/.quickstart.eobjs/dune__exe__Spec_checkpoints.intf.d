examples/spec_checkpoints.mli:
