examples/quickstart.ml: Gsim_bits Gsim_core Gsim_engine Gsim_hcl Printf
