examples/engine_faceoff.ml: Array Gsim_core Gsim_designs Gsim_engine Gsim_ir List Printf String Sys Unix
