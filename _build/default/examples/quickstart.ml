(* Quickstart: build a small circuit with the HCL builder, compile it with
   the GSIM pipeline, and simulate.

     dune exec examples/quickstart.exe                                    *)

module Bits = Gsim_bits.Bits
module Hcl = Gsim_hcl.Hcl
module Sim = Gsim_engine.Sim
module Gsim = Gsim_core.Gsim

let () =
  (* An 8-bit accumulator: out <= out + in when en. *)
  let b = Hcl.create ~name:"quickstart" () in
  let en = Hcl.input b "en" 1 in
  let data = Hcl.input b "data" 8 in
  let acc = Hcl.reg b "acc" 8 in
  Hcl.(set_when acc ~guard:en (q acc +: data));
  let out = Hcl.output b "out" (Hcl.q acc) in
  let circuit = Hcl.finalize b in

  (* Compile with the full GSIM pipeline and simulate. *)
  let compiled = Gsim.instantiate Gsim.gsim circuit in
  let sim = compiled.Gsim.sim in
  ignore out;
  (* Peek the register for architectural state; output wires show the
     value computed during the last evaluated cycle (pre-latch). *)
  let acc_node = Hcl.reg_node acc in
  Sim.poke_int sim (Hcl.node_of en) 1;
  Sim.poke_int sim (Hcl.node_of data) 5;
  Sim.run sim 3;
  Printf.printf "after 3 enabled cycles of +5: acc = %d\n" (Sim.peek_int sim acc_node);
  Sim.poke_int sim (Hcl.node_of en) 0;
  Sim.run sim 10;
  Printf.printf "after 10 disabled cycles:     acc = %d\n" (Sim.peek_int sim acc_node);
  let ctr = sim.Sim.counters () in
  Printf.printf "evaluations while idle stay flat: %d evals over %d cycles\n"
    ctr.Gsim_engine.Counters.evals ctr.Gsim_engine.Counters.cycles;
  compiled.Gsim.destroy ()
