(* Run the six SPEC-like checkpoint profiles on the Rocket-like design and
   show how the workload mix drives the activity factor — the effect the
   paper's Fig. 7 exploits.

     dune exec examples/spec_checkpoints.exe                              *)

module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Programs = Gsim_designs.Programs
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Gsim = Gsim_core.Gsim

let () =
  let core = Designs.rocket_like.Designs.build () in
  Printf.printf "design: %s\n\n" (Designs.stats_line core.Stu_core.circuit);
  Printf.printf "%-22s %10s %10s %8s\n" "checkpoint" "verilator" "gsim" "af(gsim)";
  List.iter
    (fun prog ->
      let time config =
        let compiled = Gsim.instantiate config core.Stu_core.circuit in
        let sim = compiled.Gsim.sim in
        Designs.load_program sim core.Stu_core.h prog;
        Designs.run_cycles sim 100;
        Counters.clear (sim.Sim.counters ());
        let cycles = 4000 in
        let t0 = Unix.gettimeofday () in
        Designs.run_cycles sim cycles;
        let dt = Unix.gettimeofday () -. t0 in
        let ctr = sim.Sim.counters () in
        let af =
          Counters.activity_factor ctr
            ~total_nodes:(Circuit.node_count core.Stu_core.circuit)
        in
        compiled.Gsim.destroy ();
        (float_of_int cycles /. dt, af)
      in
      let v, _ = time (Gsim.verilator ()) in
      let g, af = time Gsim.gsim in
      Printf.printf "%-22s %9.0f %9.0f %7.1f%%   (%.2fx)\n" prog.Gsim_designs.Isa.prog_name
        v g (100. *. af) (g /. v))
    (Programs.spec_checkpoints ~scale:100 ())
