(* Compare every engine on the BOOM-like design: speed, activity factor,
   and the paper's overhead-model counters, on one workload.

     dune exec examples/engine_faceoff.exe [-- workload]                  *)

module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Programs = Gsim_designs.Programs
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Gsim = Gsim_core.Gsim

let () =
  let workload =
    match Array.to_list Sys.argv with
    | _ :: name :: _ -> (
        match Programs.by_name name with
        | Some mk -> mk ()
        | None ->
          Printf.eprintf "unknown workload %s (one of: %s)\n" name
            (String.concat ", " Programs.names);
          exit 2)
    | _ -> Programs.coremark ~iters:100 ()
  in
  let design = Designs.boom_like in
  let core = design.Designs.build () in
  Printf.printf "design: %s\nworkload: %s\n\n" (Designs.stats_line core.Stu_core.circuit)
    workload.Gsim_designs.Isa.prog_name;
  Printf.printf "%-14s %10s %8s %14s %14s %12s\n" "engine" "speed" "af" "exams/cyc"
    "activations/cyc" "supernodes";
  let cycles = 3000 in
  List.iter
    (fun config ->
      let compiled = Gsim.instantiate config core.Stu_core.circuit in
      let sim = compiled.Gsim.sim in
      Designs.load_program sim core.Stu_core.h workload;
      Designs.run_cycles sim 100;
      Counters.clear (sim.Sim.counters ());
      let t0 = Unix.gettimeofday () in
      Designs.run_cycles sim cycles;
      let dt = Unix.gettimeofday () -. t0 in
      let ctr = sim.Sim.counters () in
      Printf.printf "%-14s %9.0f %7.1f%% %14d %14d %12d\n" config.Gsim.config_name
        (float_of_int cycles /. dt)
        (100. *. Counters.activity_factor ctr ~total_nodes:(Circuit.node_count core.Stu_core.circuit))
        (ctr.Counters.exams / cycles)
        (ctr.Counters.activations / cycles)
        compiled.Gsim.supernodes;
      compiled.Gsim.destroy ())
    Gsim.all_presets
