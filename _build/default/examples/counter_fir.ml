(* Load a FIRRTL design from text, run it on every simulator preset, and
   check they agree bit-for-bit.

     dune exec examples/counter_fir.exe                                   *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Gsim = Gsim_core.Gsim

let firrtl_src =
  {|
circuit Gray :
  module Gray :
    input clock : Clock
    input reset : UInt<1>
    input en : UInt<1>
    output count : UInt<8>
    output gray : UInt<8>

    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    when en :
      r <= tail(add(r, UInt<8>(1)), 1)
    count <= r
    gray <= xor(r, shr(r, 1))
|}

let () =
  let circuit, _halt = Gsim.load_firrtl_string firrtl_src in
  let node name = (Option.get (Circuit.find_node circuit name)).Circuit.id in
  let en = node "en" and reset = node "reset" in
  let observe = [ node "r" ] in
  let stimulus =
    Array.init 50 (fun i ->
        [
          (en, Bits.of_int ~width:1 (if i mod 5 = 4 then 0 else 1));
          (reset, Bits.of_int ~width:1 (if i = 30 then 1 else 0));
        ])
  in
  let reference = ref None in
  List.iter
    (fun config ->
      let compiled = Gsim.instantiate config circuit in
      let trace = Sim.trace compiled.Gsim.sim ~observe ~stimulus in
      (match !reference with
       | None -> reference := Some trace
       | Some expected ->
         if not (Sim.equal_traces expected trace) then
           failwith (config.Gsim.config_name ^ " diverged!"));
      Printf.printf "%-14s ok (final count = %d)\n" config.Gsim.config_name
        (Bits.to_int (List.hd (List.rev (Array.to_list trace) |> List.hd)));
      compiled.Gsim.destroy ())
    Gsim.all_presets;
  print_endline "all simulator presets produced identical traces"
