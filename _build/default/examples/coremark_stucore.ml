(* The paper's headline scenario in miniature: run the CoreMark-like
   workload to completion on the runnable core, verify the result against
   the golden software model, and compare Verilator-style and GSIM
   simulation speed.

     dune exec examples/coremark_stucore.exe                              *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Isa = Gsim_designs.Isa
module Programs = Gsim_designs.Programs
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Gsim = Gsim_core.Gsim

let () =
  let prog = Programs.coremark ~iters:20 () in
  let golden_regs, _, golden_retired =
    Isa.reference_execute ~code:prog.Isa.code ~data:prog.Isa.data ~dmem_size:4096 ()
  in
  Printf.printf "golden model: %d instructions, checksum x15 = 0x%08x\n" golden_retired
    golden_regs.(15);
  let run config =
    let core = Stu_core.build () in
    let compiled = Gsim.instantiate config core.Stu_core.circuit in
    let sim = compiled.Gsim.sim in
    Designs.load_program sim core.Stu_core.h prog;
    let t0 = Unix.gettimeofday () in
    let cycles = Designs.run_program sim core.Stu_core.h in
    let dt = Unix.gettimeofday () -. t0 in
    let checksum = Sim.peek_int sim core.Stu_core.h.Stu_core.reg_nodes.(15) in
    if checksum <> golden_regs.(15) then failwith "checksum mismatch!";
    let ctr = sim.Sim.counters () in
    Printf.printf "%-12s %8d cycles in %6.3fs  (%8.0f Hz, af %.1f%%)\n"
      config.Gsim.config_name cycles dt
      (float_of_int cycles /. dt)
      (100. *. Counters.activity_factor ctr ~total_nodes:(Circuit.node_count core.Stu_core.circuit));
    compiled.Gsim.destroy ();
    float_of_int cycles /. dt
  in
  let v = run (Gsim.verilator ()) in
  let g = run Gsim.gsim in
  Printf.printf "gsim speedup over verilator-style: %.2fx\n" (g /. v)
