(* A small Verilog SoC — register file, accumulator datapath, scratch
   memory and a busy flag — simulated with the GSIM preset and dumped as a
   VCD waveform.

     dune exec examples/verilog_soc.exe                                   *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Vcd = Gsim_engine.Vcd
module Gsim = Gsim_core.Gsim

let soc_v =
  {|
module regfile (input clk, input we, input [1:0] waddr, input [15:0] wdata,
                input [1:0] raddr, output [15:0] rdata);
  reg [15:0] r0;
  reg [15:0] r1;
  reg [15:0] r2;
  reg [15:0] r3;
  always @(posedge clk) begin
    if (we) begin
      case (waddr)
        2'd0: r0 <= wdata;
        2'd1: r1 <= wdata;
        2'd2: r2 <= wdata;
        default: r3 <= wdata;
      endcase
    end
  end
  assign rdata = (raddr == 2'd0) ? r0 :
                 (raddr == 2'd1) ? r1 :
                 (raddr == 2'd2) ? r2 : r3;
endmodule

module soc (input clk, input rst, input start, input [15:0] data_in,
            output [15:0] acc_out, output busy);
  reg [15:0] acc;
  reg [3:0] steps;
  reg running;
  wire [15:0] rf_out;
  reg [15:0] scratch [7:0];

  regfile rf (.clk(clk), .we(start), .waddr(data_in[1:0]), .wdata(data_in),
              .raddr(acc[1:0]), .rdata(rf_out));

  always @(posedge clk) begin
    if (rst) begin
      acc <= 16'h0;
      steps <= 4'h0;
      running <= 1'b0;
    end else if (start & ~running) begin
      running <= 1'b1;
      steps <= 4'd12;
    end else if (running) begin
      acc <= acc + rf_out + {12'h0, steps};
      scratch[steps[2:0]] <= acc;
      steps <= steps - 4'h1;
      if (steps == 4'h1)
        running <= 1'b0;
    end
  end

  assign acc_out = acc;
  assign busy = running;
endmodule
|}

let () =
  let circuit = Gsim.load_verilog_string soc_v in
  Printf.printf "elaborated: %s\n"
    (Format.asprintf "%a" Circuit.pp_stats (Circuit.stats circuit));
  let compiled = Gsim.instantiate Gsim.gsim circuit in
  let sim, close =
    let path = Filename.temp_file "gsim_soc" ".vcd" in
    let sim, close = Vcd.to_file path compiled.Gsim.sim in
    Printf.printf "dumping waveforms to %s\n" path;
    (sim, close)
  in
  let node name = (Option.get (Circuit.find_node circuit name)).Circuit.id in
  Sim.poke_int sim (node "data_in") 0x1234;
  Sim.poke_int sim (node "start") 1;
  Sim.run sim 2;
  Sim.poke_int sim (node "start") 0;
  let cycles = ref 0 in
  while Sim.peek_int sim (node "busy") = 1 && !cycles < 100 do
    Sim.run sim 1;
    incr cycles
  done;
  Printf.printf "datapath ran for %d cycles; acc = 0x%04x\n" !cycles
    (Sim.peek_int sim (node "acc"));
  Sim.run sim 20;
  let ctr = compiled.Gsim.sim.Sim.counters () in
  Printf.printf "idle after completion: %d evals over %d cycles total\n"
    ctr.Gsim_engine.Counters.evals ctr.Gsim_engine.Counters.cycles;
  close ();
  compiled.Gsim.destroy ()
