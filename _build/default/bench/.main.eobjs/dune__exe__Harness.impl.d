bench/harness.ml: Buffer Gsim_bits Gsim_core Gsim_designs Gsim_engine Gsim_ir Gsim_passes Hashtbl List Printf String Unix
