bench/main.mli:
