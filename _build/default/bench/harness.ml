(* Shared measurement machinery for the paper-reproduction benches. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Designs = Gsim_designs.Designs
module Stu_core = Gsim_designs.Stu_core
module Isa = Gsim_designs.Isa
module Gsim = Gsim_core.Gsim

let quick = ref false

(* Cycle budget for speed measurements, scaled by design size so the big
   designs stay affordable. *)
let budget_for nodes =
  let base =
    if nodes < 500 then 40_000
    else if nodes < 8_000 then 12_000
    else if nodes < 25_000 then 5_000
    else 1_600
  in
  if !quick then max 200 (base / 10) else base

let now = Unix.gettimeofday

type measurement = {
  m_config : string;
  m_design : string;
  m_workload : string;
  cycles : int;
  seconds : float;
  hz : float;
  activity : float;
  counters : Counters.t;
  supernodes : int;
}

(* Build-once cache: designs are deterministic, so each named design is
   elaborated a single time per process and copied per engine. *)
let design_cache : (string, Stu_core.core) Hashtbl.t = Hashtbl.create 8

let build_design (d : Designs.design) =
  match Hashtbl.find_opt design_cache d.Designs.design_name with
  | Some core -> core
  | None ->
    let core = d.Designs.build () in
    Hashtbl.replace design_cache d.Designs.design_name core;
    core

(* Optimized-circuit cache: O3 on the largest design costs seconds, and
   every bench point would otherwise re-run the pass pipeline.  Interface
   node ids are preserved (no compaction), so the core handles stay
   valid. *)
let optimized_cache : (string * string, Circuit.t) Hashtbl.t = Hashtbl.create 16

let optimized_circuit (design : Designs.design) level =
  let key = (design.Designs.design_name, Gsim_passes.Pipeline.level_to_string level) in
  match Hashtbl.find_opt optimized_cache key with
  | Some c -> c
  | None ->
    let core = build_design design in
    let c = Circuit.copy core.Stu_core.circuit in
    ignore (Gsim_passes.Pipeline.optimize ~level c);
    Hashtbl.replace optimized_cache key c;
    c

(* Measure [config] running [prog] on [design] for the budgeted number of
   cycles (after a short warmup).  The program must run longer than the
   budget; halting early would quietly measure an idle core. *)
let measure ?cycles_override (config : Gsim.config) (design : Designs.design)
    (prog : Isa.program) =
  let core = build_design design in
  let pre = optimized_circuit design config.Gsim.opt_level in
  let compiled =
    Gsim.instantiate
      { config with Gsim.opt_level = Gsim_passes.Pipeline.O0 }
      pre
  in
  let sim = compiled.Gsim.sim in
  let h = core.Stu_core.h in
  (* Handles are stable: instantiate never compacts by default. *)
  Designs.load_program sim h prog;
  let nodes = Circuit.node_count core.Stu_core.circuit in
  let cycles =
    match cycles_override with
    | Some c -> c
    | None ->
      let b = budget_for nodes in
      (* Multi-threaded full-cycle pays per-level barriers; its steady
         rate converges in far fewer cycles, which matters when the host
         has fewer cores than domains. *)
      (match config.Gsim.engine with
       | Gsim.Full_cycle_engine n when n > 1 -> max 200 (b / 16)
       | _ -> b)
  in
  let warmup = max 8 (cycles / 20) in
  Designs.run_cycles sim warmup;
  if not (Bits.is_zero (sim.Sim.peek h.Stu_core.halt)) then
    failwith
      (Printf.sprintf "harness: %s halted during warmup; use a longer program"
         prog.Isa.prog_name);
  Counters.clear (sim.Sim.counters ());
  let t0 = now () in
  Designs.run_cycles sim cycles;
  let dt = now () -. t0 in
  if not (Bits.is_zero (sim.Sim.peek h.Stu_core.halt)) then
    failwith
      (Printf.sprintf "harness: %s halted inside the measured window" prog.Isa.prog_name);
  let ctr = sim.Sim.counters () in
  let total_nodes = Circuit.node_count compiled.Gsim.sim.Sim.circuit in
  let m =
    {
      m_config = config.Gsim.config_name;
      m_design = design.Designs.design_name;
      m_workload = prog.Isa.prog_name;
      cycles;
      seconds = dt;
      hz = float_of_int cycles /. dt;
      activity = Counters.activity_factor ctr ~total_nodes;
      counters = ctr;
      supernodes = compiled.Gsim.supernodes;
    }
  in
  compiled.Gsim.destroy ();
  m

(* Workloads sized to outlast every budget (the assembler's imm12 bounds
   the loop counters at 2047). *)
let coremark_long () = Gsim_designs.Programs.coremark ~iters:200 ()

let linux_long () = Gsim_designs.Programs.linux_boot ~phases:400 ()

let spec_long name =
  match name with
  | "streaming" -> Gsim_designs.Programs.spec_streaming ~scale:40 ()
  | "pointer_chase" -> Gsim_designs.Programs.spec_pointer_chase ~scale:40 ()
  | "int_compute" -> Gsim_designs.Programs.spec_int_compute ~scale:20 ()
  | "mul_heavy" -> Gsim_designs.Programs.spec_mul_heavy ~scale:40 ()
  | "branch_heavy" -> Gsim_designs.Programs.spec_branch_heavy ~scale:20 ()
  | "icache" -> Gsim_designs.Programs.spec_icache ~scale:80 ()
  | _ -> invalid_arg "spec_long"

let spec_names =
  [ "streaming"; "pointer_chase"; "int_compute"; "mul_heavy"; "branch_heavy"; "icache" ]

(* --- Output helpers ---------------------------------------------------- *)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let sub s = Printf.printf "-- %s\n" s

let kseparated n =
  (* 1234567 -> "1,234,567" for the wide tables *)
  let s = string_of_int n in
  let b = Buffer.create 16 in
  String.iteri
    (fun i ch ->
      if i > 0 && (String.length s - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b ch)
    s;
  Buffer.contents b

let pp_hz hz =
  if hz >= 1e6 then Printf.sprintf "%.2f MHz" (hz /. 1e6)
  else if hz >= 1e3 then Printf.sprintf "%.1f kHz" (hz /. 1e3)
  else Printf.sprintf "%.0f Hz" hz

let geomean xs =
  match xs with
  | [] -> 0.
  | _ -> exp (List.fold_left (fun acc x -> acc +. log x) 0. xs /. float_of_int (List.length xs))
