(* Bits: unit tests against native-int semantics on narrow widths, and
   algebraic invariants on wide values. *)

module Bits = Gsim_bits.Bits

let check_bits msg expected actual =
  Alcotest.(check string) msg (Format.asprintf "%a" Bits.pp expected)
    (Format.asprintf "%a" Bits.pp actual)

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests                                            *)
(* ------------------------------------------------------------------ *)

let test_construct () =
  Alcotest.(check int) "zero width" 8 (Bits.width (Bits.zero 8));
  Alcotest.(check int) "of_int value" 5 (Bits.to_int (Bits.of_int ~width:8 5));
  Alcotest.(check int) "of_int truncates" 1 (Bits.to_int (Bits.of_int ~width:1 3));
  Alcotest.(check int) "of_int negative" 0xFF (Bits.to_int (Bits.of_int ~width:8 (-1)));
  Alcotest.(check int) "ones" 0x7F (Bits.to_int (Bits.ones 7));
  Alcotest.(check bool) "is_zero" true (Bits.is_zero (Bits.zero 100));
  Alcotest.(check bool) "ones not zero" false (Bits.is_zero (Bits.ones 100))

let test_of_string () =
  Alcotest.(check int) "binary" 5 (Bits.to_int (Bits.of_string "4'b0101"));
  Alcotest.(check int) "hex" 0xAB (Bits.to_int (Bits.of_string "8'hab"));
  Alcotest.(check int) "decimal" 1234 (Bits.to_int (Bits.of_string "16'd1234"));
  Alcotest.(check int) "bare binary" 6 (Bits.to_int (Bits.of_string "110"));
  Alcotest.(check int) "bare width" 3 (Bits.width (Bits.of_string "110"));
  Alcotest.(check int) "underscores" 0xF0 (Bits.to_int (Bits.of_string "8'b1111_0000"));
  Alcotest.check_raises "bad width" (Invalid_argument "Bits.of_string: \"2'b111\"")
    (fun () -> ignore (Bits.of_string "2'b111"))

let test_strings_roundtrip () =
  let v = Bits.of_string "100'hdeadbeefdeadbeefdeadbeef0" in
  check_bits "binary roundtrip" v (Bits.of_string (Bits.to_binary_string v));
  Alcotest.(check string) "hex" "deadbeefdeadbeefdeadbeef0" (Bits.to_hex_string v)

let test_wide_boundaries () =
  (* Cross the 31-bit limb and the 62-bit packing boundaries. *)
  List.iter
    (fun w ->
      let v = Bits.ones w in
      Alcotest.(check int) (Printf.sprintf "popcount ones %d" w) w (Bits.popcount v);
      Alcotest.(check bool) (Printf.sprintf "msb ones %d" w) true (Bits.msb v);
      check_bits
        (Printf.sprintf "not ones = zero %d" w)
        (Bits.zero w) (Bits.lognot v))
    [ 1; 30; 31; 32; 61; 62; 63; 93; 124; 200 ]

let test_to_int_bounds () =
  Alcotest.(check int) "62-bit max" ((1 lsl 62) - 1) (Bits.to_int (Bits.ones 62));
  Alcotest.check_raises "63 bits overflows" (Failure "Bits.to_int: value exceeds 62 bits")
    (fun () -> ignore (Bits.to_int (Bits.ones 63)));
  Alcotest.(check int) "to_int_trunc keeps low bits" ((1 lsl 62) - 1)
    (Bits.to_int_trunc (Bits.ones 100))

let test_signed_int () =
  Alcotest.(check int) "minus one" (-1) (Bits.to_signed_int (Bits.ones 8));
  Alcotest.(check int) "min" (-128) (Bits.to_signed_int (Bits.of_int ~width:8 0x80));
  Alcotest.(check int) "positive" 127 (Bits.to_signed_int (Bits.of_int ~width:8 0x7F));
  Alcotest.(check int) "wide minus one" (-1) (Bits.to_signed_int (Bits.ones 150))

let test_extract_concat () =
  let v = Bits.of_string "16'habcd" in
  Alcotest.(check int) "low nibble" 0xD (Bits.to_int (Bits.extract v ~hi:3 ~lo:0));
  Alcotest.(check int) "high nibble" 0xA (Bits.to_int (Bits.extract v ~hi:15 ~lo:12));
  Alcotest.(check int) "middle" 0xBC (Bits.to_int (Bits.extract v ~hi:11 ~lo:4));
  let hi = Bits.of_int ~width:4 0xA and lo = Bits.of_int ~width:8 0x5B in
  Alcotest.(check int) "concat" 0xA5B (Bits.to_int (Bits.concat hi lo));
  check_bits "concat_list"
    (Bits.of_string "12'ha5b")
    (Bits.concat_list [ hi; Bits.extract lo ~hi:7 ~lo:4; Bits.extract lo ~hi:3 ~lo:0 ])

let test_arith_basics () =
  let a = Bits.of_int ~width:8 200 and b = Bits.of_int ~width:8 100 in
  Alcotest.(check int) "add" 300 (Bits.to_int (Bits.add a b));
  Alcotest.(check int) "add width" 9 (Bits.width (Bits.add a b));
  Alcotest.(check int) "sub wraps" ((100 - 200) land 0x1FF) (Bits.to_int (Bits.sub b a));
  Alcotest.(check int) "mul" 20000 (Bits.to_int (Bits.mul a b));
  Alcotest.(check int) "mul width" 16 (Bits.width (Bits.mul a b));
  Alcotest.(check int) "div" 2 (Bits.to_int (Bits.div a b));
  Alcotest.(check int) "rem" 0 (Bits.to_int (Bits.rem a b));
  Alcotest.(check int) "div by zero" 0 (Bits.to_int (Bits.div a (Bits.zero 8)));
  Alcotest.(check int) "rem by zero" 200 (Bits.to_int (Bits.rem a (Bits.zero 8)));
  Alcotest.(check int) "neg" ((-200) land 0x1FF) (Bits.to_int (Bits.neg a))

let test_signed_arith () =
  let m3 = Bits.of_int ~width:4 (-3) and p2 = Bits.of_int ~width:4 2 in
  Alcotest.(check int) "divs trunc toward zero" (-1)
    (Bits.to_signed_int (Bits.div_signed m3 p2));
  Alcotest.(check int) "rems sign of dividend" (-1)
    (Bits.to_signed_int (Bits.rem_signed m3 p2));
  Alcotest.(check int) "muls" (-6) (Bits.to_signed_int (Bits.mul_signed m3 p2));
  Alcotest.(check int) "adds" (-1) (Bits.to_signed_int (Bits.add_signed m3 p2));
  Alcotest.(check bool) "lts" true (Bits.to_int (Bits.lt_signed m3 p2) = 1);
  Alcotest.(check bool) "gts" true (Bits.to_int (Bits.gt_signed p2 m3) = 1)

let test_shifts () =
  let v = Bits.of_int ~width:8 0b1011 in
  Alcotest.(check int) "shl value" 0b101100 (Bits.to_int (Bits.shift_left v 2));
  Alcotest.(check int) "shl width" 10 (Bits.width (Bits.shift_left v 2));
  Alcotest.(check int) "shr value" 0b10 (Bits.to_int (Bits.shift_right v 2));
  Alcotest.(check int) "shr width" 6 (Bits.width (Bits.shift_right v 2));
  Alcotest.(check int) "shr beyond" 0 (Bits.to_int (Bits.shift_right v 20));
  let neg = Bits.of_int ~width:8 0x80 in
  Alcotest.(check int) "ashr keeps top bits" 0b100000
    (Bits.to_int (Bits.shift_right_signed neg 2));
  Alcotest.(check int) "ashr beyond width" 1
    (Bits.to_int (Bits.shift_right_signed neg 20));
  let amt = Bits.of_int ~width:4 3 in
  Alcotest.(check int) "dshl_keep" ((0b1011 lsl 3) land 0xFF)
    (Bits.to_int (Bits.dshl_keep v amt));
  Alcotest.(check int) "dshr" 1 (Bits.to_int (Bits.dshr v amt));
  Alcotest.(check int) "dshr_signed" 0xF0 (Bits.to_int (Bits.dshr_signed neg (Bits.of_int ~width:4 3)));
  Alcotest.(check int) "dshr huge amount" 0
    (Bits.to_int (Bits.dshr v (Bits.of_int ~width:40 1000000000)))

let test_reductions () =
  Alcotest.(check int) "andr ones" 1 (Bits.to_int (Bits.reduce_and (Bits.ones 33)));
  Alcotest.(check int) "andr mixed" 0
    (Bits.to_int (Bits.reduce_and (Bits.of_int ~width:33 5)));
  Alcotest.(check int) "orr zero" 0 (Bits.to_int (Bits.reduce_or (Bits.zero 90)));
  Alcotest.(check int) "xorr parity" 1
    (Bits.to_int (Bits.reduce_xor (Bits.of_int ~width:40 0b0111)))

let test_mux_compare () =
  let a = Bits.of_int ~width:8 7 and b = Bits.of_int ~width:8 9 in
  check_bits "mux true" a (Bits.mux (Bits.one 1) a b);
  check_bits "mux false" b (Bits.mux (Bits.zero 1) a b);
  Alcotest.(check int) "lt across widths" 1
    (Bits.to_int (Bits.lt (Bits.of_int ~width:4 3) (Bits.of_int ~width:70 5)));
  Alcotest.(check int) "eq across widths" 1
    (Bits.to_int (Bits.eq (Bits.of_int ~width:4 3) (Bits.of_int ~width:100 3)))

(* ------------------------------------------------------------------ *)
(* Properties against native ints (narrow widths are exact)            *)
(* ------------------------------------------------------------------ *)

let narrow_pair =
  QCheck.make
    ~print:(fun (w1, a, w2, b) -> Printf.sprintf "w1=%d a=%d w2=%d b=%d" w1 a w2 b)
    QCheck.Gen.(
      let* w1 = int_range 1 30 in
      let* w2 = int_range 1 30 in
      let* a = int_bound ((1 lsl w1) - 1) in
      let* b = int_bound ((1 lsl w2) - 1) in
      return (w1, a, w2, b))

let sext w x = (x lsl (63 - w)) asr (63 - w)

let prop_narrow name f =
  QCheck.Test.make ~name ~count:500 narrow_pair f

let narrow_props =
  let mk (w1, a, w2, b) = (Bits.of_int ~width:w1 a, Bits.of_int ~width:w2 b) in
  [
    prop_narrow "add matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.add x y) = (a + b) land ((1 lsl (max w1 w2 + 1)) - 1));
    prop_narrow "sub matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.sub x y) = (a - b) land ((1 lsl (max w1 w2 + 1)) - 1));
    prop_narrow "mul matches int" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.mul x y) = a * b);
    prop_narrow "div matches int" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.div x y) = if b = 0 then 0 else a / b);
    prop_narrow "rem matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let m = (1 lsl min w1 w2) - 1 in
        Bits.to_int (Bits.rem x y) = (if b = 0 then a land m else a mod b land m));
    prop_narrow "div_signed matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let sa = sext w1 a and sb = sext w2 b in
        let expect = if sb = 0 then 0 else sa / sb land ((1 lsl (w1 + 1)) - 1) in
        Bits.to_int (Bits.div_signed x y) = expect);
    prop_narrow "rem_signed matches int" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        let sa = sext w1 a and sb = sext w2 b in
        let m = (1 lsl min w1 w2) - 1 in
        let expect = if sb = 0 then sa land m else sa mod sb land m in
        Bits.to_int (Bits.rem_signed x y) = expect);
    prop_narrow "unsigned compare" (fun ((_, a, _, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.lt x y) = Bool.to_int (a < b)
        && Bits.to_int (Bits.geq x y) = Bool.to_int (a >= b));
    prop_narrow "signed compare" (fun ((w1, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.lt_signed x y) = Bool.to_int (sext w1 a < sext w2 b));
    prop_narrow "logic ops match" (fun ((w1, a, w2, b) as q) ->
        let w = max w1 w2 in
        let x = Bits.resize_unsigned (fst (mk q)) ~width:w in
        let y = Bits.resize_unsigned (snd (mk q)) ~width:w in
        Bits.to_int (Bits.logand x y) = a land b
        && Bits.to_int (Bits.logor x y) = a lor b
        && Bits.to_int (Bits.logxor x y) = a lxor b);
    prop_narrow "cat matches int" (fun ((_, a, w2, b) as q) ->
        let x, y = mk q in
        Bits.to_int (Bits.concat x y) = (a lsl w2) lor b);
  ]

(* ------------------------------------------------------------------ *)
(* Wide-value invariants                                               *)
(* ------------------------------------------------------------------ *)

let st = Random.State.make [| 0x5eed |]

let wide_gen =
  QCheck.make
    ~print:(fun (w, _) -> Printf.sprintf "width=%d" w)
    QCheck.Gen.(
      let* w = int_range 1 200 in
      return (w, Bits.random st ~width:w))

let wide_pair_gen =
  QCheck.make
    ~print:(fun (w, _, _) -> Printf.sprintf "width=%d" w)
    QCheck.Gen.(
      let* w = int_range 1 200 in
      return (w, Bits.random st ~width:w, Bits.random st ~width:w))

let wide_props =
  [
    QCheck.Test.make ~name:"lognot involution" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.lognot (Bits.lognot v)));
    QCheck.Test.make ~name:"binary string roundtrip" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.of_string (Bits.to_binary_string v)));
    QCheck.Test.make ~name:"bool list roundtrip" ~count:300 wide_gen (fun (_, v) ->
        Bits.equal v (Bits.of_bool_list (Bits.to_bool_list v)));
    QCheck.Test.make ~name:"extract/concat inverse" ~count:300 wide_gen (fun (w, v) ->
        w < 2
        ||
        let k = 1 + (w / 3) in
        let hi = Bits.extract v ~hi:(w - 1) ~lo:k and lo = Bits.extract v ~hi:(k - 1) ~lo:0 in
        Bits.equal v (Bits.concat hi lo));
    QCheck.Test.make ~name:"add/sub inverse" ~count:300 wide_pair_gen (fun (w, a, b) ->
        let sum = Bits.truncate (Bits.add a b) ~width:w in
        let back = Bits.truncate (Bits.sub sum b) ~width:w in
        Bits.equal a back);
    QCheck.Test.make ~name:"add commutes" ~count:300 wide_pair_gen (fun (_, a, b) ->
        Bits.equal (Bits.add a b) (Bits.add b a));
    QCheck.Test.make ~name:"divmod identity" ~count:300 wide_pair_gen (fun (w, a, b) ->
        Bits.is_zero b
        ||
        let q = Bits.div a b and r = Bits.rem a b in
        (* a = q*b + r, all truncated to w bits, and r < b *)
        let qb = Bits.truncate (Bits.mul q b) ~width:w in
        let r' = Bits.resize_unsigned r ~width:w in
        Bits.equal a (Bits.truncate (Bits.add qb r') ~width:(w + 1) |> Bits.truncate ~width:w)
        && Bits.compare_unsigned r b < 0);
    QCheck.Test.make ~name:"mul by shift-add" ~count:200 wide_gen (fun (w, a) ->
        (* a * 5 = (a << 2) + a *)
        let five = Bits.of_int ~width:3 5 in
        let prod = Bits.mul a five in
        let manual =
          Bits.truncate
            (Bits.add (Bits.zero_extend (Bits.shift_left a 2) ~width:(w + 3)) a)
            ~width:(w + 3)
        in
        Bits.equal prod manual);
    QCheck.Test.make ~name:"shift composition" ~count:300 wide_gen (fun (_, a) ->
        Bits.equal (Bits.shift_left (Bits.shift_left a 3) 4) (Bits.shift_left a 7));
    QCheck.Test.make ~name:"sign extend preserves signed value" ~count:300 wide_gen
      (fun (w, a) ->
        if w > 60 then true
        else Bits.to_signed_int (Bits.sign_extend a ~width:(w + 5)) = Bits.to_signed_int a);
    QCheck.Test.make ~name:"compare antisymmetric" ~count:300 wide_pair_gen
      (fun (_, a, b) ->
        Bits.compare_unsigned a b = -Bits.compare_unsigned b a
        && Bits.compare_signed a b = -Bits.compare_signed b a);
    QCheck.Test.make ~name:"neg is sub from zero" ~count:300 wide_gen (fun (w, a) ->
        Bits.equal (Bits.neg a) (Bits.sub (Bits.zero w) a));
  ]

let () =
  let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests) in
  Alcotest.run "bits"
    [
      ( "unit",
        [
          Alcotest.test_case "construct" `Quick test_construct;
          Alcotest.test_case "of_string" `Quick test_of_string;
          Alcotest.test_case "string roundtrip" `Quick test_strings_roundtrip;
          Alcotest.test_case "wide boundaries" `Quick test_wide_boundaries;
          Alcotest.test_case "to_int bounds" `Quick test_to_int_bounds;
          Alcotest.test_case "signed int" `Quick test_signed_int;
          Alcotest.test_case "extract/concat" `Quick test_extract_concat;
          Alcotest.test_case "arith basics" `Quick test_arith_basics;
          Alcotest.test_case "signed arith" `Quick test_signed_arith;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "reductions" `Quick test_reductions;
          Alcotest.test_case "mux/compare" `Quick test_mux_compare;
        ] );
      qsuite "narrow-vs-int" narrow_props;
      qsuite "wide-invariants" wide_props;
    ]
