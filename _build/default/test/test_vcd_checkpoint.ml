(* VCD dumping and checkpoint save/restore. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
module Full_cycle = Gsim_engine.Full_cycle
module Vcd = Gsim_engine.Vcd
module Checkpoint = Gsim_engine.Checkpoint
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Programs = Gsim_designs.Programs
module Isa = Gsim_designs.Isa

let b ~w n = Bits.of_int ~width:w n

let counter_circuit () =
  let c = Circuit.create ~name:"ctr" () in
  let en = Circuit.add_input c ~name:"top.en" ~width:1 in
  let r = Circuit.add_register c ~name:"top.count" ~width:8 ~init:(Bits.zero 8) () in
  Circuit.set_next c r
    (Expr.mux (Expr.var ~width:1 en.Circuit.id)
       (Expr.unop (Expr.Extract (7, 0))
          (Expr.binop Expr.Add (Expr.var ~width:8 r.Circuit.read) (Expr.of_int ~width:8 1)))
       (Expr.var ~width:8 r.Circuit.read));
  Circuit.mark_output c r.Circuit.read;
  (c, en.Circuit.id, r.Circuit.read)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- VCD ---------------------------------------------------------------- *)

let test_vcd_header_and_changes () =
  let c, en, count = counter_circuit () in
  let buf = Buffer.create 1024 in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let _, sim = Vcd.create ~out:(Buffer.add_string buf) sim in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 3;
  sim.Sim.poke en (b ~w:1 0);
  Sim.run sim 5;
  let vcd = Buffer.contents buf in
  Alcotest.(check bool) "timescale" true (contains vcd "$timescale");
  Alcotest.(check bool) "enddefinitions" true (contains vcd "$enddefinitions $end");
  Alcotest.(check bool) "scope from dotted name" true (contains vcd "$scope module top $end");
  Alcotest.(check bool) "count declared 8 wide" true (contains vcd "$var wire 8");
  Alcotest.(check bool) "en declared 1 wide" true (contains vcd "$var wire 1");
  (* Counting to 3 then idling: binary changes recorded, then silence. *)
  Alcotest.(check bool) "count reaches 3" true (contains vcd "b00000011");
  Alcotest.(check bool) "no change at idle time" false (contains vcd "#8");
  ignore count

let test_vcd_only_changes_dumped () =
  let c, en, _ = counter_circuit () in
  let buf = Buffer.create 1024 in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let _, sim = Vcd.create ~out:(Buffer.add_string buf) sim in
  sim.Sim.poke en (b ~w:1 0);
  let before = Buffer.length buf in
  Sim.run sim 50;
  (* Idle: nothing after the initial dump. *)
  Alcotest.(check int) "no output while idle" before (Buffer.length buf)

let test_vcd_identifiers_unique () =
  let core = Stu_core.build () in
  let buf = Buffer.create 65536 in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  let _, _ = Vcd.create ~out:(Buffer.add_string buf) sim in
  let vcd = Buffer.contents buf in
  let idents =
    String.split_on_char '\n' vcd
    |> List.filter_map (fun l ->
           match String.split_on_char ' ' l with
           | [ "$var"; "wire"; _; id; _; "$end" ] -> Some id
           | _ -> None)
  in
  Alcotest.(check bool) "several signals" true (List.length idents > 10);
  Alcotest.(check int) "identifiers unique" (List.length idents)
    (List.length (List.sort_uniq compare idents))

let test_vcd_to_file () =
  let c, en, _ = counter_circuit () in
  let path = Filename.temp_file "gsim" ".vcd" in
  let sim = Full_cycle.sim (Full_cycle.create c) in
  let sim, close = Vcd.to_file path sim in
  sim.Sim.poke en (b ~w:1 1);
  Sim.run sim 4;
  close ();
  let ic = open_in path in
  let len = in_channel_length ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check bool) "file written" true (len > 100)

(* --- Checkpoints -------------------------------------------------------- *)

let test_checkpoint_roundtrip_text () =
  let core = Stu_core.build () in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  Designs.load_program sim core.Stu_core.h (Programs.quick ());
  Sim.run sim 25;
  let ck = Checkpoint.capture sim in
  let ck' = Checkpoint.of_string (Checkpoint.to_string ck) in
  Alcotest.(check bool) "text roundtrip" true (Checkpoint.equal ck ck');
  Alcotest.(check int) "cycle recorded" 25 (Checkpoint.cycle ck')

let test_checkpoint_resume_same_engine () =
  (* Run A to completion; run B to cycle 30, snapshot, restore into a fresh
     simulator, finish; both must agree on final architectural state. *)
  let prog = Programs.quick () in
  let full_run () =
    let core = Stu_core.build () in
    let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
    Designs.load_program sim core.Stu_core.h prog;
    ignore (Designs.run_program sim core.Stu_core.h);
    (core, sim)
  in
  let _, sim_a = full_run () in
  let core_b = Stu_core.build () in
  let sim_b = Full_cycle.sim (Full_cycle.create core_b.Stu_core.circuit) in
  Designs.load_program sim_b core_b.Stu_core.h prog;
  Sim.run sim_b 30;
  let ck = Checkpoint.capture sim_b in
  (* Fresh simulator, restore, finish. *)
  let core_c = Stu_core.build () in
  let sim_c = Full_cycle.sim (Full_cycle.create core_c.Stu_core.circuit) in
  Checkpoint.restore sim_c ck;
  ignore (Designs.run_program sim_c core_c.Stu_core.h);
  Array.iteri
    (fun k id ->
      if id >= 0 then
        Alcotest.(check int)
          (Printf.sprintf "x%d" k)
          (Sim.peek_int sim_a id) (Sim.peek_int sim_c id))
    core_b.Stu_core.h.Stu_core.reg_nodes

let test_checkpoint_cross_engine () =
  (* Snapshot from the reference interpreter mid-run, restore into the GSIM
     engine, and compare final state with an uninterrupted reference run. *)
  let prog = Programs.coremark ~iters:1 () in
  let golden () =
    let core = Stu_core.build () in
    let sim = Sim.of_reference (Reference.create core.Stu_core.circuit) in
    Designs.load_program sim core.Stu_core.h prog;
    ignore (Designs.run_program sim core.Stu_core.h);
    (core, sim)
  in
  let _, sim_gold = golden () in
  let core_b = Stu_core.build () in
  let sim_b = Sim.of_reference (Reference.create core_b.Stu_core.circuit) in
  Designs.load_program sim_b core_b.Stu_core.h prog;
  Sim.run sim_b 500;
  let ck = Checkpoint.capture sim_b in
  let core_c = Stu_core.build () in
  let p = Partition.gsim core_c.Stu_core.circuit ~max_size:8 in
  let sim_c = Activity.sim (Activity.create core_c.Stu_core.circuit p) in
  Checkpoint.restore sim_c ck;
  ignore (Designs.run_program sim_c core_c.Stu_core.h);
  Array.iteri
    (fun k id ->
      if id >= 0 then
        Alcotest.(check int)
          (Printf.sprintf "x%d" k)
          (Sim.peek_int sim_gold id) (Sim.peek_int sim_c id))
    core_b.Stu_core.h.Stu_core.reg_nodes

let test_checkpoint_file () =
  let core = Stu_core.build () in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  Designs.load_program sim core.Stu_core.h (Programs.quick ());
  Sim.run sim 10;
  let ck = Checkpoint.capture sim in
  let path = Filename.temp_file "gsim" ".ckpt" in
  Checkpoint.save path ck;
  let ck' = Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (Checkpoint.equal ck ck')

let test_checkpoint_rejects_garbage () =
  Alcotest.(check bool) "missing header" true
    (match Checkpoint.of_string "nonsense" with
     | exception Failure _ -> true
     | _ -> false);
  Alcotest.(check bool) "bad line" true
    (match Checkpoint.of_string "ckpt 1\nbogus line here extra" with
     | exception Failure _ -> true
     | _ -> false)

let () =
  Alcotest.run "vcd_checkpoint"
    [
      ( "vcd",
        [
          Alcotest.test_case "header and changes" `Quick test_vcd_header_and_changes;
          Alcotest.test_case "only changes dumped" `Quick test_vcd_only_changes_dumped;
          Alcotest.test_case "identifiers unique" `Quick test_vcd_identifiers_unique;
          Alcotest.test_case "to_file" `Quick test_vcd_to_file;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "text roundtrip" `Quick test_checkpoint_roundtrip_text;
          Alcotest.test_case "resume same engine" `Quick test_checkpoint_resume_same_engine;
          Alcotest.test_case "cross engine" `Quick test_checkpoint_cross_engine;
          Alcotest.test_case "file roundtrip" `Quick test_checkpoint_file;
          Alcotest.test_case "rejects garbage" `Quick test_checkpoint_rejects_garbage;
        ] );
    ]
