(* Expr: width rules, evaluation, analysis helpers. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr

let b ~w n = Bits.of_int ~width:w n
let c ~w n = Expr.const (b ~w n)

let env_of_list assoc id = List.assoc id assoc

let eval_int ?(env = fun _ -> assert false) e = Bits.to_int (Expr.eval env e)

let test_width_rules () =
  let x = Expr.var ~width:8 0 and y = Expr.var ~width:12 1 in
  let checkw msg w e = Alcotest.(check int) msg w (Expr.width e) in
  checkw "add" 13 (Expr.binop Expr.Add x y);
  checkw "sub" 13 (Expr.binop Expr.Sub x y);
  checkw "mul" 20 (Expr.binop Expr.Mul x y);
  checkw "div" 8 (Expr.binop Expr.Div x y);
  checkw "div_signed" 9 (Expr.binop Expr.Div_signed x y);
  checkw "rem" 8 (Expr.binop Expr.Rem x y);
  checkw "and" 12 (Expr.binop Expr.And x y);
  checkw "cat" 20 (Expr.binop Expr.Cat x y);
  checkw "eq" 1 (Expr.binop Expr.Eq x y);
  checkw "dshl keeps" 8 (Expr.binop Expr.Dshl x y);
  checkw "not" 8 (Expr.unop Expr.Not x);
  checkw "neg" 9 (Expr.unop Expr.Neg x);
  checkw "andr" 1 (Expr.unop Expr.Reduce_and x);
  checkw "shl" 11 (Expr.unop (Expr.Shl_const 3) x);
  checkw "shr" 5 (Expr.unop (Expr.Shr_const 3) x);
  checkw "shr floor" 1 (Expr.unop (Expr.Shr_const 30) x);
  checkw "extract" 4 (Expr.unop (Expr.Extract (6, 3)) x);
  checkw "pad" 16 (Expr.unop (Expr.Pad_unsigned 16) x);
  checkw "mux" 8 (Expr.mux y x x)

let test_constructor_checks () =
  let x = Expr.var ~width:8 0 in
  Alcotest.check_raises "extract out of range"
    (Invalid_argument "Expr.unop: extract [9:0] out of range for width 8") (fun () ->
      ignore (Expr.unop (Expr.Extract (9, 0)) x));
  Alcotest.check_raises "mux width mismatch"
    (Invalid_argument "Expr.mux: branch widths differ (8 vs 9)") (fun () ->
      ignore (Expr.mux x x (Expr.var ~width:9 1)))

let test_eval () =
  let e =
    Expr.mux
      (Expr.binop Expr.Eq (Expr.var ~width:4 0) (c ~w:4 3))
      (Expr.binop Expr.Add (Expr.var ~width:8 1) (c ~w:8 1))
      (c ~w:9 0)
  in
  let env = env_of_list [ (0, b ~w:4 3); (1, b ~w:8 41) ] in
  Alcotest.(check int) "mux taken" 42 (eval_int ~env e);
  let env = env_of_list [ (0, b ~w:4 2); (1, b ~w:8 41) ] in
  Alcotest.(check int) "mux not taken" 0 (eval_int ~env e)

let test_eval_onehot_pattern () =
  (* C = (1 << A) & B, the pattern the simplifier rewrites; reference
     semantics first. *)
  let a = Expr.var ~width:3 0 and bvar = Expr.var ~width:8 1 in
  let shifted = Expr.binop Expr.Dshl (Expr.unop (Expr.Pad_unsigned 8) (c ~w:1 1)) a in
  let e = Expr.binop Expr.And shifted bvar in
  let env = env_of_list [ (0, b ~w:3 5); (1, b ~w:8 0xFF) ] in
  Alcotest.(check int) "onehot select" 0x20 (eval_int ~env e)

let test_vars_and_subst () =
  let e =
    Expr.binop Expr.Add
      (Expr.binop Expr.Xor (Expr.var ~width:8 3) (Expr.var ~width:8 7))
      (Expr.var ~width:8 3)
  in
  Alcotest.(check (list int)) "vars dedup sorted" [ 3; 7 ] (Expr.vars e);
  Alcotest.(check bool) "depends_on" true (Expr.depends_on e 7);
  Alcotest.(check bool) "not depends_on" false (Expr.depends_on e 4);
  let e' = Expr.map_vars (fun ~width v -> Expr.var ~width (v + 100)) e in
  Alcotest.(check (list int)) "vars after subst" [ 103; 107 ] (Expr.vars e');
  Alcotest.check_raises "subst wrong width"
    (Invalid_argument "Expr.map_vars: replacement width 9 <> 8") (fun () ->
      ignore (Expr.map_vars (fun ~width:_ _ -> Expr.var ~width:9 0) e))

let test_size_cost () =
  let x = Expr.var ~width:8 0 in
  Alcotest.(check int) "var is free" 0 (Expr.size x);
  let e = Expr.binop Expr.Add x (Expr.unop Expr.Not x) in
  Alcotest.(check int) "size counts ops" 2 (Expr.size e);
  let wide = Expr.binop Expr.Add (Expr.var ~width:200 0) (Expr.var ~width:200 1) in
  Alcotest.(check bool) "wide ops cost more" true (Expr.cost wide > Expr.cost e);
  let divide = Expr.binop Expr.Div x x in
  Alcotest.(check bool) "division costs more" true (Expr.cost divide > Expr.cost e)

let test_equal () =
  let x () = Expr.binop Expr.Add (Expr.var ~width:8 0) (c ~w:8 1) in
  Alcotest.(check bool) "structural equal" true (Expr.equal (x ()) (x ()));
  Alcotest.(check bool) "different const" false
    (Expr.equal (x ()) (Expr.binop Expr.Add (Expr.var ~width:8 0) (c ~w:8 2)))

(* Differential: eval of every binop against Bits on random narrow values. *)
let all_binops =
  [
    Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Div_signed; Expr.Rem; Expr.Rem_signed;
    Expr.And; Expr.Or; Expr.Xor; Expr.Cat; Expr.Eq; Expr.Neq; Expr.Lt; Expr.Leq;
    Expr.Gt; Expr.Geq; Expr.Lt_signed; Expr.Leq_signed; Expr.Gt_signed; Expr.Geq_signed;
    Expr.Dshl; Expr.Dshr; Expr.Dshr_signed;
  ]

let prop_eval_matches_bits =
  QCheck.Test.make ~name:"eval matches Bits semantics" ~count:1000
    (QCheck.make
       QCheck.Gen.(
         let* w1 = int_range 1 16 in
         let* w2 = int_range 1 16 in
         let* a = int_bound ((1 lsl w1) - 1) in
         let* bv = int_bound ((1 lsl w2) - 1) in
         let* opi = int_bound (List.length all_binops - 1) in
         return (w1, a, w2, bv, opi)))
    (fun (w1, a, w2, bv, opi) ->
      let op = List.nth all_binops opi in
      let x = b ~w:w1 a and y = b ~w:w2 bv in
      let e = Expr.binop op (Expr.var ~width:w1 0) (Expr.var ~width:w2 1) in
      let env = env_of_list [ (0, x); (1, y) ] in
      Bits.equal (Expr.eval env e) (Expr.eval_binop op x y))

let () =
  Alcotest.run "expr"
    [
      ( "unit",
        [
          Alcotest.test_case "width rules" `Quick test_width_rules;
          Alcotest.test_case "constructor checks" `Quick test_constructor_checks;
          Alcotest.test_case "eval" `Quick test_eval;
          Alcotest.test_case "one-hot pattern" `Quick test_eval_onehot_pattern;
          Alcotest.test_case "vars/subst" `Quick test_vars_and_subst;
          Alcotest.test_case "size/cost" `Quick test_size_cost;
          Alcotest.test_case "equal" `Quick test_equal;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_eval_matches_bits ]);
    ]
