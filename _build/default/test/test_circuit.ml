(* Circuit graph and the reference interpreter. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit

let b ~w n = Bits.of_int ~width:w n

(* An 8-bit counter with enable and synchronous reset. *)
let counter_circuit () =
  let c = Circuit.create ~name:"counter" () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let rst = Circuit.add_input c ~name:"rst" ~width:1 in
  let count =
    Circuit.add_register c ~name:"count" ~width:8 ~init:(Bits.zero 8)
      ~reset:(rst.Circuit.id, Bits.zero 8) ()
  in
  let count_read = Expr.var ~width:8 count.Circuit.read in
  let plus1 =
    Circuit.add_logic c ~name:"plus1"
      (Expr.unop (Expr.Extract (7, 0)) (Expr.binop Expr.Add count_read (Expr.of_int ~width:8 1)))
  in
  let next =
    Expr.mux (Expr.var ~width:1 en.Circuit.id) (Expr.var ~width:8 plus1.Circuit.id) count_read
  in
  Circuit.set_next c count next;
  Circuit.mark_output c count.Circuit.read;
  (c, en.Circuit.id, rst.Circuit.id, count.Circuit.read)

let test_counter_semantics () =
  let c, en, rst, count = counter_circuit () in
  Circuit.validate c;
  let r = Reference.create c in
  Reference.poke r en (b ~w:1 1);
  Reference.run r 5;
  Alcotest.(check int) "counts to 5" 5 (Bits.to_int (Reference.peek r count));
  Reference.poke r en (b ~w:1 0);
  Reference.run r 3;
  Alcotest.(check int) "holds" 5 (Bits.to_int (Reference.peek r count));
  Reference.poke r rst (b ~w:1 1);
  Reference.step r;
  Alcotest.(check int) "resets" 0 (Bits.to_int (Reference.peek r count));
  Reference.poke r rst (b ~w:1 0);
  Reference.poke r en (b ~w:1 1);
  Reference.run r 2;
  Alcotest.(check int) "counts again" 2 (Bits.to_int (Reference.peek r count))

let test_reset_slow_path_equivalent () =
  (* Moving the reset to the slow path must not change behaviour. *)
  let c, en, rst, count = counter_circuit () in
  let reg = List.hd (Circuit.registers c) in
  (match reg.Circuit.reset with
   | Some r0 ->
     r0.Circuit.slow_path <- true;
     (* Strip the reset mux that [set_next] added. *)
     (match (Circuit.node c reg.Circuit.next).Circuit.expr with
      | Some { Expr.desc = Expr.Mux (_, _, e); _ } -> Circuit.set_expr c reg.Circuit.next e
      | Some _ | None -> Alcotest.fail "expected reset mux")
   | None -> Alcotest.fail "register has no reset");
  Circuit.validate c;
  let r = Reference.create c in
  Reference.poke r en (b ~w:1 1);
  Reference.run r 4;
  Alcotest.(check int) "counts" 4 (Bits.to_int (Reference.peek r count));
  Reference.poke r rst (b ~w:1 1);
  Reference.step r;
  Alcotest.(check int) "slow-path reset applies" 0 (Bits.to_int (Reference.peek r count));
  Reference.poke r rst (b ~w:1 0);
  Reference.step r;
  Alcotest.(check int) "resumes" 1 (Bits.to_int (Reference.peek r count))

let test_memory_semantics () =
  let c = Circuit.create ~name:"memtest" () in
  let waddr = Circuit.add_input c ~name:"waddr" ~width:4 in
  let wdata = Circuit.add_input c ~name:"wdata" ~width:8 in
  let wen = Circuit.add_input c ~name:"wen" ~width:1 in
  let raddr = Circuit.add_input c ~name:"raddr" ~width:4 in
  let mem = Circuit.add_memory c ~name:"m" ~width:8 ~depth:16 in
  let rdata = Circuit.add_read_port c ~mem ~name:"rdata" ~addr:raddr.Circuit.id () in
  Circuit.add_write_port c ~mem ~addr:waddr.Circuit.id ~data:wdata.Circuit.id
    ~en:wen.Circuit.id;
  Circuit.mark_output c rdata.Circuit.id;
  Circuit.validate c;
  let r = Reference.create c in
  Reference.poke r waddr.Circuit.id (b ~w:4 3);
  Reference.poke r wdata.Circuit.id (b ~w:8 0xAB);
  Reference.poke r wen.Circuit.id (b ~w:1 1);
  Reference.poke r raddr.Circuit.id (b ~w:4 3);
  Reference.step r;
  (* The write commits at the end of the cycle; the read saw the old value. *)
  Alcotest.(check int) "read before write" 0 (Bits.to_int (Reference.peek r rdata.Circuit.id));
  Reference.poke r wen.Circuit.id (b ~w:1 0);
  Reference.step r;
  Alcotest.(check int) "read after write" 0xAB
    (Bits.to_int (Reference.peek r rdata.Circuit.id));
  Alcotest.(check int) "read_mem" 0xAB (Bits.to_int (Reference.read_mem r mem 3))

let test_combinational_cycle_detected () =
  let c = Circuit.create () in
  let a = Circuit.add_logic c ~name:"a" (Expr.of_int ~width:1 0) in
  let bnode = Circuit.add_logic c ~name:"b" (Expr.var ~width:1 a.Circuit.id) in
  Circuit.set_expr c a.Circuit.id (Expr.var ~width:1 bnode.Circuit.id);
  Alcotest.(check bool) "cycle raises" true
    (match Circuit.eval_order c with
     | exception Circuit.Combinational_cycle _ -> true
     | _ -> false)

let test_validate_catches_width () =
  let c = Circuit.create () in
  let a = Circuit.add_logic c ~name:"a" (Expr.of_int ~width:4 3) in
  Alcotest.check_raises "set_expr width check"
    (Invalid_argument "Circuit.set_expr: node \"a\" has width 4, expression 5") (fun () ->
      Circuit.set_expr c a.Circuit.id (Expr.of_int ~width:5 3))

let test_stats () =
  let c, _, _, _ = counter_circuit () in
  let s = Circuit.stats c in
  (* en, rst, count(read+next), plus1 = 5 nodes. *)
  Alcotest.(check int) "nodes" 5 s.Circuit.ir_nodes;
  Alcotest.(check int) "registers" 1 s.Circuit.registers_count;
  Alcotest.(check bool) "edges counted" true (s.Circuit.ir_edges > 4)

let test_replace_uses_and_delete () =
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let alias = Circuit.add_logic c ~name:"alias" (Expr.var ~width:8 x.Circuit.id) in
  let user =
    Circuit.add_logic c ~name:"user"
      (Expr.unop Expr.Not (Expr.var ~width:8 alias.Circuit.id))
  in
  Circuit.mark_output c user.Circuit.id;
  Circuit.replace_uses c ~of_:alias.Circuit.id ~with_:(Expr.var ~width:8 x.Circuit.id);
  Circuit.delete_node c alias.Circuit.id;
  Circuit.validate c;
  Alcotest.(check int) "node gone" 2 (Circuit.node_count c);
  let map = Circuit.compact c in
  Circuit.validate c;
  Alcotest.(check int) "compacted ids dense" 2 (Circuit.max_id c);
  Alcotest.(check int) "deleted maps to -1" (-1) map.(alias.Circuit.id)

let test_compact_preserves_semantics () =
  let st = Random.State.make [| 42 |] in
  for _ = 1 to 10 do
    let c = Rand_circuit.generate st Rand_circuit.default_config in
    let stim = Rand_circuit.random_stimulus st c ~cycles:20 in
    let observe = List.map (fun n -> n.Circuit.id) (Circuit.outputs c) in
    let r1 = Reference.create c in
    let before =
      Array.map
        (fun pokes ->
          List.iter (fun (id, v) -> Reference.poke r1 id v) pokes;
          Reference.step r1;
          List.map (Reference.peek r1) observe)
        stim
    in
    let map = Circuit.compact c in
    Circuit.validate c;
    let r2 = Reference.create c in
    let after =
      Array.map
        (fun pokes ->
          List.iter (fun (id, v) -> Reference.poke r2 map.(id) v) pokes;
          Reference.step r2;
          List.map (fun id -> Reference.peek r2 map.(id)) observe)
        stim
    in
    Alcotest.(check bool) "same trace" true
      (Array.for_all2 (fun xs ys -> List.equal Bits.equal xs ys) before after)
  done

let test_random_circuits_valid () =
  let st = Random.State.make [| 7 |] in
  for i = 1 to 25 do
    let cfg =
      {
        Rand_circuit.default_config with
        Rand_circuit.logic_nodes = 10 + (i * 5);
        max_width = 1 + (i * 7 mod 90);
      }
    in
    let c = Rand_circuit.generate st cfg in
    Circuit.validate c
  done

let () =
  Alcotest.run "circuit"
    [
      ( "semantics",
        [
          Alcotest.test_case "counter" `Quick test_counter_semantics;
          Alcotest.test_case "reset slow path" `Quick test_reset_slow_path_equivalent;
          Alcotest.test_case "memory" `Quick test_memory_semantics;
        ] );
      ( "structure",
        [
          Alcotest.test_case "cycle detection" `Quick test_combinational_cycle_detected;
          Alcotest.test_case "width validation" `Quick test_validate_catches_width;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "replace/delete/compact" `Quick test_replace_uses_and_delete;
          Alcotest.test_case "compact preserves semantics" `Quick
            test_compact_preserves_semantics;
          Alcotest.test_case "random circuits validate" `Quick test_random_circuits_valid;
        ] );
    ]
