(* The Gsim facade: presets, instantiate, id_map semantics, FIRRTL loading,
   and cross-preset trace equivalence on a nontrivial design. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Pipeline = Gsim_passes.Pipeline
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Programs = Gsim_designs.Programs
module Gsim = Gsim_core.Gsim

let firrtl_src =
  {|
circuit Pipe :
  module Pipe :
    input clock : Clock
    input d : UInt<16>
    input en : UInt<1>
    output o : UInt<16>

    reg s1 : UInt<16>, clock
    reg s2 : UInt<16>, clock
    when en :
      s1 <= d
      s2 <= s1
    o <= xor(s2, s1)
|}

let test_presets_distinct () =
  let names = List.map (fun c -> c.Gsim.config_name) Gsim.all_presets in
  Alcotest.(check int) "eight presets" 8 (List.length names);
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_all_presets_agree () =
  let circuit, _ = Gsim.load_firrtl_string firrtl_src in
  let node name = (Option.get (Circuit.find_node circuit name)).Circuit.id in
  let st = Random.State.make [| 5 |] in
  let stimulus =
    Array.init 40 (fun _ ->
        [
          (node "d", Bits.random st ~width:16);
          (node "en", Bits.of_int ~width:1 (Random.State.int st 2));
        ])
  in
  let observe = [ node "s1"; node "s2" ] in
  let expected = ref None in
  List.iter
    (fun config ->
      let compiled = Gsim.instantiate config circuit in
      let trace = Sim.trace compiled.Gsim.sim ~observe ~stimulus in
      (match !expected with
       | None -> expected := Some trace
       | Some e ->
         Alcotest.(check bool)
           (config.Gsim.config_name ^ " agrees")
           true (Sim.equal_traces e trace));
      compiled.Gsim.destroy ())
    Gsim.all_presets

let test_instantiate_compact_map () =
  let circuit, _ = Gsim.load_firrtl_string firrtl_src in
  let node name = (Option.get (Circuit.find_node circuit name)).Circuit.id in
  let compiled = Gsim.instantiate ~compact:true Gsim.gsim circuit in
  let mapped = compiled.Gsim.id_map.(node "o") in
  Alcotest.(check bool) "output survives compaction" true (mapped >= 0);
  ignore (compiled.Gsim.sim.Sim.peek mapped);
  compiled.Gsim.destroy ()

let test_opt_outcomes_reported () =
  let circuit, _ = Gsim.load_firrtl_string firrtl_src in
  let compiled = Gsim.instantiate Gsim.gsim circuit in
  Alcotest.(check bool) "outcomes nonempty at O3" true (compiled.Gsim.outcomes <> []);
  Alcotest.(check bool) "supernodes reported" true (compiled.Gsim.supernodes > 0);
  compiled.Gsim.destroy ()

let test_gsim_beats_fullcycle_on_idle_design () =
  (* A design that goes quiet must be much cheaper on the gsim preset. *)
  let core = Stu_core.build () in
  let run config =
    let compiled = Gsim.instantiate config core.Stu_core.circuit in
    let sim = compiled.Gsim.sim in
    Designs.load_program sim core.Stu_core.h (Programs.quick ());
    ignore (Designs.run_program sim core.Stu_core.h);
    Counters.clear (sim.Sim.counters ());
    Designs.run_cycles sim 1000;
    let evals = (sim.Sim.counters ()).Counters.evals in
    compiled.Gsim.destroy ();
    evals
  in
  let full = run (Gsim.verilator ()) in
  let gsim = run Gsim.gsim in
  Alcotest.(check bool)
    (Printf.sprintf "halted core evals: gsim %d << full-cycle %d" gsim full)
    true
    (gsim = 0 && full > 1000)

let test_load_firrtl_file () =
  let path = Filename.temp_file "gsim_test" ".fir" in
  let oc = open_out path in
  output_string oc firrtl_src;
  close_out oc;
  let circuit, halt = Gsim.load_firrtl_file path in
  Sys.remove path;
  Alcotest.(check bool) "loaded" true (Circuit.node_count circuit > 0);
  Alcotest.(check bool) "no halt" true (halt = None)

let () =
  Alcotest.run "gsim_facade"
    [
      ( "facade",
        [
          Alcotest.test_case "presets distinct" `Quick test_presets_distinct;
          Alcotest.test_case "all presets agree" `Quick test_all_presets_agree;
          Alcotest.test_case "compact id map" `Quick test_instantiate_compact_map;
          Alcotest.test_case "outcomes reported" `Quick test_opt_outcomes_reported;
          Alcotest.test_case "idle design goes quiet" `Quick
            test_gsim_beats_fullcycle_on_idle_design;
          Alcotest.test_case "load file" `Quick test_load_firrtl_file;
        ] );
    ]
