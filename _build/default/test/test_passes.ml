(* Optimization passes: each pass and each pipeline level must preserve
   simulation traces exactly; individual passes must perform the rewrites
   the paper describes. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Activity = Gsim_engine.Activity
module Pass = Gsim_passes.Pass
module Alias = Gsim_passes.Alias
module Dce = Gsim_passes.Dce
module Simplify = Gsim_passes.Simplify
module Inline = Gsim_passes.Inline
module Reset_opt = Gsim_passes.Reset_opt
module Bitsplit = Gsim_passes.Bitsplit
module Pipeline = Gsim_passes.Pipeline

let b ~w n = Bits.of_int ~width:w n

(* ------------------------------------------------------------------ *)
(* Unit tests per pass                                                 *)
(* ------------------------------------------------------------------ *)

let test_alias_elimination () =
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let a1 = Circuit.add_logic c ~name:"a1" (Expr.var ~width:8 x.Circuit.id) in
  let a2 = Circuit.add_logic c ~name:"a2" (Expr.var ~width:8 a1.Circuit.id) in
  let out =
    Circuit.add_logic c ~name:"out" (Expr.unop Expr.Not (Expr.var ~width:8 a2.Circuit.id))
  in
  Circuit.mark_output c out.Circuit.id;
  let n = Alias.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check int) "two aliases removed" 2 n;
  Alcotest.(check int) "nodes remaining" 2 (Circuit.node_count c);
  (match (Circuit.node c out.Circuit.id).Circuit.expr with
   | Some e -> Alcotest.(check (list int)) "chain collapsed" [ x.Circuit.id ] (Expr.vars e)
   | None -> Alcotest.fail "missing expr")

let test_dce_unused_register () =
  (* A self-updating register nobody reads must disappear (paper Fig. 2,
     "unused registers"). *)
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:4 in
  let dead = Circuit.add_register c ~name:"dead" ~width:4 ~init:(Bits.zero 4) () in
  Circuit.set_next c dead
    (Expr.unop (Expr.Extract (3, 0))
       (Expr.binop Expr.Add (Expr.var ~width:4 dead.Circuit.read) (Expr.of_int ~width:4 1)));
  let live = Circuit.add_register c ~name:"live" ~width:4 ~init:(Bits.zero 4) () in
  Circuit.set_next c live (Expr.var ~width:4 x.Circuit.id);
  Circuit.mark_output c live.Circuit.read;
  let _ = Dce.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check int) "dead register gone" 1 (List.length (Circuit.registers c));
  Alcotest.(check bool) "live register kept" true
    (List.exists (fun r -> r.Circuit.reg_name = "live") (Circuit.registers c))

let test_dce_keeps_memory_machinery () =
  let c = Circuit.create () in
  let addr = Circuit.add_input c ~name:"addr" ~width:4 in
  let data = Circuit.add_input c ~name:"data" ~width:8 in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let mem = Circuit.add_memory c ~name:"m" ~width:8 ~depth:16 in
  let rdata = Circuit.add_read_port c ~mem ~name:"rdata" ~addr:addr.Circuit.id () in
  Circuit.add_write_port c ~mem ~addr:addr.Circuit.id ~data:data.Circuit.id ~en:en.Circuit.id;
  Circuit.mark_output c rdata.Circuit.id;
  let _ = Dce.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "write port kept" true
    ((Circuit.memory c mem).Circuit.write_ports <> [])

let test_dce_drops_unread_memory_writes () =
  let c = Circuit.create () in
  let addr = Circuit.add_input c ~name:"addr" ~width:4 in
  let data = Circuit.add_input c ~name:"data" ~width:8 in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let mem = Circuit.add_memory c ~name:"m" ~width:8 ~depth:16 in
  Circuit.add_write_port c ~mem ~addr:addr.Circuit.id ~data:data.Circuit.id ~en:en.Circuit.id;
  let keep = Circuit.add_logic c ~name:"keep" (Expr.var ~width:4 addr.Circuit.id) in
  Circuit.mark_output c keep.Circuit.id;
  let _ = Dce.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "write ports dropped" true
    ((Circuit.memory c mem).Circuit.write_ports = [])

let test_simplify_constants () =
  let cases =
    [
      ( "and zero",
        Expr.binop Expr.And (Expr.var ~width:8 0) (Expr.of_int ~width:8 0),
        fun e -> match e.Expr.desc with Expr.Const bv -> Bits.is_zero bv | _ -> false );
      ( "add zero becomes pad",
        Expr.binop Expr.Add (Expr.var ~width:8 0) (Expr.of_int ~width:8 0),
        fun e -> Expr.width e = 9 && Expr.size e <= 1
                 && (match e.Expr.desc with Expr.Binop _ -> false | _ -> true) );
      ( "const fold",
        Expr.binop Expr.Mul (Expr.of_int ~width:8 7) (Expr.of_int ~width:8 6),
        fun e -> match e.Expr.desc with Expr.Const bv -> Bits.to_int bv = 42 | _ -> false );
      ( "mux const selector",
        Expr.mux (Expr.of_int ~width:1 1) (Expr.var ~width:8 0) (Expr.var ~width:8 1),
        fun e -> match e.Expr.desc with Expr.Var 0 -> true | _ -> false );
      ( "mux same branches",
        Expr.mux (Expr.var ~width:1 2) (Expr.var ~width:8 0) (Expr.var ~width:8 0),
        fun e -> match e.Expr.desc with Expr.Var 0 -> true | _ -> false );
      ( "double not",
        Expr.unop Expr.Not (Expr.unop Expr.Not (Expr.var ~width:8 0)),
        fun e -> match e.Expr.desc with Expr.Var 0 -> true | _ -> false );
      ( "extract of cat lo",
        Expr.unop (Expr.Extract (3, 0))
          (Expr.binop Expr.Cat (Expr.var ~width:8 0) (Expr.var ~width:8 1)),
        fun e -> Expr.vars e = [ 1 ] );
      ( "extract of cat hi",
        Expr.unop (Expr.Extract (15, 8))
          (Expr.binop Expr.Cat (Expr.var ~width:8 0) (Expr.var ~width:8 1)),
        fun e -> Expr.vars e = [ 0 ] );
      ( "neq zero is orr",
        Expr.binop Expr.Neq (Expr.var ~width:8 0) (Expr.of_int ~width:8 0),
        fun e -> match e.Expr.desc with Expr.Unop (Expr.Reduce_or, _) -> true | _ -> false );
    ]
  in
  List.iter
    (fun (name, e, ok) ->
      let e' = Simplify.rewrite e in
      Alcotest.(check int) (name ^ " width preserved") (Expr.width e) (Expr.width e');
      Alcotest.(check bool) name true (ok e'))
    cases

let test_simplify_one_hot () =
  (* (1 << a) & 0x10  ==>  selects a == 4. *)
  let a = Expr.var ~width:3 0 in
  let one = Expr.unop (Expr.Pad_unsigned 8) (Expr.of_int ~width:1 1) in
  let e = Expr.binop Expr.And (Expr.binop Expr.Dshl one a) (Expr.of_int ~width:8 0x10) in
  let e' = Simplify.rewrite e in
  Alcotest.(check int) "width preserved" (Expr.width e) (Expr.width e');
  (match e'.Expr.desc with
   | Expr.Mux ({ Expr.desc = Expr.Binop (Expr.Eq, _, _); _ }, _, _) -> ()
   | _ -> Alcotest.failf "expected mux-of-eq, got %s" (Format.asprintf "%a" Expr.pp e'));
  (* Semantics preserved for every selector value. *)
  for v = 0 to 7 do
    let env _ = b ~w:3 v in
    Alcotest.(check bool)
      (Printf.sprintf "value %d" v)
      true
      (Bits.equal (Expr.eval env e) (Expr.eval env e'))
  done

let test_reset_slow_path () =
  let c = Circuit.create () in
  let rst = Circuit.add_input c ~name:"rst" ~width:1 in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let r =
    Circuit.add_register c ~name:"r" ~width:8 ~init:(Bits.zero 8)
      ~reset:(rst.Circuit.id, Bits.zero 8) ()
  in
  Circuit.set_next c r (Expr.var ~width:8 x.Circuit.id);
  Circuit.mark_output c r.Circuit.read;
  let n = Reset_opt.pass.Pass.run c in
  Alcotest.(check int) "one register optimized" 1 n;
  (match (List.hd (Circuit.registers c)).Circuit.reset with
   | Some rstr -> Alcotest.(check bool) "slow path" true rstr.Circuit.slow_path
   | None -> Alcotest.fail "reset lost");
  (match (Circuit.node c r.Circuit.next).Circuit.expr with
   | Some { Expr.desc = Expr.Var v; _ } ->
     Alcotest.(check int) "mux stripped" x.Circuit.id v
   | _ -> Alcotest.fail "next should be bare expression");
  Alcotest.(check int) "idempotent" 0 (Reset_opt.pass.Pass.run c)

let test_inline_decision () =
  Alcotest.(check bool) "cheap multi-ref inlines" false
    (Inline.should_extract ~cost:1 ~refs:3);
  Alcotest.(check bool) "expensive multi-ref extracts" true
    (Inline.should_extract ~cost:16 ~refs:2);
  Alcotest.(check bool) "single ref inlines" false (Inline.should_extract ~cost:50 ~refs:1)

let test_inline_single_use () =
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let mid =
    Circuit.add_logic c ~name:"mid"
      (Expr.binop Expr.Xor (Expr.var ~width:8 x.Circuit.id) (Expr.of_int ~width:8 0x55))
  in
  let out =
    Circuit.add_logic c ~name:"out" (Expr.unop Expr.Not (Expr.var ~width:8 mid.Circuit.id))
  in
  Circuit.mark_output c out.Circuit.id;
  let n = Inline.inline_pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "inlined" true (n > 0);
  Alcotest.(check int) "mid dissolved" 2 (Circuit.node_count c)

let test_extract_cse () =
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:16 in
  (* The same expensive expression in two consumers. *)
  let heavy () =
    Expr.binop Expr.Mul
      (Expr.binop Expr.Mul (Expr.var ~width:16 x.Circuit.id) (Expr.var ~width:16 x.Circuit.id)
       |> Expr.unop (Expr.Extract (15, 0)))
      (Expr.var ~width:16 x.Circuit.id)
    |> Expr.unop (Expr.Extract (15, 0))
  in
  let o1 = Circuit.add_logic c ~name:"o1" (Expr.unop Expr.Not (heavy ())) in
  let o2 =
    Circuit.add_logic c ~name:"o2"
      (Expr.binop Expr.Xor (heavy ()) (Expr.of_int ~width:16 1)
       |> Expr.unop (Expr.Extract (15, 0)))
  in
  Circuit.mark_output c o1.Circuit.id;
  Circuit.mark_output c o2.Circuit.id;
  let n = Inline.extract_pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "extracted" true (n > 0);
  Alcotest.(check bool) "cse node exists" true
    (Circuit.fold_nodes c ~init:false ~f:(fun acc nd ->
         acc || String.length nd.Circuit.name >= 3 && String.sub nd.Circuit.name 0 3 = "cse"))

let test_bitsplit_basic () =
  let c = Circuit.create () in
  let a = Circuit.add_input c ~name:"a" ~width:8 in
  let bx = Circuit.add_input c ~name:"b" ~width:8 in
  let cat =
    Circuit.add_logic c ~name:"cat"
      (Expr.binop Expr.Cat
         (Expr.unop Expr.Not (Expr.var ~width:8 a.Circuit.id))
         (Expr.unop Expr.Not (Expr.var ~width:8 bx.Circuit.id)))
  in
  (* One consumer reads only the low half. *)
  let lo_user =
    Circuit.add_logic c ~name:"lo_user"
      (Expr.unop (Expr.Extract (7, 0)) (Expr.var ~width:16 cat.Circuit.id))
  in
  let whole_user =
    Circuit.add_logic c ~name:"whole_user"
      (Expr.unop Expr.Not (Expr.var ~width:16 cat.Circuit.id))
  in
  Circuit.mark_output c lo_user.Circuit.id;
  Circuit.mark_output c whole_user.Circuit.id;
  let n = Bitsplit.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "split happened" true (n > 0);
  (* lo_user must now depend only on the low part (which depends on b). *)
  (match (Circuit.node c lo_user.Circuit.id).Circuit.expr with
   | Some e ->
     let deps = Expr.vars e in
     Alcotest.(check int) "single dep" 1 (List.length deps);
     Alcotest.(check bool) "not the cat node" true (deps <> [ cat.Circuit.id ])
   | None -> Alcotest.fail "missing expr")

let test_bitsplit_reduces_activity () =
  (* Two counters packed into one word: a fast low half and a frozen high
     half; a consumer of the high half should stop evaluating after the
     split.  This is Figure 4's scenario. *)
  let build () =
    let c = Circuit.create () in
    let en = Circuit.add_input c ~name:"en" ~width:1 in
    let fast = Circuit.add_register c ~name:"fast" ~width:8 ~init:(Bits.zero 8) () in
    Circuit.set_next c fast
      (Expr.mux (Expr.var ~width:1 en.Circuit.id)
         (Expr.unop (Expr.Extract (7, 0))
            (Expr.binop Expr.Add (Expr.var ~width:8 fast.Circuit.read) (Expr.of_int ~width:8 1)))
         (Expr.var ~width:8 fast.Circuit.read));
    let frozen = Circuit.add_register c ~name:"frozen" ~width:8 ~init:(b ~w:8 0x7F) () in
    Circuit.set_next c frozen (Expr.var ~width:8 frozen.Circuit.read);
    let packed =
      Circuit.add_logic c ~name:"packed"
        (Expr.binop Expr.Cat
           (Expr.var ~width:8 frozen.Circuit.read)
           (Expr.var ~width:8 fast.Circuit.read))
    in
    (* An expensive consumer of the frozen half only. *)
    let hi_user =
      Circuit.add_logic c ~name:"hi_user"
        (Expr.unop Expr.Reduce_xor
           (Expr.unop (Expr.Extract (15, 8)) (Expr.var ~width:16 packed.Circuit.id)))
    in
    let lo_user =
      Circuit.add_logic c ~name:"lo_user"
        (Expr.unop Expr.Reduce_xor
           (Expr.unop (Expr.Extract (7, 0)) (Expr.var ~width:16 packed.Circuit.id)))
    in
    Circuit.mark_output c hi_user.Circuit.id;
    Circuit.mark_output c lo_user.Circuit.id;
    Circuit.mark_output c packed.Circuit.id;
    (c, en.Circuit.id)
  in
  let run_evals ~split =
    let c, en = build () in
    if split then begin
      let n = Bitsplit.pass.Pass.run c in
      Alcotest.(check bool) "split performed" true (n > 0)
    end;
    Circuit.validate c;
    let p = Partition.singleton c in
    let t = Activity.create c p in
    Activity.poke t en (b ~w:1 1);
    for _ = 1 to 200 do
      Activity.step t
    done;
    (Activity.counters t).Counters.evals
  in
  let before = run_evals ~split:false in
  let after = run_evals ~split:true in
  Alcotest.(check bool)
    (Printf.sprintf "fewer evals after split (%d -> %d)" before after)
    true (after < before)

(* ------------------------------------------------------------------ *)
(* Soundness: every pipeline level preserves traces                     *)
(* ------------------------------------------------------------------ *)

let trace_reference c ~stimulus ~observe =
  let sim = Sim.of_reference (Reference.create c) in
  Sim.trace sim ~observe ~stimulus

let check_level level seed =
  let st = Random.State.make [| seed; 1234 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let stimulus = Rand_circuit.random_stimulus st c ~cycles:20 in
  let observe = List.map (fun n -> n.Circuit.id) (Circuit.outputs c) in
  let expected = trace_reference c ~stimulus ~observe in
  ignore (Pipeline.optimize ~level c);
  let got = trace_reference c ~stimulus ~observe in
  if not (Sim.equal_traces expected got) then
    Alcotest.failf "level %s changed behaviour (seed %d)"
      (Pipeline.level_to_string level) seed

let test_pipeline_soundness () =
  List.iter
    (fun level ->
      for seed = 1 to 8 do
        check_level level seed
      done)
    [ Pipeline.O1; Pipeline.O2; Pipeline.O3 ]

let prop_pipeline_sound =
  QCheck.Test.make ~name:"O3 preserves traces" ~count:20
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 1000000))
    (fun seed ->
      check_level Pipeline.O3 seed;
      true)

let test_pipeline_reduces_nodes () =
  let st = Random.State.make [| 5; 6; 7 |] in
  let c =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 150 }
  in
  let before = (Circuit.stats c).Circuit.ir_nodes in
  ignore (Pipeline.optimize ~level:Pipeline.O2 c);
  let after = (Circuit.stats c).Circuit.ir_nodes in
  Alcotest.(check bool)
    (Printf.sprintf "nodes reduced (%d -> %d)" before after)
    true (after <= before)

let test_optimized_engines_agree () =
  (* After O3, every engine still matches the (optimized) reference and the
     unoptimized original. *)
  let st = Random.State.make [| 31337 |] in
  for _ = 1 to 5 do
    let c = Rand_circuit.generate st Rand_circuit.default_config in
    let stimulus = Rand_circuit.random_stimulus st c ~cycles:20 in
    let observe = List.map (fun n -> n.Circuit.id) (Circuit.outputs c) in
    let expected = trace_reference c ~stimulus ~observe in
    ignore (Pipeline.optimize ~level:Pipeline.O3 c);
    let p = Partition.gsim c ~max_size:24 in
    let sim = Activity.sim (Activity.create c p) in
    let got = Sim.trace sim ~observe ~stimulus in
    Alcotest.(check bool) "gsim engine on optimized circuit" true
      (Sim.equal_traces expected got)
  done

let main_suites =
    [
      ( "unit",
        [
          Alcotest.test_case "alias elimination" `Quick test_alias_elimination;
          Alcotest.test_case "dce unused register" `Quick test_dce_unused_register;
          Alcotest.test_case "dce keeps memory" `Quick test_dce_keeps_memory_machinery;
          Alcotest.test_case "dce drops unread writes" `Quick
            test_dce_drops_unread_memory_writes;
          Alcotest.test_case "simplify rules" `Quick test_simplify_constants;
          Alcotest.test_case "one-hot pattern" `Quick test_simplify_one_hot;
          Alcotest.test_case "reset slow path" `Quick test_reset_slow_path;
          Alcotest.test_case "inline decision" `Quick test_inline_decision;
          Alcotest.test_case "inline single use" `Quick test_inline_single_use;
          Alcotest.test_case "extract cse" `Quick test_extract_cse;
          Alcotest.test_case "bitsplit basic" `Quick test_bitsplit_basic;
          Alcotest.test_case "bitsplit reduces activity" `Quick
            test_bitsplit_reduces_activity;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "pipeline levels" `Quick test_pipeline_soundness;
          Alcotest.test_case "node reduction" `Quick test_pipeline_reduces_nodes;
          Alcotest.test_case "optimized engines agree" `Quick test_optimized_engines_agree;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_pipeline_sound ]);
    ]

(* Appended coverage: pipeline idempotence and outcome reporting. *)

let test_pipeline_idempotent () =
  let st = Random.State.make [| 777 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  ignore (Pipeline.optimize ~level:Pipeline.O3 c);
  let nodes_after_first = (Circuit.stats c).Circuit.ir_nodes in
  let outcomes = Pipeline.optimize ~level:Pipeline.O2 c in
  let rewrites = List.fold_left (fun a o -> a + o.Pass.rewrites) 0 outcomes in
  Alcotest.(check int) "no further node changes" nodes_after_first
    (Circuit.stats c).Circuit.ir_nodes;
  Alcotest.(check bool)
    (Printf.sprintf "near-fixpoint on second run (%d rewrites)" rewrites)
    true (rewrites <= 2)

let test_outcomes_accounting () =
  let st = Random.State.make [| 778 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let before = Circuit.node_count c in
  let outcomes = Pipeline.optimize ~level:Pipeline.O2 c in
  Alcotest.(check bool) "every outcome names its pass" true
    (List.for_all (fun o -> o.Pass.outcome_pass <> "") outcomes);
  (match outcomes with
   | first :: _ -> Alcotest.(check int) "first outcome sees initial size" before first.Pass.nodes_before
   | [] -> Alcotest.fail "no outcomes");
  List.iter
    (fun o ->
      Alcotest.(check bool) "node counts consistent" true
        (o.Pass.nodes_after <= o.Pass.nodes_before + max 64 o.Pass.rewrites))
    outcomes



(* Register splitting (Fig. 4 with state). *)
let test_bitsplit_registers () =
  let c = Circuit.create () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let lo_in = Circuit.add_input c ~name:"lo_in" ~width:8 in
  (* A 16-bit register packing a frozen high half with a live low half. *)
  let r = Circuit.add_register c ~name:"packed" ~width:16 ~init:(b ~w:16 0x7F00) () in
  Circuit.set_next c r
    (Expr.binop Expr.Cat
       (Expr.unop (Expr.Extract (15, 8)) (Expr.var ~width:16 r.Circuit.read))
       (Expr.mux (Expr.var ~width:1 en.Circuit.id)
          (Expr.var ~width:8 lo_in.Circuit.id)
          (Expr.unop (Expr.Extract (7, 0)) (Expr.var ~width:16 r.Circuit.read))));
  let hi_user =
    Circuit.add_logic c ~name:"hi_user"
      (Expr.unop Expr.Reduce_xor
         (Expr.unop (Expr.Extract (15, 8)) (Expr.var ~width:16 r.Circuit.read)))
  in
  Circuit.mark_output c hi_user.Circuit.id;
  let before_regs = List.length (Circuit.registers c) in
  let st = Random.State.make [| 99 |] in
  let stimulus =
    Array.init 30 (fun i ->
        [ (en.Circuit.id, b ~w:1 (i mod 2)); (lo_in.Circuit.id, Bits.random st ~width:8) ])
  in
  let observe = [ hi_user.Circuit.id ] in
  let expected = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  let n = Bitsplit.pass.Pass.run c in
  Circuit.validate c;
  Alcotest.(check bool) "split happened" true (n > 0);
  Alcotest.(check int) "two part registers added" (before_regs + 2)
    (List.length (Circuit.registers c));
  (* hi_user now reads the frozen part register only. *)
  (match (Circuit.node c hi_user.Circuit.id).Circuit.expr with
   | Some e ->
     Alcotest.(check bool) "retargeted off the packed register" true
       (not (List.mem r.Circuit.read (Expr.vars e)))
   | None -> Alcotest.fail "missing expr");
  let got = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  Alcotest.(check bool) "trace preserved" true (Sim.equal_traces expected got);
  (* And the idle half no longer wakes its consumer. *)
  let p = Partition.singleton c in
  let t = Activity.create c p in
  Activity.poke t en.Circuit.id (b ~w:1 1);
  for _ = 1 to 100 do
    Activity.poke t lo_in.Circuit.id (Bits.random st ~width:8);
    Activity.step t
  done;
  let hi_super = p.Partition.of_node.(hi_user.Circuit.id) in
  let hits_before = (Activity.supernode_hits t).(hi_super) in
  for _ = 1 to 100 do
    Activity.poke t lo_in.Circuit.id (Bits.random st ~width:8);
    Activity.step t
  done;
  let hits_after = (Activity.supernode_hits t).(hi_super) in
  Alcotest.(check int) "hi consumer stays idle under low-half traffic" hits_before
    hits_after

let () =
  Alcotest.run "passes"
    (main_suites
     @ [
         ( "pipeline",
           [
             Alcotest.test_case "idempotent" `Quick test_pipeline_idempotent;
             Alcotest.test_case "outcome accounting" `Quick test_outcomes_accounting;
             Alcotest.test_case "bitsplit registers" `Quick test_bitsplit_registers;
           ] );
       ])
