(* C++ emitter: structure of the generated unit, mode differences, size
   accounting, and (when a C++ compiler is present) a syntax check of the
   emitted source for narrow, wide, memory and supernode designs. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Expr = Gsim_ir.Expr
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Emit = Gsim_emit.Emit
module Firrtl = Gsim_firrtl.Firrtl

let counter_circuit () =
  let c = Circuit.create ~name:"counter" () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let r = Circuit.add_register c ~name:"r" ~width:8 ~init:(Bits.zero 8) () in
  Circuit.set_next c r
    (Expr.mux (Expr.var ~width:1 en.Circuit.id)
       (Expr.unop (Expr.Extract (7, 0))
          (Expr.binop Expr.Add (Expr.var ~width:8 r.Circuit.read) (Expr.of_int ~width:8 1)))
       (Expr.var ~width:8 r.Circuit.read));
  Circuit.mark_output c r.Circuit.read;
  c

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_full_cycle_shape () =
  let r = Emit.emit ~mode:Emit.Full_cycle_mode (counter_circuit ()) in
  Alcotest.(check bool) "has eval" true (contains r.Emit.source "void eval()");
  Alcotest.(check bool) "has commit" true (contains r.Emit.source "void commit()");
  Alcotest.(check bool) "no active bits" false (contains r.Emit.source "act[");
  Alcotest.(check bool) "code accounted" true (r.Emit.code_bytes > 100);
  Alcotest.(check bool) "data accounted" true (r.Emit.data_bytes > 0)

let test_gsim_mode_shape () =
  let c = counter_circuit () in
  let p = Partition.gsim c ~max_size:8 in
  let r = Emit.emit ~mode:Emit.Gsim_mode ~partition:p c in
  Alcotest.(check bool) "packed words" true (contains r.Emit.source "actw[");
  Alcotest.(check bool) "ctz fast path" true (contains r.Emit.source "__builtin_ctzll");
  Alcotest.(check bool) "supernode fns" true (contains r.Emit.source "eval_super0")

let test_essent_mode_shape () =
  let c = counter_circuit () in
  let p = Partition.mffc c ~max_size:8 in
  let r = Emit.emit ~mode:Emit.Essent_mode ~partition:p c in
  Alcotest.(check bool) "bool active bits" true (contains r.Emit.source "bool act[");
  Alcotest.(check bool) "no packed words" false (contains r.Emit.source "actw[")

let test_slow_path_reset_emitted () =
  let src =
    {|
circuit R :
  module R :
    input clock : Clock
    input reset : UInt<1>
    input d : UInt<8>
    output o : UInt<8>

    reg r : UInt<8>, clock with : (reset => (reset, UInt<8>(0)))
    r <= d
    o <= r
|}
  in
  let { Firrtl.circuit = c; _ } = Firrtl.load_string src in
  ignore (Gsim_passes.Pipeline.optimize ~level:Gsim_passes.Pipeline.O2 c);
  let r = Emit.emit ~mode:Emit.Full_cycle_mode c in
  (* The reset must appear once, as a guarded block in commit(), not as a
     mux inside evaluation. *)
  Alcotest.(check bool) "guarded reset block" true (contains r.Emit.source "if (n")

let test_sizes_scale_with_design () =
  let small = Emit.emit (counter_circuit ()) in
  let st = Random.State.make [| 3 |] in
  let big_c =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 300 }
  in
  let big = Emit.emit big_c in
  Alcotest.(check bool) "bigger design emits more code" true
    (big.Emit.code_bytes > small.Emit.code_bytes);
  Alcotest.(check bool) "bigger design has more data" true
    (big.Emit.data_bytes > small.Emit.data_bytes)

let test_mode_of_string () =
  Alcotest.(check bool) "verilator" true (Emit.mode_of_string "verilator" = Some Emit.Full_cycle_mode);
  Alcotest.(check bool) "gsim" true (Emit.mode_of_string "gsim" = Some Emit.Gsim_mode);
  Alcotest.(check bool) "unknown" true (Emit.mode_of_string "vcs" = None)

(* --- Compile the emitted C++ when a compiler is available -------------- *)

let gxx_available =
  lazy (Sys.command "command -v g++ > /dev/null 2>&1" = 0)

let syntax_check name source =
  if Lazy.force gxx_available then begin
    let path = Filename.temp_file ("gsim_emit_" ^ name) ".cpp" in
    let oc = open_out path in
    output_string oc source;
    close_out oc;
    let rc = Sys.command (Printf.sprintf "g++ -fsyntax-only -std=c++17 %s 2>/dev/null" path) in
    Sys.remove path;
    if rc <> 0 then Alcotest.failf "%s: emitted C++ does not compile" name
  end

let test_emitted_cpp_compiles () =
  syntax_check "counter" (Emit.emit (counter_circuit ())).Emit.source;
  let c = counter_circuit () in
  let p = Partition.gsim c ~max_size:8 in
  syntax_check "counter_gsim" (Emit.emit ~mode:Emit.Gsim_mode ~partition:p c).Emit.source;
  (* A design with wide values and memories. *)
  let src =
    {|
circuit W :
  module W :
    input clock : Clock
    input a : UInt<100>
    input b : UInt<100>
    input waddr : UInt<4>
    input wen : UInt<1>
    output o : UInt<100>
    output s : UInt<1>

    mem m :
      data-type => UInt<16>
      depth => 16
      read-latency => 0
      write-latency => 1
      reader => r0
      writer => w0
    m.r0.addr <= waddr
    m.r0.en <= UInt<1>(1)
    m.r0.clk <= clock
    m.w0.addr <= waddr
    m.w0.data <= bits(a, 15, 0)
    m.w0.mask <= UInt<1>(1)
    m.w0.en <= wen
    m.w0.clk <= clock
    node t = tail(add(a, b), 1)
    o <= xor(t, a)
    s <= lt(a, b)
|}
  in
  let { Firrtl.circuit = c; _ } = Firrtl.load_string src in
  syntax_check "wide_mem" (Emit.emit c).Emit.source;
  let p = Partition.gsim c ~max_size:8 in
  syntax_check "wide_mem_gsim" (Emit.emit ~mode:Emit.Gsim_mode ~partition:p c).Emit.source

let test_stu_core_emits_and_compiles () =
  let core = Gsim_designs.Stu_core.build () in
  let c = core.Gsim_designs.Stu_core.circuit in
  ignore (Gsim_passes.Pipeline.optimize ~level:Gsim_passes.Pipeline.O3 c);
  let p = Partition.gsim c ~max_size:32 in
  let r = Emit.emit ~mode:Emit.Gsim_mode ~partition:p c in
  Alcotest.(check bool) "nontrivial unit" true (r.Emit.code_bytes > 2_000);
  syntax_check "stu_core" r.Emit.source

let () =
  Alcotest.run "emit"
    [
      ( "structure",
        [
          Alcotest.test_case "full-cycle shape" `Quick test_full_cycle_shape;
          Alcotest.test_case "gsim shape" `Quick test_gsim_mode_shape;
          Alcotest.test_case "essent shape" `Quick test_essent_mode_shape;
          Alcotest.test_case "slow-path reset" `Quick test_slow_path_reset_emitted;
          Alcotest.test_case "sizes scale" `Quick test_sizes_scale_with_design;
          Alcotest.test_case "mode_of_string" `Quick test_mode_of_string;
        ] );
      ( "cpp",
        [
          Alcotest.test_case "emitted C++ compiles" `Quick test_emitted_cpp_compiles;
          Alcotest.test_case "stu_core compiles" `Quick test_stu_core_emits_and_compiles;
        ] );
    ]
