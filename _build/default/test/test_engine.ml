(* Engines: every engine must be bit-identical to the reference interpreter
   on hand-written circuits, the counter/memory circuits, and on randomly
   generated circuits under random stimulus.  Also checks the activity
   machinery: an idle circuit stops evaluating, counters behave. *)

module Bits = Gsim_bits.Bits
module Expr = Gsim_ir.Expr
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Counters = Gsim_engine.Counters
module Full_cycle = Gsim_engine.Full_cycle
module Activity = Gsim_engine.Activity
module Parallel = Gsim_engine.Parallel
module Repcut = Gsim_engine.Repcut

let b ~w n = Bits.of_int ~width:w n

(* All engines under test, as (name, circuit -> Sim.t * cleanup). *)
let engines : (string * (Circuit.t -> Sim.t * (unit -> unit))) list =
  [
    ("full_cycle", fun c -> (Full_cycle.sim (Full_cycle.create c), fun () -> ()));
    ( "parallel2",
      fun c ->
        let t = Parallel.create ~threads:2 c in
        (Parallel.sim t, fun () -> Parallel.destroy t) );
    ( "parallel4",
      fun c ->
        let t = Parallel.create ~threads:4 c in
        (Parallel.sim t, fun () -> Parallel.destroy t) );
    ( "essent_singleton",
      fun c ->
        let p = Partition.singleton c in
        (Activity.sim ~name:"essent_singleton"
           (Activity.create ~config:Activity.essent_config c p),
         fun () -> ()) );
    ( "essent_mffc",
      fun c ->
        let p = Partition.mffc c ~max_size:12 in
        (Activity.sim ~name:"essent_mffc"
           (Activity.create ~config:Activity.essent_config c p),
         fun () -> ()) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        (Activity.sim ~name:"gsim" (Activity.create ~config:Activity.gsim_config c p),
         fun () -> ()) );
    ( "gsim_kernighan",
      fun c ->
        let p = Partition.kernighan c ~max_size:16 in
        (Activity.sim ~name:"gsim_kernighan"
           (Activity.create ~config:Activity.gsim_config c p),
         fun () -> ()) );
    ( "gsim_branch",
      fun c ->
        let p = Partition.gsim c ~max_size:24 in
        ( Activity.sim ~name:"gsim_branch"
            (Activity.create
               ~config:{ Activity.packed_exam = true; activation = Activity.Branch }
               c p),
          fun () -> () ) );
    ( "gsim_monolithic",
      fun c ->
        let p = Partition.monolithic c in
        (Activity.sim ~name:"gsim_monolithic" (Activity.create c p), fun () -> ()) );
    ( "repcut1",
      fun c ->
        let t = Repcut.create ~threads:1 c in
        (Repcut.sim t, fun () -> Repcut.destroy t) );
    ( "repcut3",
      fun c ->
        let t = Repcut.create ~threads:3 c in
        (Repcut.sim t, fun () -> Repcut.destroy t) );
  ]

let compare_with_reference ~name c ~stimulus =
  let observe = List.map (fun n -> n.Circuit.id) (Circuit.outputs c) in
  let expected = Sim.trace (Sim.of_reference (Reference.create c)) ~observe ~stimulus in
  List.iter
    (fun (ename, make) ->
      let sim, cleanup = make c in
      let got = Sim.trace sim ~observe ~stimulus in
      cleanup ();
      if not (Sim.equal_traces expected got) then
        Alcotest.failf "%s: engine %s diverges from reference" name ename)
    engines

(* --- Hand-written circuits ------------------------------------------- *)

let counter_circuit () =
  let c = Circuit.create ~name:"counter" () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let rst = Circuit.add_input c ~name:"rst" ~width:1 in
  let count =
    Circuit.add_register c ~name:"count" ~width:8 ~init:(Bits.zero 8)
      ~reset:(rst.Circuit.id, Bits.zero 8) ()
  in
  let count_read = Expr.var ~width:8 count.Circuit.read in
  let next =
    Expr.mux
      (Expr.var ~width:1 en.Circuit.id)
      (Expr.unop (Expr.Extract (7, 0))
         (Expr.binop Expr.Add count_read (Expr.of_int ~width:8 1)))
      count_read
  in
  Circuit.set_next c count next;
  Circuit.mark_output c count.Circuit.read;
  (c, en.Circuit.id, rst.Circuit.id)

let test_counter_all_engines () =
  let c, en, rst = counter_circuit () in
  let stimulus =
    Array.init 30 (fun i ->
        [ (en, b ~w:1 (if i mod 3 = 0 then 0 else 1)); (rst, b ~w:1 (if i = 17 then 1 else 0)) ])
  in
  compare_with_reference ~name:"counter" c ~stimulus

let fifo_circuit () =
  (* A 16-deep FIFO built from a memory and two pointers: checks memory
     read/write interplay under all engines. *)
  let c = Circuit.create ~name:"fifo" () in
  let push = Circuit.add_input c ~name:"push" ~width:1 in
  let pop = Circuit.add_input c ~name:"pop" ~width:1 in
  let din = Circuit.add_input c ~name:"din" ~width:8 in
  let wptr = Circuit.add_register c ~name:"wptr" ~width:4 ~init:(Bits.zero 4) () in
  let rptr = Circuit.add_register c ~name:"rptr" ~width:4 ~init:(Bits.zero 4) () in
  let bump ptr en =
    Expr.mux
      (Expr.var ~width:1 en)
      (Expr.unop (Expr.Extract (3, 0))
         (Expr.binop Expr.Add (Expr.var ~width:4 ptr) (Expr.of_int ~width:4 1)))
      (Expr.var ~width:4 ptr)
  in
  Circuit.set_next c wptr (bump wptr.Circuit.read push.Circuit.id);
  Circuit.set_next c rptr (bump rptr.Circuit.read pop.Circuit.id);
  let mem = Circuit.add_memory c ~name:"buf" ~width:8 ~depth:16 in
  let rdata =
    Circuit.add_read_port c ~mem ~name:"rdata" ~addr:rptr.Circuit.read ()
  in
  let wptr_node =
    Circuit.add_logic c ~name:"waddr" (Expr.var ~width:4 wptr.Circuit.read)
  in
  Circuit.add_write_port c ~mem ~addr:wptr_node.Circuit.id ~data:din.Circuit.id
    ~en:push.Circuit.id;
  Circuit.mark_output c rdata.Circuit.id;
  Circuit.mark_output c wptr.Circuit.read;
  Circuit.mark_output c rptr.Circuit.read;
  (c, push.Circuit.id, pop.Circuit.id, din.Circuit.id)

let test_fifo_all_engines () =
  let c, push, pop, din = fifo_circuit () in
  let st = Random.State.make [| 21 |] in
  let stimulus =
    Array.init 60 (fun i ->
        [
          (push, b ~w:1 (Random.State.int st 2));
          (pop, b ~w:1 (Random.State.int st 2));
          (din, b ~w:8 (i land 0xFF));
        ])
  in
  compare_with_reference ~name:"fifo" c ~stimulus

let wide_alu_circuit () =
  (* 100-bit datapath: exercises the boxed value path in every engine. *)
  let c = Circuit.create ~name:"wide_alu" () in
  let a = Circuit.add_input c ~name:"a" ~width:100 in
  let bi = Circuit.add_input c ~name:"b" ~width:100 in
  let sel = Circuit.add_input c ~name:"sel" ~width:2 in
  let va = Expr.var ~width:100 a.Circuit.id and vb = Expr.var ~width:100 bi.Circuit.id in
  let sum = Expr.unop (Expr.Extract (99, 0)) (Expr.binop Expr.Add va vb) in
  let prod = Expr.unop (Expr.Extract (99, 0)) (Expr.binop Expr.Mul va vb) in
  let x = Expr.binop Expr.Xor va vb in
  let pick k e rest =
    Expr.mux (Expr.binop Expr.Eq (Expr.var ~width:2 sel.Circuit.id) (Expr.of_int ~width:2 k)) e rest
  in
  let out = Circuit.add_logic c ~name:"out" (pick 0 sum (pick 1 prod x)) in
  let acc = Circuit.add_register c ~name:"acc" ~width:100 ~init:(Bits.zero 100) () in
  Circuit.set_next c acc
    (Expr.binop Expr.Xor (Expr.var ~width:100 acc.Circuit.read)
       (Expr.var ~width:100 out.Circuit.id));
  Circuit.mark_output c out.Circuit.id;
  Circuit.mark_output c acc.Circuit.read;
  (c, a.Circuit.id, bi.Circuit.id, sel.Circuit.id)

let test_wide_alu_all_engines () =
  let c, a, bi, sel = wide_alu_circuit () in
  let st = Random.State.make [| 22 |] in
  let stimulus =
    Array.init 40 (fun _ ->
        [
          (a, Bits.random st ~width:100);
          (bi, Bits.random st ~width:100);
          (sel, b ~w:2 (Random.State.int st 4));
        ])
  in
  compare_with_reference ~name:"wide_alu" c ~stimulus

(* --- Random circuits -------------------------------------------------- *)

let test_random_circuits_equivalence () =
  let st = Random.State.make [| 99 |] in
  for i = 1 to 12 do
    let cfg =
      {
        Rand_circuit.default_config with
        Rand_circuit.logic_nodes = 30 + (i * 12);
        max_width = (if i mod 3 = 0 then 120 else 40);
      }
    in
    let c = Rand_circuit.generate st cfg in
    let stimulus = Rand_circuit.random_stimulus st c ~cycles:25 in
    compare_with_reference ~name:(Printf.sprintf "random%d" i) c ~stimulus
  done

let prop_engines_agree =
  QCheck.Test.make ~name:"engines agree with reference on random circuits" ~count:15
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 100000))
    (fun seed ->
      let st = Random.State.make [| seed; 77 |] in
      let c = Rand_circuit.generate st Rand_circuit.default_config in
      let stimulus = Rand_circuit.random_stimulus st c ~cycles:15 in
      compare_with_reference ~name:(Printf.sprintf "seed%d" seed) c ~stimulus;
      true)

(* --- Activity machinery ---------------------------------------------- *)

let test_idle_circuit_stops_evaluating () =
  let c, en, rst = counter_circuit () in
  let p = Partition.gsim c ~max_size:24 in
  let t = Activity.create c p in
  Activity.poke t en (b ~w:1 0);
  Activity.poke t rst (b ~w:1 0);
  for _ = 1 to 10 do
    Activity.step t
  done;
  let evals_before = (Activity.counters t).Counters.evals in
  for _ = 1 to 100 do
    Activity.step t
  done;
  let evals_after = (Activity.counters t).Counters.evals in
  Alcotest.(check int) "no evaluations while idle" evals_before evals_after

let test_active_counter_keeps_evaluating () =
  let c, en, rst = counter_circuit () in
  let p = Partition.gsim c ~max_size:24 in
  let t = Activity.create c p in
  Activity.poke t en (b ~w:1 1);
  Activity.poke t rst (b ~w:1 0);
  for _ = 1 to 50 do
    Activity.step t
  done;
  let ctr = Activity.counters t in
  Alcotest.(check bool) "evaluations happen" true (ctr.Counters.evals >= 50);
  Alcotest.(check bool) "registers latch" true (ctr.Counters.reg_commits >= 49)

let test_activity_factor_low_on_mostly_idle () =
  (* Two counters; only one enabled.  The idle half should not evaluate. *)
  let c = Circuit.create () in
  let en = Circuit.add_input c ~name:"en" ~width:1 in
  let mk_counter name enable =
    let r = Circuit.add_register c ~name ~width:16 ~init:(Bits.zero 16) () in
    let next =
      Expr.mux enable
        (Expr.unop (Expr.Extract (15, 0))
           (Expr.binop Expr.Add (Expr.var ~width:16 r.Circuit.read) (Expr.of_int ~width:16 1)))
        (Expr.var ~width:16 r.Circuit.read)
    in
    Circuit.set_next c r next;
    Circuit.mark_output c r.Circuit.read;
    r
  in
  let _live = mk_counter "live" (Expr.var ~width:1 en.Circuit.id) in
  let _idle = mk_counter "idle" (Expr.of_int ~width:1 0) in
  let p = Partition.singleton c in
  let t = Activity.create c p in
  Activity.poke t en.Circuit.id (b ~w:1 1);
  for _ = 1 to 100 do
    Activity.step t
  done;
  let ctr = Activity.counters t in
  let af = Counters.activity_factor ctr ~total_nodes:(Circuit.node_count c) in
  Alcotest.(check bool) (Printf.sprintf "af=%.3f below 0.5" af) true (af < 0.5)

let test_counters_cleared () =
  let ctr = Counters.create () in
  ctr.Counters.evals <- 5;
  Counters.clear ctr;
  Alcotest.(check int) "cleared" 0 ctr.Counters.evals

let test_repcut_replication () =
  let c, _, _ = counter_circuit () in
  let t = Repcut.create ~threads:2 c in
  Alcotest.(check bool) "replication factor >= 1" true (Repcut.replication_factor t >= 1.0);
  Alcotest.(check int) "two cones" 2 (Array.length (Repcut.cone_sizes t));
  Repcut.destroy t;
  Repcut.destroy t

let test_parallel_levels () =
  let c, _, _ = counter_circuit () in
  let t = Parallel.create ~threads:2 c in
  Alcotest.(check bool) "levels > 0" true (Parallel.level_count t > 0);
  Parallel.destroy t;
  (* destroy is idempotent *)
  Parallel.destroy t

let () =
  Alcotest.run "engine"
    [
      ( "equivalence",
        [
          Alcotest.test_case "counter" `Quick test_counter_all_engines;
          Alcotest.test_case "fifo" `Quick test_fifo_all_engines;
          Alcotest.test_case "wide alu" `Quick test_wide_alu_all_engines;
          Alcotest.test_case "random circuits" `Slow test_random_circuits_equivalence;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_engines_agree ]);
      ( "activity",
        [
          Alcotest.test_case "idle stops evaluating" `Quick test_idle_circuit_stops_evaluating;
          Alcotest.test_case "active keeps evaluating" `Quick
            test_active_counter_keeps_evaluating;
          Alcotest.test_case "low af when mostly idle" `Quick
            test_activity_factor_low_on_mostly_idle;
          Alcotest.test_case "counters clear" `Quick test_counters_cleared;
          Alcotest.test_case "parallel levels/destroy" `Quick test_parallel_levels;
          Alcotest.test_case "repcut replication" `Quick test_repcut_replication;
        ] );
    ]
