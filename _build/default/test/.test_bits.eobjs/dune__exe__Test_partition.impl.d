test/test_partition.ml: Alcotest Array Gsim_ir Gsim_partition List Option Printf QCheck QCheck_alcotest Random
