test/test_hcl.ml: Alcotest Bool Gsim_bits Gsim_hcl Gsim_ir List Printf
