test/test_engine.ml: Alcotest Array Gsim_bits Gsim_engine Gsim_ir Gsim_partition List Printf QCheck QCheck_alcotest Random
