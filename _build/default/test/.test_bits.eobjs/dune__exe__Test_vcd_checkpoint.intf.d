test/test_vcd_checkpoint.mli:
