test/test_verilog.ml: Alcotest Array Gsim_bits Gsim_engine Gsim_firrtl Gsim_ir Gsim_partition Gsim_passes Gsim_verilog List Printf
