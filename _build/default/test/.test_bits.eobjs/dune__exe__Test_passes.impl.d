test/test_passes.ml: Alcotest Array Format Gsim_bits Gsim_engine Gsim_ir Gsim_partition Gsim_passes List Printf QCheck QCheck_alcotest Random String
