test/test_isa.ml: Alcotest Format Gsim_bits Gsim_designs Gsim_engine Gsim_partition List
