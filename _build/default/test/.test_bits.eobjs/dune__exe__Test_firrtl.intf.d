test/test_firrtl.mli:
