test/test_gsim_facade.mli:
