test/test_expr.ml: Alcotest Gsim_bits Gsim_ir List QCheck QCheck_alcotest
