test/test_firrtl.ml: Alcotest Array Gsim_bits Gsim_designs Gsim_engine Gsim_firrtl Gsim_ir Gsim_partition Gsim_passes List Printf String
