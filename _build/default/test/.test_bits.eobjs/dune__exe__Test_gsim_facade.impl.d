test/test_gsim_facade.ml: Alcotest Array Filename Gsim_bits Gsim_core Gsim_designs Gsim_engine Gsim_ir Gsim_passes List Option Printf Random Sys
