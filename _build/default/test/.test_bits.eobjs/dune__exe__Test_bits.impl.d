test/test_bits.ml: Alcotest Bool Format Gsim_bits List Printf QCheck QCheck_alcotest Random
