test/test_circuit.ml: Alcotest Array Gsim_bits Gsim_ir List Random
