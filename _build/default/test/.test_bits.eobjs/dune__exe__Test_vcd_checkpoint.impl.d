test/test_vcd_checkpoint.ml: Alcotest Array Buffer Filename Gsim_bits Gsim_designs Gsim_engine Gsim_ir Gsim_partition List Printf String Sys
