test/test_torture.ml: Alcotest Array Gsim_bits Gsim_designs Gsim_engine Gsim_ir Gsim_partition List Printf QCheck QCheck_alcotest Random
