test/test_designs.ml: Alcotest Array Gsim_bits Gsim_designs Gsim_engine Gsim_ir Gsim_partition Gsim_passes List Printf
