test/test_emit.ml: Alcotest Filename Gsim_bits Gsim_designs Gsim_emit Gsim_firrtl Gsim_ir Gsim_partition Gsim_passes Lazy Printf Random String Sys
