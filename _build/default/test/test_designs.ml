(* Designs: the ISA/assembler, the runnable core against the golden model
   (on every engine), workload sanity, and the scaled synthetic cores. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Partition = Gsim_partition.Partition
module Sim = Gsim_engine.Sim
module Full_cycle = Gsim_engine.Full_cycle
module Activity = Gsim_engine.Activity
module Parallel = Gsim_engine.Parallel
module Counters = Gsim_engine.Counters
module Pipeline = Gsim_passes.Pipeline
module Isa = Gsim_designs.Isa
module Programs = Gsim_designs.Programs
module Stu_core = Gsim_designs.Stu_core
module Synth_core = Gsim_designs.Synth_core
module Designs = Gsim_designs.Designs

(* --- Assembler --------------------------------------------------------- *)

let test_assembler_encoding () =
  let code = Isa.assemble [ Isa.Alui (Isa.Add, 1, 2, -3) ] in
  Alcotest.(check int) "one word" 1 (Array.length code);
  let w = Bits.to_int code.(0) in
  Alcotest.(check int) "opcode" 1 (w lsr 28);
  Alcotest.(check int) "rd" 1 (w lsr 20 land 0xF);
  Alcotest.(check int) "rs1" 2 (w lsr 16 land 0xF);
  Alcotest.(check int) "imm two's complement" 0xFFD (w land 0xFFF)

let test_assembler_labels () =
  let code =
    Isa.assemble
      [ Isa.Label "top"; Isa.Nop; Isa.Br (Isa.Bne, 1, 0, "top"); Isa.Jal (0, "top"); Isa.Halt ]
  in
  Alcotest.(check int) "label-free length" 4 (Array.length code);
  (* Branch at pc=1 targeting 0: offset -1. *)
  Alcotest.(check int) "relative offset" 0xFFF (Bits.to_int code.(1) land 0xFFF);
  (* Jal at pc=2 absolute target 0. *)
  Alcotest.(check int) "absolute target" 0 (Bits.to_int code.(2) land 0xFFFFF)

let test_assembler_errors () =
  let expect_fail instrs =
    match Isa.assemble instrs with
    | exception Isa.Asm_error _ -> ()
    | _ -> Alcotest.fail "expected Asm_error"
  in
  expect_fail [ Isa.Br (Isa.Beq, 0, 0, "missing") ];
  expect_fail [ Isa.Label "x"; Isa.Label "x" ];
  expect_fail [ Isa.Alui (Isa.Add, 17, 0, 0) ];
  expect_fail [ Isa.Alui (Isa.Add, 1, 0, 5000) ]

(* --- Golden model ------------------------------------------------------ *)

let test_golden_halts_all_programs () =
  List.iter
    (fun name ->
      match Programs.by_name name with
      | Some mk ->
        let p = mk () in
        let _, _, retired =
          Isa.reference_execute ~code:p.Isa.code ~data:p.Isa.data ~dmem_size:4096 ()
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s retires instructions (%d)" name retired)
          true
          (retired > 10 && retired < 900_000)
      | None -> Alcotest.failf "unknown program %s" name)
    Programs.names

(* --- Core vs golden on every engine ------------------------------------ *)

let engines =
  [
    ("reference", fun c -> (Sim.of_reference (Reference.create c), fun () -> ()));
    ("full_cycle", fun c -> (Full_cycle.sim (Full_cycle.create c), fun () -> ()));
    ( "parallel2",
      fun c ->
        let t = Parallel.create ~threads:2 c in
        (Parallel.sim t, fun () -> Parallel.destroy t) );
    ( "essent",
      fun c ->
        let p = Partition.mffc c ~max_size:12 in
        (Activity.sim (Activity.create ~config:Activity.essent_config c p), fun () -> ()) );
    ( "gsim",
      fun c ->
        let p = Partition.gsim c ~max_size:32 in
        (Activity.sim (Activity.create c p), fun () -> ()) );
  ]

let test_core_matches_golden_all_engines () =
  let prog = Programs.quick () in
  List.iter
    (fun (name, mk) ->
      let core = Stu_core.build () in
      let sim, cleanup = mk core.Stu_core.circuit in
      (try Designs.check_against_golden sim core.Stu_core.h prog ~dmem_size:4096
       with Failure msg -> Alcotest.failf "%s: %s" name msg);
      cleanup ())
    engines

let test_core_runs_coremark () =
  let prog = Programs.coremark ~iters:2 () in
  let core = Stu_core.build () in
  let sim = Full_cycle.sim (Full_cycle.create core.Stu_core.circuit) in
  Designs.check_against_golden sim core.Stu_core.h prog ~dmem_size:4096

let test_core_runs_spec_profiles () =
  List.iter
    (fun p ->
      let core = Stu_core.build () in
      let part = Partition.gsim core.Stu_core.circuit ~max_size:32 in
      let sim = Activity.sim (Activity.create core.Stu_core.circuit part) in
      try Designs.check_against_golden sim core.Stu_core.h p ~dmem_size:4096
      with Failure msg -> Alcotest.failf "%s: %s" p.Isa.prog_name msg)
    (Programs.spec_checkpoints ~scale:1 ())

let test_optimized_core_matches_golden () =
  List.iter
    (fun level ->
      let core = Designs.optimize_design ~level (Stu_core.build ()) in
      let part = Partition.gsim core.Stu_core.circuit ~max_size:32 in
      let sim = Activity.sim (Activity.create core.Stu_core.circuit part) in
      Designs.check_against_golden sim core.Stu_core.h (Programs.quick ()) ~dmem_size:4096)
    [ Pipeline.O1; Pipeline.O2; Pipeline.O3 ]

(* --- Synthetic scaled cores -------------------------------------------- *)

let test_synth_cores_build_and_scale () =
  let sizes =
    List.map
      (fun d ->
        let core = d.Designs.build () in
        Circuit.validate core.Stu_core.circuit;
        (Circuit.stats core.Stu_core.circuit).Circuit.ir_nodes)
      Designs.all
  in
  match sizes with
  | [ stu; rocket; boom; xiangshan ] ->
    Alcotest.(check bool)
      (Printf.sprintf "strictly increasing scale %d < %d < %d < %d" stu rocket boom xiangshan)
      true
      (stu < rocket && rocket < boom && boom < xiangshan);
    Alcotest.(check bool) "largest is > 100x smallest" true (xiangshan > 100 * stu)
  | _ -> Alcotest.fail "expected four designs"

let test_synth_core_still_executes () =
  (* The embedded core must behave identically inside the scaled design. *)
  let core = Synth_core.build Synth_core.rocket_like in
  let part = Partition.gsim core.Stu_core.circuit ~max_size:32 in
  let sim = Activity.sim (Activity.create core.Stu_core.circuit part) in
  Designs.check_against_golden sim core.Stu_core.h (Programs.quick ()) ~dmem_size:4096

let test_synth_core_low_activity () =
  let core = Synth_core.build Synth_core.boom_like in
  let c = core.Stu_core.circuit in
  let part = Partition.gsim c ~max_size:32 in
  let sim = Activity.sim (Activity.create c part) in
  Designs.load_program sim core.Stu_core.h (Programs.coremark ~iters:2 ());
  ignore (Designs.run_program sim core.Stu_core.h);
  let af =
    Counters.activity_factor (sim.Sim.counters ()) ~total_nodes:(Circuit.node_count c)
  in
  Alcotest.(check bool) (Printf.sprintf "af=%.3f below 0.25" af) true (af < 0.25)

let test_halted_core_goes_quiet () =
  let core = Stu_core.build () in
  let c = core.Stu_core.circuit in
  let part = Partition.gsim c ~max_size:32 in
  let sim = Activity.sim (Activity.create c part) in
  Designs.load_program sim core.Stu_core.h (Programs.quick ());
  ignore (Designs.run_program sim core.Stu_core.h);
  Designs.run_cycles sim 10;
  let evals0 = (sim.Sim.counters ()).Counters.evals in
  Designs.run_cycles sim 100;
  Alcotest.(check int) "no evaluations after halt" evals0 (sim.Sim.counters ()).Counters.evals

let () =
  Alcotest.run "designs"
    [
      ( "isa",
        [
          Alcotest.test_case "encoding" `Quick test_assembler_encoding;
          Alcotest.test_case "labels" `Quick test_assembler_labels;
          Alcotest.test_case "errors" `Quick test_assembler_errors;
          Alcotest.test_case "golden halts" `Quick test_golden_halts_all_programs;
        ] );
      ( "core",
        [
          Alcotest.test_case "matches golden (all engines)" `Quick
            test_core_matches_golden_all_engines;
          Alcotest.test_case "coremark" `Quick test_core_runs_coremark;
          Alcotest.test_case "spec profiles" `Quick test_core_runs_spec_profiles;
          Alcotest.test_case "optimized levels" `Quick test_optimized_core_matches_golden;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "build and scale" `Slow test_synth_cores_build_and_scale;
          Alcotest.test_case "embedded core executes" `Quick test_synth_core_still_executes;
          Alcotest.test_case "low activity" `Slow test_synth_core_low_activity;
          Alcotest.test_case "quiet after halt" `Quick test_halted_core_goes_quiet;
        ] );
    ]
