(* Instruction-level conformance: every instruction class is executed on
   the hardware core and compared against the golden software model, one
   focused program per behaviour. *)

module Bits = Gsim_bits.Bits
module Isa = Gsim_designs.Isa
module Programs = Gsim_designs.Programs
module Stu_core = Gsim_designs.Stu_core
module Designs = Gsim_designs.Designs
module Partition = Gsim_partition.Partition
module Activity = Gsim_engine.Activity

(* Run [instrs] (auto-appending Halt) on both the golden model and the
   hardware core; require identical register files and retire counts. *)
let conformance name instrs =
  let prog =
    { Isa.prog_name = name; code = Isa.assemble (instrs @ [ Isa.Halt ]); data = [||] }
  in
  let core = Stu_core.build () in
  let p = Partition.gsim core.Stu_core.circuit ~max_size:8 in
  let sim = Activity.sim (Activity.create core.Stu_core.circuit p) in
  try Designs.check_against_golden sim core.Stu_core.h prog ~dmem_size:4096
  with Failure msg -> Alcotest.failf "%s: %s" name msg

let li rd v =
  (* Load a full 32-bit constant in 11-bit chunks (imm12 is signed, so
     each OR immediate stays within [0, 2047]). *)
  if v >= -2048 && v <= 2047 then [ Isa.Alui (Isa.Add, rd, 0, v) ]
  else begin
    let v = v land 0xFFFFFFFF in
    [
      Isa.Alui (Isa.Add, rd, 0, (v lsr 22) land 0x3FF);
      Isa.Alui (Isa.Sll, rd, rd, 11);
      Isa.Alui (Isa.Or, rd, rd, (v lsr 11) land 0x7FF);
      Isa.Alui (Isa.Sll, rd, rd, 11);
      Isa.Alui (Isa.Or, rd, rd, v land 0x7FF);
    ]
  end

let test_alu_functs () =
  List.iter
    (fun f ->
      conformance
        (Format.asprintf "alu_%d" (Isa.funct_code f))
        (li 1 0x12345678 @ li 2 29
         @ [ Isa.Alu (f, 3, 1, 2); Isa.Alu (f, 4, 2, 1); Isa.Alu (f, 5, 1, 1) ]))
    [
      Isa.Add; Isa.Sub; Isa.And; Isa.Or; Isa.Xor; Isa.Sll; Isa.Srl; Isa.Sra; Isa.Slt;
      Isa.Sltu; Isa.Mul; Isa.Divu; Isa.Remu;
    ]

let test_alu_edge_values () =
  (* Overflow, zero divisors, shift amounts >= 32 (masked to 5 bits). *)
  conformance "alu_edges"
    (li 1 0x7FFFFFFF @ li 2 0xFFFFFFFF @ li 3 33
     @ [
         Isa.Alu (Isa.Add, 4, 1, 1);
         Isa.Alu (Isa.Sub, 5, 0, 2);
         Isa.Alu (Isa.Divu, 6, 1, 0);
         Isa.Alu (Isa.Remu, 7, 1, 0);
         Isa.Alu (Isa.Sll, 8, 1, 3);
         Isa.Alu (Isa.Sra, 9, 2, 3);
         Isa.Alu (Isa.Slt, 10, 2, 1);
         Isa.Alu (Isa.Sltu, 11, 2, 1);
       ])

let test_imm_sign_extension () =
  conformance "imm_sext"
    [
      Isa.Alui (Isa.Add, 1, 0, -1);
      Isa.Alui (Isa.Add, 2, 1, -2048);
      Isa.Alui (Isa.Xor, 3, 1, 2047);
      Isa.Alui (Isa.And, 4, 1, -256);
    ]

let test_r0_is_zero () =
  conformance "r0"
    [
      Isa.Alui (Isa.Add, 0, 0, 55);   (* write to r0 discarded *)
      Isa.Alu (Isa.Add, 1, 0, 0);
      Isa.Alui (Isa.Add, 2, 0, 7);
      Isa.Alu (Isa.Add, 3, 2, 0);
    ]

let test_load_store_roundtrip () =
  conformance "mem_roundtrip"
    (li 1 123456
     @ [
         Isa.Store (0, 1, 100);
         Isa.Load (2, 0, 100);
         Isa.Alui (Isa.Add, 3, 0, 100);
         Isa.Load (4, 3, 0);
         Isa.Store (3, 2, 1);
         Isa.Load (5, 0, 101);
       ])

let test_store_load_same_cycle_ordering () =
  (* A load in the cycle right after a store to the same address must see
     the stored value (memory commits at cycle end). *)
  conformance "mem_ordering"
    (li 1 77
     @ [ Isa.Store (0, 1, 5); Isa.Load (2, 0, 5); Isa.Alu (Isa.Add, 3, 2, 1) ])

let test_address_wrap () =
  conformance "mem_wrap"
    (li 1 4097 (* wraps to 1 in a 4096-word memory *)
     @ li 2 31415
     @ [ Isa.Store (1, 2, 0); Isa.Load (3, 0, 1) ])

let test_branches () =
  List.iter
    (fun cond ->
      conformance
        (Format.asprintf "branch_%d" (Isa.cond_code cond))
        (li 1 5 @ li 2 (-5)
         @ [
             Isa.Br (cond, 1, 2, "taken");
             Isa.Alui (Isa.Add, 3, 0, 111);
             Isa.Label "taken";
             Isa.Alui (Isa.Add, 4, 0, 222);
             Isa.Br (cond, 1, 1, "eqpath");
             Isa.Alui (Isa.Add, 5, 0, 333);
             Isa.Label "eqpath";
             Isa.Alui (Isa.Add, 6, 0, 444);
           ]))
    [ Isa.Beq; Isa.Bne; Isa.Blt; Isa.Bge; Isa.Bltu; Isa.Bgeu ]

let test_backward_branch_loop () =
  conformance "loop"
    [
      Isa.Alui (Isa.Add, 1, 0, 10);
      Isa.Label "top";
      Isa.Alu (Isa.Add, 2, 2, 1);
      Isa.Alui (Isa.Sub, 1, 1, 1);
      Isa.Br (Isa.Bne, 1, 0, "top");
    ]

let test_jal_jalr_linkage () =
  conformance "call_return"
    [
      Isa.Jal (7, "fn");
      Isa.Alui (Isa.Add, 1, 0, 1);   (* executed after return *)
      Isa.Jal (0, "end");
      Isa.Label "fn";
      Isa.Alui (Isa.Add, 2, 0, 2);
      Isa.Jalr (0, 7, 0);
      Isa.Label "end";
      Isa.Alui (Isa.Add, 3, 0, 3);
    ]

let test_lui () =
  conformance "lui" [ Isa.Lui (1, 0xFFFFF); Isa.Lui (2, 1); Isa.Alu (Isa.Srl, 3, 1, 2) ]

let test_nop_stream () =
  conformance "nops" [ Isa.Nop; Isa.Nop; Isa.Alui (Isa.Add, 1, 0, 9); Isa.Nop ]

let test_golden_retired_counts () =
  (* Retire counts are architecturally defined; check a known loop. *)
  let code =
    Isa.assemble
      [
        Isa.Alui (Isa.Add, 1, 0, 3);
        Isa.Label "t";
        Isa.Alui (Isa.Sub, 1, 1, 1);
        Isa.Br (Isa.Bne, 1, 0, "t");
        Isa.Halt;
      ]
  in
  let _, _, retired = Isa.reference_execute ~code ~data:[||] ~dmem_size:64 () in
  (* 1 init + 3*(sub+br) + halt *)
  Alcotest.(check int) "retired" 8 retired

let test_all_workloads_on_core () =
  (* Full conformance of every shipped workload at small scale. *)
  List.iter
    (fun (name, prog) ->
      let core = Stu_core.build () in
      let p = Partition.gsim core.Stu_core.circuit ~max_size:8 in
      let sim = Activity.sim (Activity.create core.Stu_core.circuit p) in
      try Designs.check_against_golden sim core.Stu_core.h prog ~dmem_size:4096
      with Failure msg -> Alcotest.failf "%s: %s" name msg)
    [
      ("coremark", Programs.coremark ~iters:1 ());
      ("linux_boot", Programs.linux_boot ~phases:4 ());
      ("streaming", Programs.spec_streaming ~scale:1 ());
      ("pointer_chase", Programs.spec_pointer_chase ~scale:1 ());
      ("int_compute", Programs.spec_int_compute ~scale:1 ());
      ("mul_heavy", Programs.spec_mul_heavy ~scale:1 ());
      ("branch_heavy", Programs.spec_branch_heavy ~scale:1 ());
      ("icache", Programs.spec_icache ~scale:1 ());
    ]

let () =
  Alcotest.run "isa"
    [
      ( "alu",
        [
          Alcotest.test_case "all functs" `Quick test_alu_functs;
          Alcotest.test_case "edge values" `Quick test_alu_edge_values;
          Alcotest.test_case "imm sign extension" `Quick test_imm_sign_extension;
          Alcotest.test_case "r0 reads zero" `Quick test_r0_is_zero;
        ] );
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_load_store_roundtrip;
          Alcotest.test_case "store/load ordering" `Quick test_store_load_same_cycle_ordering;
          Alcotest.test_case "address wrap" `Quick test_address_wrap;
        ] );
      ( "control",
        [
          Alcotest.test_case "branch conditions" `Quick test_branches;
          Alcotest.test_case "backward loop" `Quick test_backward_branch_loop;
          Alcotest.test_case "jal/jalr" `Quick test_jal_jalr_linkage;
          Alcotest.test_case "lui" `Quick test_lui;
          Alcotest.test_case "nops" `Quick test_nop_stream;
          Alcotest.test_case "retire counts" `Quick test_golden_retired_counts;
        ] );
      ( "workloads",
        [ Alcotest.test_case "all programs conform" `Quick test_all_workloads_on_core ] );
    ]
