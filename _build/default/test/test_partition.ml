(* Partitioning algorithms: validity on random circuits, size bounds,
   quality ordering, and behaviour of the pre-merge rules. *)

module Circuit = Gsim_ir.Circuit
module Expr = Gsim_ir.Expr
module Rand_circuit = Gsim_ir.Rand_circuit
module Partition = Gsim_partition.Partition

let algorithms =
  [
    ("none", fun c ~max_size:_ -> Partition.singleton c);
    ("kernighan", Partition.kernighan);
    ("mffc", Partition.mffc);
    ("gsim", Partition.gsim);
  ]

let test_valid_on_random () =
  let st = Random.State.make [| 11 |] in
  for i = 1 to 15 do
    let cfg =
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 20 + (i * 10) }
    in
    let c = Rand_circuit.generate st cfg in
    List.iter
      (fun (name, algo) ->
        let p = algo c ~max_size:(1 + (i mod 40)) in
        try Partition.validate c p
        with Failure msg -> Alcotest.failf "%s invalid on circuit %d: %s" name i msg)
      algorithms
  done

let test_singleton_sizes () =
  let st = Random.State.make [| 12 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let p = Partition.singleton c in
  Array.iter
    (fun members -> Alcotest.(check int) "singleton size" 1 (Array.length members))
    p.Partition.supernodes

let test_monolithic () =
  let st = Random.State.make [| 13 |] in
  let c = Rand_circuit.generate st Rand_circuit.default_config in
  let p = Partition.monolithic c in
  Alcotest.(check int) "one supernode" 1 (Array.length p.Partition.supernodes);
  Partition.validate c p

let test_max_size_respected () =
  let st = Random.State.make [| 14 |] in
  let c =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 200 }
  in
  List.iter
    (fun (name, algo) ->
      if name <> "none" then begin
        let p = algo c ~max_size:10 in
        let q = Partition.quality c p in
        (* GSIM's protected clusters may exceed the bound, but not wildly. *)
        let limit = if name = "gsim" then 20 else 10 in
        Alcotest.(check bool)
          (Printf.sprintf "%s max size (got %d)" name q.Partition.max_size)
          true
          (q.Partition.max_size <= limit)
      end)
    algorithms

let test_kernighan_minimizes_cuts_on_chain () =
  (* A chain a -> b -> c -> d -> e -> f: with max_size 3 the optimal
     2-segment split cuts exactly one edge. *)
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let rec chain prev n acc =
    if n = 0 then acc
    else begin
      let nd =
        Circuit.add_logic c
          ~name:(Printf.sprintf "n%d" n)
          (Expr.unop Expr.Not (Expr.var ~width:8 prev))
      in
      chain nd.Circuit.id (n - 1) (nd.Circuit.id :: acc)
    end
  in
  let ids = chain x.Circuit.id 6 [] in
  Circuit.mark_output c (List.hd ids);
  let p = Partition.kernighan c ~max_size:3 in
  Partition.validate c p;
  let q = Partition.quality c p in
  Alcotest.(check int) "two segments" 2 q.Partition.supernode_count;
  Alcotest.(check int) "one cut" 1 q.Partition.cut_edges

let test_gsim_groups_correlated () =
  (* A diamond: src feeds siblings s1 s2 (same predecessor set) which feed
     sink.  All four are strongly correlated; GSIM should group them into a
     single supernode when the bound allows. *)
  let c = Circuit.create () in
  let x = Circuit.add_input c ~name:"x" ~width:8 in
  let src = Circuit.add_logic c ~name:"src" (Expr.unop Expr.Not (Expr.var ~width:8 x.Circuit.id)) in
  let s1 =
    Circuit.add_logic c ~name:"s1"
      (Expr.unop (Expr.Shl_const 0) (Expr.var ~width:8 src.Circuit.id))
  in
  let s2 =
    Circuit.add_logic c ~name:"s2" (Expr.unop Expr.Not (Expr.var ~width:8 src.Circuit.id))
  in
  let sink =
    Circuit.add_logic c ~name:"sink"
      (Expr.binop Expr.Xor (Expr.var ~width:8 s1.Circuit.id) (Expr.var ~width:8 s2.Circuit.id))
  in
  Circuit.mark_output c sink.Circuit.id;
  let p = Partition.gsim c ~max_size:16 in
  Partition.validate c p;
  Alcotest.(check int) "single supernode" 1 (Array.length p.Partition.supernodes)

let test_gsim_beats_singleton_on_cuts () =
  let st = Random.State.make [| 15 |] in
  let c =
    Rand_circuit.generate st
      { Rand_circuit.default_config with Rand_circuit.logic_nodes = 300 }
  in
  let cuts algo = (Partition.quality c (algo c ~max_size:30)).Partition.cut_edges in
  let none = cuts (fun c ~max_size:_ -> Partition.singleton c) in
  let kern = cuts Partition.kernighan in
  let gsim = cuts Partition.gsim in
  Alcotest.(check bool) "kernighan cuts fewer than none" true (kern < none);
  Alcotest.(check bool) "gsim cuts fewer than none" true (gsim < none)

let test_algorithm_of_string () =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "resolves %s" name)
        true
        (Option.is_some (Partition.algorithm_of_string name)))
    [ "none"; "kernighan"; "mffc"; "gsim" ];
  Alcotest.(check bool) "unknown rejected" true
    (Option.is_none (Partition.algorithm_of_string "bogus"))

let prop_coverage =
  QCheck.Test.make ~name:"every algorithm covers all evaluated nodes" ~count:20
    (QCheck.make QCheck.Gen.(int_range 0 10000))
    (fun seed ->
      let st = Random.State.make [| seed |] in
      let c = Rand_circuit.generate st Rand_circuit.default_config in
      let max_size = 1 + (seed mod 60) in
      List.for_all
        (fun (_, algo) ->
          let p = algo c ~max_size in
          Partition.validate c p;
          let covered =
            Array.fold_left (fun acc m -> acc + Array.length m) 0 p.Partition.supernodes
          in
          covered = Array.length (Circuit.eval_order c))
        algorithms)

let () =
  Alcotest.run "partition"
    [
      ( "validity",
        [
          Alcotest.test_case "random circuits" `Quick test_valid_on_random;
          Alcotest.test_case "singleton" `Quick test_singleton_sizes;
          Alcotest.test_case "monolithic" `Quick test_monolithic;
          Alcotest.test_case "max size" `Quick test_max_size_respected;
        ] );
      ( "quality",
        [
          Alcotest.test_case "kernighan chain" `Quick test_kernighan_minimizes_cuts_on_chain;
          Alcotest.test_case "gsim groups correlated" `Quick test_gsim_groups_correlated;
          Alcotest.test_case "cut comparison" `Quick test_gsim_beats_singleton_on_cuts;
          Alcotest.test_case "algorithm_of_string" `Quick test_algorithm_of_string;
        ] );
      ("props", [ QCheck_alcotest.to_alcotest prop_coverage ]);
    ]
