(* HCL builder: operators, registers, memories, scoping, and agreement of
   every operator with the expression semantics. *)

module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Reference = Gsim_ir.Reference
module Hcl = Gsim_hcl.Hcl

let b ~w n = Bits.of_int ~width:w n

(* Build a circuit computing [f a b] over two 8-bit inputs and check the
   result for a set of operand pairs. *)
let check_op name f expected =
  let bld = Hcl.create ~name () in
  let a = Hcl.input bld "a" 8 in
  let bx = Hcl.input bld "b" 8 in
  let out = Hcl.output bld "out" (f a bx) in
  let c = Hcl.finalize bld in
  let r = Reference.create c in
  List.iter
    (fun (x, y) ->
      Reference.poke r (Hcl.node_of a) (b ~w:8 x);
      Reference.poke r (Hcl.node_of bx) (b ~w:8 y);
      Reference.step r;
      let got = Bits.to_int (Reference.peek r (Hcl.node_of out)) in
      Alcotest.(check int) (Printf.sprintf "%s %d,%d" name x y) (expected x y land 0xFF) got)
    [ (0, 0); (1, 2); (200, 100); (255, 255); (128, 64) ]

let test_arith_ops () =
  Hcl.(
    check_op "add" ( +: ) ( + );
    check_op "sub" ( -: ) ( - );
    check_op "mul" ( *: ) ( * );
    check_op "and" ( &: ) ( land );
    check_op "or" ( |: ) ( lor );
    check_op "xor" ( ^: ) ( lxor ))

let test_compare_ops () =
  Hcl.(
    check_op "eq" eq (fun x y -> Bool.to_int (x = y));
    check_op "ult" ult (fun x y -> Bool.to_int (x < y));
    check_op "slt" slt (fun x y ->
        let s v = if v >= 128 then v - 256 else v in
        Bool.to_int (s x < s y)))

let test_shift_ops () =
  Hcl.(
    check_op "udiv" udiv (fun x y -> if y = 0 then 0 else x / y);
    check_op "urem" urem (fun x y -> if y = 0 then x else x mod y);
    check_op "sll" (fun a bx -> sll a (bits bx ~hi:2 ~lo:0)) (fun x y -> x lsl (y land 7));
    check_op "srl" (fun a bx -> srl a (bits bx ~hi:2 ~lo:0)) (fun x y -> x lsr (y land 7)))

let test_structure_ops () =
  Hcl.(
    check_op "cat low half" (fun a bx -> bits (cat [ a; bx ]) ~hi:7 ~lo:0) (fun _ y -> y);
    check_op "cat high half" (fun a bx -> bits (cat [ a; bx ]) ~hi:15 ~lo:8) (fun x _ -> x);
    check_op "mux2" (fun a bx -> mux2 (ult a bx) a bx) (fun x y -> if x < y then x else y);
    check_op "select priority"
      (fun a bx ->
        select [ (eq a bx, a +: bx); (ult a bx, bx) ] ~default:a)
      (fun x y -> if x = y then x + y else if x < y then y else x);
    check_op "resize trunc" (fun a _ -> resize (resize a 4) 8) (fun x _ -> x land 0xF);
    check_op "sext" (fun a _ -> bits (sext (bits a ~hi:3 ~lo:0) 8) ~hi:7 ~lo:0)
      (fun x _ ->
        let v = x land 0xF in
        if v >= 8 then v lor 0xF0 else v);
    check_op "reductions" (fun a _ ->
        cat [ resize (reduce_or a) 1; resize (reduce_and a) 1; resize (reduce_xor a) 6 ])
      (fun x _ ->
        let orr = if x <> 0 then 1 else 0 in
        let andr = if x = 0xFF then 1 else 0 in
        let xorr =
          let rec p v acc = if v = 0 then acc else p (v lsr 1) (acc lxor (v land 1)) in
          p x 0
        in
        (orr lsl 7) lor (andr lsl 6) lor xorr))

let test_register_priority () =
  (* Later set_when wins, matching last-connect semantics. *)
  let bld = Hcl.create () in
  let sel = Hcl.input bld "sel" 1 in
  let r = Hcl.reg bld "r" 8 in
  Hcl.set r (Hcl.const bld ~width:8 1);
  Hcl.set_when r ~guard:sel (Hcl.const bld ~width:8 2);
  let c = Hcl.finalize bld in
  let rf = Reference.create c in
  Reference.poke rf (Hcl.node_of sel) (b ~w:1 1);
  Reference.step rf;
  Alcotest.(check int) "guarded overrides" 2 (Bits.to_int (Reference.peek rf (Hcl.reg_node r)));
  Reference.poke rf (Hcl.node_of sel) (b ~w:1 0);
  Reference.step rf;
  Alcotest.(check int) "unconditional base" 1 (Bits.to_int (Reference.peek rf (Hcl.reg_node r)))

let test_register_reset_and_init () =
  let bld = Hcl.create () in
  let rst = Hcl.input bld "rst" 1 in
  let r = Hcl.reg bld ~init:(b ~w:8 7) ~reset:(rst, b ~w:8 42) "r" 8 in
  Hcl.set r Hcl.(q r +: Hcl.const bld ~width:8 1);
  let c = Hcl.finalize bld in
  let rf = Reference.create c in
  Alcotest.(check int) "init value" 7 (Bits.to_int (Reference.peek rf (Hcl.reg_node r)));
  Reference.step rf;
  Alcotest.(check int) "counts from init" 8 (Bits.to_int (Reference.peek rf (Hcl.reg_node r)));
  Reference.poke rf (Hcl.node_of rst) (b ~w:1 1);
  Reference.step rf;
  Alcotest.(check int) "reset value" 42 (Bits.to_int (Reference.peek rf (Hcl.reg_node r)))

let test_memory_rw () =
  let bld = Hcl.create () in
  let addr = Hcl.input bld "addr" 3 in
  let data = Hcl.input bld "data" 8 in
  let wen = Hcl.input bld "wen" 1 in
  let m = Hcl.memory bld "m" ~width:8 ~depth:8 in
  let rdata = Hcl.output bld "rdata" (Hcl.read m addr) in
  Hcl.write m ~addr ~data ~en:wen;
  let c = Hcl.finalize bld in
  let rf = Reference.create c in
  Reference.poke rf (Hcl.node_of addr) (b ~w:3 5);
  Reference.poke rf (Hcl.node_of data) (b ~w:8 99);
  Reference.poke rf (Hcl.node_of wen) (b ~w:1 1);
  Reference.step rf;
  Reference.poke rf (Hcl.node_of wen) (b ~w:1 0);
  Reference.step rf;
  Alcotest.(check int) "write then read" 99 (Bits.to_int (Reference.peek rf (Hcl.node_of rdata)));
  Alcotest.(check int) "mem_index valid" 99
    (Bits.to_int (Reference.read_mem rf (Hcl.mem_index m) 5))

let test_scoping_names () =
  let bld = Hcl.create () in
  let x = Hcl.input bld "x" 4 in
  Hcl.in_scope bld "outer" (fun () ->
      Hcl.in_scope bld "inner" (fun () ->
          ignore (Hcl.wire bld "w" Hcl.(x +: x))));
  let c = Hcl.circuit bld in
  Alcotest.(check bool) "scoped name exists" true
    (Circuit.find_node c "outer.inner.w" <> None)

let test_finalize_freezes () =
  let bld = Hcl.create () in
  ignore (Hcl.input bld "x" 4);
  ignore (Hcl.finalize bld);
  Alcotest.check_raises "frozen" (Invalid_argument "Hcl: builder already finalized")
    (fun () -> ignore (Hcl.input bld "y" 4))

let test_validation_errors () =
  Alcotest.check_raises "node_of on expression"
    (Invalid_argument "Hcl.node_of: signal is not materialized; wire it first") (fun () ->
      let bld = Hcl.create () in
      let x = Hcl.input bld "x" 4 in
      ignore (Hcl.node_of Hcl.(x +: x)));
  Alcotest.check_raises "empty cat" (Invalid_argument "Hcl.cat: empty") (fun () ->
      ignore (Hcl.cat []))

let () =
  Alcotest.run "hcl"
    [
      ( "operators",
        [
          Alcotest.test_case "arithmetic" `Quick test_arith_ops;
          Alcotest.test_case "compares" `Quick test_compare_ops;
          Alcotest.test_case "shifts/div" `Quick test_shift_ops;
          Alcotest.test_case "structure" `Quick test_structure_ops;
        ] );
      ( "state",
        [
          Alcotest.test_case "register priority" `Quick test_register_priority;
          Alcotest.test_case "register reset/init" `Quick test_register_reset_and_init;
          Alcotest.test_case "memory" `Quick test_memory_rw;
        ] );
      ( "builder",
        [
          Alcotest.test_case "scoping" `Quick test_scoping_names;
          Alcotest.test_case "finalize freezes" `Quick test_finalize_freezes;
          Alcotest.test_case "errors" `Quick test_validation_errors;
        ] );
    ]
