(** Recursive-descent parser for the supported FIRRTL subset. *)

exception Parse_error of int * int * string
(** Line, column (both 1-based) and message. *)

val parse_string : string -> Ast.circuit

val parse_file : string -> Ast.circuit
