module Bits = Gsim_bits.Bits

exception Parse_error of int * int * string

(* Resource-bomb limits.  A crafted input must fail with a positioned
   diagnostic, never by blowing the OCaml stack (deep nesting) or by
   committing the elaborator to an absurd allocation (wide signals,
   astronomically deep memories). *)
let max_nesting = 200
let max_width = 65_536
let max_mem_bits = 1 lsl 33  (* 1 GiB of memory state *)

type state = {
  tokens : (Lexer.token * int * int) array;
  mutable pos : int;
  mutable depth : int;  (* live expression/when nesting *)
}

let peek st =
  let t, _, _ = st.tokens.(st.pos) in
  t

let here st =
  let _, l, c = st.tokens.(st.pos) in
  (l, c)

let error_at (l, c) msg = raise (Parse_error (l, c, msg))

let error st msg = error_at (here st) msg

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Format.asprintf "expected %a, found %a" Lexer.pp_token tok Lexer.pp_token (peek st))

let expect_id st =
  let loc = here st in
  match next st with
  | Lexer.Id s -> s
  | t -> error_at loc (Format.asprintf "expected identifier, found %a" Lexer.pp_token t)

let expect_int st =
  let loc = here st in
  match next st with
  | Lexer.Int n -> n
  | t -> error_at loc (Format.asprintf "expected integer, found %a" Lexer.pp_token t)

let accept st tok = if peek st = tok then (advance st; true) else false

let skip_newlines st =
  while peek st = Lexer.Newline do
    advance st
  done

(* --- Types ----------------------------------------------------------- *)

let check_width st w =
  if w < 0 || w > max_width then
    error st (Printf.sprintf "width %d out of range (limit %d)" w max_width);
  w

let parse_ty st =
  let loc = here st in
  match next st with
  | Lexer.Id "UInt" ->
    expect st (Lexer.Punct "<");
    let w = check_width st (expect_int st) in
    expect st (Lexer.Punct ">");
    Ast.Uint w
  | Lexer.Id "SInt" ->
    expect st (Lexer.Punct "<");
    let w = check_width st (expect_int st) in
    expect st (Lexer.Punct ">");
    Ast.Sint w
  | Lexer.Id "Clock" -> Ast.Clock_ty
  | Lexer.Id ("Reset" | "AsyncReset") -> Ast.Reset_ty
  | t -> error_at loc (Format.asprintf "expected a ground type, found %a" Lexer.pp_token t)

(* --- Expressions ------------------------------------------------------ *)

(* Literal payload: UInt<8>(5), UInt<8>("hab"), SInt<4>(-2). *)
let literal_value st ty =
  let width = Ast.ty_width ty in
  expect st (Lexer.Punct "(");
  let loc = here st in
  (* [Bits.of_string]/[int_of_string] reject malformed digit strings with
     bare [Invalid_argument]/[Failure]; pin those to the literal's
     position instead of letting them escape the parser. *)
  let guard f =
    try f () with
    | Invalid_argument m | Failure m ->
      error_at loc (Printf.sprintf "invalid literal value: %s" m)
  in
  let v =
    match next st with
    | Lexer.Int n -> guard (fun () -> Bits.of_int ~width n)
    | Lexer.Punct "-" ->
      let n = expect_int st in
      guard (fun () -> Bits.of_int ~width (-n))
    | Lexer.Str s when String.length s >= 1 -> begin
        let base, digits =
          match s.[0] with
          | 'h' -> (16, String.sub s 1 (String.length s - 1))
          | 'b' -> (2, String.sub s 1 (String.length s - 1))
          | 'o' -> (8, String.sub s 1 (String.length s - 1))
          | _ -> (10, s)
        in
        guard (fun () ->
            match base with
            | 16 -> Bits.of_string (Printf.sprintf "%d'h%s" width digits)
            | 2 -> Bits.of_string (Printf.sprintf "%d'b%s" width digits)
            | 10 -> Bits.of_string (Printf.sprintf "%d'd%s" width digits)
            | _ ->
              (* Octal: widen through an int (octal literals are rare and
                 small in practice). *)
              Bits.of_int ~width (int_of_string ("0o" ^ digits)))
      end
    | t -> error st (Format.asprintf "expected literal value, found %a" Lexer.pp_token t)
  in
  expect st (Lexer.Punct ")");
  Ast.Literal (ty, v)

(* The depth guard wraps every recursive entry: a crafted
   mux(mux(mux(... input fails with a caret diagnostic at [max_nesting]
   levels instead of a stack overflow deep inside the parser. *)
let rec parse_expr st =
  if st.depth >= max_nesting then
    error st (Printf.sprintf "expression nesting exceeds %d levels" max_nesting);
  st.depth <- st.depth + 1;
  let e = parse_expr_body st in
  st.depth <- st.depth - 1;
  e

and parse_expr_body st =
  match peek st with
  | Lexer.Id "UInt" | Lexer.Id "SInt" -> begin
      let signed = peek st = Lexer.Id "SInt" in
      advance st;
      expect st (Lexer.Punct "<");
      let w = check_width st (expect_int st) in
      expect st (Lexer.Punct ">");
      literal_value st (if signed then Ast.Sint w else Ast.Uint w)
    end
  | Lexer.Id "mux" ->
    advance st;
    expect st (Lexer.Punct "(");
    let c = parse_expr st in
    expect st (Lexer.Punct ",");
    let a = parse_expr st in
    expect st (Lexer.Punct ",");
    let b = parse_expr st in
    expect st (Lexer.Punct ")");
    Ast.Mux (c, a, b)
  | Lexer.Id "validif" ->
    advance st;
    expect st (Lexer.Punct "(");
    let c = parse_expr st in
    expect st (Lexer.Punct ",");
    let a = parse_expr st in
    expect st (Lexer.Punct ")");
    Ast.Validif (c, a)
  | Lexer.Id name ->
    advance st;
    if peek st = Lexer.Punct "(" then begin
      (* Primop: expression arguments then static integer arguments. *)
      advance st;
      let exprs = ref [] and ints = ref [] in
      if not (accept st (Lexer.Punct ")")) then begin
        let rec args () =
          (match peek st with
           | Lexer.Int n ->
             advance st;
             ints := n :: !ints
           | _ -> exprs := parse_expr st :: !exprs);
          if accept st (Lexer.Punct ",") then args () else expect st (Lexer.Punct ")")
        in
        args ()
      end;
      Ast.Primop (name, List.rev !exprs, List.rev !ints)
    end
    else begin
      let path = ref [ name ] in
      while accept st (Lexer.Punct ".") do
        path := expect_id st :: !path
      done;
      Ast.Ref (List.rev !path)
    end
  | t -> error st (Format.asprintf "expected expression, found %a" Lexer.pp_token t)

(* --- Statements ------------------------------------------------------- *)

let rec parse_block st =
  (* Indent stmt* Dedent *)
  skip_newlines st;
  if accept st Lexer.Indent then begin
    let stmts = ref [] in
    let rec go () =
      skip_newlines st;
      if accept st Lexer.Dedent then ()
      else begin
        stmts := parse_stmt st :: !stmts;
        go ()
      end
    in
    go ();
    List.rev !stmts
  end
  else []

and parse_mem st name =
  expect st (Lexer.Punct ":");
  skip_newlines st;
  expect st Lexer.Indent;
  let data_type = ref None
  and depth = ref None
  and read_latency = ref 0
  and write_latency = ref 1
  and readers = ref []
  and writers = ref [] in
  let rec go () =
    skip_newlines st;
    if accept st Lexer.Dedent then ()
    else begin
      let field = expect_id st in
      expect st (Lexer.Punct "=>");
      (match field with
       | "data-type" -> data_type := Some (parse_ty st)
       | "depth" -> depth := Some (expect_int st)
       | "read-latency" -> read_latency := expect_int st
       | "write-latency" -> write_latency := expect_int st
       | "reader" -> readers := expect_id st :: !readers
       | "writer" -> writers := expect_id st :: !writers
       | "read-under-write" -> ignore (expect_id st)
       | "readwriter" -> error st "readwrite memory ports are not supported"
       | f -> error st (Printf.sprintf "unknown memory field %S" f));
      skip_newlines st;
      go ()
    end
  in
  go ();
  match (!data_type, !depth) with
  | Some data_type, Some mem_depth ->
    if mem_depth < 0 then error st (Printf.sprintf "memory depth %d is negative" mem_depth);
    let w = Ast.ty_width data_type in
    (* Overflow-safe: divide instead of multiplying depth × width. *)
    if w > 0 && mem_depth > max_mem_bits / w then
      error st
        (Printf.sprintf "memory %s wants %d × %d bits, over the %d-bit limit" name mem_depth
           w max_mem_bits);
    Ast.Mem
      {
        Ast.mem_def_name = name;
        data_type;
        mem_depth;
        read_latency = !read_latency;
        write_latency = !write_latency;
        readers = List.rev !readers;
        writers = List.rev !writers;
      }
  | _ -> error st "memory needs data-type and depth"

and parse_when st =
  (* Shares the expression depth budget: when-blocks and else-when
     chains recurse through here, and a 100k-deep ladder is as much a
     stack bomb as nested muxes. *)
  if st.depth >= max_nesting then
    error st (Printf.sprintf "when nesting exceeds %d levels" max_nesting);
  st.depth <- st.depth + 1;
  let w = parse_when_body st in
  st.depth <- st.depth - 1;
  w

and parse_when_body st =
  let cond = parse_expr st in
  expect st (Lexer.Punct ":");
  let then_block = parse_block st in
  skip_newlines st;
  let else_block =
    if peek st = Lexer.Id "else" then begin
      advance st;
      if peek st = Lexer.Id "when" then begin
        advance st;
        [ parse_when st ]
      end
      else begin
        expect st (Lexer.Punct ":");
        parse_block st
      end
    end
    else []
  in
  Ast.When (cond, then_block, else_block)

and parse_stmt st : Ast.stmt =
  let loc = here st in
  match next st with
  | Lexer.Id "wire" ->
    let name = expect_id st in
    expect st (Lexer.Punct ":");
    Ast.Wire (name, parse_ty st)
  | Lexer.Id "node" ->
    let name = expect_id st in
    expect st (Lexer.Punct "=");
    Ast.Node (name, parse_expr st)
  | Lexer.Id "reg" ->
    let name = expect_id st in
    expect st (Lexer.Punct ":");
    let ty = parse_ty st in
    expect st (Lexer.Punct ",");
    let _clock = parse_expr st in
    let reset =
      if accept st (Lexer.Id "with") then begin
        expect st (Lexer.Punct ":");
        expect st (Lexer.Punct "(");
        expect st (Lexer.Id "reset");
        expect st (Lexer.Punct "=>");
        expect st (Lexer.Punct "(");
        let sig_ = parse_expr st in
        expect st (Lexer.Punct ",");
        let value = parse_expr st in
        expect st (Lexer.Punct ")");
        expect st (Lexer.Punct ")");
        Some (sig_, value)
      end
      else None
    in
    Ast.Reg { reg_def_name = name; reg_ty = ty; reset }
  | Lexer.Id "inst" ->
    let name = expect_id st in
    expect st (Lexer.Id "of");
    Ast.Inst (name, expect_id st)
  | Lexer.Id "mem" -> parse_mem st (expect_id st)
  | Lexer.Id "when" -> parse_when st
  | Lexer.Id "skip" -> Ast.Skip
  | Lexer.Id "stop" ->
    (* stop(clock, cond, code) *)
    expect st (Lexer.Punct "(");
    let _clock = parse_expr st in
    expect st (Lexer.Punct ",");
    let cond = parse_expr st in
    expect st (Lexer.Punct ",");
    let code = expect_int st in
    expect st (Lexer.Punct ")");
    Ast.Stop (cond, code)
  | Lexer.Id "printf" ->
    (* printf(clock, cond, "fmt", args...): parsed, not simulated. *)
    expect st (Lexer.Punct "(");
    let depth = ref 1 in
    while !depth > 0 do
      (match next st with
       | Lexer.Punct "(" -> incr depth
       | Lexer.Punct ")" -> decr depth
       | Lexer.Eof -> error st "unterminated printf"
       | _ -> ())
    done;
    Ast.Printf_stmt
  | Lexer.Id name ->
    (* Connect or invalidate on a reference. *)
    let path = ref [ name ] in
    while accept st (Lexer.Punct ".") do
      path := expect_id st :: !path
    done;
    let path = List.rev !path in
    (match next st with
     | Lexer.Punct "<=" | Lexer.Punct "<-" -> Ast.Connect (path, parse_expr st)
     | Lexer.Id "is" ->
       expect st (Lexer.Id "invalid");
       Ast.Invalidate path
     | t -> error st (Format.asprintf "expected <= after reference, found %a" Lexer.pp_token t))
  | t -> error_at loc (Format.asprintf "expected statement, found %a" Lexer.pp_token t)

(* --- Modules and circuit ---------------------------------------------- *)

let parse_ports st =
  let ports = ref [] in
  let rec go () =
    skip_newlines st;
    match peek st with
    | Lexer.Id (("input" | "output") as dir) ->
      advance st;
      let name = expect_id st in
      expect st (Lexer.Punct ":");
      let ty = parse_ty st in
      skip_newlines st;
      ports :=
        { Ast.port_name = name; port_dir = (if dir = "input" then Ast.Input else Ast.Output); port_ty = ty }
        :: !ports;
      go ()
    | _ -> ()
  in
  go ();
  List.rev !ports

let parse_module st =
  expect st (Lexer.Id "module");
  let name = expect_id st in
  expect st (Lexer.Punct ":");
  skip_newlines st;
  expect st Lexer.Indent;
  let ports = parse_ports st in
  let body = ref [] in
  let rec go () =
    skip_newlines st;
    if accept st Lexer.Dedent then ()
    else begin
      body := parse_stmt st :: !body;
      go ()
    end
  in
  go ();
  { Ast.module_name = name; ports; body = List.rev !body }

let parse_circuit st =
  skip_newlines st;
  expect st (Lexer.Id "circuit");
  let top = expect_id st in
  expect st (Lexer.Punct ":");
  skip_newlines st;
  expect st Lexer.Indent;
  let modules = ref [] in
  let rec go () =
    skip_newlines st;
    if accept st Lexer.Dedent || peek st = Lexer.Eof then ()
    else begin
      modules := parse_module st :: !modules;
      go ()
    end
  in
  go ();
  { Ast.circuit_top = top; modules = List.rev !modules }

let parse_string src =
  let tokens =
    try Lexer.tokenize src
    with Lexer.Lex_error (line, col, msg) ->
      raise (Parse_error (line, col, "lexical error: " ^ msg))
  in
  parse_circuit { tokens; pos = 0; depth = 0 }

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
