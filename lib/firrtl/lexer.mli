(** Indentation-aware FIRRTL lexer. *)

type token =
  | Id of string
  | Int of int
  | Str of string
  | Punct of string
  | Newline
  | Indent
  | Dedent
  | Eof

exception Lex_error of int * int * string
(** Line, column (both 1-based) and message. *)

val tokenize : string -> (token * int * int) array
(** Token stream with 1-based line and column numbers.  Comments ([;] to
    end of line), file info ([@[...]]) and blank lines are dropped;
    INDENT/DEDENT tokens are synthesized from leading whitespace. *)

val pp_token : Format.formatter -> token -> unit
