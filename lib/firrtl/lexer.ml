type token =
  | Id of string
  | Int of int
  | Str of string
  | Punct of string
  | Newline
  | Indent
  | Dedent
  | Eof

exception Lex_error of int * int * string

let pp_token fmt = function
  | Id s -> Format.fprintf fmt "identifier %S" s
  | Int n -> Format.fprintf fmt "integer %d" n
  | Str s -> Format.fprintf fmt "string %S" s
  | Punct s -> Format.fprintf fmt "%S" s
  | Newline -> Format.pp_print_string fmt "newline"
  | Indent -> Format.pp_print_string fmt "indent"
  | Dedent -> Format.pp_print_string fmt "dedent"
  | Eof -> Format.pp_print_string fmt "end of input"

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$' || c = '-'

let is_digit c = c >= '0' && c <= '9'

(* Identifiers may contain '-' (e.g. "data-type") but must not swallow the
   "=>" of "depth => 16"; a '-' is part of an identifier only when followed
   by an identifier character. *)

let tokenize src =
  let tokens = ref [] in
  let emit line col tok = tokens := (tok, line, col) :: !tokens in
  let lines = String.split_on_char '\n' src in
  let indent_stack = ref [ 0 ] in
  let lineno = ref 0 in
  let lex_line line text =
    let n = String.length text in
    let pos = ref 0 in
    let error ?at msg =
      let col = 1 + match at with Some p -> p | None -> !pos in
      raise (Lex_error (line, col, msg))
    in
    while !pos < n do
      let c = text.[!pos] in
      let col = !pos + 1 in
      if c = ' ' || c = '\t' || c = '\r' then incr pos
      else if c = ';' then pos := n
      else if c = '@' && !pos + 1 < n && text.[!pos + 1] = '[' then begin
        (* Source locators: skip to the closing bracket. *)
        let rec skip i = if i >= n then n else if text.[i] = ']' then i + 1 else skip (i + 1) in
        pos := skip (!pos + 2)
      end
      else if c = '"' then begin
        let start = !pos in
        let buf = Buffer.create 16 in
        let rec go i =
          if i >= n then error ~at:start "unterminated string"
          else
            match text.[i] with
            | '"' -> i + 1
            | '\\' when i + 1 < n ->
              Buffer.add_char buf text.[i + 1];
              go (i + 2)
            | ch ->
              Buffer.add_char buf ch;
              go (i + 1)
        in
        pos := go (!pos + 1);
        emit line col (Str (Buffer.contents buf))
      end
      else if is_digit c then begin
        let start = !pos in
        while !pos < n && is_digit text.[!pos] do
          incr pos
        done;
        let digits = String.sub text start (!pos - start) in
        match int_of_string_opt digits with
        | Some v -> emit line col (Int v)
        | None -> error ~at:start (Printf.sprintf "integer literal %s out of range" digits)
      end
      else if is_id_start c then begin
        let start = !pos in
        incr pos;
        let continue = ref true in
        while !continue && !pos < n do
          let ch = text.[!pos] in
          if ch = '-' then
            if !pos + 1 < n && is_id_char text.[!pos + 1] && text.[!pos + 1] <> '-' then incr pos
            else continue := false
          else if is_id_char ch then incr pos
          else continue := false
        done;
        emit line col (Id (String.sub text start (!pos - start)))
      end
      else begin
        let two = if !pos + 1 < n then String.sub text !pos 2 else "" in
        match two with
        | "<=" | "=>" | "<-" ->
          emit line col (Punct two);
          pos := !pos + 2
        | _ ->
          (match c with
           | ':' | ',' | '(' | ')' | '<' | '>' | '.' | '-' | '=' | '[' | ']' ->
             emit line col (Punct (String.make 1 c));
             incr pos
           | _ -> error (Printf.sprintf "unexpected character %C" c))
      end
    done
  in
  List.iter
    (fun raw ->
      incr lineno;
      let line = !lineno in
      (* Measure indentation; tabs count as a single column like firtool. *)
      let n = String.length raw in
      let rec measure i = if i < n && (raw.[i] = ' ' || raw.[i] = '\t') then measure (i + 1) else i in
      let indent = measure 0 in
      let rest = String.sub raw indent (n - indent) in
      let is_blank =
        String.length rest = 0 || rest.[0] = ';' || String.for_all (fun c -> c = '\r') rest
      in
      if not is_blank then begin
        let top () = match !indent_stack with t :: _ -> t | [] -> 0 in
        if indent > top () then begin
          indent_stack := indent :: !indent_stack;
          emit line (indent + 1) Indent
        end
        else
          while indent < top () do
            (match !indent_stack with
             | _ :: tl -> indent_stack := tl
             | [] -> ());
            emit line (indent + 1) Dedent;
            if indent > top () then
              raise (Lex_error (line, indent + 1, "inconsistent indentation"))
          done;
        lex_line line raw;
        emit line (n + 1) Newline
      end)
    lines;
  let line = !lineno in
  while (match !indent_stack with t :: _ -> t > 0 | [] -> false) do
    (match !indent_stack with _ :: tl -> indent_stack := tl | [] -> ());
    emit line 1 Dedent
  done;
  emit line 1 Eof;
  Array.of_list (List.rev !tokens)
