(** Verilog lexer ([//] and [/* */] comments, sized literals). *)

type token =
  | Id of string
  | Number of int option * Gsim_bits.Bits.t  (** declared size (if sized), value *)
  | Punct of string
  | Eof

exception Lex_error of int * int * string
(** Line, column (both 1-based) and message. *)

val tokenize : string -> (token * int * int) array
(** Token stream with 1-based line and column numbers. *)

val pp_token : Format.formatter -> token -> unit
