module Bits = Gsim_bits.Bits
open Vast

exception Parse_error of int * int * string

(* Resource-bomb limits, mirroring the FIRRTL parser: crafted input must
   fail with a caret diagnostic, never a stack overflow (deep
   parenthesis/begin nesting) or an absurd allocation committed
   downstream (mile-wide ranges, astronomically deep memories, huge
   replication counts). *)
let max_nesting = 200
let max_width = 65_536
let max_mem_bits = 1 lsl 33  (* 1 GiB of memory state *)
let max_repl = 65_536

type state = {
  tokens : (Vlexer.token * int * int) array;
  mutable pos : int;
  mutable depth : int;  (* live expression/statement nesting *)
}

let peek st =
  let t, _, _ = st.tokens.(st.pos) in
  t

let here st =
  let _, l, c = st.tokens.(st.pos) in
  (l, c)

let error_at (l, c) msg = raise (Parse_error (l, c, msg))
let error st msg = error_at (here st) msg
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Format.asprintf "expected %a, found %a" Vlexer.pp_token tok Vlexer.pp_token (peek st))

let expect_id st =
  let loc = here st in
  match next st with
  | Vlexer.Id s -> s
  | t -> error_at loc (Format.asprintf "expected identifier, found %a" Vlexer.pp_token t)

let accept st tok = if peek st = tok then (advance st; true) else false

(* [Bits.to_int] refuses values beyond [max_int]; report those at the
   literal instead of leaking [Failure]. *)
let to_int_at loc b =
  try Bits.to_int b
  with Invalid_argument m | Failure m ->
    error_at loc (Printf.sprintf "constant out of range: %s" m)

let expect_int st =
  let loc = here st in
  match next st with
  | Vlexer.Number (_, b) -> to_int_at loc b
  | t -> error_at loc (Format.asprintf "expected integer, found %a" Vlexer.pp_token t)

(* [msb:lsb].  [check_width] is off for memory address dimensions: a
   word count legitimately exceeds any single value's width limit, and
   the total-footprint check in [parse_decl_tail] bounds it instead. *)
let parse_range ?(check_width = true) st =
  expect st (Vlexer.Punct "[");
  let msb = expect_int st in
  expect st (Vlexer.Punct ":");
  let lsb = expect_int st in
  expect st (Vlexer.Punct "]");
  if msb < lsb then error st "descending ranges only ([msb:lsb] with msb >= lsb)";
  if check_width && msb - lsb + 1 > max_width then
    error st
      (Printf.sprintf "range [%d:%d] is %d bits wide (limit %d)" msb lsb (msb - lsb + 1)
         max_width);
  { msb; lsb }

let maybe_range st = if peek st = Vlexer.Punct "[" then Some (parse_range st) else None

let maybe_mem_range st =
  if peek st = Vlexer.Punct "[" then Some (parse_range ~check_width:false st) else None

(* ------------------------------------------------------------------ *)
(* Expressions (precedence climbing)                                   *)
(* ------------------------------------------------------------------ *)

(* Every recursive entry pays into the shared depth budget, so a
   crafted ((((((... or ~~~~~~... fails with a positioned diagnostic
   instead of blowing the stack. *)
let rec parse_expr st =
  if st.depth >= max_nesting then
    error st (Printf.sprintf "expression nesting exceeds %d levels" max_nesting);
  st.depth <- st.depth + 1;
  let e = parse_ternary st in
  st.depth <- st.depth - 1;
  e

and parse_ternary st =
  let cond = parse_binary st 0 in
  if accept st (Vlexer.Punct "?") then begin
    let a = parse_expr st in
    expect st (Vlexer.Punct ":");
    let b = parse_ternary st in
    E_ternary (cond, a, b)
  end
  else cond

(* Precedence levels, loosest first. *)
and binop_levels =
  [|
    [ ("||", V_log_or) ];
    [ ("&&", V_log_and) ];
    [ ("|", V_or) ];
    [ ("^", V_xor) ];
    [ ("&", V_and) ];
    [ ("==", V_eq); ("!=", V_neq) ];
    [ ("<", V_lt); ("<=", V_le); (">", V_gt); (">=", V_ge) ];
    [ ("<<", V_shl); (">>", V_shr); (">>>", V_ashr) ];
    [ ("+", V_add); ("-", V_sub) ];
    [ ("*", V_mul); ("/", V_div); ("%", V_mod) ];
  |]

and parse_binary st level =
  if level >= Array.length binop_levels then parse_unary st
  else begin
    let ops = binop_levels.(level) in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Vlexer.Punct p when List.mem_assoc p ops ->
        advance st;
        let rhs = parse_binary st (level + 1) in
        lhs := E_binop (List.assoc p ops, !lhs, rhs)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  (* Self-recursive on stacked operators, so it needs its own entry
     into the depth budget — parse_expr never sees a ~~~~~ chain. *)
  if st.depth >= max_nesting then
    error st (Printf.sprintf "expression nesting exceeds %d levels" max_nesting);
  st.depth <- st.depth + 1;
  let e = parse_unary_body st in
  st.depth <- st.depth - 1;
  e

and parse_unary_body st =
  match peek st with
  | Vlexer.Punct "~" ->
    advance st;
    E_unop (V_not, parse_unary st)
  | Vlexer.Punct "-" ->
    advance st;
    E_unop (V_neg, parse_unary st)
  | Vlexer.Punct "!" ->
    advance st;
    E_unop (V_log_not, parse_unary st)
  | Vlexer.Punct "&" ->
    advance st;
    E_unop (V_red_and, parse_unary st)
  | Vlexer.Punct "|" ->
    advance st;
    E_unop (V_red_or, parse_unary st)
  | Vlexer.Punct "^" ->
    advance st;
    E_unop (V_red_xor, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let loc = here st in
  match next st with
  | Vlexer.Number (size, v) -> E_num (size, v)
  | Vlexer.Id name -> (
      if peek st = Vlexer.Punct "[" then begin
        advance st;
        let first = parse_expr st in
        if accept st (Vlexer.Punct ":") then begin
          let lsb = expect_int st in
          expect st (Vlexer.Punct "]");
          match first with
          | E_num (_, b) -> E_range (name, to_int_at loc b, lsb)
          | _ -> error st "part-select bounds must be constants"
        end
        else begin
          expect st (Vlexer.Punct "]");
          E_index (name, first)
        end
      end
      else E_ref name)
  | Vlexer.Punct "(" ->
    let e = parse_expr st in
    expect st (Vlexer.Punct ")");
    e
  | Vlexer.Punct "{" ->
    (* Concatenation or replication. *)
    let first = parse_expr st in
    if peek st = Vlexer.Punct "{" then begin
      (* {N{expr}} *)
      advance st;
      let inner = parse_expr st in
      expect st (Vlexer.Punct "}");
      expect st (Vlexer.Punct "}");
      match first with
      | E_num (_, b) ->
        let n = to_int_at loc b in
        if n < 0 || n > max_repl then
          error_at loc (Printf.sprintf "replication count %d out of range (limit %d)" n max_repl);
        E_repl (n, inner)
      | _ -> error st "replication count must be a constant"
    end
    else begin
      let parts = ref [ first ] in
      while accept st (Vlexer.Punct ",") do
        parts := parse_expr st :: !parts
      done;
      expect st (Vlexer.Punct "}");
      E_concat (List.rev !parts)
    end
  | t -> error_at loc (Format.asprintf "expected expression, found %a" Vlexer.pp_token t)

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let parse_lvalue st =
  let loc = here st in
  let name = expect_id st in
  if peek st = Vlexer.Punct "[" then begin
    advance st;
    let first = parse_expr st in
    if accept st (Vlexer.Punct ":") then begin
      let lsb = expect_int st in
      expect st (Vlexer.Punct "]");
      match first with
      | E_num (_, b) -> L_range (name, to_int_at loc b, lsb)
      | _ -> error st "part-select bounds must be constants"
    end
    else begin
      expect st (Vlexer.Punct "]");
      L_index (name, first)
    end
  end
  else L_id name

let rec parse_stmt st : stmt list =
  (* begin/if/case nest through here; same stack-bomb guard as
     expressions. *)
  if st.depth >= max_nesting then
    error st (Printf.sprintf "statement nesting exceeds %d levels" max_nesting);
  st.depth <- st.depth + 1;
  let ss = parse_stmt_body st in
  st.depth <- st.depth - 1;
  ss

and parse_stmt_body st : stmt list =
  match peek st with
  | Vlexer.Id "begin" ->
    advance st;
    let stmts = ref [] in
    while peek st <> Vlexer.Id "end" do
      stmts := List.rev_append (parse_stmt st) !stmts
    done;
    advance st;
    List.rev !stmts
  | Vlexer.Id "if" ->
    advance st;
    expect st (Vlexer.Punct "(");
    let cond = parse_expr st in
    expect st (Vlexer.Punct ")");
    let then_b = parse_stmt st in
    let else_b = if accept st (Vlexer.Id "else") then parse_stmt st else [] in
    [ S_if (cond, then_b, else_b) ]
  | Vlexer.Id "case" ->
    advance st;
    expect st (Vlexer.Punct "(");
    let scrutinee = parse_expr st in
    expect st (Vlexer.Punct ")");
    let items = ref [] and default = ref [] in
    while peek st <> Vlexer.Id "endcase" do
      if accept st (Vlexer.Id "default") then begin
        ignore (accept st (Vlexer.Punct ":"));
        default := parse_stmt st
      end
      else begin
        let labels = ref [ parse_expr st ] in
        while accept st (Vlexer.Punct ",") do
          labels := parse_expr st :: !labels
        done;
        expect st (Vlexer.Punct ":");
        let body = parse_stmt st in
        items := (List.rev !labels, body) :: !items
      end
    done;
    advance st;
    [ S_case (scrutinee, List.rev !items, !default) ]
  | Vlexer.Punct ";" ->
    advance st;
    []
  | _ ->
    let lv = parse_lvalue st in
    let nonblocking =
      if accept st (Vlexer.Punct "<=") then true
      else if accept st (Vlexer.Punct "=") then false
      else error st "expected <= or = in assignment"
    in
    let rhs = parse_expr st in
    expect st (Vlexer.Punct ";");
    [ (if nonblocking then S_nonblocking (lv, rhs) else S_blocking (lv, rhs)) ]

(* ------------------------------------------------------------------ *)
(* Module items                                                        *)
(* ------------------------------------------------------------------ *)

let parse_decl_tail st kind range =
  (* name [mem range] [= init] { , name ... } ; *)
  let items = ref [] in
  let rec one () =
    let name = expect_id st in
    let mem = maybe_mem_range st in
    (match mem with
     | Some m ->
       let words = m.msb - m.lsb + 1 in
       let w = match range with Some r -> r.msb - r.lsb + 1 | None -> 1 in
       (* Overflow-safe: divide instead of multiplying words × width. *)
       if w > 0 && words > max_mem_bits / w then
         error st
           (Printf.sprintf "memory %s wants %d × %d bits, over the %d-bit limit" name words
              w max_mem_bits)
     | None -> ());
    let init =
      if kind = D_wire && accept st (Vlexer.Punct "=") then Some (parse_expr st) else None
    in
    items := I_decl (kind, range, name, mem, init) :: !items;
    if accept st (Vlexer.Punct ",") then one () else expect st (Vlexer.Punct ";")
  in
  one ();
  List.rev !items

let parse_always st =
  expect st (Vlexer.Punct "@");
  let edge =
    if accept st (Vlexer.Punct "(") then begin
      match next st with
      | Vlexer.Id "posedge" ->
        let clk = expect_id st in
        expect st (Vlexer.Punct ")");
        Posedge clk
      | Vlexer.Punct "*" ->
        expect st (Vlexer.Punct ")");
        Comb
      | t -> error st (Format.asprintf "expected posedge or *, found %a" Vlexer.pp_token t)
    end
    else begin
      expect st (Vlexer.Punct "*");
      Comb
    end
  in
  I_always (edge, parse_stmt st)

let parse_instance st module_name =
  let inst_name = expect_id st in
  expect st (Vlexer.Punct "(");
  let conns = ref [] in
  if not (accept st (Vlexer.Punct ")")) then begin
    let rec conn () =
      expect st (Vlexer.Punct ".");
      let port = expect_id st in
      expect st (Vlexer.Punct "(");
      let e = parse_expr st in
      expect st (Vlexer.Punct ")");
      conns := (port, e) :: !conns;
      if accept st (Vlexer.Punct ",") then conn () else expect st (Vlexer.Punct ")")
    in
    conn ()
  end;
  expect st (Vlexer.Punct ";");
  I_instance (module_name, inst_name, List.rev !conns)

let parse_module st =
  expect st (Vlexer.Id "module");
  let name = expect_id st in
  (* ANSI port list. *)
  let ports = ref [] and port_items = ref [] in
  expect st (Vlexer.Punct "(");
  if not (accept st (Vlexer.Punct ")")) then begin
    let rec port () =
      let loc = here st in
      let dir =
        match next st with
        | Vlexer.Id "input" -> P_input
        | Vlexer.Id "output" -> P_output
        | t ->
          error_at loc (Format.asprintf "expected input/output, found %a" Vlexer.pp_token t)
      in
      let is_reg = accept st (Vlexer.Id "reg") in
      ignore (accept st (Vlexer.Id "wire"));
      let range = maybe_range st in
      let pname = expect_id st in
      ports := { p_dir = dir; p_range = range; p_name = pname } :: !ports;
      if is_reg then port_items := I_decl (D_reg, range, pname, None, None) :: !port_items;
      if accept st (Vlexer.Punct ",") then port () else expect st (Vlexer.Punct ")")
    in
    port ()
  end;
  expect st (Vlexer.Punct ";");
  let items = ref (List.rev !port_items) in
  while peek st <> Vlexer.Id "endmodule" do
    match next st with
    | Vlexer.Id "wire" ->
      let range = maybe_range st in
      items := !items @ parse_decl_tail st D_wire range
    | Vlexer.Id "reg" ->
      let range = maybe_range st in
      items := !items @ parse_decl_tail st D_reg range
    | Vlexer.Id "assign" ->
      let lv = parse_lvalue st in
      expect st (Vlexer.Punct "=");
      let e = parse_expr st in
      expect st (Vlexer.Punct ";");
      items := !items @ [ I_assign (lv, e) ]
    | Vlexer.Id "always" -> items := !items @ [ parse_always st ]
    | Vlexer.Id "integer" | Vlexer.Id "genvar" ->
      error st "integer/genvar declarations are not supported"
    | Vlexer.Id other -> items := !items @ [ parse_instance st other ]
    | t -> error st (Format.asprintf "unexpected %a in module body" Vlexer.pp_token t)
  done;
  advance st;
  { v_name = name; v_ports = List.rev !ports; v_items = !items }

let parse_string src =
  let tokens =
    try Vlexer.tokenize src
    with Vlexer.Lex_error (l, c, msg) -> raise (Parse_error (l, c, "lexical error: " ^ msg))
  in
  let st = { tokens; pos = 0; depth = 0 } in
  let modules = ref [] in
  while peek st <> Vlexer.Eof do
    modules := parse_module st :: !modules
  done;
  List.rev !modules

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse_string src
