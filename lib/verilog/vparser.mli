(** Recursive-descent parser for the supported Verilog subset (ANSI module
    headers). *)

exception Parse_error of int * int * string
(** Line, column (both 1-based) and message. *)

val parse_string : string -> Vast.design

val parse_file : string -> Vast.design
