exception Error of string

let of_ast design =
  match Velaborate.elaborate design with
  | c -> c
  | exception Velaborate.Elab_error msg -> raise (Error ("elaboration: " ^ msg))
  | exception Failure msg -> raise (Error ("elaboration: " ^ msg))
  | exception Invalid_argument msg -> raise (Error ("elaboration: " ^ msg))

let load ?file src =
  match Vparser.parse_string src with
  | design -> of_ast design
  | exception Vparser.Parse_error (line, col, msg) ->
    raise (Error (Gsim_ir.Srcloc.format ?file ~src ~line ~col msg))

let load_string src = load src

let load_file path =
  let src =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> raise (Error msg)
  in
  load ~file:path src
