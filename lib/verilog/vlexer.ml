module Bits = Gsim_bits.Bits

type token =
  | Id of string
  | Number of int option * Bits.t
  | Punct of string
  | Eof

exception Lex_error of int * int * string

let pp_token fmt = function
  | Id s -> Format.fprintf fmt "identifier %S" s
  | Number (_, b) -> Format.fprintf fmt "number %a" Bits.pp b
  | Punct s -> Format.fprintf fmt "%S" s
  | Eof -> Format.pp_print_string fmt "end of input"

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$'
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-character operators, longest first. *)
let puncts = [ ">>>"; "<<"; ">>"; "<="; ">="; "=="; "!="; "&&"; "||" ]

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let pos = ref 0 in
  let col_of p = p - !line_start + 1 in
  let error ?at msg =
    let col = col_of (match at with Some p -> p | None -> !pos) in
    raise (Lex_error (!line, col, msg))
  in
  let emit ~at t = tokens := (t, !line, col_of at) :: !tokens in
  let starts_with s =
    let m = String.length s in
    !pos + m <= n && String.sub src !pos m = s
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos;
      line_start := !pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if starts_with "//" then begin
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done
    end
    else if starts_with "/*" then begin
      let at = !pos in
      pos := !pos + 2;
      let rec skip () =
        if !pos + 1 >= n then error ~at "unterminated comment"
        else if src.[!pos] = '*' && src.[!pos + 1] = '/' then pos := !pos + 2
        else begin
          if src.[!pos] = '\n' then begin
            incr line;
            line_start := !pos + 1
          end;
          incr pos;
          skip ()
        end
      in
      skip ()
    end
    else if is_id_start c then begin
      let start = !pos in
      while !pos < n && is_id_char src.[!pos] do
        incr pos
      done;
      emit ~at:start (Id (String.sub src start (!pos - start)))
    end
    else if is_digit c || c = '\'' then begin
      (* [size]'[base][digits] or a plain decimal. *)
      let start = !pos in
      while !pos < n && (is_digit src.[!pos] || src.[!pos] = '_') do
        incr pos
      done;
      let size_text = String.sub src start (!pos - start) in
      if !pos < n && src.[!pos] = '\'' then begin
        incr pos;
        if !pos >= n then error ~at:start "truncated literal";
        let base = Char.lowercase_ascii src.[!pos] in
        incr pos;
        let dstart = !pos in
        while !pos < n && (is_hex src.[!pos] || src.[!pos] = '_') do
          incr pos
        done;
        let digits =
          String.concat "" (String.split_on_char '_' (String.sub src dstart (!pos - dstart)))
        in
        if digits = "" then error ~at:start "literal without digits";
        let size =
          if size_text = "" then None
          else
            match
              int_of_string_opt (String.concat "" (String.split_on_char '_' size_text))
            with
            | Some w when w > 0 -> Some w
            | _ -> error ~at:start (Printf.sprintf "bad literal size %s" size_text)
        in
        let width = match size with Some w -> w | None -> 32 in
        let value =
          try
            match base with
            | 'h' -> Bits.of_string (Printf.sprintf "%d'h%s" width digits)
            | 'b' -> Bits.of_string (Printf.sprintf "%d'b%s" width digits)
            | 'd' -> Bits.of_string (Printf.sprintf "%d'd%s" width digits)
            | 'o' -> Bits.of_int ~width (int_of_string ("0o" ^ digits))
            | _ -> error ~at:start (Printf.sprintf "unknown literal base %C" base)
          with Invalid_argument _ | Failure _ ->
            error ~at:start
              (Printf.sprintf "literal %s'%c%s does not fit" size_text base digits)
        in
        emit ~at:start (Number (size, value))
      end
      else begin
        let text = String.concat "" (String.split_on_char '_' size_text) in
        match int_of_string_opt text with
        | Some v when (try ignore (Bits.of_int ~width:32 v); true with Invalid_argument _ -> false)
          ->
          emit ~at:start (Number (None, Bits.of_int ~width:32 v))
        | _ -> error ~at:start (Printf.sprintf "decimal literal %s out of range" text)
      end
    end
    else begin
      match List.find_opt starts_with puncts with
      | Some p ->
        emit ~at:!pos (Punct p);
        pos := !pos + String.length p
      | None -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | ':' | '.' | '@' | '#'
          | '?' | '=' | '&' | '|' | '^' | '~' | '+' | '-' | '*' | '/' | '%' | '<'
          | '>' | '!' ->
            emit ~at:!pos (Punct (String.make 1 c));
            incr pos
          | _ -> error (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit ~at:!pos Eof;
  Array.of_list (List.rev !tokens)
