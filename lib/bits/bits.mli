(** Arbitrary-width bit vectors.

    A [Bits.t] is an immutable vector of [width] bits.  Values are plain bit
    patterns; signedness is an interpretation chosen per operation (the
    [_signed] variants sign-extend their operands).  The representation uses
    31-bit limbs stored in native ints so that limb products and carries never
    overflow OCaml's 63-bit integers.

    All operations follow FIRRTL primop semantics for result widths unless
    stated otherwise: the caller passes the desired result width where the
    FIRRTL rule is not intrinsic to the operation. *)

type t

val limb_bits : int
(** Number of payload bits per limb (31). *)

val nlimbs : int -> int
(** [nlimbs w] is the number of limbs backing a [w]-bit vector. *)

val limb : t -> int -> int
(** [limb v i] is the [i]th (little-endian) 31-bit limb, 0 beyond the
    representation.  The native backend's C emitter serializes constants
    and mirrors limb layout with this. *)

val limb64 : t -> int -> int64
(** [limb64 v j] is bits [64j .. 64j+63] as one raw 64-bit limb, 0
    beyond the representation.  The native backend's flat mirror arena
    stores wide values in this layout. *)

val copy : t -> t
(** A physically fresh vector equal to the argument.  Slots owned by the
    native backend are mutated in place by generated code, so any value
    stored into — or read out of — a long-lived slot must be copied to
    keep holders independent. *)

val unsafe_blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s limbs with [src]'s, in place, violating [t]'s
    nominal immutability.  Engine-internal: the runtime's wide arena
    stores values by blitting into each slot's permanent buffer, which
    keeps the hot path allocation-free and makes limb-array sharing
    between slots impossible by construction.  Widths must match. *)

(** {1 Construction} *)

val zero : int -> t
(** [zero width] is the all-zeros vector of [width] bits. [width >= 0]. *)

val one : int -> t
(** [one width] is the vector of [width] bits holding the value 1.
    [width >= 1]. *)

val ones : int -> t
(** [ones width] is the all-ones vector. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits.  Negative [n] sign-extends before truncation. *)

val of_string : string -> t
(** Parses ["<width>'b<binary>"], ["<width>'h<hex>"], ["<width>'d<decimal>"]
    (decimal must fit 62 bits) or a bare binary string whose length is the
    width.  Underscores are ignored.  Raises [Invalid_argument] on
    malformed input. *)

val of_bool_list : bool list -> t
(** [of_bool_list bs] builds a vector from MSB-first bits; width is
    [List.length bs]. *)

val random : Random.State.t -> width:int -> t
(** Uniformly random vector of the given width. *)

(** {1 Observation} *)

val width : t -> int

val equal : t -> t -> bool
(** Structural equality; requires equal widths, otherwise [false]. *)

val compare_unsigned : t -> t -> int
(** Unsigned magnitude comparison.  Widths may differ. *)

val compare_signed : t -> t -> int
(** Two's-complement comparison.  Widths may differ. *)

val is_zero : t -> bool

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = LSB).  Raises [Invalid_argument] when out of
    range. *)

val msb : t -> bool
(** Most significant bit; [false] for width 0. *)

val to_int : t -> int
(** Value as a nonnegative OCaml int.  Raises [Failure] if the value needs
    more than 62 bits. *)

val to_int_trunc : t -> int
(** Low (up to) 62 bits of the value as a nonnegative int; never raises. *)

val to_signed_int : t -> int
(** Two's-complement value.  Raises [Failure] if it does not fit an OCaml
    int. *)

val to_bool_list : t -> bool list
(** MSB-first bits. *)

val to_binary_string : t -> string

val to_hex_string : t -> string

val pp : Format.formatter -> t -> unit
(** Prints as [<width>'h<hex>]. *)

val popcount : t -> int

val hash : t -> int

(** {1 Width adjustment} *)

val zero_extend : t -> width:int -> t
(** Widen with zero bits; [width] must be >= the current width. *)

val sign_extend : t -> width:int -> t

val truncate : t -> width:int -> t
(** Keep the low [width] bits. *)

val resize_unsigned : t -> width:int -> t
(** Zero-extend or truncate as needed. *)

val resize_signed : t -> width:int -> t
(** Sign-extend or truncate as needed. *)

(** {1 Bit manipulation} *)

val extract : t -> hi:int -> lo:int -> t
(** [extract v ~hi ~lo] is bits [hi..lo] inclusive, width [hi - lo + 1].
    Requires [0 <= lo <= hi < width v]. *)

val concat : t -> t -> t
(** [concat hi lo]: [hi] occupies the high bits. *)

val concat_list : t list -> t
(** [concat_list [a; b; c]] = [concat a (concat b c)]; head is most
    significant. *)

val lognot : t -> t

val logand : t -> t -> t
(** Requires equal widths. *)

val logor : t -> t -> t

val logxor : t -> t -> t

val reduce_and : t -> t
(** 1-bit AND reduction; width-0 input gives 1 (vacuous truth). *)

val reduce_or : t -> t

val reduce_xor : t -> t

val shift_left : t -> int -> t
(** [shift_left v n] has width [width v + n] (FIRRTL [shl]). *)

val shift_right : t -> int -> t
(** [shift_right v n] has width [max 1 (width v - n)] (FIRRTL [shr],
    unsigned). *)

val shift_right_signed : t -> int -> t
(** Arithmetic right shift, FIRRTL [shr] on SInt: width
    [max 1 (width v - n)]. *)

val dshl : t -> t -> t
(** Dynamic shift left: result width is
    [width v + 2^(width amount) - 1] per FIRRTL.  The amount is read as
    unsigned. *)

val dshl_keep : t -> t -> t
(** Dynamic shift left keeping the operand width (Verilog-style [<<]). *)

val dshr : t -> t -> t
(** Dynamic logical shift right, keeps width. *)

val dshr_signed : t -> t -> t
(** Dynamic arithmetic shift right, keeps width. *)

(** {1 Arithmetic}

    Unless suffixed [_signed], operands are read as unsigned. *)

val add : t -> t -> t
(** FIRRTL [add]: width [max w1 w2 + 1]. *)

val add_signed : t -> t -> t

val sub : t -> t -> t
(** FIRRTL [sub] on UInts: width [max w1 w2 + 1], two's-complement wrap. *)

val sub_signed : t -> t -> t

val neg : t -> t
(** FIRRTL [neg]: width [w + 1], reading the operand as unsigned. *)

val mul : t -> t -> t
(** Width [w1 + w2]. *)

val mul_signed : t -> t -> t

val div : t -> t -> t
(** Unsigned division, width [w1].  Division by zero yields zero (a defined
    total semantics, checked by the simulator's x-prop-free model). *)

val div_signed : t -> t -> t
(** Signed division truncating toward zero, width [w1 + 1] (FIRRTL). *)

val rem : t -> t -> t
(** Unsigned remainder, width [min w1 w2].  Remainder by zero yields the
    dividend truncated to the result width. *)

val rem_signed : t -> t -> t
(** Signed remainder (sign follows the dividend), width [min w1 w2]. *)

(** {1 Comparisons and selection} *)

val eq : t -> t -> t
(** 1-bit result; operands are zero-extended to a common width. *)

val neq : t -> t -> t

val lt : t -> t -> t

val leq : t -> t -> t

val gt : t -> t -> t

val geq : t -> t -> t

val lt_signed : t -> t -> t

val leq_signed : t -> t -> t

val gt_signed : t -> t -> t

val geq_signed : t -> t -> t

val mux : t -> t -> t -> t
(** [mux sel a b] is [a] when [sel] is nonzero, else [b].  [a] and [b] must
    have equal widths. *)

(** {1 Interaction with the packed runtime representation}

    Engines store values of width <= 62 as raw nonnegative ints.  These
    functions convert between the two without intermediate allocation
    guarantees beyond the obvious. *)

val fits_int : int -> bool
(** [fits_int w] is true when a [w]-bit value is stored as a raw int. *)

val unsafe_of_packed : width:int -> int -> t
(** Interpret a packed nonnegative int as a value of the given width
    (width <= 62; the int must already be in range). *)

val to_packed : t -> int
(** Same as [to_int_trunc]; the caller must know the width fits. *)
