(* Arbitrary-width bit vectors over 31-bit limbs.

   Limbs are little-endian: limb 0 holds bits 0..30.  31-bit limbs guarantee
   that a limb product plus two limb-sized addends is at most 2^62 - 1, the
   largest OCaml int, so schoolbook multiplication never overflows. *)

let limb_bits = 31
let limb_mask = 0x7FFFFFFF

type t = { width : int; limbs : int array }

let nlimbs w = (w + limb_bits - 1) / limb_bits

(* Bits of the top limb that are in range for width [w]. *)
let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize v =
  let n = Array.length v.limbs in
  if n > 0 then v.limbs.(n - 1) <- v.limbs.(n - 1) land top_mask v.width;
  v

let zero w =
  assert (w >= 0);
  { width = w; limbs = Array.make (nlimbs w) 0 }

let ones w =
  assert (w >= 0);
  normalize { width = w; limbs = Array.make (nlimbs w) limb_mask }

let of_int ~width n =
  assert (width >= 0);
  let limbs = Array.make (nlimbs width) 0 in
  for i = 0 to Array.length limbs - 1 do
    let shift = i * limb_bits in
    let x = if shift >= 62 then (if n < 0 then -1 else 0) else n asr shift in
    limbs.(i) <- x land limb_mask
  done;
  normalize { width; limbs }

let one w =
  assert (w >= 1);
  of_int ~width:w 1

let width v = v.width

(* A physically fresh value: callers that store bit vectors into slots the
   native backend may later mutate in place (or that were read from such
   slots) copy first so no two holders share a limb array. *)
let copy v = { width = v.width; limbs = Array.copy v.limbs }

(* Overwrite [dst]'s limbs with [src]'s, in place.  The runtime's wide
   value arena stores values by blitting into each slot's permanent
   buffer (never by replacing the slot object), so slots stay
   allocation-free on the hot path and can never come to share a limb
   array.  Only for equal widths. *)
let unsafe_blit ~src ~dst =
  if src.width <> dst.width then invalid_arg "Bits.unsafe_blit: width mismatch";
  Array.blit src.limbs 0 dst.limbs 0 (Array.length dst.limbs)

let bit v i =
  if i < 0 || i >= v.width then invalid_arg "Bits.bit: index out of range";
  v.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let msb v = v.width > 0 && bit v (v.width - 1)

let is_zero v = Array.for_all (fun x -> x = 0) v.limbs

let equal a b =
  a.width = b.width
  && (let n = Array.length a.limbs in
      let rec go i = i >= n || (a.limbs.(i) = b.limbs.(i) && go (i + 1)) in
      go 0)

(* Limb of [v] at index [i], zero beyond the representation. *)
let limb v i = if i < Array.length v.limbs then v.limbs.(i) else 0

(* 64-bit limb [j] (bits [64j .. 64j+63]) regathered from the 31-bit
   representation; zero beyond it.  The native backend's flat mirror
   arena stores wide values as raw 64-bit limbs, and both the C emitter
   (wide constants) and the runtime's mirror writes use this to
   translate.  Source limbs k0 .. k0+3 are the only ones that can
   overlap the destination window. *)
let limb64 v j =
  let p = 64 * j in
  let k0 = p / 31 in
  let r = ref 0L in
  for k = k0 to k0 + 3 do
    let sh = (31 * k) - p in
    if sh < 64 then begin
      let x = Int64.of_int (limb v k) in
      r :=
        Int64.logor !r
          (if sh >= 0 then Int64.shift_left x sh else Int64.shift_right_logical x (-sh))
    end
  done;
  !r

let compare_unsigned a b =
  let n = max (Array.length a.limbs) (Array.length b.limbs) in
  let rec go i =
    if i < 0 then 0
    else
      let la = limb a i and lb = limb b i in
      if la <> lb then compare la lb else go (i - 1)
  in
  go (n - 1)

let hash v =
  Array.fold_left (fun acc x -> (acc * 31) + x) (v.width * 17) v.limbs

let popcount v =
  let count_limb x =
    let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
    go x 0
  in
  Array.fold_left (fun acc x -> acc + count_limb x) 0 v.limbs

let to_int_trunc v =
  limb v 0 lor (limb v 1 lsl limb_bits)

let to_int v =
  let fits =
    let rec go i = i >= Array.length v.limbs || (v.limbs.(i) = 0 && go (i + 1)) in
    go 2
  in
  if not fits then failwith "Bits.to_int: value exceeds 62 bits";
  to_int_trunc v

let fits_int w = w <= 62

let to_packed = to_int_trunc

let unsafe_of_packed ~width n =
  assert (width <= 62 && n >= 0);
  let limbs = Array.make (nlimbs width) 0 in
  if Array.length limbs > 0 then limbs.(0) <- n land limb_mask;
  if Array.length limbs > 1 then limbs.(1) <- n lsr limb_bits;
  normalize { width; limbs }

let to_bool_list v =
  let rec go i acc = if i >= v.width then acc else go (i + 1) (bit v i :: acc) in
  go 0 []

let of_bool_list bs =
  let w = List.length bs in
  let limbs = Array.make (nlimbs w) 0 in
  List.iteri
    (fun j b ->
      (* [bs] is MSB-first: element j is bit (w - 1 - j). *)
      let i = w - 1 - j in
      if b then limbs.(i / limb_bits) <- limbs.(i / limb_bits) lor (1 lsl (i mod limb_bits)))
    bs;
  { width = w; limbs }

let to_binary_string v =
  if v.width = 0 then "" else String.init v.width (fun j -> if bit v (v.width - 1 - j) then '1' else '0')

let hex_chars = "0123456789abcdef"

let to_hex_string v =
  if v.width = 0 then "0"
  else begin
    (* Hex digit k covers bits 4k .. 4k+3; a digit straddles at most two
       31-bit limbs.  Limbs are normalized, so bits past the width are
       already zero — no masking of the top digit needed.  This runs on
       the checkpoint-serialization hot path (one call per memory word),
       hence the direct limb arithmetic instead of per-bit extraction. *)
    let ndigits = (v.width + 3) / 4 in
    let buf = Bytes.create ndigits in
    let limbs = v.limbs in
    let n = Array.length limbs in
    for k = 0 to ndigits - 1 do
      let p = 4 * k in
      let li = p / limb_bits in
      let off = p - (li * limb_bits) in
      let x = limbs.(li) lsr off in
      let x =
        if off > limb_bits - 4 && li + 1 < n then
          x lor (limbs.(li + 1) lsl (limb_bits - off))
        else x
      in
      Bytes.unsafe_set buf (ndigits - 1 - k) (String.unsafe_get hex_chars (x land 0xF))
    done;
    Bytes.unsafe_to_string buf
  end

let pp fmt v = Format.fprintf fmt "%d'h%s" v.width (to_hex_string v)

let of_string s =
  let s = String.concat "" (String.split_on_char '_' s) in
  let fail () = invalid_arg (Printf.sprintf "Bits.of_string: %S" s) in
  let from_digits w base digits =
    if w <= 0 then fail ();
    match base with
    | 2 ->
      if String.length digits <> 0 && String.length digits <= w
         && String.for_all (fun c -> c = '0' || c = '1') digits
      then begin
        let v = Array.make (nlimbs w) 0 in
        let n = String.length digits in
        String.iteri
          (fun j c ->
            let i = n - 1 - j in
            if c = '1' then v.(i / limb_bits) <- v.(i / limb_bits) lor (1 lsl (i mod limb_bits)))
          digits;
        { width = w; limbs = v }
      end
      else fail ()
    | 16 ->
      (* Direct digit-to-limb scatter (checkpoint parsing reads one value
         per memory word, so this is a resume/recovery hot path).  Digit j
         counted from the least-significant end lands at bit 4j, spanning
         at most two limbs; any bit at or past the width must be zero,
         matching the binary path's reject-on-overflow semantics. *)
      let nd = String.length digits in
      if nd = 0 then fail ();
      let v = Array.make (nlimbs w) 0 in
      for j = 0 to nd - 1 do
        let c = digits.[nd - 1 - j] in
        let x =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail ()
        in
        let p = 4 * j in
        if p >= w then begin if x <> 0 then fail () end
        else begin
          if p + 4 > w && x lsr (w - p) <> 0 then fail ();
          let li = p / limb_bits in
          let off = p - (li * limb_bits) in
          v.(li) <- v.(li) lor ((x lsl off) land limb_mask);
          if off > limb_bits - 4 && li + 1 < Array.length v then
            v.(li + 1) <- v.(li + 1) lor (x lsr (limb_bits - off))
        end
      done;
      { width = w; limbs = v }
    | 10 ->
      let n = try int_of_string digits with _ -> fail () in
      (* Reject values that do not fit, like the binary/hex paths do. *)
      if n < 0 || (w < 62 && n asr w <> 0) then fail ();
      of_int ~width:w n
    | _ -> fail ()
  in
  match String.index_opt s '\'' with
  | Some k ->
    let w = try int_of_string (String.sub s 0 k) with _ -> fail () in
    if k + 1 >= String.length s then fail ();
    let base =
      match s.[k + 1] with
      | 'b' | 'B' -> 2
      | 'h' | 'H' | 'x' | 'X' -> 16
      | 'd' | 'D' -> 10
      | _ -> fail ()
    in
    from_digits w base (String.sub s (k + 2) (String.length s - k - 2))
  | None ->
    if String.length s = 0 || not (String.for_all (fun c -> c = '0' || c = '1') s) then fail ();
    from_digits (String.length s) 2 s

let random st ~width =
  let limbs =
    Array.init (nlimbs width) (fun _ ->
        Random.State.bits st lor ((Random.State.bits st land 1) lsl 30))
  in
  normalize { width; limbs }

(* ------------------------------------------------------------------ *)
(* Width adjustment                                                    *)
(* ------------------------------------------------------------------ *)

let zero_extend v ~width =
  assert (width >= v.width);
  let limbs = Array.make (nlimbs width) 0 in
  Array.blit v.limbs 0 limbs 0 (Array.length v.limbs);
  { width; limbs }

let truncate v ~width =
  assert (width <= v.width);
  let limbs = Array.sub v.limbs 0 (nlimbs width) in
  normalize { width; limbs }

let sign_extend v ~width =
  assert (width >= v.width);
  if not (msb v) then zero_extend v ~width
  else begin
    let limbs = Array.make (nlimbs width) limb_mask in
    Array.blit v.limbs 0 limbs 0 (Array.length v.limbs);
    (* Re-set the sign-extension bits inside the original top limb. *)
    let n = Array.length v.limbs in
    if n > 0 then limbs.(n - 1) <- v.limbs.(n - 1) lor (limb_mask land lnot (top_mask v.width));
    normalize { width; limbs }
  end

let resize_unsigned v ~width =
  if width >= v.width then zero_extend v ~width else truncate v ~width

let resize_signed v ~width =
  if width >= v.width then sign_extend v ~width else truncate v ~width

(* ------------------------------------------------------------------ *)
(* Bit manipulation                                                    *)
(* ------------------------------------------------------------------ *)

let extract v ~hi ~lo =
  if not (0 <= lo && lo <= hi && hi < v.width) then
    invalid_arg
      (Printf.sprintf "Bits.extract: [%d:%d] out of range for width %d" hi lo v.width);
  let w = hi - lo + 1 in
  let limbs = Array.make (nlimbs w) 0 in
  let off = lo mod limb_bits and base = lo / limb_bits in
  for k = 0 to Array.length limbs - 1 do
    let low_part = limb v (base + k) lsr off in
    let high_part = if off = 0 then 0 else limb v (base + k + 1) lsl (limb_bits - off) in
    limbs.(k) <- (low_part lor high_part) land limb_mask
  done;
  normalize { width = w; limbs }

(* OR [src] shifted left by [shift] bits into [dst] (an array of limbs). *)
let or_shifted dst src shift =
  let base = shift / limb_bits and off = shift mod limb_bits in
  let n = Array.length dst in
  Array.iteri
    (fun k x ->
      if x <> 0 then begin
        let i = base + k in
        if i < n then dst.(i) <- dst.(i) lor (x lsl off land limb_mask);
        if off > 0 && i + 1 < n then dst.(i + 1) <- dst.(i + 1) lor (x lsr (limb_bits - off))
      end)
    src

let concat hi lo =
  let w = hi.width + lo.width in
  let limbs = Array.make (nlimbs w) 0 in
  Array.blit lo.limbs 0 limbs 0 (Array.length lo.limbs);
  or_shifted limbs hi.limbs lo.width;
  { width = w; limbs }

let concat_list vs = match List.rev vs with
  | [] -> zero 0
  | last :: rest -> List.fold_left (fun acc v -> concat v acc) last rest

let lognot v =
  normalize { width = v.width; limbs = Array.map (fun x -> lnot x land limb_mask) v.limbs }

let binop_limbs name op a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width);
  { width = a.width; limbs = Array.mapi (fun i x -> op x b.limbs.(i)) a.limbs }

let logand a b = binop_limbs "logand" ( land ) a b
let logor a b = binop_limbs "logor" ( lor ) a b
let logxor a b = binop_limbs "logxor" ( lxor ) a b

let bool_bit b = if b then one 1 else zero 1

let reduce_and v = bool_bit (equal v (ones v.width))
let reduce_or v = bool_bit (not (is_zero v))
let reduce_xor v = bool_bit (popcount v land 1 = 1)

let shift_left v n =
  assert (n >= 0);
  let w = v.width + n in
  let limbs = Array.make (nlimbs w) 0 in
  or_shifted limbs v.limbs n;
  { width = w; limbs }

let shift_right v n =
  assert (n >= 0);
  if n >= v.width then zero 1 else extract v ~hi:(v.width - 1) ~lo:n

let shift_right_signed v n =
  assert (n >= 0);
  if n >= v.width then (if msb v then ones 1 else zero 1)
  else extract v ~hi:(v.width - 1) ~lo:n

(* ------------------------------------------------------------------ *)
(* Arithmetic                                                          *)
(* ------------------------------------------------------------------ *)

(* [a] and [b] are limb arrays; add into a fresh array of [n] limbs. *)
let add_limbs n a b =
  let res = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let x = (if i < Array.length a then a.(i) else 0)
            + (if i < Array.length b then b.(i) else 0)
            + !carry
    in
    res.(i) <- x land limb_mask;
    carry := x lsr limb_bits
  done;
  res

let add a b =
  let w = max a.width b.width + 1 in
  normalize { width = w; limbs = add_limbs (nlimbs w) a.limbs b.limbs }

let add_signed a b =
  let w = max a.width b.width + 1 in
  let a' = sign_extend a ~width:w and b' = sign_extend b ~width:w in
  normalize { width = w; limbs = add_limbs (nlimbs w) a'.limbs b'.limbs }

(* a - b over [w] bits: a + ~b + 1 with operands (zero-)extended first. *)
let sub_width ~signed w a b =
  let ext = if signed then sign_extend else zero_extend in
  let a' = ext a ~width:w and b' = ext b ~width:w in
  let n = nlimbs w in
  let res = Array.make n 0 in
  let carry = ref 1 in
  for i = 0 to n - 1 do
    let x = a'.limbs.(i) + (lnot b'.limbs.(i) land limb_mask) + !carry in
    res.(i) <- x land limb_mask;
    carry := x lsr limb_bits
  done;
  normalize { width = w; limbs = res }

let sub a b = sub_width ~signed:false (max a.width b.width + 1) a b
let sub_signed a b = sub_width ~signed:true (max a.width b.width + 1) a b

let neg v = sub_width ~signed:false (v.width + 1) (zero v.width) v

let mul a b =
  let w = a.width + b.width in
  let n = nlimbs w in
  let res = Array.make n 0 in
  let na = Array.length a.limbs and nb = Array.length b.limbs in
  for i = 0 to na - 1 do
    let ai = a.limbs.(i) in
    if ai <> 0 then begin
      let carry = ref 0 in
      for j = 0 to nb - 1 do
        let k = i + j in
        if k < n then begin
          (* ai * b_j <= (2^31-1)^2; adding res and carry stays <= 2^62 - 1. *)
          let x = res.(k) + (ai * b.limbs.(j)) + !carry in
          res.(k) <- x land limb_mask;
          carry := x lsr limb_bits
        end
      done;
      let k = ref (i + nb) in
      while !carry <> 0 && !k < n do
        let x = res.(!k) + !carry in
        res.(!k) <- x land limb_mask;
        carry := x lsr limb_bits;
        incr k
      done
    end
  done;
  normalize { width = w; limbs = res }

(* Magnitude (absolute value) of a signed reading, as an unsigned vector of
   the same width plus the sign. *)
let signed_magnitude v =
  if msb v then (true, truncate (neg v) ~width:v.width) else (false, v)

let mul_signed a b =
  let sa, ma = signed_magnitude a and sb, mb = signed_magnitude b in
  let m = mul ma mb in
  if sa <> sb then truncate (neg m) ~width:m.width else m

(* Unsigned long division: returns (quotient over [a.width] bits, remainder
   over [a.width] bits).  Division by zero: quotient 0, remainder a. *)
let divmod a b =
  if is_zero b then (zero a.width, a)
  else begin
    let w = a.width in
    let q = Array.make (nlimbs w) 0 in
    let r = ref (zero (b.width + 1)) in
    for i = w - 1 downto 0 do
      (* r := (r << 1) | bit i of a, kept at width b.width + 1. *)
      let shifted = truncate (shift_left !r 1) ~width:(b.width + 1) in
      let shifted =
        if bit a i then logor shifted (zero_extend (one 1) ~width:(b.width + 1)) else shifted
      in
      let b' = zero_extend b ~width:(b.width + 1) in
      if compare_unsigned shifted b' >= 0 then begin
        r := sub_width ~signed:false (b.width + 1) shifted b';
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end
      else r := shifted
    done;
    (normalize { width = w; limbs = q }, resize_unsigned !r ~width:w)
  end

let div a b = fst (divmod a b)

let rem a b =
  let w = min a.width b.width in
  resize_unsigned (snd (divmod a b)) ~width:w

let div_signed a b =
  let w = a.width + 1 in
  if is_zero b then zero w
  else begin
    let sa, ma = signed_magnitude a and sb, mb = signed_magnitude b in
    let q, _ = divmod ma mb in
    let q = zero_extend q ~width:w in
    if sa <> sb then truncate (neg q) ~width:w else q
  end

let rem_signed a b =
  let w = min a.width b.width in
  if is_zero b then resize_signed a ~width:w
  else begin
    let sa, ma = signed_magnitude a and sb, mb = signed_magnitude b in
    ignore sb;
    let _, r = divmod ma mb in
    let r = resize_unsigned r ~width:(w + 1) in
    let r = if sa then truncate (neg r) ~width:(w + 1) else r in
    truncate r ~width:w
  end

(* ------------------------------------------------------------------ *)
(* Comparisons, selection, dynamic shifts                              *)
(* ------------------------------------------------------------------ *)

let eq a b = bool_bit (compare_unsigned a b = 0)
let neq a b = bool_bit (compare_unsigned a b <> 0)
let lt a b = bool_bit (compare_unsigned a b < 0)
let leq a b = bool_bit (compare_unsigned a b <= 0)
let gt a b = bool_bit (compare_unsigned a b > 0)
let geq a b = bool_bit (compare_unsigned a b >= 0)

let compare_signed a b =
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | false, false -> compare_unsigned a b
  | true, true ->
    let w = max a.width b.width in
    compare_unsigned (sign_extend a ~width:w) (sign_extend b ~width:w)

let lt_signed a b = bool_bit (compare_signed a b < 0)
let leq_signed a b = bool_bit (compare_signed a b <= 0)
let gt_signed a b = bool_bit (compare_signed a b > 0)
let geq_signed a b = bool_bit (compare_signed a b >= 0)

let mux sel a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.mux: width mismatch (%d vs %d)" a.width b.width);
  if is_zero sel then b else a

let to_signed_int v =
  if v.width = 0 then 0
  else if v.width <= 62 then begin
    let x = to_int_trunc v in
    if msb v then x - (1 lsl v.width) else x
  end
  else begin
    (* Native ints are 63-bit two's complement, sign at bit 62: the value
       fits iff every bit from 62 upward equals bit 62. *)
    let sign = bit v 62 in
    let rec check i = i >= v.width || (bit v i = sign && check (i + 1)) in
    if not (check 63) then failwith "Bits.to_signed_int: value exceeds native int";
    let x = to_int_trunc v land ((1 lsl 62) - 1) in
    if sign then x - (1 lsl 62) else x
  end

let shift_amount v =
  (* Dynamic shift amount as a clamped int: anything above 2^30 is
     certainly larger than any representable width. *)
  if v.width <= 30 then to_int_trunc v
  else begin
    let high = extract v ~hi:(v.width - 1) ~lo:30 in
    if is_zero high then to_int_trunc (truncate v ~width:30) else max_int / 2
  end

let dshl v amount =
  let max_shift = (1 lsl min amount.width 24) - 1 in
  let w = v.width + max_shift in
  if w > 1 lsl 24 then invalid_arg "Bits.dshl: result width too large";
  let n = shift_amount amount in
  zero_extend (shift_left v n) ~width:w

let dshl_keep v amount =
  let n = shift_amount amount in
  if n >= v.width then zero v.width else truncate (shift_left v n) ~width:v.width

let dshr v amount =
  let n = shift_amount amount in
  if n >= v.width then zero v.width
  else zero_extend (extract v ~hi:(v.width - 1) ~lo:n) ~width:v.width

let dshr_signed v amount =
  let n = shift_amount amount in
  if n >= v.width then (if msb v then ones v.width else zero v.width)
  else sign_extend (extract v ~hi:(v.width - 1) ~lo:n) ~width:v.width
