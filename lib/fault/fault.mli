(** Fault descriptions for injection campaigns.

    A fault names a target signal (by hierarchical name in the {e
    unoptimized} design), a fault model, and the cycle at which it is
    injected.  Faults serialize to a compact key —
    [<target>#<model>@<cycle>] — used as the primary key of the campaign
    database ({!Db}), on the command line ([--fault KEY]), and in
    reports.

    Models:
    - [seu:B] — transient single-event upset: bit [B] flips once at the
      injection cycle.  On a register the flipped value is latched and
      the state evolves from it; on a wire or input the flip lasts one
      cycle.
    - [stuck0:B+D] / [stuck1:B+D] — bit [B] is pinned to 0/1 for [D]
      cycles.
    - [word:<W'hHEX>+D] — the whole word is pinned to the given constant
      for [D] cycles. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type model =
  | Seu of int  (** bit index *)
  | Stuck of bool * int * int  (** stuck value, bit index, duration *)
  | Word_force of Bits.t * int  (** forced value, duration *)

type t = { target : string; model : model; cycle : int }

val model_to_string : model -> string

val model_of_string : string -> model
(** Raises [Failure] on malformed input. *)

val key : t -> string
(** [<target>#<model>@<cycle>], e.g. ["cpu.pc#seu:3@120"]. *)

val of_key : string -> t
(** Inverse of {!key}; raises [Failure] on malformed input.  The target
    is split at the {e last} ['#'] so names containing ['#'] survive. *)

val candidates : Circuit.t -> (string * int) list
(** Named registers and logic nodes (name, width) — the population
    {!random} samples from.  Compiler-generated names (leading ['_'])
    are excluded so fault keys stay meaningful across optimization
    levels. *)

val random :
  ?models:[ `Seu | `Stuck0 | `Stuck1 | `Word ] list ->
  ?duration:int ->
  seed:int -> count:int -> horizon:int -> Circuit.t -> t list
(** [random ~seed ~count ~horizon c] draws [count] faults (deduplicated,
    sorted by key order) over the candidate signals, with injection
    cycles in [\[0, horizon)].  Deterministic in [seed]. *)
