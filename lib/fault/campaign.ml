module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim
module Store = Gsim_resilience.Store

type config = { horizon : int; budget : int }

let default_config = { horizon = 100; budget = 50 }

(* --- Target resolution --------------------------------------------------- *)

type target = { orig_id : int; is_register : bool }
type resolved = Injectable of target | Bad of string

let resolve circuit cfg (f : Fault.t) =
  match Circuit.find_node circuit f.Fault.target with
  | None -> Bad "no-such-node"
  | Some n ->
    let w = n.Circuit.width in
    if f.Fault.cycle < 0 || f.Fault.cycle >= cfg.horizon then Bad "cycle-beyond-horizon"
    else (
      match f.Fault.model with
      | (Fault.Seu b | Fault.Stuck (_, b, _)) when b < 0 || b >= w -> Bad "bit-out-of-range"
      | (Fault.Stuck (_, _, d) | Fault.Word_force (_, d)) when d <= 0 ->
        Bad "nonpositive-duration"
      | Fault.Word_force (v, _) when Bits.width v <> w -> Bad "width-mismatch"
      | _ ->
        Injectable
          {
            orig_id = n.Circuit.id;
            is_register = Circuit.register_of_node circuit n.Circuit.id <> None;
          })

(* --- Golden-state persistence --------------------------------------------
   With [~golden_dir], the golden pass's products — output trace, SEU
   samples, and the fork/compare checkpoints — are persisted through the
   resilience layer's atomic checkpoint store, so an interrupted campaign
   resumes from recorded engine state instead of re-simulating the golden
   run.  Checkpoints are stored by name, so the cache survives changes to
   the forcible set (a resumed shard with fewer remaining faults needs a
   subset of the recorded cycles); the metadata header invalidates it
   when the design, engine configuration, or horizon changes. *)

let golden_trace_name = "golden.gtr"

let pp_value v = Format.asprintf "%a" Bits.pp v

let load_golden store ~design ~config_name ~horizon ~nobs ~ck_wanted ~samples_at =
  let path = Filename.concat (Store.dir store) golden_trace_name in
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let lines =
        String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
      in
      let meta = Hashtbl.create 8 in
      let golden_out = Array.make horizon [] in
      let seen_out = Array.make horizon false in
      let samples = Hashtbl.create 64 in
      List.iter
        (fun line ->
          match String.split_on_char ' ' (String.trim line) with
          | [ "golden"; "1" ] -> ()
          | key :: rest when List.mem key [ "design"; "config"; "horizon"; "observed" ]
            ->
            Hashtbl.replace meta key (String.concat " " rest)
          | "out" :: c :: vs -> (
            match int_of_string_opt c with
            | Some c when c >= 0 && c < horizon ->
              golden_out.(c) <- List.map Bits.of_string vs;
              seen_out.(c) <- true
            | _ -> failwith "golden: cycle out of range")
          | [ "sample"; id; c; v ] -> (
            match (int_of_string_opt id, int_of_string_opt c) with
            | Some id, Some c -> Hashtbl.replace samples (id, c) (Bits.of_string v)
            | _ -> failwith "golden: bad sample line")
          | _ -> failwith "golden: bad line")
        lines;
      let check k v = Hashtbl.find_opt meta k = Some v in
      if
        not
          (check "design" design && check "config" config_name
          && check "horizon" (string_of_int horizon)
          && check "observed" (string_of_int nobs))
      then failwith "golden: stale metadata";
      if not (Array.for_all (fun b -> b) seen_out) then
        failwith "golden: incomplete trace";
      Array.iter
        (fun vs -> if List.length vs <> nobs then failwith "golden: wrong arity")
        golden_out;
      Hashtbl.iter
        (fun c ids ->
          List.iter
            (fun id ->
              if not (Hashtbl.mem samples (id, c)) then failwith "golden: missing sample")
            ids)
        samples_at;
      let cks = Hashtbl.create 64 in
      Hashtbl.iter
        (fun c () ->
          match Store.find store c with
          | Some ck -> Hashtbl.replace cks c ck
          | None -> failwith "golden: missing checkpoint")
        ck_wanted;
      (cks, golden_out, samples)
    with
    | r -> Some r
    | exception _ -> None

let save_golden store ~design ~config_name ~horizon ~nobs ~cks ~golden_out ~samples =
  Hashtbl.iter (fun c ck -> ignore (Store.save store (Checkpoint.with_cycle ck c))) cks;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "golden 1\n";
  Buffer.add_string buf
    (Printf.sprintf "design %s\nconfig %s\nhorizon %d\nobserved %d\n" design config_name
       horizon nobs);
  Array.iteri
    (fun c vs ->
      Buffer.add_string buf (Printf.sprintf "out %d" c);
      List.iter (fun v -> Buffer.add_string buf (" " ^ pp_value v)) vs;
      Buffer.add_char buf '\n')
    golden_out;
  Hashtbl.iter
    (fun (id, c) v ->
      Buffer.add_string buf (Printf.sprintf "sample %d %d %s\n" id c (pp_value v)))
    samples;
  Store.write_atomic (Filename.concat (Store.dir store) golden_trace_name)
    (Buffer.contents buf)

(* --- Campaign ------------------------------------------------------------ *)

(* One golden simulation provides, for every cycle a fault needs:
   - the per-cycle trace of the design's observable outputs (detection);
   - architectural checkpoints at each injection cycle (the fork point)
     and each observation-window end (the latent/masked compare);
   - for SEUs on combinational signals, the golden value of the target
     after the injection step — the flip is expressed as a one-cycle
     force to (golden xor bit), which is engine-independent, unlike
     peeking the faulty simulator's stale slot after a restore.

   Each fault then reuses ONE faulty simulator: release leftover forces,
   restore the fork checkpoint, inject, and run the observation window
   in lockstep against the recorded golden trace.  Both simulators are
   built with the same [forcible] set, so they are the same compilation
   and their checkpoints and id maps interoperate trivially. *)

let run ?(skip = fun _ -> false) ?on_record ?progress ?stop_after
    ?(stimulus = fun _ -> []) ?golden_dir cfg sim_config circuit faults =
  if cfg.horizon <= 0 then invalid_arg "Campaign.run: horizon must be positive";
  let db = Db.create ~design:(Circuit.name circuit) ~horizon:cfg.horizon () in
  let record key r =
    Db.add db key r;
    match on_record with Some f -> f key r | None -> ()
  in
  let faults =
    List.map (fun f -> (Fault.key f, f)) faults
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let todo = List.filter (fun (k, _) -> not (skip k)) faults in
  let todo =
    match stop_after with
    | Some n -> List.filteri (fun i _ -> i < n) todo
    | None -> todo
  in
  let prepared = List.map (fun (k, f) -> (k, f, resolve circuit cfg f)) todo in
  List.iter
    (fun (k, _, res) ->
      match res with
      | Bad reason -> record k { Db.classification = Db.Uninjectable reason; cycles_run = 0 }
      | Injectable _ -> ())
    prepared;
  let inj =
    List.filter_map
      (fun (k, f, res) ->
        match res with Injectable r -> Some (k, f, r) | Bad _ -> None)
      prepared
  in
  if inj = [] then db
  else begin
    let forcible =
      List.map (fun (_, _, r) -> match r with { orig_id; _ } -> orig_id) inj
      |> List.sort_uniq compare
    in
    (* Keep every register alive in both compilations: the latent/masked
       distinction compares architectural state, so the state set must
       not depend on the optimization level or on WHICH faults this
       shard happens to run (dead-register elimination would otherwise
       drop state that no surviving output reads). *)
    let keep =
      List.map (fun (r : Circuit.register) -> r.Circuit.read) (Circuit.registers circuit)
    in
    let faulty = Gsim.instantiate ~forcible ~keep sim_config circuit in
    Fun.protect ~finally:(fun () -> faulty.Gsim.destroy ())
    @@ fun () ->
    let id_map = faulty.Gsim.id_map in
    let sid id = if id >= 0 && id < Array.length id_map then id_map.(id) else -1 in
    (* The lockstep compare watches the ORIGINAL design's outputs only —
       instantiate additionally output-marks the forcible targets (on its
       private copy) so they survive optimization, and treating those as
       observable would turn every latent fault into a detected one. *)
    let observed =
      Circuit.outputs circuit
      |> List.filter_map (fun (n : Circuit.node) ->
             let i = sid n.Circuit.id in
             if i >= 0 then Some i else None)
    in
    let fsim = faulty.Gsim.sim in
    let window_end k = min cfg.horizon (k + max 1 cfg.budget) in
    let ck_wanted = Hashtbl.create 64 in
    let samples_at = Hashtbl.create 64 in
    List.iter
      (fun (_, (f : Fault.t), r) ->
        Hashtbl.replace ck_wanted f.Fault.cycle ();
        Hashtbl.replace ck_wanted (window_end f.Fault.cycle) ();
        match (f.Fault.model, r) with
        | Fault.Seu _, { is_register = false; orig_id } ->
          let prev = try Hashtbl.find samples_at f.Fault.cycle with Not_found -> [] in
          Hashtbl.replace samples_at f.Fault.cycle (orig_id :: prev)
        | _ -> ())
      inj;
    let apply_stim s c =
      List.iter
        (fun (id, v) ->
          let i = sid id in
          if i >= 0 then s.Sim.poke i v)
        (stimulus c)
    in
    (* Golden pass: trace + checkpoints + SEU samples — recomputed only
       when no (valid, covering) persisted golden state exists. *)
    let gstore = Option.map (fun d -> Store.create ~ring:0 d) golden_dir in
    let design = Circuit.name circuit in
    let config_name = sim_config.Gsim.config_name in
    let nobs = List.length observed in
    let cached =
      match gstore with
      | Some store ->
        load_golden store ~design ~config_name ~horizon:cfg.horizon ~nobs ~ck_wanted
          ~samples_at
      | None -> None
    in
    let cks, golden_out, samples =
      match cached with
      | Some x -> x
      | None ->
        let golden = Gsim.instantiate ~forcible ~keep sim_config circuit in
        Fun.protect ~finally:(fun () -> golden.Gsim.destroy ())
        @@ fun () ->
        let gsim = golden.Gsim.sim in
        let cks = Hashtbl.create 64 in
        let samples = Hashtbl.create 64 in
        let golden_out = Array.make cfg.horizon [] in
        for c = 0 to cfg.horizon do
          if Hashtbl.mem ck_wanted c then Hashtbl.replace cks c (Checkpoint.capture gsim);
          if c < cfg.horizon then begin
            apply_stim gsim c;
            gsim.Sim.step ();
            golden_out.(c) <- List.map gsim.Sim.peek observed;
            List.iter
              (fun orig_id ->
                Hashtbl.replace samples (orig_id, c) (gsim.Sim.peek (sid orig_id)))
              (try Hashtbl.find samples_at c with Not_found -> [])
          end
        done;
        (match gstore with
         | Some store ->
           save_golden store ~design ~config_name ~horizon:cfg.horizon ~nobs ~cks
             ~golden_out ~samples
         | None -> ());
        (cks, golden_out, samples)
    in
    (* Per-fault forks. *)
    let active_forces = ref [] in
    let release_due c =
      let due, keep = List.partition (fun (_, at) -> at <= c) !active_forces in
      List.iter (fun (i, _) -> fsim.Sim.release i) due;
      active_forces := keep
    in
    let release_all () = release_due max_int in
    let total = List.length inj and done_ = ref 0 in
    List.iter
      (fun (key, (f : Fault.t), { orig_id; is_register }) ->
        let inject_cycle = f.Fault.cycle in
        let endc = window_end inject_cycle in
        let id = sid orig_id in
        let c = ref inject_cycle in
        (if id < 0 then
           record key { Db.classification = Db.Uninjectable "optimized-away"; cycles_run = 0 }
         else
           match
             release_all ();
             Checkpoint.restore fsim (Hashtbl.find cks inject_cycle);
             let width = (Circuit.node circuit orig_id).Circuit.width in
             (* Bits.shift_left widens by the shift amount; resize back. *)
             let onehot b = Bits.resize_unsigned (Bits.shift_left (Bits.one 1) b) ~width in
             (match f.Fault.model with
              | Fault.Seu b when is_register ->
                (* Latch the flipped value; the state evolves from it. *)
                fsim.Sim.write_reg id (Bits.logxor (fsim.Sim.peek id) (onehot b));
                fsim.Sim.invalidate ()
              | Fault.Seu b ->
                let gv = Hashtbl.find samples (orig_id, inject_cycle) in
                fsim.Sim.force ~mask:(onehot b) id (Bits.logxor gv (onehot b));
                active_forces := [ (id, inject_cycle + 1) ]
              | Fault.Stuck (v, b, d) ->
                let m = onehot b in
                fsim.Sim.force ~mask:m id (if v then m else Bits.zero width);
                active_forces := [ (id, inject_cycle + d) ]
              | Fault.Word_force (v, d) ->
                fsim.Sim.force id v;
                active_forces := [ (id, inject_cycle + d) ]);
             let detected = ref None in
             while !detected = None && !c < endc do
               release_due !c;
               apply_stim fsim !c;
               fsim.Sim.step ();
               if not (List.equal Bits.equal (List.map fsim.Sim.peek observed) golden_out.(!c))
               then detected := Some !c
               else incr c
             done;
             match !detected with
             | Some dc -> { Db.classification = Db.Detected dc; cycles_run = dc - inject_cycle + 1 }
             | None ->
               release_all ();
               let st = Checkpoint.capture fsim in
               let cls =
                 if Checkpoint.equal st (Hashtbl.find cks endc) then Db.Masked else Db.Latent
               in
               { Db.classification = cls; cycles_run = endc - inject_cycle }
           with
           | r -> record key r
           | exception e ->
             (* A fault must never take the campaign down: anything the
                faulty run raises — engine invariant violation, watchdog —
                classifies the fault as a hang and moves on. *)
             (try release_all () with _ -> active_forces := []);
             record key
               {
                 Db.classification = Db.Hang;
                 cycles_run = max 0 (!c - inject_cycle);
               };
             Printf.eprintf "fault %s: hang: %s\n%!" key (Printexc.to_string e));
        incr done_;
        match progress with Some p -> p !done_ total | None -> ())
      inj;
    db
  end
