module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim

type config = { horizon : int; budget : int }

let default_config = { horizon = 100; budget = 50 }

(* --- Target resolution --------------------------------------------------- *)

type target = { orig_id : int; is_register : bool }
type resolved = Injectable of target | Bad of string

let resolve circuit cfg (f : Fault.t) =
  match Circuit.find_node circuit f.Fault.target with
  | None -> Bad "no-such-node"
  | Some n ->
    let w = n.Circuit.width in
    if f.Fault.cycle < 0 || f.Fault.cycle >= cfg.horizon then Bad "cycle-beyond-horizon"
    else (
      match f.Fault.model with
      | (Fault.Seu b | Fault.Stuck (_, b, _)) when b < 0 || b >= w -> Bad "bit-out-of-range"
      | (Fault.Stuck (_, _, d) | Fault.Word_force (_, d)) when d <= 0 ->
        Bad "nonpositive-duration"
      | Fault.Word_force (v, _) when Bits.width v <> w -> Bad "width-mismatch"
      | _ ->
        Injectable
          {
            orig_id = n.Circuit.id;
            is_register = Circuit.register_of_node circuit n.Circuit.id <> None;
          })

(* --- Campaign ------------------------------------------------------------ *)

(* One golden simulation provides, for every cycle a fault needs:
   - the per-cycle trace of the design's observable outputs (detection);
   - architectural checkpoints at each injection cycle (the fork point)
     and each observation-window end (the latent/masked compare);
   - for SEUs on combinational signals, the golden value of the target
     after the injection step — the flip is expressed as a one-cycle
     force to (golden xor bit), which is engine-independent, unlike
     peeking the faulty simulator's stale slot after a restore.

   Each fault then reuses ONE faulty simulator: release leftover forces,
   restore the fork checkpoint, inject, and run the observation window
   in lockstep against the recorded golden trace.  Both simulators are
   built with the same [forcible] set, so they are the same compilation
   and their checkpoints and id maps interoperate trivially. *)

let run ?(skip = fun _ -> false) ?on_record ?progress ?stop_after
    ?(stimulus = fun _ -> []) cfg sim_config circuit faults =
  if cfg.horizon <= 0 then invalid_arg "Campaign.run: horizon must be positive";
  let db = Db.create ~design:(Circuit.name circuit) ~horizon:cfg.horizon () in
  let record key r =
    Db.add db key r;
    match on_record with Some f -> f key r | None -> ()
  in
  let faults =
    List.map (fun f -> (Fault.key f, f)) faults
    |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
  in
  let todo = List.filter (fun (k, _) -> not (skip k)) faults in
  let todo =
    match stop_after with
    | Some n -> List.filteri (fun i _ -> i < n) todo
    | None -> todo
  in
  let prepared = List.map (fun (k, f) -> (k, f, resolve circuit cfg f)) todo in
  List.iter
    (fun (k, _, res) ->
      match res with
      | Bad reason -> record k { Db.classification = Db.Uninjectable reason; cycles_run = 0 }
      | Injectable _ -> ())
    prepared;
  let inj =
    List.filter_map
      (fun (k, f, res) ->
        match res with Injectable r -> Some (k, f, r) | Bad _ -> None)
      prepared
  in
  if inj = [] then db
  else begin
    let forcible =
      List.map (fun (_, _, r) -> match r with { orig_id; _ } -> orig_id) inj
      |> List.sort_uniq compare
    in
    (* Keep every register alive in both compilations: the latent/masked
       distinction compares architectural state, so the state set must
       not depend on the optimization level or on WHICH faults this
       shard happens to run (dead-register elimination would otherwise
       drop state that no surviving output reads). *)
    let keep =
      List.map (fun (r : Circuit.register) -> r.Circuit.read) (Circuit.registers circuit)
    in
    let golden = Gsim.instantiate ~forcible ~keep sim_config circuit in
    let faulty = Gsim.instantiate ~forcible ~keep sim_config circuit in
    Fun.protect
      ~finally:(fun () ->
        golden.Gsim.destroy ();
        faulty.Gsim.destroy ())
    @@ fun () ->
    let id_map = golden.Gsim.id_map in
    let sid id = if id >= 0 && id < Array.length id_map then id_map.(id) else -1 in
    (* The lockstep compare watches the ORIGINAL design's outputs only —
       instantiate additionally output-marks the forcible targets (on its
       private copy) so they survive optimization, and treating those as
       observable would turn every latent fault into a detected one. *)
    let observed =
      Circuit.outputs circuit
      |> List.filter_map (fun (n : Circuit.node) ->
             let i = sid n.Circuit.id in
             if i >= 0 then Some i else None)
    in
    let gsim = golden.Gsim.sim and fsim = faulty.Gsim.sim in
    let window_end k = min cfg.horizon (k + max 1 cfg.budget) in
    let ck_wanted = Hashtbl.create 64 in
    let samples_at = Hashtbl.create 64 in
    List.iter
      (fun (_, (f : Fault.t), r) ->
        Hashtbl.replace ck_wanted f.Fault.cycle ();
        Hashtbl.replace ck_wanted (window_end f.Fault.cycle) ();
        match (f.Fault.model, r) with
        | Fault.Seu _, { is_register = false; orig_id } ->
          let prev = try Hashtbl.find samples_at f.Fault.cycle with Not_found -> [] in
          Hashtbl.replace samples_at f.Fault.cycle (orig_id :: prev)
        | _ -> ())
      inj;
    (* Golden pass: trace + checkpoints + SEU samples. *)
    let cks = Hashtbl.create 64 in
    let samples = Hashtbl.create 64 in
    let golden_out = Array.make cfg.horizon [] in
    let apply_stim s c =
      List.iter
        (fun (id, v) ->
          let i = sid id in
          if i >= 0 then s.Sim.poke i v)
        (stimulus c)
    in
    for c = 0 to cfg.horizon do
      if Hashtbl.mem ck_wanted c then Hashtbl.replace cks c (Checkpoint.capture gsim);
      if c < cfg.horizon then begin
        apply_stim gsim c;
        gsim.Sim.step ();
        golden_out.(c) <- List.map gsim.Sim.peek observed;
        List.iter
          (fun orig_id ->
            Hashtbl.replace samples (orig_id, c) (gsim.Sim.peek (sid orig_id)))
          (try Hashtbl.find samples_at c with Not_found -> [])
      end
    done;
    (* Per-fault forks. *)
    let active_forces = ref [] in
    let release_due c =
      let due, keep = List.partition (fun (_, at) -> at <= c) !active_forces in
      List.iter (fun (i, _) -> fsim.Sim.release i) due;
      active_forces := keep
    in
    let release_all () = release_due max_int in
    let total = List.length inj and done_ = ref 0 in
    List.iter
      (fun (key, (f : Fault.t), { orig_id; is_register }) ->
        let inject_cycle = f.Fault.cycle in
        let endc = window_end inject_cycle in
        let id = sid orig_id in
        let c = ref inject_cycle in
        (if id < 0 then
           record key { Db.classification = Db.Uninjectable "optimized-away"; cycles_run = 0 }
         else
           match
             release_all ();
             Checkpoint.restore fsim (Hashtbl.find cks inject_cycle);
             let width = (Circuit.node circuit orig_id).Circuit.width in
             (* Bits.shift_left widens by the shift amount; resize back. *)
             let onehot b = Bits.resize_unsigned (Bits.shift_left (Bits.one 1) b) ~width in
             (match f.Fault.model with
              | Fault.Seu b when is_register ->
                (* Latch the flipped value; the state evolves from it. *)
                fsim.Sim.write_reg id (Bits.logxor (fsim.Sim.peek id) (onehot b));
                fsim.Sim.invalidate ()
              | Fault.Seu b ->
                let gv = Hashtbl.find samples (orig_id, inject_cycle) in
                fsim.Sim.force ~mask:(onehot b) id (Bits.logxor gv (onehot b));
                active_forces := [ (id, inject_cycle + 1) ]
              | Fault.Stuck (v, b, d) ->
                let m = onehot b in
                fsim.Sim.force ~mask:m id (if v then m else Bits.zero width);
                active_forces := [ (id, inject_cycle + d) ]
              | Fault.Word_force (v, d) ->
                fsim.Sim.force id v;
                active_forces := [ (id, inject_cycle + d) ]);
             let detected = ref None in
             while !detected = None && !c < endc do
               release_due !c;
               apply_stim fsim !c;
               fsim.Sim.step ();
               if not (List.equal Bits.equal (List.map fsim.Sim.peek observed) golden_out.(!c))
               then detected := Some !c
               else incr c
             done;
             match !detected with
             | Some dc -> { Db.classification = Db.Detected dc; cycles_run = dc - inject_cycle + 1 }
             | None ->
               release_all ();
               let st = Checkpoint.capture fsim in
               let cls =
                 if Checkpoint.equal st (Hashtbl.find cks endc) then Db.Masked else Db.Latent
               in
               { Db.classification = cls; cycles_run = endc - inject_cycle }
           with
           | r -> record key r
           | exception e ->
             (* A fault must never take the campaign down: anything the
                faulty run raises — engine invariant violation, watchdog —
                classifies the fault as a hang and moves on. *)
             (try release_all () with _ -> active_forces := []);
             record key
               {
                 Db.classification = Db.Hang;
                 cycles_run = max 0 (!c - inject_cycle);
               };
             Printf.eprintf "fault %s: hang: %s\n%!" key (Printexc.to_string e));
        incr done_;
        match progress with Some p -> p !done_ total | None -> ())
      inj;
    db
  end
