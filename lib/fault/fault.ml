module Bits = Gsim_bits.Bits
open Gsim_ir

type model =
  | Seu of int
  | Stuck of bool * int * int
  | Word_force of Bits.t * int

type t = { target : string; model : model; cycle : int }

let model_to_string = function
  | Seu b -> Printf.sprintf "seu:%d" b
  | Stuck (v, b, d) -> Printf.sprintf "stuck%d:%d+%d" (if v then 1 else 0) b d
  | Word_force (v, d) ->
    Printf.sprintf "word:%d'h%s+%d" (Bits.width v) (Bits.to_hex_string v) d

let key f = Printf.sprintf "%s#%s@%d" f.target (model_to_string f.model) f.cycle

(* Split [s] at the LAST occurrence of [ch]: target names may themselves
   contain '#' or '@' (generated hierarchy separators never do, but a
   hand-written design could), while the model and cycle syntax never
   does. *)
let rsplit ch s =
  match String.rindex_opt s ch with
  | None -> None
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let model_of_string s =
  let fail () = Printf.ksprintf failwith "fault: bad model %S" s in
  let int_of x = match int_of_string_opt x with Some n -> n | None -> fail () in
  let bit_dur rest =
    match String.split_on_char '+' rest with
    | [ b; d ] -> (int_of b, int_of d)
    | _ -> fail ()
  in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i ->
    let head = String.sub s 0 i
    and rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match head with
     | "seu" -> Seu (int_of rest)
     | "stuck0" ->
       let b, d = bit_dur rest in
       Stuck (false, b, d)
     | "stuck1" ->
       let b, d = bit_dur rest in
       Stuck (true, b, d)
     | "word" -> (
       match rsplit '+' rest with
       | Some (v, d) -> (
         match Bits.of_string v with
         | bits -> Word_force (bits, int_of d)
         | exception Invalid_argument _ -> fail ())
       | None -> fail ())
     | _ -> fail ())

let of_key s =
  let fail () = Printf.ksprintf failwith "fault: bad key %S" s in
  match rsplit '@' s with
  | None -> fail ()
  | Some (head, cycle) -> (
    match (rsplit '#' head, int_of_string_opt cycle) with
    | Some (target, model), Some cycle when target <> "" && cycle >= 0 ->
      { target; model = model_of_string model; cycle }
    | _ -> fail ())

(* --- Random campaign generation ---------------------------------------- *)

(* Every named register read and logic node is a candidate; anonymous
   intermediates (names starting with '_') are skipped so keys stay
   meaningful across optimization levels. *)
let candidates c =
  let regs =
    Circuit.registers c
    |> List.filter_map (fun (r : Circuit.register) ->
           let n = Circuit.node c r.Circuit.read in
           if String.length n.Circuit.name > 0 && n.Circuit.name.[0] <> '_' then
             Some (n.Circuit.name, n.Circuit.width)
           else None)
  in
  let wires =
    Circuit.fold_nodes c ~init:[] ~f:(fun acc (n : Circuit.node) ->
        match n.Circuit.kind with
        | Circuit.Logic
          when String.length n.Circuit.name > 0 && n.Circuit.name.[0] <> '_' ->
          (n.Circuit.name, n.Circuit.width) :: acc
        | _ -> acc)
    |> List.rev
  in
  regs @ wires

let random ?(models = [ `Seu; `Stuck0; `Stuck1; `Word ]) ?(duration = 2) ~seed ~count
    ~horizon c =
  if models = [] then invalid_arg "Fault.random: empty model list";
  let pool = Array.of_list (candidates c) in
  if Array.length pool = 0 then []
  else begin
    let st = Random.State.make [| 0x6f17; seed |] in
    let models = Array.of_list models in
    List.init count (fun _ ->
        let name, width = pool.(Random.State.int st (Array.length pool)) in
        let cycle = Random.State.int st (max 1 horizon) in
        let bit = Random.State.int st width in
        let model =
          match models.(Random.State.int st (Array.length models)) with
          | `Seu -> Seu bit
          | `Stuck0 -> Stuck (false, bit, duration)
          | `Stuck1 -> Stuck (true, bit, duration)
          | `Word -> Word_force (Bits.random st ~width, duration)
        in
        { target = name; model; cycle })
    |> List.sort_uniq compare
  end
