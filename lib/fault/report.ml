(* Reports over a campaign database: a human-readable summary grouped by
   target, and machine-readable JSON. *)

let target_of_key key =
  match String.rindex_opt key '#' with
  | Some i -> String.sub key 0 i
  | None -> key

let by_target db =
  let tbl = Hashtbl.create 64 in
  Db.iter db (fun key (r : Db.record) ->
      let t = target_of_key key in
      let det, lat, msk, other =
        try Hashtbl.find tbl t with Not_found -> (0, 0, 0, 0)
      in
      let entry =
        match r.Db.classification with
        | Db.Detected _ -> (det + 1, lat, msk, other)
        | Db.Latent -> (det, lat + 1, msk, other)
        | Db.Masked -> (det, lat, msk + 1, other)
        | Db.Hang | Db.Uninjectable _ -> (det, lat, msk, other + 1)
      in
      Hashtbl.replace tbl t entry);
  Hashtbl.fold (fun t e acc -> (t, e) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pct part total =
  if total = 0 then 0. else 100. *. float_of_int part /. float_of_int total

let to_string ?(latent = 0) db =
  let s = Db.summary db in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "fault campaign: %s\n" db.Db.design;
  add "horizon %d cycle(s), %d fault(s)\n" db.Db.horizon s.Db.total;
  add "  detected      %6d  (%.1f%%)\n" s.Db.detected (pct s.Db.detected s.Db.total);
  add "  latent        %6d  (%.1f%%)\n" s.Db.latent (pct s.Db.latent s.Db.total);
  add "  masked        %6d  (%.1f%%)\n" s.Db.masked (pct s.Db.masked s.Db.total);
  add "  hangs         %6d\n" s.Db.hangs;
  add "  uninjectable  %6d\n" s.Db.uninjectable;
  add "fault coverage: %.1f%% of injectable faults detected\n" (Db.coverage_percent s);
  if s.Db.detected > 0 then
    add "mean detection latency: %.1f cycle(s)\n" s.Db.mean_detection_latency;
  let targets = by_target db in
  if targets <> [] then begin
    add "per-target (detected/latent/masked/other):\n";
    List.iter
      (fun (t, (det, lat, msk, other)) ->
        add "  %-32s %d/%d/%d/%d\n" t det lat msk other)
      targets
  end;
  if latent > 0 then begin
    let shown = ref 0 in
    Db.iter db (fun key (r : Db.record) ->
        if r.Db.classification = Db.Latent && !shown < latent then begin
          if !shown = 0 then add "latent faults (silent data corruption risks):\n";
          incr shown;
          add "  %s\n" key
        end)
  end;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(faults = true) db =
  let s = Db.summary db in
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"design\":\"%s\",\"horizon\":%d,\"total\":%d," (json_escape db.Db.design)
    db.Db.horizon s.Db.total;
  add "\"detected\":%d,\"latent\":%d,\"masked\":%d,\"hangs\":%d,\"uninjectable\":%d,"
    s.Db.detected s.Db.latent s.Db.masked s.Db.hangs s.Db.uninjectable;
  add "\"coverage_percent\":%.2f,\"mean_detection_latency\":%.2f" (Db.coverage_percent s)
    s.Db.mean_detection_latency;
  if faults then begin
    add ",\"faults\":[";
    let first = ref true in
    Db.iter db (fun key (r : Db.record) ->
        if not !first then Buffer.add_char buf ',';
        first := false;
        add "{\"key\":\"%s\",\"class\":\"%s\",\"cycles\":%d}" (json_escape key)
          (json_escape (Db.classification_to_string r.Db.classification))
          r.Db.cycles_run);
    add "]"
  end;
  add "}";
  Buffer.contents buf
