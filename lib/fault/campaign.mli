(** Fault-injection campaign runner.

    A campaign runs one {e golden} (fault-free) simulation of the design
    over [horizon] cycles, recording the per-cycle values of the design's
    outputs and checkpointing the architectural state at every cycle a
    fault will need.  Each fault is then {e forked} from the golden
    checkpoint at its injection cycle into a single reused faulty
    simulator, injected (registers: latch the flipped value; wires and
    inputs: force/release through the engine's override layer), and run
    in lockstep against the golden trace for at most [budget] cycles —
    the per-fault watchdog that bounds every fault's cost.

    Classification ({!Db.classification}):
    - outputs diverge at cycle [c] → [Detected c];
    - no divergence by the window end, architectural state differs from
      the golden checkpoint there → [Latent];
    - state also matches → [Masked];
    - the faulty run raises → [Hang] (the campaign never crashes);
    - unresolvable target / out-of-range bit / bad cycle →
      [Uninjectable].

    Golden and faulty simulators are built by {!Gsim_core.Gsim.instantiate}
    with the same [forcible] set (every resolvable target), so the
    classification of each fault is identical across engine presets and
    evaluation backends. *)

module Bits = Gsim_bits.Bits

type config = {
  horizon : int;  (** golden-run length, in cycles *)
  budget : int;  (** max cycles a fault is observed after injection *)
}

val default_config : config
(** 100 cycles, budget 50. *)

val run :
  ?skip:(string -> bool) ->
  ?on_record:(string -> Db.record -> unit) ->
  ?progress:(int -> int -> unit) ->
  ?stop_after:int ->
  ?stimulus:(int -> (int * Bits.t) list) ->
  ?golden_dir:string ->
  config ->
  Gsim_core.Gsim.config ->
  Gsim_ir.Circuit.t ->
  Fault.t list ->
  Db.t
(** [run cfg sim_config circuit faults] classifies every fault and
    returns the database.

    [skip key] — pre-classified faults to omit ([--resume]);
    [on_record key record] — called as each fault is classified (append
    to the on-disk db for crash safety);
    [progress done total] — called after each injectable fault;
    [stop_after n] — process at most [n] not-skipped faults ([--stop-after],
    sharding / CI interruption);
    [stimulus cycle] — pokes (original-circuit node id, value) applied
    before each cycle's step, identically in the golden and every faulty
    run;
    [golden_dir] — persist the golden pass's products (output trace, SEU
    samples, fork/compare checkpoints) through the crash-safe store of
    {!Gsim_resilience.Store}, and reuse them when a valid covering cache
    is already there — an interrupted campaign resumed with [skip]
    restarts from recorded engine state instead of re-simulating the
    golden run.  The cache is invalidated automatically if the design,
    engine configuration, or horizon changes. *)
