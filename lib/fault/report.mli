(** Render a fault-campaign database. *)

val to_string : ?latent:int -> Db.t -> string
(** Human-readable summary: per-class counts, fault coverage, mean
    detection latency, per-target breakdown.  [?latent] additionally
    lists up to that many latent faults — the silent-corruption risks a
    campaign exists to surface. *)

val to_json : ?faults:bool -> Db.t -> string
(** Machine-readable.  [~faults:false] omits the per-fault array. *)
