(** Fault-campaign results database.

    One record per fault key, classifying the fault's effect:

    - [Detected c] — an observable output diverged from the golden run at
      cycle [c];
    - [Latent] — outputs never diverged inside the observation window but
      the architectural state (registers, memories) differs at its end;
    - [Masked] — the fault left no trace: outputs and final state match
      the golden run;
    - [Hang] — the faulty run crashed or tripped the per-fault watchdog;
    - [Uninjectable reason] — the target does not exist, was optimized
      away, or the fault is out of range (bit index, cycle).

    The database is a self-describing text file (same conventions as
    {!Gsim_coverage.Db}): a [faultdb 1] header, [design]/[horizon]
    metadata, and one [fault <key> <class> <cycles>] line per record,
    sorted by key in the canonical form.  Campaigns append each record as
    it is produced ({!append_record}), so a killed campaign leaves a
    loadable prefix ({!load} with [~lenient:true] drops a torn final
    line) that [--resume] picks up.  Shards over disjoint fault lists
    {!merge}; conflicting classifications for one key raise. *)

type classification =
  | Detected of int  (** cycle of first output divergence *)
  | Latent
  | Masked
  | Hang
  | Uninjectable of string

type record = { classification : classification; cycles_run : int }

type t = {
  mutable design : string;
  mutable horizon : int;
  records : (string, record) Hashtbl.t;
}

val create : ?design:string -> ?horizon:int -> unit -> t

val classification_to_string : classification -> string
(** [detected@C] | [latent] | [masked] | [hang] | [uninjectable:<reason>]. *)

val classification_of_string : string -> classification
(** Raises [Failure] on malformed input. *)

val add : t -> string -> record -> unit
(** Idempotent for identical records; raises [Failure] on a conflicting
    record for an existing key. *)

val find : t -> string -> record option
val mem : t -> string -> bool
val count : t -> int

val iter : t -> (string -> record -> unit) -> unit
(** In canonical (sorted-key) order. *)

val merge : t -> t -> t
(** Union of two shards.  Raises [Failure] on a horizon mismatch (a
    horizon of 0 is a wildcard) or conflicting records. *)

type summary = {
  total : int;
  detected : int;
  latent : int;
  masked : int;
  hangs : int;
  uninjectable : int;
  mean_detection_latency : float;
}

val summary : t -> summary

val coverage_percent : summary -> float
(** Detected over injectable (total minus uninjectable), as a percent. *)

val to_string : t -> string
val equal : t -> t -> bool

val of_string : ?lenient:bool -> string -> t
(** Raises [Failure] on malformed input.  With [~lenient:true] a parse
    failure on the {e final} record line is ignored — the torn-write case
    of a campaign killed mid-append. *)

val save : string -> t -> unit
val load : ?lenient:bool -> string -> t

val init_file : string -> t -> unit
(** Write header plus any existing records, truncating [path] — the
    starting point for {!append_record}. *)

val append_record : string -> string -> record -> unit
(** Append one record line and flush, creating the file if needed. *)
