type classification =
  | Detected of int
  | Latent
  | Masked
  | Hang
  | Uninjectable of string

type record = { classification : classification; cycles_run : int }

type t = {
  mutable design : string;
  mutable horizon : int;
  records : (string, record) Hashtbl.t;
}

let create ?(design = "") ?(horizon = 0) () =
  { design; horizon; records = Hashtbl.create 256 }

(* Reasons appear as one whitespace-free token on a db line. *)
let sanitize_reason r =
  String.map (fun ch -> if ch = ' ' || ch = '\t' || ch = '\n' then '-' else ch) r

let classification_to_string = function
  | Detected c -> Printf.sprintf "detected@%d" c
  | Latent -> "latent"
  | Masked -> "masked"
  | Hang -> "hang"
  | Uninjectable reason -> Printf.sprintf "uninjectable:%s" (sanitize_reason reason)

let classification_of_string s =
  let fail () = Printf.ksprintf failwith "faultdb: bad classification %S" s in
  match s with
  | "latent" -> Latent
  | "masked" -> Masked
  | "hang" -> Hang
  | _ ->
    if String.length s > 9 && String.sub s 0 9 = "detected@" then
      match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
      | Some c -> Detected c
      | None -> fail ()
    else if String.length s > 13 && String.sub s 0 13 = "uninjectable:" then
      Uninjectable (String.sub s 13 (String.length s - 13))
    else fail ()

let add t key record =
  match Hashtbl.find_opt t.records key with
  | Some existing when existing <> record ->
    Printf.ksprintf failwith
      "faultdb: conflicting records for %s (%s/%d vs %s/%d)" key
      (classification_to_string existing.classification)
      existing.cycles_run
      (classification_to_string record.classification)
      record.cycles_run
  | Some _ -> ()
  | None -> Hashtbl.replace t.records key record

let find t key = Hashtbl.find_opt t.records key
let mem t key = Hashtbl.mem t.records key
let count t = Hashtbl.length t.records

let iter t f =
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.records []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (k, r) -> f k r)

(* --- Merge -------------------------------------------------------------- *)

let merge_design a b =
  if a = b then a
  else
    String.split_on_char '+' (a ^ "+" ^ b)
    |> List.filter (fun s -> s <> "")
    |> List.sort_uniq compare |> String.concat "+"

let merge a b =
  if a.horizon <> 0 && b.horizon <> 0 && a.horizon <> b.horizon then
    Printf.ksprintf failwith "faultdb: horizon mismatch (%d vs %d)" a.horizon b.horizon;
  let t = create ~design:(merge_design a.design b.design) ~horizon:(max a.horizon b.horizon) () in
  Hashtbl.iter (fun k r -> add t k r) a.records;
  Hashtbl.iter (fun k r -> add t k r) b.records;
  t

(* --- Summary ------------------------------------------------------------ *)

type summary = {
  total : int;
  detected : int;
  latent : int;
  masked : int;
  hangs : int;
  uninjectable : int;
  mean_detection_latency : float;  (** cycles from injection to divergence *)
}

let summary t =
  let det = ref 0 and lat = ref 0 and msk = ref 0 and hng = ref 0 and uni = ref 0 in
  let latency_sum = ref 0 in
  Hashtbl.iter
    (fun key r ->
      match r.classification with
      | Detected c ->
        incr det;
        let inject =
          match String.rindex_opt key '@' with
          | Some i ->
            Option.value ~default:0
              (int_of_string_opt (String.sub key (i + 1) (String.length key - i - 1)))
          | None -> 0
        in
        latency_sum := !latency_sum + max 0 (c - inject)
      | Latent -> incr lat
      | Masked -> incr msk
      | Hang -> incr hng
      | Uninjectable _ -> incr uni)
    t.records;
  {
    total = Hashtbl.length t.records;
    detected = !det;
    latent = !lat;
    masked = !msk;
    hangs = !hng;
    uninjectable = !uni;
    mean_detection_latency =
      (if !det = 0 then 0. else float_of_int !latency_sum /. float_of_int !det);
  }

let coverage_percent s =
  let injectable = s.total - s.uninjectable in
  if injectable = 0 then 0. else 100. *. float_of_int s.detected /. float_of_int injectable

(* --- Text format ---------------------------------------------------------
   faultdb 1
   design <name>
   horizon <n>
   fault <key> <class> <cycles-run>

   Keys may contain spaces in pathological designs, so records are parsed
   from the right: the last two fields are the classification and cycle
   count, everything between is the key. *)

let record_line key r =
  Printf.sprintf "fault %s %s %d\n" key
    (classification_to_string r.classification)
    r.cycles_run

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "faultdb 1\n";
  Buffer.add_string buf (Printf.sprintf "design %s\n" t.design);
  Buffer.add_string buf (Printf.sprintf "horizon %d\n" t.horizon);
  iter t (fun key r -> Buffer.add_string buf (record_line key r));
  Buffer.contents buf

let equal a b = to_string a = to_string b

let parse_line t line =
  let fail () = Printf.ksprintf failwith "faultdb: bad line %S" line in
  match String.split_on_char ' ' (String.trim line) with
  | [ "design"; name ] -> t.design <- name
  | [ "design" ] -> t.design <- ""
  | [ "horizon"; n ] -> (
    match int_of_string_opt n with
    | Some n -> t.horizon <- n
    | None -> fail ())
  | "fault" :: rest when List.length rest >= 3 ->
    let fields = Array.of_list rest in
    let n = Array.length fields in
    let cycles =
      match int_of_string_opt fields.(n - 1) with Some c -> c | None -> fail ()
    in
    let classification = classification_of_string fields.(n - 2) in
    let key = String.concat " " (Array.to_list (Array.sub fields 0 (n - 2))) in
    add t key { classification; cycles_run = cycles }
  | _ -> fail ()

let of_string ?(lenient = false) s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "") in
  match lines with
  | header :: rest when String.trim header = "faultdb 1" ->
    let t = create () in
    let n = List.length rest in
    List.iteri
      (fun i line ->
        try parse_line t line
        with Failure _ when lenient && i = n - 1 ->
          (* A campaign killed mid-append leaves a torn final line; a
             resuming shard re-runs that fault. *)
          ())
      rest;
    t
  | _ -> fail "faultdb: missing header"

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let load ?lenient path = of_string ?lenient (read_file path)

(* --- Crash-safe appending ------------------------------------------------ *)

let init_file path t =
  let oc = open_out path in
  output_string oc "faultdb 1\n";
  output_string oc (Printf.sprintf "design %s\n" t.design);
  output_string oc (Printf.sprintf "horizon %d\n" t.horizon);
  iter t (fun key r -> output_string oc (record_line key r));
  close_out oc

let append_record path key r =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  output_string oc (record_line key r);
  flush oc;
  close_out oc
