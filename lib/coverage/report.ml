(* Hierarchical coverage reports over a Db.t. *)

type agg = {
  mutable tp : int;  (* toggle points / covered *)
  mutable tc : int;
  mutable np : int;  (* node *)
  mutable nc : int;
  mutable cp : int;  (* condition *)
  mutable cc : int;
  mutable rp : int;  (* reset *)
  mutable rc : int;
}

let new_agg () = { tp = 0; tc = 0; np = 0; nc = 0; cp = 0; cc = 0; rp = 0; rc = 0 }

type scope = { mutable children : (string * scope) list; agg : agg }

let new_scope () = { children = []; agg = new_agg () }

(* Same scope-splitting convention as the VCD dumper. *)
let path_of name =
  String.split_on_char '.' name
  |> List.concat_map (String.split_on_char '$')
  |> List.filter (fun p -> p <> "")

(* The scopes a name contributes to: the root and every ancestor (the last
   path component is the wire, not a scope). *)
let scopes_for root path =
  let rec go scope acc = function
    | [] | [ _ ] -> List.rev acc
    | hd :: rest ->
      let child =
        match List.assoc_opt hd scope.children with
        | Some s -> s
        | None ->
          let s = new_scope () in
          scope.children <- (hd, s) :: scope.children;
          s
      in
      go child (child :: acc) rest
  in
  root :: go root [] path

let build (db : Db.t) =
  let root = new_scope () in
  let touch name f = List.iter (fun s -> f s.agg) (scopes_for root (path_of name)) in
  Hashtbl.iter
    (fun name (tg : Db.toggle) ->
      let covered = ref 0 in
      for b = 0 to tg.Db.t_width - 1 do
        if tg.Db.rise.(b) > 0 then incr covered;
        if tg.Db.fall.(b) > 0 then incr covered
      done;
      touch name (fun a ->
          a.tp <- a.tp + (2 * tg.Db.t_width);
          a.tc <- a.tc + !covered))
    db.Db.toggles;
  Hashtbl.iter
    (fun name (n : Db.node_cov) ->
      touch name (fun a ->
          a.np <- a.np + 1;
          if n.Db.changes > 0 then a.nc <- a.nc + 1))
    db.Db.nodes;
  Hashtbl.iter
    (fun (name, _) (c : Db.cond) ->
      touch name (fun a ->
          a.cp <- a.cp + 2;
          if c.Db.seen_true then a.cc <- a.cc + 1;
          if c.Db.seen_false then a.cc <- a.cc + 1))
    db.Db.conds;
  Hashtbl.iter
    (fun name (r : Db.reset_cov) ->
      touch name (fun a ->
          a.rp <- a.rp + 1;
          if r.Db.seen_on then a.rc <- a.rc + 1))
    db.Db.resets;
  root

(* --- Uncovered listing -------------------------------------------------- *)

let uncovered_list (db : Db.t) =
  let acc = ref [] in
  let add fmt = Printf.ksprintf (fun s -> acc := s :: !acc) fmt in
  Hashtbl.iter
    (fun name (tg : Db.toggle) ->
      for b = 0 to tg.Db.t_width - 1 do
        if tg.Db.rise.(b) = 0 then add "toggle %s[%d] never rose" name b;
        if tg.Db.fall.(b) = 0 then add "toggle %s[%d] never fell" name b
      done)
    db.Db.toggles;
  Hashtbl.iter
    (fun name (n : Db.node_cov) ->
      if n.Db.changes = 0 then add "node %s never changed" name)
    db.Db.nodes;
  Hashtbl.iter
    (fun (name, idx) (c : Db.cond) ->
      if not c.Db.seen_true then add "cond %s#%d true arm never taken" name idx;
      if not c.Db.seen_false then add "cond %s#%d false arm never taken" name idx)
    db.Db.conds;
  Hashtbl.iter
    (fun name (r : Db.reset_cov) ->
      if not r.Db.seen_on then add "reset %s never asserted" name)
    db.Db.resets;
  List.sort compare !acc

let uncovered = uncovered_list

(* --- Text rendering ----------------------------------------------------- *)

let pct covered total = Db.percent ~covered ~total

let kind_cell label covered total =
  if total = 0 then Printf.sprintf "%s      -" label
  else Printf.sprintf "%s %5.1f%%" label (pct covered total)

let pp ?(uncovered = 0) fmt (db : Db.t) =
  let s = Db.summary db in
  Format.fprintf fmt "design %s: %d run(s), %d cycles@."
    (if db.Db.design = "" then "?" else db.Db.design)
    db.Db.runs db.Db.total_cycles;
  Format.fprintf fmt
    "total %.1f%%  toggle %.1f%% (%d/%d)  node %.1f%% (%d/%d)  cond %.1f%% (%d/%d)  reset %.1f%% (%d/%d)@."
    (Db.total_percent s)
    (pct s.Db.toggle_covered s.Db.toggle_points)
    s.Db.toggle_covered s.Db.toggle_points
    (pct s.Db.node_covered s.Db.node_points)
    s.Db.node_covered s.Db.node_points
    (pct s.Db.cond_covered s.Db.cond_points)
    s.Db.cond_covered s.Db.cond_points
    (pct s.Db.reset_covered s.Db.reset_points)
    s.Db.reset_covered s.Db.reset_points;
  let root = build db in
  let rec emit indent name scope =
    if name <> "" then
      Format.fprintf fmt "%s%-*s %s %s %s %s@." indent
        (max 1 (24 - String.length indent))
        name
        (kind_cell "toggle" scope.agg.tc scope.agg.tp)
        (kind_cell "node" scope.agg.nc scope.agg.np)
        (kind_cell "cond" scope.agg.cc scope.agg.cp)
        (kind_cell "reset" scope.agg.rc scope.agg.rp);
    List.iter
      (fun (cname, child) -> emit (if name = "" then indent else indent ^ "  ") cname child)
      (List.sort (fun (a, _) (b, _) -> compare a b) scope.children)
  in
  emit "" "" root;
  if uncovered > 0 then begin
    let items = uncovered_list db in
    let total = List.length items in
    Format.fprintf fmt "uncovered: %d point(s)@." total;
    List.iteri (fun i item -> if i < uncovered then Format.fprintf fmt "  %s@." item) items;
    if total > uncovered then Format.fprintf fmt "  ... and %d more@." (total - uncovered)
  end

let to_string ?uncovered db = Format.asprintf "%a" (fun fmt -> pp ?uncovered fmt) db

(* --- JSON --------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_kind buf label covered total =
  Buffer.add_string buf
    (Printf.sprintf "\"%s\":{\"covered\":%d,\"total\":%d,\"percent\":%.2f}" label covered
       total (pct covered total))

let to_json ?(uncovered = false) (db : Db.t) =
  let buf = Buffer.create 4096 in
  let s = Db.summary db in
  Buffer.add_string buf
    (Printf.sprintf "{\"design\":\"%s\",\"runs\":%d,\"cycles\":%d,\"summary\":{"
       (json_escape db.Db.design) db.Db.runs db.Db.total_cycles);
  json_kind buf "toggle" s.Db.toggle_covered s.Db.toggle_points;
  Buffer.add_char buf ',';
  json_kind buf "node" s.Db.node_covered s.Db.node_points;
  Buffer.add_char buf ',';
  json_kind buf "cond" s.Db.cond_covered s.Db.cond_points;
  Buffer.add_char buf ',';
  json_kind buf "reset" s.Db.reset_covered s.Db.reset_points;
  Buffer.add_string buf (Printf.sprintf ",\"percent\":%.2f}" (Db.total_percent s));
  let root = build db in
  let rec emit_scope name scope =
    Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\"," (json_escape name));
    json_kind buf "toggle" scope.agg.tc scope.agg.tp;
    Buffer.add_char buf ',';
    json_kind buf "node" scope.agg.nc scope.agg.np;
    Buffer.add_char buf ',';
    json_kind buf "cond" scope.agg.cc scope.agg.cp;
    Buffer.add_char buf ',';
    json_kind buf "reset" scope.agg.rc scope.agg.rp;
    Buffer.add_string buf ",\"children\":[";
    List.iteri
      (fun i (cname, child) ->
        if i > 0 then Buffer.add_char buf ',';
        emit_scope cname child)
      (List.sort (fun (a, _) (b, _) -> compare a b) scope.children);
    Buffer.add_string buf "]}"
  in
  Buffer.add_string buf ",\"scopes\":[";
  List.iteri
    (fun i (cname, child) ->
      if i > 0 then Buffer.add_char buf ',';
      emit_scope cname child)
    (List.sort (fun (a, _) (b, _) -> compare a b) root.children);
  Buffer.add_char buf ']';
  if uncovered then begin
    Buffer.add_string buf ",\"uncovered\":[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape item)))
      (uncovered_list db);
    Buffer.add_char buf ']'
  end;
  Buffer.add_char buf '}';
  Buffer.contents buf
