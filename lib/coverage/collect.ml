module Bits = Gsim_bits.Bits
module Sim = Gsim_engine.Sim
module Activity = Gsim_engine.Activity
open Gsim_ir

type sig_point = {
  sp_node : int;
  mutable sp_last : Bits.t;
  sp_toggle : Db.toggle;
  sp_cov : Db.node_cov;
}

type cond_point = {
  cp_sel : Expr.t;
  mutable cp_last : bool;
  cp_cond : Db.cond;
}

type reset_point = {
  rp_signal : int;
  mutable rp_last : bool;
  rp_cov : Db.reset_cov;
}

type t = {
  cdb : Db.t;
  peek : int -> Bits.t;
  sigs : sig_point array;
  conds : cond_point array;
  resets : reset_point array;
  (* Fast path: point indexes are 0..nsigs-1 for signals, then conditions,
     then resets; [watchers.(id)] lists the points to re-sample when node
     [id] changes. *)
  watchers : int array array;
  dirty : bool array;
  dirty_stack : int array;
  mutable dirty_len : int;
}

let db t = t.cdb

let default_observed c =
  Circuit.fold_nodes c ~init:[] ~f:(fun acc n -> n.Circuit.id :: acc) |> List.rev

let point_name c id =
  let name = (Circuit.node c id).Circuit.name in
  if name = "" then Printf.sprintf "n%d" id else name

(* Pre-order mux enumeration of a node expression: (index, selector). *)
let muxes_of expr =
  let acc = ref [] in
  let idx = ref 0 in
  let rec go (e : Expr.t) =
    match e.Expr.desc with
    | Expr.Mux (sel, a, b) ->
      let i = !idx in
      incr idx;
      acc := (i, sel) :: !acc;
      go sel;
      go a;
      go b
    | Expr.Unop (_, x) -> go x
    | Expr.Binop (_, x, y) ->
      go x;
      go y
    | Expr.Const _ | Expr.Var _ -> ()
  in
  go expr;
  List.rev !acc

(* --- Sampling ----------------------------------------------------------- *)

let sample_sig t p =
  let v = t.peek p.sp_node in
  if not (Bits.equal v p.sp_last) then begin
    let flipped = Bits.logxor v p.sp_last in
    let tg = p.sp_toggle in
    for b = 0 to tg.Db.t_width - 1 do
      if Bits.bit flipped b then
        if Bits.bit v b then tg.Db.rise.(b) <- tg.Db.rise.(b) + 1
        else tg.Db.fall.(b) <- tg.Db.fall.(b) + 1
    done;
    p.sp_cov.Db.changes <- p.sp_cov.Db.changes + 1;
    p.sp_last <- v
  end

let sample_cond t p =
  let v = not (Bits.is_zero (Expr.eval t.peek p.cp_sel)) in
  let c = p.cp_cond in
  if v then c.Db.seen_true <- true else c.Db.seen_false <- true;
  if v <> p.cp_last then begin
    if v then c.Db.taken_true <- c.Db.taken_true + 1
    else c.Db.taken_false <- c.Db.taken_false + 1;
    p.cp_last <- v
  end

let sample_reset t p =
  let v = not (Bits.is_zero (t.peek p.rp_signal)) in
  let r = p.rp_cov in
  if v then r.Db.seen_on <- true else r.Db.seen_off <- true;
  if v <> p.rp_last then begin
    if v then r.Db.asserts <- r.Db.asserts + 1
    else r.Db.deasserts <- r.Db.deasserts + 1;
    p.rp_last <- v
  end

let sample_point t pi =
  let nsigs = Array.length t.sigs in
  let nconds = Array.length t.conds in
  if pi < nsigs then sample_sig t t.sigs.(pi)
  else if pi < nsigs + nconds then sample_cond t t.conds.(pi - nsigs)
  else sample_reset t t.resets.(pi - nsigs - nconds)

let sample_all t =
  Array.iter (sample_sig t) t.sigs;
  Array.iter (sample_cond t) t.conds;
  Array.iter (sample_reset t) t.resets

(* Baseline: record current values and observation flags, count nothing. *)
let baseline t =
  Array.iter (fun p -> p.sp_last <- t.peek p.sp_node) t.sigs;
  Array.iter
    (fun p ->
      let v = not (Bits.is_zero (Expr.eval t.peek p.cp_sel)) in
      if v then p.cp_cond.Db.seen_true <- true else p.cp_cond.Db.seen_false <- true;
      p.cp_last <- v)
    t.conds;
  Array.iter
    (fun p ->
      let v = not (Bits.is_zero (t.peek p.rp_signal)) in
      if v then p.rp_cov.Db.seen_on <- true else p.rp_cov.Db.seen_off <- true;
      p.rp_last <- v)
    t.resets

(* --- Dirty tracking (fast path) ----------------------------------------- *)

let mark t pi =
  if not t.dirty.(pi) then begin
    t.dirty.(pi) <- true;
    t.dirty_stack.(t.dirty_len) <- pi;
    t.dirty_len <- t.dirty_len + 1
  end

let mark_watchers t id =
  if id >= 0 && id < Array.length t.watchers then
    Array.iter (mark t) t.watchers.(id)

let mark_all t =
  let n = Array.length t.dirty in
  for pi = 0 to n - 1 do
    mark t pi
  done

let flush_dirty t =
  for i = 0 to t.dirty_len - 1 do
    let pi = t.dirty_stack.(i) in
    t.dirty.(pi) <- false;
    sample_point t pi
  done;
  t.dirty_len <- 0

(* --- Construction ------------------------------------------------------- *)

let build ?observe ~fast circuit peek =
  let cdb = Db.create ~design:(Circuit.name circuit) () in
  cdb.Db.runs <- 1;
  let observe = match observe with Some o -> o | None -> default_observed circuit in
  let sigs =
    observe
    |> List.map (fun id ->
           let name = point_name circuit id in
           let width = (Circuit.node circuit id).Circuit.width in
           {
             sp_node = id;
             sp_last = Bits.zero width;
             sp_toggle = Db.toggle_entry cdb name ~width;
             sp_cov = Db.node_entry cdb name ~width;
           })
    |> Array.of_list
  in
  let conds =
    observe
    |> List.concat_map (fun id ->
           match (Circuit.node circuit id).Circuit.expr with
           | None -> []
           | Some e ->
             let name = point_name circuit id in
             List.map
               (fun (idx, sel) ->
                 { cp_sel = sel; cp_last = false; cp_cond = Db.cond_entry cdb name idx })
               (muxes_of e))
    |> Array.of_list
  in
  let resets =
    Circuit.registers circuit
    |> List.filter_map (fun (r : Circuit.register) ->
           match r.reset with
           | None -> None
           | Some rst ->
             Some
               {
                 rp_signal = rst.Circuit.reset_signal;
                 rp_last = false;
                 rp_cov = Db.reset_entry cdb r.Circuit.reg_name;
               })
    |> Array.of_list
  in
  let npoints = Array.length sigs + Array.length conds + Array.length resets in
  let watchers =
    if not fast then [||]
    else begin
      let lists = Array.make (Circuit.max_id circuit) [] in
      let watch id pi =
        if id >= 0 && id < Array.length lists then lists.(id) <- pi :: lists.(id)
      in
      Array.iteri (fun i p -> watch p.sp_node i) sigs;
      let nsigs = Array.length sigs in
      Array.iteri
        (fun j p -> List.iter (fun v -> watch v (nsigs + j)) (Expr.vars p.cp_sel))
        conds;
      let nconds = Array.length conds in
      Array.iteri (fun k p -> watch p.rp_signal (nsigs + nconds + k)) resets;
      Array.map (fun l -> Array.of_list (List.rev l)) lists
    end
  in
  let t =
    {
      cdb;
      peek;
      sigs;
      conds;
      resets;
      watchers;
      dirty = Array.make (max npoints 1) false;
      dirty_stack = Array.make (max npoints 1) 0;
      dirty_len = 0;
    }
  in
  baseline t;
  t

let create ?observe (sim : Sim.t) =
  let t = build ?observe ~fast:false sim.Sim.circuit sim.Sim.peek in
  let wrapped =
    {
      sim with
      Sim.sim_name = sim.Sim.sim_name ^ "+cov";
      step =
        (fun () ->
          sim.Sim.step ();
          t.cdb.Db.total_cycles <- t.cdb.Db.total_cycles + 1;
          sample_all t);
    }
  in
  (t, wrapped)

let of_activity ?observe ?name engine =
  let sim = Activity.sim ?name engine in
  let t = build ?observe ~fast:true sim.Sim.circuit sim.Sim.peek in
  Activity.set_change_hook engine (fun id -> mark_watchers t id);
  let wrapped =
    {
      sim with
      Sim.sim_name = sim.Sim.sim_name ^ "+cov";
      poke =
        (fun id v ->
          sim.Sim.poke id v;
          mark_watchers t id);
      step =
        (fun () ->
          sim.Sim.step ();
          t.cdb.Db.total_cycles <- t.cdb.Db.total_cycles + 1;
          flush_dirty t);
      write_reg =
        (fun id v ->
          sim.Sim.write_reg id v;
          mark_all t);
      invalidate =
        (fun () ->
          sim.Sim.invalidate ();
          mark_all t);
    }
  in
  (t, wrapped)
