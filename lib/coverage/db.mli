(** The mergeable coverage database.

    A database accumulates four kinds of coverage points, all keyed by
    node (or register) name so that records from independent runs of the
    same design — different programs, different engines, different
    SimPoint checkpoint slices — line up:

    - {e toggle}: per bit of a node, how often it rose (0→1) and fell
      (1→0), counted over consecutive cycle-end samples;
    - {e node}: how often a node's cycle-end value changed at all;
    - {e condition}: per mux inside a node's expression, how often the
      selector switched into each arm, plus whether each arm was ever
      observed selected (including the initial sample);
    - {e reset}: per register with a reset, how often the reset signal
      asserted and deasserted, and whether each state was observed.

    All quantities are defined over cycle-end samples, never over engine
    internals, so a full-cycle engine resampling everything and an
    activity engine sampling only changed nodes produce bit-identical
    databases for the same trace.

    [merge] sums the counts and ORs the observation flags: it is
    associative and commutative on the whole database, and idempotent on
    the derived {!summary} (covered-ness never changes when a database is
    merged with itself).  The text format follows the same self-describing
    conventions as {!Gsim_engine.Checkpoint}. *)

type toggle = {
  t_width : int;
  rise : int array;  (** 0→1 transitions, per bit (index 0 = LSB) *)
  fall : int array;  (** 1→0 transitions, per bit *)
}

type node_cov = { n_width : int; mutable changes : int }

type cond = {
  mutable taken_true : int;   (** selector transitions into the true arm *)
  mutable taken_false : int;
  mutable seen_true : bool;   (** selector observed true (incl. baseline) *)
  mutable seen_false : bool;
}

type reset_cov = {
  mutable asserts : int;      (** transitions into the asserted state *)
  mutable deasserts : int;
  mutable seen_on : bool;
  mutable seen_off : bool;
}

type t = {
  mutable design : string;
  mutable runs : int;
  mutable total_cycles : int;
  nodes : (string, node_cov) Hashtbl.t;
  toggles : (string, toggle) Hashtbl.t;
  conds : (string * int, cond) Hashtbl.t;
      (** keyed by owning node name and pre-order mux index within its
          expression *)
  resets : (string, reset_cov) Hashtbl.t;  (** keyed by register name *)
}

val create : ?design:string -> unit -> t
(** An empty database with [runs = 0]. *)

(** {1 Entry accessors (used by the collector)}

    Find-or-create; an existing entry's width must match. *)

val node_entry : t -> string -> width:int -> node_cov
val toggle_entry : t -> string -> width:int -> toggle
val cond_entry : t -> string -> int -> cond
val reset_entry : t -> string -> reset_cov

(** {1 Merge} *)

val merge : t -> t -> t
(** Pure: neither input is modified.  Counts are summed, observation flags
    ORed, [runs] and [total_cycles] summed.  Raises [Failure] when the
    same name carries different widths in the two databases. *)

val equal : t -> t -> bool
(** Structural equality of the canonical (sorted) form. *)

(** {1 Summary} *)

type summary = {
  toggle_points : int;   (** 2 per bit: the rise point and the fall point *)
  toggle_covered : int;
  node_points : int;     (** 1 per node *)
  node_covered : int;    (** nodes whose value changed at least once *)
  cond_points : int;     (** 2 per mux: each arm observed selected *)
  cond_covered : int;
  reset_points : int;    (** 1 per register with a reset *)
  reset_covered : int;   (** resets observed asserted at least once *)
}

val summary : t -> summary

val summary_equal : summary -> summary -> bool

val percent : covered:int -> total:int -> float
(** 100 when [total = 0] (vacuously covered). *)

val total_percent : summary -> float
(** Covered share over all point kinds together. *)

(** {1 Persistence (self-describing text, like [Checkpoint])} *)

val to_string : t -> string
(** Canonical: entries are sorted, so equal databases print identically. *)

val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val save : string -> t -> unit
val load : string -> t
