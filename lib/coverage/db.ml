type toggle = { t_width : int; rise : int array; fall : int array }

type node_cov = { n_width : int; mutable changes : int }

type cond = {
  mutable taken_true : int;
  mutable taken_false : int;
  mutable seen_true : bool;
  mutable seen_false : bool;
}

type reset_cov = {
  mutable asserts : int;
  mutable deasserts : int;
  mutable seen_on : bool;
  mutable seen_off : bool;
}

type t = {
  mutable design : string;
  mutable runs : int;
  mutable total_cycles : int;
  nodes : (string, node_cov) Hashtbl.t;
  toggles : (string, toggle) Hashtbl.t;
  conds : (string * int, cond) Hashtbl.t;
  resets : (string, reset_cov) Hashtbl.t;
}

let create ?(design = "") () =
  {
    design;
    runs = 0;
    total_cycles = 0;
    nodes = Hashtbl.create 256;
    toggles = Hashtbl.create 256;
    conds = Hashtbl.create 64;
    resets = Hashtbl.create 64;
  }

let width_check what name expected got =
  if expected <> got then
    failwith
      (Printf.sprintf "coverage: %s %S width mismatch (%d vs %d)" what name expected got)

let node_entry t name ~width =
  match Hashtbl.find_opt t.nodes name with
  | Some n ->
    width_check "node" name n.n_width width;
    n
  | None ->
    let n = { n_width = width; changes = 0 } in
    Hashtbl.replace t.nodes name n;
    n

let toggle_entry t name ~width =
  match Hashtbl.find_opt t.toggles name with
  | Some tg ->
    width_check "toggle" name tg.t_width width;
    tg
  | None ->
    let tg = { t_width = width; rise = Array.make width 0; fall = Array.make width 0 } in
    Hashtbl.replace t.toggles name tg;
    tg

let cond_entry t name idx =
  match Hashtbl.find_opt t.conds (name, idx) with
  | Some c -> c
  | None ->
    let c = { taken_true = 0; taken_false = 0; seen_true = false; seen_false = false } in
    Hashtbl.replace t.conds (name, idx) c;
    c

let reset_entry t name =
  match Hashtbl.find_opt t.resets name with
  | Some r -> r
  | None ->
    let r = { asserts = 0; deasserts = 0; seen_on = false; seen_off = false } in
    Hashtbl.replace t.resets name r;
    r

(* --- Merge ------------------------------------------------------------- *)

(* Design labels combine as a sorted set of '+'-separated parts, keeping
   the merge commutative and associative on the label too. *)
let merge_design a b =
  if a = b then a
  else
    String.split_on_char '+' (a ^ "+" ^ b)
    |> List.filter (fun s -> s <> "")
    |> List.sort_uniq compare |> String.concat "+"

let add_into dst src =
  Hashtbl.iter
    (fun name (n : node_cov) ->
      let d = node_entry dst name ~width:n.n_width in
      d.changes <- d.changes + n.changes)
    src.nodes;
  Hashtbl.iter
    (fun name (tg : toggle) ->
      let d = toggle_entry dst name ~width:tg.t_width in
      for b = 0 to tg.t_width - 1 do
        d.rise.(b) <- d.rise.(b) + tg.rise.(b);
        d.fall.(b) <- d.fall.(b) + tg.fall.(b)
      done)
    src.toggles;
  Hashtbl.iter
    (fun (name, idx) (c : cond) ->
      let d = cond_entry dst name idx in
      d.taken_true <- d.taken_true + c.taken_true;
      d.taken_false <- d.taken_false + c.taken_false;
      d.seen_true <- d.seen_true || c.seen_true;
      d.seen_false <- d.seen_false || c.seen_false)
    src.conds;
  Hashtbl.iter
    (fun name (r : reset_cov) ->
      let d = reset_entry dst name in
      d.asserts <- d.asserts + r.asserts;
      d.deasserts <- d.deasserts + r.deasserts;
      d.seen_on <- d.seen_on || r.seen_on;
      d.seen_off <- d.seen_off || r.seen_off)
    src.resets

let merge a b =
  let t = create ~design:(merge_design a.design b.design) () in
  t.runs <- a.runs + b.runs;
  t.total_cycles <- a.total_cycles + b.total_cycles;
  add_into t a;
  add_into t b;
  t

(* --- Summary ----------------------------------------------------------- *)

type summary = {
  toggle_points : int;
  toggle_covered : int;
  node_points : int;
  node_covered : int;
  cond_points : int;
  cond_covered : int;
  reset_points : int;
  reset_covered : int;
}

let summary t =
  let tp = ref 0 and tc = ref 0 in
  Hashtbl.iter
    (fun _ (tg : toggle) ->
      tp := !tp + (2 * tg.t_width);
      for b = 0 to tg.t_width - 1 do
        if tg.rise.(b) > 0 then incr tc;
        if tg.fall.(b) > 0 then incr tc
      done)
    t.toggles;
  let np = Hashtbl.length t.nodes in
  let nc = Hashtbl.fold (fun _ n acc -> if n.changes > 0 then acc + 1 else acc) t.nodes 0 in
  let cp = 2 * Hashtbl.length t.conds in
  let cc =
    Hashtbl.fold
      (fun _ (c : cond) acc ->
        acc + (if c.seen_true then 1 else 0) + if c.seen_false then 1 else 0)
      t.conds 0
  in
  let rp = Hashtbl.length t.resets in
  let rc = Hashtbl.fold (fun _ r acc -> if r.seen_on then acc + 1 else acc) t.resets 0 in
  {
    toggle_points = !tp;
    toggle_covered = !tc;
    node_points = np;
    node_covered = nc;
    cond_points = cp;
    cond_covered = cc;
    reset_points = rp;
    reset_covered = rc;
  }

let summary_equal (a : summary) b = a = b

let percent ~covered ~total =
  if total = 0 then 100. else 100. *. float_of_int covered /. float_of_int total

let total_percent s =
  percent
    ~covered:(s.toggle_covered + s.node_covered + s.cond_covered + s.reset_covered)
    ~total:(s.toggle_points + s.node_points + s.cond_points + s.reset_points)

(* --- Text format -------------------------------------------------------
   gsim-coverage 1
   design <name>
   runs <n>
   cycles <n>
   node <name> <width> <changes>
   toggle <name> <width> <rise>/<fall> ...   (one pair per bit, LSB first)
   cond <name> <mux-index> <into-true> <into-false> <seenT> <seenF>
   reset <name> <asserts> <deasserts> <seenOn> <seenOff>                  *)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let b01 = function true -> "1" | false -> "0"

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "gsim-coverage 1\n";
  Buffer.add_string buf (Printf.sprintf "design %s\n" t.design);
  Buffer.add_string buf (Printf.sprintf "runs %d\n" t.runs);
  Buffer.add_string buf (Printf.sprintf "cycles %d\n" t.total_cycles);
  List.iter
    (fun (name, (n : node_cov)) ->
      Buffer.add_string buf (Printf.sprintf "node %s %d %d\n" name n.n_width n.changes))
    (sorted_bindings t.nodes);
  List.iter
    (fun (name, (tg : toggle)) ->
      Buffer.add_string buf (Printf.sprintf "toggle %s %d" name tg.t_width);
      for b = 0 to tg.t_width - 1 do
        Buffer.add_string buf (Printf.sprintf " %d/%d" tg.rise.(b) tg.fall.(b))
      done;
      Buffer.add_char buf '\n')
    (sorted_bindings t.toggles);
  List.iter
    (fun ((name, idx), (c : cond)) ->
      Buffer.add_string buf
        (Printf.sprintf "cond %s %d %d %d %s %s\n" name idx c.taken_true c.taken_false
           (b01 c.seen_true) (b01 c.seen_false)))
    (sorted_bindings t.conds);
  List.iter
    (fun (name, (r : reset_cov)) ->
      Buffer.add_string buf
        (Printf.sprintf "reset %s %d %d %s %s\n" name r.asserts r.deasserts (b01 r.seen_on)
           (b01 r.seen_off)))
    (sorted_bindings t.resets);
  Buffer.contents buf

let equal a b = to_string a = to_string b

let of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let bool_of = function
    | "0" -> false
    | "1" -> true
    | other -> fail "coverage: bad flag %S" other
  in
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | header :: rest when String.trim header = "gsim-coverage 1" ->
    let t = create () in
    List.iter
      (fun line ->
        match String.split_on_char ' ' (String.trim line) with
        | [ "design"; name ] -> t.design <- name
        | [ "design" ] -> t.design <- ""
        | [ "runs"; n ] -> t.runs <- int_of_string n
        | [ "cycles"; n ] -> t.total_cycles <- int_of_string n
        | [ "node"; name; width; changes ] ->
          let n = node_entry t name ~width:(int_of_string width) in
          n.changes <- int_of_string changes
        | "toggle" :: name :: width :: pairs ->
          let width = int_of_string width in
          if List.length pairs <> width then fail "coverage: toggle %s truncated" name;
          let tg = toggle_entry t name ~width in
          List.iteri
            (fun b pair ->
              match String.split_on_char '/' pair with
              | [ r; f ] ->
                tg.rise.(b) <- int_of_string r;
                tg.fall.(b) <- int_of_string f
              | _ -> fail "coverage: bad toggle pair %S" pair)
            pairs
        | [ "cond"; name; idx; tt; tf; st; sf ] ->
          let c = cond_entry t name (int_of_string idx) in
          c.taken_true <- int_of_string tt;
          c.taken_false <- int_of_string tf;
          c.seen_true <- bool_of st;
          c.seen_false <- bool_of sf
        | [ "reset"; name; a; d; on; off ] ->
          let r = reset_entry t name in
          r.asserts <- int_of_string a;
          r.deasserts <- int_of_string d;
          r.seen_on <- bool_of on;
          r.seen_off <- bool_of off
        | _ -> fail "coverage: bad line %S" line)
      rest;
    t
  | _ -> fail "coverage: missing header"

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  of_string s
