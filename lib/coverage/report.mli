(** Coverage reporting.

    Renders a {!Db.t} as a hierarchical per-scope report — names are split
    on ['.'] and ['$'] into scopes exactly like the VCD dumper, so
    ["core.alu.out"] contributes to scopes [core] and [core.alu] — with
    summary percentages per kind, an optional listing of uncovered points,
    and a machine-readable JSON form. *)

val pp : ?uncovered:int -> Format.formatter -> Db.t -> unit
(** Summary line, scope tree, and (when [uncovered > 0]) up to [uncovered]
    uncovered points with the reason each is uncovered. *)

val to_string : ?uncovered:int -> Db.t -> string

val uncovered : Db.t -> string list
(** Every uncovered point as a one-line description, sorted. *)

val to_json : ?uncovered:bool -> Db.t -> string
(** Summary, scope tree and (optionally) the uncovered listing as JSON. *)
