(** Coverage collection.

    Wraps a {!Gsim_engine.Sim.t} (like {!Gsim_engine.Vcd}) so that each
    [step] accumulates toggle, node, mux-condition and register-reset
    coverage into a {!Db.t}.  Two collection strategies produce
    bit-identical databases for the same trace:

    - {!create} works on {e any} engine by resampling every observed node
      after every cycle — cost O(design size) per cycle, like a waveform
      dump of everything;
    - {!of_activity} hooks the activity engine's change events
      ({!Gsim_engine.Activity.set_change_hook}) and samples only the nodes
      whose evaluator reported a change (plus the conditions and resets
      watching them), so collection cost follows the activity factor
      rather than the design size.

    All coverage is defined over cycle-end samples.  The initial values at
    creation time form the baseline: they set observation flags but count
    no transitions, so coverage of a run split across two collectors sums
    exactly to the coverage of the unsplit run. *)

open Gsim_ir

type t

val default_observed : Circuit.t -> int list
(** Every live node of the circuit. *)

val create : ?observe:int list -> Gsim_engine.Sim.t -> t * Gsim_engine.Sim.t
(** Engine-independent resampling collector.  [observe] defaults to
    {!default_observed}.  Returns the collector and the wrapped simulator
    to drive instead of the original. *)

val of_activity :
  ?observe:int list -> ?name:string -> Gsim_engine.Activity.t -> t * Gsim_engine.Sim.t
(** Activity-engine fast path.  Installs the engine's change hook (so call
    at most once per engine, before simulation).  The wrapped simulator
    additionally tracks pokes, checkpoint restores ([write_reg]) and
    [invalidate] so no value change escapes sampling. *)

val db : t -> Db.t
(** The live database — updated in place as the wrapped simulator steps;
    read (or save) it at any point. *)
