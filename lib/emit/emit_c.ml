module Bits = Gsim_bits.Bits
open Gsim_ir

(* The ABI version is folded into the cache digest by the native backend:
   bump it whenever the emitted shape, helper semantics, or the exported
   symbol contract changes, and stale cached objects stop matching.
   v2: wide (> 62-bit) values compile too, and every generated function
   takes the wide arena as a second parameter. *)
let abi_version = 2

(* Per-subexpression width cap for wide emission: bounds the generated
   functions' stack temporaries and the helpers' fixed scratch arrays.
   Real datapaths sit far below it; anything wider keeps its closure. *)
let wide_max = 2048

(* A node is emitted when it is a [Logic]/[Reg_next] expression node and
   every subexpression width lies in [1, wide_max].  Narrow
   subexpressions (<= 62 bits) evaluate as plain uint64_t with the
   packed-int interpreters' semantics; wider ones as little-endian
   64-bit limb arrays matching [Bits.t] value for value.  Memory reads
   keep their closure evaluators. *)
let rec expr_supported c (e : Expr.t) =
  let w = Expr.width e in
  w >= 1 && w <= wide_max
  && (match e.Expr.desc with
      | Expr.Const _ -> true
      | Expr.Var v -> (Circuit.node c v).Circuit.width = w
      | Expr.Unop (_, a) -> expr_supported c a
      | Expr.Binop (_, a, b) -> expr_supported c a && expr_supported c b
      | Expr.Mux (s, a, b) ->
        expr_supported c s && expr_supported c a && expr_supported c b)

let compilable c (nd : Circuit.node) =
  match (nd.Circuit.kind, nd.Circuit.expr) with
  | (Circuit.Logic | Circuit.Reg_next _), Some e -> expr_supported c e
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expression emission                                                 *)
(* ------------------------------------------------------------------ *)

(* The narrow arena is the runtime's [int array] seen from C: each slot
   holds an OCaml immediate, i.e. the packed value [v] stored as the
   machine word [2v+1].  Generated code untags on load ([>> 1]; values
   are nonnegative so the sign bit is clear) and retags on store
   ([<< 1 | 1]).  Wide values live natively in the runtime's flat
   mirror arena — raw little-endian 64-bit limbs at per-node offsets
   from [wide_offsets] — and in the boxed [Bits.t] arena, whose tagged
   31-bit limb words a store rewrites (in place) whenever the value
   changes, so every OCaml-side reader stays current.  The OCaml side
   never replaces a native node's vector, and every OCaml consumer
   copies on store/peek, so in-place mutation is invisible.

   Expressions are lowered to A-normal form — one [t<n>] temporary per
   operator — so nested operands are never duplicated and code size
   stays linear in expression size.

   Structurally identical nodes share one function body.  Slot ids and
   narrow constants are emitted as [K[i]] references into a per-node
   constant table, so a node's body text depends only on its shape
   (operators and widths); each node then becomes a tiny thunk passing
   its own table to the shared shape function.  Real designs repeat the
   same few datapath shapes across lanes and stages, so this collapses
   the generated text — and, more importantly, the instruction-cache
   footprint of a full sweep — by an order of magnitude. *)

let bpf = Printf.bprintf

(* Limb count of a wide temporary in the native representation — raw
   little-endian 64-bit limbs, unlike [Bits.t]'s tagged 31-bit limbs;
   >= 1 so zero-length C arrays never appear. *)
let nl w = max 1 ((w + 63) / 64)

(* Flat-mirror layout for wide values: every wide node (width > 62) gets
   a contiguous region of raw 64-bit limbs in the runtime's flat mirror
   arena, assigned in increasing node-id order.  Returns the per-id
   offset array in limb units (-1 for narrow or absent ids) and the
   total limb count.  Both the emitter and [Runtime.create] derive the
   layout from this one function, so the offsets baked into generated
   code always match the arena the runtime passes in. *)
let wide_offsets c =
  let n = Circuit.max_id c in
  let off = Array.make (max n 1) (-1) in
  let total = ref 0 in
  for id = 0 to n - 1 do
    match Circuit.node_opt c id with
    | Some nd when not (Bits.fits_int nd.Circuit.width) ->
      off.(id) <- !total;
      total := !total + nl nd.Circuit.width
    | _ -> ()
  done;
  (off, !total)

(* An emitted subexpression: [N] narrow — a C uint64_t expression (temp
   name or literal) holding the packed value; [W] wide — the name of a
   normalized limb-array temporary.  Invariant: [W] exactly when the
   subexpression is wider than 62 bits, mirroring the I/B split of
   [Runtime.compile]. *)
type rep = N of string | W of string

(* [param v] records [v] in the node's constant table and returns the C
   expression reading it back ([K[i]]). *)
let emit_expr b ~param ~woff (e : Expr.t) =
  let fresh =
    let n = ref 0 in
    fun () ->
      let t = Printf.sprintf "t%d" !n in
      incr n;
      t
  in
  let bind rhs =
    let t = fresh () in
    bpf b "  uint64_t %s = %s;\n" t rhs;
    t
  in
  let bind_w w =
    let t = fresh () in
    bpf b "  uint64_t %s[%d];\n" t (nl w);
    t
  in
  let mask w = Printf.sprintf "GSIM_MASK(%d)" w in
  (* Operand coercion into the wide representation ([Runtime.as_bits]):
     a narrow value splits into limbs at bit 31. *)
  let to_wide r w =
    match r with
    | W t -> t
    | N x ->
      let t = bind_w w in
      bpf b "  gsim_wofu64(%s, %d, %d, %s);\n" t (nl w) w x;
      t
  in
  (* Result coercion out of a wide op ([Bits.to_packed] at the I/B
     boundary): a wide temp of width <= 62 reads back as a scalar. *)
  let finish w t =
    if Bits.fits_int w then
      N (bind (Printf.sprintf "gsim_wtou64(%s, %d)" t (nl w)))
    else W t
  in
  (* Clamped dynamic shift amount ([Bits.shift_amount]): anything with a
     set bit at position >= 30 becomes a sentinel larger than any
     representable width. *)
  let shift_amt r w2 =
    match r with
    | W t -> bind (Printf.sprintf "gsim_wshamt(%s, %d, %d)" t (nl w2) w2)
    | N x ->
      if w2 <= 30 then x
      else bind (Printf.sprintf "(%s >> 30) ? (UINT64_C(1) << 40) : (%s & %s)" x x (mask 30))
  in
  let rec go (e : Expr.t) : rep =
    let w = Expr.width e in
    match e.Expr.desc with
    | Expr.Const bits ->
      if Bits.fits_int w then N (Printf.sprintf "((uint64_t)%s)" (param (Bits.to_packed bits)))
      else begin
        (* Wide constants stay literal: they are part of the shape, and
           distinct-valued wide constants simply make distinct shapes
           (they are rare). *)
        let t = fresh () in
        let limbs =
          List.init (nl w) (fun i -> Printf.sprintf "UINT64_C(%Lu)" (Bits.limb64 bits i))
        in
        bpf b "  static const uint64_t %s[%d] = {%s};\n" t (nl w)
          (String.concat ", " limbs);
        W t
      end
    | Expr.Var v ->
      if Bits.fits_int w then N (bind (Printf.sprintf "(uint64_t)(a[%s] >> 1)" (param v)))
      else begin
        let t = bind_w w in
        bpf b "  gsim_wload(%s, %d, wf, %s);\n" t (nl w) (param woff.(v));
        W t
      end
    | Expr.Unop (op, a) ->
      let wa = Expr.width a in
      let ra = go a in
      (match ra with
       | N x when Bits.fits_int w ->
         (* Narrow operand, narrow result: the packed-int interpreters'
            semantics verbatim. *)
         N
           (match op with
            | Expr.Not -> bind (Printf.sprintf "~%s & %s" x (mask wa))
            | Expr.Neg -> bind (Printf.sprintf "(UINT64_C(0) - %s) & %s" x (mask (wa + 1)))
            | Expr.Reduce_and -> bind (Printf.sprintf "%s == %s" x (mask wa))
            | Expr.Reduce_or -> bind (Printf.sprintf "%s != 0" x)
            | Expr.Reduce_xor ->
              bind (Printf.sprintf "(uint64_t)__builtin_parityll(%s)" x)
            | Expr.Shl_const n -> bind (Printf.sprintf "%s << %d" x n)
            | Expr.Shr_const n -> bind (Printf.sprintf "%s >> %d" x n)
            | Expr.Extract (hi, lo) ->
              bind (Printf.sprintf "(%s >> %d) & %s" x lo (mask (hi - lo + 1)))
            | Expr.Pad_unsigned n ->
              if n >= wa then x else bind (Printf.sprintf "%s & %s" x (mask n))
            | Expr.Pad_signed n ->
              if n >= wa then
                bind (Printf.sprintf "(uint64_t)gsim_sx(%s, %d) & %s" x wa (mask n))
              else bind (Printf.sprintf "%s & %s" x (mask n)))
       | _ ->
         (* Wide path: [Expr.eval_unop] over [Bits], limb for limb. *)
         let xa = to_wide ra wa in
         let an = nl wa in
         (match op with
          | Expr.Not ->
            let t = bind_w w in
            bpf b "  gsim_wnot(%s, %d, %d, %s, %d);\n" t (nl w) w xa an;
            finish w t
          | Expr.Neg ->
            (* neg = (2^w - v) mod 2^w at w = wa + 1. *)
            let t = bind_w w in
            bpf b "  gsim_wnegt(%s, %d, %d, %s, %d);\n" t (nl w) w xa an;
            finish w t
          | Expr.Reduce_and ->
            N (bind (Printf.sprintf "(uint64_t)gsim_wisones(%s, %d, %d)" xa an wa))
          | Expr.Reduce_or ->
            N (bind (Printf.sprintf "(uint64_t)!gsim_wiszero(%s, %d)" xa an))
          | Expr.Reduce_xor ->
            N (bind (Printf.sprintf "(uint64_t)(gsim_wpopcount(%s, %d) & 1)" xa an))
          | Expr.Shl_const n ->
            let t = bind_w w in
            bpf b "  gsim_wzero(%s, %d);\n" t (nl w);
            bpf b "  gsim_worshift(%s, %d, %s, %d, %d);\n" t (nl w) xa an n;
            finish w t
          | Expr.Shr_const n ->
            if n >= wa then N "UINT64_C(0)"
            else begin
              let t = bind_w w in
              bpf b "  gsim_wextract(%s, %d, %d, %s, %d, %d);\n" t (nl w) w xa an n;
              finish w t
            end
          | Expr.Extract (_, lo) ->
            let t = bind_w w in
            bpf b "  gsim_wextract(%s, %d, %d, %s, %d, %d);\n" t (nl w) w xa an lo;
            finish w t
          | Expr.Pad_unsigned _ ->
            let t = bind_w w in
            bpf b "  gsim_wresize(%s, %d, %d, %s, %d);\n" t (nl w) w xa an;
            finish w t
          | Expr.Pad_signed n ->
            let t = bind_w w in
            if n >= wa then
              bpf b "  gsim_wsext(%s, %d, %d, %s, %d, %d);\n" t (nl w) w xa an wa
            else bpf b "  gsim_wresize(%s, %d, %d, %s, %d);\n" t (nl w) w xa an;
            finish w t))
    | Expr.Binop (op, a, b') ->
      let w1 = Expr.width a and w2 = Expr.width b' in
      let ra = go a in
      let rb = go b' in
      let sx e' we = Printf.sprintf "gsim_sx(%s, %d)" e' we in
      (match (ra, rb) with
       | N x, N y when Bits.fits_int w ->
         N
           (match op with
            | Expr.Add -> bind (Printf.sprintf "(%s + %s) & %s" x y (mask w))
            | Expr.Sub -> bind (Printf.sprintf "(%s - %s) & %s" x y (mask w))
            | Expr.Mul -> bind (Printf.sprintf "%s * %s" x y)
            | Expr.Div -> bind (Printf.sprintf "gsim_divu(%s, %s)" x y)
            | Expr.Div_signed ->
              bind (Printf.sprintf "gsim_divs(%s, %s) & %s" (sx x w1) (sx y w2) (mask w))
            | Expr.Rem -> bind (Printf.sprintf "gsim_remu(%s, %s) & %s" x y (mask w))
            | Expr.Rem_signed ->
              bind (Printf.sprintf "gsim_rems(%s, %s) & %s" (sx x w1) (sx y w2) (mask w))
            | Expr.And -> bind (Printf.sprintf "%s & %s" x y)
            | Expr.Or -> bind (Printf.sprintf "%s | %s" x y)
            | Expr.Xor -> bind (Printf.sprintf "%s ^ %s" x y)
            | Expr.Cat -> bind (Printf.sprintf "(%s << %d) | %s" x w2 y)
            | Expr.Eq -> bind (Printf.sprintf "%s == %s" x y)
            | Expr.Neq -> bind (Printf.sprintf "%s != %s" x y)
            | Expr.Lt -> bind (Printf.sprintf "%s < %s" x y)
            | Expr.Leq -> bind (Printf.sprintf "%s <= %s" x y)
            | Expr.Gt -> bind (Printf.sprintf "%s > %s" x y)
            | Expr.Geq -> bind (Printf.sprintf "%s >= %s" x y)
            | Expr.Lt_signed -> bind (Printf.sprintf "%s < %s" (sx x w1) (sx y w2))
            | Expr.Leq_signed -> bind (Printf.sprintf "%s <= %s" (sx x w1) (sx y w2))
            | Expr.Gt_signed -> bind (Printf.sprintf "%s > %s" (sx x w1) (sx y w2))
            | Expr.Geq_signed -> bind (Printf.sprintf "%s >= %s" (sx x w1) (sx y w2))
            | Expr.Dshl ->
              bind (Printf.sprintf "%s >= %d ? 0 : (%s << %s) & %s" y w1 x y (mask w1))
            | Expr.Dshr -> bind (Printf.sprintf "%s >= %d ? 0 : %s >> %s" y w1 x y)
            | Expr.Dshr_signed ->
              bind
                (Printf.sprintf
                   "%s >= %d ? ((%s >> %d) ? %s : 0) : (uint64_t)(%s >> %s) & %s"
                   y w1 x (w1 - 1) (mask w1) (sx x w1) y (mask w1)))
       | _ -> (
         (* Wide path: [Expr.eval_binop] over [Bits], limb for limb.
            Dynamic shifts take the clamped amount straight from the
            amount's own representation; everything else coerces both
            operands to limbs first. *)
         match op with
         | Expr.Dshl | Expr.Dshr | Expr.Dshr_signed ->
           let xa = to_wide ra w1 in
           let amt = shift_amt rb w2 in
           let fn =
             match op with
             | Expr.Dshl -> "gsim_wdshl"
             | Expr.Dshr -> "gsim_wdshr"
             | _ -> "gsim_wdshrs"
           in
           let t = bind_w w in
           bpf b "  %s(%s, %d, %d, %s, %d, %s);\n" fn t (nl w) w xa (nl w1) amt;
           finish w t
         | _ ->
           let x = to_wide ra w1 in
           let y = to_wide rb w2 in
           let n1 = nl w1 and n2 = nl w2 in
           let rn = nl w in
           let cmp op_c =
             N (bind (Printf.sprintf "(uint64_t)(gsim_wcmp(%s, %d, %s, %d) %s 0)" x n1 y n2 op_c))
           in
           let cmps op_c =
             N
               (bind
                  (Printf.sprintf "(uint64_t)(gsim_wcmps(%s, %d, %d, %s, %d, %d) %s 0)"
                     x n1 w1 y n2 w2 op_c))
           in
           (match op with
            | Expr.Add ->
              let t = bind_w w in
              bpf b "  gsim_wadd(%s, %d, %s, %d, %s, %d);\n" t rn x n1 y n2;
              bpf b "  gsim_wnorm(%s, %d, %d);\n" t rn w;
              finish w t
            | Expr.Sub ->
              let t = bind_w w in
              bpf b "  gsim_wsub(%s, %d, %d, %s, %d, %s, %d);\n" t rn w x n1 y n2;
              finish w t
            | Expr.Mul ->
              let t = bind_w w in
              bpf b "  gsim_wmul(%s, %d, %d, %s, %d, %s, %d);\n" t rn w x n1 y n2;
              finish w t
            | Expr.Div ->
              (* w = w1; the remainder scratch is dead. *)
              let t = bind_w w in
              let r = bind_w w in
              bpf b "  gsim_wdivmod(%s, %s, %d, %s, %d, %s, %d, %d);\n" t r w1 x n1 y n2 w2;
              finish w t
            | Expr.Rem ->
              (* divmod's remainder has width w1; resize to min w1 w2. *)
              let q = bind_w w1 in
              let r = bind_w w1 in
              bpf b "  gsim_wdivmod(%s, %s, %d, %s, %d, %s, %d, %d);\n" q r w1 x n1 y n2 w2;
              let t = bind_w w in
              bpf b "  gsim_wresize(%s, %d, %d, %s, %d);\n" t rn w r n1;
              finish w t
            | Expr.Div_signed ->
              let t = bind_w w in
              bpf b "  gsim_wdivs(%s, %d, %d, %s, %d, %d, %s, %d, %d);\n" t rn w x n1 w1 y
                n2 w2;
              finish w t
            | Expr.Rem_signed ->
              let t = bind_w w in
              bpf b "  gsim_wrems(%s, %d, %d, %s, %d, %d, %s, %d, %d);\n" t rn w x n1 w1 y
                n2 w2;
              finish w t
            | Expr.And | Expr.Or | Expr.Xor ->
              let fn =
                match op with
                | Expr.And -> "gsim_wand"
                | Expr.Or -> "gsim_wor"
                | _ -> "gsim_wxor"
              in
              let t = bind_w w in
              bpf b "  %s(%s, %d, %s, %d, %s, %d);\n" fn t rn x n1 y n2;
              finish w t
            | Expr.Cat ->
              let t = bind_w w in
              bpf b "  gsim_wcat(%s, %d, %s, %d, %s, %d, %d);\n" t rn x n1 y n2 w2;
              finish w t
            | Expr.Eq -> cmp "=="
            | Expr.Neq -> cmp "!="
            | Expr.Lt -> cmp "<"
            | Expr.Leq -> cmp "<="
            | Expr.Gt -> cmp ">"
            | Expr.Geq -> cmp ">="
            | Expr.Lt_signed -> cmps "<"
            | Expr.Leq_signed -> cmps "<="
            | Expr.Gt_signed -> cmps ">"
            | Expr.Geq_signed -> cmps ">="
            | Expr.Dshl | Expr.Dshr | Expr.Dshr_signed -> assert false)))
    | Expr.Mux (s, a, b') ->
      (* Both arms are pure, so eager evaluation plus a select is
         bit-identical to the interpreters' lazy arms. *)
      let ws = Expr.width s in
      let rs = go s in
      let sel =
        match rs with
        | N x -> x
        | W t -> bind (Printf.sprintf "(uint64_t)!gsim_wiszero(%s, %d)" t (nl ws))
      in
      let ra = go a in
      let rb = go b' in
      (match (ra, rb) with
       | N x, N y -> N (bind (Printf.sprintf "%s ? %s : %s" sel x y))
       | _ ->
         let x = to_wide ra w and y = to_wide rb w in
         let t = bind_w w in
         bpf b "  gsim_wmux(%s, %d, %s, %s, %s);\n" t (nl w) sel x y;
         finish w t)
  in
  go e

let fn_name id = Printf.sprintf "gsim_n%d" id

(* Interned shape bodies: body text -> shared function name. *)
type shapes = {
  tbl : (string, string) Hashtbl.t;
  mutable next_shape : int;
}

let emit_node b shapes ~woff (nd : Circuit.node) =
  let id = nd.Circuit.id in
  let e =
    match nd.Circuit.expr with
    | Some e -> e
    | None -> invalid_arg "Emit_c.emit_node: missing expression"
  in
  let body = Buffer.create 256 in
  let params = ref [] in
  let nparams = ref 0 in
  let param v =
    params := v :: !params;
    let i = !nparams in
    incr nparams;
    Printf.sprintf "K[%d]" i
  in
  (match emit_expr body ~param ~woff e with
   | N r ->
     bpf body "  long w = (long)((%s << 1) | 1);\n" r;
     bpf body "  long *p = a + %s;\n" (param id);
     Buffer.add_string body "  if (w == *p) return 0;\n  *p = w;\n  return 1;\n"
   | W t ->
     bpf body "  return gsim_wstore(wf, %s, wd, %s, %s, %d, %d);\n" (param woff.(id))
       (param id) t (nl nd.Circuit.width) nd.Circuit.width);
  let key = Buffer.contents body in
  let shape =
    match Hashtbl.find_opt shapes.tbl key with
    | Some s -> s
    | None ->
      let s = Printf.sprintf "gsim_s%d" shapes.next_shape in
      shapes.next_shape <- shapes.next_shape + 1;
      Hashtbl.add shapes.tbl key s;
      bpf b "static long %s(long *a, long *wf, long *wd, const long *K) {\n" s;
      Buffer.add_string b "  (void)a; (void)wf; (void)wd; (void)K;\n";
      Buffer.add_buffer b body;
      Buffer.add_string b "}\n\n";
      s
  in
  bpf b "/* %s : %d bits */\n" nd.Circuit.name nd.Circuit.width;
  bpf b "static long %s(long *a, long *wf, long *wd) {\n" (fn_name id);
  bpf b "  static const long K[] = {%s};\n"
    (String.concat "," (List.rev_map string_of_int !params));
  bpf b "  return %s(a, wf, wd, K);\n" shape;
  Buffer.add_string b "}\n\n"

let preamble =
  {|/* Generated by gsim's native backend.  Do not edit.
 *
 * ABI v2: each function takes the simulator's three value arenas
 * (a = narrow, wf = wide flat mirror, wd = wide boxed).  The narrow
 * arena is an OCaml [int array]: every slot holds a tagged immediate,
 * i.e. the packed value v stored as the machine word 2v+1.  The flat
 * mirror is an OCaml [Bytes.t] of raw little-endian 64-bit limbs (no
 * tag bits — the GC never scans bytes): every wide node owns a
 * contiguous region at a compile-time offset, so wide loads are direct
 * indexed reads with no pointer chasing and no untagging.  The boxed
 * arena is an OCaml [Bits.t array]: every slot points to a record
 * whose second field is the tagged 31-bit limb array.  A function
 * evaluates one node, stores the result into the node's narrow slot or
 * into its wide region (mirror first, then — only on change — the
 * boxed limb words, keeping the two views identical), and returns
 * whether the stored value changed.
 *
 * Narrow semantics mirror lib/engine/runtime.ml's packed-int
 * interpreters exactly; wide semantics match lib/bits/bits.ml value
 * for value (including every normalization point) on a 64-bit limb
 * representation.
 */
#include <stdint.h>

#define GSIM_MASK(w) ((UINT64_C(1) << (w)) - 1)

static inline int64_t gsim_sx(uint64_t x, int w) {
  return (int64_t)(x << (64 - w)) >> (64 - w);
}
static inline uint64_t gsim_divu(uint64_t x, uint64_t y) {
  return y == 0 ? 0 : x / y;
}
static inline uint64_t gsim_remu(uint64_t x, uint64_t y) {
  return y == 0 ? x : x % y;
}
static inline uint64_t gsim_divs(int64_t x, int64_t y) {
  return y == 0 ? 0 : (uint64_t)(x / y);
}
static inline uint64_t gsim_rems(int64_t x, int64_t y) {
  return y == 0 ? (uint64_t)x : (uint64_t)(x % y);
}

/* ---- wide values: raw little-endian 64-bit limbs.
 *
 * This is the native representation only: the flat mirror arena and
 * every in-function temporary hold full 64-bit limbs with no tag bits.
 * The boxed [Bits.t] world keeps its tagged 31-bit limbs; gsim_wstore
 * translates on the way out (and Bits.limb64 on the way in). */

#define GSIM_LIMB31_MASK UINT64_C(0x7FFFFFFF)
#define GSIM_NLIMBS(w) (((w) + 63) / 64)
/* Subexpression widths are capped at 2048 bits by the emitter's gate;
   helper intermediates go one bit further (divmod remainders). */
#define GSIM_WSCRATCH (GSIM_NLIMBS(2049) + 1)

static inline uint64_t gsim_wtopmask(int w) {
  int r = w % 64;
  return r == 0 ? ~UINT64_C(0) : ((UINT64_C(1) << r) - 1);
}
static inline void gsim_wnorm(uint64_t *v, int n, int w) {
  v[n - 1] &= gsim_wtopmask(w);
}
static inline uint64_t gsim_wlimb(const uint64_t *a, int na, int i) {
  return i < na ? a[i] : 0;
}
static inline void gsim_wzero(uint64_t *r, int n) {
  for (int i = 0; i < n; i++) r[i] = 0;
}
/* resize_unsigned: zero-extend or truncate (and normalize) to w bits. */
static inline void gsim_wresize(uint64_t *r, int n, int w,
                                const uint64_t *a, int na) {
  for (int i = 0; i < n; i++) r[i] = gsim_wlimb(a, na, i);
  gsim_wnorm(r, n, w);
}
static inline int gsim_wmsb(const uint64_t *a, int na, int w) {
  return (int)((gsim_wlimb(a, na, (w - 1) >> 6) >> ((w - 1) & 63)) & 1);
}
/* sign_extend from wa to w >= wa bits. */
static inline void gsim_wsext(uint64_t *r, int n, int w,
                              const uint64_t *a, int na, int wa) {
  if (!gsim_wmsb(a, na, wa)) { gsim_wresize(r, n, w, a, na); return; }
  for (int i = 0; i < n; i++) r[i] = ~UINT64_C(0);
  for (int i = 0; i < na; i++) r[i] = a[i];
  r[na - 1] = a[na - 1] | ~gsim_wtopmask(wa);
  gsim_wnorm(r, n, w);
}
static inline void gsim_wnot(uint64_t *r, int n, int w,
                             const uint64_t *a, int na) {
  for (int i = 0; i < n; i++) r[i] = ~gsim_wlimb(a, na, i);
  gsim_wnorm(r, n, w);
}
static inline void gsim_wand(uint64_t *r, int n, const uint64_t *a, int na,
                             const uint64_t *b, int nb) {
  for (int i = 0; i < n; i++) r[i] = gsim_wlimb(a, na, i) & gsim_wlimb(b, nb, i);
}
static inline void gsim_wor(uint64_t *r, int n, const uint64_t *a, int na,
                            const uint64_t *b, int nb) {
  for (int i = 0; i < n; i++) r[i] = gsim_wlimb(a, na, i) | gsim_wlimb(b, nb, i);
}
static inline void gsim_wxor(uint64_t *r, int n, const uint64_t *a, int na,
                             const uint64_t *b, int nb) {
  for (int i = 0; i < n; i++) r[i] = gsim_wlimb(a, na, i) ^ gsim_wlimb(b, nb, i);
}
/* r = a + b over n limbs (operands read as zero beyond their length);
   the caller normalizes to the result width.  Carry detection: the
   first add wraps iff the sum is below an operand; adding a 0/1 carry
   wraps iff the result is below the carry-free sum. */
static inline void gsim_wadd(uint64_t *r, int n, const uint64_t *a, int na,
                             const uint64_t *b, int nb) {
  uint64_t carry = 0;
  for (int i = 0; i < n; i++) {
    uint64_t x = gsim_wlimb(a, na, i);
    uint64_t s = x + gsim_wlimb(b, nb, i);
    uint64_t c1 = s < x;
    uint64_t s2 = s + carry;
    carry = c1 | (s2 < s);
    r[i] = s2;
  }
}
/* r = (a - b) mod 2^w (a + ~b + 1 over zero-extended operands). */
static inline void gsim_wsub(uint64_t *r, int n, int w, const uint64_t *a,
                             int na, const uint64_t *b, int nb) {
  uint64_t carry = 1;
  for (int i = 0; i < n; i++) {
    uint64_t x = gsim_wlimb(a, na, i);
    uint64_t s = x + ~gsim_wlimb(b, nb, i);
    uint64_t c1 = s < x;
    uint64_t s2 = s + carry;
    carry = c1 | (s2 < s);
    r[i] = s2;
  }
  gsim_wnorm(r, n, w);
}
/* r = (-a) mod 2^w: two's complement truncated to w bits.  In-place
   safe (r may alias a). */
static inline void gsim_wnegt(uint64_t *r, int n, int w, const uint64_t *a, int na) {
  uint64_t carry = 1;
  for (int i = 0; i < n; i++) {
    uint64_t x = ~gsim_wlimb(a, na, i);
    uint64_t s = x + carry;
    carry = s < x;
    r[i] = s;
  }
  gsim_wnorm(r, n, w);
}
/* Schoolbook multiply; unsigned __int128 holds the 64x64 partial
   products (the backend requires gcc/clang anyway — see the other
   builtins). */
static inline void gsim_wmul(uint64_t *r, int n, int w, const uint64_t *a,
                             int na, const uint64_t *b, int nb) {
  gsim_wzero(r, n);
  for (int i = 0; i < na; i++) {
    uint64_t ai = a[i];
    if (ai == 0) continue;
    uint64_t carry = 0;
    for (int j = 0; j < nb; j++) {
      int k = i + j;
      if (k < n) {
        unsigned __int128 x = (unsigned __int128)ai * b[j] + r[k] + carry;
        r[k] = (uint64_t)x;
        carry = (uint64_t)(x >> 64);
      }
    }
    for (int k = i + nb; carry != 0 && k < n; k++) {
      uint64_t x = r[k] + carry;
      carry = x < carry;
      r[k] = x;
    }
  }
  gsim_wnorm(r, n, w);
}
static inline int gsim_wcmp(const uint64_t *a, int na, const uint64_t *b, int nb) {
  int n = na > nb ? na : nb;
  for (int i = n - 1; i >= 0; i--) {
    uint64_t la = gsim_wlimb(a, na, i), lb = gsim_wlimb(b, nb, i);
    if (la != lb) return la < lb ? -1 : 1;
  }
  return 0;
}
static inline int gsim_wiszero(const uint64_t *a, int na) {
  for (int i = 0; i < na; i++)
    if (a[i] != 0) return 0;
  return 1;
}
static inline int gsim_wisones(const uint64_t *a, int na, int w) {
  for (int i = 0; i < na - 1; i++)
    if (a[i] != ~UINT64_C(0)) return 0;
  return a[na - 1] == gsim_wtopmask(w);
}
static inline int gsim_wpopcount(const uint64_t *a, int na) {
  int c = 0;
  for (int i = 0; i < na; i++) c += __builtin_popcountll(a[i]);
  return c;
}
/* compare_signed: sign cases first, both-negative compares
   sign-extended to the max width. */
static inline int gsim_wcmps(const uint64_t *a, int na, int wa,
                             const uint64_t *b, int nb, int wb) {
  int sa = gsim_wmsb(a, na, wa), sb = gsim_wmsb(b, nb, wb);
  if (sa != sb) return sa ? -1 : 1;
  if (!sa) return gsim_wcmp(a, na, b, nb);
  int wm = wa > wb ? wa : wb, nm = GSIM_NLIMBS(wm);
  uint64_t ea[GSIM_WSCRATCH], eb[GSIM_WSCRATCH];
  gsim_wsext(ea, nm, wm, a, na, wa);
  gsim_wsext(eb, nm, wm, b, nb, wb);
  return gsim_wcmp(ea, nm, eb, nm);
}
/* r = bits [lo .. lo+w-1] of a, normalized (n = GSIM_NLIMBS(w)). */
static inline void gsim_wextract(uint64_t *r, int n, int w,
                                 const uint64_t *a, int na, int lo) {
  int off = lo & 63, base = lo >> 6;
  for (int k = 0; k < n; k++) {
    uint64_t low = gsim_wlimb(a, na, base + k) >> off;
    uint64_t high = off == 0 ? 0 : gsim_wlimb(a, na, base + k + 1) << (64 - off);
    r[k] = low | high;
  }
  gsim_wnorm(r, n, w);
}
/* OR a << shift into r (r pre-initialized; mirrors Bits.or_shifted). */
static inline void gsim_worshift(uint64_t *r, int n, const uint64_t *a,
                                 int na, int shift) {
  int base = shift >> 6, off = shift & 63;
  for (int k = 0; k < na; k++) {
    uint64_t x = a[k];
    if (x == 0) continue;
    int i = base + k;
    if (i < n) r[i] |= x << off;
    if (off > 0 && i + 1 < n) r[i + 1] |= x >> (64 - off);
  }
}
/* concat: r = hi << wlo | lo over n = GSIM_NLIMBS(whi + wlo) limbs. */
static inline void gsim_wcat(uint64_t *r, int n, const uint64_t *hi, int nh,
                             const uint64_t *lo, int nlo, int wlo) {
  for (int i = 0; i < n; i++) r[i] = i < nlo ? lo[i] : 0;
  gsim_worshift(r, n, hi, nh, wlo);
}
/* unsafe_of_packed: a packed (<= 62-bit) value is one limb. */
static inline void gsim_wofu64(uint64_t *r, int n, int w, uint64_t x) {
  gsim_wzero(r, n);
  r[0] = x;
  gsim_wnorm(r, n, w);
}
/* to_packed: limb 0 (exact for widths <= 62). */
static inline uint64_t gsim_wtou64(const uint64_t *a, int na) {
  return gsim_wlimb(a, na, 0);
}
/* shift_amount: clamped dynamic shift amount; any set bit at position
   >= 30 yields a sentinel larger than every representable width. */
static inline uint64_t gsim_wshamt(const uint64_t *a, int na, int w) {
  if (w <= 30) return gsim_wtou64(a, na);
  for (int i = 1; i < na; i++)
    if (a[i] != 0) return UINT64_C(1) << 40;
  if (a[0] >> 30) return UINT64_C(1) << 40;
  return a[0] & ((UINT64_C(1) << 30) - 1);
}
/* Long division, mirroring Bits.divmod bit for bit: quotient over wa
   bits into q, remainder resized to wa bits into r (both GSIM_NLIMBS(wa)
   limbs).  Division by zero: q = 0, r = a. */
static inline void gsim_wdivmod(uint64_t *q, uint64_t *r, int wa,
                                const uint64_t *a, int na,
                                const uint64_t *b, int nb, int wb) {
  int nq = GSIM_NLIMBS(wa);
  gsim_wzero(q, nq);
  if (gsim_wiszero(b, nb)) { gsim_wresize(r, nq, wa, a, na); return; }
  int wr = wb + 1, nr = GSIM_NLIMBS(wr);
  uint64_t rr[GSIM_WSCRATCH];
  gsim_wzero(rr, nr);
  for (int i = wa - 1; i >= 0; i--) {
    /* rr = (rr << 1 | bit i of a) mod 2^wr */
    uint64_t carry = (gsim_wlimb(a, na, i >> 6) >> (i & 63)) & 1;
    for (int k = 0; k < nr; k++) {
      uint64_t x = rr[k];
      rr[k] = (x << 1) | carry;
      carry = x >> 63;
    }
    gsim_wnorm(rr, nr, wr);
    if (gsim_wcmp(rr, nr, b, nb) >= 0) {
      gsim_wsub(rr, nr, wr, rr, nr, b, nb);
      q[i >> 6] |= UINT64_C(1) << (i & 63);
    }
  }
  gsim_wresize(r, nq, wa, rr, nr);
}
/* div_signed: signed magnitudes, unsigned divide, zero-extend the
   quotient to w = wa + 1 bits, negate when the signs differ. */
static inline void gsim_wdivs(uint64_t *r, int n, int w,
                              const uint64_t *a, int na, int wa,
                              const uint64_t *b, int nb, int wb) {
  if (gsim_wiszero(b, nb)) { gsim_wzero(r, n); return; }
  uint64_t ma[GSIM_WSCRATCH], mb[GSIM_WSCRATCH], q[GSIM_WSCRATCH], rr[GSIM_WSCRATCH];
  int sa = gsim_wmsb(a, na, wa), sb = gsim_wmsb(b, nb, wb);
  if (sa) gsim_wnegt(ma, na, wa, a, na); else gsim_wresize(ma, na, wa, a, na);
  if (sb) gsim_wnegt(mb, nb, wb, b, nb); else gsim_wresize(mb, nb, wb, b, nb);
  gsim_wdivmod(q, rr, wa, ma, na, mb, nb, wb);
  gsim_wresize(r, n, w, q, na);
  if (sa != sb) gsim_wnegt(r, n, w, r, n);
}
/* rem_signed to w = min(wa, wb) bits: remainder of the magnitudes at
   width w + 1, negated when the dividend is negative, truncated to w.
   Division by zero: the dividend truncated to w (resize_signed with
   w <= wa). */
static inline void gsim_wrems(uint64_t *r, int n, int w,
                              const uint64_t *a, int na, int wa,
                              const uint64_t *b, int nb, int wb) {
  if (gsim_wiszero(b, nb)) { gsim_wresize(r, n, w, a, na); return; }
  uint64_t ma[GSIM_WSCRATCH], mb[GSIM_WSCRATCH], q[GSIM_WSCRATCH], rr[GSIM_WSCRATCH];
  int sa = gsim_wmsb(a, na, wa), sb = gsim_wmsb(b, nb, wb);
  if (sa) gsim_wnegt(ma, na, wa, a, na); else gsim_wresize(ma, na, wa, a, na);
  if (sb) gsim_wnegt(mb, nb, wb, b, nb); else gsim_wresize(mb, nb, wb, b, nb);
  gsim_wdivmod(q, rr, wa, ma, na, mb, nb, wb);
  int w1p = w + 1, n1p = GSIM_NLIMBS(w1p);
  uint64_t t2[GSIM_WSCRATCH];
  gsim_wresize(t2, n1p, w1p, rr, na);
  if (sa) gsim_wnegt(t2, n1p, w1p, t2, n1p);
  gsim_wresize(r, n, w, t2, n1p);
}
/* dshl (width-keeping): (a << sh) mod 2^w; sh >= w shifts everything
   out. */
static inline void gsim_wdshl(uint64_t *r, int n, int w, const uint64_t *a,
                              int na, uint64_t sh) {
  gsim_wzero(r, n);
  if (sh >= (uint64_t)w) return;
  gsim_worshift(r, n, a, na, (int)sh);
  gsim_wnorm(r, n, w);
}
/* dshr: zero_extend(a[w-1 : sh]) back to w bits. */
static inline void gsim_wdshr(uint64_t *r, int n, int w, const uint64_t *a,
                              int na, uint64_t sh) {
  if (sh >= (uint64_t)w) { gsim_wzero(r, n); return; }
  int we = w - (int)sh, ne = GSIM_NLIMBS(we);
  gsim_wextract(r, ne, we, a, na, (int)sh);
  for (int i = ne; i < n; i++) r[i] = 0;
}
/* dshr_signed: sign_extend(a[w-1 : sh]) back to w bits; a full shift
   replicates the sign bit. */
static inline void gsim_wdshrs(uint64_t *r, int n, int w, const uint64_t *a,
                               int na, uint64_t sh) {
  if (sh >= (uint64_t)w) {
    if (gsim_wmsb(a, na, w)) {
      for (int i = 0; i < n; i++) r[i] = ~UINT64_C(0);
      gsim_wnorm(r, n, w);
    } else gsim_wzero(r, n);
    return;
  }
  int we = w - (int)sh, ne = GSIM_NLIMBS(we);
  uint64_t ex[GSIM_WSCRATCH];
  gsim_wextract(ex, ne, we, a, na, (int)sh);
  gsim_wsext(r, n, w, ex, ne, we);
}
static inline void gsim_wmux(uint64_t *r, int n, uint64_t c,
                             const uint64_t *a, const uint64_t *b) {
  for (int i = 0; i < n; i++) r[i] = c ? a[i] : b[i];
}
/* Read a wide value's raw 64-bit limbs out of the flat mirror: a
   direct indexed copy at the node's compile-time offset. */
static inline void gsim_wload(uint64_t *r, int n, const long *wf, long off) {
  const uint64_t *p = (const uint64_t *)wf + off;
  for (int i = 0; i < n; i++) r[i] = p[i];
}
/* Compare-store v against the flat mirror; on change also rewrite the
   boxed slot's tagged 31-bit limb words (wd[id] points to a Bits.t
   record; field 1 is the limb array) so the OCaml-side view stays
   identical. */
static inline long gsim_wstore(long *wf, long off, long *wd, long id,
                               const uint64_t *v, int n, int w) {
  uint64_t *p = (uint64_t *)wf + off;
  long ch = 0;
  for (int i = 0; i < n; i++)
    if (p[i] != v[i]) { p[i] = v[i]; ch = 1; }
  if (ch) {
    long *q = (long *)((long *)wd[id])[1];
    int n31 = (w + 30) / 31;
    for (int k = 0; k < n31; k++) {
      int pbit = 31 * k, j = pbit >> 6, sh = pbit & 63;
      uint64_t lo = v[j] >> sh;
      uint64_t hi = (sh > 33 && j + 1 < n) ? v[j + 1] << (64 - sh) : 0;
      q[k] = (long)(((((lo | hi) & GSIM_LIMB31_MASK) << 1) | 1));
    }
  }
  return ch;
}

|}

type result = {
  source : string;
  compiled_nodes : int;
  total_nodes : int;
}

let emit c =
  let order = Circuit.eval_order c in
  let n = Circuit.max_id c in
  let b = Buffer.create (4096 + (Array.length order * 160)) in
  Buffer.add_string b preamble;
  let emitted = Array.make n false in
  let count = ref 0 in
  let shapes = { tbl = Hashtbl.create 64; next_shape = 0 } in
  let woff, _ = wide_offsets c in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if compilable c nd then begin
        emitted.(id) <- true;
        incr count;
        emit_node b shapes ~woff nd
      end)
    order;
  bpf b "long gsim_abi_version = %d;\n" abi_version;
  bpf b "long gsim_node_count = %d;\n\n" n;
  bpf b "long (*gsim_table[%d])(long *, long *, long *) = {\n" (max n 1);
  for id = 0 to n - 1 do
    if emitted.(id) then bpf b "  %s,\n" (fn_name id) else bpf b "  0,\n"
  done;
  if n = 0 then Buffer.add_string b "  0,\n";
  Buffer.add_string b "};\n";
  { source = Buffer.contents b; compiled_nodes = !count; total_nodes = Array.length order }
