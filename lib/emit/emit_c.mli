(** C emission for the ahead-of-time native backend.

    Unlike {!Emit} (a self-contained C++ artifact with its own state
    struct), this emitter targets the running simulator's own memory: one
    C function per expression node, operating directly on the value
    arenas of {!module:Gsim_engine.Runtime}.  Narrow (<= 62-bit)
    subexpressions evaluate as [uint64_t] with the exact packed-int
    semantics of the interpreters, loaded from and stored to the narrow
    arena — an OCaml [int array] whose slots hold tagged immediates
    (value [v] stored as the machine word [2v+1]).  Wider subexpressions
    evaluate as little-endian 64-bit limb arrays matching
    {!Gsim_bits.Bits} value for value, loaded by direct indexed reads
    from the runtime's flat mirror arena (a [Bytes.t] of raw limbs laid
    out by {!wide_offsets}) and stored back to both the mirror and the
    boxed [Bits.t] slot's limb words.  Each function evaluates its
    node's expression tree, retags and stores the result, and returns
    whether the stored value changed (0/1).

    The generated translation unit is freestanding (only [<stdint.h>])
    and exports three symbols:

    - [long gsim_abi_version] — must equal {!abi_version};
    - [long gsim_node_count] — the circuit's [max_id];
    - [long (*gsim_table[])(long *, long *, long *)] — per-node-id
      function pointers taking the narrow arena, the wide flat mirror
      and the wide boxed arena, [NULL] for nodes that keep their closure
      evaluators.

    The native backend ({!module:Gsim_engine.Native}) compiles this
    source with [cc -O2 -shared -fPIC] and binds the table via [dlopen]. *)

open Gsim_ir

val abi_version : int
(** Folded into the on-disk cache digest; bump on any change to the
    emitted shape or the symbol contract. *)

val wide_offsets : Circuit.t -> int array * int
(** [wide_offsets c] is the flat-mirror layout for [c]'s wide (> 62-bit)
    nodes: per-id offsets in 64-bit-limb units ([-1] for narrow or
    absent ids) assigned in increasing id order, and the arena's total
    limb count.  The single source of truth shared by generated code
    and [Runtime.create]. *)

val compilable : Circuit.t -> Circuit.node -> bool
(** A [Logic]/[Reg_next] node whose result and every subexpression have
    width in [1, 2048] — wider than the bytecode backend's narrow-only
    gate.  Memory reads keep their closure evaluators. *)

type result = {
  source : string;         (** the complete C translation unit *)
  compiled_nodes : int;    (** nodes given native functions *)
  total_nodes : int;       (** nodes in evaluation order *)
}

val emit : Circuit.t -> result
