exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let version = 1
let magic = "gsim"
let header_size = 10
let max_payload = 16 * 1024 * 1024

(* --- Addresses ----------------------------------------------------------- *)

type address = Unix_sock of string | Tcp of string * int

let address_of_string s =
  if String.contains s '/' then Unix_sock s
  else
    match String.rindex_opt s ':' with
    | None -> Unix_sock s
    | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> Tcp (host, p)
      | _ -> Unix_sock s)

let address_to_string = function
  | Unix_sock path -> path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

(* --- Payload fields ------------------------------------------------------
   [name ' ' length '\n' bytes '\n'] — binary-safe (the value is read by
   count, not delimiter), human-skimmable in logs, order-preserving for
   repeated names. *)

let put b name value =
  Buffer.add_string b name;
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (String.length value));
  Buffer.add_char b '\n';
  Buffer.add_string b value;
  Buffer.add_char b '\n'

let put_int b name n = put b name (string_of_int n)
let put_bool b name v = put b name (if v then "1" else "0")
let put_float b name v = put b name (Printf.sprintf "%.17g" v)
let put_list b name vs = List.iter (put b name) vs
let put_opt b name = function None -> () | Some v -> put b name v

let fields_of_string s =
  let len = String.length s in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else
      match String.index_from_opt s pos '\n' with
      | None -> fail "malformed field header at byte %d" pos
      | Some nl -> (
        let header = String.sub s pos (nl - pos) in
        match String.rindex_opt header ' ' with
        | None -> fail "malformed field header %S" header
        | Some sp -> (
          let name = String.sub header 0 sp in
          let count = String.sub header (sp + 1) (String.length header - sp - 1) in
          match int_of_string_opt count with
          | Some n when n >= 0 && nl + 1 + n < len ->
            if s.[nl + 1 + n] <> '\n' then fail "field %S: missing terminator" name;
            go (nl + n + 2) ((name, String.sub s (nl + 1) n) :: acc)
          | Some n when n >= 0 -> fail "field %S: value truncated" name
          | _ -> fail "field %S: bad length %S" name count))
  in
  go 0 []

let get fields name =
  match List.assoc_opt name fields with
  | Some v -> v
  | None -> fail "missing field %S" name

let get_opt fields name = List.assoc_opt name fields

let get_int fields name =
  match int_of_string_opt (get fields name) with
  | Some n -> n
  | None -> fail "field %S: not an integer" name

(* Fields added after protocol version 1 shipped decode with a default,
   so old peers' frames (which lack them) still parse. *)
let get_int_default fields name default =
  match get_opt fields name with
  | None -> default
  | Some v -> (
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail "field %S: not an integer" name)

let get_bool fields name = get fields name = "1"

let get_float fields name =
  match float_of_string_opt (get fields name) with
  | Some v -> v
  | None -> fail "field %S: not a float" name

let get_float_default fields name default =
  match get_opt fields name with
  | None -> default
  | Some v -> (
    match float_of_string_opt v with
    | Some f -> f
    | None -> fail "field %S: not a float" name)

let get_list fields name =
  List.filter_map (fun (k, v) -> if k = name then Some v else None) fields

(* --- Messages ------------------------------------------------------------ *)

type priority = Interactive | Batch

let priority_of_string = function
  | "interactive" -> Interactive
  | "batch" -> Batch
  | other -> fail "unknown priority %S (interactive or batch)" other

let priority_to_string = function Interactive -> "interactive" | Batch -> "batch"

type engine_opts = {
  eo_engine : string;
  eo_backend : string;
  eo_level : string option;
  eo_max_supernode : int;
  eo_threads : int;
}

let default_engine_opts =
  { eo_engine = "gsim"; eo_backend = "bytecode"; eo_level = None;
    eo_max_supernode = 8; eo_threads = 1 }

type sim_job = {
  sj_filename : string;
  sj_design : string;
  sj_opts : engine_opts;
  sj_cycles : int;
  sj_pokes : string list;
  sj_token : string option;
  sj_tenant : string option;
  sj_deadline : float;
}

type campaign_job = {
  cj_filename : string;
  cj_design : string;
  cj_opts : engine_opts;
  cj_horizon : int;
  cj_budget : int;
  cj_faults : string list;
  cj_random : int;
  cj_seed : int;
  cj_duration : int;
  cj_models : string option;
  cj_pokes : string list;
  cj_token : string option;
  cj_tenant : string option;
  cj_deadline : float;
}

type fuzz_job = {
  fj_seed : int;
  fj_cases : int;
  fj_from : int;
  fj_cycles : int;
  fj_setups : string option;
  fj_token : string option;
  fj_tenant : string option;
  fj_deadline : float;
}

type cov_job = {
  vj_filename : string;
  vj_design : string;
  vj_opts : engine_opts;
  vj_cycles : int;
  vj_pokes : string list;
  vj_token : string option;
  vj_tenant : string option;
  vj_deadline : float;
}

type request =
  | Sim of priority * sim_job
  | Campaign of priority * campaign_job
  | Fuzz of priority * fuzz_job
  | Coverage of priority * cov_job
  | Status
  | Shutdown

let request_token = function
  | Sim (_, j) -> j.sj_token
  | Campaign (_, j) -> j.cj_token
  | Fuzz (_, j) -> j.fj_token
  | Coverage (_, j) -> j.vj_token
  | Status | Shutdown -> None

let with_token token = function
  | Sim (p, j) -> Sim (p, { j with sj_token = Some token })
  | Campaign (p, j) -> Campaign (p, { j with cj_token = Some token })
  | Fuzz (p, j) -> Fuzz (p, { j with fj_token = Some token })
  | Coverage (p, j) -> Coverage (p, { j with vj_token = Some token })
  | (Status | Shutdown) as r -> r

let request_design = function
  | Sim (_, j) -> Some j.sj_design
  | Campaign (_, j) -> Some j.cj_design
  | Coverage (_, j) -> Some j.vj_design
  | Fuzz _ | Status | Shutdown -> None

let request_filename = function
  | Sim (_, j) -> Some j.sj_filename
  | Campaign (_, j) -> Some j.cj_filename
  | Coverage (_, j) -> Some j.vj_filename
  | Fuzz _ | Status | Shutdown -> None

let request_tenant = function
  | Sim (_, j) -> j.sj_tenant
  | Campaign (_, j) -> j.cj_tenant
  | Fuzz (_, j) -> j.fj_tenant
  | Coverage (_, j) -> j.vj_tenant
  | Status | Shutdown -> None

let request_deadline = function
  | Sim (_, j) -> j.sj_deadline
  | Campaign (_, j) -> j.cj_deadline
  | Fuzz (_, j) -> j.fj_deadline
  | Coverage (_, j) -> j.vj_deadline
  | Status | Shutdown -> 0.

type sim_result = {
  sr_engine : string;
  sr_cycles : int;
  sr_halted : bool;
  sr_outputs : (string * string) list;
  sr_cache_hit : bool;
  sr_compile_seconds : float;
  sr_preemptions : int;
}

type db_result = {
  dr_kind : string;
  dr_text : string;
  dr_summary : string;
  dr_cache_hit : bool;
  dr_seconds : float;
}

type tenant_stat = {
  tn_tenant : string;
  tn_submitted : int;
  tn_completed : int;
  tn_shed : int;
  tn_expired : int;
  tn_inflight : int;
}

type status = {
  st_workers : int;
  st_queued : int;
  st_running : int;
  st_completed : int;
  st_rejected : int;
  st_cache_entries : int;
  st_cache_capacity : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
  st_golden_hits : int;
  st_golden_misses : int;
  st_preemptions : int;
  st_uptime : float;
  st_draining : bool;
  st_retries : int;
  st_hangs : int;
  st_worker_crashes : int;
  st_worker_restarts : int;
  st_gave_up : int;
  st_quarantined : int;
  st_quarantine_trips : int;
  st_chaos_injected : int;
  st_shed : int;
  st_over_budget : int;
  st_deadline_expired : int;
  st_tenants : tenant_stat list;
}

type error_code =
  | Generic
  | Refused
  | Queue_full
  | Timeout
  | Worker_lost
  | Quarantined
  | Protocol_violation
  | Internal
  | Over_budget
  | Deadline_exceeded
  | Overloaded

let error_code_to_string = function
  | Generic -> "error"
  | Refused -> "refused"
  | Queue_full -> "queue-full"
  | Timeout -> "timeout"
  | Worker_lost -> "worker-lost"
  | Quarantined -> "quarantined"
  | Protocol_violation -> "protocol"
  | Internal -> "internal"
  | Over_budget -> "over-budget"
  | Deadline_exceeded -> "deadline-exceeded"
  | Overloaded -> "overloaded"

(* Unknown codes decode as [Generic]: an old client keeps working when
   a newer daemon grows codes. *)
let error_code_of_string = function
  | "refused" -> Refused
  | "queue-full" -> Queue_full
  | "timeout" -> Timeout
  | "worker-lost" -> Worker_lost
  | "quarantined" -> Quarantined
  | "protocol" -> Protocol_violation
  | "internal" -> Internal
  | "over-budget" -> Over_budget
  | "deadline-exceeded" -> Deadline_exceeded
  | "overloaded" -> Overloaded
  | _ -> Generic

type error_info = {
  ei_code : error_code;
  ei_message : string;
  ei_attempts : int;
  ei_retry_after : float;
}

type response =
  | Sim_done of sim_result
  | Db_done of db_result
  | Status_ok of status
  | Shutting_down
  | Error_resp of error_info

let error_resp ?(code = Generic) ?(attempts = 1) ?(retry_after = 0.) msg =
  Error_resp
    { ei_code = code; ei_message = msg; ei_attempts = attempts;
      ei_retry_after = retry_after }

(* --- Message payloads ---------------------------------------------------- *)

let put_priority b p = put b "priority" (priority_to_string p)
let get_priority fields = priority_of_string (get fields "priority")

let put_opts b (o : engine_opts) =
  put b "engine" o.eo_engine;
  put b "backend" o.eo_backend;
  put_opt b "level" o.eo_level;
  put_int b "max-supernode" o.eo_max_supernode;
  put_int b "threads" o.eo_threads

let get_opts fields =
  {
    eo_engine = get fields "engine";
    eo_backend = get fields "backend";
    eo_level = get_opt fields "level";
    eo_max_supernode = get_int fields "max-supernode";
    eo_threads = get_int fields "threads";
  }

(* Tenant and deadline (both post-v1) ride on every job payload; the
   deadline travels as a relative budget in seconds so a queued frame
   replayed after a daemon restart still means the same thing. *)
let put_tenancy b tenant deadline =
  put_opt b "tenant" tenant;
  if deadline > 0. then put_float b "deadline" deadline

let sim_payload p (j : sim_job) =
  let b = Buffer.create (String.length j.sj_design + 256) in
  put_priority b p;
  put b "filename" j.sj_filename;
  put b "design" j.sj_design;
  put_opts b j.sj_opts;
  put_int b "cycles" j.sj_cycles;
  put_list b "poke" j.sj_pokes;
  put_opt b "token" j.sj_token;
  put_tenancy b j.sj_tenant j.sj_deadline;
  Buffer.contents b

let sim_of_fields fields =
  ( get_priority fields,
    {
      sj_filename = get fields "filename";
      sj_design = get fields "design";
      sj_opts = get_opts fields;
      sj_cycles = get_int fields "cycles";
      sj_pokes = get_list fields "poke";
      sj_token = get_opt fields "token";
      sj_tenant = get_opt fields "tenant";
      sj_deadline = get_float_default fields "deadline" 0.;
    } )

let campaign_payload p (j : campaign_job) =
  let b = Buffer.create (String.length j.cj_design + 256) in
  put_priority b p;
  put b "filename" j.cj_filename;
  put b "design" j.cj_design;
  put_opts b j.cj_opts;
  put_int b "horizon" j.cj_horizon;
  put_int b "budget" j.cj_budget;
  put_list b "fault" j.cj_faults;
  put_int b "random" j.cj_random;
  put_int b "seed" j.cj_seed;
  put_int b "duration" j.cj_duration;
  put_opt b "models" j.cj_models;
  put_list b "poke" j.cj_pokes;
  put_opt b "token" j.cj_token;
  put_tenancy b j.cj_tenant j.cj_deadline;
  Buffer.contents b

let campaign_of_fields fields =
  ( get_priority fields,
    {
      cj_filename = get fields "filename";
      cj_design = get fields "design";
      cj_opts = get_opts fields;
      cj_horizon = get_int fields "horizon";
      cj_budget = get_int fields "budget";
      cj_faults = get_list fields "fault";
      cj_random = get_int fields "random";
      cj_seed = get_int fields "seed";
      cj_duration = get_int fields "duration";
      cj_models = get_opt fields "models";
      cj_pokes = get_list fields "poke";
      cj_token = get_opt fields "token";
      cj_tenant = get_opt fields "tenant";
      cj_deadline = get_float_default fields "deadline" 0.;
    } )

let fuzz_payload p (j : fuzz_job) =
  let b = Buffer.create 128 in
  put_priority b p;
  put_int b "seed" j.fj_seed;
  put_int b "cases" j.fj_cases;
  put_int b "from" j.fj_from;
  put_int b "cycles" j.fj_cycles;
  put_opt b "setups" j.fj_setups;
  put_opt b "token" j.fj_token;
  put_tenancy b j.fj_tenant j.fj_deadline;
  Buffer.contents b

let fuzz_of_fields fields =
  ( get_priority fields,
    {
      fj_seed = get_int fields "seed";
      fj_cases = get_int fields "cases";
      fj_from = get_int fields "from";
      fj_cycles = get_int fields "cycles";
      fj_setups = get_opt fields "setups";
      fj_token = get_opt fields "token";
      fj_tenant = get_opt fields "tenant";
      fj_deadline = get_float_default fields "deadline" 0.;
    } )

let cov_payload p (j : cov_job) =
  let b = Buffer.create (String.length j.vj_design + 256) in
  put_priority b p;
  put b "filename" j.vj_filename;
  put b "design" j.vj_design;
  put_opts b j.vj_opts;
  put_int b "cycles" j.vj_cycles;
  put_list b "poke" j.vj_pokes;
  put_opt b "token" j.vj_token;
  put_tenancy b j.vj_tenant j.vj_deadline;
  Buffer.contents b

let cov_of_fields fields =
  ( get_priority fields,
    {
      vj_filename = get fields "filename";
      vj_design = get fields "design";
      vj_opts = get_opts fields;
      vj_cycles = get_int fields "cycles";
      vj_pokes = get_list fields "poke";
      vj_token = get_opt fields "token";
      vj_tenant = get_opt fields "tenant";
      vj_deadline = get_float_default fields "deadline" 0.;
    } )

let sim_result_payload (r : sim_result) =
  let b = Buffer.create 256 in
  put b "engine" r.sr_engine;
  put_int b "cycles" r.sr_cycles;
  put_bool b "halted" r.sr_halted;
  List.iter
    (fun (name, value) ->
      put b "output-name" name;
      put b "output-value" value)
    r.sr_outputs;
  put_bool b "cache-hit" r.sr_cache_hit;
  put_float b "compile-seconds" r.sr_compile_seconds;
  put_int b "preemptions" r.sr_preemptions;
  Buffer.contents b

let sim_result_of_fields fields =
  let names = get_list fields "output-name" in
  let values = get_list fields "output-value" in
  if List.length names <> List.length values then
    fail "sim result: %d output name(s) but %d value(s)" (List.length names)
      (List.length values);
  {
    sr_engine = get fields "engine";
    sr_cycles = get_int fields "cycles";
    sr_halted = get_bool fields "halted";
    sr_outputs = List.combine names values;
    sr_cache_hit = get_bool fields "cache-hit";
    sr_compile_seconds = get_float fields "compile-seconds";
    sr_preemptions = get_int fields "preemptions";
  }

let db_result_payload (r : db_result) =
  let b = Buffer.create (String.length r.dr_text + 128) in
  put b "kind" r.dr_kind;
  put b "text" r.dr_text;
  put b "summary" r.dr_summary;
  put_bool b "cache-hit" r.dr_cache_hit;
  put_float b "seconds" r.dr_seconds;
  Buffer.contents b

let db_result_of_fields fields =
  {
    dr_kind = get fields "kind";
    dr_text = get fields "text";
    dr_summary = get fields "summary";
    dr_cache_hit = get_bool fields "cache-hit";
    dr_seconds = get_float fields "seconds";
  }

let status_payload (s : status) =
  let b = Buffer.create 256 in
  put_int b "workers" s.st_workers;
  put_int b "queued" s.st_queued;
  put_int b "running" s.st_running;
  put_int b "completed" s.st_completed;
  put_int b "rejected" s.st_rejected;
  put_int b "cache-entries" s.st_cache_entries;
  put_int b "cache-capacity" s.st_cache_capacity;
  put_int b "cache-hits" s.st_cache_hits;
  put_int b "cache-misses" s.st_cache_misses;
  put_int b "cache-evictions" s.st_cache_evictions;
  put_int b "golden-hits" s.st_golden_hits;
  put_int b "golden-misses" s.st_golden_misses;
  put_int b "preemptions" s.st_preemptions;
  put_float b "uptime" s.st_uptime;
  put_bool b "draining" s.st_draining;
  put_int b "retries" s.st_retries;
  put_int b "hangs" s.st_hangs;
  put_int b "worker-crashes" s.st_worker_crashes;
  put_int b "worker-restarts" s.st_worker_restarts;
  put_int b "gave-up" s.st_gave_up;
  put_int b "quarantined" s.st_quarantined;
  put_int b "quarantine-trips" s.st_quarantine_trips;
  put_int b "chaos-injected" s.st_chaos_injected;
  put_int b "shed" s.st_shed;
  put_int b "over-budget" s.st_over_budget;
  put_int b "deadline-expired" s.st_deadline_expired;
  List.iter
    (fun t ->
      put b "tenant-name" t.tn_tenant;
      put b "tenant-counters"
        (Printf.sprintf "%d %d %d %d %d" t.tn_submitted t.tn_completed t.tn_shed
           t.tn_expired t.tn_inflight))
    s.st_tenants;
  Buffer.contents b

let tenant_stats_of_fields fields =
  let names = get_list fields "tenant-name" in
  let counters = get_list fields "tenant-counters" in
  if List.length names <> List.length counters then
    fail "status: %d tenant name(s) but %d counter row(s)" (List.length names)
      (List.length counters);
  List.map2
    (fun name row ->
      match
        String.split_on_char ' ' row |> List.filter (fun s -> s <> "")
        |> List.map int_of_string_opt
      with
      | [ Some sub; Some comp; Some shed; Some exp_; Some infl ] ->
        { tn_tenant = name; tn_submitted = sub; tn_completed = comp; tn_shed = shed;
          tn_expired = exp_; tn_inflight = infl }
      | _ -> fail "status: malformed tenant counters %S" row)
    names counters

let status_of_fields fields =
  {
    st_workers = get_int fields "workers";
    st_queued = get_int fields "queued";
    st_running = get_int fields "running";
    st_completed = get_int fields "completed";
    st_rejected = get_int fields "rejected";
    st_cache_entries = get_int fields "cache-entries";
    st_cache_capacity = get_int fields "cache-capacity";
    st_cache_hits = get_int fields "cache-hits";
    st_cache_misses = get_int fields "cache-misses";
    st_cache_evictions = get_int fields "cache-evictions";
    st_golden_hits = get_int fields "golden-hits";
    st_golden_misses = get_int fields "golden-misses";
    st_preemptions = get_int fields "preemptions";
    st_uptime = get_float fields "uptime";
    st_draining = get_bool fields "draining";
    st_retries = get_int_default fields "retries" 0;
    st_hangs = get_int_default fields "hangs" 0;
    st_worker_crashes = get_int_default fields "worker-crashes" 0;
    st_worker_restarts = get_int_default fields "worker-restarts" 0;
    st_gave_up = get_int_default fields "gave-up" 0;
    st_quarantined = get_int_default fields "quarantined" 0;
    st_quarantine_trips = get_int_default fields "quarantine-trips" 0;
    st_chaos_injected = get_int_default fields "chaos-injected" 0;
    st_shed = get_int_default fields "shed" 0;
    st_over_budget = get_int_default fields "over-budget" 0;
    st_deadline_expired = get_int_default fields "deadline-expired" 0;
    st_tenants = tenant_stats_of_fields fields;
  }

(* --- Frames -------------------------------------------------------------- *)

let frame_to_string ~kind payload =
  let n = String.length payload in
  if n > max_payload then fail "frame payload %d byte(s) exceeds maximum %d" n max_payload;
  if kind < 0 || kind > 255 then fail "frame kind %d out of range" kind;
  let b = Buffer.create (n + header_size) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr kind);
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let parse_header h =
  (* [h] is exactly [header_size] bytes. *)
  if String.sub h 0 4 <> magic then fail "bad magic (not a gsimd peer?)";
  let v = Char.code h.[4] in
  if v <> version then fail "unsupported protocol version %d (this build speaks %d)" v version;
  let kind = Char.code h.[5] in
  let n =
    (Char.code h.[6] lsl 24) lor (Char.code h.[7] lsl 16) lor (Char.code h.[8] lsl 8)
    lor Char.code h.[9]
  in
  if n > max_payload then fail "frame length %d exceeds maximum %d" n max_payload;
  (kind, n)

let frame_of_string s =
  let len = String.length s in
  if len < header_size then
    fail "truncated frame: %d byte(s), header needs %d" len header_size;
  let kind, n = parse_header (String.sub s 0 header_size) in
  if len <> header_size + n then
    fail "truncated frame: payload has %d of %d byte(s)" (len - header_size) n;
  (kind, String.sub s header_size n)

(* Kind tags: requests 0x01-0x3f, responses 0x41-0x7f. *)

let encode_request = function
  | Sim (p, j) -> frame_to_string ~kind:0x01 (sim_payload p j)
  | Campaign (p, j) -> frame_to_string ~kind:0x02 (campaign_payload p j)
  | Fuzz (p, j) -> frame_to_string ~kind:0x03 (fuzz_payload p j)
  | Coverage (p, j) -> frame_to_string ~kind:0x04 (cov_payload p j)
  | Status -> frame_to_string ~kind:0x05 ""
  | Shutdown -> frame_to_string ~kind:0x06 ""

let request_of_frame kind payload =
  let fields () = fields_of_string payload in
  match kind with
  | 0x01 ->
    let p, j = sim_of_fields (fields ()) in
    Sim (p, j)
  | 0x02 ->
    let p, j = campaign_of_fields (fields ()) in
    Campaign (p, j)
  | 0x03 ->
    let p, j = fuzz_of_fields (fields ()) in
    Fuzz (p, j)
  | 0x04 ->
    let p, j = cov_of_fields (fields ()) in
    Coverage (p, j)
  | 0x05 -> Status
  | 0x06 -> Shutdown
  | k -> fail "unknown request kind 0x%02x" k

let decode_request s =
  let kind, payload = frame_of_string s in
  request_of_frame kind payload

let encode_response = function
  | Sim_done r -> frame_to_string ~kind:0x41 (sim_result_payload r)
  | Db_done r -> frame_to_string ~kind:0x42 (db_result_payload r)
  | Status_ok s -> frame_to_string ~kind:0x43 (status_payload s)
  | Shutting_down -> frame_to_string ~kind:0x44 ""
  | Error_resp e ->
    let b = Buffer.create 64 in
    put b "message" e.ei_message;
    put b "code" (error_code_to_string e.ei_code);
    put_int b "attempts" e.ei_attempts;
    if e.ei_retry_after > 0. then put_float b "retry-after" e.ei_retry_after;
    frame_to_string ~kind:0x45 (Buffer.contents b)

let response_of_frame kind payload =
  match kind with
  | 0x41 -> Sim_done (sim_result_of_fields (fields_of_string payload))
  | 0x42 -> Db_done (db_result_of_fields (fields_of_string payload))
  | 0x43 -> Status_ok (status_of_fields (fields_of_string payload))
  | 0x44 -> Shutting_down
  | 0x45 ->
    let fields = fields_of_string payload in
    Error_resp
      {
        ei_message = get fields "message";
        ei_code =
          (match get_opt fields "code" with
           | Some c -> error_code_of_string c
           | None -> Generic);
        ei_attempts = get_int_default fields "attempts" 1;
        ei_retry_after = get_float_default fields "retry-after" 0.;
      }
  | k -> fail "unknown response kind 0x%02x" k

let decode_response s =
  let kind, payload = frame_of_string s in
  response_of_frame kind payload

(* --- Channel I/O --------------------------------------------------------- *)

let read_exact ic n =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      let r = input ic buf off (n - off) in
      if r = 0 then fail "truncated frame: connection closed after %d of %d byte(s)" off n;
      go (off + r)
    end
  in
  go 0;
  Bytes.unsafe_to_string buf

let read_frame ic =
  match input_char ic with
  | exception End_of_file -> None  (* clean EOF at a frame boundary *)
  | first ->
    let header = String.make 1 first ^ read_exact ic (header_size - 1) in
    let kind, n = parse_header header in
    Some (kind, if n = 0 then "" else read_exact ic n)

let write_frame oc frame =
  output_string oc frame;
  flush oc

let read_request ic =
  Option.map (fun (kind, payload) -> request_of_frame kind payload) (read_frame ic)

let write_request oc r = write_frame oc (encode_request r)

let read_response ic =
  Option.map (fun (kind, payload) -> response_of_frame kind payload) (read_frame ic)

let write_response oc r = write_frame oc (encode_response r)
