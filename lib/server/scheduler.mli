(** Bounded two-level priority queue feeding the worker pool.

    Priorities are small integers, 0 highest (the daemon maps
    [Interactive] to 0 and [Batch] to 1); FIFO within a level.  The
    queue is bounded: {!submit} refuses work beyond [capacity] (and any
    work at all once draining), while {!requeue} — used for preempted
    jobs, which must be allowed to finish — ignores both limits and
    re-inserts at the {e back} of the job's own level so equal-priority
    peers are not starved. *)

type 'a t

val levels : int

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 64 jobs across all levels. *)

val submit : 'a t -> priority:int -> 'a -> bool
(** [false] when the queue is full or the scheduler is draining. *)

val requeue : 'a t -> priority:int -> 'a -> unit

val take : 'a t -> 'a option
(** Blocks until work is available; highest-priority (lowest level)
    first.  [None] once draining {e and} empty — the worker should
    exit. *)

val higher_waiting : 'a t -> than:int -> bool
(** Work queued at a strictly higher priority than [than] — the
    preemption test a long job polls between strides. *)

val drain : 'a t -> unit
(** Refuse new submissions; wake all blocked {!take} callers once the
    backlog empties. *)

val draining : 'a t -> bool
val queued : 'a t -> int
