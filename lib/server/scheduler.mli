(** Bounded two-band priority queue with per-tenant fairness.

    Priorities are small integers, 0 highest (the daemon maps
    [Interactive] to 0 and [Batch] to 1).  Within each band, dequeue is
    weighted deficit-round-robin across tenants: every visit replenishes
    a tenant's deficit by [quantum × weight] and serves its head job
    when the deficit covers the job's cost, so two equal-weight tenants
    under saturation split the band ~50/50 however unevenly they
    submit, and a tenant submitting costlier jobs (cost ≈ estimated
    work) is dispatched proportionally less often.  A tenant that empties
    forfeits its remaining deficit — idle time banks no credit.

    The queue is bounded two ways: {!submit} refuses work beyond
    [capacity] in total (and any work at all once draining), and beyond
    [tenant_quota] queued jobs for one tenant; {!requeue} — used for
    preempted and retried jobs, which must be allowed to finish —
    bypasses every limit and re-inserts at the {e back} of the job's own
    tenant FIFO. *)

type 'a t

val levels : int

val default_tenant : string
(** The bucket jobs without a tenant id land in. *)

type verdict = Accepted | Rejected_full | Rejected_quota

val create : ?capacity:int -> ?quantum:int -> ?tenant_quota:int -> unit -> 'a t
(** Default: capacity 64 jobs across all bands, quantum 1, no per-tenant
    quota. *)

val submit :
  'a t -> priority:int -> ?tenant:string -> ?weight:int -> ?cost:int -> 'a -> verdict
(** [weight], when given, re-pins the tenant's DRR weight (≥ 1).
    [cost] defaults to 1 and is clamped to [1, 1024]. *)

val requeue : 'a t -> priority:int -> ?tenant:string -> ?cost:int -> 'a -> unit

val take : 'a t -> 'a option
(** Blocks until work is available; highest-priority (lowest band)
    first, DRR within the band.  [None] once draining {e and} empty —
    the worker should exit. *)

val higher_waiting : 'a t -> than:int -> bool
(** Work queued at a strictly higher priority than [than] — the
    preemption test a long job polls between strides. *)

val drain : 'a t -> unit
(** Refuse new submissions; wake all blocked {!take} callers once the
    backlog empties. *)

val draining : 'a t -> bool
val queued : 'a t -> int

val queued_at : 'a t -> priority:int -> int
(** Depth of one band — what the brownout high-water mark watches. *)

val queued_for : 'a t -> string -> int
(** Jobs one tenant has queued across both bands. *)

val tenants : 'a t -> (string * int) list
(** Every tenant with queued work and its depth, sorted by name. *)
