(** Admission cost estimation: the resource-bomb gate.

    Before a design-carrying job touches the queue, the daemon runs the
    frontend alone (parse + elaborate — no pass pipeline, no partitioning,
    no engine construction) and takes one cheap fold over the raw circuit
    to bound what executing the job would cost:

    - node count and maximum declared width;
    - memory-array footprint, [Σ depth × ⌈width/64⌉ × 8] bytes;
    - estimated runtime arena, [nodes × 8 + Σ_wide 2 × ⌈width/64⌉ × 8 +
      mem] bytes (one narrow slot per node; wide nodes also own boxed
      limbs plus the flat mirror the native backend writes through);
    - a native-compile estimate: the count of narrow [Logic]/[Reg_next]
      nodes the C emitter would generate functions for — a proxy for how
      long [cc -O2] would chew on the generated translation unit.

    All estimates are taken on the unoptimized graph, so they are upper
    bounds: passes only shrink the circuit.  A job whose estimate crosses
    any configured budget is refused with [Over_budget] naming the
    violated limit, before any worker tick runs. *)

type estimate = {
  est_nodes : int;
  est_max_width : int;
  est_mem_bytes : int;
  est_arena_bytes : int;
  est_native_nodes : int;
}

(** Daemon-side limits; [0] in any field means that limit is not
    enforced. *)
type budgets = {
  max_nodes : int;
  max_width : int;
  max_mem_bytes : int;
  max_arena_bytes : int;
  max_native_nodes : int;
}

val unlimited : budgets

val limited : budgets -> bool
(** At least one limit is enforced. *)

val estimate : Gsim_ir.Circuit.t -> estimate

val check : budgets -> estimate -> (unit, string) result
(** [Error msg] names the first violated limit with both the estimate
    and the budget, ready to travel as the [over-budget] error text. *)

val budgets_of_string : string -> budgets
(** Parses ["nodes=200000,width=4096,mem-mb=512,arena-mb=1024,native-nodes=50000"];
    every key optional, [""] means {!unlimited}.  Raises [Failure] on an
    unknown key or a malformed value. *)

val budgets_to_string : budgets -> string
