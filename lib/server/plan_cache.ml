type 'a entry = { value : 'a; mutable stamp : int }

(* Poisoned-design circuit breaker.  [Closed] admits freely; after
   [quarantine_threshold] consecutive worker losses the breaker opens
   and every admission is refused until [quarantine_cooldown] elapses;
   then exactly one probe job is let through ([Half_open]) — its fate
   decides between closing again and another full cooldown. *)
type breaker_state = Closed | Open of float | Half_open

type breaker = { mutable failures : int; mutable state : breaker_state }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  quarantine_threshold : int;
  quarantine_cooldown : float;
  breakers : (string, breaker) Hashtbl.t;
  mutable trips : int;
}

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  quarantined : int;
  quarantine_trips : int;
}

let create ?(capacity = 16) ?(quarantine_threshold = 3) ?(quarantine_cooldown = 30.) () =
  {
    capacity;
    tbl = Hashtbl.create (max 1 capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    quarantine_threshold;
    quarantine_cooldown;
    breakers = Hashtbl.create 8;
    trips = 0;
  }

let touch (t : 'a t) e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find (t : 'a t) key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_lru (t : 'a t) =
  (* O(entries) scan — capacities are small (tens), so simplicity wins
     over an intrusive list. *)
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

let add (t : 'a t) key value =
  if t.capacity > 0 then
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e -> touch t e
        | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          t.tick <- t.tick + 1;
          Hashtbl.replace t.tbl key { value; stamp = t.tick })

let admit (t : 'a t) key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.breakers key with
      | None -> `Proceed
      | Some b -> (
        match b.state with
        | Closed -> `Proceed
        | Half_open ->
          (* One probe is already in flight; refuse the rest cheaply. *)
          `Quarantined t.quarantine_cooldown
        | Open opened_at ->
          let remaining = t.quarantine_cooldown -. (Unix.gettimeofday () -. opened_at) in
          if remaining <= 0. then begin
            b.state <- Half_open;
            `Probe
          end
          else `Quarantined remaining))

let record_failure (t : 'a t) key =
  Mutex.protect t.lock (fun () ->
      let b =
        match Hashtbl.find_opt t.breakers key with
        | Some b -> b
        | None ->
          let b = { failures = 0; state = Closed } in
          Hashtbl.replace t.breakers key b;
          b
      in
      b.failures <- b.failures + 1;
      match b.state with
      | Open _ -> `Counted
      | Half_open ->
        (* The probe died too: a fresh cooldown, not a fresh trip. *)
        b.state <- Open (Unix.gettimeofday ());
        `Counted
      | Closed ->
        if b.failures >= t.quarantine_threshold then begin
          b.state <- Open (Unix.gettimeofday ());
          t.trips <- t.trips + 1;
          `Tripped
        end
        else `Counted)

let record_success (t : 'a t) key =
  Mutex.protect t.lock (fun () -> Hashtbl.remove t.breakers key)

let stats (t : 'a t) =
  Mutex.protect t.lock (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        quarantined =
          Hashtbl.fold
            (fun _ b acc -> match b.state with Closed -> acc | _ -> acc + 1)
            t.breakers 0;
        quarantine_trips = t.trips;
      })
