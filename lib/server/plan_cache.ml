type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  capacity : int;
  tbl : (string, 'a entry) Hashtbl.t;
  lock : Mutex.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ?(capacity = 16) () =
  {
    capacity;
    tbl = Hashtbl.create (max 1 capacity);
    lock = Mutex.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let touch (t : 'a t) e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find (t : 'a t) key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some e ->
        t.hits <- t.hits + 1;
        touch t e;
        Some e.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_lru (t : 'a t) =
  (* O(entries) scan — capacities are small (tens), so simplicity wins
     over an intrusive list. *)
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1
  | None -> ()

let add (t : 'a t) key value =
  if t.capacity > 0 then
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some e -> touch t e
        | None ->
          if Hashtbl.length t.tbl >= t.capacity then evict_lru t;
          t.tick <- t.tick + 1;
          Hashtbl.replace t.tbl key { value; stamp = t.tick })

let stats (t : 'a t) =
  Mutex.protect t.lock (fun () ->
      {
        entries = Hashtbl.length t.tbl;
        capacity = t.capacity;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })
