(** Thread-safe LRU cache for compiled plans (generic in the value).

    Keys are strings ({!Gsim_core.Gsim.Compile.key}: circuit hash plus
    config fingerprint).  The cache never blocks during a build — two
    workers racing on the same missing key may both build it (the second
    [add] wins); what matters is that repeat traffic skips the compile
    pipeline entirely. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Default capacity 16; [capacity <= 0] disables caching entirely
    ([find] always misses, [add] is a no-op) — used to benchmark the
    cold path. *)

val find : 'a t -> string -> 'a option
(** Counts a hit or a miss and refreshes recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes), evicting the least-recently-used entry when
    at capacity. *)

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
}

val stats : 'a t -> stats
