(** Thread-safe LRU cache for compiled plans (generic in the value).

    Keys are strings ({!Gsim_core.Gsim.Compile.key}: circuit hash plus
    config fingerprint).  The cache never blocks during a build — two
    workers racing on the same missing key may both build it (the second
    [add] wins); what matters is that repeat traffic skips the compile
    pipeline entirely. *)

type 'a t

val create :
  ?capacity:int -> ?quarantine_threshold:int -> ?quarantine_cooldown:float -> unit -> 'a t
(** Default capacity 16; [capacity <= 0] disables caching entirely
    ([find] always misses, [add] is a no-op) — used to benchmark the
    cold path.  The quarantine breaker (threshold 3 consecutive worker
    losses, cooldown 30 s) works even with caching disabled. *)

val find : 'a t -> string -> 'a option
(** Counts a hit or a miss and refreshes recency on a hit. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes), evicting the least-recently-used entry when
    at capacity. *)

(** {1 Poisoned-design quarantine}

    A per-key circuit breaker, keyed like the cache (design digest), fed
    by the daemon's supervisor: a design whose jobs repeatedly crash or
    hang their worker is quarantined so it cannot keep eating the pool.
    Closed → (threshold consecutive losses) → Open → (cooldown) →
    Half-open, which admits exactly one probe — the probe's success
    closes the breaker, its failure re-opens it for another cooldown.
    Any successful completion resets the key's failure count. *)

val admit : 'a t -> string -> [ `Proceed | `Probe | `Quarantined of float ]
(** Called before executing a job for [key].  [`Quarantined remaining]
    carries the seconds until the next probe slot. *)

val record_failure : 'a t -> string -> [ `Counted | `Tripped ]
(** A worker was lost running [key]; [`Tripped] on the Closed → Open
    transition. *)

val record_success : 'a t -> string -> unit
(** Clears the key's breaker (closes it and zeroes its failure count). *)

type stats = {
  entries : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  quarantined : int;  (** keys whose breaker is currently Open or Half-open *)
  quarantine_trips : int;  (** lifetime Closed → Open transitions *)
}

val stats : 'a t -> stats
