module Store = Gsim_resilience.Store
module Compile = Gsim_core.Gsim.Compile
module P = Protocol

type config = {
  address : P.address;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  preempt_stride : int;
  spool : string option;
  log : out_channel;
  supervision : Supervisor.policy;
  chaos : Chaos.spec;
  budgets : Admission.budgets;
  high_water : float;
      (* batch-band depth, as a fraction of queue capacity, past which
         new batch work is shed with a retry-after hint; <= 0 disables *)
  max_backlog_seconds : float;
      (* estimated batch backlog (EWMA job seconds × queued / workers)
         past which new batch work is shed; <= 0 disables *)
  tenant_quota : int;  (* max queued jobs per tenant; 0 = unlimited *)
  spool_quota_mb : int;  (* golden-cache disk budget; 0 = unlimited *)
}

let default_config address =
  {
    address;
    workers = max 2 (Domain.recommended_domain_count () - 2);
    queue_capacity = 64;
    cache_capacity = 16;
    preempt_stride = 10_000;
    spool = None;
    log = stderr;
    supervision = Supervisor.default_policy;
    chaos = Chaos.none;
    budgets = Admission.unlimited;
    high_water = 0.9;
    max_backlog_seconds = 0.;
    tenant_quota = 0;
    spool_quota_mb = 0;
  }

(* Per-tenant counters, mutated under one lock by connection threads and
   workers (via [deliver]); snapshotted for Status. *)
type tstat = {
  mutable ts_sub : int;
  mutable ts_done : int;
  mutable ts_shed : int;
  mutable ts_exp : int;
  mutable ts_inflight : int;
}

(* One response slot per submitted job: the worker Domain fulfils it,
   the connection thread blocks on it and writes the response out. *)
module Waitbox = struct
  type t = { m : Mutex.t; c : Condition.t; mutable v : P.response option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let put b r =
    Mutex.protect b.m (fun () ->
        b.v <- Some r;
        Condition.signal b.c)

  let wait b =
    Mutex.protect b.m (fun () ->
        while b.v = None do
          Condition.wait b.c b.m
        done;
        Option.get b.v)
end

(* Idempotency-token registry: [Running] collects the waitboxes of
   every connection waiting on the job, [Finished] replays the cached
   response to late resubmissions. *)
type tok_state = Tok_running of Waitbox.t list ref | Tok_finished of P.response

let sockaddr_for_bind = function
  | P.Unix_sock path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_any
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (addr, port)

let sockaddr_for_connect = function
  | P.Unix_sock path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (addr, port)

let socket_domain = function P.Unix_sock _ -> Unix.PF_UNIX | P.Tcp _ -> Unix.PF_INET

let serve cfg =
  let log_lock = Mutex.create () in
  let log line =
    let now = Unix.gettimeofday () in
    let tm = Unix.localtime now in
    let frac = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
    Mutex.protect log_lock (fun () ->
        Printf.fprintf cfg.log "[%02d:%02d:%02d.%03d] %s\n%!" tm.Unix.tm_hour
          tm.Unix.tm_min tm.Unix.tm_sec frac line)
  in
  let logf fmt = Printf.ksprintf log fmt in
  let spool =
    match cfg.spool with
    | Some dir -> dir
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-%d" (Unix.getpid ()))
  in
  Store.ensure_dir spool;
  (* Batch requests are persisted here at admission and removed on
     completion, so a killed daemon's unfinished batch work is re-admitted
     by the next boot's scan (and resumes from its spool ring where one
     was written). *)
  let jobs_dir = Filename.concat spool "jobs" in
  Store.ensure_dir jobs_dir;
  let request_path id = Filename.concat jobs_dir (Printf.sprintf "job-%06d.gjb" id) in
  let sched = Scheduler.create ~capacity:cfg.queue_capacity ~tenant_quota:cfg.tenant_quota () in
  let cache = Plan_cache.create ~capacity:cfg.cache_capacity () in
  (* Admission estimates are frontend-only (parse, no pass pipeline) but
     still worth memoizing: a tenant hammering one design re-admits from
     this cache instead of re-parsing on every connection thread. *)
  let est_cache : Admission.estimate Plan_cache.t = Plan_cache.create ~capacity:64 () in
  let chaos = Chaos.create cfg.chaos in
  let ctx =
    {
      Worker.cache;
      sched;
      spool;
      preempt_stride = cfg.preempt_stride;
      log;
      chaos;
      preemption_count = Atomic.make 0;
      golden_hits = Atomic.make 0;
      golden_misses = Atomic.make 0;
    }
  in
  let pol = cfg.supervision in
  let sup = Supervisor.create pol in
  let started = Unix.gettimeofday () in
  let completed = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let retries = Atomic.make 0 in
  let gave_up = Atomic.make 0 in
  let restarts = Atomic.make 0 in
  let next_job = Atomic.make 0 in
  let draining = Atomic.make false in
  let shed = Atomic.make 0 in
  let over_budget = Atomic.make 0 in
  let deadline_expired = Atomic.make 0 in

  (* Per-tenant accounting. *)
  let tstats_lock = Mutex.create () in
  let tstats : (string, tstat) Hashtbl.t = Hashtbl.create 8 in
  let note tenant f =
    Mutex.protect tstats_lock (fun () ->
        let s =
          match Hashtbl.find_opt tstats tenant with
          | Some s -> s
          | None ->
            let s = { ts_sub = 0; ts_done = 0; ts_shed = 0; ts_exp = 0; ts_inflight = 0 } in
            Hashtbl.replace tstats tenant s;
            s
        in
        f s)
  in

  (* EWMA of completed-job wall time, the backlog estimator's numerator:
     backlog-seconds ≈ ewma × queued / workers.  Seeded pessimistically
     so a cold daemon does not under-shed. *)
  let ewma_lock = Mutex.create () in
  let ewma_job_seconds = ref 2.0 in
  let observe_job_seconds dt =
    Mutex.protect ewma_lock (fun () ->
        ewma_job_seconds := (0.8 *. !ewma_job_seconds) +. (0.2 *. dt))
  in
  let backlog_estimate () =
    let e = Mutex.protect ewma_lock (fun () -> !ewma_job_seconds) in
    e *. float_of_int (Scheduler.queued sched) /. float_of_int (max 1 cfg.workers)
  in
  let retry_after () = Float.min 60. (Float.max 1. (backlog_estimate ())) in
  let overloaded () =
    (cfg.high_water > 0.
    && Scheduler.queued_at sched ~priority:1
       >= max 1 (int_of_float (cfg.high_water *. float_of_int cfg.queue_capacity)))
    || (cfg.max_backlog_seconds > 0. && backlog_estimate () > cfg.max_backlog_seconds)
  in

  (* Admission: estimate the resource footprint from a frontend-only
     parse and refuse over-budget designs before they queue.  A design
     the frontend rejects is admitted anyway — the worker owns the
     diagnostic, and estimation must never change failure semantics. *)
  let admission_violation req =
    if not (Admission.limited cfg.budgets) then None
    else
      match (P.request_design req, P.request_filename req) with
      | Some design, Some filename -> (
        let key = Digest.to_hex (Digest.string (filename ^ "\x00" ^ design)) in
        let est =
          match Plan_cache.find est_cache key with
          | Some e -> Some e
          | None -> (
            match Compile.source_of_string ~filename design with
            | src ->
              let e = Admission.estimate src.Compile.circuit in
              Plan_cache.add est_cache key e;
              Some e
            | exception _ -> None)
        in
        match est with
        | None -> None
        | Some e -> (
          match Admission.check cfg.budgets e with Ok () -> None | Error why -> Some why))
      | _ -> None
  in

  (* Retries waiting out their backoff before re-admission. *)
  let delayed_lock = Mutex.create () in
  let delayed : (float * Worker.job) list ref = ref [] in
  let delayed_count () = Mutex.protect delayed_lock (fun () -> List.length !delayed) in

  (* A lost job either goes back to the queue (after backoff with
     jitter) or, past its retry budget, fails with a structured error.
     Every loss also feeds the design's quarantine breaker. *)
  let recover ~kind (job : Worker.job) =
    (match job.Worker.digest with
     | Some key -> (
       match Plan_cache.record_failure cache key with
       | `Tripped ->
         logf "quarantine: design %s OPEN after repeated worker loss"
           (String.sub key 0 (min 12 (String.length key)))
       | `Counted -> ())
     | None -> ());
    let verb = match kind with `Crash -> "worker lost" | `Hang -> "hung" in
    if job.Worker.attempt > pol.Supervisor.max_retries then begin
      Atomic.incr gave_up;
      (try Sys.remove (request_path job.Worker.id) with Sys_error _ -> ());
      Worker.discard_scratch ctx job;
      let code = match kind with `Crash -> P.Worker_lost | `Hang -> P.Timeout in
      logf "job %d: giving up after %d attempt(s) (%s every time)" job.Worker.id
        job.Worker.attempt verb;
      job.Worker.reply
        (P.error_resp ~code ~attempts:job.Worker.attempt
           (Printf.sprintf "job failed after %d attempt(s): %s each time" job.Worker.attempt
              verb))
    end
    else begin
      Atomic.incr retries;
      let retry = Worker.retry_of job in
      let jitter =
        Chaos.hash01 ~seed:job.Worker.id ~site:"retry-jitter" [ job.Worker.attempt ]
      in
      let delay = Supervisor.backoff pol ~attempt:job.Worker.attempt ~jitter in
      let due = Unix.gettimeofday () +. delay in
      Mutex.protect delayed_lock (fun () -> delayed := (due, retry) :: !delayed);
      logf "job %d: %s at cycle %d on attempt %d/%d; retrying in %.0f ms" job.Worker.id verb
        job.Worker.done_cycles job.Worker.attempt
        (pol.Supervisor.max_retries + 1)
        (delay *. 1000.)
    end
  in

  (* Boot scan: re-admit batch jobs a previous daemon left behind.  The
     jobs queue before the worker pool starts; new job ids are allocated
     above every scanned id so a re-admitted job keeps exclusive use of
     its spool directory. *)
  let () =
    let entries = try Sys.readdir jobs_dir with Sys_error _ -> [||] in
    Array.sort compare entries;
    Array.iter
      (fun f ->
        match Scanf.sscanf f "job-%d.gjb%!" (fun i -> i) with
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
        | id ->
          (* Even an undecodable file retires its id: a stale spool ring
             under that number must never alias a fresh job. *)
          if id >= Atomic.get next_job then Atomic.set next_job (id + 1);
          let path = Filename.concat jobs_dir f in
          let req =
            match
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | s -> ( try Some (P.decode_request s) with P.Error _ -> None)
            | exception (Sys_error _ | End_of_file) -> None
          in
          (match req with
           | None ->
             logf "boot: dropping unreadable job file %s" f;
             (try Sys.remove path with Sys_error _ -> ())
           | Some ((P.Sim _ | P.Campaign _ | P.Fuzz _ | P.Coverage _) as req) ->
             let replied = Atomic.make false in
             let tenant =
               match P.request_tenant req with
               | Some t -> t
               | None -> Scheduler.default_tenant
             in
             (* Deadlines travel as relative budgets; a recovered job's
                budget restarts at re-admission — the original submitter
                is gone, so the old clock has nothing to anchor to. *)
             let rel = P.request_deadline req in
             let deadline = if rel > 0. then Unix.gettimeofday () +. rel else 0. in
             let job =
               Worker.make_job ~id ~priority:1 ~tenant ~deadline
                 ~reply:(fun resp ->
                   if not (Atomic.exchange replied true) then
                     match resp with
                     | P.Error_resp e ->
                       logf "recovered job %d failed: %s" id e.P.ei_message
                     | _ -> logf "recovered job %d completed" id)
                 req
             in
             job.Worker.recovered <- true;
             (match Scheduler.submit sched ~priority:1 ~tenant job with
              | Scheduler.Accepted -> logf "boot: re-admitted interrupted job %d (%s)" id f
              | Scheduler.Rejected_full | Scheduler.Rejected_quota ->
                logf "boot: queue full, leaving job %d for the next restart" id)
           | Some (P.Status | P.Shutdown) ->
             (try Sys.remove path with Sys_error _ -> ())))
      entries
  in

  (* Listening socket. *)
  let sock = Unix.socket (socket_domain cfg.address) Unix.SOCK_STREAM 0 in
  (match cfg.address with
   | P.Unix_sock path ->
     if Sys.file_exists path then Sys.remove path;  (* stale socket from a crash *)
     Unix.bind sock (Unix.ADDR_UNIX path);
     (* Even a SIGTERM exit removes the socket file. *)
     Store.track_tmp path
   | P.Tcp _ ->
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (sockaddr_for_bind cfg.address));
  Unix.listen sock 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());

  (* A drain can start on the main thread (signal), or on a connection
     thread (Shutdown request) — the self-connect poke wakes the main
     thread out of [accept] in the latter case.  Only the flag flips
     here; the scheduler drains later, once in-flight work (including
     supervision retries) has settled — so a worker finishing its final
     preemption yield can never race the shutdown. *)
  let poke_acceptor () =
    try
      let c = Unix.socket (socket_domain cfg.address) Unix.SOCK_STREAM 0 in
      (try Unix.connect c (sockaddr_for_connect cfg.address) with _ -> ());
      Unix.close c
    with _ -> ()
  in
  let begin_drain reason =
    if not (Atomic.exchange draining true) then logf "drain: %s" reason
  in
  let old_term =
    try Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> begin_drain "SIGTERM"))
    with Invalid_argument _ -> Sys.Signal_default
  in
  let old_int =
    try Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> begin_drain "SIGINT"))
    with Invalid_argument _ -> Sys.Signal_default
  in

  (* Worker pool.  Each Domain owns a supervisor slot; a Domain that
     dies mid-job (chaos or a genuinely crashing plan) flags the slot on
     its way out and the supervisor respawns a replacement.  [finished]
     tells drain which Domains are safe to join — a wedged Domain never
     sets it and is abandoned rather than waited on. *)
  let domains_lock = Mutex.create () in
  let domains : (unit Domain.t * bool Atomic.t) list ref = ref [] in
  let worker_seq = Atomic.make 0 in
  let rec spawn_worker () =
    let w = Atomic.fetch_and_add worker_seq 1 in
    let slot = Supervisor.register sup in
    let finished = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          (try worker_loop w slot with
           | Chaos.Crash ->
             Supervisor.crashed sup slot;
             logf "worker %d: CHAOS crash injected; Domain dying" w
           | e ->
             Supervisor.crashed sup slot;
             logf "worker %d: unexpected death: %s" w (Printexc.to_string e));
          Atomic.set finished true)
    in
    Mutex.protect domains_lock (fun () -> domains := (d, finished) :: !domains)
  and worker_loop w slot =
    let rec go () =
      match Scheduler.take sched with
      | None -> Supervisor.exited sup slot
      | Some job
        when job.Worker.deadline > 0. && Unix.gettimeofday () > job.Worker.deadline ->
        (* Expired while queued: shed it at dispatch, before it costs a
           worker anything.  The spool scratch and persisted request go
           with it — nobody will resume a job whose answer is late. *)
        logf "worker %d: job %d expired in the queue; shedding" w job.Worker.id;
        (try Sys.remove (request_path job.Worker.id) with Sys_error _ -> ());
        Worker.discard_scratch ctx job;
        job.Worker.reply
          (P.error_resp ~code:P.Deadline_exceeded ~attempts:job.Worker.attempt
             "deadline exceeded while queued");
        go ()
      | Some job ->
        let ticking = match job.Worker.request with P.Sim _ -> true | _ -> false in
        Supervisor.start sup slot ~ticking job;
        let resumed =
          match job.Worker.ck with
          | Some ck ->
            Printf.sprintf " (resume from cycle %d)" (Gsim_engine.Checkpoint.cycle ck)
          | None -> ""
        in
        let attempt =
          if job.Worker.attempt > 1 then Printf.sprintf " attempt %d" job.Worker.attempt
          else ""
        in
        logf "worker %d: job %d start%s%s" w job.Worker.id attempt resumed;
        let exec_t0 = Unix.gettimeofday () in
        let outcome =
          Worker.execute ~beat:(fun () -> Supervisor.beat slot) ctx job
        in
        Supervisor.finish sup slot;
        (match outcome with
         | Worker.Yielded ->
           logf "worker %d: job %d preempted at cycle %d" w job.Worker.id
             job.Worker.done_cycles;
           Scheduler.requeue sched ~priority:job.Worker.priority
             ~tenant:job.Worker.tenant job
         | Worker.Abandoned ->
           logf "worker %d: job %d attempt %d abandoned (supervisor cancelled it)" w
             job.Worker.id job.Worker.attempt
         | Worker.Done resp ->
           Atomic.incr completed;
           observe_job_seconds (Unix.gettimeofday () -. exec_t0);
           (* The job can no longer be interrupted: retire its persisted
              request (a no-op for interactive jobs, which have none). *)
           (try Sys.remove (request_path job.Worker.id) with Sys_error _ -> ());
           logf "worker %d: job %d done%s" w job.Worker.id
             (match resp with
              | P.Error_resp e -> ": error: " ^ e.P.ei_message
              | _ -> "");
           job.Worker.reply resp);
        go ()
    in
    go ()
  in
  for _ = 1 to cfg.workers do
    spawn_worker ()
  done;

  (* Golden-trace caches are the one spool artifact that outlives its
     job, so they are what a disk quota must police.  Evict whole cache
     directories oldest-first until back under budget; a campaign racing
     its own eviction merely rebuilds the trace (Campaign.run validates
     the cache before trusting it). *)
  let enforce_spool_quota () =
    if cfg.spool_quota_mb > 0 then begin
      let golden_root = Filename.concat spool "golden" in
      let entries =
        (try Array.to_list (Sys.readdir golden_root) with Sys_error _ -> [])
        |> List.filter_map (fun d ->
               let path = Filename.concat golden_root d in
               try
                 if not (Sys.is_directory path) then None
                 else begin
                   let files = try Sys.readdir path with Sys_error _ -> [||] in
                   let bytes =
                     Array.fold_left
                       (fun acc f ->
                         try acc + (Unix.stat (Filename.concat path f)).Unix.st_size
                         with Unix.Unix_error _ -> acc)
                       0 files
                   in
                   Some ((Unix.stat path).Unix.st_mtime, path, bytes)
                 end
               with Sys_error _ | Unix.Unix_error _ -> None)
      in
      let total = List.fold_left (fun a (_, _, b) -> a + b) 0 entries in
      let quota = cfg.spool_quota_mb * 1024 * 1024 in
      if total > quota then begin
        let excess = ref (total - quota) in
        List.iter
          (fun (_, path, bytes) ->
            if !excess > 0 then begin
              Array.iter
                (fun f -> try Sys.remove (Filename.concat path f) with Sys_error _ -> ())
                (try Sys.readdir path with Sys_error _ -> [||]);
              (try Unix.rmdir path with Unix.Unix_error _ -> ());
              excess := !excess - bytes;
              logf "spool quota: evicted golden cache %s (%d KiB)" (Filename.basename path)
                (bytes / 1024)
            end)
          (List.sort compare entries)
      end
    end
  in
  let sweep_countdown_ticks = ref 0 in

  (* Supervisor thread: reacts to scan losses, flushes due retries. *)
  let sup_stop = Atomic.make false in
  let supervisor_loop () =
    while not (Atomic.get sup_stop) do
      let now = Unix.gettimeofday () in
      List.iter
        (fun (l : _ Supervisor.loss) ->
          match l.Supervisor.kind with
          | `Hang -> (
            match l.Supervisor.job with
            | Some (j : Worker.job) ->
              logf
                "supervisor: job %d hung on worker slot %d (no heartbeat for %.1f s); \
                 cancelling"
                j.Worker.id l.Supervisor.slot_id pol.Supervisor.hang_timeout;
              Atomic.set j.Worker.cancelled true;
              recover ~kind:`Hang j
            | None -> ())
          | `Crash ->
            Atomic.incr restarts;
            spawn_worker ();
            (match l.Supervisor.job with
             | Some j ->
               logf "supervisor: worker slot %d died running job %d; respawned a replacement"
                 l.Supervisor.slot_id j.Worker.id;
               recover ~kind:`Crash j
             | None ->
               logf "supervisor: worker slot %d died idle; respawned a replacement"
                 l.Supervisor.slot_id)
          | `Wedge ->
            Atomic.incr restarts;
            spawn_worker ();
            logf
              "supervisor: worker slot %d ignored cancellation for %.1f s; abandoning the \
               Domain and respawning"
              l.Supervisor.slot_id pol.Supervisor.grace)
        (Supervisor.scan sup ~now);
      let due =
        Mutex.protect delayed_lock (fun () ->
            let d, l = List.partition (fun (t, _) -> t <= now) !delayed in
            delayed := l;
            d)
      in
      List.iter
        (fun (_, (j : Worker.job)) ->
          logf "job %d: re-admitted for attempt %d" j.Worker.id j.Worker.attempt;
          Scheduler.requeue sched ~priority:j.Worker.priority ~tenant:j.Worker.tenant j)
        due;
      incr sweep_countdown_ticks;
      if !sweep_countdown_ticks >= 100 then begin
        sweep_countdown_ticks := 0;
        enforce_spool_quota ()
      end;
      Unix.sleepf pol.Supervisor.poll
    done
  in
  let sup_thread = Thread.create supervisor_loop () in

  let status () =
    let cs = Plan_cache.stats cache in
    {
      P.st_workers = cfg.workers;
      st_queued = Scheduler.queued sched;
      st_running = Supervisor.busy sup;
      st_completed = Atomic.get completed;
      st_rejected = Atomic.get rejected;
      st_cache_entries = cs.Plan_cache.entries;
      st_cache_capacity = cs.Plan_cache.capacity;
      st_cache_hits = cs.Plan_cache.hits;
      st_cache_misses = cs.Plan_cache.misses;
      st_cache_evictions = cs.Plan_cache.evictions;
      st_golden_hits = Atomic.get ctx.Worker.golden_hits;
      st_golden_misses = Atomic.get ctx.Worker.golden_misses;
      st_preemptions = Atomic.get ctx.Worker.preemption_count;
      st_uptime = Unix.gettimeofday () -. started;
      st_draining = Atomic.get draining;
      st_retries = Atomic.get retries;
      st_hangs = Supervisor.hang_count sup;
      st_worker_crashes = Supervisor.crash_count sup;
      st_worker_restarts = Atomic.get restarts;
      st_gave_up = Atomic.get gave_up;
      st_quarantined = cs.Plan_cache.quarantined;
      st_quarantine_trips = cs.Plan_cache.quarantine_trips;
      st_chaos_injected = Chaos.total chaos;
      st_shed = Atomic.get shed;
      st_over_budget = Atomic.get over_budget;
      st_deadline_expired = Atomic.get deadline_expired;
      st_tenants =
        Mutex.protect tstats_lock (fun () ->
            Hashtbl.fold
              (fun name s acc ->
                {
                  P.tn_tenant = name;
                  tn_submitted = s.ts_sub;
                  tn_completed = s.ts_done;
                  tn_shed = s.ts_shed;
                  tn_expired = s.ts_exp;
                  tn_inflight = s.ts_inflight;
                }
                :: acc)
              tstats []
            |> List.sort (fun a b -> compare a.P.tn_tenant b.P.tn_tenant));
    }
  in

  (* Idempotency tokens: a bounded FIFO of finished responses so a
     client retrying a token whose job already completed replays the
     response instead of executing twice. *)
  let tokens_lock = Mutex.create () in
  let tokens : (string, tok_state) Hashtbl.t = Hashtbl.create 16 in
  let token_fifo : string Queue.t = Queue.create () in
  let token_cache_cap = 512 in
  let finish_token tok resp =
    let waiters =
      Mutex.protect tokens_lock (fun () ->
          let ws =
            match Hashtbl.find_opt tokens tok with Some (Tok_running ws) -> !ws | _ -> []
          in
          Hashtbl.replace tokens tok (Tok_finished resp);
          Queue.push tok token_fifo;
          while Queue.length token_fifo > token_cache_cap do
            let old = Queue.pop token_fifo in
            match Hashtbl.find_opt tokens old with
            | Some (Tok_finished _) -> Hashtbl.remove tokens old
            | _ -> ()
          done;
          ws)
    in
    List.iter (fun b -> Waitbox.put b resp) waiters
  in
  let refuse_token tok resp =
    (* A refusal must not be cached: the client's retry should get a
       fresh shot at the queue, not a replayed rejection. *)
    let waiters =
      Mutex.protect tokens_lock (fun () ->
          let ws =
            match Hashtbl.find_opt tokens tok with Some (Tok_running ws) -> !ws | _ -> []
          in
          Hashtbl.remove tokens tok;
          ws)
    in
    List.iter (fun b -> Waitbox.put b resp) waiters
  in

  (* Connection registry, so drain can unblock idle readers. *)
  let conns_lock = Mutex.create () in
  let conns : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 16 in
  let conn_threads = ref [] in
  let next_conn = ref 0 in

  let priority_level = function P.Interactive -> 0 | P.Batch -> 1 in
  let handle_conn conn_id fd () =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let respond r =
      (match Chaos.io_delay chaos with
       | Some s ->
         logf "conn %d: CHAOS stalling response %.0f ms" conn_id (s *. 1000.);
         Unix.sleepf s
       | None -> ());
      if Chaos.torn_response chaos then begin
        (* Die mid-write: half a frame, then a straight close.  The
           client sees exactly what a daemon crash looks like. *)
        logf "conn %d: CHAOS tearing response frame" conn_id;
        let frame = P.encode_response r in
        let cut = max 1 (String.length frame / 2) in
        (try
           output_string oc (String.sub frame 0 cut);
           flush oc
         with Sys_error _ -> ());
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
      end
      else try P.write_response oc r with Sys_error _ | P.Error _ -> ()
    in
    let submit prio req =
      if Atomic.get draining then
        respond (P.error_resp ~code:P.Refused "server is draining; resubmit elsewhere")
      else begin
        let claim =
          match P.request_token req with
          | None -> `Run None
          | Some tok ->
            Mutex.protect tokens_lock (fun () ->
                match Hashtbl.find_opt tokens tok with
                | Some (Tok_finished r) -> `Replay r
                | Some (Tok_running ws) ->
                  let b = Waitbox.create () in
                  ws := b :: !ws;
                  `Attach b
                | None ->
                  Hashtbl.replace tokens tok (Tok_running (ref []));
                  `Run (Some tok))
        in
        match claim with
        | `Replay r ->
          logf "conn %d: replaying finished job for token (idempotent resubmission)"
            conn_id;
          respond r
        | `Attach b ->
          logf "conn %d: token already in flight; attaching to its job" conn_id;
          respond (Waitbox.wait b)
        | `Run token ->
          let tenant =
            match P.request_tenant req with
            | Some t -> t
            | None -> Printf.sprintf "conn-%d" conn_id
          in
          note tenant (fun s -> s.ts_sub <- s.ts_sub + 1);
          let refuse resp =
            Atomic.incr rejected;
            (match token with Some tok -> refuse_token tok resp | None -> ());
            respond resp
          in
          (* Admission first: a resource bomb must be refused before it
             touches the queue, the spool or a worker. *)
          match admission_violation req with
          | Some why ->
            Atomic.incr over_budget;
            note tenant (fun s -> s.ts_shed <- s.ts_shed + 1);
            logf "conn %d: refusing over-budget job for %s: %s" conn_id tenant why;
            refuse (P.error_resp ~code:P.Over_budget why)
          | None ->
            (* Brownout: past the high-water mark (or the backlog-seconds
               limit), shed new *batch* work with a retry-after hint and
               keep serving interactive traffic — graceful degradation
               beats collapse. *)
            if prio = P.Batch && overloaded () then begin
              Atomic.incr shed;
              note tenant (fun s -> s.ts_shed <- s.ts_shed + 1);
              let ra = retry_after () in
              logf "conn %d: brownout, shedding batch job for %s (retry in %.0f s)" conn_id
                tenant ra;
              refuse
                (P.error_resp ~code:P.Overloaded ~retry_after:ra
                   (Printf.sprintf
                      "overloaded: %d batch job(s) queued, est. backlog %.0f s; retry later"
                      (Scheduler.queued_at sched ~priority:1)
                      (backlog_estimate ())))
            end
            else begin
              let box = Waitbox.create () in
              let id = Atomic.fetch_and_add next_job 1 in
              let rel = P.request_deadline req in
              let deadline = if rel > 0. then Unix.gettimeofday () +. rel else 0. in
              (* Exactly one delivery per logical job, however many attempts
                 raced: the first responder wins, stale attempts and the
                 give-up path are silenced. *)
              let replied = Atomic.make false in
              let deliver resp =
                if not (Atomic.exchange replied true) then begin
                  (match resp with
                   | P.Error_resp e when e.P.ei_code = P.Deadline_exceeded ->
                     Atomic.incr deadline_expired;
                     note tenant (fun s ->
                         s.ts_exp <- s.ts_exp + 1;
                         s.ts_inflight <- s.ts_inflight - 1)
                   | _ ->
                     note tenant (fun s ->
                         s.ts_done <- s.ts_done + 1;
                         s.ts_inflight <- s.ts_inflight - 1));
                  (match token with Some tok -> finish_token tok resp | None -> ());
                  Waitbox.put box resp
                end
              in
              let job =
                Worker.make_job ~id ~priority:(priority_level prio) ~tenant ~deadline
                  ~reply:deliver req
              in
              (* Persist batch requests before scheduling: from this instant a
                 daemon crash leaves enough on disk for the next boot to finish
                 the job.  Interactive jobs are cheap and their client retries,
                 so they are not persisted. *)
              if prio = P.Batch then (
                try Store.write_atomic (request_path id) (P.encode_request req)
                with Sys_error m -> logf "conn %d: cannot persist job %d: %s" conn_id id m);
              (* In-flight is counted before the scheduler sees the job:
                 a fast worker could otherwise deliver (and decrement)
                 before this thread increments. *)
              note tenant (fun s -> s.ts_inflight <- s.ts_inflight + 1);
              match Scheduler.submit sched ~priority:job.Worker.priority ~tenant job with
              | Scheduler.Accepted ->
                logf "conn %d: job %d queued (%s, tenant %s)" conn_id id
                  (P.priority_to_string prio) tenant;
                respond (Waitbox.wait box)
              | Scheduler.Rejected_full ->
                note tenant (fun s ->
                    s.ts_inflight <- s.ts_inflight - 1;
                    s.ts_shed <- s.ts_shed + 1);
                (try Sys.remove (request_path id) with Sys_error _ -> ());
                refuse
                  (P.error_resp ~code:P.Queue_full ~retry_after:(retry_after ())
                     (Printf.sprintf "queue full (%d job(s) queued); retry later"
                        (Scheduler.queued sched)))
              | Scheduler.Rejected_quota ->
                Atomic.incr shed;
                note tenant (fun s ->
                    s.ts_inflight <- s.ts_inflight - 1;
                    s.ts_shed <- s.ts_shed + 1);
                (try Sys.remove (request_path id) with Sys_error _ -> ());
                refuse
                  (P.error_resp ~code:P.Overloaded ~retry_after:(retry_after ())
                     (Printf.sprintf
                        "tenant %s has %d job(s) queued (quota %d); retry later" tenant
                        (Scheduler.queued_for sched tenant)
                        cfg.tenant_quota))
            end
      end
    in
    let rec loop () =
      match P.read_request ic with
      | None -> ()
      | exception P.Error msg ->
        logf "conn %d: protocol error: %s" conn_id msg;
        respond (P.error_resp ~code:P.Protocol_violation ("protocol: " ^ msg))
      | exception Sys_error _ -> ()
      | Some P.Status ->
        respond (P.Status_ok (status ()));
        loop ()
      | Some P.Shutdown ->
        respond P.Shutting_down;
        begin_drain "shutdown request";
        poke_acceptor ()
      | Some (P.Sim (prio, _) as req)
      | Some (P.Campaign (prio, _) as req)
      | Some (P.Fuzz (prio, _) as req)
      | Some (P.Coverage (prio, _) as req) ->
        submit prio req;
        loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect conns_lock (fun () -> Hashtbl.remove conns conn_id);
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      loop
  in

  logf "gsimd listening on %s (%d worker(s), queue %d, plan cache %d, stride %d)"
    (P.address_to_string cfg.address)
    cfg.workers cfg.queue_capacity cfg.cache_capacity cfg.preempt_stride;
  if Admission.limited cfg.budgets then
    logf "admission budgets: %s" (Admission.budgets_to_string cfg.budgets);
  if cfg.tenant_quota > 0 || cfg.high_water > 0. || cfg.max_backlog_seconds > 0. then
    logf "overload policy: high-water %.0f%%, backlog limit %s, tenant quota %s"
      (cfg.high_water *. 100.)
      (if cfg.max_backlog_seconds > 0. then Printf.sprintf "%.0f s" cfg.max_backlog_seconds
       else "off")
      (if cfg.tenant_quota > 0 then string_of_int cfg.tenant_quota else "off");
  if cfg.spool_quota_mb > 0 then logf "spool quota: %d MiB (golden caches)" cfg.spool_quota_mb;
  if Chaos.enabled cfg.chaos then
    logf "chaos enabled: %s" (Chaos.spec_to_string cfg.chaos);

  (* Accept loop — exits when a drain begins. *)
  let rec accept_loop () =
    if not (Atomic.get draining) then begin
      match Unix.accept sock with
      | fd, _ ->
        if Atomic.get draining then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          let id = Mutex.protect conns_lock (fun () ->
              incr next_conn;
              Hashtbl.replace conns !next_conn fd;
              !next_conn)
          in
          let t = Thread.create (handle_conn id fd) () in
          conn_threads := t :: !conn_threads
        end;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        when Atomic.get draining -> ()
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());

  (* Settle before stopping the pool: drain must wait on worker *acks*
     (busy supervisor slots), not queue emptiness — a worker finishing
     its final preemption yield holds its job in a slot while the queue
     is momentarily empty, and supervision retries sit in [delayed]
     where the queue cannot see them either.  Submissions are already
     refused, so this sum is monotone. *)
  let backlog = Scheduler.queued sched + Supervisor.busy sup + delayed_count () in
  if backlog > 0 then logf "draining %d in-flight job(s)" backlog;
  let rec settle () =
    if Scheduler.queued sched + Supervisor.busy sup + delayed_count () > 0 then begin
      Unix.sleepf 0.01;
      settle ()
    end
  in
  settle ();
  Scheduler.drain sched;

  (* Join the workers that acknowledge the drain; a wedged Domain never
     will (Domains cannot be killed), so it is abandoned to die with the
     process rather than hang the shutdown.  The supervisor keeps
     running until after the joins: it is what cancels a chaos-hung
     worker and lets it ack at all. *)
  let join_deadline =
    Unix.gettimeofday () +. Float.max 5. (pol.Supervisor.hang_timeout +. pol.Supervisor.grace)
  in
  let abandoned = ref 0 in
  List.iter
    (fun (d, fin) ->
      let rec wait_join () =
        if Atomic.get fin then Domain.join d
        else if Unix.gettimeofday () > join_deadline then incr abandoned
        else begin
          Unix.sleepf 0.005;
          wait_join ()
        end
      in
      wait_join ())
    (Mutex.protect domains_lock (fun () -> !domains));
  if !abandoned > 0 then
    logf "drain: abandoned %d wedged worker Domain(s); they die with the process"
      !abandoned;
  Atomic.set sup_stop true;
  Thread.join sup_thread;

  (* All responses are now in their waitboxes; unblock idle connection
     readers and wait for the writers to finish delivering. *)
  Mutex.protect conns_lock (fun () ->
      Hashtbl.iter
        (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
        conns);
  List.iter Thread.join !conn_threads;

  (match cfg.address with
   | P.Unix_sock path ->
     (try Sys.remove path with Sys_error _ -> ());
     Store.untrack_tmp path
   | P.Tcp _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  (if Chaos.enabled cfg.chaos then
     let cc = Chaos.counters chaos in
     logf
       "chaos: injected %d crash(es), %d hang(s), %d torn frame(s), %d stalled write(s), %d \
        busy stall(s)"
       cc.Chaos.crashes cc.Chaos.hangs cc.Chaos.torn cc.Chaos.slowed cc.Chaos.busied);
  let cs = Plan_cache.stats cache in
  logf
    "supervision: %d retry(ies), %d hang(s), %d worker crash(es), %d wedge(s), %d \
     restart(s), %d gave up; quarantine: %d open, %d trip(s)"
    (Atomic.get retries) (Supervisor.hang_count sup) (Supervisor.crash_count sup)
    (Supervisor.wedge_count sup) (Atomic.get restarts) (Atomic.get gave_up)
    cs.Plan_cache.quarantined cs.Plan_cache.quarantine_trips;
  logf
    "drained: %d job(s) completed, %d rejected (%d shed, %d over budget), %d expired, %d \
     preemption(s); bye"
    (Atomic.get completed) (Atomic.get rejected) (Atomic.get shed) (Atomic.get over_budget)
    (Atomic.get deadline_expired)
    (Atomic.get ctx.Worker.preemption_count)
