module Store = Gsim_resilience.Store
module P = Protocol

type config = {
  address : P.address;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  preempt_stride : int;
  spool : string option;
  log : out_channel;
}

let default_config address =
  {
    address;
    workers = max 2 (Domain.recommended_domain_count () - 2);
    queue_capacity = 64;
    cache_capacity = 16;
    preempt_stride = 10_000;
    spool = None;
    log = stderr;
  }

(* One response slot per submitted job: the worker Domain fulfils it,
   the connection thread blocks on it and writes the response out. *)
module Waitbox = struct
  type t = { m : Mutex.t; c : Condition.t; mutable v : P.response option }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let put b r =
    Mutex.protect b.m (fun () ->
        b.v <- Some r;
        Condition.signal b.c)

  let wait b =
    Mutex.protect b.m (fun () ->
        while b.v = None do
          Condition.wait b.c b.m
        done;
        Option.get b.v)
end

let sockaddr_for_bind = function
  | P.Unix_sock path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_any
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (addr, port)

let sockaddr_for_connect = function
  | P.Unix_sock path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (addr, port)

let socket_domain = function P.Unix_sock _ -> Unix.PF_UNIX | P.Tcp _ -> Unix.PF_INET

let serve cfg =
  let log_lock = Mutex.create () in
  let log line =
    let now = Unix.gettimeofday () in
    let tm = Unix.localtime now in
    let frac = int_of_float ((now -. Float.of_int (int_of_float now)) *. 1000.) in
    Mutex.protect log_lock (fun () ->
        Printf.fprintf cfg.log "[%02d:%02d:%02d.%03d] %s\n%!" tm.Unix.tm_hour
          tm.Unix.tm_min tm.Unix.tm_sec frac line)
  in
  let logf fmt = Printf.ksprintf log fmt in
  let spool =
    match cfg.spool with
    | Some dir -> dir
    | None ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "gsimd-%d" (Unix.getpid ()))
  in
  Store.ensure_dir spool;
  (* Batch requests are persisted here at admission and removed on
     completion, so a killed daemon's unfinished batch work is re-admitted
     by the next boot's scan (and resumes from its spool ring where one
     was written). *)
  let jobs_dir = Filename.concat spool "jobs" in
  Store.ensure_dir jobs_dir;
  let request_path id = Filename.concat jobs_dir (Printf.sprintf "job-%06d.gjb" id) in
  let sched = Scheduler.create ~capacity:cfg.queue_capacity () in
  let cache = Plan_cache.create ~capacity:cfg.cache_capacity () in
  let ctx =
    {
      Worker.cache;
      sched;
      spool;
      preempt_stride = cfg.preempt_stride;
      log;
      preemption_count = Atomic.make 0;
      golden_hits = Atomic.make 0;
      golden_misses = Atomic.make 0;
    }
  in
  let started = Unix.gettimeofday () in
  let completed = Atomic.make 0 in
  let rejected = Atomic.make 0 in
  let running = Atomic.make 0 in
  let next_job = Atomic.make 0 in
  let draining = Atomic.make false in

  (* Boot scan: re-admit batch jobs a previous daemon left behind.  The
     jobs queue before the worker pool starts; new job ids are allocated
     above every scanned id so a re-admitted job keeps exclusive use of
     its spool directory. *)
  let () =
    let entries = try Sys.readdir jobs_dir with Sys_error _ -> [||] in
    Array.sort compare entries;
    Array.iter
      (fun f ->
        match Scanf.sscanf f "job-%d.gjb%!" (fun i -> i) with
        | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) -> ()
        | id ->
          (* Even an undecodable file retires its id: a stale spool ring
             under that number must never alias a fresh job. *)
          if id >= Atomic.get next_job then Atomic.set next_job (id + 1);
          let path = Filename.concat jobs_dir f in
          let req =
            match
              let ic = open_in_bin path in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () -> really_input_string ic (in_channel_length ic))
            with
            | s -> ( try Some (P.decode_request s) with P.Error _ -> None)
            | exception (Sys_error _ | End_of_file) -> None
          in
          (match req with
           | None ->
             logf "boot: dropping unreadable job file %s" f;
             (try Sys.remove path with Sys_error _ -> ())
           | Some ((P.Sim _ | P.Campaign _ | P.Fuzz _ | P.Coverage _) as req) ->
             let job =
               Worker.make_job ~id ~priority:1
                 ~reply:(fun resp ->
                   match resp with
                   | P.Error_resp m -> logf "recovered job %d failed: %s" id m
                   | _ -> logf "recovered job %d completed" id)
                 req
             in
             job.Worker.recovered <- true;
             if Scheduler.submit sched ~priority:1 job then
               logf "boot: re-admitted interrupted job %d (%s)" id f
             else logf "boot: queue full, leaving job %d for the next restart" id
           | Some (P.Status | P.Shutdown) ->
             (try Sys.remove path with Sys_error _ -> ())))
      entries
  in

  (* Listening socket. *)
  let sock = Unix.socket (socket_domain cfg.address) Unix.SOCK_STREAM 0 in
  (match cfg.address with
   | P.Unix_sock path ->
     if Sys.file_exists path then Sys.remove path;  (* stale socket from a crash *)
     Unix.bind sock (Unix.ADDR_UNIX path);
     (* Even a SIGTERM exit removes the socket file. *)
     Store.track_tmp path
   | P.Tcp _ ->
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (sockaddr_for_bind cfg.address));
  Unix.listen sock 64;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());

  (* A drain can start on the main thread (signal), or on a connection
     thread (Shutdown request) — the self-connect poke wakes the main
     thread out of [accept] in the latter case. *)
  let poke_acceptor () =
    try
      let c = Unix.socket (socket_domain cfg.address) Unix.SOCK_STREAM 0 in
      (try Unix.connect c (sockaddr_for_connect cfg.address) with _ -> ());
      Unix.close c
    with _ -> ()
  in
  let begin_drain reason =
    if not (Atomic.exchange draining true) then begin
      logf "drain: %s" reason;
      Scheduler.drain sched
    end
  in
  let old_term =
    try Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> begin_drain "SIGTERM"))
    with Invalid_argument _ -> Sys.Signal_default
  in
  let old_int =
    try Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> begin_drain "SIGINT"))
    with Invalid_argument _ -> Sys.Signal_default
  in

  (* Worker pool. *)
  let worker_loop w () =
    let rec go () =
      match Scheduler.take sched with
      | None -> ()
      | Some job ->
        Atomic.incr running;
        let resumed =
          match job.Worker.ck with
          | Some ck ->
            Printf.sprintf " (resume from cycle %d)" (Gsim_engine.Checkpoint.cycle ck)
          | None -> ""
        in
        logf "worker %d: job %d start%s" w job.Worker.id resumed;
        let outcome = Worker.execute ctx job in
        Atomic.decr running;
        (match outcome with
         | Worker.Yielded ->
           logf "worker %d: job %d preempted at cycle %d" w job.Worker.id
             job.Worker.done_cycles;
           Scheduler.requeue sched ~priority:job.Worker.priority job
         | Worker.Done resp ->
           Atomic.incr completed;
           (* The job can no longer be interrupted: retire its persisted
              request (a no-op for interactive jobs, which have none). *)
           (try Sys.remove (request_path job.Worker.id) with Sys_error _ -> ());
           logf "worker %d: job %d done%s" w job.Worker.id
             (match resp with P.Error_resp m -> ": error: " ^ m | _ -> "");
           job.Worker.reply resp);
        go ()
    in
    go ()
  in
  let domains = List.init cfg.workers (fun w -> Domain.spawn (worker_loop w)) in

  let status () =
    let cs = Plan_cache.stats cache in
    {
      P.st_workers = cfg.workers;
      st_queued = Scheduler.queued sched;
      st_running = Atomic.get running;
      st_completed = Atomic.get completed;
      st_rejected = Atomic.get rejected;
      st_cache_entries = cs.Plan_cache.entries;
      st_cache_capacity = cs.Plan_cache.capacity;
      st_cache_hits = cs.Plan_cache.hits;
      st_cache_misses = cs.Plan_cache.misses;
      st_cache_evictions = cs.Plan_cache.evictions;
      st_golden_hits = Atomic.get ctx.Worker.golden_hits;
      st_golden_misses = Atomic.get ctx.Worker.golden_misses;
      st_preemptions = Atomic.get ctx.Worker.preemption_count;
      st_uptime = Unix.gettimeofday () -. started;
      st_draining = Atomic.get draining;
    }
  in

  (* Connection registry, so drain can unblock idle readers. *)
  let conns_lock = Mutex.create () in
  let conns : (int, Unix.file_descr) Hashtbl.t = Hashtbl.create 16 in
  let conn_threads = ref [] in
  let next_conn = ref 0 in

  let priority_level = function P.Interactive -> 0 | P.Batch -> 1 in
  let handle_conn conn_id fd () =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let respond r = try P.write_response oc r with Sys_error _ | P.Error _ -> () in
    let submit prio req =
      if Atomic.get draining then
        respond (P.Error_resp "server is draining; resubmit elsewhere")
      else begin
        let box = Waitbox.create () in
        let id = Atomic.fetch_and_add next_job 1 in
        let job =
          Worker.make_job ~id ~priority:(priority_level prio) ~reply:(Waitbox.put box) req
        in
        (* Persist batch requests before scheduling: from this instant a
           daemon crash leaves enough on disk for the next boot to finish
           the job.  Interactive jobs are cheap and their client retries,
           so they are not persisted. *)
        if prio = P.Batch then (
          try Store.write_atomic (request_path id) (P.encode_request req)
          with Sys_error m -> logf "conn %d: cannot persist job %d: %s" conn_id id m);
        if Scheduler.submit sched ~priority:job.Worker.priority job then begin
          logf "conn %d: job %d queued (%s)" conn_id id (P.priority_to_string prio);
          respond (Waitbox.wait box)
        end
        else begin
          Atomic.incr rejected;
          (try Sys.remove (request_path id) with Sys_error _ -> ());
          respond
            (P.Error_resp
               (Printf.sprintf "queue full (%d job(s) queued); retry later"
                  (Scheduler.queued sched)))
        end
      end
    in
    let rec loop () =
      match P.read_request ic with
      | None -> ()
      | exception P.Error msg ->
        logf "conn %d: protocol error: %s" conn_id msg;
        respond (P.Error_resp ("protocol: " ^ msg))
      | exception Sys_error _ -> ()
      | Some P.Status ->
        respond (P.Status_ok (status ()));
        loop ()
      | Some P.Shutdown ->
        respond P.Shutting_down;
        begin_drain "shutdown request";
        poke_acceptor ()
      | Some (P.Sim (prio, _) as req)
      | Some (P.Campaign (prio, _) as req)
      | Some (P.Fuzz (prio, _) as req)
      | Some (P.Coverage (prio, _) as req) ->
        submit prio req;
        loop ()
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.protect conns_lock (fun () -> Hashtbl.remove conns conn_id);
        (try flush oc with Sys_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ())
      loop
  in

  logf "gsimd listening on %s (%d worker(s), queue %d, plan cache %d, stride %d)"
    (P.address_to_string cfg.address)
    cfg.workers cfg.queue_capacity cfg.cache_capacity cfg.preempt_stride;

  (* Accept loop — exits when a drain begins. *)
  let rec accept_loop () =
    if not (Atomic.get draining) then begin
      match Unix.accept sock with
      | fd, _ ->
        if Atomic.get draining then (try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          let id = Mutex.protect conns_lock (fun () ->
              incr next_conn;
              Hashtbl.replace conns !next_conn fd;
              !next_conn)
          in
          let t = Thread.create (handle_conn id fd) () in
          conn_threads := t :: !conn_threads
        end;
        accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
        when Atomic.get draining -> ()
    end
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());

  (* Let the backlog finish: workers exit once the queue is empty. *)
  let backlog = Scheduler.queued sched + Atomic.get running in
  if backlog > 0 then logf "draining %d in-flight job(s)" backlog;
  List.iter Domain.join domains;

  (* All responses are now in their waitboxes; unblock idle connection
     readers and wait for the writers to finish delivering. *)
  Mutex.protect conns_lock (fun () ->
      Hashtbl.iter
        (fun _ fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
        conns);
  List.iter Thread.join !conn_threads;

  (match cfg.address with
   | P.Unix_sock path ->
     (try Sys.remove path with Sys_error _ -> ());
     Store.untrack_tmp path
   | P.Tcp _ -> ());
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  logf "drained: %d job(s) completed, %d rejected, %d preemption(s); bye"
    (Atomic.get completed) (Atomic.get rejected)
    (Atomic.get ctx.Worker.preemption_count)
