(** Blocking client for a {!Daemon} instance, with deadlines, reconnect
    and idempotent resubmission.

    Reads run against the raw socket under a [select] guard, so a
    daemon that dies mid-frame surfaces as a {!Protocol.Error} ("closed
    after N of M bytes") or a {!Timeout} — never a client that hangs
    forever on a half-written response. *)

exception Timeout of float
(** The configured deadline elapsed while connecting or waiting for a
    response.  The payload is informational only. *)

type t

val connect : ?timeout:float -> Protocol.address -> t
(** Raises [Unix.Unix_error] when nothing is listening, {!Timeout} when
    [timeout > 0] and the TCP connect does not complete in time.  The
    same [timeout] becomes the response deadline for each {!call}. *)

val set_deadline : t -> float -> unit
(** Re-arm the response deadline [seconds] from now; [<= 0] disables. *)

val call : t -> Protocol.request -> Protocol.response
(** One request/response exchange; a connection can make several.
    Raises {!Protocol.Error} if the server closes mid-exchange,
    {!Timeout} past the deadline. *)

val call_robust :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?token:string ->
  Protocol.address ->
  Protocol.request ->
  Protocol.response
(** Fresh connection per attempt; retries (with exponential backoff and
    jitter, [backoff] seconds base) on timeouts, mid-frame closes and
    transient socket errors, up to [retries] extra attempts.  When
    [token] is given it is attached to the request
    ({!Protocol.with_token}), making resubmission idempotent: the
    daemon deduplicates attempts of the same token, so a retry whose
    predecessor actually ran re-attaches or replays instead of
    re-executing.  Always pass a token when [retries > 0] and the
    request has side effects.

    An [Error_resp] whose [ei_retry_after] is positive — the daemon
    shedding load with a backoff hint — is also retried (while attempts
    remain), sleeping [min 5 retry_after] seconds first. *)

val close : t -> unit
val with_connection : ?timeout:float -> Protocol.address -> (t -> 'a) -> 'a
