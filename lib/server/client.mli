(** Blocking client for a {!Daemon} instance. *)

type t

val connect : Protocol.address -> t
(** Raises [Unix.Unix_error] when nothing is listening. *)

val call : t -> Protocol.request -> Protocol.response
(** One request/response exchange; a connection can make several.
    Raises {!Protocol.Error} if the server closes mid-exchange. *)

val close : t -> unit

val with_connection : Protocol.address -> (t -> 'a) -> 'a
