(** Worker supervision: heartbeats, hang detection, crash detection.

    Each worker Domain registers a {!slot} and, while executing a job,
    heartbeats through it at every preemption-stride boundary.  The
    daemon's supervisor thread calls {!scan} periodically and reacts to
    the losses it reports:

    - [`Crash]: the worker Domain died mid-job (its loop caught a
      {!Chaos.Crash} or an unexpected exception and flagged the slot).
      The slot is retired; the daemon respawns a replacement and
      recovers the job.
    - [`Hang]: a ticking job's heartbeat went stale for longer than
      [hang_timeout].  The daemon cancels the job (workers poll their
      job's cancel flag at each tick) and recovers it; the slot stays
      live, stamped with the cancellation time, waiting for the worker
      to acknowledge by finishing.
    - [`Wedge]: a cancelled worker did not acknowledge within [grace] —
      it is truly stuck (Domains cannot be killed).  The slot is
      retired so drain accounting no longer waits on it, and the daemon
      respawns a replacement; the wedged Domain is abandoned and dies
      with the process.

    Only sim jobs tick (campaign/fuzz/coverage run as one opaque call),
    so hang detection applies only to slots started with
    [~ticking:true]; crash detection applies to every job.  Retired
    slots ignore late heartbeats and acknowledgements from their
    abandoned worker. *)

type policy = {
  hang_timeout : float;  (** seconds without a heartbeat before a ticking job is hung *)
  grace : float;  (** seconds a cancelled worker gets to acknowledge before respawn *)
  poll : float;  (** supervisor scan interval *)
  max_retries : int;  (** attempts per job before a structured failure *)
  backoff_base : float;  (** first retry delay, seconds *)
  backoff_max : float;
}

val default_policy : policy
(** 30 s hang timeout, 1 s grace, 50 ms poll, 3 retries, 50 ms–2 s backoff. *)

val backoff : policy -> attempt:int -> jitter:float -> float
(** Exponential in [attempt] (1-based), capped at [backoff_max], scaled
    by [0.75 + 0.5 * jitter] with [jitter] in [0, 1). *)

type 'job t
type 'job slot

val create : policy -> 'job t
val policy : 'job t -> policy

(** {1 Worker side} *)

val register : 'job t -> 'job slot

val start : 'job t -> 'job slot -> ticking:bool -> 'job -> unit
val beat : 'job slot -> unit
val finish : 'job t -> 'job slot -> unit
(** Clears the slot; a no-op on a retired slot. *)

val crashed : 'job t -> 'job slot -> unit
(** The worker loop is dying with this job still in its slot. *)

val exited : 'job t -> 'job slot -> unit
(** The worker loop returned normally (drain). *)

(** {1 Supervisor side} *)

type 'job loss = {
  slot_id : int;
  job : 'job option;  (** [None] for a [`Wedge]: its job was already recovered at [`Hang] *)
  kind : [ `Crash | `Hang | `Wedge ];
}

val scan : 'job t -> now:float -> 'job loss list
(** Detects and state-advances in one pass; each loss is reported once. *)

val busy : 'job t -> int
(** Live slots currently holding a job (retired slots excluded) — the
    in-flight count drain accounting waits on. *)

val live : 'job t -> int
val hang_count : 'job t -> int
val crash_count : 'job t -> int
val wedge_count : 'job t -> int
