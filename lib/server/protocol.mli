(** gsimd wire protocol.

    Every message travels as one versioned, length-prefixed frame:

    {v
      offset  size  field
      0       4     magic "gsim"
      4       1     protocol version (currently 1)
      5       1     message kind tag
      6       4     payload length, big-endian
      10      n     payload
    v}

    The payload is a flat sequence of binary-safe fields, each encoded as
    [name ' ' byte-length '\n' bytes '\n'] — repeating a name makes a
    list.  Unknown field names are ignored on decode, so fields can be
    added without a version bump; changing the meaning of an existing
    field requires one, and a peer speaking a different version is
    rejected at the frame header.

    All decode errors raise {!Error}. *)

exception Error of string

val version : int
val magic : string
val header_size : int

val max_payload : int
(** Frames larger than this are rejected on both ends (16 MiB). *)

(** {1 Addresses} *)

type address = Unix_sock of string | Tcp of string * int

val address_of_string : string -> address
(** ["host:port"] (with a numeric port and no ['/']) is TCP; anything
    else is a Unix-domain socket path. *)

val address_to_string : address -> string

(** {1 Messages} *)

type priority = Interactive | Batch

val priority_of_string : string -> priority
val priority_to_string : priority -> string

type engine_opts = {
  eo_engine : string;        (** preset name, e.g. ["gsim"] *)
  eo_backend : string;       (** ["bytecode"] or ["closures"] *)
  eo_level : string option;  (** optimization-level override *)
  eo_max_supernode : int;
  eo_threads : int;
}

val default_engine_opts : engine_opts

type sim_job = {
  sj_filename : string;  (** selects the frontend by extension *)
  sj_design : string;    (** full design text *)
  sj_opts : engine_opts;
  sj_cycles : int;
  sj_pokes : string list;  (** ["name=value"] *)
  sj_token : string option;
      (** client-chosen idempotency token: resubmitting the same token
          attaches to the in-flight job (or replays its cached
          response) instead of executing twice *)
  sj_tenant : string option;
      (** fairness/accounting identity; [None] defaults per-connection *)
  sj_deadline : float;
      (** end-to-end budget in seconds from admission; [0.] = none *)
}

type campaign_job = {
  cj_filename : string;
  cj_design : string;
  cj_opts : engine_opts;
  cj_horizon : int;
  cj_budget : int;
  cj_faults : string list;  (** explicit fault keys *)
  cj_random : int;          (** extra random faults to draw *)
  cj_seed : int;
  cj_duration : int;
  cj_models : string option;  (** comma-separated model subset *)
  cj_pokes : string list;
  cj_token : string option;
  cj_tenant : string option;
  cj_deadline : float;
}

type fuzz_job = {
  fj_seed : int;
  fj_cases : int;
  fj_from : int;  (** first case index of this shard *)
  fj_cycles : int;
  fj_setups : string option;  (** comma-separated subset, e.g. ["gsim+bytecode"] *)
  fj_token : string option;
  fj_tenant : string option;
  fj_deadline : float;
}

type cov_job = {
  vj_filename : string;
  vj_design : string;
  vj_opts : engine_opts;
  vj_cycles : int;
  vj_pokes : string list;
  vj_token : string option;
  vj_tenant : string option;
  vj_deadline : float;
}

type request =
  | Sim of priority * sim_job
  | Campaign of priority * campaign_job
  | Fuzz of priority * fuzz_job
  | Coverage of priority * cov_job
  | Status
  | Shutdown

val request_token : request -> string option
val with_token : string -> request -> request
(** A no-op on [Status]/[Shutdown] (control requests never retry-dedup). *)

val request_design : request -> string option
(** The raw design text a job carries, if any — what the quarantine
    breaker and the chaos poison marker key on. *)

val request_filename : request -> string option
(** The filename a design-carrying job names (frontend selection). *)

val request_tenant : request -> string option
val request_deadline : request -> float
(** The job's relative deadline budget in seconds; [0.] when none. *)

type sim_result = {
  sr_engine : string;
  sr_cycles : int;
  sr_halted : bool;
  sr_outputs : (string * string) list;  (** output name, formatted value *)
  sr_cache_hit : bool;         (** passes+partition served from the plan cache *)
  sr_compile_seconds : float;
  sr_preemptions : int;
}

type db_result = {
  dr_kind : string;     (** ["fault"] / ["fuzz"] / ["coverage"] *)
  dr_text : string;     (** the database in its native text format *)
  dr_summary : string;  (** one human-readable line *)
  dr_cache_hit : bool;  (** plan and/or golden-trace reuse *)
  dr_seconds : float;   (** server-side execution time *)
}

(** Per-tenant accounting row carried by {!Status}. *)
type tenant_stat = {
  tn_tenant : string;
  tn_submitted : int;
  tn_completed : int;
  tn_shed : int;      (** refused by brownout/quota with a retry-after hint *)
  tn_expired : int;   (** deadline-exceeded before or during execution *)
  tn_inflight : int;  (** queued + running right now *)
}

type status = {
  st_workers : int;
  st_queued : int;
  st_running : int;
  st_completed : int;
  st_rejected : int;
  st_cache_entries : int;
  st_cache_capacity : int;
  st_cache_hits : int;
  st_cache_misses : int;
  st_cache_evictions : int;
  st_golden_hits : int;
  st_golden_misses : int;
  st_preemptions : int;
  st_uptime : float;
  st_draining : bool;
  st_retries : int;          (** job attempts re-admitted after a worker loss *)
  st_hangs : int;            (** hung workers detected by the supervisor *)
  st_worker_crashes : int;   (** worker Domains that died mid-job *)
  st_worker_restarts : int;  (** replacement Domains spawned *)
  st_gave_up : int;          (** jobs failed after exhausting their retry budget *)
  st_quarantined : int;      (** designs currently quarantined (breaker open/probing) *)
  st_quarantine_trips : int;
  st_chaos_injected : int;   (** total faults the chaos harness injected *)
  st_shed : int;             (** batch jobs refused by brownout/quota *)
  st_over_budget : int;      (** jobs refused at admission cost estimation *)
  st_deadline_expired : int; (** jobs expired by their end-to-end deadline *)
  st_tenants : tenant_stat list;
}

(** Structured failure codes, wire-carried so a client can tell a
    retryable condition ([Timeout], [Worker_lost], [Queue_full]) from a
    permanent one ([Quarantined], [Protocol_violation]) without parsing
    the message text.  Codes unknown to a peer decode as [Generic]. *)
type error_code =
  | Generic
  | Refused       (** draining: resubmit to another daemon *)
  | Queue_full
  | Timeout       (** the job hung and exhausted its retries *)
  | Worker_lost   (** the worker died and retries were exhausted *)
  | Quarantined   (** the design's circuit breaker is open *)
  | Protocol_violation
  | Internal
  | Over_budget   (** refused at admission: a resource budget was exceeded *)
  | Deadline_exceeded  (** the job's end-to-end deadline passed *)
  | Overloaded    (** shed by brownout or a per-tenant quota; retry later *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code

type error_info = {
  ei_code : error_code;
  ei_message : string;
  ei_attempts : int;
  ei_retry_after : float;
      (** server's backoff hint in seconds ([0.] = none); {!Client.call_robust}
          honours it before resubmitting *)
}

type response =
  | Sim_done of sim_result
  | Db_done of db_result
  | Status_ok of status
  | Shutting_down
  | Error_resp of error_info

val error_resp :
  ?code:error_code -> ?attempts:int -> ?retry_after:float -> string -> response
(** [Generic], one attempt, no retry hint by default. *)

(** {1 Frames} *)

val frame_to_string : kind:int -> string -> string
(** Raises {!Error} if the payload exceeds {!max_payload}. *)

val frame_of_string : string -> int * string
(** Parses exactly one whole frame; raises {!Error} on truncation, bad
    magic, an unsupported version or an out-of-range length. *)

val parse_header : string -> int * int
(** [(kind, payload_length)] from exactly {!header_size} bytes — for
    callers doing their own deadline-aware socket reads ({!Client}). *)

val response_of_frame : int -> string -> response
(** Decode a response from its kind tag and payload bytes. *)

val encode_request : request -> string
(** The complete frame bytes. *)

val decode_request : string -> request
val encode_response : response -> string
val decode_response : string -> response

(** {1 Channel I/O} *)

val read_request : in_channel -> request option
(** [None] on clean EOF at a frame boundary; {!Error} mid-frame. *)

val write_request : out_channel -> request -> unit
val read_response : in_channel -> response option
val write_response : out_channel -> response -> unit
