(** gsimd — the multi-tenant simulation daemon.

    One process: the calling thread owns the listening socket and
    accepts connections, each connection gets a lightweight systhread
    speaking {!Protocol} frames, and jobs run on a pool of worker
    Domains fed by a bounded priority {!Scheduler} and sharing one
    compiled-plan {!Plan_cache}.

    Shutdown is a graceful drain, triggered by SIGTERM, SIGINT, or a
    [Shutdown] request: new submissions are refused, queued and
    preempted jobs run to completion, their responses are delivered,
    and {!serve} returns.  A Unix listening socket is registered with
    {!Gsim_resilience.Store.track_tmp} so even a hard exit removes it.

    Batch jobs survive an ungraceful exit: each batch request is
    persisted ([<spool>/jobs/job-<id>.gjb], atomic write) at admission
    and removed on completion, and {!serve} begins by scanning that
    directory, re-admitting every leftover job at batch priority and
    allocating new ids above the scanned ones.  A re-admitted sim job
    resumes from its preemption spool ring's delta chain instead of
    cycle 0 when the killed daemon had spooled one; its response goes to
    the log, since the submitting client died with the old daemon. *)

type config = {
  address : Protocol.address;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;  (** compiled-plan LRU entries; 0 disables *)
  preempt_stride : int;  (** cycles between a batch sim job's preemption checks *)
  spool : string option;  (** scratch root; default under the temp dir *)
  log : out_channel;
}

val default_config : Protocol.address -> config
(** Workers [max 2 (domains-2)], queue 64, cache 16, stride 10_000,
    log on stderr. *)

val serve : config -> unit
(** Blocks until drained.  Raises [Unix.Unix_error] if the socket
    cannot be bound. *)
