(** gsimd — the multi-tenant simulation daemon.

    One process: the calling thread owns the listening socket and
    accepts connections, each connection gets a lightweight systhread
    speaking {!Protocol} frames, and jobs run on a pool of worker
    Domains fed by a bounded priority {!Scheduler} and sharing one
    compiled-plan {!Plan_cache}.

    {2 Fault isolation}

    Workers are supervised: each Domain heartbeats through a
    {!Supervisor} slot at every preemption-stride boundary, and a
    supervisor thread detects crashed Domains (respawned, job
    recovered), hung jobs (cancelled via their cancel flag, job
    recovered) and wedged Domains that ignore cancellation (abandoned,
    replacement spawned).  A recovered job retries with exponential
    backoff and deterministic jitter up to [supervision.max_retries]
    times, resuming from its per-stride spool ring so a lost worker
    costs at most one stride of progress; past the budget its client
    gets a structured {!Protocol.Error_resp} carrying [Timeout] or
    [Worker_lost].  Designs that repeatedly kill workers trip the
    {!Plan_cache} quarantine breaker and are refused with [Quarantined]
    until a cooldown probe succeeds.  Submissions carrying an
    idempotency token are deduplicated: a retry of an in-flight job
    attaches to it, a retry of a finished one replays the response.

    The {!Chaos} harness (off by default) injects worker crashes,
    hangs, compute stalls, stalled writes and torn response frames under
    a seed, for tests, CI smoke and benchmarks.

    {2 Overload protection}

    Four independent guards keep the daemon answering under pressure:

    - {e Admission}: when [budgets] is limited, every job's design is
      parsed (frontend only, memoized by digest) and its {!Admission}
      estimate checked before it touches the queue; an over-budget
      design is refused with [Over_budget] naming the violated limit.
      A design the frontend rejects is admitted so the worker produces
      the real diagnostic.
    - {e Fairness}: jobs carry a tenant id (client-supplied, defaulting
      to a per-connection id) and each priority band dequeues
      deficit-round-robin across tenants; [tenant_quota] bounds one
      tenant's queued jobs ([Overloaded] + retry-after past it).
      Per-tenant counters are reported in [Status].
    - {e Deadlines}: a client-supplied relative deadline becomes an
      absolute one at admission; an expired job is shed at dispatch and
      a running one stops at the next stride tick, both with
      [Deadline_exceeded].
    - {e Brownout}: past [high_water] × capacity queued batch jobs (or
      past [max_backlog_seconds] of estimated backlog — EWMA job
      seconds × queued / workers), new {e batch} work is shed with
      [Overloaded] and a retry-after hint while interactive traffic
      keeps flowing.  [spool_quota_mb] bounds golden-trace disk with
      oldest-first eviction.

    {2 Shutdown}

    Shutdown is a graceful drain, triggered by SIGTERM, SIGINT, or a
    [Shutdown] request: new submissions are refused, then the daemon
    waits for worker *acknowledgements* — queued jobs, busy supervisor
    slots and backoff-delayed retries must all reach zero before the
    scheduler drains, so a job mid-yield or mid-retry can never be
    dropped by the race between its requeue and the drain broadcast.
    Worker Domains are joined only once they acknowledge; a wedged
    Domain is abandoned rather than allowed to hang the shutdown.  A
    Unix listening socket is registered with
    {!Gsim_resilience.Store.track_tmp} so even a hard exit removes it.

    Batch jobs survive an ungraceful exit: each batch request is
    persisted ([<spool>/jobs/job-<id>.gjb], atomic write) at admission
    and removed on completion, and {!serve} begins by scanning that
    directory, re-admitting every leftover job at batch priority and
    allocating new ids above the scanned ones.  A re-admitted sim job
    resumes from its preemption spool ring's delta chain instead of
    cycle 0 when the killed daemon had spooled one; its response goes to
    the log, since the submitting client died with the old daemon. *)

type config = {
  address : Protocol.address;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;  (** compiled-plan LRU entries; 0 disables *)
  preempt_stride : int;  (** cycles between a batch sim job's preemption checks *)
  spool : string option;  (** scratch root; default under the temp dir *)
  log : out_channel;
  supervision : Supervisor.policy;
  chaos : Chaos.spec;  (** {!Chaos.none} outside chaos runs *)
  budgets : Admission.budgets;  (** {!Admission.unlimited} disables admission checks *)
  high_water : float;
      (** brownout: batch-band depth as a fraction of [queue_capacity]
          past which new batch work is shed; [<= 0.] disables *)
  max_backlog_seconds : float;
      (** brownout: estimated backlog seconds past which new batch work
          is shed; [<= 0.] disables *)
  tenant_quota : int;  (** max queued jobs per tenant; [0] = unlimited *)
  spool_quota_mb : int;  (** golden-trace disk budget; [0] = unlimited *)
}

val default_config : Protocol.address -> config
(** Workers [max 2 (domains-2)], queue 64, cache 16, stride 10_000,
    log on stderr, {!Supervisor.default_policy}, no chaos, unlimited
    budgets, high-water 0.9, no backlog limit, no tenant quota, no
    spool quota. *)

val serve : config -> unit
(** Blocks until drained.  Raises [Unix.Unix_error] if the socket
    cannot be bound. *)
