module P = Protocol

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect address =
  let domain = match address with P.Unix_sock _ -> Unix.PF_UNIX | P.Tcp _ -> Unix.PF_INET in
  let sockaddr =
    match address with
    | P.Unix_sock path -> Unix.ADDR_UNIX path
    | P.Tcp (host, port) ->
      let addr =
        if host = "" || host = "*" then Unix.inet_addr_loopback
        else
          try Unix.inet_addr_of_string host
          with Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (addr, port)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let call t request =
  P.write_request t.oc request;
  match P.read_response t.ic with
  | Some r -> r
  | None -> raise (P.Error "server closed the connection before responding")

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection address f =
  let t = connect address in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
