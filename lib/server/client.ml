module P = Protocol

exception Timeout of float

type t = { fd : Unix.file_descr; mutable deadline : float }
(* deadline <= 0. means "no deadline".  Reads go through the raw fd with
   a select() guard rather than buffered channels: a buffered reader
   blocked in read(2) cannot be given a timeout portably, and a daemon
   dying mid-frame would hang it forever. *)

let sockaddr_of = function
  | P.Unix_sock path -> Unix.ADDR_UNIX path
  | P.Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_loopback
      else
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    Unix.ADDR_INET (addr, port)

let connect ?(timeout = 0.) address =
  let domain = match address with P.Unix_sock _ -> Unix.PF_UNIX | P.Tcp _ -> Unix.PF_INET in
  let sockaddr = sockaddr_of address in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try
     if timeout <= 0. then Unix.connect fd sockaddr
     else begin
       (* Non-blocking connect + select so a black-holed daemon host
          cannot stall the client past its deadline. *)
       Unix.set_nonblock fd;
       (try Unix.connect fd sockaddr with
        | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> (
          match Unix.select [] [ fd ] [] timeout with
          | _, [], [] -> raise (Timeout timeout)
          | _ -> (
            match Unix.getsockopt_error fd with
            | Some err -> raise (Unix.Unix_error (err, "connect", ""))
            | None -> ())));
       Unix.clear_nonblock fd
     end
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; deadline = (if timeout > 0. then Unix.gettimeofday () +. timeout else 0.) }

let set_deadline t seconds =
  t.deadline <- (if seconds > 0. then Unix.gettimeofday () +. seconds else 0.)

let write_all t s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < n then begin
      let w =
        try Unix.write t.fd b off (n - off)
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + w)
    end
  in
  go 0

(* Read exactly [n] bytes, honouring the deadline; [what] names the
   piece being read so a mid-frame EOF produces an actionable error. *)
let recv_exact t n ~what =
  let buf = Bytes.create n in
  let rec go off =
    if off < n then begin
      (if t.deadline > 0. then begin
         let left = t.deadline -. Unix.gettimeofday () in
         if left <= 0. then raise (Timeout left);
         match Unix.select [ t.fd ] [] [] left with
         | [], _, _ -> raise (Timeout left)
         | _ -> ()
       end);
      match Unix.read t.fd buf off (n - off) with
      | 0 ->
        raise
          (P.Error
             (Printf.sprintf
                "connection closed by gsimd after %d of %d byte(s) of %s — the daemon \
                 likely died mid-response"
                off n what))
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0;
  Bytes.to_string buf

let read_response t =
  let kind, n = P.parse_header (recv_exact t P.header_size ~what:"the frame header") in
  let payload = recv_exact t n ~what:"the response payload" in
  P.response_of_frame kind payload

let call t request =
  write_all t (P.encode_request request);
  read_response t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?timeout address f =
  let t = connect ?timeout address in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let retryable_unix_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE | Unix.ENOENT
  | Unix.ETIMEDOUT | Unix.EHOSTUNREACH | Unix.ENETUNREACH | Unix.EAGAIN ->
    true
  | _ -> false

let call_robust ?(timeout = 0.) ?(retries = 0) ?(backoff = 0.2) ?token address request =
  (* The token makes resubmission idempotent: the daemon runs the job
     once and replays (or lets us re-attach to) the response, so a retry
     after a torn frame can never double-execute. *)
  let request = match token with Some tok -> P.with_token tok request | None -> request in
  let attempt_once () =
    let t = connect ~timeout address in
    Fun.protect ~finally:(fun () -> close t) (fun () -> call t request)
  in
  let rec go attempt last_err =
    if attempt > retries then raise last_err
    else
      match attempt_once () with
      | P.Error_resp e when e.P.ei_retry_after > 0. && attempt < retries ->
        (* The daemon shed the job and told us when it expects room;
           honour the hint (capped — a pathological hint must not wedge
           the client) instead of our blind exponential schedule. *)
        Unix.sleepf (Float.min 5. e.P.ei_retry_after);
        go (attempt + 1) last_err
      | r -> r
      | exception e ->
        let retry_on =
          match e with
          | Timeout _ | P.Error _ -> true
          | Unix.Unix_error (err, _, _) -> retryable_unix_error err
          | _ -> false
        in
        if (not retry_on) || attempt >= retries then raise e
        else begin
          (* Exponential backoff with cheap time-derived jitter to
             de-synchronise a herd of retrying clients. *)
          let base = backoff *. (2. ** float_of_int attempt) in
          let jitter = fst (Float.modf (Unix.gettimeofday () *. 997.)) in
          Unix.sleepf (Float.min 5. (base *. (0.75 +. (0.5 *. jitter))));
          go (attempt + 1) e
        end
  in
  go 0 (Failure "unreachable")
