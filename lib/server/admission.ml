module Circuit = Gsim_ir.Circuit

type estimate = {
  est_nodes : int;
  est_max_width : int;
  est_mem_bytes : int;
  est_arena_bytes : int;
  est_native_nodes : int;
}

type budgets = {
  max_nodes : int;
  max_width : int;
  max_mem_bytes : int;
  max_arena_bytes : int;
  max_native_nodes : int;
}

let unlimited =
  { max_nodes = 0; max_width = 0; max_mem_bytes = 0; max_arena_bytes = 0;
    max_native_nodes = 0 }

let limited b = b <> unlimited

(* One pass over the elaborated circuit, before the pass pipeline or any
   engine construction.  The arena estimate mirrors the runtime layout:
   every node owns one 8-byte narrow slot; a wide node (width > 62)
   additionally owns its boxed limbs plus a mirrored slice of the flat
   limb arena the native backend mutates in place.  Memory bytes count
   the backing arrays at limb granularity.  All of these are upper
   bounds on the *unoptimized* graph — passes only shrink it. *)
let estimate c =
  let limb_bytes w = (w + 63) / 64 * 8 in
  let nodes, max_width, wide_bytes, native_nodes =
    Circuit.fold_nodes c ~init:(0, 0, 0, 0) ~f:(fun (n, mw, wb, nn) nd ->
        let w = nd.Circuit.width in
        let wb = if w > 62 then wb + (2 * limb_bytes w) else wb in
        let nn =
          match nd.Circuit.kind with
          | Circuit.Logic | Circuit.Reg_next _ when w <= 62 -> nn + 1
          | _ -> nn
        in
        (n + 1, max mw w, wb, nn))
  in
  let mem_bytes =
    Array.fold_left
      (fun acc (m : Circuit.memory) -> acc + (m.Circuit.depth * limb_bytes m.Circuit.mem_width))
      0 (Circuit.memories c)
  in
  {
    est_nodes = nodes;
    est_max_width = max_width;
    est_mem_bytes = mem_bytes;
    est_arena_bytes = (nodes * 8) + wide_bytes + mem_bytes;
    est_native_nodes = native_nodes;
  }

let mib n = float_of_int n /. (1024. *. 1024.)

let check b e =
  let over what value limit unit_ =
    Error
      (Printf.sprintf "%s %s exceeds the daemon budget %s" what (unit_ value)
         (unit_ limit))
  in
  let count v = string_of_int v in
  let bytes v = Printf.sprintf "%.1f MiB" (mib v) in
  if b.max_nodes > 0 && e.est_nodes > b.max_nodes then
    over "node count" e.est_nodes b.max_nodes count
  else if b.max_width > 0 && e.est_max_width > b.max_width then
    over "max node width" e.est_max_width b.max_width count
  else if b.max_mem_bytes > 0 && e.est_mem_bytes > b.max_mem_bytes then
    over "memory-array footprint" e.est_mem_bytes b.max_mem_bytes bytes
  else if b.max_arena_bytes > 0 && e.est_arena_bytes > b.max_arena_bytes then
    over "estimated arena" e.est_arena_bytes b.max_arena_bytes bytes
  else if b.max_native_nodes > 0 && e.est_native_nodes > b.max_native_nodes then
    over "native-compile estimate" e.est_native_nodes b.max_native_nodes count
  else Ok ()

(* --- Spec parsing --------------------------------------------------------
   "nodes=200000,width=4096,mem-mb=512,arena-mb=1024,native-nodes=50000";
   0 (or an absent key) leaves that limit unenforced. *)

let budgets_of_string text =
  let nonneg key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> failwith (Printf.sprintf "budget: %s wants a non-negative integer, got %S" key v)
  in
  String.split_on_char ',' text
  |> List.filter (fun kv -> String.trim kv <> "")
  |> List.fold_left
       (fun b kv ->
         match String.index_opt kv '=' with
         | None -> failwith (Printf.sprintf "budget: expected key=value, got %S" kv)
         | Some i -> (
           let key = String.trim (String.sub kv 0 i) in
           let v = String.sub kv (i + 1) (String.length kv - i - 1) in
           match key with
           | "nodes" -> { b with max_nodes = nonneg key v }
           | "width" -> { b with max_width = nonneg key v }
           | "mem-mb" -> { b with max_mem_bytes = nonneg key v * 1024 * 1024 }
           | "arena-mb" -> { b with max_arena_bytes = nonneg key v * 1024 * 1024 }
           | "native-nodes" -> { b with max_native_nodes = nonneg key v }
           | _ ->
             failwith
               (Printf.sprintf
                  "budget: unknown key %S (nodes, width, mem-mb, arena-mb, native-nodes)"
                  key)))
       unlimited

let budgets_to_string b =
  let parts = ref [] in
  let add key v = if v > 0 then parts := Printf.sprintf "%s=%d" key v :: !parts in
  add "native-nodes" b.max_native_nodes;
  add "arena-mb" (b.max_arena_bytes / (1024 * 1024));
  add "mem-mb" (b.max_mem_bytes / (1024 * 1024));
  add "width" b.max_width;
  add "nodes" b.max_nodes;
  if !parts = [] then "unlimited" else String.concat "," !parts
