module Bits = Gsim_bits.Bits
module Circuit = Gsim_ir.Circuit
module Sim = Gsim_engine.Sim
module Checkpoint = Gsim_engine.Checkpoint
module Gsim = Gsim_core.Gsim
module Compile = Gsim_core.Gsim.Compile
module Cov_collect = Gsim_coverage.Collect
module Cov_db = Gsim_coverage.Db
module Fault = Gsim_fault.Fault
module Fault_db = Gsim_fault.Db
module Campaign = Gsim_fault.Campaign
module Store = Gsim_resilience.Store
module Fuzz = Gsim_verify.Fuzz
module Corpus = Gsim_verify.Corpus
module P = Protocol

type job = {
  id : int;
  priority : int;
  tenant : string;
  deadline : float;  (* absolute Unix time; 0. = none *)
  request : P.request;
  reply : P.response -> unit;
  mutable attempt : int;
  cancelled : bool Atomic.t;
  mutable ticks : int;
  mutable digest : string option;
  mutable done_cycles : int;
  mutable ck : Checkpoint.t option;
  mutable recovered : bool;
  mutable spool_link : (Checkpoint.t * int) option;
  mutable spool_deltas : int;
  mutable preemptions : int;
  mutable cache_hit : bool;
  mutable compile_seconds : float;
}

let make_job ~id ~priority ?(tenant = Scheduler.default_tenant) ?(deadline = 0.) ~reply
    request =
  {
    id;
    priority;
    tenant;
    deadline;
    request;
    reply;
    attempt = 1;
    cancelled = Atomic.make false;
    ticks = 0;
    digest = None;
    done_cycles = 0;
    ck = None;
    recovered = false;
    spool_link = None;
    spool_deltas = 0;
    preemptions = 0;
    cache_hit = false;
    compile_seconds = 0.;
  }

(* A retry is a fresh record under the same id: the stale attempt may
   still be running on a wedged worker, so it must not share mutable
   resume state.  [recovered] makes the retry resume from the job's
   on-disk spool ring instead of cycle 0. *)
let retry_of job =
  let j =
    make_job ~id:job.id ~priority:job.priority ~tenant:job.tenant ~deadline:job.deadline
      ~reply:job.reply job.request
  in
  j.attempt <- job.attempt + 1;
  j.recovered <- true;
  j

type context = {
  cache : Compile.plan Plan_cache.t;
  sched : job Scheduler.t;
  spool : string;
  preempt_stride : int;
  log : string -> unit;
  chaos : Chaos.t;
  preemption_count : int Atomic.t;
  golden_hits : int Atomic.t;
  golden_misses : int Atomic.t;
}

type outcome = Done of P.response | Yielded | Abandoned

exception Abandon
(* Raised at a tick when the supervisor has cancelled this attempt
   (it was presumed hung and a retry was re-admitted). *)

exception Deadline of int
(* Raised at a tick once the job's end-to-end deadline has passed;
   carries the cycle count reached.  Caught in [execute] and turned
   into a [Deadline_exceeded] job-level error. *)

(* Preemption spool cadence: the first yield of a job writes a full
   keyframe, later yields write sparse deltas chained on it, and every
   [spool_keyframe_every] deltas a fresh keyframe re-anchors the chain
   so recovery never walks an unbounded number of links. *)
let spool_keyframe_every = 8

let config_of_opts (o : P.engine_opts) =
  Gsim.config_of_names ~engine:o.eo_engine ~threads:o.eo_threads ~level:o.eo_level
    ~max_supernode:o.eo_max_supernode ~backend:o.eo_backend

(* Two-level plan lookup.  The fast path keys on the digest of the raw
   design text so a repeat request skips even the frontend; a text miss
   falls back to the canonical circuit-hash key (catching, e.g., a
   reformatted copy of a known design) before compiling.  Either hit
   means the pass pipeline and partitioning did not run. *)
let compiled_plan ctx config ~filename ~text =
  let frontend = if Filename.check_suffix filename ".v" then "v" else "fir" in
  let text_key =
    Printf.sprintf "text:%s:%s#%s" frontend
      (Digest.to_hex (Digest.string text))
      (Compile.fingerprint config)
  in
  match Plan_cache.find ctx.cache text_key with
  | Some plan -> (plan, true, 0.)
  | None ->
    let t0 = Unix.gettimeofday () in
    let source = Compile.source_of_string ~filename text in
    let circuit_key = Compile.key source config in
    (match Plan_cache.find ctx.cache circuit_key with
     | Some plan ->
       Plan_cache.add ctx.cache text_key plan;
       (plan, true, Unix.gettimeofday () -. t0)
     | None ->
       let plan = Compile.prepare config source in
       Plan_cache.add ctx.cache circuit_key plan;
       Plan_cache.add ctx.cache text_key plan;
       (plan, false, Unix.gettimeofday () -. t0))

let parse_pokes circuit specs =
  List.map
    (fun spec ->
      match String.split_on_char '=' spec with
      | [ name; value ] -> (
        match Circuit.find_node circuit name with
        | Some n -> (n.Circuit.id, Bits.of_int ~width:n.Circuit.width (int_of_string value))
        | None -> failwith (Printf.sprintf "no input named %S" name))
      | _ -> failwith (Printf.sprintf "bad poke %S (want name=value)" spec))
    specs

let job_dir ctx job name =
  let dir = Filename.concat ctx.spool (Printf.sprintf "%s-job-%03d" name job.id) in
  Store.ensure_dir dir;
  dir

let remove_dir dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* --- sim ----------------------------------------------------------------- *)

(* Spool one generation crash-safely: the on-disk ring survives both the
   daemon and this worker.  After the first keyframe each generation
   costs only a sparse delta chained on the previous file's CRC; the
   ring's chain-aware prune keeps every base a live delta still needs. *)
let spool_generation ctx job ck =
  let store = Store.create ~ring:4 (job_dir ctx job "sim") in
  match job.spool_link with
  | Some (base, base_crc) when job.spool_deltas < spool_keyframe_every -> (
    match Checkpoint.delta_of ~base ~base_crc ck with
    | d ->
      let _, crc = Store.save_delta store d in
      job.spool_link <- Some (ck, crc);
      job.spool_deltas <- job.spool_deltas + 1
    | exception Failure _ ->
      let _, crc = Store.save_keyframe store ck in
      job.spool_link <- Some (ck, crc);
      job.spool_deltas <- 0)
  | _ ->
    let _, crc = Store.save_keyframe store ck in
    job.spool_link <- Some (ck, crc);
    job.spool_deltas <- 0

let run_sim ctx job ~tick (sj : P.sim_job) =
  let config = config_of_opts sj.sj_opts in
  let plan, hit, secs = compiled_plan ctx config ~filename:sj.sj_filename ~text:sj.sj_design in
  if job.done_cycles = 0 && job.ck = None then begin
    job.cache_hit <- hit;
    job.compile_seconds <- secs
  end;
  let circuit = Compile.plan_circuit plan in
  let halt = Compile.plan_halt plan in
  let compiled = Compile.realize plan in
  Fun.protect ~finally:compiled.Gsim.destroy @@ fun () ->
  let sim = compiled.Gsim.sim in
  (match job.ck with
   | Some ck ->
     Checkpoint.restore sim ck;
     sim.Sim.invalidate ()
   | None ->
     (* A job re-admitted after a daemon restart lost its in-memory
        checkpoint, but its spool ring survived: resume from the newest
        generation whose delta chain verifies, instead of cycle 0.  A
        torn last write (the killed daemon died mid-spool) just lands
        recovery on the previous generation. *)
     if job.recovered && job.done_cycles = 0 then begin
       let dir = Filename.concat ctx.spool (Printf.sprintf "sim-job-%03d" job.id) in
       if Sys.file_exists dir then
         match Store.latest ~lenient:true (Store.create dir) with
         | Some (ck, path) ->
           Checkpoint.restore sim ck;
           sim.Sim.invalidate ();
           job.done_cycles <- Checkpoint.cycle ck;
           ctx.log
             (Printf.sprintf "job %d: resumed from spooled %s at cycle %d" job.id
                (Filename.basename path) (Checkpoint.cycle ck))
         | None -> ()
         | exception (Failure _ | Sys_error _) -> ()
     end);
  List.iter (fun (id, v) -> sim.Sim.poke id v) (parse_pokes circuit sj.sj_pokes);
  let halted = ref false in
  let target = sj.sj_cycles in
  let step_window n =
    let stepped = ref 0 in
    while !stepped < n && not !halted do
      sim.Sim.step ();
      incr stepped;
      job.done_cycles <- job.done_cycles + 1;
      match halt with
      | Some h when not (Bits.is_zero (sim.Sim.peek h)) -> halted := true
      | _ -> ()
    done
  in
  (* Every sim job steps in [preempt_stride]-cycle windows and ticks at
     each boundary: the tick heartbeats to the supervisor, honours a
     cancellation, and lets the chaos harness strike.  Only batch jobs
     yield to higher-priority work, and only batch jobs spool — the
     per-stride generation is what a retry resumes from after its
     worker crashed, so a lost worker costs at most one stride of
     progress plus the backoff.  Interactive jobs are short and their
     client retries, so they skip the spool entirely. *)
  let stride = if ctx.preempt_stride > 0 then ctx.preempt_stride else max_int in
  let preemptible = job.priority > 0 && ctx.preempt_stride > 0 in
  let spooling = job.priority > 0 && ctx.preempt_stride > 0 in
  let yielded = ref false in
  while (not !yielded) && (not !halted) && job.done_cycles < target do
    let window = min stride (target - job.done_cycles) in
    step_window window;
    if (not !halted) && job.done_cycles < target then begin
      tick ();
      let want_yield =
        preemptible && Scheduler.higher_waiting ctx.sched ~than:job.priority
      in
      if spooling || want_yield then begin
        let ck = Checkpoint.with_cycle (Checkpoint.capture sim) job.done_cycles in
        spool_generation ctx job ck;
        if want_yield then begin
          job.ck <- Some ck;
          job.preemptions <- job.preemptions + 1;
          Atomic.incr ctx.preemption_count;
          yielded := true
        end
      end
    end
  done;
  if !yielded then Yielded
  else begin
    let outputs =
      Circuit.outputs circuit
      |> List.map (fun (n : Circuit.node) ->
             (n.Circuit.name, Format.asprintf "%a" Bits.pp (sim.Sim.peek n.Circuit.id)))
    in
    remove_dir (Filename.concat ctx.spool (Printf.sprintf "sim-job-%03d" job.id));
    Done
      (P.Sim_done
         {
           sr_engine = config.Gsim.config_name;
           sr_cycles = job.done_cycles;
           sr_halted = !halted;
           sr_outputs = outputs;
           sr_cache_hit = job.cache_hit;
           sr_compile_seconds = job.compile_seconds;
           sr_preemptions = job.preemptions;
         })
  end

(* --- fault campaign ------------------------------------------------------ *)

let models_of_string s =
  List.map
    (function
      | "seu" -> `Seu
      | "stuck0" -> `Stuck0
      | "stuck1" -> `Stuck1
      | "word" -> `Word
      | other ->
        failwith (Printf.sprintf "unknown fault model %S (seu, stuck0, stuck1, word)" other))
    (String.split_on_char ',' s)

let run_campaign ctx _job (cj : P.campaign_job) =
  let t0 = Unix.gettimeofday () in
  let config = config_of_opts cj.cj_opts in
  let source = Compile.source_of_string ~filename:cj.cj_filename cj.cj_design in
  let circuit = source.Compile.circuit in
  let models = Option.map models_of_string cj.cj_models in
  let faults =
    List.map Fault.of_key cj.cj_faults
    @
    if cj.cj_random > 0 then
      Fault.random ?models ~duration:cj.cj_duration ~seed:cj.cj_seed ~count:cj.cj_random
        ~horizon:cj.cj_horizon circuit
    else []
  in
  if faults = [] then failwith "no faults to inject: give random>0 and/or fault keys";
  let const_pokes = parse_pokes circuit cj.cj_pokes in
  let stimulus _cycle = const_pokes in
  (* Golden traces are cached like plans: one directory per (circuit,
     config, horizon), so every shard of a campaign — and every repeat
     campaign on the same design — reuses one golden simulation.
     Campaign.run itself validates the cache and rebuilds it if the
     design or configuration changed under the same key. *)
  let golden_dir =
    Filename.concat
      (Filename.concat ctx.spool "golden")
      (Printf.sprintf "%s-%s-%d"
         (String.sub source.Compile.hash 0 16)
         (Digest.to_hex (Digest.string (Compile.fingerprint config)))
         cj.cj_horizon)
  in
  let warm = Sys.file_exists golden_dir && (try Sys.readdir golden_dir <> [||] with Sys_error _ -> false) in
  Atomic.incr (if warm then ctx.golden_hits else ctx.golden_misses);
  let cfg = { Campaign.horizon = cj.cj_horizon; budget = cj.cj_budget } in
  let fresh = Campaign.run ~stimulus ~golden_dir cfg config circuit faults in
  let db =
    Fault_db.merge
      (Fault_db.create ~design:(Circuit.name circuit) ~horizon:cj.cj_horizon ())
      fresh
  in
  let s = Fault_db.summary db in
  Done
    (P.Db_done
       {
         dr_kind = "fault";
         dr_text = Fault_db.to_string db;
         dr_summary =
           Printf.sprintf "%d fault(s) classified, coverage %.1f%%" (Fault_db.count db)
             (Fault_db.coverage_percent s);
         dr_cache_hit = warm;
         dr_seconds = Unix.gettimeofday () -. t0;
       })

(* --- fuzz shard ---------------------------------------------------------- *)

let run_fuzz ctx job (fj : P.fuzz_job) =
  let t0 = Unix.gettimeofday () in
  let setups =
    match fj.fj_setups with
    | None -> Fuzz.default_setups
    | Some s -> List.map (fun name -> Fuzz.setup_of_name name) (String.split_on_char ',' s)
  in
  let dir = job_dir ctx job "fuzz" in
  let campaign =
    {
      Fuzz.default_campaign with
      Fuzz.seed = fj.fj_seed;
      cases = fj.fj_cases;
      start_case = fj.fj_from;
      cycles = fj.fj_cycles;
      setups;
      dir;
    }
  in
  let result = Fuzz.run campaign in
  let text = Corpus.to_string result.Fuzz.db in
  remove_dir dir;
  Done
    (P.Db_done
       {
         dr_kind = "fuzz";
         dr_text = text;
         dr_summary =
           Printf.sprintf "%d case(s) ran, %d failing" result.Fuzz.ran
             (List.length (Corpus.failures result.Fuzz.db));
         dr_cache_hit = false;
         dr_seconds = Unix.gettimeofday () -. t0;
       })

(* --- coverage collect ---------------------------------------------------- *)

let run_cov ctx job (vj : P.cov_job) =
  let t0 = Unix.gettimeofday () in
  let config = config_of_opts vj.vj_opts in
  let plan, hit, _ = compiled_plan ctx config ~filename:vj.vj_filename ~text:vj.vj_design in
  job.cache_hit <- hit;
  let circuit = Compile.plan_circuit plan in
  let halt = Compile.plan_halt plan in
  let compiled = Compile.realize plan in
  Fun.protect ~finally:compiled.Gsim.destroy @@ fun () ->
  let cov, sim =
    match compiled.Gsim.activity with
    | Some engine -> Cov_collect.of_activity ~name:compiled.Gsim.sim.Sim.sim_name engine
    | None -> Cov_collect.create compiled.Gsim.sim
  in
  List.iter (fun (id, v) -> sim.Sim.poke id v) (parse_pokes circuit vj.vj_pokes);
  (try
     for _ = 1 to vj.vj_cycles do
       sim.Sim.step ();
       match halt with
       | Some h when not (Bits.is_zero (sim.Sim.peek h)) -> raise Exit
       | _ -> ()
     done
   with Exit -> ());
  let db = Cov_collect.db cov in
  let s = Cov_db.summary db in
  Done
    (P.Db_done
       {
         dr_kind = "coverage";
         dr_text = Cov_db.to_string db;
         dr_summary = Printf.sprintf "coverage %.1f%%" (Cov_db.total_percent s);
         dr_cache_hit = hit;
         dr_seconds = Unix.gettimeofday () -. t0;
       })

(* --- dispatch ------------------------------------------------------------ *)

let discard_scratch ctx job =
  remove_dir (Filename.concat ctx.spool (Printf.sprintf "sim-job-%03d" job.id));
  remove_dir (Filename.concat ctx.spool (Printf.sprintf "fuzz-job-%03d" job.id))

let execute ?(beat = fun () -> ()) ctx job =
  let design = P.request_design job.request in
  job.digest <- Option.map (fun d -> Digest.to_hex (Digest.string d)) design;
  let poisoned =
    match design with Some d -> Chaos.poisoned ctx.chaos ~design:d | None -> false
  in
  (* One tick per preemption stride: heartbeat out, cancellation and
     chaos in.  The entry tick means even a job that dies before its
     first stride (bad design, poisoned plan) is supervised. *)
  let tick () =
    beat ();
    if Atomic.get job.cancelled then raise Abandon;
    (* The end-to-end deadline is enforced at every preemption stride:
       a running batch job that outlives its budget stops here instead
       of burning the worker to produce an answer nobody wants. *)
    if job.deadline > 0. && Unix.gettimeofday () > job.deadline then
      raise (Deadline job.done_cycles);
    job.ticks <- job.ticks + 1;
    match
      Chaos.at_eval ctx.chaos ~job:job.id ~attempt:job.attempt ~tick:job.ticks ~poisoned
    with
    | `Ok -> ()
    | `Crash -> raise Chaos.Crash
    | `Busy s ->
      (* Chaos overload: lose compute but stay supervised. *)
      Unix.sleepf s;
      beat ()
    | `Hang ->
      (* A real hang never returns; a simulated one spins silently (no
         heartbeat) until the supervisor cancels this attempt. *)
      while not (Atomic.get job.cancelled) do
        Unix.sleepf 0.002
      done;
      raise Abandon
  in
  try
    (* Quarantine is checked before the first tick: an Open breaker must
       refuse the design instantly, before a poisoned plan gets another
       chance to take the worker down with it. *)
    let quarantined =
      match job.digest with
      | None -> None
      | Some key -> (
        match Plan_cache.admit ctx.cache key with
        | `Proceed -> None
        | `Probe ->
          ctx.log
            (Printf.sprintf "job %d: quarantine probe for design %s" job.id
               (String.sub key 0 12));
          None
        | `Quarantined remaining -> Some remaining)
    in
    (match quarantined with None -> tick () | Some _ -> ());
    match quarantined with
    | Some remaining ->
      Done
        (P.error_resp ~code:P.Quarantined ~attempts:job.attempt
           (Printf.sprintf
              "design quarantined after repeated worker loss; next probe in %.0f s"
              (Float.max 1. remaining)))
    | None ->
      let outcome =
        match job.request with
        | P.Sim (_, sj) -> run_sim ctx job ~tick sj
        | P.Campaign (_, cj) -> run_campaign ctx job cj
        | P.Fuzz (_, fj) -> run_fuzz ctx job fj
        | P.Coverage (_, vj) -> run_cov ctx job vj
        | P.Status | P.Shutdown ->
          (* Handled by the connection layer; never scheduled. *)
          Done (P.error_resp ~code:P.Internal "internal: control request reached a worker")
      in
      (match outcome with
       | Done _ ->
         (* Completing at all — even with a job-level error — proves the
            design does not kill workers; close its breaker. *)
         Option.iter (Plan_cache.record_success ctx.cache) job.digest
       | Yielded | Abandoned -> ());
      outcome
  with
  | Abandon -> Abandoned
  | Deadline cycles ->
    (* Not worth retrying: the budget is spent no matter whose fault the
       slowness was.  The spool scratch is discarded — nobody resumes a
       job whose answer is already too late. *)
    discard_scratch ctx job;
    Done
      (P.error_resp ~code:P.Deadline_exceeded ~attempts:job.attempt
         (Printf.sprintf "deadline exceeded after %d cycle(s)" cycles))
  | Chaos.Crash as e ->
    (* Simulated worker death must escape like a real one would. *)
    raise e
  | Failure msg -> Done (P.error_resp ~attempts:job.attempt msg)
  | Invalid_argument msg ->
    Done (P.error_resp ~attempts:job.attempt ("invalid argument: " ^ msg))
  | Sys_error msg -> Done (P.error_resp ~attempts:job.attempt ("i/o error: " ^ msg))
  | e ->
    ctx.log (Printf.sprintf "job %d: unexpected exception %s" job.id (Printexc.to_string e));
    Done (P.error_resp ~code:P.Internal ~attempts:job.attempt
            ("internal error: " ^ Printexc.to_string e))
