type policy = {
  hang_timeout : float;
  grace : float;
  poll : float;
  max_retries : int;
  backoff_base : float;
  backoff_max : float;
}

let default_policy =
  {
    hang_timeout = 30.;
    grace = 1.;
    poll = 0.05;
    max_retries = 3;
    backoff_base = 0.05;
    backoff_max = 2.;
  }

let backoff p ~attempt ~jitter =
  let exp = min p.backoff_max (p.backoff_base *. (2. ** float_of_int (max 0 (attempt - 1)))) in
  exp *. (0.75 +. (0.5 *. jitter))

type 'job slot = {
  sid : int;
  mutable job : 'job option;
  mutable ticking : bool;
  mutable beat_at : float;
  mutable crash_flag : bool;
  mutable cancel_at : float;  (* 0. = not cancelled *)
  mutable retired : bool;
}

type 'job t = {
  pol : policy;
  lock : Mutex.t;
  mutable slots : 'job slot list;
  mutable next_sid : int;
  hangs : int Atomic.t;
  crashes : int Atomic.t;
  wedges : int Atomic.t;
}

let create pol =
  {
    pol;
    lock = Mutex.create ();
    slots = [];
    next_sid = 0;
    hangs = Atomic.make 0;
    crashes = Atomic.make 0;
    wedges = Atomic.make 0;
  }

let policy t = t.pol

let register t =
  Mutex.protect t.lock (fun () ->
      let s =
        {
          sid = t.next_sid;
          job = None;
          ticking = false;
          beat_at = Unix.gettimeofday ();
          crash_flag = false;
          cancel_at = 0.;
          retired = false;
        }
      in
      t.next_sid <- t.next_sid + 1;
      t.slots <- s :: t.slots;
      s)

let start t slot ~ticking job =
  Mutex.protect t.lock (fun () ->
      slot.job <- Some job;
      slot.ticking <- ticking;
      slot.beat_at <- Unix.gettimeofday ();
      slot.cancel_at <- 0.)

(* Lock-free on purpose: one float store per preemption stride.  A torn
   read is impossible on 64-bit and a stale read only delays a hang
   verdict by one poll interval. *)
let beat slot = slot.beat_at <- Unix.gettimeofday ()

let finish t slot =
  Mutex.protect t.lock (fun () ->
      if not slot.retired then begin
        slot.job <- None;
        slot.ticking <- false;
        slot.cancel_at <- 0.
      end)

let crashed t slot = Mutex.protect t.lock (fun () -> slot.crash_flag <- true)

let exited t slot =
  Mutex.protect t.lock (fun () ->
      slot.retired <- true;
      slot.job <- None;
      t.slots <- List.filter (fun s -> s != slot) t.slots)

type 'job loss = {
  slot_id : int;
  job : 'job option;
  kind : [ `Crash | `Hang | `Wedge ];
}

let scan t ~now =
  Mutex.protect t.lock (fun () ->
      let losses = ref [] in
      t.slots <-
        List.filter
          (fun s ->
            if s.crash_flag then begin
              Atomic.incr t.crashes;
              losses := { slot_id = s.sid; job = s.job; kind = `Crash } :: !losses;
              s.retired <- true;
              s.job <- None;
              false
            end
            else
              match s.job with
              | Some j
                when s.ticking && s.cancel_at = 0. && now -. s.beat_at > t.pol.hang_timeout
                ->
                Atomic.incr t.hangs;
                s.cancel_at <- now;
                losses := { slot_id = s.sid; job = Some j; kind = `Hang } :: !losses;
                true
              | Some _ when s.cancel_at > 0. && now -. s.cancel_at > t.pol.grace ->
                (* The job was recovered when the hang was detected; only
                   the worker itself is condemned here. *)
                Atomic.incr t.wedges;
                losses := { slot_id = s.sid; job = None; kind = `Wedge } :: !losses;
                s.retired <- true;
                s.job <- None;
                false
              | _ -> true)
          t.slots;
      List.rev !losses)

let busy t =
  Mutex.protect t.lock (fun () ->
      List.length (List.filter (fun (s : _ slot) -> Option.is_some s.job) t.slots))

let live t = Mutex.protect t.lock (fun () -> List.length t.slots)
let hang_count t = Atomic.get t.hangs
let crash_count t = Atomic.get t.crashes
let wedge_count t = Atomic.get t.wedges
