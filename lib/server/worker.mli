(** Job execution on a worker Domain.

    A {!job} is mutable resume state plus the request: a long simulation
    runs in [preempt_stride]-cycle windows and, when {!Scheduler}
    reports strictly-higher-priority work waiting, captures a
    checkpoint (persisted through the crash-safe {!Gsim_resilience.Store}
    ring in the job's spool directory), records its progress, and
    returns {!Yielded} so the daemon can requeue it — any worker can
    pick it up again and the final state is identical to an
    uninterrupted run (registers, inputs and memories restore exactly;
    combinational values are re-derived on the next step).

    The spool ring is a delta chain: the job's first yield writes a full
    keyframe, later yields append sparse deltas linked by (base cycle,
    base file CRC), and a fresh keyframe re-anchors the chain every few
    deltas.  A job whose [recovered] flag is set (re-admitted from a
    persisted request after a daemon restart) and that has no in-memory
    checkpoint resumes from the newest chain generation that verifies —
    a write torn by the crash just drops recovery back one generation.

    Interactive jobs (priority 0) and campaign/fuzz/coverage jobs never
    yield — campaigns already shard at the request level, which is the
    preemption mechanism for batch analysis traffic.

    Supervision rides on the same stride boundaries: every sim window
    ends in a tick that heartbeats to the daemon's {!Supervisor},
    checks the job's cancel flag, gives the {!Chaos} harness its
    injection point — and, for batch jobs, spools a generation so that
    a worker lost mid-job costs the retry at most one stride of
    progress.  A cancelled attempt returns {!Abandoned}; a chaos crash
    escapes {!execute} entirely, killing the worker Domain the way a
    real crash would. *)

type job = {
  id : int;
  priority : int;  (** scheduler level, 0 = interactive *)
  tenant : string;  (** fairness bucket; {!Scheduler.default_tenant} if unset *)
  deadline : float;
      (** absolute Unix time the answer stops mattering; 0. = none.
          Checked when the job is dispatched and at every stride tick —
          an expired job fails with [Deadline_exceeded] instead of
          burning a worker *)
  request : Protocol.request;
  reply : Protocol.response -> unit;  (** fulfilled exactly once, on completion *)
  mutable attempt : int;  (** 1-based; bumped by {!retry_of} *)
  cancelled : bool Atomic.t;
      (** set by the supervisor when this attempt is presumed hung;
          polled at every tick *)
  mutable ticks : int;  (** stride boundaries crossed — chaos coordinates *)
  mutable digest : string option;
      (** design-text digest, the quarantine breaker's key; set by
          {!execute} before any work runs *)
  mutable done_cycles : int;
  mutable ck : Gsim_engine.Checkpoint.t option;
  mutable recovered : bool;
      (** re-admitted from the daemon's persisted-request spool; enables
          resume from the job's on-disk ring when [ck] is [None] *)
  mutable spool_link : (Gsim_engine.Checkpoint.t * int) option;
      (** newest spooled generation: its state and its file CRC — the
          base link for the next delta *)
  mutable spool_deltas : int;  (** deltas since the last spooled keyframe *)
  mutable preemptions : int;
  mutable cache_hit : bool;
  mutable compile_seconds : float;
}

val make_job :
  id:int ->
  priority:int ->
  ?tenant:string ->
  ?deadline:float ->
  reply:(Protocol.response -> unit) ->
  Protocol.request ->
  job

val retry_of : job -> job
(** A fresh attempt under the same id, [attempt + 1], flagged
    [recovered] so it resumes from the job's on-disk spool ring.  The
    stale attempt (possibly still running on a wedged worker) shares no
    mutable state with it. *)

type context = {
  cache : Gsim_core.Gsim.Compile.plan Plan_cache.t;
  sched : job Scheduler.t;
  spool : string;  (** per-job checkpoint/fuzz/golden scratch root *)
  preempt_stride : int;  (** cycles between preemption checks; <= 0 disables *)
  log : string -> unit;
  chaos : Chaos.t;  (** {!Chaos.off} outside chaos runs *)
  preemption_count : int Atomic.t;
  golden_hits : int Atomic.t;
  golden_misses : int Atomic.t;
}

type outcome = Done of Protocol.response | Yielded | Abandoned

val execute : ?beat:(unit -> unit) -> context -> job -> outcome
(** [beat] is called at every stride tick (the worker's heartbeat).
    Failures become [Done (Error_resp _)]; a supervisor-cancelled
    attempt returns [Abandoned]; only {!Chaos.Crash} escapes, on
    purpose — it simulates the Domain dying. *)

val discard_scratch : context -> job -> unit
(** Remove the job's spool ring and fuzz scratch (give-up cleanup). *)
