type spec = {
  seed : int;
  crash : float;
  hang : float;
  slow : float;
  slow_ms : float;
  torn : float;
  poison : string option;
  busy : float;
  busy_ms : float;
}

let none =
  { seed = 0; crash = 0.; hang = 0.; slow = 0.; slow_ms = 20.; torn = 0.; poison = None;
    busy = 0.; busy_ms = 20. }

let enabled s =
  s.crash > 0. || s.hang > 0. || s.slow > 0. || s.torn > 0. || s.poison <> None
  || s.busy > 0.

let spec_of_string text =
  let prob key v =
    match float_of_string_opt v with
    | Some p when p >= 0. && p <= 1. -> p
    | _ -> failwith (Printf.sprintf "chaos: %s wants a probability in [0,1], got %S" key v)
  in
  String.split_on_char ',' text
  |> List.filter (fun kv -> String.trim kv <> "")
  |> List.fold_left
       (fun s kv ->
         match String.index_opt kv '=' with
         | None -> failwith (Printf.sprintf "chaos: expected key=value, got %S" kv)
         | Some i -> (
           let key = String.trim (String.sub kv 0 i) in
           let v = String.sub kv (i + 1) (String.length kv - i - 1) in
           match key with
           | "seed" -> (
             match int_of_string_opt v with
             | Some seed -> { s with seed }
             | None -> failwith (Printf.sprintf "chaos: bad seed %S" v))
           | "crash" -> { s with crash = prob key v }
           | "hang" -> { s with hang = prob key v }
           | "slow" -> { s with slow = prob key v }
           | "torn" -> { s with torn = prob key v }
           | "slow-ms" -> (
             match float_of_string_opt v with
             | Some ms when ms >= 0. -> { s with slow_ms = ms }
             | _ -> failwith (Printf.sprintf "chaos: bad slow-ms %S" v))
           | "poison" -> { s with poison = (if v = "" then None else Some v) }
           | "busy" -> { s with busy = prob key v }
           | "busy-ms" -> (
             match float_of_string_opt v with
             | Some ms when ms >= 0. -> { s with busy_ms = ms }
             | _ -> failwith (Printf.sprintf "chaos: bad busy-ms %S" v))
           | _ ->
             failwith
               (Printf.sprintf
                  "chaos: unknown key %S (seed, crash, hang, slow, slow-ms, torn, poison, \
                   busy, busy-ms)"
                  key)))
       none

let spec_to_string s =
  let parts = ref [] in
  let addf key v = if v > 0. then parts := Printf.sprintf "%s=%g" key v :: !parts in
  (match s.poison with Some m -> parts := ("poison=" ^ m) :: !parts | None -> ());
  if s.busy > 0. then parts := Printf.sprintf "busy-ms=%g" s.busy_ms :: !parts;
  addf "busy" s.busy;
  addf "torn" s.torn;
  if s.slow > 0. then parts := Printf.sprintf "slow-ms=%g" s.slow_ms :: !parts;
  addf "slow" s.slow;
  addf "hang" s.hang;
  addf "crash" s.crash;
  parts := Printf.sprintf "seed=%d" s.seed :: !parts;
  String.concat "," !parts

type t = {
  spec : spec;
  crashes : int Atomic.t;
  hangs : int Atomic.t;
  torn_count : int Atomic.t;
  slowed : int Atomic.t;
  busy_count : int Atomic.t;
  resp_seq : int Atomic.t;
  slow_seq : int Atomic.t;
}

let create spec =
  {
    spec;
    crashes = Atomic.make 0;
    hangs = Atomic.make 0;
    torn_count = Atomic.make 0;
    slowed = Atomic.make 0;
    busy_count = Atomic.make 0;
    resp_seq = Atomic.make 0;
    slow_seq = Atomic.make 0;
  }

let spec t = t.spec
let off = create none

exception Crash

(* splitmix64 finalizer: decisions are a pure function of
   (seed, site, coordinates), so a run is replayable from its seed no
   matter how Domains and systhreads interleave. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let hash01 ~seed ~site coords =
  let h = ref (mix (Int64.of_int (0x9E3779B9 + seed))) in
  String.iter (fun c -> h := mix (Int64.add !h (Int64.of_int (Char.code c)))) site;
  List.iter (fun i -> h := mix (Int64.logxor !h (Int64.of_int (i + 0x5bd1)))) coords;
  Int64.to_float (Int64.shift_right_logical (mix !h) 11) /. 9007199254740992.

let contains haystack needle =
  let n = String.length haystack and k = String.length needle in
  let rec go i = i + k <= n && (String.sub haystack i k = needle || go (i + 1)) in
  k > 0 && go 0

let poisoned t ~design =
  match t.spec.poison with Some m -> contains design m | None -> false

let at_eval t ~job ~attempt ~tick ~poisoned =
  if not (enabled t.spec) then `Ok
  else if poisoned then begin
    Atomic.incr t.crashes;
    `Crash
  end
  else begin
    let u = hash01 ~seed:t.spec.seed ~site:"eval" [ job; attempt; tick ] in
    if u < t.spec.crash then begin
      Atomic.incr t.crashes;
      `Crash
    end
    else if u < t.spec.crash +. t.spec.hang then begin
      Atomic.incr t.hangs;
      `Hang
    end
    else if u < t.spec.crash +. t.spec.hang +. t.spec.busy then begin
      (* Overload injection: the worker stays healthy (it heartbeats
         before and after the stall) but loses compute, so the queue
         backs up exactly as if the offered load exceeded capacity. *)
      Atomic.incr t.busy_count;
      `Busy (t.spec.busy_ms /. 1000.)
    end
    else `Ok
  end

let torn_response t =
  t.spec.torn > 0.
  &&
  let seq = Atomic.fetch_and_add t.resp_seq 1 in
  let hit = hash01 ~seed:t.spec.seed ~site:"torn" [ seq ] < t.spec.torn in
  if hit then Atomic.incr t.torn_count;
  hit

let io_delay t =
  if t.spec.slow <= 0. then None
  else begin
    let seq = Atomic.fetch_and_add t.slow_seq 1 in
    if hash01 ~seed:t.spec.seed ~site:"slow" [ seq ] < t.spec.slow then begin
      Atomic.incr t.slowed;
      Some (t.spec.slow_ms /. 1000.)
    end
    else None
  end

let tear ~seed ~case frame =
  let n = String.length frame in
  let u k = hash01 ~seed ~site:"tear" [ case; k ] in
  let pick k bound = if bound <= 0 then 0 else int_of_float (u k *. float_of_int bound) in
  if n = 0 then "torn"
  else
    match pick 0 5 with
    | 0 -> String.sub frame 0 (pick 1 n)  (* truncate, possibly to nothing *)
    | 1 ->
      let b = Bytes.of_string frame in
      let i = pick 1 n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl pick 2 8)));
      Bytes.to_string b
    | 2 when n >= 10 ->
      (* Oversize declared length: header promises more payload than follows. *)
      let b = Bytes.of_string frame in
      Bytes.set b 6 (Char.chr (pick 1 256));
      Bytes.set b 7 '\xff';
      Bytes.to_string b
    | 3 when n >= 4 ->
      let b = Bytes.of_string frame in
      Bytes.set b (pick 1 4) (Char.chr (pick 2 256));  (* mangled magic *)
      Bytes.to_string b
    | _ -> String.sub frame 0 (min n (pick 1 16))  (* cut inside the 10-byte header *)

type counters = { crashes : int; hangs : int; torn : int; slowed : int; busied : int }

let counters (t : t) =
  {
    crashes = Atomic.get t.crashes;
    hangs = Atomic.get t.hangs;
    torn = Atomic.get t.torn_count;
    slowed = Atomic.get t.slowed;
    busied = Atomic.get t.busy_count;
  }

let total (t : t) =
  Atomic.get t.crashes + Atomic.get t.hangs + Atomic.get t.torn_count
  + Atomic.get t.slowed + Atomic.get t.busy_count
