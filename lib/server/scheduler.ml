type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queues : 'a Queue.t array;  (* index = priority level, 0 highest *)
  capacity : int;
  mutable is_draining : bool;
}

let levels = 2

let create ?(capacity = 64) () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    queues = Array.init levels (fun _ -> Queue.create ());
    capacity;
    is_draining = false;
  }

let level p = if p < 0 then 0 else if p >= levels then levels - 1 else p

let total t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.queues

let submit t ~priority x =
  Mutex.protect t.lock (fun () ->
      if t.is_draining || total t >= t.capacity then false
      else begin
        Queue.push x t.queues.(level priority);
        Condition.signal t.nonempty;
        true
      end)

let requeue t ~priority x =
  (* Preempted jobs bypass the bound and the drain check: they were
     admitted once and must be allowed to finish. *)
  Mutex.protect t.lock (fun () ->
      Queue.push x t.queues.(level priority);
      Condition.signal t.nonempty)

let take t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if total t > 0 then begin
          let rec pick i =
            if Queue.is_empty t.queues.(i) then pick (i + 1)
            else Queue.pop t.queues.(i)
          in
          Some (pick 0)
        end
        else if t.is_draining then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let higher_waiting t ~than =
  Mutex.protect t.lock (fun () ->
      let limit = level than in
      let rec scan i = i < limit && (not (Queue.is_empty t.queues.(i)) || scan (i + 1)) in
      scan 0)

let drain t =
  Mutex.protect t.lock (fun () ->
      t.is_draining <- true;
      Condition.broadcast t.nonempty)

let draining t = Mutex.protect t.lock (fun () -> t.is_draining)
let queued t = Mutex.protect t.lock (fun () -> total t)
