(* Two priority bands; within each band, weighted deficit-round-robin
   across tenants.  Each tenant owns a FIFO of (cost, job); a band keeps
   a ring of tenants with queued work.  A take visit replenishes the
   tenant's deficit by [quantum × weight] and serves its head job if the
   deficit covers the job's cost — so with unit costs two equal-weight
   tenants split a saturated band ~50/50, and a tenant submitting costly
   jobs is served proportionally less often.  An emptied tenant forfeits
   its deficit (classic DRR: you cannot bank credit while idle). *)

type 'a tenant_q = {
  jobs : (int * 'a) Queue.t;  (* (cost, item) *)
  mutable deficit : int;
  mutable weight : int;
}

type 'a band = {
  tenants : (string, 'a tenant_q) Hashtbl.t;
  ring : string Queue.t;  (* tenants with queued work, round-robin order *)
  mutable size : int;
}

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  bands : 'a band array;
  capacity : int;
  quantum : int;
  tenant_quota : int;  (* max queued per tenant across bands; 0 = unlimited *)
  queued_per_tenant : (string, int) Hashtbl.t;
  mutable is_draining : bool;
}

let levels = 2
let default_tenant = "default"

type verdict = Accepted | Rejected_full | Rejected_quota

let create ?(capacity = 64) ?(quantum = 1) ?(tenant_quota = 0) () =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    bands =
      Array.init levels (fun _ ->
          { tenants = Hashtbl.create 8; ring = Queue.create (); size = 0 });
    capacity;
    quantum = max 1 quantum;
    tenant_quota;
    queued_per_tenant = Hashtbl.create 8;
    is_draining = false;
  }

let level p = if p < 0 then 0 else if p >= levels then levels - 1 else p
let total t = Array.fold_left (fun acc b -> acc + b.size) 0 t.bands

let tenant_count t tenant =
  Option.value ~default:0 (Hashtbl.find_opt t.queued_per_tenant tenant)

(* Costs are clamped so one pathological job cannot starve its own
   tenant behind an unpayable deficit. *)
let clamp_cost c = if c < 1 then 1 else if c > 1024 then 1024 else c

let enqueue_locked t ~priority ~tenant ~weight ~cost x =
  let band = t.bands.(level priority) in
  let q =
    match Hashtbl.find_opt band.tenants tenant with
    | Some q -> q
    | None ->
      let q = { jobs = Queue.create (); deficit = 0; weight = 1 } in
      Hashtbl.replace band.tenants tenant q;
      q
  in
  (match weight with Some w when w >= 1 -> q.weight <- w | _ -> ());
  if Queue.is_empty q.jobs then Queue.push tenant band.ring;
  Queue.push (clamp_cost cost, x) q.jobs;
  band.size <- band.size + 1;
  Hashtbl.replace t.queued_per_tenant tenant (tenant_count t tenant + 1);
  Condition.signal t.nonempty

let submit t ~priority ?(tenant = default_tenant) ?weight ?(cost = 1) x =
  Mutex.protect t.lock (fun () ->
      if t.is_draining || total t >= t.capacity then Rejected_full
      else if t.tenant_quota > 0 && tenant_count t tenant >= t.tenant_quota then
        Rejected_quota
      else begin
        enqueue_locked t ~priority ~tenant ~weight ~cost x;
        Accepted
      end)

let requeue t ~priority ?(tenant = default_tenant) ?(cost = 1) x =
  (* Preempted jobs bypass the bound, the quota and the drain check:
     they were admitted once and must be allowed to finish.  They rejoin
     at the back of their tenant's FIFO, so equal-priority peers of the
     same tenant are not starved, and DRR keeps other tenants whole. *)
  Mutex.protect t.lock (fun () ->
      enqueue_locked t ~priority ~tenant ~weight:None ~cost x)

let take_band t band =
  (* Terminates: every full ring rotation adds quantum × weight ≥ 1 to
     the visited tenant's deficit while costs are clamped, so some head
     job becomes payable after finitely many rotations. *)
  let rec visit () =
    match Queue.take_opt band.ring with
    | None -> None
    | Some tenant ->
      let q = Hashtbl.find band.tenants tenant in
      q.deficit <- q.deficit + (t.quantum * q.weight);
      let cost, x = Queue.peek q.jobs in
      if q.deficit >= cost then begin
        ignore (Queue.pop q.jobs);
        q.deficit <- q.deficit - cost;
        band.size <- band.size - 1;
        if Queue.is_empty q.jobs then q.deficit <- 0 else Queue.push tenant band.ring;
        let n = tenant_count t tenant - 1 in
        if n <= 0 then Hashtbl.remove t.queued_per_tenant tenant
        else Hashtbl.replace t.queued_per_tenant tenant n;
        Some x
      end
      else begin
        Queue.push tenant band.ring;
        visit ()
      end
  in
  visit ()

let take t =
  Mutex.protect t.lock (fun () ->
      let rec wait () =
        if total t > 0 then begin
          let rec pick i =
            match take_band t t.bands.(i) with
            | Some x -> Some x
            | None -> if i + 1 < levels then pick (i + 1) else None
          in
          pick 0
        end
        else if t.is_draining then None
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
      in
      wait ())

let higher_waiting t ~than =
  Mutex.protect t.lock (fun () ->
      let limit = level than in
      let rec scan i = i < limit && (t.bands.(i).size > 0 || scan (i + 1)) in
      scan 0)

let drain t =
  Mutex.protect t.lock (fun () ->
      t.is_draining <- true;
      Condition.broadcast t.nonempty)

let draining t = Mutex.protect t.lock (fun () -> t.is_draining)
let queued t = Mutex.protect t.lock (fun () -> total t)

let queued_at t ~priority =
  Mutex.protect t.lock (fun () -> t.bands.(level priority).size)

let queued_for t tenant = Mutex.protect t.lock (fun () -> tenant_count t tenant)

let tenants t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.queued_per_tenant []
      |> List.sort compare)
