(** Seeded fault injection for gsimd.

    One [Chaos.t] is shared by the daemon, its workers and its
    connection threads; every injection decision is a pure hash of the
    spec's seed and the coordinates of the injection site (job id,
    attempt, tick, response sequence number), never of wall-clock time
    or a shared PRNG cursor.  Two runs with the same seed and the same
    job ids therefore inject the same faults at the same points even
    though thread interleaving differs — which is what lets the chaos
    acceptance test compare a chaotic run against a calm one
    byte-for-byte, and lets a failure seen in CI be replayed locally
    from the seed printed in the log.

    Faults injected:
    - [crash]: the worker Domain dies mid-job ({!Crash} escapes every
      handler in {!Worker.execute});
    - [hang]: the worker stops heartbeating and spins until the
      supervisor cancels it;
    - [torn]: a response frame is cut mid-payload and the connection
      closed, as if the daemon died while writing;
    - [slow]: a response write stalls for [slow_ms] first;
    - [poison]: any design whose text contains the marker crashes its
      worker at the first evaluation tick, every attempt — the
      poisoned-plan input for the {!Plan_cache} quarantine breaker. *)

type spec = {
  seed : int;
  crash : float;  (** per-tick probability a worker crashes *)
  hang : float;   (** per-tick probability a worker hangs *)
  slow : float;   (** per-response probability of a stalled write *)
  slow_ms : float;  (** stall duration, milliseconds *)
  torn : float;   (** per-response probability of a torn frame *)
  poison : string option;
      (** designs containing this substring always crash their worker *)
  busy : float;   (** per-tick probability of a compute stall — the
                      overload injection: workers stay healthy but lose
                      throughput, so backlog builds deterministically *)
  busy_ms : float;  (** compute-stall duration, milliseconds *)
}

val none : spec
(** All probabilities zero, no poison marker: injection disabled. *)

val enabled : spec -> bool

val spec_of_string : string -> spec
(** Parses
    ["seed=42,crash=0.1,hang=0.05,slow=0.02,slow-ms=50,torn=0.01,poison=MARK,busy=0.5,busy-ms=30"];
    every key optional, [""] means {!none}.  Raises [Failure] on an
    unknown key or a malformed value. *)

val spec_to_string : spec -> string

type t

val create : spec -> t
val spec : t -> spec

val off : t
(** [create none]: the always-quiet instance contexts default to. *)

exception Crash
(** Simulated worker death.  Deliberately escapes {!Worker.execute}'s
    failure handlers so it kills the worker Domain the way a real
    segfaulting plan or runaway allocation would. *)

val hash01 : seed:int -> site:string -> int list -> float
(** The decision function, exposed so tests can predict injections:
    a uniform float in [0, 1) from (seed, site tag, coordinates). *)

val poisoned : t -> design:string -> bool
(** Does the design text contain the poison marker? *)

val at_eval :
  t ->
  job:int ->
  attempt:int ->
  tick:int ->
  poisoned:bool ->
  [ `Ok | `Crash | `Hang | `Busy of float ]
(** One worker evaluation tick.  A poisoned design always crashes.
    [`Busy s] asks the worker to stall for [s] seconds while staying
    supervised — the overload injection. *)

val torn_response : t -> bool
(** Decide (and count) whether to tear the next response frame. *)

val io_delay : t -> float option
(** Decide (and count) a stalled write; returns the stall in seconds. *)

val tear : seed:int -> case:int -> string -> string
(** Deterministically mutilate a wire frame: truncate it, flip a bit,
    corrupt the length field, or mangle the magic — the corpus driver
    for the protocol fuzz test and the daemon's torn-frame injection. *)

type counters = { crashes : int; hangs : int; torn : int; slowed : int; busied : int }

val counters : t -> counters
val total : t -> int
