(** Ahead-of-time native backend.

    Serializes a circuit's narrow expression nodes to C
    ({!Gsim_emit.Emit_c}), shells out to [cc -O2 -shared -fPIC], binds
    the resulting shared object via [dlopen], and exposes each node's
    generated function as an evaluator over the runtime's narrow arena —
    bit-identical to the interpreted backends by construction.

    Compiled objects are cached on disk keyed by the MD5 of the canonical
    IR text (the same serialization {!Gsim.Compile} hashes) plus the
    emitter's ABI version, and memoized in-process: daemon workers and
    repeated jobs on the same circuit share one warm handle with no
    compiler or filesystem traffic.  Handles are never [dlclose]d (live
    evaluators capture table entries); the memo bounds the leak to one
    handle per distinct circuit per process.

    Environment switches, re-read on every call so tests can flip them:
    - [GSIM_NATIVE=off] disables the backend (forces the fallback ladder);
    - [GSIM_CC] overrides compiler discovery (default: first of [cc],
      [gcc], [clang] on [PATH]);
    - [GSIM_NATIVE_CACHE] overrides the cache directory (default:
      [$XDG_CACHE_HOME/gsim/native], then [$HOME/.cache/gsim/native],
      then a temp-dir fallback);
    - [GSIM_CC_TIMEOUT] caps one [cc] run in seconds (default 120).
      Past the deadline the compiler driver gets SIGTERM (which cc
      forwards to its cc1/as/ld children) then SIGKILL; the job falls
      back to the bytecode interpreter with a one-line diagnostic;
    - [GSIM_NATIVE_CACHE_MB] bounds the on-disk object cache in MiB
      (default 512; 0 = unlimited).  After each fresh compile, cold
      digests (LRU by mtime; disk hits refresh recency) are evicted
      until the cache fits. *)

open Gsim_ir

type unit_t = {
  digest : string;         (** cache key: MD5 of ABI tag + canonical IR *)
  so_path : string;        (** cached shared object *)
  c_path : string;         (** generated source, kept for inspection/CI *)
  fns : int array;         (** per node id: tagged fn pointer, 0 = none *)
  compiled_nodes : int;
}

(** How {!load} satisfied the request: in-process memo, on-disk object
    (no [cc] run), or a fresh compile. *)
type origin = Memo_hit | Disk_hit | Compiled

val available : unit -> bool
(** The backend can run: not disabled via [GSIM_NATIVE=off] and a C
    compiler is present. *)

val cache_dir : unit -> string

val load : Circuit.t -> (unit_t * origin) option
(** Emit, compile (or reuse a cached object), and bind the circuit's
    native unit.  [None] when the backend is disabled, no compiler is
    found, or compilation/binding fails — callers degrade to an
    interpreted backend.  Failures print a one-line diagnostic and are
    memoized per circuit, so a broken toolchain is probed once. *)

val has_fn : unit_t -> int -> bool
(** The unit contains a generated function for this node id. *)

val node_evaluator : unit_t -> Runtime.t -> int -> unit -> bool
(** Evaluate one node through its generated function: stores the result
    in the node's arena slot and reports change — a drop-in replacement
    for {!Runtime.node_evaluator}.  Raises [Invalid_argument] if the
    node has no native function (check {!has_fn}). *)

val run_step : unit_t -> Runtime.t -> int array -> unit -> int
(** One step evaluating a dense run of node ids back-to-back inside C
    (a single stub call), returning the changed count — the native
    analogue of a fused bytecode segment. *)

type stats = {
  mutable compiles : int;
  mutable disk_hits : int;
  mutable memo_hits : int;
  mutable failures : int;
  mutable timeouts : int;  (** [cc] runs killed at [GSIM_CC_TIMEOUT] *)
  mutable evictions : int;  (** cached objects removed by the disk quota *)
}

val stats : stats
(** Process-wide counters, exposed for tests and benches. *)

val prune_cache : ?keep:string -> string -> unit
(** Enforce [GSIM_NATIVE_CACHE_MB] over a cache directory, evicting
    [.so]/[.c] pairs oldest-first ([keep] is never evicted).  Called
    automatically after each fresh compile; exposed for tests. *)
