(* Ahead-of-time native backend: emit C for a circuit's expression nodes
   (Emit_c), compile it to a shared object, dlopen it, and expose the
   per-node functions as evaluators over the runtime's arenas (narrow
   int arena plus the wide Bits.t arena, whose limb words the generated
   code mutates in place).

   Compiled objects are cached on disk keyed by a digest of the canonical
   IR text (the same serialization Gsim.Compile hashes) plus the emitter
   ABI version, and memoized in-process so concurrent daemon workers and
   repeated jobs reuse one warm handle without touching the compiler or
   the filesystem. *)

open Gsim_ir
module Emit_c = Gsim_emit.Emit_c

external dlopen_so : string -> nativeint = "gsim_native_dlopen"
external load_table : nativeint -> int -> int array = "gsim_native_load_table"

(* [@@noalloc] keeps every domain out of safepoints while C runs, so the
   raw arena pointers the stubs pass stay valid for the whole call. *)
external call : int -> int array -> Bytes.t -> Gsim_bits.Bits.t array -> int
  = "gsim_native_call"
  [@@noalloc]

external run : int array -> int array -> Bytes.t -> Gsim_bits.Bits.t array -> int
  = "gsim_native_run"
  [@@noalloc]

type unit_t = {
  digest : string;
  so_path : string;
  c_path : string;
  fns : int array;  (* per node id: tagged function pointer, 0 = none *)
  compiled_nodes : int;
}

type origin = Memo_hit | Disk_hit | Compiled

(* ------------------------------------------------------------------ *)
(* Environment switches                                                *)
(* ------------------------------------------------------------------ *)

(* GSIM_NATIVE=off disables the backend entirely (tests and the
   no-compiler CI job use it to exercise the fallback ladder).
   GSIM_CC overrides compiler discovery; both are re-read on every call
   so a test can flip them at runtime. *)
let enabled () =
  match Sys.getenv_opt "GSIM_NATIVE" with
  | Some ("off" | "0" | "no" | "false") -> false
  | _ -> true

let path_search exe =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some path ->
    String.split_on_char ':' path
    |> List.find_map (fun dir ->
           if dir = "" then None
           else
             let p = Filename.concat dir exe in
             if Sys.file_exists p then Some p else None)

(* Discovery result for the default (no GSIM_CC) case, memoized: probing
   PATH once per process is enough. *)
let discovered = ref None

let find_compiler () =
  match Sys.getenv_opt "GSIM_CC" with
  | Some "" -> None
  | Some cc -> Some cc
  | None -> (
    match !discovered with
    | Some r -> r
    | None ->
      let r = List.find_map path_search [ "cc"; "gcc"; "clang" ] in
      discovered := Some r;
      r)

let available () = enabled () && find_compiler () <> None

(* ------------------------------------------------------------------ *)
(* Disk cache                                                          *)
(* ------------------------------------------------------------------ *)

let cache_dir () =
  match Sys.getenv_opt "GSIM_NATIVE_CACHE" with
  | Some d when d <> "" -> d
  | _ -> (
    let sub base = Filename.concat base (Filename.concat "gsim" "native") in
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> sub d
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> sub (Filename.concat h ".cache")
      | _ -> Filename.concat (Filename.get_temp_dir_name ()) "gsim-native"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let digest_of c =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "gsim-native-abi%d\n%s" Emit_c.abi_version (Ir_text.to_string c)))

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  mutable compiles : int;
  mutable disk_hits : int;
  mutable memo_hits : int;
  mutable failures : int;
  mutable timeouts : int;
  mutable evictions : int;
}

let stats =
  { compiles = 0; disk_hits = 0; memo_hits = 0; failures = 0; timeouts = 0; evictions = 0 }

(* GSIM_NATIVE_CACHE_MB bounds the on-disk object cache (default
   512 MiB; 0 = unlimited).  Eviction is LRU by the .so's mtime, which
   [load_uncached] refreshes on every disk hit. *)
let cache_quota_bytes () =
  match Sys.getenv_opt "GSIM_NATIVE_CACHE_MB" with
  | Some s -> (
    match int_of_string_opt s with
    | Some mb when mb >= 0 -> mb * 1024 * 1024
    | _ -> 512 * 1024 * 1024)
  | None -> 512 * 1024 * 1024

let file_size path = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0

let prune_cache ?keep dir =
  let quota = cache_quota_bytes () in
  if quota > 0 then begin
    let entries =
      (try Array.to_list (Sys.readdir dir) with Sys_error _ -> [])
      |> List.filter_map (fun f ->
             if not (Filename.check_suffix f ".so") then None
             else
               let digest = Filename.chop_suffix f ".so" in
               let so = Filename.concat dir f in
               let c = Filename.concat dir (digest ^ ".c") in
               match Unix.stat so with
               | st -> Some (st.Unix.st_mtime, digest, st.Unix.st_size + file_size c)
               | exception Unix.Unix_error _ -> None)
    in
    let total = List.fold_left (fun a (_, _, b) -> a + b) 0 entries in
    if total > quota then begin
      let excess = ref (total - quota) in
      List.iter
        (fun (_, digest, bytes) ->
          if !excess > 0 && keep <> Some digest then begin
            (try Sys.remove (Filename.concat dir (digest ^ ".so")) with Sys_error _ -> ());
            (try Sys.remove (Filename.concat dir (digest ^ ".c")) with Sys_error _ -> ());
            excess := !excess - bytes;
            stats.evictions <- stats.evictions + 1
          end)
        (List.sort compare entries)
    end
  end

(* ------------------------------------------------------------------ *)
(* Compile + load                                                      *)
(* ------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* How long a single cc run may take before it is killed.  A compiler
   driven into pathological behaviour by generated code (or a wedged
   distcc wrapper) must not hold a worker hostage: the job falls back to
   the bytecode interpreter instead. *)
let cc_timeout_seconds () =
  match Sys.getenv_opt "GSIM_CC_TIMEOUT" with
  | Some s -> ( match float_of_string_opt s with Some t when t > 0. -> t | _ -> 120.)
  | None -> 120.

(* Run [cmd] through the shell with a kill-on-timeout guard.
   [Unix.create_process] rather than [Unix.fork]: workers are domains,
   and OCaml 5 forbids fork once domains exist (create_process spawns
   without forking the runtime).  On timeout the driver gets SIGTERM —
   cc/gcc/clang drivers forward it to their cc1/as/ld children and clean
   up — then SIGKILL after a short grace.  Returns the shell's exit
   status, or [Error] on timeout. *)
let run_guarded cmd ~timeout =
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close null)
      (fun () ->
        Unix.create_process "/bin/sh"
          [| "/bin/sh"; "-c"; cmd |]
          null Unix.stdout Unix.stderr)
  in
  let deadline = Unix.gettimeofday () +. timeout in
  let rec reap () =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED rc -> rc
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 128
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
    | exception Unix.Unix_error _ -> 127
  in
  let rec wait () =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ ->
      if Unix.gettimeofday () > deadline then begin
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        Unix.sleepf 0.1;
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (reap ());
        Error ()
      end
      else begin
        Unix.sleepf 0.02;
        wait ()
      end
    | _, Unix.WEXITED rc -> Ok rc
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> Ok 128
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    | exception Unix.Unix_error _ -> Ok 127
  in
  wait ()

let compile_so ~cc ~c_path ~so_path =
  (* Build into a pid-unique temp and rename: concurrent processes
     compiling the same digest race benignly (rename is atomic and both
     objects are identical). *)
  let tmp = Printf.sprintf "%s.%d.tmp" so_path (Unix.getpid ()) in
  let log = tmp ^ ".log" in
  let cmd =
    Printf.sprintf "%s -O2 -shared -fPIC -o %s %s 2> %s" cc (Filename.quote tmp)
      (Filename.quote c_path) (Filename.quote log)
  in
  let timeout = cc_timeout_seconds () in
  match run_guarded cmd ~timeout with
  | Error () ->
    stats.timeouts <- stats.timeouts + 1;
    (try Sys.remove log with Sys_error _ -> ());
    (try Sys.remove tmp with Sys_error _ -> ());
    Error
      (Printf.sprintf "cc timed out after %.0f s and was killed; using the interpreter"
         timeout)
  | Ok rc ->
    let diag =
      if rc = 0 then ""
      else
        try
          let ic = open_in log in
          let line = try input_line ic with End_of_file -> "" in
          close_in ic;
          line
        with Sys_error _ -> ""
    in
    (try Sys.remove log with Sys_error _ -> ());
    if rc <> 0 then begin
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "cc exited %d%s" rc (if diag = "" then "" else ": " ^ diag))
    end
    else begin
      Sys.rename tmp so_path;
      Ok ()
    end

let bind_so ~digest ~so_path ~c_path ~compiled_nodes =
  let handle = dlopen_so so_path in
  let fns = load_table handle Emit_c.abi_version in
  { digest; so_path; c_path; fns; compiled_nodes }

(* Process-wide memo: digest -> unit.  Negative results (compile/bind
   failures) are memoized too, so a broken compiler is probed once per
   circuit rather than once per engine instance. *)
let memo : (string, unit_t option) Hashtbl.t = Hashtbl.create 16
let memo_lock = Mutex.create ()

let load_uncached c digest =
  match find_compiler () with
  | None -> None
  | Some cc ->
    let dir = cache_dir () in
    (try mkdir_p dir with Unix.Unix_error _ | Sys_error _ -> ());
    let so_path = Filename.concat dir (digest ^ ".so") in
    let c_path = Filename.concat dir (digest ^ ".c") in
    if Sys.file_exists so_path then begin
      (* Skip emission entirely: only the per-node gate is needed to
         report how many nodes the cached object covers. *)
      let compiled_nodes =
        Circuit.fold_nodes c ~init:0 ~f:(fun acc nd ->
            if Emit_c.compilable c nd then acc + 1 else acc)
      in
      try
        let u = bind_so ~digest ~so_path ~c_path ~compiled_nodes in
        stats.disk_hits <- stats.disk_hits + 1;
        (* Refresh recency so the quota pruner evicts cold digests first. *)
        (try Unix.utimes so_path 0. 0. with Unix.Unix_error _ -> ());
        Some u
      with Failure msg ->
        stats.failures <- stats.failures + 1;
        prerr_endline ("gsim: native backend: stale cache object: " ^ msg);
        None
    end
    else begin
      let r = Emit_c.emit c in
      try
        write_file c_path r.Emit_c.source;
        match compile_so ~cc ~c_path ~so_path with
        | Error msg ->
          stats.failures <- stats.failures + 1;
          prerr_endline ("gsim: native backend: " ^ msg);
          None
        | Ok () ->
          let u =
            bind_so ~digest ~so_path ~c_path ~compiled_nodes:r.Emit_c.compiled_nodes
          in
          stats.compiles <- stats.compiles + 1;
          prune_cache ~keep:digest dir;
          Some u
      with
      | Failure msg | Sys_error msg ->
        stats.failures <- stats.failures + 1;
        prerr_endline ("gsim: native backend: " ^ msg);
        None
    end

let load c =
  if not (enabled ()) then None
  else
    let digest = digest_of c in
    Mutex.protect memo_lock (fun () ->
        match Hashtbl.find_opt memo digest with
        | Some (Some u) ->
          stats.memo_hits <- stats.memo_hits + 1;
          Some (u, Memo_hit)
        | Some None -> None
        | None ->
          let first_compile = stats.compiles in
          let u = load_uncached c digest in
          Hashtbl.replace memo digest u;
          (match u with
           | Some u ->
             Some (u, if stats.compiles > first_compile then Compiled else Disk_hit)
           | None -> None))

(* ------------------------------------------------------------------ *)
(* Evaluator surface                                                   *)
(* ------------------------------------------------------------------ *)

let has_fn u id = id < Array.length u.fns && u.fns.(id) <> 0

let node_evaluator u rt id =
  let fn = u.fns.(id) in
  if fn = 0 then invalid_arg "Native.node_evaluator: node has no native function";
  let arena = Runtime.narrow_values rt in
  let wflat = Runtime.wide_flat rt in
  let wide = Runtime.wide_values rt in
  fun () -> call fn arena wflat wide <> 0

let run_step u rt ids =
  let fns =
    Array.map
      (fun id ->
        let fn = u.fns.(id) in
        if fn = 0 then invalid_arg "Native.run_step: node has no native function";
        fn)
      ids
  in
  let arena = Runtime.narrow_values rt in
  let wflat = Runtime.wide_flat rt in
  let wide = Runtime.wide_values rt in
  fun () -> run fns arena wflat wide
