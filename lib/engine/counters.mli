(** Per-simulation event counters.

    These are the observable quantities of the paper's overhead model
    [T = ((E + A_succ) * af + A_exam) * N]: node evaluations (active
    nodes), active-bit examinations, successor activations, and register
    traffic. *)

type t = {
  mutable cycles : int;
  mutable evals : int;         (** node evaluations performed ("active node") *)
  mutable changed : int;       (** evaluations whose value changed *)
  mutable exams : int;         (** active-bit examinations ([A_exam] events) *)
  mutable activations : int;   (** successor activations ([A_succ] events) *)
  mutable reg_commits : int;   (** registers actually latched with a new value *)
  mutable reset_checks : int;  (** reset-signal examinations *)
  mutable instrs : int;
      (** static bytecode stream length dispatched per evaluation
          (short-circuit [case] instructions may skip past part of it, so
          retired counts can be lower); zero under the closure and native
          backends *)
  mutable backend : string;
      (** the backend that actually ran ("closures" / "bytecode" /
          "native"), set by engines at build time from the resolved
          {!Eval.selected} — observable proof of what [`Auto] or a
          fallback picked.  Empty on the reference engine; not reset by
          {!clear}. *)
  mutable native_cache : string;
      (** under the native backend: ["hit"] when the compiled [.so] came
          from the in-process memo or the disk cache (no [cc] run),
          ["miss"] on a fresh compile; empty otherwise.  Not reset by
          {!clear}. *)
}

val create : unit -> t

val clear : t -> unit

val activity_factor : t -> total_nodes:int -> float
(** Mean fraction of evaluated nodes per cycle. *)

val to_json : t -> string
(** One flat JSON object with every counter field — the CLI embeds it in
    its [--json] output so bench tooling can script the counters.
    [instrs] appears only when nonzero and [backend]/[native_cache] only
    when set, keeping reference-engine output unchanged. *)

val pp : Format.formatter -> t -> unit
