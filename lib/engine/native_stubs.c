/* Stubs binding the native backend's generated .so files.
 *
 * The generated code (lib/emit/emit_c.ml) exports a per-node-id table of
 * `long (*)(long *, long *, long *)` functions operating on the
 * runtime's three arenas: the narrow int arena, the wide flat mirror
 * (a Bytes.t of raw 64-bit limbs at compile-time offsets) and the
 * wide Bits.t arena
 * (whose limb words the generated code rewrites on change, keeping the
 * mirror and the boxed view identical).  Passing raw heap
 * pointers is sound because the calls are [@@noalloc]: no safepoint is
 * reached while C runs, so neither arena moves.  Function pointers are
 * at least 2-aligned on every supported target, so a pointer can be
 * smuggled through an OCaml `int array` as the word `ptr | 1` — a valid
 * immediate that needs no boxing and no finalizer.  The hot-path stubs
 * below recover the pointer with `word & ~1` and call it; they are safe
 * to run from multiple domains on disjoint arena regions.
 *
 * Handles are never dlclose()d: realized evaluators capture table
 * entries, and a unit stays reusable for the life of the process (the
 * per-circuit memo in native.ml bounds the leak to one handle per
 * distinct circuit). */

#include <dlfcn.h>
#include <string.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>

typedef long (*gsim_fn_t)(long *, long *, long *);

CAMLprim value gsim_native_dlopen(value path)
{
  CAMLparam1(path);
  /* Copy the path out of the heap: caml_failwith below may allocate. */
  char buf[4096];
  strncpy(buf, String_val(path), sizeof(buf) - 1);
  buf[sizeof(buf) - 1] = '\0';
  void *h = dlopen(buf, RTLD_NOW | RTLD_LOCAL);
  if (h == NULL) {
    const char *err = dlerror();
    caml_failwith(err ? err : "dlopen failed");
  }
  CAMLreturn(caml_copy_nativeint((intnat)h));
}

/* Load the generated table into an OCaml int array: element i is the
   tagged function pointer `fn | 1`, or Val_long(0) when node i has no
   native function.  Fails (-> fallback in native.ml) on a missing
   symbol, an ABI version mismatch, or a misaligned function pointer. */
CAMLprim value gsim_native_load_table(value handle, value abi_version)
{
  CAMLparam2(handle, abi_version);
  CAMLlocal1(arr);
  void *h = (void *)Nativeint_val(handle);
  long *abi = (long *)dlsym(h, "gsim_abi_version");
  if (abi == NULL) caml_failwith("gsim_table: missing gsim_abi_version");
  if (*abi != Long_val(abi_version)) caml_failwith("gsim_table: ABI version mismatch");
  long *count = (long *)dlsym(h, "gsim_node_count");
  if (count == NULL) caml_failwith("gsim_table: missing gsim_node_count");
  gsim_fn_t *table = (gsim_fn_t *)dlsym(h, "gsim_table");
  if (table == NULL) caml_failwith("gsim_table: missing gsim_table");
  long n = *count;
  if (n < 0) caml_failwith("gsim_table: negative node count");
  arr = caml_alloc(n, 0);  /* n longs, all immediates: tag 0 array of ints */
  for (long i = 0; i < n; i++) {
    gsim_fn_t fn = table[i];
    if (fn == NULL) {
      Field(arr, i) = Val_long(0);
    } else {
      if (((uintnat)fn & 1) != 0)
        caml_failwith("gsim_table: misaligned function pointer");
      Field(arr, i) = (value)((uintnat)fn | 1);
    }
  }
  CAMLreturn(arr);
}

/* Evaluate one node: `fnw` is a tagged function pointer from the table
   (must be nonzero as an OCaml int); `wflat` is the flat limb mirror
   (a Bytes.t of raw 64-bit limbs), `wide` the Bits.t arena. */
CAMLprim value gsim_native_call(value fnw, value arena, value wflat, value wide)
{
  gsim_fn_t fn = (gsim_fn_t)((uintnat)fnw & ~(uintnat)1);
  return Val_long(fn((long *)arena, (long *)Bytes_val(wflat), (long *)wide));
}

/* Evaluate a dense run of nodes: `fns` is an int array of tagged
   function pointers; returns the summed changed count. */
CAMLprim value gsim_native_run(value fns, value arena, value wflat, value wide)
{
  long total = 0;
  mlsize_t n = Wosize_val(fns);
  long *a = (long *)arena;
  long *wf = (long *)Bytes_val(wflat);
  long *wd = (long *)wide;
  value *f = (value *)fns;
  for (mlsize_t i = 0; i < n; i++)
    total += ((gsim_fn_t)((uintnat)f[i] & ~(uintnat)1))(a, wf, wd);
  return Val_long(total);
}
