module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  c : Circuit.t;
  narrow : int array;
  wide : Bits.t array;
  is_wide : bool array;
  (* Flat mirror of the wide arena: every wide node owns a contiguous
     region of raw little-endian 64-bit limbs at offset [woff.(id)]
     (layout from [Emit_c.wide_offsets]; a [Bytes.t] is never scanned
     by the GC, so the limbs carry no tag bits).  The native backend
     loads wide operands from here by direct indexed reads; [set_wide]
     keeps it identical to the boxed slots. *)
  woff : int array;
  wflat : Bytes.t;
  mem_narrow : int array array;
  mem_wide : Bits.t array array;
  mem_is_wide : bool array;
  (* Force overrides (fault injection): while [forced.(id)] the arena slot
     always holds [(computed land lnot mask) lor value]; every writer of
     the slot must re-apply the override (see [guard] and [poke]). *)
  forced : bool array;
  fmask_n : int array;  (* packed mask, narrow nodes *)
  fval_n : int array;   (* packed value, pre-masked *)
  fwide : (int, Bits.t * Bits.t) Hashtbl.t;  (* id -> mask, pre-masked value *)
  (* Memory-word write barrier (delta checkpointing).  While [track_mem]
     is set, every committed store records its word in a per-memory
     dirty set: a bitmap for O(1) dedup plus an index vector so draining
     costs O(dirty), not O(depth).  All memory writes funnel through
     this module ([write_committer], [load_mem]) on every engine and
     backend, so the set is complete by construction. *)
  mutable track_mem : bool;
  dirty_bits : Bytes.t array;  (* per memory: depth bits *)
  mutable dirty_words : int array array;  (* per memory: index vector *)
  dirty_len : int array;  (* per memory: live prefix of the vector *)
}

let circuit t = t.c

let wide_node w = w > 62

(* The one store path for wide slots: blit into the slot's permanent
   buffer and mirror the limbs into the flat arena.  Keeping both views
   in lockstep is what lets generated code read wide operands without
   chasing the boxed representation. *)
let set_wide t id v =
  Bits.unsafe_blit ~src:v ~dst:t.wide.(id);
  let off = t.woff.(id) in
  let wflat = t.wflat in
  for j = 0 to ((Bits.width v + 63) / 64) - 1 do
    Bytes.set_int64_le wflat ((off + j) * 8) (Bits.limb64 v j)
  done

let create ?(extra_slots = 0) c =
  let n = Circuit.max_id c in
  (* [extra_slots] extends the narrow arena past the node ids: the bytecode
     backend allocates its constants and expression stacks there so fused
     programs address one flat array.  Nothing else ever touches indices
     >= [n]. *)
  let narrow = Array.make (n + extra_slots) 0 in
  let wide = Array.make n (Bits.zero 1) in
  let is_wide = Array.make n false in
  Circuit.iter_nodes c (fun nd ->
      if wide_node nd.Circuit.width then begin
        is_wide.(nd.Circuit.id) <- true;
        wide.(nd.Circuit.id) <- Bits.zero nd.Circuit.width
      end);
  let mems = Circuit.memories c in
  let mem_is_wide = Array.map (fun m -> wide_node m.Circuit.mem_width) mems in
  let mem_narrow =
    Array.map
      (fun (m : Circuit.memory) ->
        if wide_node m.mem_width then [||] else Array.make m.depth 0)
      mems
  in
  let mem_wide =
    Array.map
      (fun (m : Circuit.memory) ->
        if wide_node m.mem_width then Array.make m.depth (Bits.zero m.mem_width) else [||])
      mems
  in
  let woff, wlen = Gsim_emit.Emit_c.wide_offsets c in
  let t =
    {
      c;
      narrow;
      wide;
      is_wide;
      woff;
      wflat = Bytes.make (max (8 * wlen) 8) '\000';
      mem_narrow;
      mem_wide;
      mem_is_wide;
      forced = Array.make (max n 1) false;
      fmask_n = Array.make (max n 1) 0;
      fval_n = Array.make (max n 1) 0;
      fwide = Hashtbl.create 8;
      track_mem = false;
      dirty_bits =
        Array.map
          (fun (m : Circuit.memory) -> Bytes.make ((m.depth + 7) / 8) '\000')
          mems;
      dirty_words = Array.map (fun _ -> [||]) mems;
      dirty_len = Array.make (max (Array.length mems) 1) 0;
    }
  in
  List.iter
    (fun (r : Circuit.register) ->
      if is_wide.(r.read) then set_wide t r.read r.init
      else narrow.(r.read) <- Bits.to_packed r.init)
    (Circuit.registers c);
  t

(* ------------------------------------------------------------------ *)
(* Memory-word dirty tracking                                          *)
(* ------------------------------------------------------------------ *)

let mark_dirty t mi a =
  let bits = t.dirty_bits.(mi) in
  let byte = a lsr 3 and bit = a land 7 in
  let b = Char.code (Bytes.unsafe_get bits byte) in
  if b land (1 lsl bit) = 0 then begin
    Bytes.unsafe_set bits byte (Char.unsafe_chr (b lor (1 lsl bit)));
    let len = t.dirty_len.(mi) in
    let vec = t.dirty_words.(mi) in
    let vec =
      if len >= Array.length vec then begin
        let nv = Array.make (max 16 (2 * Array.length vec)) 0 in
        Array.blit vec 0 nv 0 len;
        t.dirty_words.(mi) <- nv;
        nv
      end
      else vec
    in
    Array.unsafe_set vec len a;
    t.dirty_len.(mi) <- len + 1
  end

let set_mem_tracking t on =
  if on && not t.track_mem then begin
    (* Drop stale marks from a previous tracking episode. *)
    Array.iteri
      (fun mi bits ->
        if t.dirty_len.(mi) > 0 then begin
          Bytes.fill bits 0 (Bytes.length bits) '\000';
          t.dirty_len.(mi) <- 0
        end)
      t.dirty_bits
  end;
  t.track_mem <- on

let mem_tracking t = t.track_mem

let take_dirty_mem t =
  let out = ref [] in
  for mi = Array.length t.dirty_bits - 1 downto 0 do
    let len = t.dirty_len.(mi) in
    if len > 0 then begin
      let words = Array.sub t.dirty_words.(mi) 0 len in
      Array.sort compare words;
      let bits = t.dirty_bits.(mi) in
      Array.iter
        (fun a ->
          let byte = a lsr 3 in
          Bytes.unsafe_set bits byte
            (Char.unsafe_chr
               (Char.code (Bytes.unsafe_get bits byte) land lnot (1 lsl (a land 7)))))
        words;
      t.dirty_len.(mi) <- 0;
      out := (mi, words) :: !out
    end
  done;
  !out

let snapshot_mem t mi =
  if t.mem_is_wide.(mi) then Array.map Bits.copy t.mem_wide.(mi)
  else
    let width = (Circuit.memory t.c mi).Circuit.mem_width in
    Array.map (fun v -> Bits.unsafe_of_packed ~width v) t.mem_narrow.(mi)

let node_width t id = (Circuit.node t.c id).Circuit.width

let narrow_values t = t.narrow

let wide_values t = t.wide

let wide_flat t = t.wflat

let is_wide t id = t.is_wide.(id)

(* Wide slots follow a stable-buffer discipline: the object placed in a
   slot at [create] is never replaced, and every store blits limbs into
   it ([Bits.unsafe_blit]).  The native backend's generated code mutates
   the same buffers in place, stores allocate nothing, and two slots can
   never come to share a limb array (a compiled [Var]/[Mux] closure can
   return another slot's object as the value to store — the blit copies
   it out).  [peek] hands out a copy: a caller snapshotting values across
   cycles (oracle traces, checkpoints) must not watch the buffer move
   under it. *)
let peek t id =
  if t.is_wide.(id) then Bits.copy t.wide.(id)
  else Bits.unsafe_of_packed ~width:(node_width t id) t.narrow.(id)

let override_wide t id v =
  match Hashtbl.find_opt t.fwide id with
  | None -> v
  | Some (m, mv) -> Bits.logor (Bits.logand v (Bits.lognot m)) mv

let override_narrow t id v = (v land lnot t.fmask_n.(id)) lor t.fval_n.(id)

let poke t id v =
  let nd = Circuit.node t.c id in
  (match nd.Circuit.kind with
   | Circuit.Input -> ()
   | _ -> invalid_arg (Printf.sprintf "Runtime.poke: %S is not an input" nd.Circuit.name));
  if Bits.width v <> nd.Circuit.width then
    invalid_arg (Printf.sprintf "Runtime.poke: width mismatch on %S" nd.Circuit.name);
  if t.is_wide.(id) then begin
    let v = if t.forced.(id) then override_wide t id v else v in
    let changed = not (Bits.equal t.wide.(id) v) in
    if changed then set_wide t id v;
    changed
  end
  else begin
    let packed = Bits.to_packed v in
    let packed = if t.forced.(id) then override_narrow t id packed else packed in
    let changed = t.narrow.(id) <> packed in
    t.narrow.(id) <- packed;
    changed
  end

let load_mem t mi contents =
  let m = Circuit.memory t.c mi in
  if Array.length contents > m.Circuit.depth then invalid_arg "Runtime.load_mem: too long";
  Array.iteri
    (fun i v ->
      if Bits.width v <> m.Circuit.mem_width then invalid_arg "Runtime.load_mem: width";
      if t.mem_is_wide.(mi) then t.mem_wide.(mi).(i) <- v
      else t.mem_narrow.(mi).(i) <- Bits.to_packed v;
      if t.track_mem then mark_dirty t mi i)
    contents

let read_mem t mi addr =
  let m = Circuit.memory t.c mi in
  if addr < 0 || addr >= m.Circuit.depth then invalid_arg "Runtime.read_mem";
  if t.mem_is_wide.(mi) then t.mem_wide.(mi).(addr)
  else Bits.unsafe_of_packed ~width:m.Circuit.mem_width t.mem_narrow.(mi).(addr)

let write_mem_word t mi addr v =
  let m = Circuit.memory t.c mi in
  if addr < 0 || addr >= m.Circuit.depth then invalid_arg "Runtime.write_mem_word";
  if Bits.width v <> m.Circuit.mem_width then invalid_arg "Runtime.write_mem_word: width";
  if t.mem_is_wide.(mi) then t.mem_wide.(mi).(addr) <- Bits.copy v
  else t.mem_narrow.(mi).(addr) <- Bits.to_packed v;
  if t.track_mem then mark_dirty t mi addr

let poke_register t id v =
  let nd = Circuit.node t.c id in
  (match nd.Circuit.kind with
   | Circuit.Reg_read _ -> ()
   | _ -> invalid_arg "Runtime.poke_register: not a register read node");
  if Bits.width v <> nd.Circuit.width then invalid_arg "Runtime.poke_register: width";
  if t.is_wide.(id) then
    set_wide t id (if t.forced.(id) then override_wide t id v else v)
  else
    let packed = Bits.to_packed v in
    t.narrow.(id) <- (if t.forced.(id) then override_narrow t id packed else packed)

(* ------------------------------------------------------------------ *)
(* Force overrides                                                     *)
(* ------------------------------------------------------------------ *)

let force t ?mask id v =
  let nd = Circuit.node t.c id in
  let w = nd.Circuit.width in
  if Bits.width v <> w then
    invalid_arg (Printf.sprintf "Runtime.force: width mismatch on %S" nd.Circuit.name);
  let m =
    match mask with
    | None -> Bits.ones w
    | Some m ->
      if Bits.width m <> w then
        invalid_arg (Printf.sprintf "Runtime.force: mask width mismatch on %S" nd.Circuit.name);
      m
  in
  t.forced.(id) <- true;
  if t.is_wide.(id) then begin
    Hashtbl.replace t.fwide id (m, Bits.logand v m);
    let cur = t.wide.(id) in
    let nv = override_wide t id cur in
    let changed = not (Bits.equal nv cur) in
    if changed then set_wide t id nv;
    changed
  end
  else begin
    let mp = Bits.to_packed m in
    t.fmask_n.(id) <- mp;
    t.fval_n.(id) <- Bits.to_packed v land mp;
    let cur = t.narrow.(id) in
    let nv = override_narrow t id cur in
    t.narrow.(id) <- nv;
    nv <> cur
  end

let release t id =
  ignore (Circuit.node t.c id);
  let was = t.forced.(id) in
  t.forced.(id) <- false;
  t.fmask_n.(id) <- 0;
  t.fval_n.(id) <- 0;
  Hashtbl.remove t.fwide id;
  was

let is_forced t id = t.forced.(id)

(* Wrap a step that writes the node's slot so the override is re-applied
   after every evaluation and change is reported against the overridden
   value.  The un-forced path costs one array load and one branch. *)
let guard t id step =
  if t.is_wide.(id) then begin
    let wide = t.wide and forced = t.forced in
    fun () ->
      if not forced.(id) then step ()
      else begin
        (* [step] blits the slot buffer in place; snapshot first. *)
        let old = Bits.copy wide.(id) in
        ignore (step ());
        let nv = override_wide t id wide.(id) in
        set_wide t id nv;
        not (Bits.equal nv old)
      end
  end
  else begin
    let narrow = t.narrow and forced = t.forced in
    fun () ->
      if not forced.(id) then step ()
      else begin
        let old = narrow.(id) in
        ignore (step ());
        let nv = override_narrow t id narrow.(id) in
        narrow.(id) <- nv;
        nv <> old
      end
  end

let data_size_bytes t =
  Circuit.fold_nodes t.c ~init:0 ~f:(fun acc nd ->
      let w = nd.Circuit.width in
      acc + (if wide_node w then 8 * ((w + 30) / 31) else 8))

let mem_size_bytes t =
  Array.fold_left
    (fun acc (m : Circuit.memory) ->
      let per_word =
        if wide_node m.mem_width then 8 * ((m.mem_width + 30) / 31) else 8
      in
      acc + (per_word * m.depth))
    0 (Circuit.memories t.c)

(* ------------------------------------------------------------------ *)
(* Native-int operations on packed values                              *)
(* ------------------------------------------------------------------ *)

(* mask w for 1 <= w <= 62; (1 lsl 62) - 1 wraps to max_int, which is the
   correct 62-bit mask. *)
let mask w = (1 lsl w) - 1

let sext w x = (x lsl (63 - w)) asr (63 - w)

(* Constant-time SWAR popcount for packed (<= 62-bit, nonnegative) values.
   The usual 64-bit masks are truncated to OCaml's 63-bit ints: [m1] keeps
   the even bit positions up to 60, which covers every bit of [x lsr 1]
   when [x] has at most 62 bits.  The final byte-summing multiply wraps
   mod 2^63, but the total (<= 62) lives entirely in bits 56..62, which
   truncation cannot disturb. *)
let popcount_int x =
  let x = x - ((x lsr 1) land 0x1555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)
(* ------------------------------------------------------------------ *)

type compiled = I of (unit -> int) | B of (unit -> Bits.t)

let as_bits ~width = function
  | B f -> f
  | I f -> fun () -> Bits.unsafe_of_packed ~width (f ())

let compile_unop op ~w_in f =
  match op with
  | Expr.Not -> fun () -> lnot (f ()) land mask w_in
  | Expr.Neg -> fun () -> (0 - f ()) land mask (w_in + 1)
  | Expr.Reduce_and ->
    let m = mask w_in in
    fun () -> if f () = m then 1 else 0
  | Expr.Reduce_or -> fun () -> if f () <> 0 then 1 else 0
  | Expr.Reduce_xor -> fun () -> popcount_int (f ()) land 1
  | Expr.Shl_const n -> fun () -> f () lsl n
  | Expr.Shr_const n -> fun () -> f () lsr n
  | Expr.Extract (hi, lo) ->
    let m = mask (hi - lo + 1) in
    fun () -> (f () lsr lo) land m
  | Expr.Pad_unsigned n ->
    if n >= w_in then f
    else
      let m = mask n in
      fun () -> f () land m
  | Expr.Pad_signed n ->
    if n >= w_in then
      let m = mask n in
      fun () -> sext w_in (f ()) land m
    else
      let m = mask n in
      fun () -> f () land m

let compile_binop op ~w1 ~w2 ~wr fa fb =
  match op with
  | Expr.Add -> fun () -> (fa () + fb ()) land mask wr
  | Expr.Sub -> fun () -> (fa () - fb ()) land mask wr
  | Expr.Mul -> fun () -> fa () * fb ()
  | Expr.Div ->
    fun () ->
      let b = fb () in
      if b = 0 then 0 else fa () / b
  | Expr.Div_signed ->
    let m = mask wr in
    fun () ->
      let b = sext w2 (fb ()) in
      if b = 0 then 0 else (sext w1 (fa ()) / b) land m
  | Expr.Rem ->
    let m = mask wr in
    fun () ->
      let b = fb () in
      if b = 0 then fa () land m else (fa () mod b) land m
  | Expr.Rem_signed ->
    let m = mask wr in
    fun () ->
      let b = sext w2 (fb ()) in
      if b = 0 then sext w1 (fa ()) land m else (sext w1 (fa ()) mod b) land m
  | Expr.And -> fun () -> fa () land fb ()
  | Expr.Or -> fun () -> fa () lor fb ()
  | Expr.Xor -> fun () -> fa () lxor fb ()
  | Expr.Cat -> fun () -> (fa () lsl w2) lor fb ()
  | Expr.Eq -> fun () -> if fa () = fb () then 1 else 0
  | Expr.Neq -> fun () -> if fa () <> fb () then 1 else 0
  | Expr.Lt -> fun () -> if fa () < fb () then 1 else 0
  | Expr.Leq -> fun () -> if fa () <= fb () then 1 else 0
  | Expr.Gt -> fun () -> if fa () > fb () then 1 else 0
  | Expr.Geq -> fun () -> if fa () >= fb () then 1 else 0
  | Expr.Lt_signed -> fun () -> if sext w1 (fa ()) < sext w2 (fb ()) then 1 else 0
  | Expr.Leq_signed -> fun () -> if sext w1 (fa ()) <= sext w2 (fb ()) then 1 else 0
  | Expr.Gt_signed -> fun () -> if sext w1 (fa ()) > sext w2 (fb ()) then 1 else 0
  | Expr.Geq_signed -> fun () -> if sext w1 (fa ()) >= sext w2 (fb ()) then 1 else 0
  | Expr.Dshl ->
    let m = mask w1 in
    fun () ->
      let b = fb () in
      if b >= w1 then 0 else (fa () lsl b) land m
  | Expr.Dshr ->
    fun () ->
      let b = fb () in
      if b >= w1 then 0 else fa () lsr b
  | Expr.Dshr_signed ->
    let m = mask w1 in
    fun () ->
      let b = fb () in
      if b >= w1 then (if fa () lsr (w1 - 1) = 1 then m else 0)
      else (sext w1 (fa ()) asr b) land m

let rec compile t (e : Expr.t) : compiled =
  let w = Expr.width e in
  match e.Expr.desc with
  | Expr.Const b ->
    if Bits.fits_int w then
      let v = Bits.to_packed b in
      I (fun () -> v)
    else B (fun () -> b)
  | Expr.Var id ->
    if t.is_wide.(id) then
      let wide = t.wide in
      B (fun () -> wide.(id))
    else
      let narrow = t.narrow in
      I (fun () -> narrow.(id))
  | Expr.Unop (op, a) ->
    let ca = compile t a in
    (match ca with
     | I fa when Bits.fits_int w -> I (compile_unop op ~w_in:(Expr.width a) fa)
     | I _ | B _ ->
       let fa = as_bits ~width:(Expr.width a) ca in
       let g () = Expr.eval_unop op (fa ()) in
       if Bits.fits_int w then I (fun () -> Bits.to_packed (g ())) else B g)
  | Expr.Binop (op, a, b) ->
    let ca = compile t a and cb = compile t b in
    (match (ca, cb) with
     | I fa, I fb when Bits.fits_int w ->
       I (compile_binop op ~w1:(Expr.width a) ~w2:(Expr.width b) ~wr:w fa fb)
     | (I _ | B _), (I _ | B _) ->
       let fa = as_bits ~width:(Expr.width a) ca
       and fb = as_bits ~width:(Expr.width b) cb in
       let g () = Expr.eval_binop op (fa ()) (fb ()) in
       if Bits.fits_int w then I (fun () -> Bits.to_packed (g ())) else B g)
  | Expr.Mux (s, a, b) ->
    let test =
      match compile t s with
      | I fs -> fun () -> fs () <> 0
      | B fs -> fun () -> not (Bits.is_zero (fs ()))
    in
    let ca = compile t a and cb = compile t b in
    (match (ca, cb) with
     | I fa, I fb -> I (fun () -> if test () then fa () else fb ())
     | (I _ | B _), (I _ | B _) ->
       let fa = as_bits ~width:w ca and fb = as_bits ~width:w cb in
       B (fun () -> if test () then fa () else fb ()))

(* ------------------------------------------------------------------ *)
(* Node evaluators                                                     *)
(* ------------------------------------------------------------------ *)

let store_and_compare t id = function
  | I f ->
    let narrow = t.narrow in
    fun () ->
      let v = f () in
      if v = narrow.(id) then false
      else begin
        narrow.(id) <- v;
        true
      end
  | B f ->
    let wide = t.wide in
    fun () ->
      let v = f () in
      if Bits.equal v wide.(id) then false
      else begin
        set_wide t id v;
        true
      end

(* Reader of a node's value as a clamped nonnegative int (addresses). *)
let int_reader t id =
  if t.is_wide.(id) then fun () -> Bits.to_int_trunc t.wide.(id)
  else fun () -> t.narrow.(id)

let node_evaluator t (nd : Circuit.node) =
  let id = nd.Circuit.id in
  match nd.Circuit.kind with
  | Circuit.Logic | Circuit.Reg_next _ ->
    (match nd.Circuit.expr with
     | Some e -> store_and_compare t id (compile t e)
     | None -> invalid_arg "Runtime.node_evaluator: missing expression")
  | Circuit.Mem_read pi ->
    let p = Circuit.read_port t.c pi in
    let mi = p.Circuit.r_mem in
    let m = Circuit.memory t.c mi in
    let depth = m.Circuit.depth in
    let addr = int_reader t p.Circuit.r_addr in
    let enabled =
      match p.Circuit.r_en with
      | None -> fun () -> true
      | Some en ->
        if t.is_wide.(en) then fun () -> not (Bits.is_zero t.wide.(en))
        else
          let narrow = t.narrow in
          fun () -> narrow.(en) <> 0
    in
    if t.mem_is_wide.(mi) then begin
      let contents = t.mem_wide.(mi) in
      let zero = Bits.zero m.Circuit.mem_width in
      let wide = t.wide in
      fun () ->
        let a = addr () in
        let v = if enabled () && a < depth then contents.(a) else zero in
        if Bits.equal v wide.(id) then false
        else begin
          set_wide t id v;
          true
        end
    end
    else begin
      let contents = t.mem_narrow.(mi) in
      let narrow = t.narrow in
      fun () ->
        let a = addr () in
        let v = if enabled () && a < depth then contents.(a) else 0 in
        if v = narrow.(id) then false
        else begin
          narrow.(id) <- v;
          true
        end
    end
  | Circuit.Input | Circuit.Reg_read _ ->
    invalid_arg "Runtime.node_evaluator: node is not evaluated"

let reg_copier t (r : Circuit.register) =
  if t.is_wide.(r.read) then begin
    let wide = t.wide in
    fun () ->
      let v = wide.(r.next) in
      if Bits.equal v wide.(r.read) then false
      else begin
        set_wide t r.read v;
        true
      end
  end
  else begin
    let narrow = t.narrow in
    let next = r.next and read = r.read in
    fun () ->
      let v = narrow.(next) in
      if v = narrow.(read) then false
      else begin
        narrow.(read) <- v;
        true
      end
  end

let reset_applier t (r : Circuit.register) =
  match r.reset with
  | None -> invalid_arg "Runtime.reset_applier: register has no reset"
  | Some rst ->
    if t.is_wide.(r.read) then begin
      let wide = t.wide in
      let v = rst.Circuit.reset_value in
      fun () ->
        if Bits.equal v wide.(r.read) then false
        else begin
          set_wide t r.read v;
          true
        end
    end
    else begin
      let narrow = t.narrow in
      let v = Bits.to_packed rst.Circuit.reset_value in
      let read = r.read in
      fun () ->
        if v = narrow.(read) then false
        else begin
          narrow.(read) <- v;
          true
        end
    end

let signal_is_set t id =
  if t.is_wide.(id) then fun () -> not (Bits.is_zero t.wide.(id))
  else
    let narrow = t.narrow in
    fun () -> narrow.(id) <> 0

let write_committer t mi (w : Circuit.write_port) =
  let m = Circuit.memory t.c mi in
  let depth = m.Circuit.depth in
  let addr = int_reader t w.Circuit.w_addr in
  let enabled = signal_is_set t w.Circuit.w_en in
  (* Inlined write-barrier fast path: the bitmap never reallocates, so it
     can be captured here, and a word already marked dirty (the common
     case — hot words are rewritten every cycle) costs one byte load. *)
  let dbits = t.dirty_bits.(mi) in
  let barrier a =
    if t.track_mem
       && Char.code (Bytes.unsafe_get dbits (a lsr 3)) land (1 lsl (a land 7)) = 0
    then mark_dirty t mi a
  in
  if t.mem_is_wide.(mi) then begin
    let contents = t.mem_wide.(mi) in
    let wide = t.wide in
    let data = w.Circuit.w_data in
    let read_data =
      if t.is_wide.(data) then fun () -> wide.(data)
      else fun () -> Bits.unsafe_of_packed ~width:m.Circuit.mem_width t.narrow.(data)
    in
    fun () ->
      if enabled () then begin
        let a = addr () in
        if a < depth then begin
          let v = read_data () in
          if Bits.equal contents.(a) v then false
          else begin
            contents.(a) <- Bits.copy v;
            barrier a;
            true
          end
        end
        else false
      end
      else false
  end
  else begin
    let contents = t.mem_narrow.(mi) in
    let data = int_reader t w.Circuit.w_data in
    fun () ->
      if enabled () then begin
        let a = addr () in
        if a < depth then begin
          let v = data () in
          if contents.(a) = v then false
          else begin
            contents.(a) <- v;
            barrier a;
            true
          end
        end
        else false
      end
      else false
  end
