(** Shared engine runtime: value arenas and closure compilation.

    The "compiled simulation" backend.  Signals of width <= 62 bits live in
    a flat int arena and are evaluated by specialized native-int closures;
    wider signals live in a boxed {!Gsim_bits.Bits} arena.  Each node's
    expression is compiled once into a closure that evaluates it, stores
    the result and reports whether the value changed — the unit of work the
    engines schedule. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : ?extra_slots:int -> Circuit.t -> t
(** [extra_slots] (default 0) extends the narrow value arena past the node
    ids.  The bytecode backend places its pooled constants and expression
    stacks there, so fused programs run over one flat array; nothing else
    reads or writes those slots. *)

val circuit : t -> Circuit.t

(** {1 Values} *)

val poke : t -> int -> Bits.t -> bool
(** Set an input; returns [true] when the stored value changed. *)

val peek : t -> int -> Bits.t

val load_mem : t -> int -> Bits.t array -> unit

val read_mem : t -> int -> int -> Bits.t

val write_mem_word : t -> int -> int -> Bits.t -> unit
(** Overwrite a single memory word; sparse (delta) checkpoint restore.
    Marks the word dirty when tracking is on. *)

val poke_register : t -> int -> Bits.t -> unit
(** Overwrite a register's current value (by read-node id); checkpoint
    restore. *)

(** {1 Memory-word dirty tracking (delta checkpoints)}

    Every memory store funnels through this module ({!write_committer}
    on all engines and backends, {!load_mem} for external loads), so a
    write barrier here sees the complete set of mutated words.  While
    tracking is on, each committed store records its word in a
    per-memory dirty set — a bitmap for O(1) dedup plus an index
    vector, so draining costs O(dirty) rather than O(depth).  The
    barrier costs one load and one predictable branch per committed
    store when tracking is off. *)

val set_mem_tracking : t -> bool -> unit
(** Turn the write barrier on or off.  Turning it on clears any marks
    left from a previous tracking episode. *)

val mem_tracking : t -> bool

val take_dirty_mem : t -> (int * int array) list
(** Drain the dirty set: [(memory index, sorted word indices)] for every
    memory with recorded stores since the last drain, and clear it.
    Indices are sorted ascending and duplicate-free. *)

val snapshot_mem : t -> int -> Bits.t array
(** Bulk copy of a memory's current contents (checkpoint capture fast
    path — no per-word circuit lookups). *)

(** {1 Force overrides (fault injection)}

    While a node is forced, its arena slot always holds
    [(computed land lnot mask) lor (value land mask)].  [poke] and
    [poke_register] re-apply the override; evaluators and register
    copiers must be wrapped with {!guard} for every node that may be
    forced (engines do this for their declared forcible set). *)

val force : t -> ?mask:Bits.t -> int -> Bits.t -> bool
(** [force t ?mask id v] pins the masked bits of the node to [v]
    (default mask: all ones).  Applies immediately to the stored value
    and returns whether it changed. *)

val release : t -> int -> bool
(** Remove the override.  The stored value keeps the last forced bits
    until the node is next evaluated (or latched / poked); returns
    whether an override was active. *)

val is_forced : t -> int -> bool

val guard : t -> int -> (unit -> bool) -> (unit -> bool)
(** [guard t id step] wraps a step writing node [id]'s slot so the
    override is re-applied after evaluation and change is reported
    against the overridden value. *)

val narrow_values : t -> int array
(** The raw narrow arena itself (indexed by node id), not a copy.  Engine
    internals only: the {!Bytecode} backend reads and writes packed values
    through it directly; everything else should go through {!peek} and the
    compiled evaluators. *)

val is_wide : t -> int -> bool
(** Whether the node's value lives in the wide (boxed) arena. *)

val wide_values : t -> Bits.t array
(** The raw wide arena itself (indexed by node id), not a copy.  Engine
    internals only: the {!Native} backend passes it to generated code,
    which mutates the stored vectors' limbs in place.  Narrow ids hold a
    shared placeholder — never read them through this array. *)

val wide_flat : t -> Bytes.t
(** The flat mirror of the wide arena: every wide node's value stored
    as raw little-endian 64-bit limbs at the offset assigned by
    [Gsim_emit.Emit_c.wide_offsets].  Engine internals only: the
    {!Native} backend passes it to generated code, whose wide loads are
    direct indexed reads from it; all runtime store paths keep it
    identical to the boxed slots. *)

val data_size_bytes : t -> int
(** Bytes of mutable simulation state excluding memory contents (the
    paper's Table IV "data size" convention, which also excludes the main
    memory array). *)

val mem_size_bytes : t -> int

(** {1 Packed-value primitives}

    Shared by the closure compiler below and the {!Bytecode} backend. *)

val mask : int -> int
(** [mask w] is the all-ones pattern of [w] bits, [1 <= w <= 62]. *)

val popcount_int : int -> int
(** Constant-time (SWAR) population count of a packed value: nonnegative,
    at most 62 significant bits. *)

(** {1 Compiled evaluation} *)

val node_evaluator : t -> Circuit.node -> (unit -> bool)
(** Evaluate the node's expression (or memory read), store the value,
    report change.  Only for expression-carrying and [Mem_read] nodes. *)

val reg_copier : t -> Circuit.register -> (unit -> bool)
(** Latch: read-slot := next-slot; reports change. *)

val reset_applier : t -> Circuit.register -> (unit -> bool)
(** Slow-path reset: read-slot := reset value; reports change. *)

val signal_is_set : t -> int -> (unit -> bool)
(** Nonzero test of a node's current value (used for reset signals). *)

val write_committer : t -> int -> Circuit.write_port -> (unit -> bool)
(** [write_committer t mem port] commits the port if enabled; reports
    whether the memory contents changed. *)
