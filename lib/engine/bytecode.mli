(** Flat bytecode for narrow-node expression evaluation.

    The closure evaluator ({!Runtime.node_evaluator}) interprets each node
    as a tree of nested closures — one indirect call and one boxed-or-int
    dance per operator.  This module instead lowers a narrow node
    (result and every subexpression ≤ 62 bits, so all values are packed
    nonnegative OCaml ints) to a linear register-machine program: a single
    [int array] of stride-6 instructions dispatched by one tight loop over
    an [int array] scratch file.  Evaluation performs zero allocation and
    no calls except the dispatch loop itself.

    Nodes that touch the wide path ({!compile} returns [None]) keep their
    closure evaluators; engines mix the two behind {!Eval}.

    Programs of consecutively-evaluated nodes can be {!fuse}d into a
    single segment — one instruction stream, one dispatch pass per sweep —
    rebased into a single flat address space: the narrow arena is extended
    past the node ids ([Runtime.create ~extra_slots]) to hold the
    segment's pooled constants and shared expression stack, and every
    operand becomes an absolute arena index.  Variable operands then read
    the producer's slot directly, eliminating load instructions
    altogether. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

(** A single node's compiled program. *)
type program

val compile : Circuit.t -> Circuit.node -> program option
(** [None] when the node is not a narrow [Logic]/[Reg_next] expression
    node (wide result, wide subexpression, memory port, source node).
    Compilation needs only the circuit, so engines can compile — and size
    the arena extension that fused segments need — before creating the
    runtime. *)

val instr_count : program -> int
(** Instructions executed per evaluation, counting variable preloads. *)

val scratch_size : program -> int

val evaluator : Runtime.t -> program -> unit -> bool
(** A drop-in replacement for {!Runtime.node_evaluator}: evaluates the
    node against the runtime's narrow arena, stores the result, and
    returns whether the value changed.  Bit-identical to the closure
    evaluator by construction. *)

(** Several programs fused into one instruction stream. *)
type segment

val fuse : base:int -> program list -> segment
(** Fuse the programs of consecutively-evaluated nodes, in evaluation
    order.  Sound whenever the nodes are evaluated back-to-back with no
    intervening writes to the narrow arena between them.  [base] is the
    first free arena slot for this segment's constants and stack; the
    runtime must be created with enough [extra_slots] to cover
    [base + segment_scratch - Circuit.max_id]. *)

val copy_segment : (int * int) array -> segment
(** A segment of compare-copy instructions, one per [(src, dst)] node
    pair — the register-commit phase as bytecode.  Each copy counts a
    change exactly like {!Runtime.reg_copier} does on the narrow path.
    Needs no arena extension. *)

val segment_instrs : segment -> int
(** Instructions executed per sweep of the segment. *)

val segment_scratch : segment -> int
(** Arena slots the segment occupies starting at its [base]. *)

val segment_evaluator : Runtime.t -> segment -> unit -> int
(** One sweep: evaluates and commits every node in the segment, returning
    how many changed value. *)

val disassemble : program -> string
val disassemble_segment : segment -> string
