(** Backend selection for per-node evaluation.

    Engines build their per-node step functions through this module rather
    than calling {!Runtime.node_evaluator} directly, so one switch selects
    between the evaluation strategies:

    - [`Closures] — the original tree of specialized closures built by
      {!Runtime.node_evaluator};
    - [`Bytecode] — the flat register-machine programs of {!Bytecode} for
      narrow (packed-int) nodes, with an automatic per-node fallback to
      closures for wide nodes, memory reads, and expressions that touch the
      wide arena;
    - [`Native] — ahead-of-time compiled C ({!Native}): each narrow node's
      expression tree becomes a machine-code function over the same arena,
      with the same per-node closure fallback.  Degrades to the best
      interpreted backend (with a one-line diagnostic) when no C compiler
      is available or compilation fails;
    - [`Auto] — the documented default: native when available and the
      circuit is big enough to amortize a [cc] run, otherwise bytecode on
      small circuits and closures on big ones (dispatch overhead scales
      with the static instruction count — see BENCH_backends.json).

    Every backend is bit-identical by construction.  Engines resolve the
    requested backend to an {!effective} one with {!select} once per
    instance, then build evaluators or plans from the selection. *)

open Gsim_ir

type backend = [ `Closures | `Bytecode | `Native | `Auto ]

type effective = [ `Closures | `Bytecode | `Native ]

val default : backend
(** [`Auto]. *)

val to_string : backend -> string

val of_string : string -> backend option
(** Accepts ["auto"], ["native"], ["bytecode"], ["closures"] (and
    ["closure"]). *)

val names : string
(** Human-readable list of accepted backend names, for error messages. *)

(** A resolved backend choice for one circuit. *)
type selected = {
  requested : backend;
  effective : effective;
  native : Native.unit_t option;  (** [Some] iff [effective = `Native] *)
  cache : string;
      (** under native: ["hit"] when the compiled object came from the
          in-process memo or the disk cache (no [cc] run), ["miss"] on a
          fresh compile; [""] otherwise — surfaced via
          {!Counters.t.native_cache} *)
}

val select : backend -> Circuit.t -> selected
(** Resolve [backend] for [c], loading (or compiling) the native unit
    when called for and applying the fallback ladder:
    native unavailable → bytecode below the instruction threshold,
    closures above it. *)

val effective_string : selected -> string

val estimate_instrs : Circuit.t -> int
(** Static bytecode instruction count of one full sweep — the quantity
    the auto heuristic thresholds. *)

val node_evaluator :
  sel:selected -> ?forcible:(int -> bool) -> Runtime.t -> Circuit.node ->
  (unit -> bool) * int
(** The node's step function (evaluate, store, report change) plus its
    static bytecode cost — the number of instructions retired per
    evaluation, for the {!Counters.t.instrs} counter.  Zero whenever the
    node evaluates through closures or native code.  Nodes for which
    [forcible] holds (fault-injection targets) are wrapped with
    {!Runtime.guard} and always evaluate through closures, so a force
    override is visible to every consumer under every backend. *)

(** A compiled sweep over a node sequence: maximal runs of compilable
    nodes fused into bytecode segments or dense native runs,
    wide/fallback nodes interleaved as singleton closure steps. *)
type plan

val plan :
  ?forcible:(int -> bool) -> selected -> Circuit.t -> scratch_base:int ->
  int array -> plan
(** [plan sel c ~scratch_base ids] compiles [ids] (evaluated in order,
    back-to-back) according to [sel].  Bytecode segments claim
    narrow-arena slots from [scratch_base] upward (native runs claim
    none).  Planning needs no runtime: create it afterwards with at least
    {!plan_scratch} extra slots past [scratch_base] (see
    [Runtime.create ~extra_slots]).  [forcible] nodes are excluded from
    fusion and realized as guarded closure steps (see
    {!node_evaluator}). *)

val plan_scratch : plan -> int
(** Arena-extension slots the plan's segments occupy past its
    [scratch_base]. *)

val realize : Runtime.t -> plan -> (unit -> int) array * int
(** Bind a plan to a runtime.  Each returned step evaluates its segment
    (or native run, or fallback node) and returns how many node values
    changed; calling all steps in order evaluates exactly the planned ids
    in order.  The [int] is the total static instruction count per full
    sweep, for {!Counters.t.instrs} (native runs count zero). *)
