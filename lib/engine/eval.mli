(** Backend selection for per-node evaluation.

    Engines build their per-node step functions through this module rather
    than calling {!Runtime.node_evaluator} directly, so one switch selects
    between the two evaluation strategies:

    - [`Closures] — the original tree of specialized closures built by
      {!Runtime.node_evaluator};
    - [`Bytecode] — the flat register-machine programs of {!Bytecode} for
      narrow (packed-int) nodes, with an automatic per-node fallback to
      closures for wide nodes, memory reads, and expressions that touch the
      wide arena.

    Both backends are bit-identical by construction; the bytecode backend
    trades closure-call overhead for one tight dispatch loop on the narrow
    hot path. *)

open Gsim_ir

type backend = [ `Closures | `Bytecode ]

val default : backend
(** [`Bytecode]. *)

val to_string : backend -> string

val of_string : string -> backend option
(** Accepts ["bytecode"], ["closures"] (and ["closure"]). *)

val node_evaluator :
  backend:backend -> ?forcible:(int -> bool) -> Runtime.t -> Circuit.node ->
  (unit -> bool) * int
(** The node's step function (evaluate, store, report change) plus its
    static bytecode cost — the number of instructions retired per
    evaluation (variable preloads + operations), for the
    {!Counters.t.instrs} counter.  Zero whenever the node evaluates
    through closures (explicitly, or by fallback).  Nodes for which
    [forcible] holds (fault-injection targets) are wrapped with
    {!Runtime.guard} and always evaluate through closures, so a force
    override is visible to every consumer under both backends. *)

(** A compiled sweep over a node sequence: maximal runs of
    bytecode-compilable nodes fused into segments, wide/fallback nodes
    interleaved as singleton closure steps. *)
type plan

val plan : ?forcible:(int -> bool) -> Circuit.t -> scratch_base:int -> int array -> plan
(** [plan c ~scratch_base ids] compiles [ids] (evaluated in order,
    back-to-back) into segments whose constants and expression stacks
    claim narrow-arena slots from [scratch_base] upward.  Planning needs
    no runtime: create it afterwards with at least {!plan_scratch} extra
    slots past [scratch_base] (see [Runtime.create ~extra_slots]).
    [forcible] nodes are excluded from fusion and realized as guarded
    closure steps (see {!node_evaluator}). *)

val plan_scratch : plan -> int
(** Arena-extension slots the plan's segments occupy past its
    [scratch_base]. *)

val realize : Runtime.t -> plan -> (unit -> int) array * int
(** Bind a plan to a runtime.  Each returned step evaluates its segment
    (or fallback node) and returns how many node values changed; calling
    all steps in order evaluates exactly the planned ids in order.  The
    [int] is the total static instruction count per full sweep, for
    {!Counters.t.instrs}. *)
