(** Simulation checkpoints.

    Captures architectural state — inputs, registers, memory contents —
    from any simulator and restores it into any other, the
    SimPoint-checkpoint workflow the paper uses for its SPEC evaluation
    (run a fast simulator to the region of interest, snapshot, and resume
    anywhere).  Checkpoints can also be saved to and loaded from a simple
    self-describing text format; version 2 of the format ends in a CRC32
    footer so a torn or corrupted file is detected at load time (the
    {!Gsim_resilience.Store} ring relies on this to fall back to an older
    generation).

    Restoring leaves combinational values stale by design; the wrapped
    engines re-derive them on the next [step] (activity engines are fully
    invalidated).  Both circuits must be the same elaboration (node ids
    are matched by register/input name, so differently-optimized variants
    of one design interoperate as long as the state-holding nodes
    survived). *)


type t

val capture : ?rt:Runtime.t -> Sim.t -> t
(** [rt], when the engine exposes its {!Runtime} arena, routes memory
    capture through {!Runtime.snapshot_mem} — a bulk copy with no
    per-word circuit lookups, several times faster on memory-heavy
    designs.  State captured is identical either way. *)

val restore : Sim.t -> t -> unit
(** Raises [Failure] when a register, input or memory recorded in the
    checkpoint has no same-named counterpart in the target, or when its
    width or depth does not match the design's.  Every error names the
    offending signal and both geometries. *)

val format_version : int
(** Current on-disk format version (2).  Version-1 files (no CRC footer)
    still load. *)

val crc32 : string -> int
(** IEEE 802.3 CRC32, the checksum of the version-2 footer. *)

val to_string : t -> string
(** Serializes in the current format version, CRC footer included. *)

val of_string : ?lenient:bool -> string -> t
(** Raises [Failure] on malformed input — with distinct messages for a
    missing/CRC-failing footer, truncated memory blocks, duplicate
    register/input/memory lines, bad values and bad lines.  With
    [~lenient:true] (the [--resume] torn-write mode) a trailing
    malformed portion is dropped instead: every section completed before
    the first error is kept, and a missing or mismatching CRC footer is
    tolerated. *)

val save : string -> t -> unit

val load : ?lenient:bool -> string -> t

val cycle : t -> int
(** Cycle count recorded at capture time. *)

val with_cycle : t -> int -> t
(** Same state, different recorded cycle — sessions track absolute cycle
    counts across resumes, while each engine's counter restarts at 0. *)

val equal : t -> t -> bool
(** Same architectural state (used by the determinism tests).  Ignores
    the recorded cycle. *)

val diff : t -> t -> (string * string * string) list
(** [(signal, value_in_a, value_in_b)] for every architectural mismatch;
    memory words appear as ["name[index]"].  Empty iff {!equal}. *)

(** {1 Delta checkpoints}

    A delta records only the state that changed since a {e base}
    generation: scalars that differ plus sparse memory words.  Applied in
    order on top of a full keyframe, a chain of deltas reconstructs the
    newest state at a fraction of a keyframe's serialization cost.  Each
    delta pins its base by (cycle, CRC32 of the base file's raw bytes) so
    recovery can prove every link intact before applying anything.
    Deltas parse {e strictly} — there is deliberately no lenient mode: a
    partially-applied delta would reconstruct wrong state silently, so a
    torn delta is a broken link and the {!Gsim_resilience.Store} recovery
    walk falls back to an older generation instead. *)

type delta

val delta_format_version : int

val capture_delta :
  Sim.t -> cycle:int -> dirty:(int * int array) list -> base:t -> base_crc:int -> delta
(** Capture the live simulator's divergence from [base]: inputs and
    registers are compared exhaustively (cheap — there are few); memory
    words are read only at the indices named by [dirty] (memory index ×
    sorted word indices, from {!Runtime.take_dirty_mem}).  [dirty] must
    cover every word that may differ from [base] — with the write
    barrier on since [base] was captured, it does by construction.
    [cycle] is the absolute cycle recorded in the delta ({!delta_cycle});
    [base_crc] the CRC32 of [base]'s serialized file bytes. *)

val delta_of : base:t -> base_crc:int -> t -> delta
(** Compare-based delta between two full checkpoints — no dirty set
    needed, costs one pass over every memory word.  Raises [Failure]
    when a memory of [cur] is absent or resized in [base]. *)

val apply_delta : t -> delta -> t
(** Reconstruct the full state one link forward.  Raises [Failure] when
    the delta's recorded base cycle does not match, or it names state the
    base lacks. *)

val restore_delta : Runtime.t -> Sim.t -> delta -> unit
(** Sparse in-place restore: bring a sim {e already sitting at the
    delta's base state} to the delta's state by writing only the changed
    scalars and memory words.  The base link is not checked — the caller
    vouches the sim is at the base. *)

val delta_cycle : delta -> int

val delta_base : delta -> int * int
(** [(base_cycle, base_file_crc32)] — the link this delta chains to. *)

val delta_size : delta -> int
(** Changed scalars + memory words recorded (bench instrumentation). *)

val delta_to_string : delta -> string

val delta_of_string : string -> delta
(** Strict: raises [Failure] on any malformation, including a missing or
    mismatching CRC footer. *)

val load_delta : string -> delta
