(** Simulation checkpoints.

    Captures architectural state — inputs, registers, memory contents —
    from any simulator and restores it into any other, the
    SimPoint-checkpoint workflow the paper uses for its SPEC evaluation
    (run a fast simulator to the region of interest, snapshot, and resume
    anywhere).  Checkpoints can also be saved to and loaded from a simple
    self-describing text format; version 2 of the format ends in a CRC32
    footer so a torn or corrupted file is detected at load time (the
    {!Gsim_resilience.Store} ring relies on this to fall back to an older
    generation).

    Restoring leaves combinational values stale by design; the wrapped
    engines re-derive them on the next [step] (activity engines are fully
    invalidated).  Both circuits must be the same elaboration (node ids
    are matched by register/input name, so differently-optimized variants
    of one design interoperate as long as the state-holding nodes
    survived). *)


type t

val capture : Sim.t -> t

val restore : Sim.t -> t -> unit
(** Raises [Failure] when a register, input or memory recorded in the
    checkpoint has no same-named counterpart in the target, or when its
    width or depth does not match the design's.  Every error names the
    offending signal and both geometries. *)

val format_version : int
(** Current on-disk format version (2).  Version-1 files (no CRC footer)
    still load. *)

val crc32 : string -> int
(** IEEE 802.3 CRC32, the checksum of the version-2 footer. *)

val to_string : t -> string
(** Serializes in the current format version, CRC footer included. *)

val of_string : ?lenient:bool -> string -> t
(** Raises [Failure] on malformed input — with distinct messages for a
    missing/CRC-failing footer, truncated memory blocks, duplicate
    register/input/memory lines, bad values and bad lines.  With
    [~lenient:true] (the [--resume] torn-write mode) a trailing
    malformed portion is dropped instead: every section completed before
    the first error is kept, and a missing or mismatching CRC footer is
    tolerated. *)

val save : string -> t -> unit

val load : ?lenient:bool -> string -> t

val cycle : t -> int
(** Cycle count recorded at capture time. *)

val with_cycle : t -> int -> t
(** Same state, different recorded cycle — sessions track absolute cycle
    counts across resumes, while each engine's counter restarts at 0. *)

val equal : t -> t -> bool
(** Same architectural state (used by the determinism tests).  Ignores
    the recorded cycle. *)

val diff : t -> t -> (string * string * string) list
(** [(signal, value_in_a, value_in_b)] for every architectural mismatch;
    memory words appear as ["name[index]"].  Empty iff {!equal}. *)
