module Bits = Gsim_bits.Bits
open Gsim_ir
open Gsim_partition

type activation_strategy = Branch | Branchless | Cost_model

type config = { packed_exam : bool; activation : activation_strategy }

let essent_config = { packed_exam = false; activation = Branchless }
let gsim_config = { packed_exam = true; activation = Cost_model }

let word_bits = 62

type t = {
  rt : Runtime.t;
  counters : Counters.t;
  packed : bool;
  nsuper : int;
  words : int array;                     (* packed active bits *)
  active : bool array;                   (* unpacked active bits *)
  sn_steps : (unit -> bool) array array;
      (* per supernode: fused member evaluate-and-activate closures,
         returning whether the value changed *)
  sn_members : int array array;
      (* member node ids, parallel to [sn_steps] (change-hook support) *)
  sn_hits : int array;  (* evaluation count per supernode (profiling) *)
  sn_instrs : int array;
      (* static bytecode cost of one supernode sweep (sum over members);
         zero under the closure backend *)
  (* Registers *)
  reg_reads : int array;          (* read-node id per register table index *)
  reg_copy : (unit -> bool) array;
  reg_read_activate : (unit -> unit) array;  (* activate successors of the read node *)
  pending : bool array;
  mutable pending_stack : int array;
  mutable pending_len : int;
  mutable resets : ((unit -> bool) * int array) array;
      (* (signal test, register indices); applied at end of cycle *)
  reset_apply : (unit -> bool) array;
  (* Memories *)
  mutable write_commits : (int * (unit -> bool)) array;  (* memory index, committer *)
  mutable mem_activate : (unit -> unit) array;   (* per memory: wake read ports *)
  (* Inputs *)
  input_activate : (unit -> unit) array;         (* indexed by node id; no-op otherwise *)
  dirty_inputs : bool array;
  mutable dirty_stack : int array;
  mutable dirty_len : int;
  (* Fault injection: per declared forcible node, (on_force, on_release)
     wake closures — force marks the consumers' active bits, release
     re-activates the node's own supernode / re-latches its register. *)
  force_wakes : (int, (unit -> unit) * (unit -> unit)) Hashtbl.t;
}

(* --- Active-bit primitives ------------------------------------------- *)

let set_super t k =
  if t.packed then begin
    let wi = k / word_bits in
    t.words.(wi) <- t.words.(wi) lor (1 lsl (k mod word_bits))
  end
  else t.active.(k) <- true

(* Build the activation closure for one node given its distinct target
   supernodes (own supernode excluded: members later in the same supernode
   are evaluated in the same sweep). *)
let make_activator t strategy targets =
  let ctr = t.counters in
  let ntargets = Array.length targets in
  if ntargets = 0 then fun _ -> ()
  else begin
    let branchless =
      match strategy with
      | Branch -> false
      | Branchless -> true
      | Cost_model ->
        (* Few targets: unconditional logical updates beat a branch the
           predictor cannot learn.  Many targets: the branch saves work. *)
        if t.packed then
          let words =
            Array.to_list targets |> List.map (fun k -> k / word_bits)
            |> List.sort_uniq compare |> List.length
          in
          words <= 2
        else ntargets <= 2
    in
    if branchless && t.packed then begin
      (* Pre-merge the masks per word. *)
      let tbl = Hashtbl.create 4 in
      Array.iter
        (fun k ->
          let wi = k / word_bits in
          let m = try Hashtbl.find tbl wi with Not_found -> 0 in
          Hashtbl.replace tbl wi (m lor (1 lsl (k mod word_bits))))
        targets;
      let pairs = Hashtbl.fold (fun wi m acc -> (wi, m) :: acc) tbl [] in
      let wis = Array.of_list (List.map fst pairs) in
      let masks = Array.of_list (List.map snd pairs) in
      let words = t.words in
      fun changed ->
        let m = -(Bool.to_int changed) in
        for i = 0 to Array.length wis - 1 do
          words.(wis.(i)) <- words.(wis.(i)) lor (m land masks.(i))
        done;
        if changed then ctr.Counters.activations <- ctr.Counters.activations + ntargets
    end
    else if branchless then begin
      let active = t.active in
      fun changed ->
        for i = 0 to ntargets - 1 do
          active.(targets.(i)) <- active.(targets.(i)) || changed
        done;
        if changed then ctr.Counters.activations <- ctr.Counters.activations + ntargets
    end
    else
      fun changed ->
        if changed then begin
          for i = 0 to ntargets - 1 do
            set_super t targets.(i)
          done;
          ctr.Counters.activations <- ctr.Counters.activations + ntargets
        end
  end

let push_pending t r =
  if not t.pending.(r) then begin
    t.pending.(r) <- true;
    t.pending_stack.(t.pending_len) <- r;
    t.pending_len <- t.pending_len + 1
  end

(* Distinct supernodes of a node list, excluding [exclude]. *)
let target_supers (part : Partition.t) ?(exclude = -1) ids =
  List.filter_map
    (fun id ->
      let k = if id < Array.length part.of_node then part.of_node.(id) else -1 in
      if k >= 0 && k <> exclude then Some k else None)
    ids
  |> List.sort_uniq compare |> Array.of_list

let create ?(config = gsim_config) ?(backend = Eval.default) ?(forcible = []) c part =
  let sel = Eval.select backend c in
  let rt = Runtime.create c in
  let fset = Hashtbl.create (max (2 * List.length forcible) 1) in
  List.iter
    (fun id ->
      match (Circuit.node c id).Circuit.kind with
      | Circuit.Input -> ()
      | _ -> Hashtbl.replace fset id ())
    forcible;
  let is_forcible id = Hashtbl.mem fset id in
  let nsuper = Array.length part.Partition.supernodes in
  let nwords = (nsuper + word_bits - 1) / word_bits in
  let regs = Array.of_list (Circuit.registers c) in
  let nregs = Array.length regs in
  let succs = Circuit.successors c in
  let t =
    {
      rt;
      counters = Counters.create ();
      packed = config.packed_exam;
      nsuper;
      words = Array.make (max nwords 1) 0;
      active = Array.make (max nsuper 1) false;
      sn_steps = Array.make (max nsuper 1) [||];
      sn_members = part.Partition.supernodes;
      sn_hits = Array.make (max nsuper 1) 0;
      sn_instrs = Array.make (max nsuper 1) 0;
      reg_reads = Array.map (fun (r : Circuit.register) -> r.read) regs;
      reg_copy =
        Array.map
          (fun (r : Circuit.register) ->
            let f = Runtime.reg_copier rt r in
            if is_forcible r.read then Runtime.guard rt r.read f else f)
          regs;
      reg_read_activate = Array.make (max nregs 1) (fun () -> ());
      pending = Array.make (max nregs 1) false;
      pending_stack = Array.make (max nregs 1) 0;
      pending_len = 0;
      resets = [||];
      reset_apply =
        Array.map
          (fun (r : Circuit.register) ->
            match r.reset with
            | Some rst when rst.Circuit.slow_path ->
              let f = Runtime.reset_applier rt r in
              if is_forcible r.read then Runtime.guard rt r.read f else f
            | Some _ | None -> (fun () -> false))
          regs;
      write_commits = [||];
      mem_activate = [||];
      input_activate = Array.make (Circuit.max_id c) (fun () -> ());
      dirty_inputs = Array.make (Circuit.max_id c) false;
      dirty_stack = Array.make (max (Circuit.max_id c) 1) 0;
      dirty_len = 0;
      force_wakes = Hashtbl.create (max (2 * List.length forcible) 1);
    }
  in
  t.counters.Counters.backend <- Eval.effective_string sel;
  t.counters.Counters.native_cache <- sel.Eval.cache;
  (* Node index -> register table index for Reg_next pending marking. *)
  let reg_index_of_next = Hashtbl.create 64 in
  Array.iteri (fun i (r : Circuit.register) -> Hashtbl.replace reg_index_of_next r.next i) regs;
  (* Per-supernode member arrays: evaluation and activation fused into one
     closure per member keeps the sweep's per-node overhead down. *)
  Array.iteri
    (fun k members ->
      let steps =
        Array.map
          (fun id ->
            let eval, ni =
              Eval.node_evaluator ~sel ~forcible:is_forcible rt (Circuit.node c id)
            in
            t.sn_instrs.(k) <- t.sn_instrs.(k) + ni;
            let targets = target_supers part ~exclude:k succs.(id) in
            let act = make_activator t config.activation targets in
            let no_targets = Array.length targets = 0 in
            match Hashtbl.find_opt reg_index_of_next id with
            | Some ri ->
              fun () ->
                let changed = eval () in
                if changed then push_pending t ri;
                act changed;
                changed
            | None ->
              if no_targets then eval
              else
                fun () ->
                  let changed = eval () in
                  act changed;
                  changed)
          members
      in
      t.sn_steps.(k) <- steps)
    part.Partition.supernodes;
  (* Register read nodes: on latch change, wake the read node's consumers. *)
  let reg_read_activate =
    Array.map
      (fun (r : Circuit.register) ->
        let targets = target_supers part succs.(r.read) in
        let act = make_activator t Branch targets in
        fun () -> act true)
      regs
  in
  Array.blit reg_read_activate 0 t.reg_read_activate 0 nregs;
  (* Reset groups: one check per distinct reset signal per cycle. *)
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i (r : Circuit.register) ->
      match r.reset with
      | Some rst when rst.Circuit.slow_path ->
        let s = rst.Circuit.reset_signal in
        Hashtbl.replace groups s (i :: (try Hashtbl.find groups s with Not_found -> []))
      | Some _ | None -> ())
    regs;
  let resets =
    Hashtbl.fold
      (fun s ris acc -> (Runtime.signal_is_set rt s, Array.of_list ris) :: acc)
      groups []
    |> Array.of_list
  in
  (* Memory write ports and read-port wakeup. *)
  let mems = Circuit.memories c in
  let write_commits =
    Array.to_list mems
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> (mi, Runtime.write_committer rt mi w)) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let mem_activate =
    Array.map
      (fun (m : Circuit.memory) ->
        let targets = target_supers part m.read_port_ids in
        let act = make_activator t Branch targets in
        fun () -> act true)
      mems
  in
  (* Inputs. *)
  List.iter
    (fun (nd : Circuit.node) ->
      let targets = target_supers part succs.(nd.id) in
      let act = make_activator t Branch targets in
      t.input_activate.(nd.id) <- (fun () -> act true))
    (Circuit.inputs c);
  (* Fault-injection wake closures.  A force that changes the stored value
     must mark the consumers' active bits (supernode-aware: same-supernode
     consumers are reached by re-activating that supernode, which
     [target_supers] includes here — no [~exclude]).  A release must make
     the node recompute: re-activate its own supernode, or re-latch its
     register. *)
  let reg_index_of_read = Hashtbl.create (max nregs 1) in
  Array.iteri (fun i (r : Circuit.register) -> Hashtbl.replace reg_index_of_read r.read i) regs;
  Hashtbl.iter
    (fun id () ->
      let nd = Circuit.node c id in
      let targets = target_supers part succs.(id) in
      let act = make_activator t Branch targets in
      let own =
        if id < Array.length part.Partition.of_node then part.Partition.of_node.(id) else -1
      in
      let wake_own () = if own >= 0 then set_super t own else act true in
      (* on_force must also refresh the node's own computation: a masked
         force (or a mask change on an already-forced node) leaves the
         unmasked bits holding whatever the slot had at force time, and
         only a re-evaluation (re-latch for registers) makes them track
         the computed value the way the reference's every-cycle sweep
         does. *)
      let wakes =
        match nd.Circuit.kind with
        | Circuit.Reg_read _ ->
          (match Hashtbl.find_opt reg_index_of_read id with
           | Some ri ->
             ( (fun () ->
                 push_pending t ri;
                 act true),
               fun () -> push_pending t ri )
           | None -> ((fun () -> act true), fun () -> ()))
        | Circuit.Reg_next _ ->
          (match Hashtbl.find_opt reg_index_of_next id with
           | Some ri ->
             ( (fun () ->
                 wake_own ();
                 push_pending t ri;
                 act true),
               fun () ->
                 wake_own ();
                 push_pending t ri )
           | None -> ((fun () -> act true), wake_own))
        | Circuit.Logic | Circuit.Mem_read _ ->
          ( (fun () ->
              wake_own ();
              act true),
            wake_own )
        | Circuit.Input -> assert false
      in
      Hashtbl.replace t.force_wakes id wakes)
    fset;
  t.resets <- resets;
  t.write_commits <- write_commits;
  t.mem_activate <- mem_activate;
  (* Everything starts active; all registers latch on the first cycle. *)
  if t.packed then Array.fill t.words 0 (Array.length t.words) 0;
  for k = 0 to nsuper - 1 do
    set_super t k
  done;
  for i = 0 to nregs - 1 do
    push_pending t i
  done;
  t

let poke t id v =
  if Runtime.poke t.rt id v && not t.dirty_inputs.(id) then begin
    t.dirty_inputs.(id) <- true;
    t.dirty_stack.(t.dirty_len) <- id;
    t.dirty_len <- t.dirty_len + 1
  end

let peek t id = Runtime.peek t.rt id

let mark_dirty_input t id =
  if not t.dirty_inputs.(id) then begin
    t.dirty_inputs.(id) <- true;
    t.dirty_stack.(t.dirty_len) <- id;
    t.dirty_len <- t.dirty_len + 1
  end

let force t ?mask id v =
  let nd = Circuit.node (Runtime.circuit t.rt) id in
  match nd.Circuit.kind with
  | Circuit.Input -> if Runtime.force t.rt ?mask id v then mark_dirty_input t id
  | _ -> (
    match Hashtbl.find_opt t.force_wakes id with
    | None ->
      invalid_arg
        (Printf.sprintf "Activity.force: node %S was not declared forcible"
           nd.Circuit.name)
    | Some (on_force, _) ->
      (* Unconditional: even when the slot value is unchanged, the MASK
         may have changed, and the newly unmasked bits must start
         tracking the computed value (re-eval / re-latch under the
         guard), as the reference's every-cycle sweep does. *)
      ignore (Runtime.force t.rt ?mask id v : bool);
      on_force ())

let release t id =
  let nd = Circuit.node (Runtime.circuit t.rt) id in
  if Runtime.release t.rt id then
    match nd.Circuit.kind with
    | Circuit.Input -> ()  (* an input keeps its value until re-poked *)
    | _ -> (
      match Hashtbl.find_opt t.force_wakes id with
      | Some (_, on_release) -> on_release ()
      | None -> ())

let eval_super t k =
  let steps = Array.unsafe_get t.sn_steps k in
  Array.unsafe_set t.sn_hits k (Array.unsafe_get t.sn_hits k + 1);
  let ctr = t.counters in
  let n = Array.length steps in
  for i = 0 to n - 1 do
    if (Array.unsafe_get steps i) () then
      ctr.Counters.changed <- ctr.Counters.changed + 1
  done;
  ctr.Counters.evals <- ctr.Counters.evals + n;
  ctr.Counters.instrs <- ctr.Counters.instrs + Array.unsafe_get t.sn_instrs k

let sweep_packed t =
  let ctr = t.counters in
  let words = t.words in
  let nwords = Array.length words in
  let rec pass () =
    let leftover = ref false in
    for wi = 0 to nwords - 1 do
      (* One condition examines a whole word of active bits (fast path). *)
      ctr.Counters.exams <- ctr.Counters.exams + 1;
      while words.(wi) <> 0 do
        let w = words.(wi) in
        (* Lowest set bit. *)
        let bit = w land -w in
        let b =
          let rec log2 x acc = if x = 1 then acc else log2 (x lsr 1) (acc + 1) in
          log2 bit 0
        in
        ctr.Counters.exams <- ctr.Counters.exams + 1;
        words.(wi) <- w land lnot bit;
        eval_super t ((wi * word_bits) + b)
      done
    done;
    (* A backward activation (possible only with a non-schedulable
       partition) leaves bits set; re-sweep until stable. *)
    for wi = 0 to nwords - 1 do
      if words.(wi) <> 0 then leftover := true
    done;
    if !leftover then pass ()
  in
  pass ()

let sweep_unpacked t =
  let ctr = t.counters in
  let active = t.active in
  let rec pass () =
    let leftover = ref false in
    for k = 0 to t.nsuper - 1 do
      ctr.Counters.exams <- ctr.Counters.exams + 1;
      if active.(k) then begin
        active.(k) <- false;
        eval_super t k
      end
    done;
    for k = 0 to t.nsuper - 1 do
      if active.(k) then leftover := true
    done;
    if !leftover then pass ()
  in
  pass ()

let step t =
  let ctr = t.counters in
  (* Wake consumers of inputs that changed since the last cycle. *)
  for i = 0 to t.dirty_len - 1 do
    let id = t.dirty_stack.(i) in
    t.dirty_inputs.(id) <- false;
    t.input_activate.(id) ()
  done;
  t.dirty_len <- 0;
  if t.packed then sweep_packed t else sweep_unpacked t;
  (* Memory writes commit before registers latch (write data may come from
     register outputs of this cycle). *)
  for i = 0 to Array.length t.write_commits - 1 do
    let mi, commit = t.write_commits.(i) in
    if commit () then t.mem_activate.(mi) ()
  done;
  (* Latch pending registers. *)
  let npending = t.pending_len in
  t.pending_len <- 0;
  for i = 0 to npending - 1 do
    let ri = t.pending_stack.(i) in
    t.pending.(ri) <- false;
    if t.reg_copy.(ri) () then begin
      ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1;
      t.reg_read_activate.(ri) ()
    end
  done;
  (* Slow-path resets: one check per reset signal. *)
  Array.iter
    (fun (test, ris) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then
        Array.iter
          (fun ri ->
            if t.reset_apply.(ri) () then begin
              ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1;
              t.reg_read_activate.(ri) ()
            end;
            (* The register must latch again once reset deasserts. *)
            push_pending t ri)
          ris)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1

let load_mem t mi contents = Runtime.load_mem t.rt mi contents

let counters t = t.counters

let runtime t = t.rt

let supernode_count t = t.nsuper

let supernode_hits t = Array.sub t.sn_hits 0 t.nsuper

(* Checkpoint restore: every value is suspect, so re-evaluate the world and
   latch every register on the next cycle, exactly like cycle zero. *)
let invalidate_all t =
  for k = 0 to t.nsuper - 1 do
    set_super t k
  done;
  for ri = 0 to Array.length t.reg_copy - 1 do
    push_pending t ri
  done

(* Change-event hook: wrap every value-mutating closure (member evaluation,
   register latch, slow-path reset) so that a changed value reports the
   node id.  Pokes mutate input slots outside these closures; observers
   intercept them at the Sim.t layer. *)
let set_change_hook t hook =
  Array.iteri
    (fun k steps ->
      let members = t.sn_members.(k) in
      t.sn_steps.(k) <-
        Array.mapi
          (fun i step ->
            let id = members.(i) in
            fun () ->
              let changed = step () in
              if changed then hook id;
              changed)
          steps)
    t.sn_steps;
  Array.iteri
    (fun ri copy ->
      let id = t.reg_reads.(ri) in
      t.reg_copy.(ri) <-
        (fun () ->
          let changed = copy () in
          if changed then hook id;
          changed))
    t.reg_copy;
  Array.iteri
    (fun ri apply ->
      let id = t.reg_reads.(ri) in
      t.reset_apply.(ri) <-
        (fun () ->
          let changed = apply () in
          if changed then hook id;
          changed))
    t.reset_apply

let sim ?(name = "activity") t =
  {
    Sim.sim_name = name;
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    force = (fun ?mask id v -> force t ?mask id v);
    release = (fun id -> release t id);
    invalidate = (fun () -> invalidate_all t);
    counters = (fun () -> t.counters);
  }
