module Bits = Gsim_bits.Bits
open Gsim_ir

(* A node's expression tree lowered to a linear register-machine program.

   Instructions live in one flat [int array] with a fixed stride of six
   slots per instruction: opcode, destination slot, two source slots and
   two immediates.  All values are packed narrow ints; the machine state is
   a per-program scratch [int array] whose low slots hold the expression's
   distinct constants (written once at evaluator creation) followed by its
   distinct variables (reloaded from the narrow arena at the start of every
   evaluation), with the expression stack above.  The program ends with a
   store instruction that commits the result to the narrow arena and
   reports change.  One evaluation is one pass of the dispatch loop — no
   closure calls, no allocation.

   Programs of consecutive nodes can further be {!fuse}d into one segment.
   A segment is rebased into a single flat address space: the narrow arena
   is extended past the node ids (see [Runtime.create ~extra_slots]) and
   the segment's pooled constants and shared expression stack live in that
   extension, so every operand — node value, constant, or stack temporary —
   is an absolute index into the one arena array.  Variable reads address
   the producer's arena slot directly, which eliminates the per-node
   preload loop entirely; stores stay the only instructions with
   side-effects, so per-node change semantics are identical to the
   standalone programs. *)

type program = {
  node : int;           (* node id the result is stored to *)
  code : int array;     (* stride-6 stream: op, dst, a, b, i1, i2 *)
  consts : int array;   (* packed values of slots [0, vbase) *)
  var_ids : int array;  (* node ids preloaded into slots [vbase, vbase+n) *)
  vbase : int;
  result : int;         (* slot holding the node's value after the loop *)
  scratch : int;        (* total slot count *)
}

let stride = 6

let instr_count p = Array.length p.var_ids + (Array.length p.code / stride)

let scratch_size p = p.scratch

(* --- Opcodes ----------------------------------------------------------- *)

(* Dense ints so the dispatch match compiles to a jump table; the common
   cheap operations sit first. *)
let op_and = 0        (* d <- a land b *)
let op_or = 1         (* d <- a lor b *)
let op_xor = 2        (* d <- a lxor b *)
let op_not = 3        (* d <- lnot a land i1 *)
let op_add = 4        (* d <- (a + b) land i1 *)
let op_sub = 5        (* d <- (a - b) land i1 *)
let op_extract = 6    (* d <- (a lsr i1) land i2 *)
let op_mask = 7       (* d <- a land i1 *)
let op_cat = 8        (* d <- (a lsl i1) lor b *)
let op_eq = 9
let op_neq = 10
let op_lt = 11
let op_leq = 12
let op_gt = 13
let op_geq = 14
let op_select = 15    (* d <- if a <> 0 then b else slot i1 *)
let op_shl = 16       (* d <- a lsl i1 *)
let op_shr = 17       (* d <- a lsr i1 *)
let op_red_and = 18   (* d <- a = i1 *)
let op_red_or = 19    (* d <- a <> 0 *)
let op_red_xor = 20   (* d <- popcount a land 1 *)
let op_sext_mask = 21 (* d <- ((a lsl i1) asr i1) land i2 *)
let op_neg = 22       (* d <- (0 - a) land i1 *)
let op_mul = 23
let op_div = 24
let op_div_s = 25     (* i1 packs the operand sext shifts, i2 the mask *)
let op_rem = 26
let op_rem_s = 27
let op_lt_s = 28
let op_leq_s = 29
let op_gt_s = 30
let op_geq_s = 31
let op_dshl = 32      (* i1 = operand width, i2 = mask *)
let op_dshr = 33
let op_dshr_s = 34
let op_load = 35      (* d <- narrow.(i1) *)
let op_store = 36     (* narrow.(i1) <- a when different; counts change *)
let op_load2 = 37     (* d <- narrow.(i1); slot b <- narrow.(i2) *)
let op_copy = 38      (* narrow.(i2) <- narrow.(i1) when different; counts *)
let op_select_eq = 39 (* d <- if a = slot b then slot i1 else slot i2 *)

(* Conditional-skip instructions (above the fused-store range): one level
   of a right-nested mux chain.  When the condition holds, the arm value
   is written and [i2] code elements are skipped (a relative distance, so
   segment concatenation preserves it); otherwise fall through to the next
   level.  This mirrors the closure backend's lazy mux evaluation: a
   priority chain of k levels retires ~k/2 instructions instead of the
   2k+1 of eager selects. *)
let op_case_eq = 100  (* if a = slot b then (d <- slot i1; skip i2) *)
let op_case_nz = 101  (* if a <> 0 then (d <- slot b; skip i2) *)

(* Superinstructions: [base + fused_store_offset] computes the base
   operation and immediately compare-stores the result to node [i2] —
   the final operator of a node's program fuses with its store, saving a
   dispatch per evaluation.  Only bases whose [i2] immediate is free are
   eligible, except [op_select_eq], whose fused form carries the node id
   in the (otherwise unused) [d] field. *)
let fused_store_offset = 40

let fusable op =
  op <= op_dshr
  && op <> op_extract && op <> op_sext_mask && op <> op_div_s && op <> op_rem_s
  && op <> op_dshl

let base_op op =
  if op >= fused_store_offset && op <= op_select_eq + fused_store_offset then
    op - fused_store_offset
  else op

(* Operand [b] (and, for select, [i1]) is a scratch slot for most opcodes;
   fusion needs to know which in order to renumber slots. *)
let b_is_slot op =
  not
    (op = op_not || op = op_extract || op = op_mask || op = op_shl || op = op_shr
   || op = op_red_and || op = op_red_or || op = op_red_xor || op = op_sext_mask
   || op = op_neg || op = op_load || op = op_store)

(* Sext shift amounts are at most 62 (width >= 1), so two of them pack
   into one immediate. *)
let pack2 k1 k2 = k1 lor (k2 lsl 6)

(* --- Compilation ------------------------------------------------------- *)

(* Raised when any subexpression leaves the narrow path: the node falls
   back to the closure compiler. *)
exception Wide

(* Pass 1: check every subexpression is narrow and collect the distinct
   constants and variables in first-occurrence order.  Works from the
   circuit alone so engines can compile (and size their arena extension)
   before the runtime exists. *)
let scan c e =
  let const_ord = Hashtbl.create 4 and var_ord = Hashtbl.create 4 in
  let consts = ref [] and vars = ref [] in
  let rec go e =
    if not (Bits.fits_int (Expr.width e)) then raise Wide;
    match e.Expr.desc with
    | Expr.Const v ->
      let packed = Bits.to_packed v in
      if not (Hashtbl.mem const_ord packed) then begin
        Hashtbl.replace const_ord packed (Hashtbl.length const_ord);
        consts := packed :: !consts
      end
    | Expr.Var id ->
      if not (Bits.fits_int (Circuit.node c id).Circuit.width) then raise Wide;
      if not (Hashtbl.mem var_ord id) then begin
        Hashtbl.replace var_ord id (Hashtbl.length var_ord);
        vars := id :: !vars
      end
    | Expr.Unop (_, a) -> go a
    | Expr.Binop (_, a, b) ->
      go a;
      go b
    | Expr.Mux (s, a, b) ->
      go s;
      go a;
      go b
  in
  go e;
  (Array.of_list (List.rev !consts), Array.of_list (List.rev !vars), const_ord, var_ord)

type builder = {
  mutable rev_code : int list;  (* flattened instructions, reversed *)
  mutable count : int;          (* instructions emitted so far *)
  mutable max_slot : int;
  mutable patches : (int * int) list;
      (* (case instr index, chain end index): the case's i2 skip field is
         patched to the relative distance once the code array exists *)
  cslot : (int, int) Hashtbl.t;
  vslot : (int, int) Hashtbl.t;  (* node id -> absolute slot *)
}

let push b op dst a bb i1 i2 =
  b.rev_code <- i2 :: i1 :: bb :: a :: dst :: op :: b.rev_code;
  b.count <- b.count + 1;
  if dst > b.max_slot then b.max_slot <- dst

let is_leaf e =
  match e.Expr.desc with Expr.Const _ | Expr.Var _ -> true | _ -> false

(* Pass 2: stack-style emission.  [sp] is the first free stack slot; the
   result lands either in a const/var slot (leaves, identity pads) or at
   [sp].  Operands are read before the destination is written, so reusing
   [sp] as both source and destination is safe. *)
let rec emit b e ~sp =
  match e.Expr.desc with
  | Expr.Const v -> Hashtbl.find b.cslot (Bits.to_packed v)
  | Expr.Var id -> Hashtbl.find b.vslot id
  | Expr.Unop (op, a) ->
    let w_in = Expr.width a in
    let sa = emit b a ~sp in
    (match op with
     | Expr.Pad_unsigned n when n >= w_in -> sa  (* identity, no code *)
     | _ ->
       let dst = sp in
       (match op with
        | Expr.Not -> push b op_not dst sa 0 (Runtime.mask w_in) 0
        | Expr.Neg -> push b op_neg dst sa 0 (Runtime.mask (w_in + 1)) 0
        | Expr.Reduce_and -> push b op_red_and dst sa 0 (Runtime.mask w_in) 0
        | Expr.Reduce_or -> push b op_red_or dst sa 0 0 0
        | Expr.Reduce_xor -> push b op_red_xor dst sa 0 0 0
        | Expr.Shl_const n -> push b op_shl dst sa 0 n 0
        | Expr.Shr_const n -> push b op_shr dst sa 0 n 0
        | Expr.Extract (hi, lo) ->
          push b op_extract dst sa 0 lo (Runtime.mask (hi - lo + 1))
        | Expr.Pad_unsigned n -> push b op_mask dst sa 0 (Runtime.mask n) 0
        | Expr.Pad_signed n ->
          if n >= w_in then push b op_sext_mask dst sa 0 (63 - w_in) (Runtime.mask n)
          else push b op_mask dst sa 0 (Runtime.mask n) 0);
       dst)
  | Expr.Binop (op, a, bx) ->
    let w1 = Expr.width a and w2 = Expr.width bx and wr = Expr.width e in
    let sa = emit b a ~sp in
    let sp2 = if sa >= sp then sp + 1 else sp in
    let sb = emit b bx ~sp:sp2 in
    let dst = sp in
    (match op with
     | Expr.Add -> push b op_add dst sa sb (Runtime.mask wr) 0
     | Expr.Sub -> push b op_sub dst sa sb (Runtime.mask wr) 0
     | Expr.Mul -> push b op_mul dst sa sb 0 0
     | Expr.Div -> push b op_div dst sa sb 0 0
     | Expr.Div_signed ->
       push b op_div_s dst sa sb (pack2 (63 - w1) (63 - w2)) (Runtime.mask wr)
     | Expr.Rem -> push b op_rem dst sa sb (Runtime.mask wr) 0
     | Expr.Rem_signed ->
       push b op_rem_s dst sa sb (pack2 (63 - w1) (63 - w2)) (Runtime.mask wr)
     | Expr.And -> push b op_and dst sa sb 0 0
     | Expr.Or -> push b op_or dst sa sb 0 0
     | Expr.Xor -> push b op_xor dst sa sb 0 0
     | Expr.Cat -> push b op_cat dst sa sb w2 0
     | Expr.Eq -> push b op_eq dst sa sb 0 0
     | Expr.Neq -> push b op_neq dst sa sb 0 0
     | Expr.Lt -> push b op_lt dst sa sb 0 0
     | Expr.Leq -> push b op_leq dst sa sb 0 0
     | Expr.Gt -> push b op_gt dst sa sb 0 0
     | Expr.Geq -> push b op_geq dst sa sb 0 0
     | Expr.Lt_signed -> push b op_lt_s dst sa sb (pack2 (63 - w1) (63 - w2)) 0
     | Expr.Leq_signed -> push b op_leq_s dst sa sb (pack2 (63 - w1) (63 - w2)) 0
     | Expr.Gt_signed -> push b op_gt_s dst sa sb (pack2 (63 - w1) (63 - w2)) 0
     | Expr.Geq_signed -> push b op_geq_s dst sa sb (pack2 (63 - w1) (63 - w2)) 0
     | Expr.Dshl -> push b op_dshl dst sa sb w1 (Runtime.mask w1)
     | Expr.Dshr -> push b op_dshr dst sa sb w1 0
     | Expr.Dshr_signed -> push b op_dshr_s dst sa sb w1 (Runtime.mask w1));
    dst
  | Expr.Mux (s, a, bx) ->
    (* A right-nested chain of muxes with leaf true-arms — the priority
       mux / register-file-read shape — lowers to short-circuit case
       instructions: each level tests its condition and, when it holds,
       writes its arm and skips the rest of the chain.  Skipped levels
       never evaluate, exactly like the closure backend's lazy muxes. *)
    let rec split acc e' =
      match e'.Expr.desc with
      | Expr.Mux (s', a', rest) when is_leaf a' -> split ((s', a') :: acc) rest
      | _ -> (List.rev acc, e')
    in
    let levels, tail = split [] e in
    if List.length levels >= 2 then begin
      let dst = sp in
      let cases =
        List.map
          (fun (s', a') ->
            let sa = emit b a' ~sp:(sp + 1) in
            (match s'.Expr.desc with
             | Expr.Binop (Expr.Eq, l, r) when is_leaf l && is_leaf r ->
               let sl = emit b l ~sp:(sp + 1) in
               let sr = emit b r ~sp:(sp + 1) in
               push b op_case_eq dst sl sr sa 0
             | _ ->
               let sc = emit b s' ~sp:(sp + 1) in
               push b op_case_nz dst sc sa 0 0);
            b.count - 1)
          levels
      in
      let st = emit b tail ~sp:(sp + 1) in
      if st <> dst then
        push b op_mask dst st 0 (Runtime.mask (Expr.width e)) 0;
      let chain_end = b.count in
      b.patches <- List.map (fun ci -> (ci, chain_end)) cases @ b.patches;
      dst
    end
    else begin
      (* Single level: both arms evaluate unconditionally (expressions are
         pure and total), then a select picks one. *)
      let ss = emit b s ~sp in
      let sp2 = if ss >= sp then sp + 1 else sp in
      let sa = emit b a ~sp:sp2 in
      let sp3 = if sa >= sp2 then sp2 + 1 else sp2 in
      let sb = emit b bx ~sp:sp3 in
      push b op_select sp ss sa sb 0;
      sp
    end

let compile c (nd : Circuit.node) =
  match (nd.Circuit.kind, nd.Circuit.expr) with
  | ((Circuit.Logic | Circuit.Reg_next _), Some e)
    when Bits.fits_int nd.Circuit.width -> (
    try
      let consts, var_ids, const_ord, var_ord = scan c e in
      let vbase = Array.length consts in
      let base = vbase + Array.length var_ids in
      let b =
        {
          rev_code = [];
          count = 0;
          max_slot = base - 1;
          patches = [];
          cslot = const_ord;
          vslot = Hashtbl.create (Array.length var_ids);
        }
      in
      Hashtbl.iter (fun id ord -> Hashtbl.replace b.vslot id (vbase + ord)) var_ord;
      let result = emit b e ~sp:base in
      push b op_store 0 result 0 nd.Circuit.id 0;
      let code = Array.of_list (List.rev b.rev_code) in
      (* Resolve chain skips: distance from the element after the case
         instruction to the chain end.  The peepholes below delete
         instructions, which would invalidate these relative distances, so
         they only run on patch-free programs. *)
      let has_patches = b.patches <> [] in
      List.iter
        (fun (ci, ei) -> code.((ci * stride) + 5) <- (ei - ci - 1) * stride)
        b.patches;
      (* Peephole: an eq whose sole consumer is the select immediately
         after it (a mux with leaf arms and an equality condition — the
         most common narrow pattern) merges into one select_eq.  Stack
         slots are consumed exactly once, so adjacency plus operand match
         is a complete soundness check. *)
      let code =
        let n = Array.length code / stride in
        if has_patches || n < 2 then code
        else begin
          let out = Array.make (Array.length code) 0 in
          let k = ref 0 in
          let j = ref 0 in
          while !j < n do
            let o = !j * stride in
            let nx = o + stride in
            if
              !j + 1 < n
              && code.(o) = op_eq
              && code.(nx) = op_select
              && code.(nx + 2) = code.(o + 1)
              && code.(nx + 3) <> code.(o + 1)
              && code.(nx + 4) <> code.(o + 1)
            then begin
              out.(!k) <- op_select_eq;
              out.(!k + 1) <- code.(nx + 1);
              out.(!k + 2) <- code.(o + 2);
              out.(!k + 3) <- code.(o + 3);
              out.(!k + 4) <- code.(nx + 3);
              out.(!k + 5) <- code.(nx + 4);
              k := !k + stride;
              j := !j + 2
            end
            else begin
              Array.blit code o out !k stride;
              k := !k + stride;
              incr j
            end
          done;
          Array.sub out 0 !k
        end
      in
      (* Peephole: when the instruction before the final store computes the
         stored slot and has a free field for the node id, fuse the two —
         one dispatch fewer per evaluation. *)
      let code =
        let n = Array.length code / stride in
        if has_patches || n < 2 then code
        else begin
          let last = (n - 1) * stride and prev = (n - 2) * stride in
          if
            code.(last) = op_store
            && code.(prev + 1) = code.(last + 2)
            && (fusable code.(prev) || code.(prev) = op_select_eq)
          then begin
            let code' = Array.sub code 0 last in
            code'.(prev) <- code.(prev) + fused_store_offset;
            if code.(prev) = op_select_eq then code'.(prev + 1) <- code.(last + 4)
            else code'.(prev + 5) <- code.(last + 4);
            code'
          end
          else code
        end
      in
      Some
        {
          node = nd.Circuit.id;
          code;
          consts;
          var_ids;
          vbase;
          result;
          scratch = b.max_slot + 1;
        }
    with Wide -> None)
  | _ -> None

(* --- The dispatch loop ------------------------------------------------- *)

(* All slot and arena indices were produced by [compile]/[fuse] against the
   same runtime, so the loop uses unchecked accesses throughout.  Returns
   the number of store instructions whose node value changed. *)
let exec regs narrow code ncode =
  let changed = ref 0 in
  let pc = ref 0 in
  while !pc < ncode do
    let i = !pc in
    pc := i + stride;
    (* default advance; the case arms add their skip on top *)
    let op = Array.unsafe_get code i in
    let d = Array.unsafe_get code (i + 1) in
    let a = Array.unsafe_get regs (Array.unsafe_get code (i + 2)) in
    let sb = Array.unsafe_get code (i + 3) in
    let i1 = Array.unsafe_get code (i + 4) in
    let i2 = Array.unsafe_get code (i + 5) in
    (match op with
     | 0 -> Array.unsafe_set regs d (a land Array.unsafe_get regs sb)
     | 1 -> Array.unsafe_set regs d (a lor Array.unsafe_get regs sb)
     | 2 -> Array.unsafe_set regs d (a lxor Array.unsafe_get regs sb)
     | 3 -> Array.unsafe_set regs d (lnot a land i1)
     | 4 -> Array.unsafe_set regs d ((a + Array.unsafe_get regs sb) land i1)
     | 5 -> Array.unsafe_set regs d ((a - Array.unsafe_get regs sb) land i1)
     | 6 -> Array.unsafe_set regs d ((a lsr i1) land i2)
     | 7 -> Array.unsafe_set regs d (a land i1)
     | 8 -> Array.unsafe_set regs d ((a lsl i1) lor Array.unsafe_get regs sb)
     | 9 -> Array.unsafe_set regs d (if a = Array.unsafe_get regs sb then 1 else 0)
     | 10 -> Array.unsafe_set regs d (if a <> Array.unsafe_get regs sb then 1 else 0)
     | 11 -> Array.unsafe_set regs d (if a < Array.unsafe_get regs sb then 1 else 0)
     | 12 -> Array.unsafe_set regs d (if a <= Array.unsafe_get regs sb then 1 else 0)
     | 13 -> Array.unsafe_set regs d (if a > Array.unsafe_get regs sb then 1 else 0)
     | 14 -> Array.unsafe_set regs d (if a >= Array.unsafe_get regs sb then 1 else 0)
     | 15 ->
       Array.unsafe_set regs d
         (if a <> 0 then Array.unsafe_get regs sb else Array.unsafe_get regs i1)
     | 16 -> Array.unsafe_set regs d (a lsl i1)
     | 17 -> Array.unsafe_set regs d (a lsr i1)
     | 18 -> Array.unsafe_set regs d (if a = i1 then 1 else 0)
     | 19 -> Array.unsafe_set regs d (if a <> 0 then 1 else 0)
     | 20 -> Array.unsafe_set regs d (Runtime.popcount_int a land 1)
     | 21 -> Array.unsafe_set regs d (((a lsl i1) asr i1) land i2)
     | 22 -> Array.unsafe_set regs d ((0 - a) land i1)
     | 23 -> Array.unsafe_set regs d (a * Array.unsafe_get regs sb)
     | 24 ->
       let bv = Array.unsafe_get regs sb in
       Array.unsafe_set regs d (if bv = 0 then 0 else a / bv)
     | 25 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let bv = (Array.unsafe_get regs sb lsl k2) asr k2 in
       Array.unsafe_set regs d (if bv = 0 then 0 else (((a lsl k1) asr k1) / bv) land i2)
     | 26 ->
       let bv = Array.unsafe_get regs sb in
       Array.unsafe_set regs d ((if bv = 0 then a else a mod bv) land i1)
     | 27 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let bv = (Array.unsafe_get regs sb lsl k2) asr k2 in
       let av = (a lsl k1) asr k1 in
       Array.unsafe_set regs d ((if bv = 0 then av else av mod bv) land i2)
     | 28 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       Array.unsafe_set regs d
         (if (a lsl k1) asr k1 < (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0)
     | 29 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       Array.unsafe_set regs d
         (if (a lsl k1) asr k1 <= (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0)
     | 30 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       Array.unsafe_set regs d
         (if (a lsl k1) asr k1 > (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0)
     | 31 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       Array.unsafe_set regs d
         (if (a lsl k1) asr k1 >= (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0)
     | 32 ->
       let s = Array.unsafe_get regs sb in
       Array.unsafe_set regs d (if s >= i1 then 0 else (a lsl s) land i2)
     | 33 ->
       let s = Array.unsafe_get regs sb in
       Array.unsafe_set regs d (if s >= i1 then 0 else a lsr s)
     | 34 ->
       let s = Array.unsafe_get regs sb in
       Array.unsafe_set regs d
         (if s >= i1 then (if a lsr (i1 - 1) = 1 then i2 else 0)
          else (((a lsl (63 - i1)) asr (63 - i1)) asr s) land i2)
     | 35 -> Array.unsafe_set regs d (Array.unsafe_get narrow i1)
     | 36 ->
       if a <> Array.unsafe_get narrow i1 then begin
         Array.unsafe_set narrow i1 a;
         incr changed
       end
     | 37 ->
       Array.unsafe_set regs d (Array.unsafe_get narrow i1);
       Array.unsafe_set regs sb (Array.unsafe_get narrow i2)
     | 38 ->
       let v = Array.unsafe_get narrow i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 39 ->
       Array.unsafe_set regs d
         (if a = Array.unsafe_get regs sb then Array.unsafe_get regs i1
          else Array.unsafe_get regs i2)
     (* Fused op+store variants: base opcode + 40. *)
     | 40 ->
       let v = a land Array.unsafe_get regs sb in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 41 ->
       let v = a lor Array.unsafe_get regs sb in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 42 ->
       let v = a lxor Array.unsafe_get regs sb in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 43 ->
       let v = lnot a land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 44 ->
       let v = (a + Array.unsafe_get regs sb) land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 45 ->
       let v = (a - Array.unsafe_get regs sb) land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 47 ->
       let v = a land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 48 ->
       let v = (a lsl i1) lor Array.unsafe_get regs sb in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 49 ->
       let v = if a = Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 50 ->
       let v = if a <> Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 51 ->
       let v = if a < Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 52 ->
       let v = if a <= Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 53 ->
       let v = if a > Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 54 ->
       let v = if a >= Array.unsafe_get regs sb then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 55 ->
       let v = if a <> 0 then Array.unsafe_get regs sb else Array.unsafe_get regs i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 56 ->
       let v = a lsl i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 57 ->
       let v = a lsr i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 58 ->
       let v = if a = i1 then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 59 ->
       let v = if a <> 0 then 1 else 0 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 60 ->
       let v = Runtime.popcount_int a land 1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 62 ->
       let v = (0 - a) land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 63 ->
       let v = a * Array.unsafe_get regs sb in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 64 ->
       let bv = Array.unsafe_get regs sb in
       let v = if bv = 0 then 0 else a / bv in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 66 ->
       let bv = Array.unsafe_get regs sb in
       let v = (if bv = 0 then a else a mod bv) land i1 in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 68 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let v =
         if (a lsl k1) asr k1 < (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0
       in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 69 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let v =
         if (a lsl k1) asr k1 <= (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0
       in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 70 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let v =
         if (a lsl k1) asr k1 > (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0
       in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 71 ->
       let k1 = i1 land 63 and k2 = i1 lsr 6 in
       let v =
         if (a lsl k1) asr k1 >= (Array.unsafe_get regs sb lsl k2) asr k2 then 1 else 0
       in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 73 ->
       let s = Array.unsafe_get regs sb in
       let v = if s >= i1 then 0 else a lsr s in
       if v <> Array.unsafe_get narrow i2 then begin
         Array.unsafe_set narrow i2 v;
         incr changed
       end
     | 79 ->
       (* select_eq_st: node id in d, both arms in i1/i2. *)
       let v =
         if a = Array.unsafe_get regs sb then Array.unsafe_get regs i1
         else Array.unsafe_get regs i2
       in
       if v <> Array.unsafe_get narrow d then begin
         Array.unsafe_set narrow d v;
         incr changed
       end
     | 100 ->
       if a = Array.unsafe_get regs sb then begin
         Array.unsafe_set regs d (Array.unsafe_get regs i1);
         pc := !pc + i2
       end
     | 101 ->
       if a <> 0 then begin
         Array.unsafe_set regs d (Array.unsafe_get regs sb);
         pc := !pc + i2
       end
     | _ -> assert false)
  done;
  !changed

let evaluator rt p =
  let narrow = Runtime.narrow_values rt in
  let regs = Array.make (max p.scratch 1) 0 in
  Array.blit p.consts 0 regs 0 (Array.length p.consts);
  let code = p.code in
  let ncode = Array.length code in
  let var_ids = p.var_ids in
  let nvars = Array.length var_ids in
  let vbase = p.vbase in
  fun () ->
    for i = 0 to nvars - 1 do
      Array.unsafe_set regs (vbase + i)
        (Array.unsafe_get narrow (Array.unsafe_get var_ids i))
    done;
    exec regs narrow code ncode > 0

(* --- Segment fusion ---------------------------------------------------- *)

type segment = {
  seg_code : int array;
  seg_consts : int array;  (* written once into narrow.[seg_base, ...) *)
  seg_base : int;          (* first arena slot of this segment's extension *)
  seg_scratch : int;       (* arena slots consumed starting at seg_base *)
  seg_instrs : int;
}

let segment_instrs s = s.seg_instrs

let segment_scratch s = s.seg_scratch

(* Fuse the programs of consecutive nodes into one instruction stream over
   one flat address space: every operand is an absolute index into the
   narrow arena, whose extension (starting at [base]) holds

     [base, base + npool)            constants, pooled across all programs
     [base + npool, base + scratch)  expression stack, reused per program

   Variable operands address the producer's arena slot directly — no load
   instructions at all, so the per-evaluation work drops to the operations
   themselves plus one (usually fused) store.  This is sound everywhere a
   run of consecutive programs is sound under the closure backend: closures
   also read operand values straight from the arena at evaluation time. *)
let fuse ~base programs =
  let pool = Hashtbl.create 16 in
  let pool_rev = ref [] in
  let pool_slot v =
    match Hashtbl.find_opt pool v with
    | Some s -> s
    | None ->
      let s = Hashtbl.length pool in
      Hashtbl.replace pool v s;
      pool_rev := v :: !pool_rev;
      s
  in
  let cmaps = List.map (fun p -> Array.map pool_slot p.consts) programs in
  let npool = Hashtbl.length pool in
  let stack_base = base + npool in
  let max_stack = ref 0 in
  let rev_code = ref [] in
  let ninstrs = ref 0 in
  let emit6 op d a bb i1 i2 =
    rev_code := i2 :: i1 :: bb :: a :: d :: op :: !rev_code;
    incr ninstrs
  in
  List.iter2
    (fun p cmap ->
      let stack0 = p.vbase + Array.length p.var_ids in
      if p.scratch - stack0 > !max_stack then max_stack := p.scratch - stack0;
      let remap s =
        if s < p.vbase then base + cmap.(s)
        else if s < stack0 then p.var_ids.(s - p.vbase)
        else stack_base + (s - stack0)
      in
      let m = Array.length p.code / stride in
      for j = 0 to m - 1 do
        let o = j * stride in
        let op = p.code.(o) in
        let bop = base_op op in
        emit6 op
          (if bop = op_store then 0
           else if op = op_select_eq + fused_store_offset then p.code.(o + 1)
           else remap p.code.(o + 1))
          (remap p.code.(o + 2))
          (if b_is_slot bop then remap p.code.(o + 3) else p.code.(o + 3))
          (if bop = op_select || bop = op_select_eq || bop = op_case_eq then
             remap p.code.(o + 4)
           else p.code.(o + 4))
          (if bop = op_select_eq then remap p.code.(o + 5) else p.code.(o + 5))
      done)
    programs cmaps;
  {
    seg_code = Array.of_list (List.rev !rev_code);
    seg_consts = Array.of_list (List.rev !pool_rev);
    seg_base = base;
    seg_scratch = npool + !max_stack;
    seg_instrs = !ninstrs;
  }

(* A segment of [op_copy] instructions: the register-commit phase as
   bytecode.  [pairs] lists (source node, destination node); each copy
   compare-stores and counts a change exactly like [Runtime.reg_copier]
   does on the narrow path. *)
let copy_segment pairs =
  let n = Array.length pairs in
  let code = Array.make (n * stride) 0 in
  Array.iteri
    (fun j (src, dst) ->
      let o = j * stride in
      code.(o) <- op_copy;
      code.(o + 4) <- src;
      code.(o + 5) <- dst)
    pairs;
  { seg_code = code; seg_consts = [||]; seg_base = 0; seg_scratch = 0; seg_instrs = n }

let segment_evaluator rt seg =
  let narrow = Runtime.narrow_values rt in
  Array.blit seg.seg_consts 0 narrow seg.seg_base (Array.length seg.seg_consts);
  let code = seg.seg_code in
  let ncode = Array.length code in
  (* One flat address space: the arena doubles as the register file. *)
  fun () -> exec narrow narrow code ncode

(* --- Debugging --------------------------------------------------------- *)

let rec op_name op =
  if op = op_and then "and"
  else if op = op_or then "or"
  else if op = op_xor then "xor"
  else if op = op_not then "not"
  else if op = op_add then "add"
  else if op = op_sub then "sub"
  else if op = op_extract then "extract"
  else if op = op_mask then "mask"
  else if op = op_cat then "cat"
  else if op = op_eq then "eq"
  else if op = op_neq then "neq"
  else if op = op_lt then "lt"
  else if op = op_leq then "leq"
  else if op = op_gt then "gt"
  else if op = op_geq then "geq"
  else if op = op_select then "select"
  else if op = op_shl then "shl"
  else if op = op_shr then "shr"
  else if op = op_red_and then "red_and"
  else if op = op_red_or then "red_or"
  else if op = op_red_xor then "red_xor"
  else if op = op_sext_mask then "sext_mask"
  else if op = op_neg then "neg"
  else if op = op_mul then "mul"
  else if op = op_div then "div"
  else if op = op_div_s then "div_s"
  else if op = op_rem then "rem"
  else if op = op_rem_s then "rem_s"
  else if op = op_lt_s then "lt_s"
  else if op = op_leq_s then "leq_s"
  else if op = op_gt_s then "gt_s"
  else if op = op_geq_s then "geq_s"
  else if op = op_dshl then "dshl"
  else if op = op_dshr then "dshr"
  else if op = op_dshr_s then "dshr_s"
  else if op = op_load then "load"
  else if op = op_store then "store"
  else if op = op_load2 then "load2"
  else if op = op_copy then "copy"
  else if op = op_select_eq then "select_eq"
  else if op = op_case_eq then "case_eq"
  else if op = op_case_nz then "case_nz"
  else if op >= fused_store_offset && op <= op_select_eq + fused_store_offset then
    op_name (op - fused_store_offset) ^ "_st"
  else "?"

let pp_code buf code =
  let n = Array.length code / stride in
  for i = 0 to n - 1 do
    let base = i * stride in
    let op = code.(base) in
    if op = op_store then
      Buffer.add_string buf
        (Printf.sprintf "  store n%d <- r%d\n" code.(base + 4) code.(base + 2))
    else if op = op_load then
      Buffer.add_string buf
        (Printf.sprintf "  r%d = load n%d\n" code.(base + 1) code.(base + 4))
    else if op = op_load2 then
      Buffer.add_string buf
        (Printf.sprintf "  r%d = load n%d; r%d = load n%d\n" code.(base + 1)
           code.(base + 4) code.(base + 3) code.(base + 5))
    else if op = op_copy then
      Buffer.add_string buf
        (Printf.sprintf "  copy n%d <- n%d\n" code.(base + 5) code.(base + 4))
    else if op = op_select_eq + fused_store_offset then
      Buffer.add_string buf
        (Printf.sprintf "  n%d <- select_eq_st r%d r%d r%d r%d\n" code.(base + 1)
           code.(base + 2) code.(base + 3) code.(base + 4) code.(base + 5))
    else if op = op_case_eq || op = op_case_nz then
      Buffer.add_string buf
        (Printf.sprintf "  r%d = %s r%d r%d r%d skip+%d\n" code.(base + 1)
           (op_name op) code.(base + 2) code.(base + 3) code.(base + 4)
           (code.(base + 5) / stride))
    else if op >= fused_store_offset then
      Buffer.add_string buf
        (Printf.sprintf "  n%d <- %s r%d r%d #%d\n" code.(base + 5) (op_name op)
           code.(base + 2) code.(base + 3) code.(base + 4))
    else
      Buffer.add_string buf
        (Printf.sprintf "  r%d = %s r%d r%d #%d #%d\n" code.(base + 1) (op_name op)
           code.(base + 2) code.(base + 3) code.(base + 4) code.(base + 5))
  done

let disassemble p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "node %d: %d const(s), %d var(s), %d slot(s)\n" p.node
       (Array.length p.consts) (Array.length p.var_ids) p.scratch);
  Array.iteri
    (fun i v -> Buffer.add_string buf (Printf.sprintf "  r%d = const %d\n" i v))
    p.consts;
  Array.iteri
    (fun i id ->
      Buffer.add_string buf (Printf.sprintf "  r%d = preload n%d\n" (p.vbase + i) id))
    p.var_ids;
  pp_code buf p.code;
  Buffer.contents buf

let disassemble_segment s =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "segment @%d: %d instr(s), %d const(s), %d slot(s)\n" s.seg_base
       s.seg_instrs (Array.length s.seg_consts) s.seg_scratch);
  Array.iteri
    (fun i v ->
      Buffer.add_string buf (Printf.sprintf "  r%d = const %d\n" (s.seg_base + i) v))
    s.seg_consts;
  pp_code buf s.seg_code;
  Buffer.contents buf
