module Bits = Gsim_bits.Bits
open Gsim_ir

(* The barrier is shared with the level-synchronous engine. *)
module Barrier = struct
  type t = {
    count : int Atomic.t;
    sense : bool Atomic.t;
    total : int;
    lock : Mutex.t;
    cond : Condition.t;
  }

  let create total =
    {
      count = Atomic.make 0;
      sense = Atomic.make false;
      total;
      lock = Mutex.create ();
      cond = Condition.create ();
    }

  let wait b local_sense =
    if Atomic.fetch_and_add b.count 1 = b.total - 1 then begin
      Atomic.set b.count 0;
      Mutex.lock b.lock;
      Atomic.set b.sense local_sense;
      Condition.broadcast b.cond;
      Mutex.unlock b.lock
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.sense <> local_sense && !spins < 2000 do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.sense <> local_sense then begin
        Mutex.lock b.lock;
        while Atomic.get b.sense <> local_sense do
          Condition.wait b.cond b.lock
        done;
        Mutex.unlock b.lock
      end
    end
end

type t = {
  rt : Runtime.t;
  threads : int;
  cones : (unit -> bool) array array;  (* per thread, evaluators in topo order *)
  cone_node_counts : int array;
  evaluated_nodes : int;
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
  resets : ((unit -> bool) * (unit -> bool) array) array;
  counters : Counters.t;
  barrier : Barrier.t;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable destroyed : bool;
  mutable coord_sense : bool;
}

(* Sinks and their combinational fan-in cones. *)
let sink_groups c ~threads =
  let rank = Array.make (Circuit.max_id c) (-1) in
  let order = Circuit.eval_order c in
  Array.iteri (fun i id -> rank.(id) <- i) order;
  (* Backward closure over evaluated nodes from a sink id. *)
  let cone_of id =
    let seen = Hashtbl.create 64 in
    let rec go id =
      if rank.(id) >= 0 && not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        List.iter go (Circuit.dependencies c id)
      end
    in
    go id;
    seen
  in
  (* Sink sets: each register's next node (plus the operands of write and
     read ports and each observable output). *)
  let sinks = ref [] in
  List.iter
    (fun (r : Circuit.register) -> sinks := r.Circuit.next :: !sinks)
    (Circuit.registers c);
  Array.iter
    (fun (m : Circuit.memory) ->
      List.iter
        (fun (w : Circuit.write_port) ->
          sinks := w.w_addr :: w.w_data :: w.w_en :: !sinks)
        m.Circuit.write_ports;
      List.iter (fun id -> sinks := id :: !sinks) m.Circuit.read_port_ids)
    (Circuit.memories c);
  Circuit.iter_nodes c (fun n -> if n.Circuit.is_output then sinks := n.Circuit.id :: !sinks);
  (* Reset signals must be fresh for the commit phase. *)
  List.iter
    (fun (r : Circuit.register) ->
      match r.Circuit.reset with
      | Some rst -> sinks := rst.Circuit.reset_signal :: !sinks
      | None -> ())
    (Circuit.registers c);
  let sinks = List.sort_uniq compare !sinks in
  let sinks = List.filter (fun id -> rank.(id) >= 0 || Circuit.dependencies c id <> []) sinks in
  (* Greedy balance by cone size (longest-processing-time heuristic). *)
  let weighted =
    List.map (fun id -> (id, Hashtbl.length (cone_of id))) sinks
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  let assignment = Array.make threads [] in
  let load = Array.make threads 0 in
  List.iter
    (fun (id, w) ->
      let best = ref 0 in
      for k = 1 to threads - 1 do
        if load.(k) < load.(!best) then best := k
      done;
      assignment.(!best) <- id :: assignment.(!best);
      load.(!best) <- load.(!best) + w)
    weighted;
  (* Per-thread cone in topological order. *)
  let cones =
    Array.map
      (fun sink_ids ->
        let members = Hashtbl.create 256 in
        List.iter
          (fun sink ->
            let cone = cone_of sink in
            Hashtbl.iter (fun id () -> Hashtbl.replace members id ()) cone;
            if rank.(sink) >= 0 then Hashtbl.replace members sink ())
          sink_ids;
        let ids = Hashtbl.fold (fun id () acc -> id :: acc) members [] in
        List.sort (fun a b -> compare rank.(a) rank.(b)) ids)
      assignment
  in
  (cones, Array.length order)

let create ~threads c =
  if threads < 1 then invalid_arg "Repcut.create: threads >= 1";
  let rt = Runtime.create c in
  let cone_ids, evaluated_nodes = sink_groups c ~threads in
  let cones =
    Array.map
      (fun ids ->
        Array.of_list (List.map (fun id -> Runtime.node_evaluator rt (Circuit.node c id)) ids))
      cone_ids
  in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let reg_copies =
    Circuit.registers c |> List.map (Runtime.reg_copier rt) |> Array.of_list
  in
  let resets =
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (r : Circuit.register) ->
        match r.reset with
        | Some rst when rst.Circuit.slow_path ->
          Hashtbl.replace groups rst.Circuit.reset_signal
            (Runtime.reset_applier rt r
             :: (try Hashtbl.find groups rst.Circuit.reset_signal with Not_found -> []))
        | Some _ | None -> ())
      (Circuit.registers c);
    Hashtbl.fold
      (fun s appliers acc -> (Runtime.signal_is_set rt s, Array.of_list appliers) :: acc)
      groups []
    |> Array.of_list
  in
  let t =
    {
      rt;
      threads;
      cones;
      cone_node_counts = Array.map Array.length cones;
      evaluated_nodes;
      write_commits;
      reg_copies;
      resets;
      counters = Counters.create ();
      barrier = Barrier.create threads;
      stop = Atomic.make false;
      workers = [];
      destroyed = false;
      coord_sense = true;
    }
  in
  if threads > 1 then begin
    let worker w () =
      let sense = ref true in
      let wait () =
        let s = !sense in
        sense := not s;
        Barrier.wait t.barrier s
      in
      let running = ref true in
      while !running do
        wait ();
        (* cycle start *)
        if Atomic.get t.stop then running := false
        else begin
          let cone = t.cones.(w) in
          for i = 0 to Array.length cone - 1 do
            ignore (cone.(i) ())
          done;
          wait () (* evaluation done; coordinator commits *)
        end
      done
    in
    t.workers <- List.init (threads - 1) (fun i -> Domain.spawn (worker (i + 1)))
  end;
  t

let coordinator_wait t =
  let s = t.coord_sense in
  t.coord_sense <- not s;
  Barrier.wait t.barrier s

let commit t =
  let ctr = t.counters in
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets

let step t =
  let ctr = t.counters in
  if t.threads = 1 then begin
    let cone = t.cones.(0) in
    for i = 0 to Array.length cone - 1 do
      ignore (cone.(i) ())
    done
  end
  else begin
    coordinator_wait t;
    (* release workers *)
    let cone = t.cones.(0) in
    for i = 0 to Array.length cone - 1 do
      ignore (cone.(i) ())
    done;
    coordinator_wait t (* all cones evaluated *)
  end;
  ctr.Counters.evals <- ctr.Counters.evals + Array.fold_left ( + ) 0 t.cone_node_counts;
  commit t;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    if t.threads > 1 then begin
      Atomic.set t.stop true;
      coordinator_wait t;
      List.iter Domain.join t.workers;
      t.workers <- []
    end
  end

let replication_factor t =
  if t.evaluated_nodes = 0 then 1.
  else
    float_of_int (Array.fold_left ( + ) 0 t.cone_node_counts)
    /. float_of_int t.evaluated_nodes

let cone_sizes t = Array.copy t.cone_node_counts

let poke t id v = ignore (Runtime.poke t.rt id v)
let peek t id = Runtime.peek t.rt id
let load_mem t mi contents = Runtime.load_mem t.rt mi contents
let counters t = t.counters

let sim t =
  {
    Sim.sim_name = Printf.sprintf "repcut-%dT" t.threads;
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    force =
      (fun ?mask id v ->
        (* Replicated cones each own a private copy of shared nodes; a
           force would have to pin every replica.  Inputs are shared, so
           they remain forcible. *)
        match (Circuit.node (Runtime.circuit t.rt) id).Circuit.kind with
        | Circuit.Input -> ignore (Runtime.force t.rt ?mask id v)
        | _ -> failwith "repcut: force on non-input nodes is not supported");
    release = (fun id -> ignore (Runtime.release t.rt id));
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
