module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  rt : Runtime.t;
  evals : (unit -> bool) array;
      (** per-node closure steps (closure backend); empty under bytecode *)
  sweeps : (unit -> int) array;
      (** fused segment steps (bytecode backend); empty under closures *)
  nevals : int;  (** nodes evaluated per cycle, either way *)
  instrs_per_cycle : int;
      (** static sum of the bytecode cost of every evaluator; zero under
          the closure backend *)
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
      (** closure compare-copies: all registers under the closure backend,
          only wide ones under bytecode *)
  reg_sweep : (unit -> int) array;
      (** singleton [op_copy] segment committing every narrow register
          (bytecode backend); empty otherwise.  Returns the commit count. *)
  resets : ((unit -> bool) * (unit -> bool) array) array;
      (** (signal test, per-register appliers), grouped by reset signal *)
  counters : Counters.t;
}

(* Group slow-path resets by their signal so a design with one reset net
   performs one check per cycle regardless of register count. *)
let reset_groups c rt =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (r : Circuit.register) ->
      match r.reset with
      | Some rst when rst.Circuit.slow_path ->
        let sig_id = rst.Circuit.reset_signal in
        let existing = try Hashtbl.find groups sig_id with Not_found -> [] in
        Hashtbl.replace groups sig_id (Runtime.reset_applier rt r :: existing)
      | Some _ | None -> ())
    (Circuit.registers c);
  Hashtbl.fold
    (fun sig_id appliers acc ->
      (Runtime.signal_is_set rt sig_id, Array.of_list appliers) :: acc)
    groups []
  |> Array.of_list

let create ?(backend = Eval.default) c =
  let order = Circuit.eval_order c in
  let registers = Circuit.registers c in
  let rt, evals, sweeps, instrs_per_cycle, reg_copies, reg_sweep =
    match backend with
    | `Closures ->
      let rt = Runtime.create c in
      ( rt,
        Array.map (fun id -> Runtime.node_evaluator rt (Circuit.node c id)) order,
        [||], 0,
        registers |> List.map (Runtime.reg_copier rt) |> Array.of_list,
        [||] )
    | `Bytecode ->
      (* Plan first (segments claim arena-extension slots), then create the
         runtime with the extension, then bind. *)
      let pl = Eval.plan c ~scratch_base:(Circuit.max_id c) order in
      let rt = Runtime.create ~extra_slots:(Eval.plan_scratch pl) c in
      let sweeps, instrs = Eval.realize rt pl in
      (* Narrow registers commit through one op_copy segment; wide ones
         keep their closure copiers. *)
      let narrow_regs, wide_regs =
        List.partition
          (fun (r : Circuit.register) ->
            Bits.fits_int (Circuit.node c r.Circuit.read).Circuit.width
            && Bits.fits_int (Circuit.node c r.Circuit.next).Circuit.width)
          registers
      in
      let reg_sweep =
        match narrow_regs with
        | [] -> [||]
        | _ ->
          let pairs =
            Array.of_list
              (List.map
                 (fun (r : Circuit.register) -> (r.Circuit.next, r.Circuit.read))
                 narrow_regs)
          in
          [| Bytecode.segment_evaluator rt (Bytecode.copy_segment pairs) |]
      in
      ( rt, [||], sweeps,
        instrs + List.length narrow_regs,
        wide_regs |> List.map (Runtime.reg_copier rt) |> Array.of_list,
        reg_sweep )
  in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  {
    rt;
    evals;
    sweeps;
    nevals = Array.length order;
    instrs_per_cycle;
    write_commits;
    reg_copies;
    reg_sweep;
    resets = reset_groups c rt;
    counters = Counters.create ();
  }

let poke t id v = ignore (Runtime.poke t.rt id v)

let peek t id = Runtime.peek t.rt id

let step t =
  let ctr = t.counters in
  (if Array.length t.evals > 0 then begin
     let evals = t.evals in
     for i = 0 to Array.length evals - 1 do
       if evals.(i) () then ctr.Counters.changed <- ctr.Counters.changed + 1
     done
   end
   else begin
     let sweeps = t.sweeps in
     for i = 0 to Array.length sweeps - 1 do
       ctr.Counters.changed <- ctr.Counters.changed + (Array.unsafe_get sweeps i) ()
     done
   end);
  ctr.Counters.evals <- ctr.Counters.evals + t.nevals;
  ctr.Counters.instrs <- ctr.Counters.instrs + t.instrs_per_cycle;
  (* Memory writes first: they read register outputs of this cycle. *)
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  for i = 0 to Array.length t.reg_sweep - 1 do
    ctr.Counters.reg_commits <- ctr.Counters.reg_commits + t.reg_sweep.(i) ()
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1

let load_mem t mi contents = Runtime.load_mem t.rt mi contents

let counters t = t.counters

let runtime t = t.rt

let sim t =
  {
    Sim.sim_name = "full-cycle";
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
