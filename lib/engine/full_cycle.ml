module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  rt : Runtime.t;
  evals : (unit -> bool) array;
      (** per-node closure steps (closure backend); empty under bytecode *)
  sweeps : (unit -> int) array;
      (** fused segment steps (bytecode backend); empty under closures *)
  nevals : int;  (** nodes evaluated per cycle, either way *)
  instrs_per_cycle : int;
      (** static sum of the bytecode cost of every evaluator; zero under
          the closure backend *)
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
      (** closure compare-copies: all registers under the closure backend,
          only wide ones under bytecode *)
  reg_sweep : (unit -> int) array;
      (** singleton [op_copy] segment committing every narrow register
          (bytecode backend); empty otherwise.  Returns the commit count. *)
  resets : ((unit -> bool) * (unit -> bool) array) array;
      (** (signal test, per-register appliers), grouped by reset signal *)
  forcible : (int, unit) Hashtbl.t;
      (** non-input node ids declared forcible at build time *)
  counters : Counters.t;
}

(* Group slow-path resets by their signal so a design with one reset net
   performs one check per cycle regardless of register count.  Appliers
   for forcible read nodes are guarded so a stuck-at override survives a
   reset. *)
let reset_groups c rt is_forcible =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (r : Circuit.register) ->
      match r.reset with
      | Some rst when rst.Circuit.slow_path ->
        let sig_id = rst.Circuit.reset_signal in
        let existing = try Hashtbl.find groups sig_id with Not_found -> [] in
        let applier = Runtime.reset_applier rt r in
        let applier =
          if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read applier
          else applier
        in
        Hashtbl.replace groups sig_id (applier :: existing)
      | Some _ | None -> ())
    (Circuit.registers c);
  Hashtbl.fold
    (fun sig_id appliers acc ->
      (Runtime.signal_is_set rt sig_id, Array.of_list appliers) :: acc)
    groups []
  |> Array.of_list

let create ?(backend = Eval.default) ?(forcible = []) c =
  let order = Circuit.eval_order c in
  let registers = Circuit.registers c in
  let fset = Hashtbl.create (max (2 * List.length forcible) 1) in
  List.iter
    (fun id ->
      match (Circuit.node c id).Circuit.kind with
      | Circuit.Input -> ()  (* pokes re-apply overrides; no guard needed *)
      | _ -> Hashtbl.replace fset id ())
    forcible;
  let is_forcible id = Hashtbl.mem fset id in
  let sel = Eval.select backend c in
  let rt, evals, sweeps, instrs_per_cycle, reg_copies, reg_sweep =
    match sel.Eval.effective with
    | `Closures ->
      let rt = Runtime.create c in
      let copier (r : Circuit.register) =
        let f = Runtime.reg_copier rt r in
        if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read f else f
      in
      ( rt,
        Array.map
          (fun id ->
            fst (Eval.node_evaluator ~sel ~forcible:is_forcible rt
                   (Circuit.node c id)))
          order,
        [||], 0,
        registers |> List.map copier |> Array.of_list,
        [||] )
    | `Bytecode | `Native ->
      (* Plan first (segments claim arena-extension slots; native runs
         claim none), then create the runtime with the extension, then
         bind. *)
      let pl = Eval.plan ~forcible:is_forcible sel c ~scratch_base:(Circuit.max_id c) order in
      let rt = Runtime.create ~extra_slots:(Eval.plan_scratch pl) c in
      let sweeps, instrs = Eval.realize rt pl in
      (* Narrow registers commit through one op_copy segment; wide ones —
         and forcible ones, whose latch must re-apply the override — keep
         their (guarded) closure copiers. *)
      let narrow_regs, closure_regs =
        List.partition
          (fun (r : Circuit.register) ->
            Bits.fits_int (Circuit.node c r.Circuit.read).Circuit.width
            && Bits.fits_int (Circuit.node c r.Circuit.next).Circuit.width
            && not (is_forcible r.Circuit.read))
          registers
      in
      let copier (r : Circuit.register) =
        let f = Runtime.reg_copier rt r in
        if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read f else f
      in
      let reg_sweep =
        match narrow_regs with
        | [] -> [||]
        | _ ->
          let pairs =
            Array.of_list
              (List.map
                 (fun (r : Circuit.register) -> (r.Circuit.next, r.Circuit.read))
                 narrow_regs)
          in
          [| Bytecode.segment_evaluator rt (Bytecode.copy_segment pairs) |]
      in
      ( rt, [||], sweeps,
        instrs + List.length narrow_regs,
        closure_regs |> List.map copier |> Array.of_list,
        reg_sweep )
  in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let counters = Counters.create () in
  counters.Counters.backend <- Eval.effective_string sel;
  counters.Counters.native_cache <- sel.Eval.cache;
  {
    rt;
    evals;
    sweeps;
    nevals = Array.length order;
    instrs_per_cycle;
    write_commits;
    reg_copies;
    reg_sweep;
    resets = reset_groups c rt is_forcible;
    forcible = fset;
    counters;
  }

let poke t id v = ignore (Runtime.poke t.rt id v)

let peek t id = Runtime.peek t.rt id

(* Full-cycle engines re-evaluate everything each step, so force/release
   need no wakeup — only the declaration check (non-input targets must
   have been routed around bytecode fusion at build time). *)
let check_forcible t id =
  let nd = Circuit.node (Runtime.circuit t.rt) id in
  match nd.Circuit.kind with
  | Circuit.Input -> ()
  | _ ->
    if not (Hashtbl.mem t.forcible id) then
      invalid_arg
        (Printf.sprintf "Full_cycle.force: node %S was not declared forcible"
           nd.Circuit.name)

let force t ?mask id v =
  check_forcible t id;
  ignore (Runtime.force t.rt ?mask id v)

let release t id = ignore (Runtime.release t.rt id)

let step t =
  let ctr = t.counters in
  (if Array.length t.evals > 0 then begin
     let evals = t.evals in
     for i = 0 to Array.length evals - 1 do
       if evals.(i) () then ctr.Counters.changed <- ctr.Counters.changed + 1
     done
   end
   else begin
     let sweeps = t.sweeps in
     for i = 0 to Array.length sweeps - 1 do
       ctr.Counters.changed <- ctr.Counters.changed + (Array.unsafe_get sweeps i) ()
     done
   end);
  ctr.Counters.evals <- ctr.Counters.evals + t.nevals;
  ctr.Counters.instrs <- ctr.Counters.instrs + t.instrs_per_cycle;
  (* Memory writes first: they read register outputs of this cycle. *)
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  for i = 0 to Array.length t.reg_sweep - 1 do
    ctr.Counters.reg_commits <- ctr.Counters.reg_commits + t.reg_sweep.(i) ()
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1

let load_mem t mi contents = Runtime.load_mem t.rt mi contents

let counters t = t.counters

let runtime t = t.rt

let sim t =
  {
    Sim.sim_name = "full-cycle";
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    force = (fun ?mask id v -> force t ?mask id v);
    release = (fun id -> release t id);
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
