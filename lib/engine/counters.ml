type t = {
  mutable cycles : int;
  mutable evals : int;
  mutable changed : int;
  mutable exams : int;
  mutable activations : int;
  mutable reg_commits : int;
  mutable reset_checks : int;
  mutable instrs : int;
}

let create () =
  {
    cycles = 0;
    evals = 0;
    changed = 0;
    exams = 0;
    activations = 0;
    reg_commits = 0;
    reset_checks = 0;
    instrs = 0;
  }

let clear t =
  t.cycles <- 0;
  t.evals <- 0;
  t.changed <- 0;
  t.exams <- 0;
  t.activations <- 0;
  t.reg_commits <- 0;
  t.reset_checks <- 0;
  t.instrs <- 0

let activity_factor t ~total_nodes =
  if t.cycles = 0 || total_nodes = 0 then 0.
  else float_of_int t.evals /. (float_of_int t.cycles *. float_of_int total_nodes)

(* [instrs] is reported only when nonzero: the closure backend retires no
   bytecode, and its output stays byte-identical to what it was before the
   field existed. *)
let to_json t =
  Printf.sprintf
    "{\"cycles\":%d,\"evals\":%d,\"changed\":%d,\"exams\":%d,\"activations\":%d,\"reg_commits\":%d,\"reset_checks\":%d%s}"
    t.cycles t.evals t.changed t.exams t.activations t.reg_commits t.reset_checks
    (if t.instrs = 0 then "" else Printf.sprintf ",\"instrs\":%d" t.instrs)

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d evals=%d changed=%d exams=%d activations=%d reg_commits=%d reset_checks=%d%t"
    t.cycles t.evals t.changed t.exams t.activations t.reg_commits t.reset_checks
    (fun fmt -> if t.instrs <> 0 then Format.fprintf fmt " instrs=%d" t.instrs)
