type t = {
  mutable cycles : int;
  mutable evals : int;
  mutable changed : int;
  mutable exams : int;
  mutable activations : int;
  mutable reg_commits : int;
  mutable reset_checks : int;
  mutable instrs : int;
  mutable backend : string;
  mutable native_cache : string;
}

let create () =
  {
    cycles = 0;
    evals = 0;
    changed = 0;
    exams = 0;
    activations = 0;
    reg_commits = 0;
    reset_checks = 0;
    instrs = 0;
    backend = "";
    native_cache = "";
  }

let clear t =
  t.cycles <- 0;
  t.evals <- 0;
  t.changed <- 0;
  t.exams <- 0;
  t.activations <- 0;
  t.reg_commits <- 0;
  t.reset_checks <- 0;
  t.instrs <- 0

let activity_factor t ~total_nodes =
  if t.cycles = 0 || total_nodes = 0 then 0.
  else float_of_int t.evals /. (float_of_int t.cycles *. float_of_int total_nodes)

(* [instrs], [backend], and [native_cache] are reported only when set:
   the reference engine (which never sets them) keeps byte-identical
   output to before the fields existed. *)
let to_json t =
  Printf.sprintf
    "{\"cycles\":%d,\"evals\":%d,\"changed\":%d,\"exams\":%d,\"activations\":%d,\"reg_commits\":%d,\"reset_checks\":%d%s%s%s}"
    t.cycles t.evals t.changed t.exams t.activations t.reg_commits t.reset_checks
    (if t.instrs = 0 then "" else Printf.sprintf ",\"instrs\":%d" t.instrs)
    (if t.backend = "" then "" else Printf.sprintf ",\"backend\":%S" t.backend)
    (if t.native_cache = "" then ""
     else Printf.sprintf ",\"native_cache\":%S" t.native_cache)

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d evals=%d changed=%d exams=%d activations=%d reg_commits=%d reset_checks=%d%t"
    t.cycles t.evals t.changed t.exams t.activations t.reg_commits t.reset_checks
    (fun fmt ->
      if t.instrs <> 0 then Format.fprintf fmt " instrs=%d" t.instrs;
      if t.backend <> "" then Format.fprintf fmt " backend=%s" t.backend;
      if t.native_cache <> "" then Format.fprintf fmt " native_cache=%s" t.native_cache)
