module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  ck_cycle : int;
  inputs : (string * Bits.t) list;
  registers : (string * Bits.t) list;
  memories : (string * Bits.t array) list;
}

let cycle t = t.ck_cycle
let with_cycle t ck_cycle = { t with ck_cycle }

let format_version = 2

(* --- CRC32 (IEEE 802.3 / zlib polynomial) ------------------------------- *)

(* Eager on purpose: a [lazy] here is not safe to force from concurrent
   worker Domains (the loser of the race gets CamlinternalLazy.Undefined),
   and two workers spooling checkpoints at once do exactly that. *)
let crc_table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let crc32 s =
  let table = crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let capture ?rt (sim : Sim.t) =
  let c = sim.Sim.circuit in
  let inputs =
    List.map
      (fun (n : Circuit.node) -> (n.Circuit.name, sim.Sim.peek n.Circuit.id))
      (Circuit.inputs c)
  in
  let registers =
    List.map
      (fun (r : Circuit.register) -> (r.Circuit.reg_name, sim.Sim.peek r.Circuit.read))
      (Circuit.registers c)
  in
  let snapshot =
    match rt with
    | Some rt -> fun mi _depth -> Runtime.snapshot_mem rt mi
    | None -> fun mi depth -> Array.init depth (sim.Sim.read_mem mi)
  in
  let memories =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           (m.Circuit.mem_name, snapshot mi m.Circuit.depth))
  in
  {
    ck_cycle = (sim.Sim.counters ()).Counters.cycles;
    inputs;
    registers;
    memories;
  }

let restore (sim : Sim.t) t =
  let fail fmt = Printf.ksprintf failwith fmt in
  let c = sim.Sim.circuit in
  List.iter
    (fun (name, v) ->
      match Circuit.find_node c name with
      | Some n ->
        if Bits.width v <> n.Circuit.width then
          fail "Checkpoint.restore: input %S is %d bit(s) wide in the checkpoint but %d in the design"
            name (Bits.width v) n.Circuit.width;
        sim.Sim.poke n.Circuit.id v
      | None -> fail "Checkpoint.restore: no input %S" name)
    t.inputs;
  let reg_by_name = Hashtbl.create 64 in
  List.iter
    (fun (r : Circuit.register) -> Hashtbl.replace reg_by_name r.Circuit.reg_name r)
    (Circuit.registers c);
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt reg_by_name name with
      | Some r ->
        let w = (Circuit.node c r.Circuit.read).Circuit.width in
        if Bits.width v <> w then
          fail "Checkpoint.restore: register %S is %d bit(s) wide in the checkpoint but %d in the design"
            name (Bits.width v) w;
        sim.Sim.write_reg r.Circuit.read v
      | None -> fail "Checkpoint.restore: no register %S" name)
    t.registers;
  let mems = Circuit.memories c in
  List.iter
    (fun (name, contents) ->
      let found = ref false in
      Array.iteri
        (fun mi (m : Circuit.memory) ->
          if m.Circuit.mem_name = name then begin
            found := true;
            if Array.length contents <> m.Circuit.depth then
              fail "Checkpoint.restore: memory %S has depth %d in the checkpoint but %d in the design"
                name (Array.length contents) m.Circuit.depth;
            Array.iteri
              (fun i v ->
                if Bits.width v <> m.Circuit.mem_width then
                  fail "Checkpoint.restore: memory %S word %d is %d bit(s) wide in the checkpoint but %d in the design"
                    name i (Bits.width v) m.Circuit.mem_width)
              contents;
            sim.Sim.load_mem mi contents
          end)
        mems;
      if not !found then fail "Checkpoint.restore: no memory %S" name)
    t.memories;
  sim.Sim.invalidate ()

(* --- Text format (version 2) --------------------------------------------
   ckpt 2
   cycle <n>
   input <name> <width>'h<hex>
   reg <name> <width>'h<hex>
   mem <name> <depth> <width>
   <hex> <hex> ...                (depth words, 16 per line)
   crc <crc32-of-everything-above, 8 hex digits>

   Version 1 files (no crc footer) still load.                            *)

let body_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "ckpt %d\n" format_version);
  Buffer.add_string buf (Printf.sprintf "cycle %d\n" t.ck_cycle);
  let value v = Format.asprintf "%a" Bits.pp v in
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "input %s %s\n" n (value v)))
    t.inputs;
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "reg %s %s\n" n (value v)))
    t.registers;
  List.iter
    (fun (n, contents) ->
      let width = if Array.length contents = 0 then 1 else Bits.width contents.(0) in
      Buffer.add_string buf
        (Printf.sprintf "mem %s %d %d\n" n (Array.length contents) width);
      Array.iteri
        (fun i v ->
          Buffer.add_string buf (Bits.to_hex_string v);
          Buffer.add_char buf (if (i + 1) mod 16 = 0 then '\n' else ' '))
        contents;
      if Array.length contents mod 16 <> 0 then Buffer.add_char buf '\n')
    t.memories;
  Buffer.contents buf

let to_string t =
  let body = body_string t in
  Printf.sprintf "%scrc %08x\n" body (crc32 body)

(* Splits off a trailing "crc <hex>" line; [None] when the last line is
   not a crc footer (a version-1 file, or a write torn before the
   footer). *)
let split_footer s =
  let len = String.length s in
  let e = ref len in
  while !e > 0 && (s.[!e - 1] = '\n' || s.[!e - 1] = ' ' || s.[!e - 1] = '\r') do
    decr e
  done;
  if !e = 0 then None
  else
    let line_start =
      match String.rindex_from_opt s (!e - 1) '\n' with Some i -> i + 1 | None -> 0
    in
    match String.split_on_char ' ' (String.sub s line_start (!e - line_start)) with
    | [ "crc"; hex ] when String.length hex = 8 -> (
      match int_of_string_opt ("0x" ^ hex) with
      | Some stored -> Some (String.sub s 0 line_start, stored)
      | None -> None)
    | _ -> None

(* Body parser shared by both versions.  In [lenient] mode a malformed or
   truncated trailing portion is dropped: every section completed before
   the first error is kept ("last complete section" semantics), so a file
   torn mid-write still yields the prefix that did reach the disk. *)
let parse_body ~lenient lines =
  let fail fmt = Printf.ksprintf failwith fmt in
  let cycle = ref 0 in
  let inputs = ref [] and registers = ref [] and memories = ref [] in
  let seen = Hashtbl.create 64 in
  let check_fresh kind name =
    if Hashtbl.mem seen (kind, name) then fail "checkpoint: duplicate %s %S" kind name;
    Hashtbl.replace seen (kind, name) ()
  in
  let value kind name v =
    match Bits.of_string v with
    | b -> b
    | exception Invalid_argument _ -> fail "checkpoint: bad value %S for %s %S" v kind name
  in
  let int_field what n =
    match int_of_string_opt n with
    | Some i -> i
    | None -> fail "checkpoint: bad %s %S" what n
  in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "cycle"; n ] ->
          cycle := int_field "cycle count" n;
          go rest
        | [ "input"; name; v ] ->
          check_fresh "input" name;
          inputs := (name, value "input" name v) :: !inputs;
          go rest
        | [ "reg"; name; v ] ->
          check_fresh "reg" name;
          registers := (name, value "reg" name v) :: !registers;
          go rest
        | [ "mem"; name; depth; width ] ->
          check_fresh "mem" name;
          let depth = int_field "memory depth" depth
          and width = int_field "memory width" width in
          if depth < 0 || width <= 0 then fail "checkpoint: bad geometry for memory %S" name;
          let words = Array.make depth (Bits.zero width) in
          let filled = ref 0 in
          let rec take = function
            | rest when !filled >= depth -> rest
            | [] -> fail "checkpoint: memory %S truncated (%d of %d words)" name !filled depth
            | line :: rest ->
              List.iter
                (fun tok ->
                  if tok <> "" then begin
                    if !filled >= depth then
                      fail "checkpoint: memory %S overflows its declared depth %d" name depth;
                    words.(!filled) <-
                      value "memory word of" name (Printf.sprintf "%d'h%s" width tok);
                    incr filled
                  end)
                (String.split_on_char ' ' (String.trim line));
              take rest
          in
          let rest = take rest in
          memories := (name, words) :: !memories;
          go rest
        | _ -> fail "checkpoint: bad line %S" line)
  in
  (try go lines with Failure _ when lenient -> ());
  {
    ck_cycle = !cycle;
    inputs = List.rev !inputs;
    registers = List.rev !registers;
    memories = List.rev !memories;
  }

let of_string ?(lenient = false) s =
  let fail fmt = Printf.ksprintf failwith fmt in
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  match lines with
  | header :: rest when String.trim header = "ckpt 1" -> parse_body ~lenient rest
  | header :: rest when String.trim header = Printf.sprintf "ckpt %d" format_version ->
    let rest =
      (* Drop the footer from the line list; validate it against the raw
         prefix (whitespace included). *)
      match split_footer s with
      | Some (body, stored) ->
        let computed = crc32 body in
        if stored <> computed && not lenient then
          fail "checkpoint: CRC mismatch (stored %08x, computed %08x): corrupt or torn file"
            stored computed;
        List.filter
          (fun l ->
            match String.split_on_char ' ' (String.trim l) with
            | [ "crc"; _ ] -> false
            | _ -> true)
          rest
      | None ->
        if not lenient then
          fail "checkpoint: missing crc footer (file truncated before the final line)";
        rest
    in
    parse_body ~lenient rest
  | header :: _ -> fail "checkpoint: unsupported header %S (expected \"ckpt %d\")"
                     (String.trim header) format_version
  | [] -> fail "checkpoint: empty input"

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load ?lenient path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ?lenient s

let equal a b =
  a.inputs = b.inputs && a.registers = b.registers
  && List.length a.memories = List.length b.memories
  && List.for_all2
       (fun (n1, c1) (n2, c2) -> n1 = n2 && Array.for_all2 Bits.equal c1 c2)
       a.memories b.memories

(* --- Architectural diff -------------------------------------------------- *)

let diff a b =
  let out = ref [] in
  let value v = Format.asprintf "%a" Bits.pp v in
  let scalar_diff section xs ys =
    let ys_tbl = Hashtbl.create 64 in
    List.iter (fun (n, v) -> Hashtbl.replace ys_tbl n v) ys;
    List.iter
      (fun (n, v) ->
        match Hashtbl.find_opt ys_tbl n with
        | Some v' ->
          Hashtbl.remove ys_tbl n;
          if not (Bits.equal v v') then out := (n, value v, value v') :: !out
        | None -> out := (n, value v, "<absent>") :: !out)
      xs;
    List.iter
      (fun (n, _) ->
        if Hashtbl.mem ys_tbl n then
          out := (n, "<absent>", value (Hashtbl.find ys_tbl n)) :: !out)
      ys;
    ignore section
  in
  scalar_diff "input" a.inputs b.inputs;
  scalar_diff "reg" a.registers b.registers;
  let b_mems = Hashtbl.create 8 in
  List.iter (fun (n, c) -> Hashtbl.replace b_mems n c) b.memories;
  List.iter
    (fun (n, c) ->
      match Hashtbl.find_opt b_mems n with
      | Some c' when Array.length c = Array.length c' ->
        Array.iteri
          (fun i v ->
            if not (Bits.equal v c'.(i)) then
              out := (Printf.sprintf "%s[%d]" n i, value v, value c'.(i)) :: !out)
          c
      | Some _ -> out := (n, "<depth-mismatch>", "<depth-mismatch>") :: !out
      | None -> out := (n, "<present>", "<absent>") :: !out)
    a.memories;
  List.rev !out

(* --- Delta checkpoints ----------------------------------------------------

   A delta records only the state that changed since a {e base} generation:
   scalars that differ plus sparse memory words.  Applied in order on top
   of a full keyframe, a chain of deltas reconstructs the newest state at a
   fraction of the write cost — a keyframe serializes every memory word,
   a delta a handful.  Each delta pins its base by (cycle, CRC32 of the
   base file's raw bytes), so a recovery walk can prove every link of the
   chain intact before applying anything.  Deltas parse strictly — there
   is no lenient mode, because a partially-applied delta would silently
   reconstruct wrong state; a torn delta is a broken link and recovery
   falls back to an older generation (see {!Gsim_resilience.Store}). *)

type delta = {
  d_cycle : int;
  d_base_cycle : int;
  d_base_crc : int;  (* CRC32 of the base generation's raw file bytes *)
  d_inputs : (string * Bits.t) list;
  d_registers : (string * Bits.t) list;
  d_mem_words : (string * int * (int * Bits.t) array) list;  (* name, width, words *)
}

let delta_cycle d = d.d_cycle
let delta_base d = (d.d_base_cycle, d.d_base_crc)

let delta_size d =
  List.length d.d_inputs + List.length d.d_registers
  + List.fold_left (fun acc (_, _, ws) -> acc + Array.length ws) 0 d.d_mem_words

let scalar_changes base cur =
  let by_name = Hashtbl.create 64 in
  List.iter (fun (n, v) -> Hashtbl.replace by_name n v) base;
  List.filter
    (fun (n, v) ->
      match Hashtbl.find_opt by_name n with
      | Some bv -> not (Bits.equal bv v)
      | None -> true)
    cur

let capture_delta (sim : Sim.t) ~cycle ~dirty ~base ~base_crc =
  let c = sim.Sim.circuit in
  let inputs =
    List.map
      (fun (n : Circuit.node) -> (n.Circuit.name, sim.Sim.peek n.Circuit.id))
      (Circuit.inputs c)
  in
  let registers =
    List.map
      (fun (r : Circuit.register) -> (r.Circuit.reg_name, sim.Sim.peek r.Circuit.read))
      (Circuit.registers c)
  in
  let mem_words =
    List.filter_map
      (fun (mi, words) ->
        if Array.length words = 0 then None
        else
          let m = Circuit.memory c mi in
          Some
            ( m.Circuit.mem_name,
              m.Circuit.mem_width,
              Array.map (fun a -> (a, sim.Sim.read_mem mi a)) words ))
      dirty
  in
  {
    d_cycle = cycle;
    d_base_cycle = base.ck_cycle;
    d_base_crc = base_crc;
    d_inputs = scalar_changes base.inputs inputs;
    d_registers = scalar_changes base.registers registers;
    d_mem_words = mem_words;
  }

(* Compare-based delta: no dirty set needed, costs one pass over every
   memory word (the daemon's preemption spooling uses this — engine
   instances do not survive a yield, so there is no live tracker). *)
let delta_of ~base ~base_crc cur =
  let mem_words =
    List.filter_map
      (fun (name, contents) ->
        match List.assoc_opt name base.memories with
        | Some bc when Array.length bc = Array.length contents ->
          let ws = ref [] in
          for i = Array.length contents - 1 downto 0 do
            if not (Bits.equal contents.(i) bc.(i)) then
              ws := (i, contents.(i)) :: !ws
          done;
          if !ws = [] then None
          else
            let width =
              if Array.length contents = 0 then 1 else Bits.width contents.(0)
            in
            Some (name, width, Array.of_list !ws)
        | _ ->
          failwith
            (Printf.sprintf
               "Checkpoint.delta_of: memory %S absent or resized in the base" name))
      cur.memories
  in
  {
    d_cycle = cur.ck_cycle;
    d_base_cycle = base.ck_cycle;
    d_base_crc = base_crc;
    d_inputs = scalar_changes base.inputs cur.inputs;
    d_registers = scalar_changes base.registers cur.registers;
    d_mem_words = mem_words;
  }

let apply_delta base d =
  let fail fmt = Printf.ksprintf failwith fmt in
  if d.d_base_cycle <> base.ck_cycle then
    fail "Checkpoint.apply_delta: delta for base cycle %d applied to cycle %d"
      d.d_base_cycle base.ck_cycle;
  let patch_scalars kind olds news =
    let by_name = Hashtbl.create 16 in
    List.iter (fun (n, v) -> Hashtbl.replace by_name n v) news;
    let patched =
      List.map
        (fun (n, v) ->
          match Hashtbl.find_opt by_name n with
          | Some nv ->
            Hashtbl.remove by_name n;
            (n, nv)
          | None -> (n, v))
        olds
    in
    Hashtbl.iter (fun n _ -> fail "Checkpoint.apply_delta: unknown %s %S" kind n) by_name;
    patched
  in
  let memories =
    if d.d_mem_words = [] then base.memories
    else begin
      let touched = Hashtbl.create 8 in
      List.iter (fun (n, w, ws) -> Hashtbl.replace touched n (w, ws)) d.d_mem_words;
      let patched =
        List.map
          (fun (n, contents) ->
            match Hashtbl.find_opt touched n with
            | None -> (n, contents)
            | Some (_, ws) ->
              Hashtbl.remove touched n;
              let copy = Array.copy contents in
              Array.iter
                (fun (i, v) ->
                  if i < 0 || i >= Array.length copy then
                    fail "Checkpoint.apply_delta: memory %S word %d out of range" n i;
                  copy.(i) <- v)
                ws;
              (n, copy))
          base.memories
      in
      Hashtbl.iter (fun n _ -> fail "Checkpoint.apply_delta: unknown memory %S" n) touched;
      patched
    end
  in
  {
    ck_cycle = d.d_cycle;
    inputs = patch_scalars "input" base.inputs d.d_inputs;
    registers = patch_scalars "register" base.registers d.d_registers;
    memories;
  }

(* Sparse in-place restore: bring a sim {e already sitting at the delta's
   base state} to the delta's state by writing only what changed.  The
   base link is NOT checked — the caller vouches for it (the shadow
   fast path moves its live fallback from one verified anchor to the
   next window start this way, skipping a full-state restore). *)
let restore_delta rt (sim : Sim.t) d =
  let fail fmt = Printf.ksprintf failwith fmt in
  let c = sim.Sim.circuit in
  List.iter
    (fun (name, v) ->
      match Circuit.find_node c name with
      | Some n -> sim.Sim.poke n.Circuit.id v
      | None -> fail "Checkpoint.restore_delta: no input %S" name)
    d.d_inputs;
  (if d.d_registers <> [] then
     let reg_by_name = Hashtbl.create 64 in
     List.iter
       (fun (r : Circuit.register) -> Hashtbl.replace reg_by_name r.Circuit.reg_name r)
       (Circuit.registers c);
     List.iter
       (fun (name, v) ->
         match Hashtbl.find_opt reg_by_name name with
         | Some (r : Circuit.register) -> sim.Sim.write_reg r.Circuit.read v
         | None -> fail "Checkpoint.restore_delta: no register %S" name)
       d.d_registers);
  List.iter
    (fun (name, _, ws) ->
      let mems = Circuit.memories c in
      let mi = ref (-1) in
      Array.iteri (fun i (m : Circuit.memory) -> if m.Circuit.mem_name = name then mi := i) mems;
      if !mi < 0 then fail "Checkpoint.restore_delta: no memory %S" name;
      Array.iter (fun (a, v) -> Runtime.write_mem_word rt !mi a v) ws)
    d.d_mem_words;
  sim.Sim.invalidate ()

(* --- Delta text format (version 1) ---------------------------------------
   dckpt 1
   cycle <n>
   base <base-cycle> <base-file-crc32, 8 hex digits>
   input <name> <width>'h<hex>
   reg <name> <width>'h<hex>
   dmem <name> <count> <width>
   <index>:<hex> <index>:<hex> ...  (count words, 8 per line)
   crc <crc32-of-everything-above, 8 hex digits>                          *)

let delta_format_version = 1

let delta_to_string d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "dckpt %d\n" delta_format_version);
  Buffer.add_string buf (Printf.sprintf "cycle %d\n" d.d_cycle);
  Buffer.add_string buf (Printf.sprintf "base %d %08x\n" d.d_base_cycle d.d_base_crc);
  let value v = Format.asprintf "%a" Bits.pp v in
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "input %s %s\n" n (value v)))
    d.d_inputs;
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "reg %s %s\n" n (value v)))
    d.d_registers;
  List.iter
    (fun (n, width, ws) ->
      Buffer.add_string buf
        (Printf.sprintf "dmem %s %d %d\n" n (Array.length ws) width);
      Array.iteri
        (fun k (i, v) ->
          Buffer.add_string buf (string_of_int i);
          Buffer.add_char buf ':';
          Buffer.add_string buf (Bits.to_hex_string v);
          Buffer.add_char buf (if (k + 1) mod 8 = 0 then '\n' else ' '))
        ws;
      if Array.length ws mod 8 <> 0 then Buffer.add_char buf '\n')
    d.d_mem_words;
  let body = Buffer.contents buf in
  Printf.sprintf "%scrc %08x\n" body (crc32 body)

let delta_of_string s =
  let fail fmt = Printf.ksprintf failwith fmt in
  (match split_footer s with
   | Some (body, stored) ->
     let computed = crc32 body in
     if stored <> computed then
       fail "delta: CRC mismatch (stored %08x, computed %08x): corrupt or torn file"
         stored computed
   | None -> fail "delta: missing crc footer (file truncated before the final line)");
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let cycle = ref 0 and base = ref None in
  let inputs = ref [] and registers = ref [] and mems = ref [] in
  let int_field what n =
    match int_of_string_opt n with
    | Some i -> i
    | None -> fail "delta: bad %s %S" what n
  in
  let value kind name v =
    match Bits.of_string v with
    | b -> b
    | exception Invalid_argument _ -> fail "delta: bad value %S for %s %S" v kind name
  in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "cycle"; n ] ->
          cycle := int_field "cycle count" n;
          go rest
        | [ "base"; bc; crc ] ->
          let crc =
            match int_of_string_opt ("0x" ^ crc) with
            | Some c when String.length crc = 8 -> c
            | _ -> fail "delta: bad base crc %S" crc
          in
          base := Some (int_field "base cycle" bc, crc);
          go rest
        | [ "input"; name; v ] ->
          inputs := (name, value "input" name v) :: !inputs;
          go rest
        | [ "reg"; name; v ] ->
          registers := (name, value "reg" name v) :: !registers;
          go rest
        | [ "dmem"; name; count; width ] ->
          let count = int_field "word count" count
          and width = int_field "memory width" width in
          if count < 0 || width <= 0 then fail "delta: bad geometry for memory %S" name;
          let words = Array.make count (0, Bits.zero width) in
          let filled = ref 0 in
          let rec take = function
            | rest when !filled >= count -> rest
            | [] -> fail "delta: memory %S truncated (%d of %d words)" name !filled count
            | line :: rest ->
              List.iter
                (fun tok ->
                  if tok <> "" then begin
                    if !filled >= count then
                      fail "delta: memory %S overflows its declared count %d" name count;
                    match String.index_opt tok ':' with
                    | Some j ->
                      let idx = int_field "word index" (String.sub tok 0 j) in
                      let hex = String.sub tok (j + 1) (String.length tok - j - 1) in
                      words.(!filled) <-
                        (idx, value "memory word of" name (Printf.sprintf "%d'h%s" width hex));
                      incr filled
                    | None -> fail "delta: bad word %S in memory %S" tok name
                  end)
                (String.split_on_char ' ' (String.trim line));
              take rest
          in
          let rest = take rest in
          mems := (name, width, words) :: !mems;
          go rest
        | [ "crc"; _ ] -> go rest
        | _ -> fail "delta: bad line %S" line)
  in
  (match lines with
   | header :: rest when String.trim header = Printf.sprintf "dckpt %d" delta_format_version ->
     go rest
   | header :: _ ->
     fail "delta: unsupported header %S (expected \"dckpt %d\")" (String.trim header)
       delta_format_version
   | [] -> fail "delta: empty input");
  match !base with
  | None -> fail "delta: missing base line"
  | Some (d_base_cycle, d_base_crc) ->
    {
      d_cycle = !cycle;
      d_base_cycle;
      d_base_crc;
      d_inputs = List.rev !inputs;
      d_registers = List.rev !registers;
      d_mem_words = List.rev !mems;
    }

let load_delta path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  delta_of_string s
