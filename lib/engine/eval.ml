open Gsim_ir

type backend = [ `Closures | `Bytecode | `Native | `Auto ]

type effective = [ `Closures | `Bytecode | `Native ]

let default : backend = `Auto

let to_string = function
  | `Closures -> "closures"
  | `Bytecode -> "bytecode"
  | `Native -> "native"
  | `Auto -> "auto"

let of_string = function
  | "closures" | "closure" -> Some `Closures
  | "bytecode" -> Some `Bytecode
  | "native" -> Some `Native
  | "auto" -> Some `Auto
  | _ -> None

let names = "auto, native, bytecode, or closures"

(* ------------------------------------------------------------------ *)
(* Backend selection                                                   *)
(* ------------------------------------------------------------------ *)

type selected = {
  requested : backend;
  effective : effective;
  native : Native.unit_t option;  (** [Some] iff [effective = `Native] *)
  cache : string;  (** "hit" / "miss" for native, "" otherwise *)
}

(* Thresholds calibrated against BENCH_backends.json [instrs_per_cycle]:

   - Dispatch overhead makes bytecode lose to closures on big designs
     (Rocket full-cycle 1191 instrs/cycle loses at 0.78x, BOOM 3549 and
     XiangShan 10099 lose; stuCore 181/285 and Rocket-gsim 583 win), so
     auto picks bytecode at or below 700 static instructions per sweep
     and closures above — classifying all eight measured rows correctly.
   - Native wins everywhere it compiles, but paying a cc invocation for
     a tiny circuit (unit tests, fuzz cases) costs more wall clock than
     it ever returns, so auto only goes native from 512 instructions up. *)
let native_threshold = 512

let bytecode_threshold = 700

let estimate_instrs c =
  Array.fold_left
    (fun acc id ->
      match Bytecode.compile c (Circuit.node c id) with
      | Some p -> acc + Bytecode.instr_count p
      | None -> acc)
    0 (Circuit.eval_order c)

(* Fallback diagnostics are printed once per distinct message per
   process: campaign-style workloads construct thousands of engines. *)
let diag_printed : (string, unit) Hashtbl.t = Hashtbl.create 4

let diag msg =
  if not (Hashtbl.mem diag_printed msg) then begin
    Hashtbl.replace diag_printed msg ();
    prerr_endline msg
  end

let interpreted_pick est : effective =
  if est <= bytecode_threshold then `Bytecode else `Closures

let cache_of_origin = function
  | Native.Compiled -> "miss"
  | Native.Memo_hit | Native.Disk_hit -> "hit"

let select backend c =
  let interpreted eff =
    { requested = backend; effective = eff; native = None; cache = "" }
  in
  match backend with
  | `Closures -> interpreted `Closures
  | `Bytecode -> interpreted `Bytecode
  | `Native -> (
    match Native.load c with
    | Some (u, origin) ->
      { requested = backend;
        effective = `Native;
        native = Some u;
        cache = cache_of_origin origin }
    | None ->
      let eff = interpreted_pick (estimate_instrs c) in
      diag
        (Printf.sprintf
           "gsim: native backend unavailable (no C compiler, disabled, or compile \
            failed); falling back to %s"
           (to_string (eff :> backend)));
      interpreted eff)
  | `Auto ->
    let est = estimate_instrs c in
    if est >= native_threshold && Native.available () then
      match Native.load c with
      | Some (u, origin) ->
        { requested = backend;
          effective = `Native;
          native = Some u;
          cache = cache_of_origin origin }
      | None -> interpreted (interpreted_pick est)
    else interpreted (interpreted_pick est)

let effective_string sel = to_string (sel.effective :> backend)

let never_forcible _ = false

let node_evaluator ~sel ?(forcible = never_forcible) rt (nd : Circuit.node) =
  let id = nd.Circuit.id in
  (* Forcible nodes evaluate through a guarded closure under every
     backend: consumers fused into the same segment (or native run) would
     read the node's arena slot mid-dispatch, so the slot must hold the
     overridden value the moment it is written. *)
  if forcible id then (Runtime.guard rt id (Runtime.node_evaluator rt nd), 0)
  else
    match sel.effective with
    | `Closures -> (Runtime.node_evaluator rt nd, 0)
    | `Bytecode -> (
      match Bytecode.compile (Runtime.circuit rt) nd with
      | Some p -> (Bytecode.evaluator rt p, Bytecode.instr_count p)
      | None -> (Runtime.node_evaluator rt nd, 0))
    | `Native -> (
      match sel.native with
      | Some u when Native.has_fn u id -> (Native.node_evaluator u rt id, 0)
      | Some _ | None -> (Runtime.node_evaluator rt nd, 0))

(* A sweep plan: maximal runs of backend-compilable nodes fused into
   segments (bytecode) or dense native runs, wide/fallback nodes
   interleaved as singleton closure steps.  Planning happens before the
   runtime exists — bytecode segments claim arena extension slots from
   [scratch_base] upward (native runs claim none), and the engine creates
   the runtime with [plan_scratch] extra slots before realizing. *)

type item =
  | Seg of Bytecode.segment
  | Nrun of Native.unit_t * int array
  | Fallback of int
  | Guarded of int

type plan = { items : item array; scratch : int }

let plan ?(forcible = never_forcible) sel c ~scratch_base ids =
  let items = ref [] in
  let run = ref [] in
  let nrun = ref [] in
  let off = ref 0 in
  let flush_seg () =
    match !run with
    | [] -> ()
    | ps ->
      let seg = Bytecode.fuse ~base:(scratch_base + !off) (List.rev ps) in
      off := !off + Bytecode.segment_scratch seg;
      items := Seg seg :: !items;
      run := []
  in
  let flush_nrun u =
    match !nrun with
    | [] -> ()
    | ids ->
      items := Nrun (u, Array.of_list (List.rev ids)) :: !items;
      nrun := []
  in
  (match sel.effective, sel.native with
   | `Native, Some u ->
     Array.iter
       (fun id ->
         if forcible id then begin
           (* Demoted from the run: a forced node's slot must hold the
              overridden value before any consumer in the run reads it. *)
           flush_nrun u;
           items := Guarded id :: !items
         end
         else if Native.has_fn u id then nrun := id :: !nrun
         else begin
           flush_nrun u;
           items := Fallback id :: !items
         end)
       ids;
     flush_nrun u
   | (`Native | `Bytecode), _ ->
     Array.iter
       (fun id ->
         if forcible id then begin
           flush_seg ();
           items := Guarded id :: !items
         end
         else
           match Bytecode.compile c (Circuit.node c id) with
           | Some p -> run := p :: !run
           | None ->
             flush_seg ();
             items := Fallback id :: !items)
       ids;
     flush_seg ()
   | `Closures, _ ->
     Array.iter
       (fun id ->
         items := (if forcible id then Guarded id else Fallback id) :: !items)
       ids);
  { items = Array.of_list (List.rev !items); scratch = !off }

let plan_scratch pl = pl.scratch

let realize rt pl =
  let c = Runtime.circuit rt in
  let instrs = ref 0 in
  let steps =
    Array.map
      (function
        | Seg seg ->
          instrs := !instrs + Bytecode.segment_instrs seg;
          Bytecode.segment_evaluator rt seg
        | Nrun (u, ids) -> Native.run_step u rt ids
        | Fallback id ->
          let f = Runtime.node_evaluator rt (Circuit.node c id) in
          fun () -> if f () then 1 else 0
        | Guarded id ->
          let f = Runtime.guard rt id (Runtime.node_evaluator rt (Circuit.node c id)) in
          fun () -> if f () then 1 else 0)
      pl.items
  in
  (steps, !instrs)
