open Gsim_ir

type backend = [ `Closures | `Bytecode ]

let default : backend = `Bytecode

let to_string = function `Closures -> "closures" | `Bytecode -> "bytecode"

let of_string = function
  | "closures" | "closure" -> Some `Closures
  | "bytecode" -> Some `Bytecode
  | _ -> None

let never_forcible _ = false

let node_evaluator ~backend ?(forcible = never_forcible) rt (nd : Circuit.node) =
  (* Forcible nodes evaluate through a guarded closure under either
     backend: consumers fused into the same bytecode segment would read
     the node's arena slot mid-dispatch, so the slot must hold the
     overridden value the moment it is written. *)
  if forcible nd.Circuit.id then
    (Runtime.guard rt nd.Circuit.id (Runtime.node_evaluator rt nd), 0)
  else
    match backend with
    | `Closures -> (Runtime.node_evaluator rt nd, 0)
    | `Bytecode -> (
      match Bytecode.compile (Runtime.circuit rt) nd with
      | Some p -> (Bytecode.evaluator rt p, Bytecode.instr_count p)
      | None -> (Runtime.node_evaluator rt nd, 0))

(* A sweep plan: maximal runs of bytecode-compilable nodes fused into
   segments, wide/fallback nodes interleaved as singleton closure steps.
   Planning happens before the runtime exists — segments claim arena
   extension slots from [scratch_base] upward, and the engine creates the
   runtime with [plan_scratch] extra slots before realizing the plan. *)

type item = Seg of Bytecode.segment | Fallback of int | Guarded of int

type plan = { items : item array; scratch : int }

let plan ?(forcible = never_forcible) c ~scratch_base ids =
  let items = ref [] in
  let run = ref [] in
  let off = ref 0 in
  let flush () =
    match !run with
    | [] -> ()
    | ps ->
      let seg = Bytecode.fuse ~base:(scratch_base + !off) (List.rev ps) in
      off := !off + Bytecode.segment_scratch seg;
      items := Seg seg :: !items;
      run := []
  in
  Array.iter
    (fun id ->
      if forcible id then begin
        (* Demoted from fusion: a forced node's slot must hold the
           overridden value before any same-segment consumer reads it. *)
        flush ();
        items := Guarded id :: !items
      end
      else
        match Bytecode.compile c (Circuit.node c id) with
        | Some p -> run := p :: !run
        | None ->
          flush ();
          items := Fallback id :: !items)
    ids;
  flush ();
  { items = Array.of_list (List.rev !items); scratch = !off }

let plan_scratch pl = pl.scratch

let realize rt pl =
  let c = Runtime.circuit rt in
  let instrs = ref 0 in
  let steps =
    Array.map
      (function
        | Seg seg ->
          instrs := !instrs + Bytecode.segment_instrs seg;
          Bytecode.segment_evaluator rt seg
        | Fallback id ->
          let f = Runtime.node_evaluator rt (Circuit.node c id) in
          fun () -> if f () then 1 else 0
        | Guarded id ->
          let f = Runtime.guard rt id (Runtime.node_evaluator rt (Circuit.node c id)) in
          fun () -> if f () then 1 else 0)
      pl.items
  in
  (steps, !instrs)
