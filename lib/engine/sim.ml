module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  sim_name : string;
  circuit : Circuit.t;
  poke : int -> Bits.t -> unit;
  peek : int -> Bits.t;
  step : unit -> unit;
  load_mem : int -> Bits.t array -> unit;
  read_mem : int -> int -> Bits.t;
  write_reg : int -> Bits.t -> unit;
  force : ?mask:Bits.t -> int -> Bits.t -> unit;
  release : int -> unit;
  invalidate : unit -> unit;
  counters : unit -> Counters.t;
}

let run t n =
  for _ = 1 to n do
    t.step ()
  done

let peek_int t id = Bits.to_int_trunc (t.peek id)

let poke_int t id v =
  let w = (Circuit.node t.circuit id).Circuit.width in
  t.poke id (Bits.of_int ~width:w v)

let of_reference r =
  let counters = Counters.create () in
  {
    sim_name = "reference";
    circuit = Reference.circuit r;
    poke = Reference.poke r;
    peek = Reference.peek r;
    step =
      (fun () ->
        Reference.step r;
        counters.Counters.cycles <- counters.Counters.cycles + 1);
    load_mem = Reference.load_mem r;
    read_mem = Reference.read_mem r;
    write_reg = Reference.force_register r;
    force = (fun ?mask id v -> ignore (Reference.force r ?mask id v));
    release = (fun id -> ignore (Reference.release r id));
    invalidate = (fun () -> ());
    counters = (fun () -> counters);
  }

let trace t ~observe ~stimulus =
  Array.map
    (fun pokes ->
      List.iter (fun (id, v) -> t.poke id v) pokes;
      t.step ();
      List.map t.peek observe)
    stimulus

let equal_traces a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun xs ys -> List.equal Bits.equal xs ys) a b
