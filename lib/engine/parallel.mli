(** Multi-threaded full-cycle engine (Verilator [--threads] model).

    Evaluated nodes are grouped by combinational level; each level is split
    across worker domains and separated from the next by a barrier, the
    level-synchronous schedule Verilator's mtask partitioner approximates.
    Registers and memories commit sequentially on the coordinating domain.

    Worker domains persist across cycles; call {!destroy} (idempotent) when
    done, otherwise the domains are joined at exit of the process. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : ?backend:Eval.backend -> ?forcible:int list -> threads:int -> Circuit.t -> t
(** [backend] defaults to {!Eval.default} ([`Bytecode]);
    [threads >= 1]; one means no worker domains (sequential).
    [forcible] declares fault-injection targets (see
    {!Full_cycle.create}). *)

val poke : t -> int -> Bits.t -> unit
val peek : t -> int -> Bits.t

val force : t -> ?mask:Bits.t -> int -> Bits.t -> unit
(** Pin the masked bits of a node until {!release}; only between steps.
    Non-input targets must appear in [create]'s [forcible] list. *)

val release : t -> int -> unit
val step : t -> unit
val load_mem : t -> int -> Bits.t array -> unit
val counters : t -> Counters.t
val destroy : t -> unit
val level_count : t -> int

val runtime : t -> Runtime.t
(** The shared value arena (dirty-memory tracking, checkpoint capture). *)

val sim : t -> Sim.t
(** The wrapper's [step] drives all domains. *)
