module Bits = Gsim_bits.Bits
open Gsim_ir

(* Sense-reversing centralized barrier.  Latecomers spin briefly and then
   block on a condition variable: pure spinning is catastrophic when the
   host has fewer cores than domains (each wait would burn a scheduling
   quantum). *)
module Barrier = struct
  type t = {
    count : int Atomic.t;
    sense : bool Atomic.t;
    total : int;
    lock : Mutex.t;
    cond : Condition.t;
  }

  let create total =
    {
      count = Atomic.make 0;
      sense = Atomic.make false;
      total;
      lock = Mutex.create ();
      cond = Condition.create ();
    }

  let spin_limit = 2000

  (* Each participant keeps its own sense flag, flipped per phase. *)
  let wait b local_sense =
    if Atomic.fetch_and_add b.count 1 = b.total - 1 then begin
      Atomic.set b.count 0;
      Mutex.lock b.lock;
      Atomic.set b.sense local_sense;
      Condition.broadcast b.cond;
      Mutex.unlock b.lock
    end
    else begin
      let spins = ref 0 in
      while Atomic.get b.sense <> local_sense && !spins < spin_limit do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.sense <> local_sense then begin
        Mutex.lock b.lock;
        while Atomic.get b.sense <> local_sense do
          Condition.wait b.cond b.lock
        done;
        Mutex.unlock b.lock
      end
    end
end

type t = {
  rt : Runtime.t;
  threads : int;
  (* slices.(level).(worker) = evaluator array (closure backend; empty
     under bytecode) *)
  slices : (unit -> bool) array array array;
  (* sweep_slices.(level).(worker) = fused segment steps (bytecode
     backend; empty under closures).  Each step returns its changed
     count; only the single-threaded coordinator reads it — workers never
     touch the shared counters. *)
  sweep_slices : (unit -> int) array array array;
  nlevels : int;
  write_commits : (unit -> bool) array;
  reg_copies : (unit -> bool) array;
  reg_sweep : (unit -> int) array;
      (* singleton op_copy segment for narrow registers (bytecode backend);
         runs in the coordinator's sequential commit phase *)
  resets : ((unit -> bool) * (unit -> bool) array) array;
  forcible : (int, unit) Hashtbl.t;
      (* non-input node ids declared forcible at build time *)
  counters : Counters.t;
  total_evals : int;
  instrs_per_cycle : int;
      (* static bytecode cost of one full sweep; the evaluators never touch
         the (shared) counters, so the coordinator adds this once per cycle *)
  barrier : Barrier.t;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t list;
  mutable destroyed : bool;
  mutable coord_sense : bool;
}

(* Combinational level of each evaluated node: 1 + max level of evaluated
   dependencies. *)
let levels_of c =
  let order = Circuit.eval_order c in
  let level = Array.make (Circuit.max_id c) (-1) in
  Array.iter
    (fun id ->
      let deps = Circuit.dependencies c id in
      let l =
        List.fold_left (fun acc d -> max acc (if level.(d) >= 0 then level.(d) else -1)) (-1) deps
      in
      level.(id) <- l + 1)
    order;
  let nlevels = Array.fold_left (fun acc l -> max acc (l + 1)) 0 level in
  let buckets = Array.make (max nlevels 1) [] in
  (* Reverse iteration keeps each bucket in topological order. *)
  for i = Array.length order - 1 downto 0 do
    let id = order.(i) in
    buckets.(level.(id)) <- id :: buckets.(level.(id))
  done;
  buckets

let split_slice arr threads w =
  let n = Array.length arr in
  let base = n / threads and extra = n mod threads in
  let start = (w * base) + min w extra in
  let len = base + if w < extra then 1 else 0 in
  Array.sub arr start len

let create ?(backend = Eval.default) ?(forcible = []) ~threads c =
  if threads < 1 then invalid_arg "Parallel.create: threads >= 1";
  let buckets = levels_of c in
  let total_evals = Array.fold_left (fun acc b -> acc + List.length b) 0 buckets in
  let registers = Circuit.registers c in
  let fset = Hashtbl.create (max (2 * List.length forcible) 1) in
  List.iter
    (fun id ->
      match (Circuit.node c id).Circuit.kind with
      | Circuit.Input -> ()
      | _ -> Hashtbl.replace fset id ())
    forcible;
  let is_forcible id = Hashtbl.mem fset id in
  let sel = Eval.select backend c in
  let instrs_per_cycle = ref 0 in
  let rt, slices, sweep_slices, reg_copies, reg_sweep =
    match sel.Eval.effective with
    | `Closures ->
      let rt = Runtime.create c in
      let copier (r : Circuit.register) =
        let f = Runtime.reg_copier rt r in
        if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read f else f
      in
      ( rt,
        Array.map
          (fun bucket ->
            let evals =
              Array.of_list
                (List.map
                   (fun id ->
                     fst (Eval.node_evaluator ~sel ~forcible:is_forcible
                            rt (Circuit.node c id)))
                   bucket)
            in
            Array.init threads (fun w -> split_slice evals threads w))
          buckets,
        [||],
        registers |> List.map copier |> Array.of_list,
        [||] )
    | `Bytecode | `Native ->
      (* Split each level's ids across workers first, then fuse each
         worker's run: same-level nodes never consume each other, and
         cross-level values are committed before the level barrier, so
         every operand a segment (or native run) reads from the arena is
         stable while it runs — exactly the access pattern of the closure
         backend.  Each (level, worker) plan claims its own disjoint
         arena-extension region, so workers never write a shared slot;
         native functions only write their own node's slot and never
         allocate, so they are safe from any domain. *)
      let off = ref 0 in
      let scratch_base = Circuit.max_id c in
      let plans =
        Array.map
          (fun bucket ->
            let ids = Array.of_list bucket in
            Array.init threads (fun w ->
                let pl = Eval.plan ~forcible:is_forcible sel c
                    ~scratch_base:(scratch_base + !off)
                    (split_slice ids threads w)
                in
                off := !off + Eval.plan_scratch pl;
                pl))
          buckets
      in
      let rt = Runtime.create ~extra_slots:!off c in
      let sweep_slices =
        Array.map
          (Array.map (fun pl ->
               let sweeps, ni = Eval.realize rt pl in
               instrs_per_cycle := !instrs_per_cycle + ni;
               sweeps))
          plans
      in
      let narrow_regs, wide_regs =
        List.partition
          (fun (r : Circuit.register) ->
            Bits.fits_int (Circuit.node c r.Circuit.read).Circuit.width
            && Bits.fits_int (Circuit.node c r.Circuit.next).Circuit.width
            && not (is_forcible r.Circuit.read))
          registers
      in
      let reg_sweep =
        match narrow_regs with
        | [] -> [||]
        | _ ->
          let pairs =
            Array.of_list
              (List.map
                 (fun (r : Circuit.register) -> (r.Circuit.next, r.Circuit.read))
                 narrow_regs)
          in
          instrs_per_cycle := !instrs_per_cycle + Array.length pairs;
          [| Bytecode.segment_evaluator rt (Bytecode.copy_segment pairs) |]
      in
      let copier (r : Circuit.register) =
        let f = Runtime.reg_copier rt r in
        if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read f else f
      in
      ( rt, [||], sweep_slices,
        wide_regs |> List.map copier |> Array.of_list,
        reg_sweep )
  in
  let write_commits =
    Array.to_list (Circuit.memories c)
    |> List.mapi (fun mi (m : Circuit.memory) ->
           List.map (fun w -> Runtime.write_committer rt mi w) m.write_ports)
    |> List.concat |> Array.of_list
  in
  let resets =
    let groups = Hashtbl.create 8 in
    List.iter
      (fun (r : Circuit.register) ->
        match r.reset with
        | Some rst when rst.Circuit.slow_path ->
          let s = rst.Circuit.reset_signal in
          let applier = Runtime.reset_applier rt r in
          let applier =
            if is_forcible r.Circuit.read then Runtime.guard rt r.Circuit.read applier
            else applier
          in
          Hashtbl.replace groups s
            (applier :: (try Hashtbl.find groups s with Not_found -> []))
        | Some _ | None -> ())
      (Circuit.registers c);
    Hashtbl.fold
      (fun s appliers acc -> (Runtime.signal_is_set rt s, Array.of_list appliers) :: acc)
      groups []
    |> Array.of_list
  in
  let counters = Counters.create () in
  counters.Counters.backend <- Eval.effective_string sel;
  counters.Counters.native_cache <- sel.Eval.cache;
  let t =
    {
      rt;
      threads;
      slices;
      sweep_slices;
      nlevels = Array.length buckets;
      write_commits;
      reg_copies;
      reg_sweep;
      resets;
      forcible = fset;
      counters;
      total_evals;
      instrs_per_cycle = !instrs_per_cycle;
      barrier = Barrier.create threads;
      stop = Atomic.make false;
      workers = [];
      destroyed = false;
      coord_sense = true;
    }
  in
  if threads > 1 then begin
    let worker w () =
      let sense = ref true in
      let next_sense () =
        let s = !sense in
        sense := not s;
        Barrier.wait t.barrier s
      in
      let running = ref true in
      while !running do
        next_sense ();
        (* cycle start *)
        if Atomic.get t.stop then running := false
        else begin
          (if Array.length t.slices > 0 then
             Array.iter
               (fun level ->
                 let slice = level.(w) in
                 for i = 0 to Array.length slice - 1 do
                   ignore (slice.(i) ())
                 done;
                 next_sense ())
               t.slices
           else
             Array.iter
               (fun level ->
                 let slice = level.(w) in
                 for i = 0 to Array.length slice - 1 do
                   ignore (slice.(i) ())
                 done;
                 next_sense ())
               t.sweep_slices);
          next_sense () (* wait for the coordinator's commit *)
        end
      done
    in
    t.workers <- List.init (threads - 1) (fun i -> Domain.spawn (worker (i + 1)))
  end;
  t

(* The coordinator participates as worker 0 and performs the sequential
   commit between the last barrier of the sweep and the cycle-start
   barrier of the next cycle. *)
let coordinator_wait t =
  let s = t.coord_sense in
  t.coord_sense <- not s;
  Barrier.wait t.barrier s

let step t =
  let ctr = t.counters in
  if t.threads = 1 then begin
    if Array.length t.slices > 0 then
      Array.iter
        (fun level ->
          let slice = level.(0) in
          for i = 0 to Array.length slice - 1 do
            if slice.(i) () then ctr.Counters.changed <- ctr.Counters.changed + 1
          done)
        t.slices
    else
      Array.iter
        (fun level ->
          let slice = level.(0) in
          for i = 0 to Array.length slice - 1 do
            ctr.Counters.changed <- ctr.Counters.changed + slice.(i) ()
          done)
        t.sweep_slices
  end
  else begin
    let next_sense () = coordinator_wait t in
    next_sense ();
    (* release workers into the cycle *)
    if Array.length t.slices > 0 then
      Array.iter
        (fun level ->
          let slice = level.(0) in
          for i = 0 to Array.length slice - 1 do
            ignore (slice.(i) ())
          done;
          next_sense ())
        t.slices
    else
      Array.iter
        (fun level ->
          let slice = level.(0) in
          for i = 0 to Array.length slice - 1 do
            ignore (slice.(i) ())
          done;
          next_sense ())
        t.sweep_slices
  end;
  ctr.Counters.evals <- ctr.Counters.evals + t.total_evals;
  ctr.Counters.instrs <- ctr.Counters.instrs + t.instrs_per_cycle;
  Array.iter (fun w -> ignore (w ())) t.write_commits;
  for i = 0 to Array.length t.reg_copies - 1 do
    if t.reg_copies.(i) () then ctr.Counters.reg_commits <- ctr.Counters.reg_commits + 1
  done;
  for i = 0 to Array.length t.reg_sweep - 1 do
    ctr.Counters.reg_commits <- ctr.Counters.reg_commits + t.reg_sweep.(i) ()
  done;
  Array.iter
    (fun (test, appliers) ->
      ctr.Counters.reset_checks <- ctr.Counters.reset_checks + 1;
      if test () then Array.iter (fun a -> ignore (a ())) appliers)
    t.resets;
  ctr.Counters.cycles <- ctr.Counters.cycles + 1;
  if t.threads > 1 then
    (* Let workers loop back to the cycle-start barrier. *)
    coordinator_wait t

let destroy t =
  if not t.destroyed then begin
    t.destroyed <- true;
    if t.threads > 1 then begin
      Atomic.set t.stop true;
      coordinator_wait t;
      List.iter Domain.join t.workers;
      t.workers <- []
    end
  end

let poke t id v = ignore (Runtime.poke t.rt id v)
let peek t id = Runtime.peek t.rt id

(* No wakeup needed: every node re-evaluates each cycle.  Forces happen
   between steps, so no worker is concurrently reading the slot. *)
let force t ?mask id v =
  let nd = Circuit.node (Runtime.circuit t.rt) id in
  (match nd.Circuit.kind with
   | Circuit.Input -> ()
   | _ ->
     if not (Hashtbl.mem t.forcible id) then
       invalid_arg
         (Printf.sprintf "Parallel.force: node %S was not declared forcible"
            nd.Circuit.name));
  ignore (Runtime.force t.rt ?mask id v)

let release t id = ignore (Runtime.release t.rt id)
let load_mem t mi contents = Runtime.load_mem t.rt mi contents
let counters t = t.counters
let level_count t = t.nlevels

let runtime t = t.rt

let sim t =
  {
    Sim.sim_name = Printf.sprintf "full-cycle-%dT" t.threads;
    circuit = Runtime.circuit t.rt;
    poke = poke t;
    peek = peek t;
    step = (fun () -> step t);
    load_mem = load_mem t;
    read_mem = (fun mi addr -> Runtime.read_mem t.rt mi addr);
    write_reg = (fun id v -> Runtime.poke_register t.rt id v);
    force = (fun ?mask id v -> force t ?mask id v);
    release = (fun id -> release t id);
    invalidate = (fun () -> ());
    counters = (fun () -> t.counters);
  }
