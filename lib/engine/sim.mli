(** Engine-independent simulator handle.

    Every engine wraps itself in this record so that testbenches, example
    programs and the benchmark harness can drive any simulator — including
    the {!Gsim_ir.Reference} interpreter — through one interface. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t = {
  sim_name : string;
  circuit : Circuit.t;
  poke : int -> Bits.t -> unit;
  peek : int -> Bits.t;
  step : unit -> unit;
  load_mem : int -> Bits.t array -> unit;
  read_mem : int -> int -> Bits.t;
  write_reg : int -> Bits.t -> unit;
      (** Force a register's current value (by read-node id) — checkpoint
          restore; follow with {!field-invalidate} on activity engines. *)
  force : ?mask:Bits.t -> int -> Bits.t -> unit;
      (** Pin the masked bits of a node to a value until {!field-release}
          (fault injection); wakes the node's consumers on activity
          engines.  Non-input targets must have been declared forcible at
          engine build time ([Gsim.instantiate ~forcible], or the
          engine's [create ~forcible]); raises [Invalid_argument]
          otherwise.  Default mask: all ones. *)
  release : int -> unit;
      (** Remove a force override.  The node recomputes on the next step
          (registers re-latch); an input keeps the last forced value
          until re-poked. *)
  invalidate : unit -> unit;
      (** Mark all state suspect: activity engines re-evaluate everything
          on the next step.  No-op for full-cycle engines. *)
  counters : unit -> Counters.t;
}

val run : t -> int -> unit
(** [run t n] steps [n] cycles. *)

val peek_int : t -> int -> int
(** Low 62 bits of a node's value as an int. *)

val poke_int : t -> int -> int -> unit
(** Poke an input by int; the value is truncated to the node's width. *)

val of_reference : Reference.t -> t
(** Wrap the reference interpreter. *)

val trace :
  t -> observe:int list -> stimulus:(int * Bits.t) list array -> Bits.t list array
(** [trace t ~observe ~stimulus] applies [stimulus.(i)] before cycle [i],
    steps, and records the values of [observe] after each cycle.  Used to
    compare engines for bit-identical behaviour. *)

val equal_traces : Bits.t list array -> Bits.t list array -> bool
