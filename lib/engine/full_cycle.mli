(** Full-cycle engine (Verilator's model).

    Every expression-carrying node is evaluated every cycle in a fixed
    topological order; registers then latch and memory writes commit.
    No activity tracking: [A_exam] and [A_succ] are zero, the activity
    factor is 1. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : ?backend:Eval.backend -> ?forcible:int list -> Circuit.t -> t
(** [backend] defaults to {!Eval.default} ([`Bytecode]).  [forcible]
    declares fault-injection targets: those nodes evaluate through
    guarded closures (never fused into bytecode segments) so {!force}
    overrides are visible to every consumer. *)

val poke : t -> int -> Bits.t -> unit
val peek : t -> int -> Bits.t

val force : t -> ?mask:Bits.t -> int -> Bits.t -> unit
(** Pin the masked bits of a node until {!release}.  Non-input targets
    must appear in [create]'s [forcible] list. *)

val release : t -> int -> unit
val step : t -> unit
val load_mem : t -> int -> Bits.t array -> unit
val counters : t -> Counters.t
val runtime : t -> Runtime.t

val sim : t -> Sim.t
