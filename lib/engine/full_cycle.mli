(** Full-cycle engine (Verilator's model).

    Every expression-carrying node is evaluated every cycle in a fixed
    topological order; registers then latch and memory writes commit.
    No activity tracking: [A_exam] and [A_succ] are zero, the activity
    factor is 1. *)

module Bits = Gsim_bits.Bits
open Gsim_ir

type t

val create : ?backend:Eval.backend -> Circuit.t -> t
(** [backend] defaults to {!Eval.default} ([`Bytecode]). *)

val poke : t -> int -> Bits.t -> unit
val peek : t -> int -> Bits.t
val step : t -> unit
val load_mem : t -> int -> Bits.t array -> unit
val counters : t -> Counters.t
val runtime : t -> Runtime.t

val sim : t -> Sim.t
