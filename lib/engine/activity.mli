(** Activity-driven engines (the essential-signal approach).

    Supernodes carry active bits; a supernode is evaluated only when some
    producer changed.  This module implements both the ESSENT baseline and
    the GSIM engine — they differ in the partition supplied and in the
    configuration:

    - [packed_exam]: GSIM's fast path — active bits are packed 62 per word
      and a whole word is examined with a single condition (paper §III-A,
      Listing 4);
    - [activation]: how a changed node sets its successors' active bits —
      with a branch, branch-free logical operations (ESSENT's choice), or
      per-node selection by the paper's cost model (§III-B).

    Slow-path resets (registers whose [reset.slow_path] is set) are applied
    once per reset signal at the end of each cycle. *)

module Bits = Gsim_bits.Bits
open Gsim_ir
open Gsim_partition

type activation_strategy = Branch | Branchless | Cost_model

type config = {
  packed_exam : bool;
  activation : activation_strategy;
}

val essent_config : config
(** Unpacked examination, branch-free activation — ESSENT's published
    design. *)

val gsim_config : config
(** Packed examination, cost-model activation. *)

type t

val create :
  ?config:config -> ?backend:Eval.backend -> ?forcible:int list ->
  Circuit.t -> Partition.t -> t
(** [backend] defaults to {!Eval.default} ([`Bytecode]).
    The partition must be valid for the circuit (see
    {!Partition.validate}); all supernodes start active.
    [forcible] declares fault-injection targets: those nodes evaluate
    through guarded closures (never fused into bytecode segments) and get
    supernode-aware wake closures for {!force}/{!release}. *)

val poke : t -> int -> Bits.t -> unit
val peek : t -> int -> Bits.t

val force : t -> ?mask:Bits.t -> int -> Bits.t -> unit
(** Pin the masked bits of a node until {!release}.  Marks the consumers'
    active bits when the stored value changes, so the override propagates
    on the next {!step} exactly as an organic change would.  Non-input
    targets must appear in [create]'s [forcible] list. *)

(** Remove an override: re-activates the node's own supernode (or
    re-latches its register) so it recomputes next step. *)
val release : t -> int -> unit
val step : t -> unit
val load_mem : t -> int -> Bits.t array -> unit
val counters : t -> Counters.t
val runtime : t -> Runtime.t
val supernode_count : t -> int

val supernode_hits : t -> int array
(** How many times each supernode was evaluated since creation (profiling
    input for {!Profile}). *)

val invalidate_all : t -> unit
(** Mark every supernode active and every register pending — used after a
    checkpoint restore. *)

val set_change_hook : t -> (int -> unit) -> unit
(** [set_change_hook t f] arranges for [f id] to run whenever a node
    evaluation, register latch or slow-path reset changes the stored value
    of node [id].  Because the engine already computes "did the value
    change" for every evaluation, observers (coverage collection) that hang
    off this hook pay a cost proportional to the activity factor instead of
    resampling the whole design every cycle.

    Install at most once, before simulation starts.  Pokes are not
    reported — intercept them at the {!Sim.t} layer. *)

val sim : ?name:string -> t -> Sim.t
