(** Incident reports.

    When a resilient session detects something wrong — the shadow engine
    disagreeing with the primary, an engine exception, a watchdog trip —
    it records an incident instead of aborting.  A divergence incident is
    a {e minimal reproduction}: the last architectural state both engines
    agreed on (one cycle before the first divergent one), the input trace
    for the remaining step(s), and the first-divergent signals with both
    engines' values.  {!Shadow.replay} re-runs it. *)

type kind =
  | Divergence  (** shadow lockstep disagreed; bisected to one cycle *)
  | Transient_divergence
      (** end states differed, but replaying the window on the primary no
          longer reproduced it — a non-deterministic upset, rolled back *)
  | Engine_error of string  (** the primary raised during a step *)
  | Watchdog of float  (** a step batch exceeded the wall-clock budget (s) *)

type t = {
  kind : kind;
  window_start : int;  (** cycle of the last verified checkpoint *)
  window_end : int;  (** cycle at which the problem was noticed *)
  first_divergent : int option;  (** bisected first divergent cycle *)
  registers : (string * string * string) list;
      (** (signal, primary value, shadow value) at the first divergent
          cycle; memory words as ["name[index]"] *)
  start_state : Gsim_engine.Checkpoint.t option;
      (** shrunk repro start: the agreed state one cycle before the first
          divergent cycle *)
  trace : (int * (string * string) list) list;
      (** input pokes per cycle, [start_state] onward: apply, step *)
  message : string;
}

val summary : t -> string
(** One human-readable line. *)

val kind_to_string : kind -> string

val to_string : t -> string

val of_string : string -> t
(** Raises [Failure] on malformed input. *)

val save : string -> t -> unit
(** Atomic (temp + rename). *)

val load : string -> t
